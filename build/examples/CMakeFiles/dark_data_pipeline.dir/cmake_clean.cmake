file(REMOVE_RECURSE
  "CMakeFiles/dark_data_pipeline.dir/dark_data_pipeline.cpp.o"
  "CMakeFiles/dark_data_pipeline.dir/dark_data_pipeline.cpp.o.d"
  "dark_data_pipeline"
  "dark_data_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dark_data_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
