# Empty compiler generated dependencies file for dark_data_pipeline.
# This may be replaced when dependencies are built.
