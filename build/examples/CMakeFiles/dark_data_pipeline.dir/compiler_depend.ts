# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dark_data_pipeline.
