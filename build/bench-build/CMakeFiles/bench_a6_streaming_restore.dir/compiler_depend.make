# Empty compiler generated dependencies file for bench_a6_streaming_restore.
# This may be replaced when dependencies are built.
