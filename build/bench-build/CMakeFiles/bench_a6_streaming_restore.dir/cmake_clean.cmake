file(REMOVE_RECURSE
  "../bench/bench_a6_streaming_restore"
  "../bench/bench_a6_streaming_restore.pdb"
  "CMakeFiles/bench_a6_streaming_restore.dir/bench_a6_streaming_restore.cc.o"
  "CMakeFiles/bench_a6_streaming_restore.dir/bench_a6_streaming_restore.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a6_streaming_restore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
