# Empty compiler generated dependencies file for bench_f5_tickets_per_cluster.
# This may be replaced when dependencies are built.
