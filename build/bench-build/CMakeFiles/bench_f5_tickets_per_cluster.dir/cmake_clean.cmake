file(REMOVE_RECURSE
  "../bench/bench_f5_tickets_per_cluster"
  "../bench/bench_f5_tickets_per_cluster.pdb"
  "CMakeFiles/bench_f5_tickets_per_cluster.dir/bench_f5_tickets_per_cluster.cc.o"
  "CMakeFiles/bench_f5_tickets_per_cluster.dir/bench_f5_tickets_per_cluster.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_tickets_per_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
