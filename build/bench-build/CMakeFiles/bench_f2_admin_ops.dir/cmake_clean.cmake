file(REMOVE_RECURSE
  "../bench/bench_f2_admin_ops"
  "../bench/bench_f2_admin_ops.pdb"
  "CMakeFiles/bench_f2_admin_ops.dir/bench_f2_admin_ops.cc.o"
  "CMakeFiles/bench_f2_admin_ops.dir/bench_f2_admin_ops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_admin_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
