# Empty compiler generated dependencies file for bench_f2_admin_ops.
# This may be replaced when dependencies are built.
