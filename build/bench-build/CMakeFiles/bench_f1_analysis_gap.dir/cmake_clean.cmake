file(REMOVE_RECURSE
  "../bench/bench_f1_analysis_gap"
  "../bench/bench_f1_analysis_gap.pdb"
  "CMakeFiles/bench_f1_analysis_gap.dir/bench_f1_analysis_gap.cc.o"
  "CMakeFiles/bench_f1_analysis_gap.dir/bench_f1_analysis_gap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_analysis_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
