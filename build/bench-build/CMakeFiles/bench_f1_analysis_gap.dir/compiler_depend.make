# Empty compiler generated dependencies file for bench_f1_analysis_gap.
# This may be replaced when dependencies are built.
