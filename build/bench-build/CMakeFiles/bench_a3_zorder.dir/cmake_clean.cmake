file(REMOVE_RECURSE
  "../bench/bench_a3_zorder"
  "../bench/bench_a3_zorder.pdb"
  "CMakeFiles/bench_a3_zorder.dir/bench_a3_zorder.cc.o"
  "CMakeFiles/bench_a3_zorder.dir/bench_a3_zorder.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_zorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
