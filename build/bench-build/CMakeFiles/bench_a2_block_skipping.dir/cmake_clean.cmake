file(REMOVE_RECURSE
  "../bench/bench_a2_block_skipping"
  "../bench/bench_a2_block_skipping.pdb"
  "CMakeFiles/bench_a2_block_skipping.dir/bench_a2_block_skipping.cc.o"
  "CMakeFiles/bench_a2_block_skipping.dir/bench_a2_block_skipping.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_block_skipping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
