# Empty compiler generated dependencies file for bench_a4_distribution.
# This may be replaced when dependencies are built.
