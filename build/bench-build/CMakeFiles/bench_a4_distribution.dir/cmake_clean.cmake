file(REMOVE_RECURSE
  "../bench/bench_a4_distribution"
  "../bench/bench_a4_distribution.pdb"
  "CMakeFiles/bench_a4_distribution.dir/bench_a4_distribution.cc.o"
  "CMakeFiles/bench_a4_distribution.dir/bench_a4_distribution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
