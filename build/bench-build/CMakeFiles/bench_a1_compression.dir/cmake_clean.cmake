file(REMOVE_RECURSE
  "../bench/bench_a1_compression"
  "../bench/bench_a1_compression.pdb"
  "CMakeFiles/bench_a1_compression.dir/bench_a1_compression.cc.o"
  "CMakeFiles/bench_a1_compression.dir/bench_a1_compression.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
