# Empty dependencies file for bench_a1_compression.
# This may be replaced when dependencies are built.
