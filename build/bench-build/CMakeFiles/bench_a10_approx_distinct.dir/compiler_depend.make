# Empty compiler generated dependencies file for bench_a10_approx_distinct.
# This may be replaced when dependencies are built.
