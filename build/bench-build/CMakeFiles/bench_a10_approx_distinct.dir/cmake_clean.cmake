file(REMOVE_RECURSE
  "../bench/bench_a10_approx_distinct"
  "../bench/bench_a10_approx_distinct.pdb"
  "CMakeFiles/bench_a10_approx_distinct.dir/bench_a10_approx_distinct.cc.o"
  "CMakeFiles/bench_a10_approx_distinct.dir/bench_a10_approx_distinct.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a10_approx_distinct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
