file(REMOVE_RECURSE
  "../bench/bench_a5_compilation"
  "../bench/bench_a5_compilation.pdb"
  "CMakeFiles/bench_a5_compilation.dir/bench_a5_compilation.cc.o"
  "CMakeFiles/bench_a5_compilation.dir/bench_a5_compilation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a5_compilation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
