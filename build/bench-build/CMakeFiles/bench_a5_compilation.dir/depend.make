# Empty dependencies file for bench_a5_compilation.
# This may be replaced when dependencies are built.
