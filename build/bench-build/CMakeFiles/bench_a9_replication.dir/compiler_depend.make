# Empty compiler generated dependencies file for bench_a9_replication.
# This may be replaced when dependencies are built.
