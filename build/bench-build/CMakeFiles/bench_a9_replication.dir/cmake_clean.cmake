file(REMOVE_RECURSE
  "../bench/bench_a9_replication"
  "../bench/bench_a9_replication.pdb"
  "CMakeFiles/bench_a9_replication.dir/bench_a9_replication.cc.o"
  "CMakeFiles/bench_a9_replication.dir/bench_a9_replication.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a9_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
