file(REMOVE_RECURSE
  "../bench/bench_a11_wlm"
  "../bench/bench_a11_wlm.pdb"
  "CMakeFiles/bench_a11_wlm.dir/bench_a11_wlm.cc.o"
  "CMakeFiles/bench_a11_wlm.dir/bench_a11_wlm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a11_wlm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
