# Empty compiler generated dependencies file for bench_a11_wlm.
# This may be replaced when dependencies are built.
