file(REMOVE_RECURSE
  "../bench/bench_a8_encryption"
  "../bench/bench_a8_encryption.pdb"
  "CMakeFiles/bench_a8_encryption.dir/bench_a8_encryption.cc.o"
  "CMakeFiles/bench_a8_encryption.dir/bench_a8_encryption.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a8_encryption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
