file(REMOVE_RECURSE
  "../bench/bench_f4_feature_velocity"
  "../bench/bench_f4_feature_velocity.pdb"
  "CMakeFiles/bench_f4_feature_velocity.dir/bench_f4_feature_velocity.cc.o"
  "CMakeFiles/bench_f4_feature_velocity.dir/bench_f4_feature_velocity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_feature_velocity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
