# Empty compiler generated dependencies file for bench_f4_feature_velocity.
# This may be replaced when dependencies are built.
