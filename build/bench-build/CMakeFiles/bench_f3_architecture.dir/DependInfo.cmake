
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_f3_architecture.cc" "bench-build/CMakeFiles/bench_f3_architecture.dir/bench_f3_architecture.cc.o" "gcc" "bench-build/CMakeFiles/bench_f3_architecture.dir/bench_f3_architecture.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/replication/CMakeFiles/sdw_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/controlplane/CMakeFiles/sdw_controlplane.dir/DependInfo.cmake"
  "/root/repo/build/src/fleet/CMakeFiles/sdw_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/warehouse/CMakeFiles/sdw_warehouse.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/sdw_security.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/sdw_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/load/CMakeFiles/sdw_load.dir/DependInfo.cmake"
  "/root/repo/build/src/backup/CMakeFiles/sdw_backup.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sdw_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sdw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/zorder/CMakeFiles/sdw_zorder.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/sdw_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/sdw_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sdw_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/sdw_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/sdw_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sdw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
