# Empty dependencies file for bench_f3_architecture.
# This may be replaced when dependencies are built.
