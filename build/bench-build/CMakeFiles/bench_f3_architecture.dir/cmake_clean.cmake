file(REMOVE_RECURSE
  "../bench/bench_f3_architecture"
  "../bench/bench_f3_architecture.pdb"
  "CMakeFiles/bench_f3_architecture.dir/bench_f3_architecture.cc.o"
  "CMakeFiles/bench_f3_architecture.dir/bench_f3_architecture.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
