# Empty compiler generated dependencies file for bench_a7_resize.
# This may be replaced when dependencies are built.
