file(REMOVE_RECURSE
  "../bench/bench_a7_resize"
  "../bench/bench_a7_resize.pdb"
  "CMakeFiles/bench_a7_resize.dir/bench_a7_resize.cc.o"
  "CMakeFiles/bench_a7_resize.dir/bench_a7_resize.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a7_resize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
