# Empty compiler generated dependencies file for bench_t1_edw_case_study.
# This may be replaced when dependencies are built.
