file(REMOVE_RECURSE
  "CMakeFiles/sdw_compress.dir/analyzer.cc.o"
  "CMakeFiles/sdw_compress.dir/analyzer.cc.o.d"
  "CMakeFiles/sdw_compress.dir/encodings.cc.o"
  "CMakeFiles/sdw_compress.dir/encodings.cc.o.d"
  "CMakeFiles/sdw_compress.dir/lz77.cc.o"
  "CMakeFiles/sdw_compress.dir/lz77.cc.o.d"
  "libsdw_compress.a"
  "libsdw_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdw_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
