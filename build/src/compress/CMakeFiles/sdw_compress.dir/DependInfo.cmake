
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/analyzer.cc" "src/compress/CMakeFiles/sdw_compress.dir/analyzer.cc.o" "gcc" "src/compress/CMakeFiles/sdw_compress.dir/analyzer.cc.o.d"
  "/root/repo/src/compress/encodings.cc" "src/compress/CMakeFiles/sdw_compress.dir/encodings.cc.o" "gcc" "src/compress/CMakeFiles/sdw_compress.dir/encodings.cc.o.d"
  "/root/repo/src/compress/lz77.cc" "src/compress/CMakeFiles/sdw_compress.dir/lz77.cc.o" "gcc" "src/compress/CMakeFiles/sdw_compress.dir/lz77.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sdw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/sdw_catalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
