# Empty compiler generated dependencies file for sdw_compress.
# This may be replaced when dependencies are built.
