file(REMOVE_RECURSE
  "libsdw_compress.a"
)
