# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("catalog")
subdirs("compress")
subdirs("zorder")
subdirs("storage")
subdirs("exec")
subdirs("plan")
subdirs("cluster")
subdirs("replication")
subdirs("backup")
subdirs("security")
subdirs("controlplane")
subdirs("fleet")
subdirs("sql")
subdirs("load")
subdirs("warehouse")
