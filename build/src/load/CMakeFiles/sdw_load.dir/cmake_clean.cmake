file(REMOVE_RECURSE
  "CMakeFiles/sdw_load.dir/copy.cc.o"
  "CMakeFiles/sdw_load.dir/copy.cc.o.d"
  "CMakeFiles/sdw_load.dir/formats.cc.o"
  "CMakeFiles/sdw_load.dir/formats.cc.o.d"
  "CMakeFiles/sdw_load.dir/infer.cc.o"
  "CMakeFiles/sdw_load.dir/infer.cc.o.d"
  "libsdw_load.a"
  "libsdw_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdw_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
