file(REMOVE_RECURSE
  "libsdw_load.a"
)
