# Empty dependencies file for sdw_load.
# This may be replaced when dependencies are built.
