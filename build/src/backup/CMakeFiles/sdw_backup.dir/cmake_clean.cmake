file(REMOVE_RECURSE
  "CMakeFiles/sdw_backup.dir/backup_manager.cc.o"
  "CMakeFiles/sdw_backup.dir/backup_manager.cc.o.d"
  "CMakeFiles/sdw_backup.dir/manifest.cc.o"
  "CMakeFiles/sdw_backup.dir/manifest.cc.o.d"
  "CMakeFiles/sdw_backup.dir/s3sim.cc.o"
  "CMakeFiles/sdw_backup.dir/s3sim.cc.o.d"
  "libsdw_backup.a"
  "libsdw_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdw_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
