file(REMOVE_RECURSE
  "libsdw_backup.a"
)
