# Empty compiler generated dependencies file for sdw_backup.
# This may be replaced when dependencies are built.
