# Empty compiler generated dependencies file for sdw_plan.
# This may be replaced when dependencies are built.
