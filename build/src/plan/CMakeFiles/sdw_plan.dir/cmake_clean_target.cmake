file(REMOVE_RECURSE
  "libsdw_plan.a"
)
