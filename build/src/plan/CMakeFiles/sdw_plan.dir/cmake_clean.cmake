file(REMOVE_RECURSE
  "CMakeFiles/sdw_plan.dir/physical.cc.o"
  "CMakeFiles/sdw_plan.dir/physical.cc.o.d"
  "CMakeFiles/sdw_plan.dir/planner.cc.o"
  "CMakeFiles/sdw_plan.dir/planner.cc.o.d"
  "libsdw_plan.a"
  "libsdw_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdw_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
