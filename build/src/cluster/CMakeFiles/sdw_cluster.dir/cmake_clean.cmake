file(REMOVE_RECURSE
  "CMakeFiles/sdw_cluster.dir/cluster.cc.o"
  "CMakeFiles/sdw_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/sdw_cluster.dir/executor.cc.o"
  "CMakeFiles/sdw_cluster.dir/executor.cc.o.d"
  "CMakeFiles/sdw_cluster.dir/wlm.cc.o"
  "CMakeFiles/sdw_cluster.dir/wlm.cc.o.d"
  "libsdw_cluster.a"
  "libsdw_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdw_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
