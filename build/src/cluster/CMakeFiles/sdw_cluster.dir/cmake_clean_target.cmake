file(REMOVE_RECURSE
  "libsdw_cluster.a"
)
