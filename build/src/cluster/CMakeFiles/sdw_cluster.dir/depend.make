# Empty dependencies file for sdw_cluster.
# This may be replaced when dependencies are built.
