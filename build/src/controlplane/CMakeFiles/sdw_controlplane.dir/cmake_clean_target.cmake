file(REMOVE_RECURSE
  "libsdw_controlplane.a"
)
