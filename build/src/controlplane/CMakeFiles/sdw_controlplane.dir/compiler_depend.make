# Empty compiler generated dependencies file for sdw_controlplane.
# This may be replaced when dependencies are built.
