file(REMOVE_RECURSE
  "CMakeFiles/sdw_controlplane.dir/control_plane.cc.o"
  "CMakeFiles/sdw_controlplane.dir/control_plane.cc.o.d"
  "libsdw_controlplane.a"
  "libsdw_controlplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdw_controlplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
