# Empty compiler generated dependencies file for sdw_sim.
# This may be replaced when dependencies are built.
