file(REMOVE_RECURSE
  "CMakeFiles/sdw_sim.dir/engine.cc.o"
  "CMakeFiles/sdw_sim.dir/engine.cc.o.d"
  "libsdw_sim.a"
  "libsdw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
