file(REMOVE_RECURSE
  "libsdw_sim.a"
)
