file(REMOVE_RECURSE
  "CMakeFiles/sdw_security.dir/chacha20.cc.o"
  "CMakeFiles/sdw_security.dir/chacha20.cc.o.d"
  "CMakeFiles/sdw_security.dir/keychain.cc.o"
  "CMakeFiles/sdw_security.dir/keychain.cc.o.d"
  "libsdw_security.a"
  "libsdw_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdw_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
