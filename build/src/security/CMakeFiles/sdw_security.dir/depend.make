# Empty dependencies file for sdw_security.
# This may be replaced when dependencies are built.
