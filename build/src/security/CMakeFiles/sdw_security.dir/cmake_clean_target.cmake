file(REMOVE_RECURSE
  "libsdw_security.a"
)
