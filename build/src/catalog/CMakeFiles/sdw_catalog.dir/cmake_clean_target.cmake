file(REMOVE_RECURSE
  "libsdw_catalog.a"
)
