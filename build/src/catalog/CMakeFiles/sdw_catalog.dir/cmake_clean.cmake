file(REMOVE_RECURSE
  "CMakeFiles/sdw_catalog.dir/catalog.cc.o"
  "CMakeFiles/sdw_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/sdw_catalog.dir/schema.cc.o"
  "CMakeFiles/sdw_catalog.dir/schema.cc.o.d"
  "CMakeFiles/sdw_catalog.dir/types.cc.o"
  "CMakeFiles/sdw_catalog.dir/types.cc.o.d"
  "libsdw_catalog.a"
  "libsdw_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdw_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
