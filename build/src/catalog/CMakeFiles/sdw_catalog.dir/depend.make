# Empty dependencies file for sdw_catalog.
# This may be replaced when dependencies are built.
