file(REMOVE_RECURSE
  "CMakeFiles/sdw_zorder.dir/zorder.cc.o"
  "CMakeFiles/sdw_zorder.dir/zorder.cc.o.d"
  "libsdw_zorder.a"
  "libsdw_zorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdw_zorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
