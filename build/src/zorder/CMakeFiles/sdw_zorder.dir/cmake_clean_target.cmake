file(REMOVE_RECURSE
  "libsdw_zorder.a"
)
