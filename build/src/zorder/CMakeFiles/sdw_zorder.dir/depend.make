# Empty dependencies file for sdw_zorder.
# This may be replaced when dependencies are built.
