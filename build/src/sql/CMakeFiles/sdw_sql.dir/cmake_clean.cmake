file(REMOVE_RECURSE
  "CMakeFiles/sdw_sql.dir/lexer.cc.o"
  "CMakeFiles/sdw_sql.dir/lexer.cc.o.d"
  "CMakeFiles/sdw_sql.dir/parser.cc.o"
  "CMakeFiles/sdw_sql.dir/parser.cc.o.d"
  "libsdw_sql.a"
  "libsdw_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdw_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
