file(REMOVE_RECURSE
  "libsdw_sql.a"
)
