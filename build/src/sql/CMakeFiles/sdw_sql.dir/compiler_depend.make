# Empty compiler generated dependencies file for sdw_sql.
# This may be replaced when dependencies are built.
