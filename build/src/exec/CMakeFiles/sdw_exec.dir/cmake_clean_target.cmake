file(REMOVE_RECURSE
  "libsdw_exec.a"
)
