# Empty compiler generated dependencies file for sdw_exec.
# This may be replaced when dependencies are built.
