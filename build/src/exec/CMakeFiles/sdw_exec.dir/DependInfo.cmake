
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/expr.cc" "src/exec/CMakeFiles/sdw_exec.dir/expr.cc.o" "gcc" "src/exec/CMakeFiles/sdw_exec.dir/expr.cc.o.d"
  "/root/repo/src/exec/hll.cc" "src/exec/CMakeFiles/sdw_exec.dir/hll.cc.o" "gcc" "src/exec/CMakeFiles/sdw_exec.dir/hll.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/exec/CMakeFiles/sdw_exec.dir/operators.cc.o" "gcc" "src/exec/CMakeFiles/sdw_exec.dir/operators.cc.o.d"
  "/root/repo/src/exec/row_executor.cc" "src/exec/CMakeFiles/sdw_exec.dir/row_executor.cc.o" "gcc" "src/exec/CMakeFiles/sdw_exec.dir/row_executor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sdw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/sdw_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sdw_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/sdw_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
