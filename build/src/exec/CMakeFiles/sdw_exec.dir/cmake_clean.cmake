file(REMOVE_RECURSE
  "CMakeFiles/sdw_exec.dir/expr.cc.o"
  "CMakeFiles/sdw_exec.dir/expr.cc.o.d"
  "CMakeFiles/sdw_exec.dir/hll.cc.o"
  "CMakeFiles/sdw_exec.dir/hll.cc.o.d"
  "CMakeFiles/sdw_exec.dir/operators.cc.o"
  "CMakeFiles/sdw_exec.dir/operators.cc.o.d"
  "CMakeFiles/sdw_exec.dir/row_executor.cc.o"
  "CMakeFiles/sdw_exec.dir/row_executor.cc.o.d"
  "libsdw_exec.a"
  "libsdw_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdw_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
