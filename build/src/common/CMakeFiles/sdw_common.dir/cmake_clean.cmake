file(REMOVE_RECURSE
  "CMakeFiles/sdw_common.dir/bytes.cc.o"
  "CMakeFiles/sdw_common.dir/bytes.cc.o.d"
  "CMakeFiles/sdw_common.dir/hash.cc.o"
  "CMakeFiles/sdw_common.dir/hash.cc.o.d"
  "CMakeFiles/sdw_common.dir/logging.cc.o"
  "CMakeFiles/sdw_common.dir/logging.cc.o.d"
  "CMakeFiles/sdw_common.dir/random.cc.o"
  "CMakeFiles/sdw_common.dir/random.cc.o.d"
  "CMakeFiles/sdw_common.dir/status.cc.o"
  "CMakeFiles/sdw_common.dir/status.cc.o.d"
  "CMakeFiles/sdw_common.dir/units.cc.o"
  "CMakeFiles/sdw_common.dir/units.cc.o.d"
  "libsdw_common.a"
  "libsdw_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdw_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
