file(REMOVE_RECURSE
  "libsdw_common.a"
)
