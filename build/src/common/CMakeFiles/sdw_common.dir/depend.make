# Empty dependencies file for sdw_common.
# This may be replaced when dependencies are built.
