# Empty dependencies file for sdw_warehouse.
# This may be replaced when dependencies are built.
