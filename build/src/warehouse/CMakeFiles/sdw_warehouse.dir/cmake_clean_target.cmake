file(REMOVE_RECURSE
  "libsdw_warehouse.a"
)
