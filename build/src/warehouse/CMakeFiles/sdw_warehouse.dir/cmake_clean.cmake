file(REMOVE_RECURSE
  "CMakeFiles/sdw_warehouse.dir/warehouse.cc.o"
  "CMakeFiles/sdw_warehouse.dir/warehouse.cc.o.d"
  "libsdw_warehouse.a"
  "libsdw_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdw_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
