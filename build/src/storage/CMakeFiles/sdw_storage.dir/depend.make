# Empty dependencies file for sdw_storage.
# This may be replaced when dependencies are built.
