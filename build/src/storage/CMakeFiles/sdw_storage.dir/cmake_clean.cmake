file(REMOVE_RECURSE
  "CMakeFiles/sdw_storage.dir/block_store.cc.o"
  "CMakeFiles/sdw_storage.dir/block_store.cc.o.d"
  "CMakeFiles/sdw_storage.dir/table_shard.cc.o"
  "CMakeFiles/sdw_storage.dir/table_shard.cc.o.d"
  "libsdw_storage.a"
  "libsdw_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdw_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
