file(REMOVE_RECURSE
  "libsdw_storage.a"
)
