file(REMOVE_RECURSE
  "libsdw_replication.a"
)
