file(REMOVE_RECURSE
  "CMakeFiles/sdw_replication.dir/replication.cc.o"
  "CMakeFiles/sdw_replication.dir/replication.cc.o.d"
  "libsdw_replication.a"
  "libsdw_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdw_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
