# Empty dependencies file for sdw_replication.
# This may be replaced when dependencies are built.
