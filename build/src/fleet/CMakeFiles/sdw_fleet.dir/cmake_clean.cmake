file(REMOVE_RECURSE
  "CMakeFiles/sdw_fleet.dir/fleet.cc.o"
  "CMakeFiles/sdw_fleet.dir/fleet.cc.o.d"
  "libsdw_fleet.a"
  "libsdw_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdw_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
