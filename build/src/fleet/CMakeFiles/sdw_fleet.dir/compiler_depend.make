# Empty compiler generated dependencies file for sdw_fleet.
# This may be replaced when dependencies are built.
