file(REMOVE_RECURSE
  "libsdw_fleet.a"
)
