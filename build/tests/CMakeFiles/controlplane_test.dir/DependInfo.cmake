
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/controlplane_test.cc" "tests/CMakeFiles/controlplane_test.dir/controlplane_test.cc.o" "gcc" "tests/CMakeFiles/controlplane_test.dir/controlplane_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/controlplane/CMakeFiles/sdw_controlplane.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sdw_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sdw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/sdw_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/sdw_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sdw_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/sdw_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/zorder/CMakeFiles/sdw_zorder.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/sdw_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sdw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
