# Empty dependencies file for encrypted_warehouse_test.
# This may be replaced when dependencies are built.
