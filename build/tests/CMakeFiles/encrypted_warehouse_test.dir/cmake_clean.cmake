file(REMOVE_RECURSE
  "CMakeFiles/encrypted_warehouse_test.dir/encrypted_warehouse_test.cc.o"
  "CMakeFiles/encrypted_warehouse_test.dir/encrypted_warehouse_test.cc.o.d"
  "encrypted_warehouse_test"
  "encrypted_warehouse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encrypted_warehouse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
