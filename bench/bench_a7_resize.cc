// A7: elastic resize (§3.1) — "customers can resize their clusters up
// or down ... we provision a new cluster, put the original cluster in
// read-only mode, and run a parallel node-to-node copy ... the source
// cluster is available for reads until the operation completes."

#include <cstdio>

#include <algorithm>
#include <memory>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "cluster/cluster.h"
#include "cluster/executor.h"
#include "common/random.h"
#include "common/units.h"
#include "plan/planner.h"

namespace {

std::unique_ptr<sdw::cluster::Cluster> Build(int nodes, size_t rows) {
  sdw::cluster::ClusterConfig config;
  config.num_nodes = nodes;
  config.slices_per_node = 2;
  config.storage.max_rows_per_block = 8192;
  auto cluster = std::make_unique<sdw::cluster::Cluster>(config);
  sdw::TableSchema schema("t", {{"k", sdw::TypeId::kInt64},
                                {"v", sdw::TypeId::kInt64}});
  SDW_CHECK_OK(schema.SetDistKey("k"));
  SDW_CHECK_OK(cluster->CreateTable(schema));
  sdw::Rng rng(3);
  sdw::ColumnVector k(sdw::TypeId::kInt64), v(sdw::TypeId::kInt64);
  for (size_t i = 0; i < rows; ++i) {
    k.AppendInt(static_cast<int64_t>(rng.Next() % 100000));
    v.AppendInt(rng.UniformRange(0, 100));
  }
  std::vector<sdw::ColumnVector> cols;
  cols.push_back(std::move(k));
  cols.push_back(std::move(v));
  SDW_CHECK_OK(cluster->InsertRows("t", cols));
  return cluster;
}

int64_t CountRows(sdw::cluster::Cluster* cluster) {
  sdw::plan::LogicalQuery q;
  q.from_table = "t";
  q.select = {{sdw::plan::LogicalAggFn::kCountStar, {}, "n"}};
  sdw::plan::Planner planner(cluster->catalog());
  auto physical = planner.Plan(q);
  SDW_CHECK(physical.ok());
  sdw::cluster::QueryExecutor executor(cluster);
  auto result = executor.Execute(*physical);
  SDW_CHECK(result.ok());
  return result->rows.columns[0].IntAt(0);
}

}  // namespace

int main() {
  benchutil::Banner("A7", "elastic resize via parallel node-to-node copy",
                    "source stays readable; copy time scales with data and "
                    "shrinks with parallelism; no up-front sizing needed");

  const size_t kRows = 400000;
  std::printf("\nResize of a %zu-row warehouse:\n", kRows);
  std::printf("\n%10s  %12s  %14s  %18s  %16s\n", "resize", "bytes_moved",
              "modeled_copy", "source_readable", "rows_after");

  double copy_2_to_4 = 0, copy_8_to_16 = 0;
  bool always_readable = true;
  bool rows_preserved = true;
  for (auto [from, to] : {std::pair{2, 4}, {4, 2}, {2, 16}, {8, 16}}) {
    auto cluster = Build(from, kRows);
    const int64_t before = CountRows(cluster.get());
    sdw::cluster::Cluster::ResizeStats stats;
    auto target = cluster->Resize(to, &stats);
    SDW_CHECK(target.ok());
    // Source keeps answering reads mid-flight (read-only mode).
    const bool readable = CountRows(cluster.get()) == before &&
                          cluster->read_only();
    const int64_t after = CountRows(target->get());
    std::printf("%7d->%-2d  %12s  %14s  %18s  %16lld\n", from, to,
                sdw::FormatBytes(stats.bytes_moved).c_str(),
                sdw::FormatDuration(stats.modeled_seconds).c_str(),
                readable ? "yes" : "NO", static_cast<long long>(after));
    always_readable = always_readable && readable;
    rows_preserved = rows_preserved && after == before;
    if (from == 2 && to == 4) copy_2_to_4 = stats.modeled_seconds;
    if (from == 8 && to == 16) copy_8_to_16 = stats.modeled_seconds;
  }

  // Reads against the (resize-source) cluster use the slice pool too:
  // measure the same read-back query serially vs in parallel.
  std::printf("\nReal serial vs parallel wall clock of the read-back query "
              "(8 nodes x 2 slices):\n\n");
  {
    auto cluster = Build(8, kRows);
    sdw::plan::LogicalQuery q;
    q.from_table = "t";
    q.select = {{sdw::plan::LogicalAggFn::kNone, {"", "k"}, ""},
                {sdw::plan::LogicalAggFn::kCountStar, {}, "n"},
                {sdw::plan::LogicalAggFn::kSum, {"", "v"}, "s"}};
    q.group_by = {{"", "k"}};
    sdw::plan::Planner planner(cluster->catalog());
    auto physical = planner.Plan(q);
    SDW_CHECK(physical.ok());
    auto run = [&](int pool_size) {
      sdw::cluster::ExecOptions opts;
      opts.pool_size = pool_size;
      sdw::cluster::QueryExecutor executor(cluster.get(), opts);
      SDW_CHECK(executor.Execute(*physical).ok());  // warm checksums
      return benchutil::TimeIt([&] {
        for (int rep = 0; rep < 3; ++rep) {
          SDW_CHECK(executor.Execute(*physical).ok());
        }
      });
    };
    benchutil::RealSpeedup("read-back group-by", run(0), run(16));
  }

  std::printf("\n");
  benchutil::Check(always_readable,
                   "the source cluster serves reads during every resize");
  benchutil::Check(rows_preserved, "resize never loses a row");
  benchutil::Check(copy_8_to_16 < copy_2_to_4,
                   "more sender nodes -> faster parallel copy");
  return 0;
}
