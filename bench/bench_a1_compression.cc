// A1: per-column compression — encoding ratio and speed per data shape,
// and the sampling analyzer's automatic choice (the paper's "dusty
// knob": "we automatically pick compression types based on data
// sampling", §1; tradeoffs per Abadi et al. [2]).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "compress/analyzer.h"
#include "compress/codec.h"

namespace {

using sdw::ColumnEncoding;
using sdw::ColumnVector;
using sdw::TypeId;

struct ShapeSpec {
  const char* name;
  TypeId type;
  std::function<void(sdw::Rng*, ColumnVector*)> append;
};

std::vector<ShapeSpec> Shapes() {
  return {
      {"sorted_timestamps", TypeId::kInt64,
       [](sdw::Rng* rng, ColumnVector* v) {
         static thread_local int64_t ts = 1400000000;
         v->AppendInt(ts += static_cast<int64_t>(rng->Uniform(5)));
       }},
      {"small_ints(+/-100)", TypeId::kInt64,
       [](sdw::Rng* rng, ColumnVector* v) {
         v->AppendInt(rng->UniformRange(-100, 100));
       }},
      {"uniform_ints", TypeId::kInt64,
       [](sdw::Rng* rng, ColumnVector* v) {
         v->AppendInt(static_cast<int64_t>(rng->Next()));
       }},
      {"long_runs", TypeId::kInt64,
       [](sdw::Rng* rng, ColumnVector* v) {
         static thread_local int i = 0;
         v->AppendInt(i++ / 200);
       }},
      {"low_card_strings", TypeId::kString,
       [](sdw::Rng* rng, ColumnVector* v) {
         v->AppendString("region-" + std::to_string(rng->Uniform(12)));
       }},
      {"url_paths", TypeId::kString,
       [](sdw::Rng* rng, ColumnVector* v) {
         v->AppendString("/products/category-" +
                         std::to_string(rng->Zipf(500, 1.0)) + "/item");
       }},
      {"wordy_text", TypeId::kString,
       [](sdw::Rng* rng, ColumnVector* v) {
         static const char* kWords[] = {"add",  "to",   "cart", "view",
                                        "page", "user", "clicked", "buy"};
         std::string s;
         for (int w = 0; w < 6; ++w) {
           if (w) s += ' ';
           s += kWords[rng->Uniform(8)];
         }
         v->AppendString(s);
       }},
      {"gaussian_doubles", TypeId::kDouble,
       [](sdw::Rng* rng, ColumnVector* v) {
         v->AppendDouble(rng->Normal(250.0, 40.0));
       }},
  };
}

}  // namespace

int main() {
  benchutil::Banner("A1", "per-column compression + automatic COMPUPDATE",
                    "analyzer picks a near-best encoding per column shape "
                    "without customer input");

  const size_t kRows = 100000;
  bool analyzer_near_best = true;
  bool analyzer_beats_raw_when_possible = true;

  for (const auto& shape : Shapes()) {
    sdw::Rng rng(99);
    ColumnVector column(shape.type);
    column.Reserve(kRows);
    for (size_t i = 0; i < kRows; ++i) shape.append(&rng, &column);

    sdw::Bytes raw;
    (void)sdw::compress::EncodeColumn(ColumnEncoding::kRaw, column, &raw);

    std::printf("\n%s (%zu rows, raw %.1f KiB):\n", shape.name, kRows,
                raw.size() / 1024.0);
    std::printf("  %-10s  %8s  %12s  %12s\n", "encoding", "ratio",
                "enc MB/s", "dec MB/s");
    size_t best_bytes = raw.size();
    for (ColumnEncoding enc : sdw::compress::CandidateEncodings(shape.type)) {
      sdw::Bytes encoded;
      double enc_seconds = benchutil::TimeIt([&] {
        encoded.clear();
        (void)sdw::compress::EncodeColumn(enc, column, &encoded);
      });
      if (encoded.empty()) continue;
      double dec_seconds = benchutil::TimeIt([&] {
        auto decoded = sdw::compress::DecodeColumn(enc, shape.type, encoded);
        if (!decoded.ok()) std::abort();
      });
      best_bytes = std::min(best_bytes, encoded.size());
      std::printf("  %-10s  %7.2fx  %12.0f  %12.0f\n",
                  sdw::ColumnEncodingName(enc),
                  static_cast<double>(raw.size()) / encoded.size(),
                  raw.size() / 1e6 / enc_seconds,
                  raw.size() / 1e6 / dec_seconds);
    }

    auto analysis = sdw::compress::AnalyzeColumn(column);
    if (!analysis.ok()) return 1;
    std::printf("  analyzer picked: %-10s (sample ratio %.2fx)\n",
                sdw::ColumnEncodingName(analysis->encoding),
                analysis->ratio());
    // Validate the pick against the best candidate on the full column.
    sdw::Bytes picked;
    (void)sdw::compress::EncodeColumn(analysis->encoding, column, &picked);
    if (picked.size() > best_bytes * 1.35 + 1024) {
      analyzer_near_best = false;
      std::printf("  !! pick is %.0f%% larger than best\n",
                  100.0 * picked.size() / best_bytes - 100);
    }
    if (best_bytes < raw.size() / 2 &&
        analysis->encoding == ColumnEncoding::kRaw) {
      analyzer_beats_raw_when_possible = false;
    }
  }

  std::printf("\n");
  benchutil::Check(analyzer_near_best,
                   "analyzer within 35% of the best encoding on every shape");
  benchutil::Check(analyzer_beats_raw_when_possible,
                   "analyzer never stays RAW when 2x+ compression exists");
  return 0;
}
