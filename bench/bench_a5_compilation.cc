// A5: query compilation (§2.1) — "the use of query compilation adds a
// fixed overhead per query that ... is generally amortized by the
// tighter execution at compute nodes vs the overhead of execution in a
// general-purpose set of executor functions". We measure the
// type-specialized vectorized engine against the tuple-at-a-time
// interpreted engine on the same scan-filter-aggregate, charge the
// compiled side a fixed 2 s compile cost, and find the crossover.

#include <cstdio>

#include <algorithm>
#include <memory>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "cluster/cluster.h"
#include "cluster/executor.h"
#include "common/random.h"
#include "common/units.h"
#include "plan/planner.h"

namespace {

using sdw::cluster::Cluster;
using sdw::cluster::ExecOptions;
using sdw::cluster::ExecutionMode;
using sdw::cluster::QueryExecutor;

constexpr double kCompileSeconds = 2.0;

std::unique_ptr<Cluster> Build(size_t rows, int slices = 1) {
  sdw::cluster::ClusterConfig config;
  config.num_nodes = 1;
  config.slices_per_node = slices;
  config.storage.max_rows_per_block = 16384;
  auto cluster = std::make_unique<Cluster>(config);
  sdw::TableSchema schema("t", {{"grp", sdw::TypeId::kInt64},
                                {"flag", sdw::TypeId::kInt64},
                                {"v", sdw::TypeId::kDouble}});
  SDW_CHECK_OK(cluster->CreateTable(schema));
  sdw::Rng rng(31);
  const size_t kBatch = 200000;
  for (size_t done = 0; done < rows; done += kBatch) {
    const size_t n = std::min(kBatch, rows - done);
    sdw::ColumnVector grp(sdw::TypeId::kInt64), flag(sdw::TypeId::kInt64),
        v(sdw::TypeId::kDouble);
    for (size_t i = 0; i < n; ++i) {
      grp.AppendInt(rng.UniformRange(0, 31));
      flag.AppendInt(rng.UniformRange(0, 9));
      v.AppendDouble(rng.NextDouble());
    }
    std::vector<sdw::ColumnVector> cols;
    cols.push_back(std::move(grp));
    cols.push_back(std::move(flag));
    cols.push_back(std::move(v));
    SDW_CHECK_OK(cluster->InsertRows("t", cols));
  }
  return cluster;
}

sdw::plan::LogicalQuery Query() {
  sdw::plan::LogicalQuery q;
  q.from_table = "t";
  q.where = {{{"", "flag"}, sdw::plan::LogicalCmp::kLt, sdw::Datum::Int64(7)}};
  q.select = {{sdw::plan::LogicalAggFn::kNone, {"", "grp"}, ""},
              {sdw::plan::LogicalAggFn::kCountStar, {}, "n"},
              {sdw::plan::LogicalAggFn::kSum, {"", "v"}, "s"}};
  q.group_by = {{"", "grp"}};
  return q;
}

}  // namespace

int main() {
  benchutil::Banner("A5", "compiled vs interpreted query execution",
                    "fixed compile cost amortizes: interpreted wins tiny "
                    "queries, compiled wins by >5x at scale");

  std::printf("\nscan-filter-aggregate, single slice; compiled charged a "
              "fixed %.1fs compile cost:\n", kCompileSeconds);
  std::printf("\n%10s  %12s  %12s  %10s  %18s  %18s\n", "rows",
              "compiled_exec", "interpreted", "speedup",
              "compiled+compile", "winner");

  double speedup_at_max = 0;
  bool interpreted_wins_small = false;
  bool compiled_wins_large = false;
  for (size_t rows : {10000ul, 50000ul, 200000ul, 1000000ul, 4000000ul, 16000000ul}) {
    auto cluster = Build(rows);
    sdw::plan::Planner planner(cluster->catalog());
    auto physical = planner.Plan(Query());
    SDW_CHECK(physical.ok());

    QueryExecutor compiled(cluster.get(),
                           ExecOptions{ExecutionMode::kCompiled, 0.0});
    // Warm-up pass: pay one-time checksum verification outside the
    // measurement (both engines share the storage layer).
    SDW_CHECK(compiled.Execute(*physical).ok());
    auto compiled_result = compiled.Execute(*physical);
    SDW_CHECK(compiled_result.ok());
    const double compiled_exec =
        compiled_result->stats.MaxSliceSeconds() +
        compiled_result->stats.leader_seconds;

    QueryExecutor interpreted(cluster.get(),
                              ExecOptions{ExecutionMode::kInterpreted, 0.0});
    auto interpreted_result = interpreted.Execute(*physical);
    SDW_CHECK(interpreted_result.ok());
    const double interpreted_exec =
        interpreted_result->stats.MaxSliceSeconds() +
        interpreted_result->stats.leader_seconds;

    const double speedup = interpreted_exec / compiled_exec;
    const double with_compile = compiled_exec + kCompileSeconds;
    const char* winner =
        with_compile < interpreted_exec ? "compiled" : "interpreted";
    std::printf("%10zu  %12s  %12s  %9.1fx  %18s  %18s\n", rows,
                sdw::FormatDuration(compiled_exec).c_str(),
                sdw::FormatDuration(interpreted_exec).c_str(), speedup,
                sdw::FormatDuration(with_compile).c_str(), winner);
    speedup_at_max = speedup;
    if (rows == 10000 && with_compile > interpreted_exec) {
      interpreted_wins_small = true;
    }
    if (rows == 16000000 && with_compile < interpreted_exec) {
      compiled_wins_large = true;
    }
  }

  // Real slice parallelism on the compiled engine: the same scan on a
  // 4-slice node with the pool disabled vs one worker per slice.
  std::printf("\nReal serial vs parallel wall clock (4 slices, 4M rows):\n\n");
  {
    auto cluster = Build(4000000, /*slices=*/4);
    sdw::plan::Planner planner(cluster->catalog());
    auto physical = planner.Plan(Query());
    SDW_CHECK(physical.ok());
    auto run = [&](int pool_size) {
      sdw::cluster::ExecOptions opts;
      opts.pool_size = pool_size;
      QueryExecutor executor(cluster.get(), opts);
      SDW_CHECK(executor.Execute(*physical).ok());  // warm checksums
      return benchutil::TimeIt([&] {
        for (int rep = 0; rep < 3; ++rep) {
          SDW_CHECK(executor.Execute(*physical).ok());
        }
      });
    };
    benchutil::RealSpeedup("compiled scan-filter-agg", run(0), run(4));
  }

  // Observability overhead: the same compiled scan with per-query trace
  // spans on (the default) vs off. Registry counters are unconditional
  // in both arms; the trace flag covers all per-query span bookkeeping.
  std::printf("\nObservability overhead (4 slices, 4M rows, compiled):\n\n");
  double obs_overhead = 0;
  {
    auto cluster = Build(4000000, /*slices=*/4);
    sdw::plan::Planner planner(cluster->catalog());
    auto physical = planner.Plan(Query());
    SDW_CHECK(physical.ok());
    auto run = [&](bool trace) {
      sdw::cluster::ExecOptions opts;
      opts.pool_size = 4;
      opts.trace = trace;
      QueryExecutor executor(cluster.get(), opts);
      SDW_CHECK(executor.Execute(*physical).ok());  // warm checksums
      double best = 0;
      for (int trial = 0; trial < 3; ++trial) {
        const double t = benchutil::TimeIt([&] {
          for (int rep = 0; rep < 5; ++rep) {
            SDW_CHECK(executor.Execute(*physical).ok());
          }
        });
        best = trial == 0 ? t : std::min(best, t);
      }
      return best;
    };
    const double off = run(false);
    const double on = run(true);
    obs_overhead = off > 0 ? (on - off) / off : 0;
    std::printf("  trace off %.3fs, trace on %.3fs -> %+.1f%% overhead\n",
                off, on, obs_overhead * 100);
    benchutil::JsonMetric("obs.trace_off_seconds", off);
    benchutil::JsonMetric("obs.trace_on_seconds", on);
    benchutil::JsonMetric("obs.overhead_fraction", obs_overhead);
  }

  std::printf("\n");
  benchutil::Check(obs_overhead <= 0.05,
                   "trace spans add <=5% to the compiled hot path");
  benchutil::Check(speedup_at_max > 5,
                   "tight execution is >5x faster per row than the "
                   "general-purpose executor");
  benchutil::Check(interpreted_wins_small,
                   "fixed compile overhead dominates tiny queries");
  benchutil::Check(compiled_wins_large,
                   "compile cost fully amortized on warehouse-scale scans");
  return 0;
}
