// A11 (extension): workload management — the one engine knob Redshift
// ships with a working default (5 concurrency slots). §4: SQL's value
// grows "when computation needs to be distributed and parallelized
// across many nodes, and resources distributed across many concurrent
// queries". This ablation shows why a fixed middle-of-the-road default
// is the simplicity-friendly choice: narrow configs queue, wide configs
// starve each query of memory.

#include <cstdio>

#include "bench/bench_util.h"
#include "cluster/wlm.h"
#include "common/random.h"
#include "common/units.h"

namespace {

struct RunStats {
  double mean_latency = 0;
  double p95_latency = 0;
  double mean_queue = 0;
  double makespan = 0;
};

RunStats RunMix(int slots, uint64_t seed) {
  sdw::sim::Engine engine;
  sdw::cluster::WlmConfig config;
  config.concurrency_slots = slots;
  config.per_slot_memory_penalty = 0.04;
  sdw::cluster::WorkloadManager wlm(&engine, config);
  sdw::Rng rng(seed);
  // A BI mix: many 1-3s dashboard queries + a few 30-90s heavies,
  // Poisson arrivals over a 10-minute burst.
  double t = 0;
  for (int i = 0; i < 300; ++i) {
    t += rng.Exponential(2.0);
    const double service = rng.Bernoulli(0.08)
                               ? rng.UniformRange(30, 90)
                               : 1.0 + rng.NextDouble() * 2.0;
    engine.ScheduleAt(t, [&wlm, service] { wlm.Submit(service); });
  }
  engine.Run();
  RunStats stats;
  std::vector<double> latencies;
  for (const auto& r : wlm.reports()) {
    const double latency = r.finished_at - r.submitted_at;
    latencies.push_back(latency);
    stats.mean_latency += latency;
    stats.mean_queue += r.queued_seconds;
    stats.makespan = std::max(stats.makespan, r.finished_at);
  }
  stats.mean_latency /= latencies.size();
  stats.mean_queue /= latencies.size();
  std::sort(latencies.begin(), latencies.end());
  stats.p95_latency = latencies[latencies.size() * 95 / 100];
  return stats;
}

}  // namespace

int main() {
  benchutil::Banner(
      "A11 (extension)", "workload-management concurrency ablation",
      "1 slot queues, 50 slots starve memory; the shipped default (5) "
      "needs no tuning — the knob stays dusty");

  std::printf("\n300-query BI mix (92%% short, 8%% heavy), 30 seeds:\n");
  std::printf("\n%8s  %14s  %14s  %14s\n", "slots", "mean_latency",
              "p95_latency", "mean_queue");

  double best_mean = 1e300;
  int best_slots = 0;
  double narrow_mean = 0, wide_mean = 0, default_mean = 0;
  for (int slots : {1, 2, 5, 10, 20, 50}) {
    RunStats total{};
    const int kSeeds = 30;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
      RunStats s = RunMix(slots, seed);
      total.mean_latency += s.mean_latency / kSeeds;
      total.p95_latency += s.p95_latency / kSeeds;
      total.mean_queue += s.mean_queue / kSeeds;
    }
    std::printf("%8d  %14s  %14s  %14s\n", slots,
                sdw::FormatDuration(total.mean_latency).c_str(),
                sdw::FormatDuration(total.p95_latency).c_str(),
                sdw::FormatDuration(total.mean_queue).c_str());
    if (total.mean_latency < best_mean) {
      best_mean = total.mean_latency;
      best_slots = slots;
    }
    if (slots == 1) narrow_mean = total.mean_latency;
    if (slots == 50) wide_mean = total.mean_latency;
    if (slots == 5) default_mean = total.mean_latency;
  }

  std::printf("\nbest mean latency at %d slots\n\n", best_slots);
  benchutil::Check(default_mean < narrow_mean,
                   "the default beats single-slot queueing");
  benchutil::Check(default_mean < wide_mean,
                   "the default beats memory-starved wide configs");
  benchutil::Check(best_slots >= 2 && best_slots <= 20,
                   "the sweet spot sits in the shipped-default range");
  return 0;
}
