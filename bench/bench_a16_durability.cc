// A16 (extension): durable-commit recovery — crash, replay, verify.
// §2.2-2.3 make S3 the durability story; the commit log extends it
// from blocks to commits: every acknowledged statement is in the
// S3-backed log (or a snapshot above its LSN) before it is acked, so a
// crashed warehouse rebuilds exactly-acknowledged state by restoring
// the recovery-base snapshot and replaying the log tail. Shape under
// test: recovery time grows with the length of the log tail, collapses
// after a fresh snapshot truncates it, and the recovered state is
// byte-identical to a never-crashed twin at every tail length.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "backup/s3sim.h"
#include "bench/bench_util.h"
#include "common/logging.h"
#include "durability/commit_log.h"
#include "obs/registry.h"
#include "warehouse/warehouse.h"

namespace {

using sdw::warehouse::Warehouse;
using sdw::warehouse::WarehouseOptions;

constexpr int kRowsPerInsert = 64;

WarehouseOptions Options(sdw::backup::S3* shared) {
  WarehouseOptions options;
  options.cluster.num_nodes = 2;
  options.cluster.slices_per_node = 2;
  options.cluster.storage.max_rows_per_block = 512;
  options.shared_s3 = shared;
  return options;
}

std::string InsertStatement(int seq) {
  std::string sql = "INSERT INTO t VALUES ";
  for (int i = 0; i < kRowsPerInsert; ++i) {
    const int row = seq * kRowsPerInsert + i;
    if (i) sql += ", ";
    sql += "(" + std::to_string(row % 97) + ", " + std::to_string(row) + ")";
  }
  return sql;
}

/// The acknowledged history for a tail of `commits` inserts.
std::vector<std::string> History(int commits) {
  std::vector<std::string> script = {"CREATE TABLE t (k BIGINT, v BIGINT)"};
  for (int i = 0; i < commits; ++i) script.push_back(InsertStatement(i));
  return script;
}

std::string StateDump(Warehouse* wh) {
  auto r = wh->Execute(
      "SELECT k, COUNT(*) AS n, SUM(v) AS s FROM t GROUP BY k ORDER BY k");
  SDW_CHECK_OK(r.status());
  return r->ToTable(1u << 30);
}

}  // namespace

int main() {
  benchutil::Banner(
      "A16 (extension)", "durable commits: crash, replay, recover",
      "recovery time grows with the commit-log tail, collapses after a "
      "fresh snapshot, and recovered state is byte-identical to a "
      "never-crashed twin");

  const std::vector<int> tails = {8, 32, 128};
  std::vector<double> recover_seconds;
  bool all_identical = true;
  bool replay_counts_exact = true;

  for (int commits : tails) {
    sdw::backup::S3 shared;
    auto victim = std::make_unique<Warehouse>(Options(&shared));
    for (const std::string& sql : History(commits)) {
      SDW_CHECK_OK(victim->Execute(sql).status());
    }
    // Crash at the ack boundary: the last statement is logged (hence
    // durable) but its acknowledgment never made it out.
    victim->crash_points()->ArmCrash(sdw::durability::kCrashPreAck);
    SDW_CHECK(!victim->Execute(InsertStatement(commits)).ok())
        << "armed crash did not fire";

    auto reborn = std::make_unique<Warehouse>(Options(&shared));
    sdw::Result<Warehouse::RecoverStats> recovered =
        sdw::Status::Internal("recover not run");
    const double seconds =
        benchutil::TimeIt([&] { recovered = reborn->Recover(); });
    SDW_CHECK_OK(recovered.status());
    recover_seconds.push_back(seconds);
    // CREATE + `commits` inserts + the crashed-but-logged one.
    replay_counts_exact =
        replay_counts_exact &&
        recovered->replayed_records == static_cast<uint64_t>(commits) + 2;

    Warehouse twin(Options(nullptr));
    for (const std::string& sql : History(commits)) {
      SDW_CHECK_OK(twin.Execute(sql).status());
    }
    SDW_CHECK_OK(twin.Execute(InsertStatement(commits)).status());
    all_identical =
        all_identical && StateDump(reborn.get()) == StateDump(&twin);

    std::printf("  tail %4d commits: recover %.4fs (%llu records "
                "replayed)\n",
                commits, seconds,
                static_cast<unsigned long long>(recovered->replayed_records));
    const std::string prefix = "recover.tail_" + std::to_string(commits);
    benchutil::JsonMetric((prefix + ".seconds").c_str(), seconds);
    benchutil::JsonMetric((prefix + ".replayed_records").c_str(),
                          static_cast<double>(recovered->replayed_records));
  }

  // --- A fresh snapshot absorbs the tail: recovery collapses ---------
  sdw::backup::S3 shared;
  auto victim = std::make_unique<Warehouse>(Options(&shared));
  for (const std::string& sql : History(tails.back())) {
    SDW_CHECK_OK(victim->Execute(sql).status());
  }
  SDW_CHECK_OK(victim->Backup().status());
  victim->crash_points()->ArmCrash(sdw::durability::kCrashPreLog);
  SDW_CHECK(!victim->Execute(InsertStatement(tails.back())).ok())
      << "armed crash did not fire";

  auto reborn = std::make_unique<Warehouse>(Options(&shared));
  sdw::Result<Warehouse::RecoverStats> recovered =
        sdw::Status::Internal("recover not run");
  const double snapshot_seconds =
      benchutil::TimeIt([&] { recovered = reborn->Recover(); });
  SDW_CHECK_OK(recovered.status());
  std::printf("  after snapshot:   recover %.4fs (%llu records replayed, "
              "base %llu)\n",
              snapshot_seconds,
              static_cast<unsigned long long>(recovered->replayed_records),
              static_cast<unsigned long long>(recovered->base_snapshot_id));
  benchutil::JsonMetric("recover.after_snapshot.seconds", snapshot_seconds);
  benchutil::JsonMetric("recover.after_snapshot.replayed_records",
                        static_cast<double>(recovered->replayed_records));
  benchutil::JsonMetric(
      "log.appends",
      static_cast<double>(sdw::obs::Registry::Global()
                              .counter("sdw_durability_log_appends")
                              ->value()));

  benchutil::Check(all_identical,
                   "recovered state is byte-identical to the never-crashed "
                   "twin at every tail length");
  benchutil::Check(replay_counts_exact,
                   "replay applied exactly the acknowledged+logged records "
                   "(no loss, no duplicates)");
  benchutil::Check(recover_seconds.front() < recover_seconds.back(),
                   "recovery time grows with the log-tail length");
  benchutil::Check(recovered->replayed_records == 0,
                   "a fresh snapshot absorbs the tail: nothing replays");
  benchutil::Check(snapshot_seconds < recover_seconds.back(),
                   "post-snapshot recovery is faster than replaying the "
                   "longest tail");
  return 0;
}
