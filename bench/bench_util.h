#ifndef SDW_BENCH_BENCH_UTIL_H_
#define SDW_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

namespace benchutil {

/// Prints the experiment banner: which paper artifact this bench
/// regenerates and what shape it checks.
inline void Banner(const char* id, const char* artifact, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, artifact);
  std::printf("claim: %s\n", claim);
  std::printf("================================================================\n");
}

/// Wall-clock seconds of fn().
inline double TimeIt(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Prints a PASS/FAIL shape-check line (benches exit 0 either way so the
/// full suite always produces its tables; EXPERIMENTS.md records these).
inline bool Check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "SHAPE-OK" : "SHAPE-FAIL", what);
  return ok;
}

/// Prints measured (not modeled) serial vs parallel wall clock and the
/// real speedup — the executor's pool_size=0 arm against its pooled
/// arm. Returns the speedup factor.
inline double RealSpeedup(const char* what, double serial_seconds,
                          double parallel_seconds) {
  const double speedup =
      parallel_seconds > 0 ? serial_seconds / parallel_seconds : 0;
  std::printf("  real wall-clock [%s]: serial %.3fs, parallel %.3fs -> "
              "%.2fx\n",
              what, serial_seconds, parallel_seconds, speedup);
  return speedup;
}

}  // namespace benchutil

#endif  // SDW_BENCH_BENCH_UTIL_H_
