#ifndef SDW_BENCH_BENCH_UTIL_H_
#define SDW_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

namespace benchutil {

/// Prints the experiment banner: which paper artifact this bench
/// regenerates and what shape it checks.
inline void Banner(const char* id, const char* artifact, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, artifact);
  std::printf("claim: %s\n", claim);
  std::printf("================================================================\n");
}

/// Wall-clock seconds of fn().
inline double TimeIt(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Prints a PASS/FAIL shape-check line (benches exit 0 either way so the
/// full suite always produces its tables; EXPERIMENTS.md records these).
inline bool Check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "SHAPE-OK" : "SHAPE-FAIL", what);
  return ok;
}

}  // namespace benchutil

#endif  // SDW_BENCH_BENCH_UTIL_H_
