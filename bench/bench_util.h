#ifndef SDW_BENCH_BENCH_UTIL_H_
#define SDW_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>

namespace benchutil {

namespace internal {

/// The bench id of the last Banner() — tags JSON rows.
inline const char*& CurrentBench() {
  static const char* id = "unknown";
  return id;
}

/// The JSON-lines sink, resolved once from SDW_BENCH_JSON: unset/empty
/// disables emission, "-" streams to stdout, anything else appends to
/// that file.
inline std::FILE* JsonStream() {
  static std::FILE* stream = [] {
    const char* path = std::getenv("SDW_BENCH_JSON");
    if (path == nullptr || *path == '\0') return static_cast<std::FILE*>(nullptr);
    if (std::strcmp(path, "-") == 0) return stdout;
    return std::fopen(path, "a");
  }();
  return stream;
}

inline std::string JsonEscape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
  return out;
}

}  // namespace internal

/// Emits one machine-readable metric row (JSON lines) when the
/// SDW_BENCH_JSON environment variable is set — see internal::JsonStream.
/// Rows look like {"bench":"A5","kind":"metric","name":"...","value":N}.
inline void JsonMetric(const char* name, double value) {
  std::FILE* out = internal::JsonStream();
  if (out == nullptr) return;
  std::fprintf(out, "{\"bench\":\"%s\",\"kind\":\"metric\",\"name\":\"%s\",\"value\":%.9g}\n",
               internal::JsonEscape(internal::CurrentBench()).c_str(),
               internal::JsonEscape(name).c_str(), value);
  std::fflush(out);
}

/// Emits one shape-check verdict row.
inline void JsonCheck(const char* what, bool ok) {
  std::FILE* out = internal::JsonStream();
  if (out == nullptr) return;
  std::fprintf(out, "{\"bench\":\"%s\",\"kind\":\"check\",\"name\":\"%s\",\"ok\":%s}\n",
               internal::JsonEscape(internal::CurrentBench()).c_str(),
               internal::JsonEscape(what).c_str(), ok ? "true" : "false");
  std::fflush(out);
}

/// Prints the experiment banner: which paper artifact this bench
/// regenerates and what shape it checks. Also tags subsequent JSON rows
/// with `id`.
inline void Banner(const char* id, const char* artifact, const char* claim) {
  internal::CurrentBench() = id;
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, artifact);
  std::printf("claim: %s\n", claim);
  std::printf("================================================================\n");
}

/// Wall-clock seconds of fn().
inline double TimeIt(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Prints a PASS/FAIL shape-check line (benches exit 0 either way so the
/// full suite always produces its tables; EXPERIMENTS.md records these).
inline bool Check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "SHAPE-OK" : "SHAPE-FAIL", what);
  JsonCheck(what, ok);
  return ok;
}

/// Prints measured (not modeled) serial vs parallel wall clock and the
/// real speedup — the executor's pool_size=0 arm against its pooled
/// arm. Returns the speedup factor.
inline double RealSpeedup(const char* what, double serial_seconds,
                          double parallel_seconds) {
  const double speedup =
      parallel_seconds > 0 ? serial_seconds / parallel_seconds : 0;
  std::printf("  real wall-clock [%s]: serial %.3fs, parallel %.3fs -> "
              "%.2fx\n",
              what, serial_seconds, parallel_seconds, speedup);
  JsonMetric((std::string(what) + ".serial_seconds").c_str(), serial_seconds);
  JsonMetric((std::string(what) + ".parallel_seconds").c_str(),
             parallel_seconds);
  JsonMetric((std::string(what) + ".speedup").c_str(), speedup);
  return speedup;
}

}  // namespace benchutil

#endif  // SDW_BENCH_BENCH_UTIL_H_
