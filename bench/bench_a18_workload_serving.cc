// A18 (extension): trace-realistic serving under multi-queue WLM. One
// synthesized workload (seeded: chatty dashboards over a skewed
// template pool, two ETL sessions COPYing bursts, ad-hoc heavy scans)
// is replayed paced against three warehouse arms:
//   baseline    - the classic single queue, no SQA, caches off;
//   multiqueue  - named queues (etl/adhoc/default) + the SQA fast
//                 lane, caches off (isolates the WLM effect);
//   production  - multiqueue with the result/segment caches on (what
//                 a real fleet runs; reports per-class hit rates).
// The paper's §4 claim made measurable: distributing slots across
// classes — and accelerating provably-short queries — keeps dashboard
// latency flat through an ETL burst instead of queueing it behind one.
// Shape check: short-query p99 stays >=5x better under multiqueue+SQA
// than under the single queue during the same trace.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "warehouse/warehouse.h"
#include "workload/replay.h"
#include "workload/synth.h"

namespace {

using sdw::cluster::WlmQueueConfig;
using sdw::warehouse::Warehouse;
using sdw::warehouse::WarehouseOptions;
using sdw::workload::ClassStats;
using sdw::workload::Replayer;
using sdw::workload::ReplayOptions;
using sdw::workload::ReplayResult;
using sdw::workload::SynthConfig;
using sdw::workload::Synthesize;
using sdw::workload::Trace;

SynthConfig TraceConfig() {
  SynthConfig config;
  config.seed = 20150604;  // the paper's SIGMOD year + month + day
  config.duration_seconds = 1.0;
  config.dashboard_sessions = 6;
  config.dashboard_think_seconds = 0.02;
  config.dashboard_templates = 10;
  config.etl_sessions = 2;
  // Dense bursts: the COPY stream keeps the writer path (and the
  // baseline's shared slots) busy for most of the trace, which is
  // exactly the regime SQA exists for.
  config.etl_burst_interval_seconds = 0.08;
  config.etl_files_per_burst = 4;
  config.etl_rows_per_file = 6000;
  config.adhoc_sessions = 3;
  config.adhoc_think_seconds = 0.08;
  config.sales_rows = 512;
  config.events_rows = 40000;
  return config;
}

WarehouseOptions BaseOptions(bool caches) {
  WarehouseOptions options;
  options.cluster.num_nodes = 2;
  options.cluster.slices_per_node = 2;
  options.cluster.storage.max_rows_per_block = 1024;
  options.cache.enable_segment_cache = caches;
  options.cache.enable_result_cache = caches;
  // Slow modeled scan throughput so the SQA estimate separates the two
  // tables honestly: sales (KBs) stays far under the threshold, events
  // (hundreds of KBs) lands far over it.
  options.cost_model.slice_scan_bytes_per_sec = 2e5;
  options.wlm.concurrency_slots = 3;
  options.wlm.queue_timeout_seconds = 60.0;
  return options;
}

WarehouseOptions MultiQueueOptions(bool caches) {
  WarehouseOptions options = BaseOptions(caches);
  WlmQueueConfig etl;
  etl.name = "etl";
  etl.slots = 1;
  etl.query_classes = {"copy"};
  etl.hop_on_timeout = "default";  // a starved COPY borrows spare slots
  etl.queue_timeout_seconds = 0.5;
  WlmQueueConfig adhoc;
  adhoc.name = "adhoc";
  adhoc.slots = 1;
  adhoc.user_groups = {"analyst"};
  options.wlm.queues = {etl, adhoc};  // + auto-appended "default"
  options.wlm.enable_sqa = true;
  options.wlm.sqa_slots = 2;
  options.wlm.sqa_max_estimated_seconds = 0.05;
  options.wlm.sqa_demote_exec_seconds = 0.25;
  return options;
}

ReplayResult RunArm(const char* arm, const Trace& trace,
                    WarehouseOptions options) {
  Warehouse wh(options);
  ReplayOptions replay;
  // Enough client threads that WLM admission — not the replayer's own
  // pool — is the only queueing point in the measurement.
  replay.workers = 32;
  replay.time_scale = 1.0;  // play the trace in real time
  Replayer replayer(&wh, replay);
  SDW_CHECK_OK(replayer.Provision(trace));
  auto result = replayer.Replay(trace);
  SDW_CHECK_OK(result.status());

  std::printf("\n  %s:\n", arm);
  for (const auto& [klass, stats] : result->by_class) {
    const double hit_rate =
        stats.statements > 0
            ? static_cast<double>(stats.cache_hits) / stats.statements
            : 0.0;
    std::printf("    %-10s n=%-4d p50 %7.4fs  p99 %7.4fs  max %7.4fs  "
                "cache %4.0f%%  timeouts %d\n",
                klass.c_str(), stats.statements, stats.p50_seconds,
                stats.p99_seconds, stats.max_seconds, hit_rate * 100.0,
                stats.timeouts);
    const std::string prefix = std::string(arm) + "." + klass;
    benchutil::JsonMetric((prefix + ".statements").c_str(), stats.statements);
    benchutil::JsonMetric((prefix + ".p50_seconds").c_str(),
                          stats.p50_seconds);
    benchutil::JsonMetric((prefix + ".p99_seconds").c_str(),
                          stats.p99_seconds);
    benchutil::JsonMetric((prefix + ".mean_seconds").c_str(),
                          stats.mean_seconds);
    benchutil::JsonMetric((prefix + ".cache_hit_rate").c_str(), hit_rate);
    benchutil::JsonMetric((prefix + ".timeouts").c_str(), stats.timeouts);
  }
  std::printf("    wlm: admitted %llu  hops %llu  sqa_demotions %llu\n",
              static_cast<unsigned long long>(wh.wlm()->admitted()),
              static_cast<unsigned long long>(wh.wlm()->hops()),
              static_cast<unsigned long long>(wh.wlm()->sqa_demotions()));
  for (const auto& queue : wh.wlm()->queue_stats()) {
    std::printf("    queue %-8s slots %d  admitted %llu  max_in_flight %d  "
                "hops_out %llu\n",
                queue.name.c_str(), queue.slots,
                static_cast<unsigned long long>(queue.admitted),
                queue.max_in_flight,
                static_cast<unsigned long long>(queue.hops_out));
  }
  return *std::move(result);
}

}  // namespace

int main() {
  benchutil::Banner(
      "A18 (extension)",
      "trace-realistic serving: workload synthesizer + multi-queue WLM",
      "during ETL bursts, multi-queue WLM with short-query acceleration "
      "keeps dashboard p99 >=5x better than the single-queue baseline on "
      "the same seeded trace");

  const Trace trace = Synthesize(TraceConfig());
  std::printf("\n  trace: %d statements (%d repeats) across %zu sessions\n",
              trace.stats.statements, trace.stats.repeats,
              trace.sessions.size());
  benchutil::JsonMetric("trace.statements", trace.stats.statements);
  benchutil::JsonMetric("trace.repeats", trace.stats.repeats);

  const ReplayResult baseline =
      RunArm("baseline", trace, BaseOptions(/*caches=*/false));
  const ReplayResult multiqueue =
      RunArm("multiqueue", trace, MultiQueueOptions(/*caches=*/false));
  const ReplayResult production =
      RunArm("production", trace, MultiQueueOptions(/*caches=*/true));

  const ClassStats& base_dash = baseline.by_class.at("dashboard");
  const ClassStats& mq_dash = multiqueue.by_class.at("dashboard");
  const ClassStats& prod_dash = production.by_class.at("dashboard");
  const double sqa_p99_gain =
      mq_dash.p99_seconds > 0 ? base_dash.p99_seconds / mq_dash.p99_seconds
                              : 0.0;
  const double prod_hit_rate =
      prod_dash.statements > 0
          ? static_cast<double>(prod_dash.cache_hits) / prod_dash.statements
          : 0.0;
  std::printf("\n  dashboard p99: baseline %.4fs vs multiqueue+SQA %.4fs "
              "(%.1fx); production cache hit rate %.0f%%\n",
              base_dash.p99_seconds, mq_dash.p99_seconds, sqa_p99_gain,
              prod_hit_rate * 100.0);
  benchutil::JsonMetric("dashboard.sqa_p99_gain", sqa_p99_gain);

  benchutil::Check(baseline.errors == 0 && multiqueue.errors == 0 &&
                       production.errors == 0,
                   "all three arms replayed the trace without errors");
  benchutil::Check(base_dash.statements == mq_dash.statements,
                   "arms replayed the identical statement stream");
  benchutil::Check(
      sqa_p99_gain >= 5.0,
      "multi-queue + SQA keeps dashboard p99 >=5x better during ETL bursts");
  benchutil::Check(prod_hit_rate > 0.5,
                   "production arm serves most dashboard repeats from cache");
  return 0;
}
