// A9: replication and cohorting (§2.1) — "cohorting is used to limit
// the number of slices impacted by an individual disk or node failure.
// Here, we attempt to balance the resource impact of re-replication
// against the increased probability of correlated failures". This
// bench sweeps cohort width on a 16-node fleet: blast radius,
// re-replication fan-out, and Monte-Carlo double-fault durability.

#include <cstdio>
#include <memory>

#include <algorithm>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/random.h"
#include "replication/replication.h"

namespace {

constexpr int kNodes = 16;
constexpr int kBlocksPerNode = 200;

struct Fleet {
  std::vector<std::unique_ptr<sdw::storage::BlockStore>> stores;
  std::unique_ptr<sdw::replication::ReplicationManager> mgr;
  std::vector<sdw::storage::BlockId> blocks;
};

Fleet BuildFleet(int cohort_size, uint64_t seed) {
  Fleet fleet;
  std::vector<sdw::storage::BlockStore*> raw;
  for (int n = 0; n < kNodes; ++n) {
    fleet.stores.push_back(std::make_unique<sdw::storage::BlockStore>());
    raw.push_back(fleet.stores.back().get());
  }
  fleet.mgr = std::make_unique<sdw::replication::ReplicationManager>(
      raw, sdw::replication::ReplicationConfig{cohort_size}, seed);
  sdw::Rng rng(seed);
  for (int n = 0; n < kNodes; ++n) {
    for (int b = 0; b < kBlocksPerNode; ++b) {
      sdw::Bytes data(256);
      for (auto& byte : data) byte = static_cast<uint8_t>(rng.Next());
      auto id = fleet.mgr->Write(n, std::move(data));
      SDW_CHECK(id.ok());
      fleet.blocks.push_back(*id);
    }
  }
  return fleet;
}

}  // namespace

int main() {
  benchutil::Banner("A9", "replication cohorts: blast radius vs durability",
                    "narrow cohorts bound failure impact; wide cohorts "
                    "spread re-replication load but correlate failures");

  std::printf("\n16 nodes x %d blocks, 2-way replication:\n", kBlocksPerNode);
  std::printf("\n%12s  %14s  %18s  %22s\n", "cohort_size", "blast_radius",
              "rereplicated_ok", "double_fault_loss");

  double loss_narrow = 0, loss_wide = 0;
  int radius_narrow = 0, radius_wide = 0;
  for (int cohort : {2, 4, 8, 16}) {
    // Blast radius + re-replication success after one node failure.
    Fleet fleet = BuildFleet(cohort, 100 + cohort);
    const int radius =
        static_cast<int>(fleet.mgr->BlastRadius(3).size());
    fleet.mgr->FailNode(3);
    auto restored = fleet.mgr->ReReplicate();
    SDW_CHECK(restored.ok());
    int healthy = 0;
    for (auto id : fleet.blocks) {
      if (fleet.mgr->ReplicaCount(id) == 2) ++healthy;
    }

    // Monte-Carlo: two simultaneous node failures (before any
    // re-replication): fraction of trials that lose at least one block.
    sdw::Rng rng(7);
    const int kTrials = 60;
    int lossy_trials = 0;
    for (int t = 0; t < kTrials; ++t) {
      Fleet trial = BuildFleet(cohort, 1000 + t);
      int a = static_cast<int>(rng.Uniform(kNodes));
      int b = static_cast<int>(rng.Uniform(kNodes));
      while (b == a) b = static_cast<int>(rng.Uniform(kNodes));
      trial.mgr->FailNode(a);
      trial.mgr->FailNode(b);
      for (auto id : trial.blocks) {
        if (!trial.mgr->IsReadable(id)) {
          ++lossy_trials;
          break;
        }
      }
    }
    const double loss = static_cast<double>(lossy_trials) / kTrials;
    std::printf("%12d  %11d nodes  %15d/%d  %20.0f%%\n", cohort, radius,
                healthy, static_cast<int>(fleet.blocks.size()),
                loss * 100);
    if (cohort == 2) {
      loss_narrow = loss;
      radius_narrow = radius;
    }
    if (cohort == 16) {
      loss_wide = loss;
      radius_wide = radius;
    }
  }

  std::printf("\n(with 2-wide cohorts only the paired node's loss is fatal "
              "— 1/15 of double faults — while 16-wide cohorts spread "
              "copies everywhere, so ANY double fault hits some block)\n\n");
  benchutil::Check(radius_narrow < radius_wide,
                   "narrow cohorts bound the re-replication blast radius");
  benchutil::Check(loss_narrow < loss_wide,
                   "narrow cohorts survive more double faults");
  return 0;
}
