// A12: end-to-end fault tolerance (§2.1-§2.2) — "data blocks are
// synchronously written to ... at least one secondary on a separate
// node" and masked at read time, so node loss is invisible to queries;
// host managers restart sick processes and the control plane replaces
// dead nodes; transient S3 unavailability is absorbed by bounded retry.
// Three experiments: masked-read overhead, kill-then-recover, and the
// retry budget boundary under scripted outages.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/fault_injector.h"
#include "common/logging.h"
#include "warehouse/warehouse.h"

namespace {

using sdw::warehouse::Warehouse;
using sdw::warehouse::WarehouseOptions;

constexpr const char* kQuery =
    "SELECT k, COUNT(*) AS n, SUM(v) AS s FROM t GROUP BY k ORDER BY k";

WarehouseOptions ReplicatedOptions(int nodes) {
  WarehouseOptions options;
  options.cluster.num_nodes = nodes;
  options.cluster.slices_per_node = 2;
  options.cluster.storage.max_rows_per_block = 512;
  options.cluster.replicate = true;
  // Every arm repeats one query before/after a fault and reads its
  // execution stats (masked reads, fault-ins). A result-cache hit is
  // byte-identical but skips execution — force the re-run.
  options.cache.enable_result_cache = false;
  return options;
}

void Load(Warehouse* wh, int rows) {
  SDW_CHECK(wh->Execute("CREATE TABLE t (k BIGINT, v BIGINT) DISTKEY(k) "
                        "SORTKEY(v)")
                .ok());
  constexpr int kChunk = 2000;
  for (int base = 0; base < rows; base += kChunk) {
    std::string insert = "INSERT INTO t VALUES ";
    const int end = std::min(rows, base + kChunk);
    for (int i = base; i < end; ++i) {
      if (i != base) insert += ", ";
      insert += "(" + std::to_string(i % 97) + ", " + std::to_string(i) + ")";
    }
    SDW_CHECK(wh->Execute(insert).ok());
  }
}

std::string RunQuery(Warehouse* wh, sdw::cluster::ExecStats* stats,
                     double* seconds) {
  std::string table;
  *seconds = benchutil::TimeIt([&] {
    auto result = wh->Execute(kQuery);
    SDW_CHECK(result.ok()) << result.status();
    *stats = result->exec_stats;
    table = result->ToTable(1000000);
  });
  return table;
}

}  // namespace

int main() {
  benchutil::Banner("A12", "fault tolerance: masked reads, recovery, retry",
                    "node loss is masked from queries, health sweeps restore "
                    "redundancy, and bounded retry absorbs transient S3 "
                    "outages");

  bool all_ok = true;

  // --- 1. Masked-read overhead: the read path customers never notice.
  std::printf("\n[1] masked reads on a 4-node replicated fleet (40k rows)\n");
  {
    Warehouse wh(ReplicatedOptions(4));
    Load(&wh, 40000);

    sdw::cluster::ExecStats healthy_stats, masked_stats, warm_stats;
    double healthy_s = 0, masked_s = 0, warm_s = 0;
    const std::string healthy = RunQuery(&wh, &healthy_stats, &healthy_s);

    wh.data_plane()->FailNode(0);
    const std::string masked = RunQuery(&wh, &masked_stats, &masked_s);
    // Faulted blocks were paged back in; a second run reads locally.
    const std::string warm = RunQuery(&wh, &warm_stats, &warm_s);

    std::printf("%16s  %14s  %12s  %12s\n", "arm", "masked_reads",
                "s3_faults", "seconds");
    std::printf("%16s  %14llu  %12llu  %12.4f\n", "healthy",
                (unsigned long long)healthy_stats.masked_reads,
                (unsigned long long)healthy_stats.s3_fault_reads, healthy_s);
    std::printf("%16s  %14llu  %12llu  %12.4f\n", "node 0 dead",
                (unsigned long long)masked_stats.masked_reads,
                (unsigned long long)masked_stats.s3_fault_reads, masked_s);
    std::printf("%16s  %14llu  %12llu  %12.4f\n", "re-cached",
                (unsigned long long)warm_stats.masked_reads,
                (unsigned long long)warm_stats.s3_fault_reads, warm_s);

    all_ok &= benchutil::Check(healthy_stats.masked_reads == 0,
                               "healthy run needs no masking");
    all_ok &= benchutil::Check(masked_stats.masked_reads > 0,
                               "node loss is served from secondaries");
    all_ok &= benchutil::Check(masked == healthy,
                               "masked results byte-identical to healthy");
    all_ok &= benchutil::Check(
        warm.size() == healthy.size() && warm_stats.masked_reads == 0,
        "faulted blocks page back in (second run reads locally)");

    // --- 2. Recovery: sweep re-replicates and escalates (§2.2).
    std::printf("\n[2] health sweep after whole-node loss\n");
    auto sweep = wh.RunHealthSweep();
    SDW_CHECK(sweep.ok()) << sweep.status();
    std::printf("  unhealthy=%d escalations=%d restarts=%d "
                "rereplicated=%llu single_copy=%llu lost=%llu\n",
                sweep->unhealthy_nodes, sweep->escalations, sweep->restarts,
                (unsigned long long)sweep->blocks_rereplicated,
                (unsigned long long)sweep->single_copy_blocks,
                (unsigned long long)sweep->lost_blocks);
    std::printf("  control-plane replacement workflow: %.0f simulated "
                "seconds\n",
                sweep->control_plane_seconds);
    all_ok &= benchutil::Check(sweep->escalations == 1,
                               "dead node escalated to the control plane");
    all_ok &= benchutil::Check(
        sweep->single_copy_blocks == 0 && sweep->lost_blocks == 0,
        "sweep restored two-copy redundancy for every block");

    sdw::cluster::ExecStats after_stats;
    double after_s = 0;
    const std::string after = RunQuery(&wh, &after_stats, &after_s);
    all_ok &= benchutil::Check(after == healthy,
                               "results unchanged across fail + recover");
  }

  // --- 3. Retry budget boundary under scripted S3 outages.
  std::printf("\n[3] COPY under scripted S3 outages (4-attempt budget)\n");
  std::printf("%14s  %10s  %12s  %14s\n", "outage_calls", "loaded",
              "attempts", "backoff_s");
  {
    std::string csv;
    for (int i = 0; i < 5000; ++i) {
      csv += std::to_string(i) + "," + std::to_string(i % 13) + "\n";
    }
    for (int outage = 0; outage <= 5; ++outage) {
      Warehouse wh(ReplicatedOptions(2));
      SDW_CHECK(wh.Execute("CREATE TABLE r (a BIGINT, b BIGINT)").ok());
      sdw::backup::S3Region* region = wh.s3()->region("us-east-1");
      SDW_CHECK(region
                    ->PutObject("bkt/r/part-0",
                                sdw::Bytes(csv.begin(), csv.end()))
                    .ok());
      region->fault_point()->FailNext(outage);
      auto copied = wh.Execute("COPY r FROM 's3://bkt/r/'");
      if (copied.ok()) {
        std::printf("%14d  %10s  %12d  %14.3f\n", outage, "ok",
                    copied->copy_stats.s3_retry_attempts,
                    copied->copy_stats.retry_backoff_seconds);
      } else {
        std::printf("%14d  %10s  %12s  %14s\n", outage,
                    copied.status().IsUnavailable() ? "unavailable"
                                                    : "ERROR",
                    "-", "-");
      }
      const bool should_succeed = outage <= 3;
      all_ok &= benchutil::Check(
          copied.ok() == should_succeed,
          should_succeed ? "outage within budget: load succeeds"
                         : "outage beyond budget: clean kUnavailable");
    }
  }

  std::printf("\n%s\n", all_ok ? "A12: all shape checks passed"
                              : "A12: SHAPE CHECK FAILURES (see above)");
  return 0;
}
