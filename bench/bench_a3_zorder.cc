// A3: multidimensional z-curves vs compound sort keys vs no sort (§3.3).
// The paper's argument for interleaved sort keys: a compound key is an
// index in disguise — great on its leading column, useless elsewhere —
// while the z-curve "degrades more gracefully ... and still provides
// utility if leading columns are not specified".

#include <cstdio>
#include <numeric>

#include <algorithm>
#include <memory>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/random.h"
#include "storage/block_store.h"
#include "storage/table_shard.h"
#include "zorder/zorder.h"

namespace {

using sdw::storage::BlockStore;
using sdw::storage::RangePredicate;
using sdw::storage::StorageOptions;
using sdw::storage::TableShard;

constexpr size_t kRows = 1 << 18;  // 262144
constexpr int kDims = 4;
constexpr int64_t kDomain = 1024;

/// Builds a shard of kRows 4-dim points under the given organization.
std::unique_ptr<TableShard> Build(BlockStore* store, sdw::SortStyle style) {
  std::vector<sdw::ColumnDef> defs;
  for (int d = 0; d < kDims; ++d) {
    defs.push_back({"d" + std::to_string(d), sdw::TypeId::kInt64});
  }
  sdw::TableSchema schema("points", defs);
  if (style != sdw::SortStyle::kNone) {
    SDW_CHECK_OK(schema.SetSortKey(style, {"d0", "d1", "d2", "d3"}));
  }
  StorageOptions options;
  options.max_rows_per_block = 1024;
  auto shard = std::make_unique<TableShard>(schema, options, store);

  sdw::Rng rng(17);
  std::vector<sdw::ColumnVector> cols;
  for (int d = 0; d < kDims; ++d) cols.emplace_back(sdw::TypeId::kInt64);
  for (size_t i = 0; i < kRows; ++i) {
    for (int d = 0; d < kDims; ++d) {
      cols[d].AppendInt(rng.UniformRange(0, kDomain - 1));
    }
  }
  // Physically order the rows per the organization (what the per-slice
  // sort on COPY does).
  std::vector<uint64_t> order(kRows);
  std::iota(order.begin(), order.end(), 0);
  if (style == sdw::SortStyle::kCompound) {
    std::sort(order.begin(), order.end(), [&](uint64_t a, uint64_t b) {
      for (int d = 0; d < kDims; ++d) {
        if (cols[d].IntAt(a) != cols[d].IntAt(b)) {
          return cols[d].IntAt(a) < cols[d].IntAt(b);
        }
      }
      return false;
    });
  } else if (style == sdw::SortStyle::kInterleaved) {
    std::vector<const sdw::ColumnVector*> key_cols;
    for (auto& c : cols) key_cols.push_back(&c);
    auto mapper = sdw::zorder::BuildMapperFromColumns(key_cols);
    auto keys = mapper->MapColumns(key_cols);
    std::sort(order.begin(), order.end(), [&](uint64_t a, uint64_t b) {
      return (*keys)[a] < (*keys)[b];
    });
  }
  std::vector<sdw::ColumnVector> sorted;
  for (int d = 0; d < kDims; ++d) {
    sdw::ColumnVector col(sdw::TypeId::kInt64);
    col.Reserve(kRows);
    for (uint64_t i : order) {
      SDW_CHECK_OK(col.AppendRange(cols[d], i, i + 1));
    }
    sorted.push_back(std::move(col));
  }
  SDW_CHECK_OK(shard->Append(sorted));
  return shard;
}

/// Blocks decoded for a selective range predicate on one dimension.
uint64_t BlocksFor(TableShard* shard, int dim, int64_t width) {
  RangePredicate pred{dim, sdw::Datum::Int64(100),
                      sdw::Datum::Int64(100 + width - 1)};
  shard->ResetCounters();
  for (const auto& range : shard->CandidateRanges({pred})) {
    SDW_CHECK(shard->ReadRange({dim}, range).ok());
  }
  return shard->blocks_decoded();
}

}  // namespace

int main() {
  benchutil::Banner("A3", "z-curve interleaved sort vs compound sort",
                    "compound wins only on its leading column; z-order "
                    "prunes on every dimension");

  BlockStore s1, s2, s3;
  auto unsorted = Build(&s1, sdw::SortStyle::kNone);
  auto compound = Build(&s2, sdw::SortStyle::kCompound);
  auto interleaved = Build(&s3, sdw::SortStyle::kInterleaved);
  const uint64_t total = unsorted->chain(0).size();

  std::printf("\n%zu rows x %d dims (domain %lld), ~6%% range predicate on "
              "each single dimension; %llu blocks/column total\n",
              kRows, kDims, static_cast<long long>(kDomain),
              static_cast<unsigned long long>(total));
  std::printf("\n%12s  %12s  %12s  %12s\n", "predicate", "unsorted",
              "compound", "interleaved");

  const int64_t kWidth = kDomain / 16;
  uint64_t compound_d0 = 0, compound_d3 = 0, inter_worst = 0;
  for (int d = 0; d < kDims; ++d) {
    uint64_t u = BlocksFor(unsorted.get(), d, kWidth);
    uint64_t c = BlocksFor(compound.get(), d, kWidth);
    uint64_t z = BlocksFor(interleaved.get(), d, kWidth);
    std::printf("%10s%02d  %12llu  %12llu  %12llu\n", "d", d,
                static_cast<unsigned long long>(u),
                static_cast<unsigned long long>(c),
                static_cast<unsigned long long>(z));
    if (d == 0) compound_d0 = c;
    if (d == kDims - 1) compound_d3 = c;
    inter_worst = std::max(inter_worst, z);
  }

  // Two-dimensional conjunctions: the z-curve compounds its advantage.
  std::printf("\nConjunctions (d_i AND d_j, ~6%% each):\n");
  std::printf("%12s  %12s  %12s\n", "predicate", "compound", "interleaved");
  auto blocks2 = [&](TableShard* shard, int d1, int d2) {
    RangePredicate p1{d1, sdw::Datum::Int64(100),
                      sdw::Datum::Int64(100 + kWidth - 1)};
    RangePredicate p2{d2, sdw::Datum::Int64(100),
                      sdw::Datum::Int64(100 + kWidth - 1)};
    shard->ResetCounters();
    for (const auto& range : shard->CandidateRanges({p1, p2})) {
      SDW_CHECK(shard->ReadRange({d1}, range).ok());
    }
    return shard->blocks_decoded();
  };
  for (auto [d1, d2] : {std::pair{0, 1}, {1, 2}, {2, 3}}) {
    std::printf("%9sd%d&d%d  %12llu  %12llu\n", "", d1, d2,
                static_cast<unsigned long long>(blocks2(compound.get(), d1, d2)),
                static_cast<unsigned long long>(
                    blocks2(interleaved.get(), d1, d2)));
  }

  std::printf("\n");
  benchutil::Check(compound_d0 < total / 10,
                   "compound sort prunes hard on its leading column");
  benchutil::Check(compound_d3 > total / 2,
                   "compound sort is nearly useless on the trailing column");
  benchutil::Check(inter_worst < total * 3 / 4,
                   "z-order prunes on EVERY dimension (graceful degradation)");
  return 0;
}
