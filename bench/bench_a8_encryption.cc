// A8: block-level encryption and key management (§3.2) — "key rotation
// is straightforward as it only involves re-encrypting block keys or
// cluster keys, not the entire database". We measure encryption
// throughput, show rotation cost scales with the number of block keys
// and is independent of data volume, and time repudiation.

#include <cstdio>

#include <algorithm>
#include <memory>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/units.h"
#include "security/keychain.h"

namespace {

/// Encrypts `blocks` blocks of `block_bytes` each; returns the hierarchy.
sdw::Result<sdw::security::KeyHierarchy> EncryptFleet(
    sdw::security::MasterKeyProvider* provider, int blocks,
    size_t block_bytes, double* encrypt_seconds) {
  SDW_ASSIGN_OR_RETURN(sdw::security::KeyHierarchy keys,
                       sdw::security::KeyHierarchy::Create(provider));
  sdw::Rng rng(7);
  sdw::Bytes block(block_bytes);
  for (auto& b : block) b = static_cast<uint8_t>(rng.Next());
  *encrypt_seconds = benchutil::TimeIt([&] {
    for (int i = 1; i <= blocks; ++i) {
      auto encrypted = keys.EncryptBlock(static_cast<uint64_t>(i), block);
      SDW_CHECK(encrypted.ok());
    }
  });
  return keys;
}

}  // namespace

int main() {
  benchutil::Banner("A8", "encryption: key hierarchy + rotation cost",
                    "rotation re-wraps keys, not data: cost ~ #blocks, "
                    "independent of bytes stored");

  sdw::security::ServiceKeyProvider provider(11);

  // Throughput.
  {
    double seconds = 0;
    auto keys = EncryptFleet(&provider, 256, 1 << 20, &seconds);
    SDW_CHECK(keys.ok());
    std::printf("\nChaCha20 block encryption throughput: %.0f MB/s "
                "(256 x 1 MiB blocks)\n",
                256.0 / seconds);
  }

  // Rotation cost vs number of blocks (fixed total bytes would make the
  // point even sharper; we show both dimensions).
  std::printf("\nCluster-key rotation time:\n");
  std::printf("\n%10s  %12s  %12s  %14s  %16s\n", "blocks", "block_size",
              "data_total", "rotate_time", "per_key_time");
  double rotate_small_blocks = 0, rotate_big_blocks = 0;
  double rotate_1k = 0, rotate_16k = 0;
  for (auto [blocks, block_bytes] :
       {std::pair{1000, 4096ul}, {1000, 1048576ul}, {16000, 4096ul}}) {
    sdw::security::ServiceKeyProvider p(13);
    double encrypt_seconds = 0;
    auto keys = EncryptFleet(&p, blocks, block_bytes, &encrypt_seconds);
    SDW_CHECK(keys.ok());
    double rotate_seconds =
        benchutil::TimeIt([&] { SDW_CHECK_OK(keys->RotateClusterKey()); });
    std::printf("%10d  %12s  %12s  %14s  %13.2f us\n", blocks,
                sdw::FormatBytes(block_bytes).c_str(),
                sdw::FormatBytes(static_cast<uint64_t>(blocks) * block_bytes)
                    .c_str(),
                sdw::FormatDuration(rotate_seconds).c_str(),
                rotate_seconds / blocks * 1e6);
    if (blocks == 1000 && block_bytes == 4096) {
      rotate_small_blocks = rotate_seconds;
      rotate_1k = rotate_seconds;
    }
    if (blocks == 1000 && block_bytes == 1048576) {
      rotate_big_blocks = rotate_seconds;
    }
    if (blocks == 16000) rotate_16k = rotate_seconds;
  }

  // Master-key rotation touches exactly one wrap regardless of size.
  {
    sdw::security::ServiceKeyProvider old_p(1);
    sdw::security::HsmKeyProvider new_p(2);
    double encrypt_seconds = 0;
    auto keys = EncryptFleet(&old_p, 16000, 4096, &encrypt_seconds);
    SDW_CHECK(keys.ok());
    double master_seconds = benchutil::TimeIt(
        [&] { SDW_CHECK_OK(keys->RotateMasterKey(&new_p)); });
    std::printf("\nMaster-key rotation over 16000 blocks: %s (re-wraps the "
                "cluster key only)\n",
                sdw::FormatDuration(master_seconds).c_str());
    double repudiate_seconds = benchutil::TimeIt([&] { keys->Repudiate(); });
    std::printf("Repudiation (cryptographic erasure): %s\n",
                sdw::FormatDuration(repudiate_seconds).c_str());
  }

  std::printf("\n");
  benchutil::Check(
      rotate_big_blocks < rotate_small_blocks * 5 + 0.01,
      "rotation time independent of block size (256x more data, ~same time)");
  benchutil::Check(rotate_16k > rotate_1k * 4,
                   "rotation time scales with the number of block keys");
  return 0;
}
