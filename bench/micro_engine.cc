// Micro-benchmarks (google-benchmark) for the hot engine primitives:
// codecs, expression kernels, join probe, aggregation, sketches and
// checksums. These are the constants behind the cost model the scale
// benches (T1) extrapolate with.

#include <benchmark/benchmark.h>

#include "common/hash.h"
#include "common/logging.h"
#include "common/random.h"
#include "compress/codec.h"
#include "exec/expr.h"
#include "exec/hll.h"
#include "exec/operators.h"

namespace {

using sdw::ColumnEncoding;
using sdw::ColumnVector;
using sdw::Datum;
using sdw::Rng;
using sdw::TypeId;

ColumnVector SortedInts(size_t n) {
  Rng rng(1);
  ColumnVector v(TypeId::kInt64);
  int64_t ts = 1400000000;
  for (size_t i = 0; i < n; ++i) {
    v.AppendInt(ts += static_cast<int64_t>(rng.Uniform(4)));
  }
  return v;
}

ColumnVector LowCardStrings(size_t n) {
  Rng rng(2);
  ColumnVector v(TypeId::kString);
  for (size_t i = 0; i < n; ++i) {
    v.AppendString("region-" + std::to_string(rng.Uniform(16)));
  }
  return v;
}

void BM_EncodeDelta(benchmark::State& state) {
  ColumnVector v = SortedInts(65536);
  for (auto _ : state) {
    sdw::Bytes out;
    SDW_CHECK_OK(sdw::compress::EncodeColumn(ColumnEncoding::kDelta, v, &out));
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * 65536 * 8);
}
BENCHMARK(BM_EncodeDelta);

void BM_DecodeDelta(benchmark::State& state) {
  ColumnVector v = SortedInts(65536);
  sdw::Bytes encoded;
  SDW_CHECK_OK(
      sdw::compress::EncodeColumn(ColumnEncoding::kDelta, v, &encoded));
  for (auto _ : state) {
    auto decoded =
        sdw::compress::DecodeColumn(ColumnEncoding::kDelta, TypeId::kInt64,
                                    encoded);
    SDW_CHECK(decoded.ok());
    benchmark::DoNotOptimize(*decoded);
  }
  state.SetBytesProcessed(state.iterations() * 65536 * 8);
}
BENCHMARK(BM_DecodeDelta);

void BM_EncodeBytedict(benchmark::State& state) {
  ColumnVector v = LowCardStrings(65536);
  for (auto _ : state) {
    sdw::Bytes out;
    SDW_CHECK_OK(
        sdw::compress::EncodeColumn(ColumnEncoding::kBytedict, v, &out));
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_EncodeBytedict);

void BM_Lz77RoundTrip(benchmark::State& state) {
  ColumnVector v = LowCardStrings(65536);
  for (auto _ : state) {
    sdw::Bytes out;
    SDW_CHECK_OK(sdw::compress::EncodeColumn(ColumnEncoding::kLz, v, &out));
    auto back =
        sdw::compress::DecodeColumn(ColumnEncoding::kLz, TypeId::kString, out);
    SDW_CHECK(back.ok());
    benchmark::DoNotOptimize(*back);
  }
}
BENCHMARK(BM_Lz77RoundTrip);

void BM_CompareKernelSpecialized(benchmark::State& state) {
  // column < literal over a null-free int lane (the fused fast path).
  sdw::exec::Batch batch;
  Rng rng(3);
  ColumnVector v(TypeId::kInt64);
  for (int i = 0; i < 65536; ++i) v.AppendInt(rng.UniformRange(0, 100));
  batch.columns.push_back(std::move(v));
  auto expr = sdw::exec::Cmp(sdw::exec::CmpOp::kLt,
                             sdw::exec::Col(0, TypeId::kInt64),
                             sdw::exec::Lit(Datum::Int64(50)));
  for (auto _ : state) {
    auto mask = expr->EvalBatch(batch);
    SDW_CHECK(mask.ok());
    benchmark::DoNotOptimize(*mask);
  }
  state.SetItemsProcessed(state.iterations() * 65536);
}
BENCHMARK(BM_CompareKernelSpecialized);

void BM_CompareKernelRowAtATime(benchmark::State& state) {
  // The same predicate evaluated the interpreted way: one Datum-boxed
  // virtual-dispatch evaluation per row.
  sdw::exec::Batch batch;
  Rng rng(3);
  ColumnVector v(TypeId::kInt64);
  for (int i = 0; i < 65536; ++i) v.AppendInt(rng.UniformRange(0, 100));
  batch.columns.push_back(std::move(v));
  auto expr = sdw::exec::Cmp(sdw::exec::CmpOp::kLt,
                             sdw::exec::Col(0, TypeId::kInt64),
                             sdw::exec::Lit(Datum::Int64(50)));
  for (auto _ : state) {
    int64_t kept = 0;
    for (size_t i = 0; i < batch.num_rows(); ++i) {
      auto r = expr->EvalRow(batch.RowAt(i));
      SDW_CHECK(r.ok());
      kept += (!r->is_null() && r->int_value()) ? 1 : 0;
    }
    benchmark::DoNotOptimize(kept);
  }
  state.SetItemsProcessed(state.iterations() * 65536);
}
BENCHMARK(BM_CompareKernelRowAtATime);

void BM_HashAggregateFastPath(benchmark::State& state) {
  Rng rng(5);
  sdw::exec::Batch source;
  ColumnVector key(TypeId::kInt64), val(TypeId::kInt64);
  for (int i = 0; i < 65536; ++i) {
    key.AppendInt(rng.UniformRange(0, 63));
    val.AppendInt(rng.UniformRange(0, 100));
  }
  source.columns.push_back(std::move(key));
  source.columns.push_back(std::move(val));
  auto types = source.Types();
  for (auto _ : state) {
    state.PauseTiming();
    sdw::exec::Batch copy = sdw::exec::MakeBatch(types);
    for (size_t c = 0; c < 2; ++c) {
      SDW_CHECK_OK(copy.columns[c].AppendRange(source.columns[c], 0, 65536));
    }
    std::vector<sdw::exec::Batch> batches;
    batches.push_back(std::move(copy));
    state.ResumeTiming();
    auto agg = sdw::exec::HashAggregate(
        sdw::exec::MemoryScan(types, std::move(batches)), {0},
        {{sdw::exec::AggFn::kCount, -1}, {sdw::exec::AggFn::kSum, 1}});
    auto out = sdw::exec::Collect(agg.get());
    SDW_CHECK(out.ok());
    benchmark::DoNotOptimize(*out);
  }
  state.SetItemsProcessed(state.iterations() * 65536);
}
BENCHMARK(BM_HashAggregateFastPath);

void BM_HllAdd(benchmark::State& state) {
  sdw::exec::HyperLogLog hll;
  Rng rng(7);
  for (auto _ : state) {
    hll.Add(rng.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HllAdd);

void BM_Crc32c(benchmark::State& state) {
  sdw::Bytes block(1 << 20);
  Rng rng(9);
  for (auto& b : block) b = static_cast<uint8_t>(rng.Next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sdw::Crc32c(block.data(), block.size()));
  }
  state.SetBytesProcessed(state.iterations() * block.size());
}
BENCHMARK(BM_Crc32c);

void BM_DatumHashString(benchmark::State& state) {
  Datum d = Datum::String("a-plausible-url-path/of/typical/length");
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.Hash());
  }
}
BENCHMARK(BM_DatumHashString);

}  // namespace

BENCHMARK_MAIN();
