// Figure 1: "Data Analysis Gap in the Enterprise" — enterprise data
// compounds at 30-60% CAGR while warehouse capacity compounds with the
// DW market's 8-11%, so the analyzed fraction collapses toward zero.

#include <cstdio>

#include "bench/bench_util.h"
#include "fleet/fleet.h"

int main() {
  benchutil::Banner(
      "F1", "Figure 1: Data Analysis Gap in the Enterprise",
      "enterprise data and warehouse data diverge; most data goes dark");

  sdw::fleet::GrowthConfig config;
  auto series = sdw::fleet::AnalysisGapSeries(config);
  std::printf("\nEnterprise 40%% CAGR vs warehouse 10%% CAGR "
              "(normalized to 1990 = 1.0):\n\n");
  std::printf("%6s  %18s  %18s  %14s\n", "year", "enterprise_data",
              "warehouse_data", "analyzed_frac");
  for (const auto& point : series) {
    if ((point.year - 1990) % 5 != 0) continue;
    std::printf("%6d  %18.1f  %18.1f  %13.4f%%\n", point.year,
                point.enterprise_data, point.warehouse_data,
                100.0 * point.warehouse_data / point.enterprise_data);
  }

  std::printf("\nSensitivity: analyzed fraction in 2020 by enterprise CAGR "
              "(warehouse fixed at 10%%):\n\n");
  std::printf("%16s  %14s\n", "enterprise_cagr", "analyzed_2020");
  bool monotone = true;
  double prev = 1.0;
  for (double cagr : {0.30, 0.40, 0.50, 0.60}) {
    sdw::fleet::GrowthConfig c;
    c.enterprise_cagr = cagr;
    auto s = sdw::fleet::AnalysisGapSeries(c);
    double frac = s.back().warehouse_data / s.back().enterprise_data;
    std::printf("%15.0f%%  %13.5f%%\n", cagr * 100, frac * 100);
    monotone = monotone && frac < prev;
    prev = frac;
  }

  std::printf("\n");
  benchutil::Check(series.back().warehouse_data /
                           series.back().enterprise_data <
                       0.01,
                   "by 2020 the warehouse covers <1% of enterprise data");
  benchutil::Check(monotone, "faster data growth means darker data");
  return 0;
}
