// Figure 5: tickets per cluster decline over time while the fleet (and
// so total operational load) grows — the outcome of paging on every
// failure and extinguishing one of the top-ten error causes each week.
// Ablation: without Pareto-driven extinguishing there is no decline.

#include <cstdio>

#include "bench/bench_util.h"
#include "fleet/fleet.h"

int main() {
  benchutil::Banner("F5", "Figure 5: Sev2 tickets per cluster over time",
                    "tickets/cluster falls as the fleet grows; total "
                    "tickets track business success");

  sdw::fleet::FleetSimulator::Config config;
  sdw::fleet::FleetSimulator fleet(config);
  sdw::Rng rng(13);
  auto series = fleet.Run(&rng);

  std::printf("\nWith weekly top-cause extinguishing:\n\n");
  std::printf("%6s  %10s  %10s  %20s  %13s\n", "week", "clusters", "tickets",
              "tickets_per_cluster", "live_defects");
  for (const auto& week : series) {
    if (week.week % 8 != 0) continue;
    std::printf("%6d  %10.0f  %10.1f  %20.4f  %13d\n", week.week,
                week.clusters, week.tickets, week.tickets_per_cluster,
                week.live_defects);
  }

  // Ablation: no extinguishing.
  sdw::fleet::FleetSimulator::Config no_fix = config;
  no_fix.extinguished_per_week = 0;
  sdw::Rng rng2(13);
  auto stagnant = sdw::fleet::FleetSimulator(no_fix).Run(&rng2);
  std::printf("\nAblation — no Pareto extinguishing (every other row):\n\n");
  std::printf("%6s  %20s\n", "week", "tickets_per_cluster");
  for (const auto& week : stagnant) {
    if (week.week % 16 != 0) continue;
    std::printf("%6d  %20.4f\n", week.week, week.tickets_per_cluster);
  }

  double early = 0, late = 0, late_total = 0, early_total = 0;
  for (int w = 0; w < 13; ++w) {
    early += series[w].tickets_per_cluster;
    early_total += series[w].tickets;
  }
  for (int w = 91; w < 104; ++w) {
    late += series[w].tickets_per_cluster;
    late_total += series[w].tickets;
  }
  double stagnant_late = 0;
  for (int w = 91; w < 104; ++w) {
    stagnant_late += stagnant[w].tickets_per_cluster;
  }

  std::printf("\n");
  benchutil::Check(late < early / 3,
                   "tickets/cluster fell >3x over two years");
  benchutil::Check(late_total > early_total / 10,
                   "total tickets still track fleet size (ops load ~ "
                   "business success)");
  benchutil::Check(late < stagnant_late / 2,
                   "the decline requires the weekly top-cause extinguishing");
  return 0;
}
