// A4: distribution styles and co-located joins (§2.1). DISTKEY joins
// avoid redistribution entirely; DISTSTYLE ALL trades load-time copies
// for join-time locality; EVEN forces a broadcast or shuffle. Also
// shows near-linear scale-out of the same join as slices are added.

#include <cstdio>

#include <algorithm>
#include <memory>
#include <thread>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "cluster/cluster.h"
#include "cluster/executor.h"
#include "common/random.h"
#include "common/units.h"
#include "plan/planner.h"

namespace {

using sdw::cluster::Cluster;
using sdw::cluster::ClusterConfig;
using sdw::cluster::QueryExecutor;

constexpr size_t kFactRows = 300000;
constexpr size_t kDimRows = 20000;

struct Setup {
  std::unique_ptr<Cluster> cluster;
};

Setup Build(int nodes, int slices, sdw::DistStyle fact_style,
            sdw::DistStyle dim_style) {
  ClusterConfig config;
  config.num_nodes = nodes;
  config.slices_per_node = slices;
  config.storage.max_rows_per_block = 8192;
  Setup setup;
  setup.cluster = std::make_unique<Cluster>(config);

  sdw::TableSchema fact("fact", {{"k", sdw::TypeId::kInt64},
                                 {"v", sdw::TypeId::kInt64}});
  if (fact_style == sdw::DistStyle::kKey) {
    SDW_CHECK_OK(fact.SetDistKey("k"));
  } else {
    fact.SetDistStyle(fact_style);
  }
  SDW_CHECK_OK(setup.cluster->CreateTable(fact));

  sdw::TableSchema dim("dim", {{"id", sdw::TypeId::kInt64},
                               {"grp", sdw::TypeId::kInt64}});
  if (dim_style == sdw::DistStyle::kKey) {
    SDW_CHECK_OK(dim.SetDistKey("id"));
  } else {
    dim.SetDistStyle(dim_style);
  }
  SDW_CHECK_OK(setup.cluster->CreateTable(dim));

  sdw::Rng rng(23);
  {
    sdw::ColumnVector k(sdw::TypeId::kInt64), v(sdw::TypeId::kInt64);
    for (size_t i = 0; i < kFactRows; ++i) {
      k.AppendInt(static_cast<int64_t>(rng.Uniform(kDimRows)));
      v.AppendInt(rng.UniformRange(0, 100));
    }
    std::vector<sdw::ColumnVector> cols;
    cols.push_back(std::move(k));
    cols.push_back(std::move(v));
    SDW_CHECK_OK(setup.cluster->InsertRows("fact", cols));
  }
  {
    sdw::ColumnVector id(sdw::TypeId::kInt64), grp(sdw::TypeId::kInt64);
    for (size_t i = 0; i < kDimRows; ++i) {
      id.AppendInt(static_cast<int64_t>(i));
      grp.AppendInt(static_cast<int64_t>(i % 50));
    }
    std::vector<sdw::ColumnVector> cols;
    cols.push_back(std::move(id));
    cols.push_back(std::move(grp));
    SDW_CHECK_OK(setup.cluster->InsertRows("dim", cols));
  }
  SDW_CHECK_OK(setup.cluster->Analyze("fact"));
  SDW_CHECK_OK(setup.cluster->Analyze("dim"));
  return setup;
}

sdw::plan::LogicalQuery JoinQuery() {
  sdw::plan::LogicalQuery q;
  q.from_table = "fact";
  q.join_table = "dim";
  q.join_left = {"fact", "k"};
  q.join_right = {"dim", "id"};
  q.select = {{sdw::plan::LogicalAggFn::kNone, {"dim", "grp"}, ""},
              {sdw::plan::LogicalAggFn::kCountStar, {}, "n"},
              {sdw::plan::LogicalAggFn::kSum, {"fact", "v"}, "s"}};
  q.group_by = {{"dim", "grp"}};
  return q;
}

}  // namespace

int main() {
  benchutil::Banner("A4", "distribution styles and co-located joins",
                    "KEY/KEY and ALL joins move ~no data; EVEN must "
                    "broadcast or shuffle; work scales out with slices");

  struct Variant {
    const char* name;
    sdw::DistStyle fact, dim;
    sdw::plan::PlannerOptions planner;
  };
  std::vector<Variant> variants = {
      {"KEY/KEY (co-located)", sdw::DistStyle::kKey, sdw::DistStyle::kKey, {}},
      {"EVEN + dim ALL", sdw::DistStyle::kEven, sdw::DistStyle::kAll, {}},
      {"EVEN (broadcast dim)", sdw::DistStyle::kEven, sdw::DistStyle::kEven,
       {}},
      {"EVEN (forced shuffle)", sdw::DistStyle::kEven, sdw::DistStyle::kEven,
       {.broadcast_row_threshold = 1}},
  };

  std::printf("\nJoin of %zu-row fact with %zu-row dim on a 2x2 cluster:\n",
              kFactRows, kDimRows);
  std::printf("\n%-22s  %-11s  %12s  %12s  %12s\n", "variant", "strategy",
              "network", "max_slice", "leader");
  uint64_t colocated_net = 0, broadcast_net = 0, shuffle_net = 0;
  for (const auto& variant : variants) {
    Setup setup = Build(2, 2, variant.fact, variant.dim);
    sdw::plan::Planner planner(setup.cluster->catalog(), variant.planner);
    auto physical = planner.Plan(JoinQuery());
    SDW_CHECK(physical.ok());
    QueryExecutor executor(setup.cluster.get());
    auto result = executor.Execute(*physical);
    SDW_CHECK(result.ok()) << result.status();
    std::printf("%-22s  %-11s  %12s  %12s  %12s\n", variant.name,
                sdw::plan::JoinStrategyName(physical->join->strategy),
                sdw::FormatBytes(result->stats.network_bytes).c_str(),
                sdw::FormatDuration(result->stats.MaxSliceSeconds()).c_str(),
                sdw::FormatDuration(result->stats.leader_seconds).c_str());
    if (variant.fact == sdw::DistStyle::kKey) {
      colocated_net = result->stats.network_bytes;
    } else if (variant.planner.broadcast_row_threshold == 1) {
      shuffle_net = result->stats.network_bytes;
    } else if (variant.dim == sdw::DistStyle::kEven) {
      broadcast_net = result->stats.network_bytes;
    }
  }

  // Scale-out: the co-located join across cluster sizes.
  std::printf("\nScale-out of the co-located join (total slices -> slowest "
              "slice):\n\n");
  std::printf("%8s  %8s  %14s  %16s\n", "nodes", "slices", "max_slice",
              "total_slice_cpu");
  double t1 = 0, t8 = 0;
  for (int nodes : {1, 2, 4, 8}) {
    Setup setup = Build(nodes, 2, sdw::DistStyle::kKey, sdw::DistStyle::kKey);
    sdw::plan::Planner planner(setup.cluster->catalog());
    auto physical = planner.Plan(JoinQuery());
    QueryExecutor executor(setup.cluster.get());
    auto result = executor.Execute(*physical);
    SDW_CHECK(result.ok());
    std::printf("%8d  %8d  %14s  %16s\n", nodes, nodes * 2,
                sdw::FormatDuration(result->stats.MaxSliceSeconds()).c_str(),
                sdw::FormatDuration(result->stats.TotalSliceSeconds()).c_str());
    if (nodes == 1) t1 = result->stats.MaxSliceSeconds();
    if (nodes == 8) t8 = result->stats.MaxSliceSeconds();
  }

  // Real slice parallelism: the same workload executed with the pool
  // disabled (pool_size = 0, the old serial for-loop behavior) vs one
  // worker per slice. Results must be byte-identical; only wall clock
  // moves.
  std::printf("\nReal serial vs parallel wall clock (whole A4 join "
              "workload, 2x2 cluster):\n\n");
  const unsigned hw = std::thread::hardware_concurrency();
  bool identical = true;
  double serial_s = 0, parallel_s = 0;
  {
    Setup setup = Build(2, 2, sdw::DistStyle::kKey, sdw::DistStyle::kKey);
    std::vector<sdw::plan::PlannerOptions> planner_opts = {
        {}, {.broadcast_row_threshold = 1}};
    auto run_workload = [&](int pool_size, uint64_t* row_hash) -> double {
      sdw::cluster::ExecOptions opts;
      opts.pool_size = pool_size;
      QueryExecutor executor(setup.cluster.get(), opts);
      *row_hash = 0;
      return benchutil::TimeIt([&] {
        for (const auto& popts : planner_opts) {
          sdw::plan::Planner planner(setup.cluster->catalog(), popts);
          auto physical = planner.Plan(JoinQuery());
          SDW_CHECK(physical.ok());
          for (int rep = 0; rep < 3; ++rep) {
            auto result = executor.Execute(*physical);
            SDW_CHECK(result.ok()) << result.status();
            for (size_t r = 0; r < result->rows.num_rows(); ++r) {
              for (const sdw::Datum& d : result->rows.RowAt(r)) {
                *row_hash = *row_hash * 1099511628211ull + d.Hash();
              }
            }
          }
        }
      });
    };
    uint64_t serial_hash = 0, parallel_hash = 0;
    serial_s = run_workload(0, &serial_hash);
    parallel_s = run_workload(4, &parallel_hash);
    identical = serial_hash == parallel_hash;
    benchutil::RealSpeedup("A4 join workload", serial_s, parallel_s);
    std::printf("  (host has %u hardware threads)\n", hw);
  }

  std::printf("\n");
  benchutil::Check(colocated_net * 5 < broadcast_net,
                   "co-located join moves >5x less data than broadcast");
  benchutil::Check(colocated_net * 5 < shuffle_net,
                   "co-located join moves >5x less data than shuffle");
  benchutil::Check(t8 * 2 < t1,
                   "8x the slices cut the slowest-slice time >2x");
  benchutil::Check(identical,
                   "serial and parallel execution return identical rows");
  if (hw >= 4) {
    benchutil::Check(serial_s >= 2.0 * parallel_s,
                     ">=2x real speedup from slice parallelism (>=4 hw "
                     "threads)");
  } else {
    std::printf("  [SKIP] real-speedup check needs >=4 hardware threads "
                "(host has %u)\n", hw);
  }
  return 0;
}
