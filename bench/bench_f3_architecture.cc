// Figure 3: the system architecture. Not a data figure — this bench
// walks one distributed query through every component of the diagram
// (client -> leader parse/plan/compile -> per-slice execution on
// compute nodes -> intermediate results -> leader final aggregation)
// and prints the participation of each, plus the S3 backup path.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/units.h"
#include "warehouse/warehouse.h"

int main() {
  benchutil::Banner("F3", "Figure 3: system architecture walk-through",
                    "leader plans and finalizes; slices do the heavy "
                    "lifting in parallel; S3 backs every block");

  sdw::warehouse::WarehouseOptions options;
  options.cluster.num_nodes = 2;
  options.cluster.slices_per_node = 2;
  options.exec.compile_seconds = 2.0;  // modeled query compilation
  sdw::warehouse::Warehouse wh(options);

  (void)wh.Execute(
      "CREATE TABLE fact (k BIGINT, grp BIGINT, v DOUBLE PRECISION) "
      "DISTKEY(k) SORTKEY(grp)");
  (void)wh.Execute("CREATE TABLE dim (id BIGINT, label VARCHAR) DISTKEY(id)");

  sdw::Rng rng(1);
  std::string dim_sql = "INSERT INTO dim VALUES (0, 'l0')";
  for (int i = 1; i < 500; ++i) {
    dim_sql += ", (" + std::to_string(i) + ", 'l" + std::to_string(i % 16) +
               "')";
  }
  (void)wh.Execute(dim_sql);
  for (int batch = 0; batch < 20; ++batch) {
    std::string sql = "INSERT INTO fact VALUES ";
    for (int i = 0; i < 500; ++i) {
      if (i) sql += ", ";
      sql += "(" + std::to_string(rng.Uniform(500)) + ", " +
             std::to_string(rng.Uniform(40)) + ", " +
             std::to_string(rng.NextDouble()) + ")";
    }
    (void)wh.Execute(sql);
  }
  (void)wh.Execute("ANALYZE fact");
  (void)wh.Execute("ANALYZE dim");

  const std::string query =
      "SELECT label, COUNT(*) AS n, SUM(v) AS total FROM fact JOIN dim ON "
      "fact.k = dim.id WHERE grp < 20 GROUP BY label ORDER BY n DESC LIMIT 5";

  std::printf("\n[client]        SQL over the PostgreSQL wire protocol:\n  %s\n",
              query.c_str());
  auto explain = wh.Execute("EXPLAIN " + query);
  std::printf("\n[leader node]   parse -> plan -> compile to segments:\n%s\n",
              explain->message.c_str());

  auto result = wh.Execute(query);
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const auto& stats = result->exec_stats;
  std::printf("\n[compute nodes] per-slice execution (each slice = one core "
              "with its own memory/disk share):\n");
  for (size_t s = 0; s < stats.slice_seconds.size(); ++s) {
    std::printf("  node %zu / slice %zu: %s\n", s / 2, s % 2,
                sdw::FormatDuration(stats.slice_seconds[s]).c_str());
  }
  std::printf("[interconnect]  intermediate results to leader: %s\n",
              sdw::FormatBytes(stats.network_bytes).c_str());
  std::printf("[leader node]   final aggregation + sort + limit: %s\n",
              sdw::FormatDuration(stats.leader_seconds).c_str());
  std::printf("[client]        %llu rows returned\n\n",
              static_cast<unsigned long long>(stats.result_rows));
  std::printf("%s\n", result->ToTable().c_str());

  // The S3 leg of the diagram: every local block is asynchronously
  // backed up; restore page-faults blocks back.
  auto backup = wh.Backup();
  std::printf("[Amazon S3]     async block backup: %llu blocks, %s\n",
              static_cast<unsigned long long>(backup->blocks_uploaded),
              sdw::FormatBytes(backup->bytes_uploaded).c_str());

  benchutil::Check(stats.slice_seconds.size() == 4,
                   "all 4 slices participated");
  benchutil::Check(stats.result_rows == 5, "leader applied the LIMIT");
  benchutil::Check(backup->blocks_uploaded > 0, "blocks reached S3");
  return 0;
}
