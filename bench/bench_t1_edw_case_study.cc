// T1: the §1 Amazon Enterprise Data Warehouse case study.
//
//   paper numbers: daily load of 5B rows (2 TB) in 10 min; 150B-row
//   monthly backfill in 9.75 h; backup in 30 min; restore to a new
//   cluster in 48 h (but SQL in minutes via streaming restore); a
//   2-trillion x 6-billion row join in < 14 min that "didn't complete
//   in over a week" on the legacy row-store warehouse.
//
// We cannot run petabytes on a laptop, so this bench does two honest
// things (see DESIGN.md substitutions):
//   1. MEASURE the constituent speedup factors at laptop scale on the
//      real engine: slice parallelism, co-location network savings, and
//      compiled-columnar vs interpreted-row execution.
//   2. MODEL the paper's workload on a 2013-plausible 64-node cluster
//      through the calibrated cost model, and compare shape: ratios
//      between operations, not absolute seconds, are the claim.

#include <cstdio>

#include <algorithm>
#include <memory>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "cluster/cluster.h"
#include "cluster/executor.h"
#include "common/random.h"
#include "common/units.h"
#include "plan/planner.h"

namespace {

using sdw::FormatCount;
using sdw::FormatDuration;

// ---------------------------------------------------------------------------
// Part 1: measured laptop-scale factors.
// ---------------------------------------------------------------------------

std::unique_ptr<sdw::cluster::Cluster> BuildClicks(int nodes, int slices,
                                                   bool colocated,
                                                   size_t fact_rows,
                                                   size_t dim_rows) {
  sdw::cluster::ClusterConfig config;
  config.num_nodes = nodes;
  config.slices_per_node = slices;
  config.storage.max_rows_per_block = 8192;
  auto cluster = std::make_unique<sdw::cluster::Cluster>(config);
  sdw::TableSchema clicks("clicks", {{"product_id", sdw::TypeId::kInt64},
                                     {"day", sdw::TypeId::kInt64}});
  sdw::TableSchema products("products", {{"id", sdw::TypeId::kInt64},
                                         {"category", sdw::TypeId::kInt64}});
  if (colocated) {
    SDW_CHECK_OK(clicks.SetDistKey("product_id"));
    SDW_CHECK_OK(products.SetDistKey("id"));
  }
  SDW_CHECK_OK(cluster->CreateTable(clicks));
  SDW_CHECK_OK(cluster->CreateTable(products));
  sdw::Rng rng(3);
  {
    sdw::ColumnVector pid(sdw::TypeId::kInt64), day(sdw::TypeId::kInt64);
    for (size_t i = 0; i < fact_rows; ++i) {
      pid.AppendInt(static_cast<int64_t>(rng.Zipf(dim_rows, 0.8)));
      day.AppendInt(rng.UniformRange(0, 30));
    }
    std::vector<sdw::ColumnVector> cols;
    cols.push_back(std::move(pid));
    cols.push_back(std::move(day));
    SDW_CHECK_OK(cluster->InsertRows("clicks", cols));
  }
  {
    sdw::ColumnVector id(sdw::TypeId::kInt64), cat(sdw::TypeId::kInt64);
    for (size_t i = 0; i < dim_rows; ++i) {
      id.AppendInt(static_cast<int64_t>(i));
      cat.AppendInt(static_cast<int64_t>(i % 40));
    }
    std::vector<sdw::ColumnVector> cols;
    cols.push_back(std::move(id));
    cols.push_back(std::move(cat));
    SDW_CHECK_OK(cluster->InsertRows("products", cols));
  }
  SDW_CHECK_OK(cluster->Analyze("clicks"));
  SDW_CHECK_OK(cluster->Analyze("products"));
  return cluster;
}

double RunJoin(sdw::cluster::Cluster* cluster, uint64_t* network_bytes) {
  sdw::plan::LogicalQuery q;
  q.from_table = "clicks";
  q.join_table = "products";
  q.join_left = {"clicks", "product_id"};
  q.join_right = {"products", "id"};
  q.select = {{sdw::plan::LogicalAggFn::kNone, {"products", "category"}, ""},
              {sdw::plan::LogicalAggFn::kCountStar, {}, "n"}};
  q.group_by = {{"products", "category"}};
  sdw::plan::Planner planner(cluster->catalog());
  auto physical = planner.Plan(q);
  SDW_CHECK(physical.ok());
  sdw::cluster::QueryExecutor executor(cluster);
  SDW_CHECK(executor.Execute(*physical).ok());  // warm-up (checksums)
  auto result = executor.Execute(*physical);
  SDW_CHECK(result.ok()) << result.status();
  if (network_bytes != nullptr) {
    *network_bytes = result->stats.network_bytes;
  }
  return result->stats.MaxSliceSeconds() + result->stats.leader_seconds;
}

// ---------------------------------------------------------------------------
// Part 2: the scale model — a 2013-plausible dense-storage cluster.
// ---------------------------------------------------------------------------

struct EdwModel {
  int nodes = 64;
  int slices_per_node = 16;
  // Effective per-slice COPY rate over raw input (parse + distribute +
  // sort + encode + 2x replicate + commit) — 2013 dense-storage class.
  double slice_ingest_bytes_per_sec = 3.5e6;
  // Per-slice scan rate over compressed column data, compiled exec.
  double slice_scan_bytes_per_sec = 60e6;
  // Per-node S3 throughput (2013-era S3 client stacks).
  double node_s3_bytes_per_sec = 50e6;

  int slices() const { return nodes * slices_per_node; }
};

}  // namespace

int main() {
  benchutil::Banner(
      "T1", "the §1 Amazon EDW case study",
      "MPP columnar loads TB-scale in minutes; co-located trillion-row "
      "joins finish in minutes where row stores take days");

  // ------------------------------------------------------------------
  std::printf("\nPart 1 — measured constituent factors (real engine, laptop "
              "scale, 500k x 30k join):\n\n");
  const size_t kFact = 500000, kDim = 30000;

  // (a) Slice parallelism.
  auto serial_cluster = BuildClicks(1, 1, true, kFact, kDim);
  auto parallel_cluster = BuildClicks(4, 2, true, kFact, kDim);
  double serial_join = RunJoin(serial_cluster.get(), nullptr);
  uint64_t colocated_net = 0;
  double parallel_join = RunJoin(parallel_cluster.get(), &colocated_net);
  std::printf("  slice parallelism (1 -> 8 slices):       %5.1fx faster "
              "(%s -> %s)\n",
              serial_join / parallel_join, FormatDuration(serial_join).c_str(),
              FormatDuration(parallel_join).c_str());

  // (b) Co-location vs shuffle network volume.
  auto shuffled_cluster = BuildClicks(4, 2, false, kFact, kDim);
  {
    sdw::plan::PlannerOptions force_shuffle;
    force_shuffle.broadcast_row_threshold = 1;
    sdw::plan::Planner planner(shuffled_cluster->catalog(), force_shuffle);
    sdw::plan::LogicalQuery q;
    q.from_table = "clicks";
    q.join_table = "products";
    q.join_left = {"clicks", "product_id"};
    q.join_right = {"products", "id"};
    q.select = {{sdw::plan::LogicalAggFn::kCountStar, {}, "n"}};
    q.group_by = {};
    auto physical = planner.Plan(q);
    SDW_CHECK(physical.ok());
    sdw::cluster::QueryExecutor executor(shuffled_cluster.get());
    auto result = executor.Execute(*physical);
    SDW_CHECK(result.ok());
    std::printf("  co-location network savings:             %5.1fx less "
                "data moved (%s vs %s)\n",
                static_cast<double>(result->stats.network_bytes) /
                    std::max<uint64_t>(colocated_net, 1),
                sdw::FormatBytes(colocated_net).c_str(),
                sdw::FormatBytes(result->stats.network_bytes).c_str());
  }

  // (c) Compiled-columnar vs interpreted-row execution (scan-agg).
  {
    sdw::plan::LogicalQuery q;
    q.from_table = "clicks";
    q.where = {{{"", "day"}, sdw::plan::LogicalCmp::kLt, sdw::Datum::Int64(20)}};
    q.select = {{sdw::plan::LogicalAggFn::kNone, {"", "day"}, ""},
                {sdw::plan::LogicalAggFn::kCountStar, {}, "n"}};
    q.group_by = {{"", "day"}};
    sdw::plan::Planner planner(serial_cluster->catalog());
    auto physical = planner.Plan(q);
    SDW_CHECK(physical.ok());
    sdw::cluster::QueryExecutor compiled(
        serial_cluster.get(),
        {sdw::cluster::ExecutionMode::kCompiled, 0.0});
    sdw::cluster::QueryExecutor interpreted(
        serial_cluster.get(),
        {sdw::cluster::ExecutionMode::kInterpreted, 0.0});
    SDW_CHECK(compiled.Execute(*physical).ok());  // warm-up
    auto fast = compiled.Execute(*physical);
    auto slow = interpreted.Execute(*physical);
    SDW_CHECK(fast.ok());
    SDW_CHECK(slow.ok());
    const double speedup = slow->stats.MaxSliceSeconds() /
                           fast->stats.MaxSliceSeconds();
    std::printf("  compiled columnar vs interpreted rows:   %5.1fx faster "
                "per slice\n",
                speedup);
    benchutil::Check(speedup > 4, "compiled execution >4x per slice");
  }
  benchutil::Check(serial_join / parallel_join > 3,
                   "8 slices give >3x on the join");

  // ------------------------------------------------------------------
  EdwModel model;
  std::printf("\nPart 2 — scale model (%d nodes x %d slices, calibrated "
              "2013 rates):\n\n",
              model.nodes, model.slices_per_node);
  std::printf("  %-34s  %12s  %12s  %8s\n", "operation", "paper", "model",
              "ratio");

  auto report = [&](const char* op, double paper_seconds,
                    double model_seconds) {
    std::printf("  %-34s  %12s  %12s  %7.1fx\n", op,
                FormatDuration(paper_seconds).c_str(),
                FormatDuration(model_seconds).c_str(),
                paper_seconds / model_seconds);
    return model_seconds;
  };

  // Daily load: 5B rows = 2 TB of raw log.
  const double daily_bytes = 2e12;
  const double daily_model =
      daily_bytes / (model.slice_ingest_bytes_per_sec * model.slices());
  report("daily load (5B rows, 2 TB)", 10 * 60, daily_model);

  // Monthly backfill: 150B rows = 30x the daily bytes.
  const double backfill_model = 30 * daily_model;
  report("backfill (150B rows, 60 TB)", 9.75 * 3600, backfill_model);

  // Backup: incremental = one day's delta spread across the nodes.
  const double backup_model =
      (daily_bytes / model.nodes) / model.node_s3_bytes_per_sec;
  report("backup (one day's delta)", 30 * 60, backup_model);

  // Full restore of ~1.2 PB vs streaming restore TTFQ.
  const double stored_bytes = 1.2e15;
  const double restore_model =
      stored_bytes / (model.node_s3_bytes_per_sec * model.nodes);
  report("full restore (~1.2 PB)", 48 * 3600, restore_model);
  std::printf("  %-34s  %12s  %12s\n", "  ...but SQL opens after (streaming)",
              "minutes", "minutes");

  // The headline join: 2T-row fact x 6B-row dim, co-located, scanning
  // two compressed columns (~10 B/row).
  const double join_bytes = 2e12 * 10.0;
  const double join_model =
      join_bytes / (model.slice_scan_bytes_per_sec * model.slices());
  report("2T x 6B row co-located join", 14 * 60, join_model);

  // Legacy row-store baseline: full 200 B rows from disk, no slices, no
  // compression, interpreted execution (the measured ~8x CPU penalty).
  const double legacy_disk = 2e12 * 200 / (32 * 200e6);
  const double legacy_cpu = 2e12 / (32.0 * 2e6);  // 2M rows/s/node interpreted
  const double legacy_model = std::max(legacy_disk, legacy_cpu);
  std::printf("  %-34s  %12s  %12s\n", "legacy row store (same join)",
              "> 1 week", FormatDuration(legacy_model).c_str());

  std::printf("\nShape checks on the model:\n");
  benchutil::Check(daily_model < 30 * 60,
                   "daily TB-scale load lands in the minutes regime");
  benchutil::Check(backfill_model / daily_model > 25,
                   "backfill/daily ratio tracks the 30x data ratio");
  benchutil::Check(join_model < 20 * 60,
                   "trillion-row co-located join in the ~10-minute regime");
  benchutil::Check(legacy_model / join_model > 50,
                   "row-store baseline >50x slower (paper observed >700x)");
  benchutil::Check(restore_model > 24 * 3600,
                   "full PB restore takes days, which is why streaming "
                   "restore matters");
  return 0;
}
