// Figure 2: "Time to Deploy and Manage a Cluster" — deploy, connect,
// backup, restore and resize take minutes, are nearly flat in cluster
// size (2 / 16 / 128 nodes), and the interactive ("clicks") portion is
// seconds. Ablation: warm pools are what turn 15-minute provisioning
// into 3-minute provisioning.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/units.h"
#include "controlplane/control_plane.h"

namespace {

struct FigureRow {
  int nodes;
  double deploy, connect, backup, restore, resize, clicks;
};

FigureRow MeasureOps(int nodes, bool warm) {
  sdw::sim::Engine engine;
  sdw::controlplane::WarmPool pool(256, 60.0);
  sdw::controlplane::ControlPlane cp(&engine);
  if (warm) cp.set_warm_pool(&pool);

  FigureRow row{};
  row.nodes = nodes;
  auto deploy = cp.ProvisionCluster(nodes);
  auto connect = cp.Connect();
  auto backup = cp.Backup(nodes, 5ull << 30);  // 5 GiB changed per node
  auto restore = cp.Restore(nodes);
  auto resize = cp.Resize(2, 16, 100ull << 30);
  row.deploy = deploy.seconds;
  row.connect = connect.seconds;
  row.backup = backup.seconds;
  row.restore = restore.seconds;
  row.resize = resize.seconds;
  row.clicks = deploy.click_seconds + connect.click_seconds +
               backup.click_seconds + restore.click_seconds +
               resize.click_seconds;
  return row;
}

void PrintRows(const char* label, bool warm) {
  std::printf("\n%s (minutes):\n\n", label);
  std::printf("%7s  %8s  %8s  %8s  %8s  %14s  %8s\n", "nodes", "deploy",
              "connect", "backup", "restore", "resize(2->16)", "clicks");
  double min_deploy = 1e99, max_deploy = 0;
  for (int nodes : {2, 16, 128}) {
    FigureRow row = MeasureOps(nodes, warm);
    std::printf("%7d  %8.1f  %8.1f  %8.1f  %8.1f  %14.1f  %8.1f\n", row.nodes,
                row.deploy / 60, row.connect / 60, row.backup / 60,
                row.restore / 60, row.resize / 60, row.clicks / 60);
    min_deploy = std::min(min_deploy, row.deploy);
    max_deploy = std::max(max_deploy, row.deploy);
  }
  benchutil::Check(max_deploy / min_deploy < 1.05,
                   "deploy time is flat from 2 to 128 nodes");
}

}  // namespace

int main() {
  benchutil::Banner("F2", "Figure 2: admin operation time by cluster size",
                    "all ops are minutes-scale, ~flat in node count; click "
                    "time is a tiny fraction");

  PrintRows("With preconfigured warm pools (the launched service)", true);
  PrintRows("Ablation: cold EC2 provisioning only (launch-day behaviour)",
            false);

  // The paper's provisioning claim: 15 min cold -> 3 min warm.
  FigureRow cold = MeasureOps(16, false);
  FigureRow warm = MeasureOps(16, true);
  std::printf("\nProvisioning 16 nodes: cold %s vs warm %s\n",
              sdw::FormatDuration(cold.deploy).c_str(),
              sdw::FormatDuration(warm.deploy).c_str());
  benchutil::Check(cold.deploy > 3 * warm.deploy,
                   "warm pools cut provisioning by >3x (paper: 15 -> 3 min)");
  const double all_ops = warm.deploy + warm.connect + warm.backup +
                         warm.restore + warm.resize;
  benchutil::Check(warm.clicks < 0.2 * all_ops,
                   "click time is a small fraction of total operation time");
  return 0;
}
