// A15 (extension): MVCC snapshot reads under a concurrent COPY. The
// paper's front door serves dashboards while loads run; with versioned
// chains a multi-block COPY installs as one atomic version bump, so a
// racing SELECT sees either the complete pre-COPY table or the complete
// post-COPY table — never a file boundary in between — and never waits
// for the load. Two arms: (1) serial replay records the only two legal
// answers for a query set, (2) the same load runs with reader threads
// hammering the query set; every concurrent answer must be
// byte-identical to a serial one, reader p99 stays far below the COPY
// duration, and VACUUM's retired chains are reclaimed once unpinned.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "obs/registry.h"
#include "warehouse/warehouse.h"

namespace {

using sdw::warehouse::Warehouse;
using sdw::warehouse::WarehouseOptions;

constexpr int kPreRows = 20000;
constexpr int kCopyFiles = 8;
constexpr int kRowsPerFile = 20000;
constexpr int kReaders = 4;

WarehouseOptions Options() {
  WarehouseOptions options;
  options.cluster.num_nodes = 2;
  options.cluster.slices_per_node = 2;
  options.cluster.storage.max_rows_per_block = 1024;
  options.wlm.concurrency_slots = kReaders + 1;  // readers + the COPY
  return options;
}

/// Identical starting state for both arms: the pre-COPY resident rows
/// plus the staged S3 objects the COPY will load.
void Provision(Warehouse* wh) {
  SDW_CHECK_OK(wh->Execute("CREATE TABLE t (k BIGINT, v BIGINT) "
                           "DISTKEY(k) SORTKEY(v)")
                   .status());
  sdw::ColumnVector k(sdw::TypeId::kInt64), v(sdw::TypeId::kInt64);
  for (int i = 0; i < kPreRows; ++i) {
    k.AppendInt(i % 53);
    v.AppendInt(i);
  }
  std::vector<sdw::ColumnVector> cols;
  cols.push_back(std::move(k));
  cols.push_back(std::move(v));
  SDW_CHECK_OK(wh->data_plane()->InsertRows("t", cols));
  SDW_CHECK_OK(wh->data_plane()->Analyze("t"));
  for (int f = 0; f < kCopyFiles; ++f) {
    std::string csv;
    for (int i = 0; i < kRowsPerFile; ++i) {
      const int row = kPreRows + f * kRowsPerFile + i;
      csv += std::to_string(row % 53) + "," + std::to_string(row) + "\n";
    }
    SDW_CHECK_OK(wh->s3()->region("us-east-1")->PutObject(
        "lake/t/part-" + std::to_string(f),
        sdw::Bytes(csv.begin(), csv.end())));
  }
}

const std::vector<std::string>& Queries() {
  static const std::vector<std::string> queries = {
      "SELECT COUNT(*) AS n, SUM(v) AS sv FROM t",
      "SELECT k, COUNT(*) AS n FROM t GROUP BY k ORDER BY k",
      "SELECT k, SUM(v) AS sv FROM t WHERE v < 30000 GROUP BY k ORDER BY k",
  };
  return queries;
}

constexpr const char* kCopySql = "COPY t FROM 's3://lake/t/'";

/// Deterministic rendering of a result — what "byte-identical" compares.
std::string Render(const sdw::warehouse::StatementResult& r) {
  return r.ToTable(1u << 30);
}

std::string MustRender(Warehouse* wh, const std::string& sql) {
  auto r = wh->Execute(sql);
  SDW_CHECK_OK(r.status());
  return Render(*r);
}

uint64_t CounterValue(const char* name) {
  return sdw::obs::Registry::Global().counter(name)->value();
}

}  // namespace

int main() {
  benchutil::Banner(
      "A15 (extension)", "MVCC snapshot reads vs a concurrent COPY",
      "every SELECT racing a multi-file COPY returns a byte-identical "
      "serial-replay answer, reader p99 stays far below the COPY "
      "duration, and unpinned retired chains are reclaimed");

  // --- Arm 1: serial replay — the two legal answers per query --------
  std::vector<std::string> pre_answers, post_answers;
  double serial_copy_seconds = 0;
  {
    Warehouse wh(Options());
    Provision(&wh);
    for (const std::string& q : Queries()) {
      pre_answers.push_back(MustRender(&wh, q));
    }
    serial_copy_seconds = benchutil::TimeIt(
        [&] { SDW_CHECK_OK(wh.Execute(kCopySql).status()); });
    for (const std::string& q : Queries()) {
      post_answers.push_back(MustRender(&wh, q));
    }
  }

  // --- Arm 2: the same COPY with readers hammering the query set -----
  const uint64_t pinned_before = CounterValue("sdw_mvcc_snapshots_pinned");
  Warehouse wh(Options());
  Provision(&wh);

  std::atomic<bool> copy_done{false};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> selects_during_copy{0};
  std::mutex latency_mu;
  std::vector<double> latencies;

  double copy_seconds = 0;
  std::thread copier([&] {
    copy_seconds = benchutil::TimeIt(
        [&] { SDW_CHECK_OK(wh.Execute(kCopySql).status()); });
    copy_done.store(true);
  });
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    Warehouse::Session session = wh.CreateSession();
    readers.emplace_back([&, r, session]() mutable {
      size_t q = static_cast<size_t>(r) % Queries().size();
      std::vector<double> local;
      while (!copy_done.load()) {
        std::string answer;
        const double seconds = benchutil::TimeIt([&] {
          auto result = session.Execute(Queries()[q]);
          SDW_CHECK_OK(result.status());
          answer = Render(*result);
        });
        local.push_back(seconds);
        selects_during_copy.fetch_add(1);
        if (answer != pre_answers[q] && answer != post_answers[q]) {
          mismatches.fetch_add(1);
          std::printf("  MISMATCH on %s\n", Queries()[q].c_str());
        }
        q = (q + 1) % Queries().size();
      }
      std::lock_guard<std::mutex> lock(latency_mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  copier.join();
  for (auto& t : readers) t.join();

  // After the dust settles the head must be the post-COPY table.
  bool post_identical = true;
  for (size_t q = 0; q < Queries().size(); ++q) {
    post_identical =
        post_identical && MustRender(&wh, Queries()[q]) == post_answers[q];
  }

  std::sort(latencies.begin(), latencies.end());
  const double p50 =
      latencies.empty() ? 0 : latencies[latencies.size() / 2];
  const double p99 =
      latencies.empty() ? 0 : latencies[latencies.size() * 99 / 100];
  const uint64_t pinned =
      CounterValue("sdw_mvcc_snapshots_pinned") - pinned_before;

  std::printf("\n  COPY %.3fs serial, %.3fs concurrent; %llu SELECTs "
              "during the load\n",
              serial_copy_seconds, copy_seconds,
              static_cast<unsigned long long>(selects_during_copy.load()));
  std::printf("  reader latency p50 %.6fs p99 %.6fs; snapshots pinned "
              "%llu\n",
              p50, p99, static_cast<unsigned long long>(pinned));
  benchutil::JsonMetric("copy.serial_seconds", serial_copy_seconds);
  benchutil::JsonMetric("copy.concurrent_seconds", copy_seconds);
  benchutil::JsonMetric("readers.selects_during_copy",
                        static_cast<double>(selects_during_copy.load()));
  benchutil::JsonMetric("readers.p50_seconds", p50);
  benchutil::JsonMetric("readers.p99_seconds", p99);
  benchutil::JsonMetric("readers.mismatches",
                        static_cast<double>(mismatches.load()));
  benchutil::JsonMetric("mvcc.snapshots_pinned", static_cast<double>(pinned));

  benchutil::Check(mismatches.load() == 0,
                   "every concurrent SELECT matched a serial-replay answer "
                   "byte for byte");
  benchutil::Check(selects_during_copy.load() > 0,
                   "readers completed SELECTs while the COPY was loading");
  benchutil::Check(post_identical,
                   "after the COPY commits every query returns the serial "
                   "post-COPY answer");
  benchutil::Check(p99 < copy_seconds,
                   "reader p99 latency is bounded well below the COPY "
                   "duration (no reader waited out the load)");
  benchutil::Check(pinned > 0, "SELECTs pinned MVCC snapshots");

  // --- GC: VACUUM retires the pre-vacuum chains; with no pinned
  // readers left, CollectGarbage reclaims them block and all.
  const uint64_t reclaimed_before =
      CounterValue("sdw_mvcc_versions_reclaimed");
  SDW_CHECK_OK(wh.Execute("VACUUM t").status());
  wh.CollectGarbage();
  const uint64_t reclaimed =
      CounterValue("sdw_mvcc_versions_reclaimed") - reclaimed_before;
  std::printf("  vacuum retired versions reclaimed: %llu\n",
              static_cast<unsigned long long>(reclaimed));
  benchutil::JsonMetric("mvcc.versions_reclaimed_after_vacuum",
                        static_cast<double>(reclaimed));
  benchutil::Check(reclaimed > 0,
                   "GC reclaimed the unpinned pre-VACUUM chain versions");
  return 0;
}
