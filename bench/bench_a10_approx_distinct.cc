// A10 (extension): distributed APPROXIMATE COUNT(DISTINCT). §4 of the
// paper: "In time, we would like to build distributed approximate
// equivalents for all non-linear exact operations within our engine."
// COUNT(DISTINCT) is the canonical non-linear aggregate — exact
// distributed evaluation must ship every distinct value to one place,
// while the HyperLogLog sketch ships a fixed ~4 KiB per group per slice
// and merges associatively at the leader.

#include <cstdio>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/units.h"
#include "warehouse/warehouse.h"

namespace {

std::unique_ptr<sdw::warehouse::Warehouse> Build(size_t rows,
                                                 uint64_t cardinality) {
  sdw::warehouse::WarehouseOptions options;
  options.cluster.num_nodes = 2;
  options.cluster.slices_per_node = 2;
  auto wh = std::make_unique<sdw::warehouse::Warehouse>(options);
  SDW_CHECK(wh->Execute("CREATE TABLE events (user_id BIGINT, day BIGINT)")
                .ok());
  sdw::Rng rng(3);
  sdw::ColumnVector user(sdw::TypeId::kInt64), day(sdw::TypeId::kInt64);
  for (size_t i = 0; i < rows; ++i) {
    user.AppendInt(static_cast<int64_t>(rng.Uniform(cardinality)));
    day.AppendInt(rng.UniformRange(0, 6));
  }
  std::vector<sdw::ColumnVector> cols;
  cols.push_back(std::move(user));
  cols.push_back(std::move(day));
  SDW_CHECK_OK(wh->data_plane()->InsertRows("events", cols));
  return wh;
}

/// Exact distinct over the raw shards (ground truth) plus the bytes an
/// exact distributed distinct would have to move (8 B per per-slice
/// distinct value).
std::pair<uint64_t, uint64_t> ExactDistinct(sdw::cluster::Cluster* cluster) {
  std::set<int64_t> global;
  uint64_t exact_shuffle_bytes = 0;
  for (int s = 0; s < cluster->total_slices(); ++s) {
    auto shard = cluster->shard(s, "events");
    SDW_CHECK(shard.ok());
    auto cols = (*shard)->ReadAll({0});
    SDW_CHECK(cols.ok());
    std::set<int64_t> local;
    for (size_t i = 0; i < (*cols)[0].size(); ++i) {
      local.insert((*cols)[0].IntAt(i));
    }
    exact_shuffle_bytes += local.size() * 8;
    global.insert(local.begin(), local.end());
  }
  return {global.size(), exact_shuffle_bytes};
}

}  // namespace

int main() {
  benchutil::Banner(
      "A10 (extension)", "distributed APPROXIMATE COUNT(DISTINCT)",
      "HyperLogLog partials merge at the leader: fixed-size network "
      "cost, <4% error at any cardinality");

  std::printf("\n1M rows on a 2x2 cluster, varying true cardinality:\n");
  std::printf("\n%12s  %10s  %10s  %8s  %14s  %16s\n", "cardinality",
              "exact", "estimate", "error", "sketch_bytes",
              "exact_dist_bytes");

  bool all_accurate = true;
  bool sketch_bounded = true;
  for (uint64_t cardinality : {100ull, 10000ull, 100000ull, 500000ull}) {
    auto wh = Build(1000000, cardinality);
    auto [exact, exact_bytes] = ExactDistinct(wh->data_plane());
    auto r = wh->Execute(
        "SELECT APPROXIMATE COUNT(DISTINCT user_id) AS u FROM events");
    SDW_CHECK(r.ok()) << r.status();
    const double estimate = static_cast<double>(r->rows.columns[0].IntAt(0));
    const double error =
        std::abs(estimate - static_cast<double>(exact)) / exact;
    const uint64_t sketch_bytes = r->exec_stats.network_bytes;
    std::printf("%12llu  %10llu  %10.0f  %7.2f%%  %14s  %16s\n",
                static_cast<unsigned long long>(cardinality),
                static_cast<unsigned long long>(exact), estimate,
                error * 100, sdw::FormatBytes(sketch_bytes).c_str(),
                sdw::FormatBytes(exact_bytes).c_str());
    all_accurate = all_accurate && error < 0.04;
    // Sketch cost is ~fixed; exact cost grows with cardinality.
    if (cardinality >= 100000 && sketch_bytes > exact_bytes) {
      sketch_bounded = false;
    }
  }

  // Grouped variant: one sketch per group still merges correctly.
  {
    auto wh = Build(500000, 50000);
    auto r = wh->Execute(
        "SELECT day, APPROXIMATE COUNT(DISTINCT user_id) AS u FROM events "
        "GROUP BY day ORDER BY day");
    SDW_CHECK(r.ok());
    std::printf("\nPer-day distinct users (7 groups, one sketch each):\n");
    for (size_t i = 0; i < r->rows.num_rows(); ++i) {
      std::printf("  day %lld: ~%lld users\n",
                  static_cast<long long>(r->rows.columns[0].IntAt(i)),
                  static_cast<long long>(r->rows.columns[1].IntAt(i)));
    }
  }

  std::printf("\n");
  benchutil::Check(all_accurate, "estimate within 4% at every cardinality");
  benchutil::Check(sketch_bounded,
                   "sketch partials beat exact value shipping at high "
                   "cardinality");
  return 0;
}
