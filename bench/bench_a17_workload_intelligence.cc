// A17 (extension): the workload-intelligence layer earns its keep. Two
// arms: (1) overhead — the A5-style repeat workload with stl_scan
// telemetry, stv_inflight progress and alert evaluation on costs <=5%
// wall clock over the same workload with workload_intelligence off;
// (2) visibility — 8 A14-style clients against 2 WLM slots while
// health sweeps sample gauges: stv_gauge_history must capture the
// queue-depth spike (MAX(wlm_queued) > 0) the serial log views alone
// would have missed.

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "warehouse/warehouse.h"

namespace {

using sdw::warehouse::Warehouse;
using sdw::warehouse::WarehouseOptions;

constexpr int kRows = 60000;

WarehouseOptions Options(bool intelligence) {
  WarehouseOptions options;
  options.cluster.num_nodes = 2;
  options.cluster.slices_per_node = 2;
  options.cluster.storage.max_rows_per_block = 1024;
  // Caches off: every statement must actually execute, so the timing
  // compares the execution path with and without telemetry.
  options.cache.enable_segment_cache = false;
  options.cache.enable_result_cache = false;
  options.workload_intelligence = intelligence;
  return options;
}

void LoadTable(Warehouse* wh) {
  SDW_CHECK_OK(wh->Execute("CREATE TABLE t (k BIGINT, v BIGINT, x DOUBLE) "
                           "DISTKEY(k) SORTKEY(v)")
                   .status());
  sdw::ColumnVector k(sdw::TypeId::kInt64), v(sdw::TypeId::kInt64),
      x(sdw::TypeId::kDouble);
  for (int i = 0; i < kRows; ++i) {
    k.AppendInt(i % 97);
    v.AppendInt(i);
    x.AppendDouble((i % 1000) / 8.0);
  }
  std::vector<sdw::ColumnVector> cols;
  cols.push_back(std::move(k));
  cols.push_back(std::move(v));
  cols.push_back(std::move(x));
  SDW_CHECK_OK(wh->data_plane()->InsertRows("t", cols));
  SDW_CHECK_OK(wh->data_plane()->Analyze("t"));
}

std::string ClientQuery(int client, int iter) {
  // Distinct literals per statement (the A14 idiom): distinct
  // fingerprints keep every statement on the execution path.
  return "SELECT k, COUNT(*) AS n, SUM(v) AS sv FROM t WHERE v < " +
         std::to_string(10000 + 4000 * client + 17 * iter) +
         " GROUP BY k ORDER BY k";
}

/// One A5-style serving round: kStatements distinct predicated
/// aggregations, serially.
double RunWorkload(Warehouse* wh) {
  constexpr int kStatements = 120;
  return benchutil::TimeIt([&] {
    for (int i = 0; i < kStatements; ++i) {
      SDW_CHECK_OK(wh->Execute(ClientQuery(i % 8, i)).status());
    }
  });
}

}  // namespace

int main() {
  benchutil::Banner(
      "A17 (extension)",
      "workload intelligence: scan telemetry, gauges, alerts",
      "telemetry overhead <=5% on the serving workload; gauge history "
      "captures the WLM queue-depth spike under 8-client load");

  // --- Arm 1: telemetry overhead ------------------------------------
  {
    Warehouse off(Options(false));
    Warehouse on(Options(true));
    LoadTable(&off);
    LoadTable(&on);
    // Warm both (first statement pays one-time setup), then take the
    // best of three trials per arm to shave scheduler noise.
    RunWorkload(&off);
    RunWorkload(&on);
    double off_seconds = 1e9, on_seconds = 1e9;
    for (int trial = 0; trial < 3; ++trial) {
      off_seconds = std::min(off_seconds, RunWorkload(&off));
      on_seconds = std::min(on_seconds, RunWorkload(&on));
    }
    const double overhead_pct =
        off_seconds > 0 ? (on_seconds - off_seconds) / off_seconds * 100.0
                        : 0.0;
    auto scans = on.Execute("SELECT COUNT(*) AS n FROM stl_scan");
    SDW_CHECK_OK(scans.status());
    const long long scan_rows = scans->rows.columns[0].IntAt(0);
    std::printf("\n  intelligence off %.4fs, on %.4fs -> %.2f%% overhead "
                "(%lld stl_scan rows recorded)\n",
                off_seconds, on_seconds, overhead_pct, scan_rows);
    benchutil::JsonMetric("telemetry.baseline_seconds", off_seconds);
    benchutil::JsonMetric("telemetry.intelligence_seconds", on_seconds);
    benchutil::JsonMetric("telemetry.overhead_pct", overhead_pct);
    benchutil::JsonMetric("telemetry.stl_scan_rows",
                          static_cast<double>(scan_rows));
    benchutil::Check(scan_rows > 0, "telemetry arm recorded scan rows");
    benchutil::Check(overhead_pct <= 5.0,
                     "workload-intelligence overhead is <=5%");
  }

  // --- Arm 2: gauge history catches the queue spike -----------------
  {
    constexpr int kClients = 8;
    constexpr int kSlots = 2;
    constexpr int kStatementsPerClient = 20;
    WarehouseOptions options = Options(true);
    options.cluster.replicate = true;  // sweeps need replication
    options.wlm.concurrency_slots = kSlots;
    Warehouse wh(options);
    LoadTable(&wh);

    std::atomic<int> live_clients{kClients};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      Warehouse::Session session = wh.CreateSession();
      clients.emplace_back([&live_clients, c, session]() mutable {
        for (int i = 0; i < kStatementsPerClient; ++i) {
          SDW_CHECK_OK(session.Execute(ClientQuery(c, i)).status());
        }
        live_clients.fetch_sub(1);
      });
    }
    // The operator's periodic sweep, racing the load: each pass gauges
    // queue depth, cache hit rates, GC backlog and degradation.
    int sweeps = 0;
    while (live_clients.load() > 0) {
      SDW_CHECK_OK(wh.RunHealthSweep().status());
      ++sweeps;
    }
    for (auto& t : clients) t.join();

    auto spike = wh.Execute(
        "SELECT MAX(wlm_queued) AS peak_queue, MAX(wlm_running) AS "
        "peak_running FROM stv_gauge_history");
    SDW_CHECK_OK(spike.status());
    const long long peak_queue = spike->rows.columns[0].IntAt(0);
    const long long peak_running = spike->rows.columns[1].IntAt(0);
    auto backlog_alerts = wh.Execute(
        "SELECT COUNT(*) AS n FROM stl_alert_event_log "
        "WHERE rule = 'wlm-queue-backlog'");
    SDW_CHECK_OK(backlog_alerts.status());
    const long long backlog = backlog_alerts->rows.columns[0].IntAt(0);
    std::printf("\n  %d sweeps while %d clients ran on %d slots: peak "
                "queue %lld, peak running %lld, %lld wlm-queue-backlog "
                "alert(s)\n",
                sweeps, kClients, kSlots, peak_queue, peak_running, backlog);
    benchutil::JsonMetric("gauges.sweeps", sweeps);
    benchutil::JsonMetric("gauges.peak_wlm_queued",
                          static_cast<double>(peak_queue));
    benchutil::JsonMetric("gauges.peak_wlm_running",
                          static_cast<double>(peak_running));
    benchutil::JsonMetric("gauges.wlm_queue_backlog_alerts",
                          static_cast<double>(backlog));
    benchutil::Check(peak_queue > 0,
                     "gauge history captured a WLM queue-depth spike");
    benchutil::Check(peak_running <= kSlots,
                     "gauged running count never exceeded the slot limit");
  }
  return 0;
}
