// A2: zone maps / block skipping — "Redshift foregoes traditional
// indexes ... and instead focuses on sequential scan speed through
// compiled code execution and column-block skipping based on
// value-ranges stored in memory" (§6). Skipping prunes nearly all
// blocks on (semi-)sorted columns and degrades to a full scan on
// random data — the graceful-degradation story vs a missing index.

#include <cstdio>

#include <algorithm>
#include <memory>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/units.h"
#include "storage/block_store.h"
#include "storage/table_shard.h"

namespace {

using sdw::storage::BlockStore;
using sdw::storage::RangePredicate;
using sdw::storage::StorageOptions;
using sdw::storage::TableShard;

enum class Layout { kSorted, kSemiSorted, kRandom };

const char* LayoutName(Layout l) {
  switch (l) {
    case Layout::kSorted:
      return "sorted";
    case Layout::kSemiSorted:
      return "semi-sorted";
    case Layout::kRandom:
      return "random";
  }
  return "?";
}

std::unique_ptr<TableShard> BuildShard(BlockStore* store, Layout layout,
                                       size_t rows) {
  sdw::TableSchema schema("t", {{"ts", sdw::TypeId::kInt64},
                                {"v", sdw::TypeId::kInt64}});
  StorageOptions options;
  options.max_rows_per_block = 2048;
  auto shard = std::make_unique<TableShard>(schema, options, store);
  sdw::Rng rng(3);
  sdw::ColumnVector ts(sdw::TypeId::kInt64);
  sdw::ColumnVector v(sdw::TypeId::kInt64);
  for (size_t i = 0; i < rows; ++i) {
    int64_t value = static_cast<int64_t>(i);
    if (layout == Layout::kSemiSorted) value += rng.UniformRange(-500, 500);
    if (layout == Layout::kRandom) value = rng.UniformRange(0, rows);
    ts.AppendInt(value);
    v.AppendInt(rng.UniformRange(0, 1000));
  }
  std::vector<sdw::ColumnVector> run;
  run.push_back(std::move(ts));
  run.push_back(std::move(v));
  SDW_CHECK_OK(shard->Append(run));
  return shard;
}

}  // namespace

int main() {
  benchutil::Banner("A2", "zone-map block skipping vs full scans",
                    "range scans on sorted data touch ~selectivity of the "
                    "blocks; random layout degrades to full scan, never "
                    "worse");

  const size_t kRows = 1000000;
  std::printf("\n%zu rows, 2048 rows/block (%zu blocks/column):\n", kRows,
              kRows / 2048);
  std::printf("\n%-12s  %12s  %14s  %14s  %10s\n", "layout", "selectivity",
              "blocks_read", "blocks_total", "scan_time");

  double sorted_narrow_frac = 1.0;
  double random_narrow_frac = 0.0;
  for (Layout layout : {Layout::kSorted, Layout::kSemiSorted,
                        Layout::kRandom}) {
    BlockStore store;
    auto shard = BuildShard(&store, layout, kRows);
    const uint64_t total_blocks = shard->chain(0).size();
    for (double selectivity : {0.001, 0.01, 0.1, 1.0}) {
      const int64_t lo = static_cast<int64_t>(kRows * 0.45);
      const int64_t hi =
          lo + static_cast<int64_t>(kRows * selectivity) - 1;
      RangePredicate pred{0, sdw::Datum::Int64(lo), sdw::Datum::Int64(hi)};
      shard->ResetCounters();
      uint64_t matched = 0;
      double seconds = benchutil::TimeIt([&] {
        for (const auto& range :
             shard->CandidateRanges({pred})) {
          auto cols = shard->ReadRange({0}, range);
          SDW_CHECK(cols.ok());
          for (size_t i = 0; i < (*cols)[0].size(); ++i) {
            int64_t value = (*cols)[0].IntAt(i);
            if (value >= lo && value <= hi) ++matched;
          }
        }
      });
      std::printf("%-12s  %11.1f%%  %14llu  %14llu  %10s\n",
                  LayoutName(layout), selectivity * 100,
                  static_cast<unsigned long long>(shard->blocks_decoded()),
                  static_cast<unsigned long long>(total_blocks),
                  sdw::FormatDuration(seconds).c_str());
      const double frac =
          static_cast<double>(shard->blocks_decoded()) / total_blocks;
      if (layout == Layout::kSorted && selectivity == 0.001) {
        sorted_narrow_frac = frac;
      }
      if (layout == Layout::kRandom && selectivity == 0.001) {
        random_narrow_frac = frac;
      }
      (void)matched;
    }
  }

  std::printf("\n");
  benchutil::Check(sorted_narrow_frac < 0.01,
                   "0.1% scan of sorted data touches <1% of blocks");
  benchutil::Check(random_narrow_frac > 0.9,
                   "random layout degrades to a full scan (never worse)");
  return 0;
}
