// A6: streaming restore (§2.2/§2.3) — "the database [is] opened for SQL
// operations after metadata and catalog restoration, but while blocks
// [are] still being brought down in background. Since the average
// working set ... is a small fraction of the total data stored, this
// allows performant queries ... in a small fraction of the time
// required for a full restore."

#include <cstdio>

#include "backup/backup_manager.h"
#include <algorithm>
#include <memory>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "cluster/executor.h"
#include "common/random.h"
#include "common/units.h"
#include "plan/planner.h"

namespace {

std::unique_ptr<sdw::cluster::Cluster> Build(size_t rows) {
  sdw::cluster::ClusterConfig config;
  config.num_nodes = 2;
  config.slices_per_node = 2;
  config.storage.max_rows_per_block = 4096;
  auto cluster = std::make_unique<sdw::cluster::Cluster>(config);
  sdw::TableSchema schema("events", {{"day", sdw::TypeId::kInt64},
                                     {"v", sdw::TypeId::kInt64}});
  SDW_CHECK_OK(schema.SetSortKey(sdw::SortStyle::kCompound, {"day"}));
  SDW_CHECK_OK(cluster->CreateTable(schema));
  sdw::Rng rng(5);
  const size_t kBatch = 100000;
  size_t loaded = 0;
  int64_t day = 0;
  while (loaded < rows) {
    const size_t n = std::min(kBatch, rows - loaded);
    sdw::ColumnVector d(sdw::TypeId::kInt64), v(sdw::TypeId::kInt64);
    for (size_t i = 0; i < n; ++i) {
      d.AppendInt(day + static_cast<int64_t>((loaded + i) / 10000));
      v.AppendInt(rng.UniformRange(0, 1000));
    }
    std::vector<sdw::ColumnVector> cols;
    cols.push_back(std::move(d));
    cols.push_back(std::move(v));
    SDW_CHECK_OK(cluster->InsertRows("events", cols));
    loaded += n;
  }
  return cluster;
}

/// Runs the "Monday morning dashboard": a narrow scan of the most
/// recent day only (the working set).
double WorkingSetQuery(sdw::cluster::Cluster* cluster, int64_t max_day) {
  sdw::plan::LogicalQuery q;
  q.from_table = "events";
  q.where = {{{"", "day"}, sdw::plan::LogicalCmp::kGe,
              sdw::Datum::Int64(max_day - 1)}};
  q.select = {{sdw::plan::LogicalAggFn::kCountStar, {}, "n"},
              {sdw::plan::LogicalAggFn::kSum, {"", "v"}, "s"}};
  sdw::plan::Planner planner(cluster->catalog());
  auto physical = planner.Plan(q);
  SDW_CHECK(physical.ok());
  sdw::cluster::QueryExecutor executor(cluster);
  double seconds = benchutil::TimeIt([&] {
    auto result = executor.Execute(*physical);
    SDW_CHECK(result.ok()) << result.status();
  });
  return seconds;
}

}  // namespace

int main() {
  benchutil::Banner("A6", "streaming restore with block page-faulting",
                    "time-to-first-query is ~flat in data size; working-set "
                    "queries fetch a sliver of the blocks");

  std::printf("\n%10s  %10s  %12s  %14s  %16s  %16s\n", "rows", "blocks",
              "ttfq_model", "full_model", "ws_blocks_pulled",
              "ws_query_time");

  bool ttfq_flat = true;
  bool working_set_small = true;
  double first_ttfq = -1;
  for (size_t rows : {200000ul, 800000ul, 3200000ul}) {
    auto cluster = Build(rows);
    const int64_t max_day = static_cast<int64_t>(rows / 10000);
    sdw::backup::S3 s3;
    sdw::backup::BackupManager mgr(&s3, "us-east-1", "bench");
    auto backup = mgr.Backup(cluster.get());
    SDW_CHECK(backup.ok());

    sdw::backup::BackupManager::RestoreStats stats;
    auto restored = mgr.StreamingRestore(backup->snapshot_id, &stats);
    SDW_CHECK(restored.ok());

    // The restored cluster serves the dashboard immediately; count how
    // many blocks it had to page in.
    double ws_seconds = WorkingSetQuery(restored->get(), max_day);
    uint64_t pulled = 0;
    for (int n = 0; n < (*restored)->num_nodes(); ++n) {
      pulled += (*restored)->node(n)->store()->num_blocks();
    }
    std::printf("%10zu  %10llu  %12s  %14s  %16llu  %16s\n", rows,
                static_cast<unsigned long long>(stats.total_blocks),
                sdw::FormatDuration(stats.time_to_first_query_seconds).c_str(),
                sdw::FormatDuration(stats.full_restore_seconds).c_str(),
                static_cast<unsigned long long>(pulled),
                sdw::FormatDuration(ws_seconds).c_str());

    if (first_ttfq < 0) first_ttfq = stats.time_to_first_query_seconds;
    if (stats.time_to_first_query_seconds > first_ttfq * 50) {
      ttfq_flat = false;
    }
    if (pulled * 5 > stats.total_blocks) working_set_small = false;
  }

  std::printf("\n(the paper's EDW case: 48h full restore, but 'a meaningful "
              "percentage of customers delete their clusters every Friday "
              "and restore each Monday' — because of this path)\n\n");
  benchutil::Check(ttfq_flat,
                   "time-to-first-query grows ~50x slower than data size");
  benchutil::Check(working_set_small,
                   "working-set dashboard pulled <20% of blocks");
  return 0;
}
