// Figure 4: cumulative features deployed over time grows linearly at
// ~1/week for two years, enabled by automatic patching with rollback.
// Ablation (§5 lesson): slowing the train from 2 to 4 weeks
// "meaningfully increased the probability of a failed patch".

#include <cstdio>

#include "bench/bench_util.h"
#include "fleet/fleet.h"

int main() {
  benchutil::Banner("F4", "Figure 4: cumulative features deployed over time",
                    "~1 feature/week, linear over 2 years; slower trains "
                    "fail more");

  sdw::fleet::ReleaseTrain::Config config;
  sdw::fleet::ReleaseTrain train(config);
  sdw::Rng rng(7);
  auto summary = train.Run(&rng);

  std::printf("\nBiweekly train, 104 weeks:\n\n");
  std::printf("%6s  %22s  %16s\n", "week", "cumulative_features",
              "failed_deploys");
  for (const auto& week : summary.series) {
    if (week.week % 8 != 0) continue;
    std::printf("%6d  %22.0f  %16d\n", week.week, week.cumulative_deployed,
                week.failed_deploys_to_date);
  }

  // Cadence ablation, averaged over seeds.
  std::printf("\nCadence ablation (30 seeds):\n\n");
  std::printf("%16s  %20s  %18s\n", "deploy_interval", "failed_deploy_frac",
              "features_shipped");
  double fail2 = 0, fail4 = 0;
  for (int interval : {1, 2, 4, 8}) {
    double failed = 0, features = 0;
    for (uint64_t seed = 1; seed <= 30; ++seed) {
      sdw::fleet::ReleaseTrain::Config c;
      c.deploy_interval_weeks = interval;
      sdw::Rng r(seed);
      auto s = sdw::fleet::ReleaseTrain(c).Run(&r);
      failed += s.failed_deploy_fraction;
      features += s.series.back().cumulative_deployed;
    }
    failed /= 30;
    features /= 30;
    std::printf("%13d wk  %19.1f%%  %18.0f\n", interval, failed * 100,
                features);
    if (interval == 2) fail2 = failed;
    if (interval == 4) fail4 = failed;
  }

  std::printf("\n");
  const double total = summary.series.back().cumulative_deployed;
  benchutil::Check(total > 80 && total < 125,
                   "~1 feature/week over two years (paper: ~104)");
  const double mid = summary.series[51].cumulative_deployed;
  benchutil::Check(mid > total * 0.3 && mid < total * 0.7,
                   "growth is roughly linear, not bursty");
  benchutil::Check(fail4 > 1.3 * fail2,
                   "4-week trains fail meaningfully more than 2-week trains");
  return 0;
}
