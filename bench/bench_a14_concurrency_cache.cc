// A14 (extension): concurrent query serving — live WLM admission plus
// the compiled-segment and result caches. §4 again: resources must be
// "distributed across many concurrent queries", and the §2.1 leader
// caches compiled segments so repeat shapes skip compilation. Three
// arms: (1) a warm result cache answers repeats >=10x faster than cold
// execution, (2) a segment-cache hit zeroes the modeled compile charge,
// (3) 8 client threads against 5 slots never exceed 5 in flight yet
// sustain more throughput than the cache-less serial endpoint.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "warehouse/warehouse.h"

namespace {

using sdw::warehouse::Warehouse;
using sdw::warehouse::WarehouseOptions;

constexpr int kRows = 60000;
constexpr int kClients = 8;
constexpr int kSlots = 5;
constexpr int kStatementsPerClient = 12;

WarehouseOptions Options() {
  WarehouseOptions options;
  options.cluster.num_nodes = 2;
  options.cluster.slices_per_node = 2;
  options.cluster.storage.max_rows_per_block = 1024;
  options.wlm.concurrency_slots = kSlots;
  return options;
}

void LoadTable(Warehouse* wh) {
  SDW_CHECK_OK(wh->Execute("CREATE TABLE t (k BIGINT, v BIGINT, x DOUBLE) "
                           "DISTKEY(k) SORTKEY(v)")
                   .status());
  sdw::ColumnVector k(sdw::TypeId::kInt64), v(sdw::TypeId::kInt64),
      x(sdw::TypeId::kDouble);
  for (int i = 0; i < kRows; ++i) {
    k.AppendInt(i % 97);
    v.AppendInt(i);
    x.AppendDouble((i % 1000) / 8.0);
  }
  std::vector<sdw::ColumnVector> cols;
  cols.push_back(std::move(k));
  cols.push_back(std::move(v));
  cols.push_back(std::move(x));
  SDW_CHECK_OK(wh->data_plane()->InsertRows("t", cols));
  SDW_CHECK_OK(wh->data_plane()->Analyze("t"));
}

std::string ClientQuery(int client, int iter) {
  // Distinct literals per statement: distinct fingerprints, so neither
  // cache short-circuits the admission path in the concurrency arm.
  return "SELECT k, COUNT(*) AS n, SUM(v) AS sv FROM t WHERE v < " +
         std::to_string(10000 + 4000 * client + 17 * iter) +
         " GROUP BY k ORDER BY k";
}

}  // namespace

int main() {
  benchutil::Banner(
      "A14 (extension)", "concurrent serving: WLM admission + query caches",
      "warm result-cache repeats >=10x faster than cold; 8 clients on 5 "
      "slots never exceed 5 in flight and beat the cache-less serial "
      "baseline");

  // --- Arm 1: cold execution vs warm result cache -------------------
  {
    Warehouse wh(Options());
    LoadTable(&wh);
    const std::string query =
        "SELECT k, COUNT(*) AS n, SUM(v) AS sv, AVG(x) AS mx FROM t "
        "GROUP BY k ORDER BY k";
    double cold_seconds = 0;
    benchutil::TimeIt([&] {  // plan-only warmup kept out of the timing
      SDW_CHECK_OK(wh.Execute("EXPLAIN " + query).status());
    });
    cold_seconds = benchutil::TimeIt(
        [&] { SDW_CHECK_OK(wh.Execute(query).status()); });
    const int kRepeats = 50;
    bool all_hits = true;
    const double warm_seconds = benchutil::TimeIt([&] {
      for (int i = 0; i < kRepeats; ++i) {
        auto r = wh.Execute(query);
        SDW_CHECK_OK(r.status());
        all_hits = all_hits && r->from_result_cache;
      }
    }) / kRepeats;
    const double speedup = warm_seconds > 0 ? cold_seconds / warm_seconds : 0;
    std::printf("\n  result cache: cold %.6fs, warm %.6fs -> %.1fx\n",
                cold_seconds, warm_seconds, speedup);
    benchutil::JsonMetric("result_cache.cold_seconds", cold_seconds);
    benchutil::JsonMetric("result_cache.warm_seconds", warm_seconds);
    benchutil::JsonMetric("result_cache.speedup", speedup);
    benchutil::Check(all_hits, "every repeat was served from the cache");
    benchutil::Check(speedup >= 10.0,
                     "warm result-cache repeat is >=10x faster than cold");
  }

  // --- Arm 2: segment cache zeroes the modeled compile charge -------
  {
    WarehouseOptions options = Options();
    options.exec.compile_seconds = 0.05;       // the A5 modeled charge
    options.cache.enable_result_cache = false;  // force re-execution
    Warehouse wh(options);
    LoadTable(&wh);
    const std::string query =
        "SELECT k, COUNT(*) AS n FROM t GROUP BY k ORDER BY k";
    auto first = wh.Execute(query);
    SDW_CHECK_OK(first.status());
    auto repeat = wh.Execute(query);
    SDW_CHECK_OK(repeat.status());
    std::printf("\n  segment cache: compile charge %.3fs cold, %.3fs on "
                "repeat\n",
                first->exec_stats.compile_seconds,
                repeat->exec_stats.compile_seconds);
    benchutil::JsonMetric("segment_cache.cold_compile_seconds",
                          first->exec_stats.compile_seconds);
    benchutil::JsonMetric("segment_cache.repeat_compile_seconds",
                          repeat->exec_stats.compile_seconds);
    benchutil::Check(first->exec_stats.compile_seconds == 0.05,
                     "cold run pays the full compile charge");
    benchutil::Check(repeat->exec_stats.compile_seconds == 0.0,
                     "segment-cache hit skips compilation entirely");
  }

  // --- Arm 3: 8 clients, 5 slots ------------------------------------
  // Each client runs its own dashboard: kStatementsPerClient distinct
  // queries repeated for kRounds rounds (round 1 cold — that is what
  // pins all 5 slots — later rounds mostly warm). The baseline is the
  // pre-caching serial endpoint: the identical workload, caches off,
  // one statement at a time. That comparison holds on any core count;
  // on multicore boxes slot overlap widens the gap further.
  {
    constexpr int kRounds = 3;
    Warehouse wh(Options());
    LoadTable(&wh);
    const double parallel_seconds = benchutil::TimeIt([&] {
      std::vector<std::thread> clients;
      clients.reserve(kClients);
      for (int c = 0; c < kClients; ++c) {
        Warehouse::Session session = wh.CreateSession();
        clients.emplace_back([&wh, c, session]() mutable {
          for (int round = 0; round < kRounds; ++round) {
            for (int i = 0; i < kStatementsPerClient; ++i) {
              SDW_CHECK_OK(session.Execute(ClientQuery(c, i)).status());
            }
          }
        });
      }
      for (auto& t : clients) t.join();
    });

    WarehouseOptions serial_options = Options();
    serial_options.cache.enable_segment_cache = false;
    serial_options.cache.enable_result_cache = false;
    Warehouse serial(serial_options);
    LoadTable(&serial);
    const double serial_seconds = benchutil::TimeIt([&] {
      for (int round = 0; round < kRounds; ++round) {
        for (int c = 0; c < kClients; ++c) {
          for (int i = 0; i < kStatementsPerClient; ++i) {
            SDW_CHECK_OK(serial.Execute(ClientQuery(c, i)).status());
          }
        }
      }
    });

    const int total = kClients * kStatementsPerClient * kRounds;
    const double parallel_qps = total / parallel_seconds;
    const double serial_qps = total / serial_seconds;
    std::printf("\n  %d statements: cache-less serial %.3fs (%.0f q/s), "
                "%d clients %.3fs (%.0f q/s)\n",
                total, serial_seconds, serial_qps, kClients,
                parallel_seconds, parallel_qps);
    std::printf("  max in flight %d of %d slots, admitted %llu, queued "
                "now %zu\n",
                wh.wlm()->max_in_flight(), kSlots,
                static_cast<unsigned long long>(wh.wlm()->admitted()),
                wh.wlm()->queued());
    benchutil::JsonMetric("concurrency.serial_seconds", serial_seconds);
    benchutil::JsonMetric("concurrency.parallel_seconds", parallel_seconds);
    benchutil::JsonMetric("concurrency.parallel_qps", parallel_qps);
    benchutil::JsonMetric("concurrency.serial_qps", serial_qps);
    benchutil::JsonMetric("concurrency.max_in_flight",
                          wh.wlm()->max_in_flight());
    benchutil::Check(wh.wlm()->max_in_flight() == kSlots,
                     "observed max in-flight equals the slot limit");
    benchutil::Check(wh.wlm()->timeouts() == 0,
                     "no statement starved out of the queue");
    benchutil::Check(parallel_qps > serial_qps,
                     "concurrent serving throughput exceeds the serial "
                     "baseline");
  }
  return 0;
}
