// Tests for the runtime lock-rank validator (common/lock_rank.h): the
// enforced half of the lock hierarchy DESIGN.md §4f documents. Every
// test installs a capturing violation handler (report mode) instead of
// letting the default abort, so a seeded inversion is an assertion,
// not a death.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"

// This binary deliberately acquires mutexes out of rank order to prove
// the validator reports inversions. TSan's own deadlock detector sees
// those seeded cycles too (the capturing handler falls through, so the
// out-of-order acquisitions really happen). Suppress deadlock reports
// whose stack passes through this file — TSan still watches everything
// else the binary does, and the real inversion coverage for production
// code comes from the full suite running with SDW_LOCK_RANK_CHECKS=1.
#if defined(__SANITIZE_THREAD__)
#define SDW_LOCK_RANK_TEST_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SDW_LOCK_RANK_TEST_UNDER_TSAN 1
#endif
#endif
#ifdef SDW_LOCK_RANK_TEST_UNDER_TSAN
extern "C" const char* __tsan_default_suppressions() {
  return "deadlock:lock_rank_test.cc\n";
}
#endif

namespace sdw::common {
namespace {

/// Captures every violation the handler sees. The handler is a plain
/// function pointer (it must be installable before any C++ runtime
/// machinery), so the capture buffer is a global.
std::vector<LockRankViolation>* g_captured = nullptr;

void CaptureViolation(const LockRankViolation& violation) {
  g_captured->push_back(violation);
}

class LockRankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    captured_.clear();
    g_captured = &captured_;
    previous_handler_ = SetLockRankViolationHandler(&CaptureViolation);
    previously_enabled_ = LockRankChecksEnabled();
    EnableLockRankChecks(true);
  }

  void TearDown() override {
    EnableLockRankChecks(previously_enabled_);
    SetLockRankViolationHandler(previous_handler_);
    g_captured = nullptr;
  }

  std::vector<LockRankViolation> captured_;
  LockRankViolationHandler previous_handler_ = nullptr;
  bool previously_enabled_ = false;
};

TEST_F(LockRankTest, AscendingOrderIsClean) {
  Mutex writer{LockRank::kWarehouseWriter};
  Mutex store{LockRank::kBlockStore};
  Mutex registry{LockRank::kMetricsRegistry};
  {
    MutexLock a(writer);
    MutexLock b(store);
    MutexLock c(registry);
    EXPECT_EQ(internal::HeldRankedLocks(), 3);
  }
  EXPECT_EQ(internal::HeldRankedLocks(), 0);
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LockRankTest, InversionIsDetectedAndReportsBothStacks) {
  Mutex store{LockRank::kBlockStore};
  Mutex cache{LockRank::kShardDecodeCache};
  {
    MutexLock a(store);
    // kShardDecodeCache (300) under kBlockStore (550): the reverse of
    // the documented DecodeBlock exception, i.e. a real inversion.
    MutexLock b(cache);
  }
  ASSERT_EQ(captured_.size(), 1u);
  const LockRankViolation& v = captured_[0];
  EXPECT_EQ(v.acquired, LockRank::kShardDecodeCache);
  EXPECT_EQ(v.held, LockRank::kBlockStore);
  // The report names both ranks and carries both acquisition stacks.
  EXPECT_NE(v.report.find("lock-rank violation"), std::string::npos);
  EXPECT_NE(v.report.find("kShardDecodeCache"), std::string::npos);
  EXPECT_NE(v.report.find("kBlockStore"), std::string::npos);
  EXPECT_NE(v.report.find("stack acquiring"), std::string::npos);
  EXPECT_NE(v.report.find("stack that acquired the held"), std::string::npos);
}

TEST_F(LockRankTest, EqualRanksNeverNest) {
  // Two instances of the same layer (e.g. two BlockStores) held
  // together is an ABBA hazard between threads taking them in opposite
  // orders, so strict ordering rejects equal ranks too.
  Mutex a{LockRank::kBlockStore};
  Mutex b{LockRank::kBlockStore};
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].acquired, LockRank::kBlockStore);
  EXPECT_EQ(captured_[0].held, LockRank::kBlockStore);
}

TEST_F(LockRankTest, ReportModeDoesNotCascadeOnRelease) {
  // A non-aborting handler must leave the held-lock bookkeeping
  // consistent: after the inversion both locks release cleanly and a
  // fresh well-ordered sequence reports nothing new.
  Mutex store{LockRank::kBlockStore};
  Mutex cache{LockRank::kShardDecodeCache};
  {
    MutexLock a(store);
    MutexLock b(cache);
  }
  EXPECT_EQ(internal::HeldRankedLocks(), 0);
  ASSERT_EQ(captured_.size(), 1u);
  {
    MutexLock b(cache);
    MutexLock a(store);
  }
  EXPECT_EQ(captured_.size(), 1u);  // no new violation
}

TEST_F(LockRankTest, UnrankedLocksAreExempt) {
  Mutex ranked{LockRank::kBlockStore};
  Mutex unranked;  // LockRank::kUnranked
  {
    MutexLock a(ranked);
    MutexLock b(unranked);  // below a ranked lock: fine
    EXPECT_EQ(internal::HeldRankedLocks(), 1);
  }
  {
    MutexLock b(unranked);
    MutexLock a(ranked);  // above one: also fine
  }
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LockRankTest, TryLockRecordsButSkipsOrderCheck) {
  // try_lock cannot deadlock (it never blocks), so an out-of-order
  // try_lock is legal — but once held, the lock still participates in
  // ordering for later blocking acquisitions.
  Mutex store{LockRank::kBlockStore};
  Mutex cache{LockRank::kShardDecodeCache};
  Mutex head{LockRank::kShardHead};
  MutexLock a(store);
  ASSERT_TRUE(cache.try_lock());  // inversion, but non-blocking: clean
  EXPECT_TRUE(captured_.empty());
  EXPECT_EQ(internal::HeldRankedLocks(), 2);
  {
    MutexLock c(head);  // 450 under held 550: real blocking inversion
  }
  EXPECT_EQ(captured_.size(), 1u);
  cache.unlock();
}

TEST_F(LockRankTest, DisabledValidatorRecordsNothing) {
  EnableLockRankChecks(false);
  Mutex store{LockRank::kBlockStore};
  Mutex cache{LockRank::kShardDecodeCache};
  {
    MutexLock a(store);
    MutexLock b(cache);  // would be a violation if enabled
    EXPECT_EQ(internal::HeldRankedLocks(), 0);
  }
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LockRankTest, SharedLocksObeyTheSameOrder) {
  SharedMutex data{LockRank::kWarehouseData};
  Mutex writer{LockRank::kWarehouseWriter};
  {
    ReaderMutexLock read(data);
    MutexLock w(writer);  // kWarehouseWriter (100) under data (150)
  }
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].acquired, LockRank::kWarehouseWriter);
  EXPECT_EQ(captured_[0].held, LockRank::kWarehouseData);
}

TEST_F(LockRankTest, HeldStacksArePerThread) {
  // A lock held on one thread must not order acquisitions on another:
  // each thread owns its own held-lock stack.
  Mutex store{LockRank::kBlockStore};
  Mutex cache{LockRank::kShardDecodeCache};
  MutexLock a(store);
  std::thread other([&] {
    MutexLock b(cache);  // clean: this thread holds nothing
    EXPECT_EQ(internal::HeldRankedLocks(), 1);
  });
  other.join();
  EXPECT_TRUE(captured_.empty());
  EXPECT_EQ(internal::HeldRankedLocks(), 1);
}

TEST_F(LockRankTest, CondVarRelockStaysBalanced) {
  // CondVar::Wait unlocks and relocks through the hooked Mutex, so the
  // held stack must stay balanced across a wait.
  Mutex mu{LockRank::kThreadPool};
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyAll();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    EXPECT_EQ(internal::HeldRankedLocks(), 1);
  }
  waker.join();
  EXPECT_EQ(internal::HeldRankedLocks(), 0);
  EXPECT_TRUE(captured_.empty());
}

}  // namespace
}  // namespace sdw::common
