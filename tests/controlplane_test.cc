#include <gtest/gtest.h>

#include "controlplane/control_plane.h"

namespace sdw::controlplane {
namespace {

TEST(WarmPoolTest, AcquireAndRefill) {
  sim::Engine engine;
  WarmPool pool(3, 60.0);
  EXPECT_EQ(pool.Acquire(2), 2);
  EXPECT_EQ(pool.available(), 1);
  EXPECT_EQ(pool.Acquire(5), 1);  // partial grant when drained
  EXPECT_EQ(pool.available(), 0);
  pool.Refill(&engine);
  engine.Run();
  EXPECT_EQ(pool.available(), 3);  // refilled one at a time to capacity
}

TEST(WarmPoolTest, Ec2OutageStopsRefillButServes) {
  sim::Engine engine;
  WarmPool pool(2, 60.0);
  pool.set_ec2_available(false);
  EXPECT_EQ(pool.Acquire(1), 1);  // degrade: pool keeps serving
  pool.Refill(&engine);
  engine.Run();
  EXPECT_EQ(pool.available(), 1);  // no refill during the interruption
  pool.set_ec2_available(true);
  pool.Refill(&engine);
  engine.Run();
  EXPECT_EQ(pool.available(), 2);
}

TEST(ControlPlaneTest, ProvisioningIsNodeParallel) {
  // Cold-provisioning 2 vs 128 nodes should cost the same makespan:
  // the Figure-2 flatness claim.
  sim::Engine engine;
  ControlPlane cp(&engine);
  OpResult small = cp.ProvisionCluster(2);
  OpResult large = cp.ProvisionCluster(128);
  EXPECT_NEAR(small.seconds, large.seconds, 1e-9);
  EXPECT_GT(small.click_seconds, 0.0);
}

TEST(ControlPlaneTest, WarmPoolCutsProvisioningTime) {
  // The paper: preconfigured nodes cut creation from ~15 to ~3 minutes.
  sim::Engine engine;
  ControlPlane cold(&engine);
  OpResult cold_result = cold.ProvisionCluster(4);

  WarmPool pool(16, 60.0);
  ControlPlane warm(&engine);
  warm.set_warm_pool(&pool);
  OpResult warm_result = warm.ProvisionCluster(4);
  EXPECT_LT(warm_result.seconds * 2, cold_result.seconds);
  // Cold path lands in the ~15 min regime, warm in the ~3 min regime.
  EXPECT_GT(cold_result.seconds, 8 * 60);
  EXPECT_LT(warm_result.seconds, 5 * 60);
}

TEST(ControlPlaneTest, DrainedWarmPoolFallsBackToCold) {
  sim::Engine engine;
  WarmPool pool(2, 1e9);  // effectively no refill
  ControlPlane cp(&engine);
  cp.set_warm_pool(&pool);
  OpResult r = cp.ProvisionCluster(8);  // 2 warm + 6 cold
  // The cold nodes dominate the makespan.
  WorkflowTimings timings;
  EXPECT_GE(r.seconds, timings.provision_cold_node);
}

TEST(ControlPlaneTest, BackupScalesWithChangedBytesNotClusterSize) {
  sim::Engine engine;
  ControlPlane cp(&engine);
  // Same per-node delta: 2-node and 128-node backups take equal time.
  OpResult small = cp.Backup(2, 3ull << 30);
  OpResult large = cp.Backup(128, 3ull << 30);
  EXPECT_NEAR(small.seconds, large.seconds, 1e-9);
  // 10x the per-node delta costs ~10x the upload portion (the fixed
  // initiation overhead is size-independent).
  OpResult big_delta = cp.Backup(2, 30ull << 30);
  EXPECT_GT(big_delta.seconds, small.seconds + 60);
}

TEST(ControlPlaneTest, StreamingRestoreIsNearlyFlat) {
  sim::Engine engine;
  ControlPlane cp(&engine);
  OpResult small = cp.Restore(2);
  OpResult large = cp.Restore(128);
  EXPECT_NEAR(small.seconds, large.seconds, 1e-9);
}

TEST(ControlPlaneTest, ResizeBoundByCopyBandwidth) {
  sim::Engine engine;
  WorkflowTimings timings;
  cluster::CostModel model;
  ControlPlane cp(&engine, timings, model);
  const uint64_t bytes = 100ull << 30;  // 100 GiB
  OpResult up = cp.Resize(2, 16, bytes);
  OpResult up_big = cp.Resize(16, 32, bytes);
  // More sender nodes = faster copy.
  EXPECT_GT(up.seconds, up_big.seconds);
}

TEST(ControlPlaneTest, PatchRollsBackOnDefect) {
  sim::Engine engine;
  ControlPlane cp(&engine);
  Rng rng(5);
  OpResult good = cp.Patch(16, 0.0, &rng);
  EXPECT_FALSE(good.rolled_back);
  OpResult bad = cp.Patch(16, 1.0, &rng);
  EXPECT_TRUE(bad.rolled_back);
  EXPECT_GT(bad.seconds, good.seconds);
}

TEST(ControlPlaneTest, NodeReplacementPrefersWarmPool) {
  sim::Engine engine;
  ControlPlane cold(&engine);
  OpResult cold_replace = cold.ReplaceNode();
  WarmPool pool(4, 60.0);
  ControlPlane warm(&engine);
  warm.set_warm_pool(&pool);
  OpResult warm_replace = warm.ReplaceNode();
  EXPECT_LT(warm_replace.seconds, cold_replace.seconds);
}

TEST(HostManagerTest, RestartsThenEscalates) {
  HostManager hm(HostManager::Config{2, 30});
  EXPECT_TRUE(hm.OnProcessCrash());
  EXPECT_TRUE(hm.OnProcessCrash());
  EXPECT_FALSE(hm.OnProcessCrash());  // third in a row escalates
  EXPECT_EQ(hm.restarts(), 2);
  EXPECT_EQ(hm.escalations(), 1);
  // Heartbeats reset the window.
  EXPECT_TRUE(hm.OnProcessCrash());
  hm.OnHeartbeat();
  EXPECT_TRUE(hm.OnProcessCrash());
  EXPECT_TRUE(hm.OnProcessCrash());
}

}  // namespace
}  // namespace sdw::controlplane
