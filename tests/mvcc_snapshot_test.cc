// MVCC snapshot reads: SELECTs pin a (table -> chain version) snapshot
// at admission and scan immutable chains while writers install new
// versions off to the side. This suite covers the storage-level
// version machinery (prepare/install/retire/GC), the cluster-level
// pin + deferred-DROP paths, and the warehouse-level races the MVCC
// promotion fixed: stale result-cache entries keyed by pre-admission
// versions, BumpAllVersions missing restored tables, and readers
// pinned across DROP / VACUUM / ROLLBACK. Runs under the TSan/ASan CI
// legs.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "storage/block_store.h"
#include "storage/table_shard.h"
#include "warehouse/warehouse.h"

namespace sdw::warehouse {
namespace {

// ---------------------------------------------------------------------------
// Storage level: the versioned chain head
// ---------------------------------------------------------------------------

TableSchema KvSchema() {
  return TableSchema("t", {{"k", TypeId::kInt64}, {"v", TypeId::kInt64}});
}

std::vector<ColumnVector> KvRun(int64_t start, size_t n) {
  ColumnVector k(TypeId::kInt64);
  ColumnVector v(TypeId::kInt64);
  for (size_t i = 0; i < n; ++i) {
    k.AppendInt(start + static_cast<int64_t>(i));
    v.AppendInt(10 * (start + static_cast<int64_t>(i)));
  }
  std::vector<ColumnVector> run;
  run.push_back(std::move(k));
  run.push_back(std::move(v));
  return run;
}

storage::StorageOptions TinyBlocks() {
  storage::StorageOptions opts;
  opts.max_rows_per_block = 16;
  return opts;
}

TEST(MvccStorageTest, SnapshotIsolatedFromLaterAppends) {
  storage::BlockStore store;
  storage::TableShard shard(KvSchema(), TinyBlocks(), &store);
  ASSERT_TRUE(shard.Append(KvRun(0, 40)).ok());
  storage::ShardSnapshot pinned = shard.Snapshot();
  ASSERT_TRUE(shard.Append(KvRun(40, 40)).ok());

  EXPECT_EQ(pinned->row_count, 40u);
  EXPECT_EQ(shard.row_count(), 80u);
  auto old_view = shard.ReadAll(*pinned, {0});
  ASSERT_TRUE(old_view.ok());
  ASSERT_EQ((*old_view)[0].size(), 40u);
  EXPECT_EQ((*old_view)[0].IntAt(39), 39);
  auto head_view = shard.ReadAll({0});
  ASSERT_TRUE(head_view.ok());
  EXPECT_EQ((*head_view)[0].size(), 80u);
  EXPECT_GT(shard.Snapshot()->version, pinned->version);
}

TEST(MvccStorageTest, InstallDetectsConcurrentWriter) {
  storage::BlockStore store;
  storage::TableShard shard(KvSchema(), TinyBlocks(), &store);
  ASSERT_TRUE(shard.Append(KvRun(0, 20)).ok());

  storage::ShardSnapshot base = shard.Snapshot();
  auto staged = shard.PrepareAppend(base, KvRun(20, 20));
  ASSERT_TRUE(staged.ok());
  // Another statement wins the race and installs first.
  ASSERT_TRUE(shard.Append(KvRun(100, 20)).ok());
  EXPECT_EQ(shard.Install(base, *staged).code(),
            StatusCode::kFailedPrecondition);
  // Aborting deletes the invisibly prepared blocks again.
  const uint64_t before = store.num_blocks();
  std::vector<storage::BlockId> discarded =
      shard.DiscardPrepared(*base, **staged);
  EXPECT_FALSE(discarded.empty());
  EXPECT_LT(store.num_blocks(), before);
  EXPECT_EQ(shard.row_count(), 40u);
}

TEST(MvccStorageTest, GcSkipsPinnedRetiredVersions) {
  storage::BlockStore store;
  storage::TableShard shard(KvSchema(), TinyBlocks(), &store);
  ASSERT_TRUE(shard.Append(KvRun(0, 40)).ok());
  shard.CollectGarbage(nullptr);  // drain the retired empty v0
  storage::ShardSnapshot pinned = shard.Snapshot();

  // A rewrite (VACUUM-style) replaces every chain; the old version
  // retires but its blocks must outlive the pin.
  auto all = shard.ReadAll(*pinned, {0, 1});
  ASSERT_TRUE(all.ok());
  auto rewritten = shard.PrepareRewrite(pinned, *all);
  ASSERT_TRUE(rewritten.ok());
  ASSERT_TRUE(shard.Install(pinned, *rewritten).ok());

  std::vector<storage::BlockId> reclaimed;
  EXPECT_EQ(shard.CollectGarbage(&reclaimed), 0u) << "pinned -> deferred";
  EXPECT_EQ(shard.retired_versions(), 1u);
  auto still_readable = shard.ReadAll(*pinned, {0});
  ASSERT_TRUE(still_readable.ok());
  EXPECT_EQ((*still_readable)[0].size(), 40u);

  pinned.reset();
  EXPECT_EQ(shard.CollectGarbage(&reclaimed), 1u);
  EXPECT_FALSE(reclaimed.empty());
  EXPECT_EQ(shard.retired_versions(), 0u);
  EXPECT_EQ(shard.row_count(), 40u) << "the live head is untouched";
}

// ---------------------------------------------------------------------------
// Warehouse level: pinned readers vs. the write paths
// ---------------------------------------------------------------------------

WarehouseOptions MvccOptions() {
  WarehouseOptions options;
  options.cluster.num_nodes = 2;
  options.cluster.slices_per_node = 2;
  options.cluster.storage.max_rows_per_block = 32;
  return options;
}

StatementResult MustRun(Warehouse* wh, const std::string& sql) {
  auto r = wh->Execute(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
  return r.ok() ? std::move(*r) : StatementResult{};
}

int64_t Count(Warehouse* wh, const std::string& table,
              bool* from_cache = nullptr) {
  StatementResult r =
      MustRun(wh, "SELECT COUNT(*) AS n FROM " + table);
  if (from_cache != nullptr) *from_cache = r.from_result_cache;
  if (r.rows.num_rows() != 1) {
    ADD_FAILURE() << "COUNT returned " << r.rows.num_rows() << " rows";
    return -1;
  }
  return r.rows.columns[0].IntAt(0);
}

/// Rows visible through a pinned snapshot, summed across slices.
uint64_t PinnedRows(const cluster::ReadSnapshot& snap,
                    const std::string& table, int total_slices) {
  uint64_t rows = 0;
  for (int s = 0; s < total_slices; ++s) {
    const storage::ShardRef* ref = snap.Find(table, s);
    if (ref != nullptr) rows += ref->version->row_count;
  }
  return rows;
}

TEST(MvccWarehouseTest, DropTableWhileReaderMidScan) {
  Warehouse wh(MvccOptions());
  MustRun(&wh, "CREATE TABLE t (k BIGINT, v BIGINT)");
  MustRun(&wh, "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");

  // A reader mid-scan holds the shard refs + versions it pinned at
  // admission...
  cluster::ReadSnapshot pinned;
  ASSERT_TRUE(wh.data_plane()->PinTables({"t"}, &pinned).ok());
  const int slices = wh.data_plane()->total_slices();
  EXPECT_EQ(PinnedRows(pinned, "t", slices), 3u);

  // ... while the table is dropped out from under it.
  MustRun(&wh, "DROP TABLE t");
  EXPECT_FALSE(wh.Execute("SELECT COUNT(*) AS n FROM t").ok());

  // The pinned scan still completes over the parked chains.
  const storage::ShardRef* ref = nullptr;
  for (int s = 0; s < slices && ref == nullptr; ++s) {
    const storage::ShardRef* candidate = pinned.Find("t", s);
    if (candidate != nullptr && candidate->version->row_count > 0) {
      ref = candidate;
    }
  }
  ASSERT_NE(ref, nullptr);
  auto rows = ref->shard->ReadAll(*ref->version, {0, 1});
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_GT((*rows)[0].size(), 0u);

  // GC refuses the dropped shards while the reader is live...
  cluster::Cluster::GcStats deferred = wh.CollectGarbage();
  EXPECT_EQ(deferred.dropped_shards_reclaimed, 0u);
  EXPECT_GT(deferred.dropped_shards_deferred, 0u);

  // ... and reclaims them (blocks and all) once it drains.
  pinned = cluster::ReadSnapshot{};
  cluster::Cluster::GcStats collected = wh.CollectGarbage();
  EXPECT_GT(collected.dropped_shards_reclaimed, 0u);
  EXPECT_EQ(collected.dropped_shards_deferred, 0u);
}

TEST(MvccWarehouseTest, VacuumDefersReclaimUnderPinnedSnapshot) {
  Warehouse wh(MvccOptions());
  MustRun(&wh, "CREATE TABLE t (k BIGINT, v BIGINT) SORTKEY(k)");
  MustRun(&wh, "INSERT INTO t VALUES (9, 90), (7, 70)");
  MustRun(&wh, "INSERT INTO t VALUES (8, 80), (1, 10)");

  cluster::ReadSnapshot pinned;
  ASSERT_TRUE(wh.data_plane()->PinTables({"t"}, &pinned).ok());

  // VACUUM rewrites every chain; the pre-vacuum version stays readable
  // through the pin and its blocks stay on the device.
  MustRun(&wh, "VACUUM t");
  const int slices = wh.data_plane()->total_slices();
  EXPECT_EQ(PinnedRows(pinned, "t", slices), 4u);
  for (int s = 0; s < slices; ++s) {
    const storage::ShardRef* ref = pinned.Find("t", s);
    ASSERT_NE(ref, nullptr);
    auto rows = ref->shard->ReadAll(*ref->version, {0, 1});
    EXPECT_TRUE(rows.ok()) << rows.status();
  }
  cluster::Cluster::GcStats deferred = wh.CollectGarbage();
  EXPECT_GT(deferred.versions_deferred, 0u);

  pinned = cluster::ReadSnapshot{};
  cluster::Cluster::GcStats collected = wh.CollectGarbage();
  EXPECT_GT(collected.versions_reclaimed, 0u);
  EXPECT_EQ(collected.versions_deferred, 0u);
  EXPECT_EQ(Count(&wh, "t"), 4);
}

TEST(MvccWarehouseTest, RollbackKeepsPinnedMidTransactionReaders) {
  Warehouse wh(MvccOptions());
  MustRun(&wh, "CREATE TABLE t (k BIGINT, v BIGINT)");
  MustRun(&wh, "INSERT INTO t VALUES (1, 10), (2, 20)");
  MustRun(&wh, "BEGIN");
  MustRun(&wh, "INSERT INTO t VALUES (3, 30)");

  cluster::ReadSnapshot pinned;
  ASSERT_TRUE(wh.data_plane()->PinTables({"t"}, &pinned).ok());
  const int slices = wh.data_plane()->total_slices();
  EXPECT_EQ(PinnedRows(pinned, "t", slices), 3u);

  MustRun(&wh, "ROLLBACK");
  EXPECT_EQ(Count(&wh, "t"), 2) << "rollback rewound the head";
  EXPECT_EQ(PinnedRows(pinned, "t", slices), 3u)
      << "the pinned mid-transaction version is immutable";

  pinned = cluster::ReadSnapshot{};
  wh.CollectGarbage();
  EXPECT_EQ(Count(&wh, "t"), 2);
}

// The BumpAllVersions regression (satellite fix): a restore swaps in a
// catalog whose tables may have never been queried or written through
// this endpoint, so they are absent from the version map. The bump
// must fold in the catalog's table list — otherwise the first SELECT
// after the restore caches at version 0 and the entry survives the
// NEXT whole-plane swap.
TEST(MvccWarehouseTest, BumpAllVersionsCoversRestoredTables) {
  Warehouse wh(MvccOptions());
  // Build the table through the direct data-plane API: the catalog
  // knows it, the front door's version map has never seen it (exactly
  // a restored table's situation).
  TableSchema schema("t", {{"k", TypeId::kInt64}, {"v", TypeId::kInt64}});
  ASSERT_TRUE(wh.data_plane()->CreateTable(schema).ok());
  {
    std::vector<ColumnVector> one = KvRun(1, 1);
    ASSERT_TRUE(wh.data_plane()->InsertRows("t", one).ok());
  }
  auto s1 = wh.Backup();
  ASSERT_TRUE(s1.ok());
  {
    std::vector<ColumnVector> two = KvRun(2, 1);
    ASSERT_TRUE(wh.data_plane()->InsertRows("t", two).ok());
  }
  auto s2 = wh.Backup();
  ASSERT_TRUE(s2.ok());

  ASSERT_TRUE(wh.RestoreInPlace(s2->snapshot_id).ok());
  EXPECT_EQ(Count(&wh, "t"), 2);
  // The regression bite: the entry just cached must NOT be keyed
  // version 0 — the restore's bump has to cover catalog-only tables.
  for (const auto& entry : wh.result_cache()->Entries()) {
    for (const auto& [table, version] : entry.versions) {
      EXPECT_GE(version, 1u)
          << "restored table '" << table << "' cached at version 0";
    }
  }
  ASSERT_TRUE(wh.RestoreInPlace(s1->snapshot_id).ok());
  EXPECT_EQ(Count(&wh, "t"), 1) << "second swap must invalidate the entry";
}

// ---------------------------------------------------------------------------
// Concurrency: the races the MVCC promotion fixed
// ---------------------------------------------------------------------------

// A write that commits between a SELECT's admission and its snapshot
// pin must not poison the result cache: the entry is keyed by the
// versions pinned WITH the chains (one coherent triple), so a repeat
// lookup can never serve rows older than its key claims.
TEST(MvccConcurrencyTest, ResultCacheKeyedByPinnedSnapshot) {
  WarehouseOptions options = MvccOptions();
  options.wlm.concurrency_slots = 2;
  Warehouse wh(options);
  MustRun(&wh, "CREATE TABLE t (k BIGINT, v BIGINT)");
  MustRun(&wh, "INSERT INTO t VALUES (0, 0)");

  constexpr int kWrites = 40;
  std::thread writer([&] {
    for (int i = 1; i <= kWrites; ++i) {
      auto r = wh.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                          ", " + std::to_string(10 * i) + ")");
      ASSERT_TRUE(r.ok()) << r.status();
    }
  });
  std::thread reader([&] {
    int64_t last = 0;
    for (int i = 0; i < kWrites; ++i) {
      auto r = wh.Execute("SELECT COUNT(*) AS n FROM t");
      ASSERT_TRUE(r.ok()) << r.status();
      ASSERT_EQ(r->rows.num_rows(), 1u);
      const int64_t n = r->rows.columns[0].IntAt(0);
      EXPECT_GE(n, last) << "counts move forward";
      EXPECT_LE(n, 1 + kWrites);
      last = n;
    }
  });
  writer.join();
  reader.join();

  // Whatever interleaving happened, a lookup NOW must agree with the
  // data NOW — the stale-cache bug served a mid-race count here.
  auto truth = wh.data_plane()->TotalRows("t");
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(*truth, 1u + kWrites);
  EXPECT_EQ(Count(&wh, "t"), static_cast<int64_t>(*truth));
  EXPECT_EQ(Count(&wh, "t"), static_cast<int64_t>(*truth));
}

// Readers racing a multi-file COPY observe either the pre-COPY count
// or the post-COPY count — never a file boundary in between: the whole
// statement installs as one version bump.
TEST(MvccConcurrencyTest, CopyIsAtomicUnderConcurrentSelects) {
  WarehouseOptions options = MvccOptions();
  options.wlm.concurrency_slots = 3;
  Warehouse wh(options);
  MustRun(&wh, "CREATE TABLE t (k BIGINT, v BIGINT) SORTKEY(k)");
  MustRun(&wh, "INSERT INTO t VALUES (-1, -1), (-2, -2)");

  constexpr int kFiles = 4;
  constexpr int kRowsPerFile = 96;
  backup::S3Region* region = wh.s3()->region("us-east-1");
  for (int f = 0; f < kFiles; ++f) {
    std::string csv;
    for (int i = 0; i < kRowsPerFile; ++i) {
      const int k = f * kRowsPerFile + i;
      csv += std::to_string(k) + "," + std::to_string(10 * k) + "\n";
    }
    ASSERT_TRUE(region
                    ->PutObject("bkt/t/part-" + std::to_string(f),
                                Bytes(csv.begin(), csv.end()))
                    .ok());
  }

  constexpr int64_t kPre = 2;
  constexpr int64_t kPost = kPre + kFiles * kRowsPerFile;
  std::atomic<bool> copy_done{false};
  std::thread copier([&] {
    auto r = wh.Execute("COPY t FROM 's3://bkt/t/'");
    ASSERT_TRUE(r.ok()) << r.status();
    copy_done.store(true);
  });
  std::set<int64_t> seen;
  while (!copy_done.load()) {
    auto r = wh.Execute("SELECT COUNT(*) AS n FROM t");
    ASSERT_TRUE(r.ok()) << r.status();
    const int64_t n = r->rows.columns[0].IntAt(0);
    EXPECT_TRUE(n == kPre || n == kPost)
        << "partial COPY visible: count " << n;
    seen.insert(n);
  }
  copier.join();
  EXPECT_EQ(Count(&wh, "t"), kPost);
}

}  // namespace
}  // namespace sdw::warehouse
