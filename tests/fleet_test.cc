#include <gtest/gtest.h>

#include "fleet/fleet.h"

namespace sdw::fleet {
namespace {

TEST(AnalysisGapTest, GapWidensOverTime) {
  GrowthConfig config;
  auto series = AnalysisGapSeries(config);
  ASSERT_EQ(series.size(), 31u);
  EXPECT_EQ(series.front().year, 1990);
  EXPECT_DOUBLE_EQ(series.front().enterprise_data, 1.0);
  // The gap (dark data fraction) grows monotonically.
  double prev_ratio = 1.0;
  for (const auto& point : series) {
    double ratio = point.warehouse_data / point.enterprise_data;
    EXPECT_LE(ratio, prev_ratio + 1e-12);
    prev_ratio = ratio;
  }
  // By 2020, the warehouse covers a tiny sliver of enterprise data.
  EXPECT_LT(prev_ratio, 0.01);
}

TEST(ReleaseTrainTest, FeaturesAccumulateRoughlyLinearly) {
  ReleaseTrain::Config config;
  ReleaseTrain train(config);
  Rng rng(1);
  auto summary = train.Run(&rng);
  ASSERT_EQ(summary.series.size(), 104u);
  const double total = summary.series.back().cumulative_deployed;
  // ~1 feature/week over two years (the paper's Figure 4 slope).
  EXPECT_GT(total, 70);
  EXPECT_LT(total, 130);
  // Roughly linear: the halfway point has roughly half the features.
  const double mid = summary.series[51].cumulative_deployed;
  EXPECT_NEAR(mid, total / 2, total * 0.25);
  // Monotone non-decreasing.
  double prev = 0;
  for (const auto& w : summary.series) {
    EXPECT_GE(w.cumulative_deployed, prev);
    prev = w.cumulative_deployed;
  }
}

TEST(ReleaseTrainTest, SlowerCadenceFailsMoreOften) {
  // §5: reducing the pace to every four weeks "meaningfully increased
  // the probability of a failed patch". Average over seeds.
  auto failure_rate = [](int interval_weeks) {
    double total = 0;
    for (uint64_t seed = 1; seed <= 30; ++seed) {
      ReleaseTrain::Config config;
      config.deploy_interval_weeks = interval_weeks;
      Rng rng(seed);
      total += ReleaseTrain(config).Run(&rng).failed_deploy_fraction;
    }
    return total / 30;
  };
  const double biweekly = failure_rate(2);
  const double monthly = failure_rate(4);
  EXPECT_GT(monthly, biweekly * 1.3);
}

TEST(FleetSimulatorTest, TicketsPerClusterDecline) {
  FleetSimulator::Config config;
  FleetSimulator fleet(config);
  Rng rng(3);
  auto series = fleet.Run(&rng);
  ASSERT_EQ(series.size(), 104u);
  // Fleet grows throughout.
  EXPECT_GT(series.back().clusters, series.front().clusters * 10);
  // Tickets/cluster declines strongly (compare first and last quarters).
  double early = 0, late = 0;
  for (int w = 0; w < 26; ++w) early += series[w].tickets_per_cluster;
  for (int w = 78; w < 104; ++w) late += series[w].tickets_per_cluster;
  EXPECT_LT(late, early / 3);
}

TEST(FleetSimulatorTest, AbsoluteTicketsTrackBusinessSuccess) {
  // §5: "operational load roughly correlates to business success" —
  // total weekly tickets must not collapse even as per-cluster rates do.
  FleetSimulator::Config config;
  FleetSimulator fleet(config);
  Rng rng(7);
  auto series = fleet.Run(&rng);
  double early = 0, late = 0;
  for (int w = 0; w < 13; ++w) early += series[w].tickets;
  for (int w = 91; w < 104; ++w) late += series[w].tickets;
  // Late total tickets are within an order of magnitude of early ones
  // (fleet growth offsets defect extinguishing).
  EXPECT_GT(late, early / 10);
}

TEST(FleetSimulatorTest, NoExtinguishingMeansNoImprovement) {
  // Ablation: without Pareto-driven extinguishing, tickets/cluster
  // stays roughly flat (or grows with new deploy defects).
  FleetSimulator::Config with;
  FleetSimulator::Config without = with;
  without.extinguished_per_week = 0;
  Rng rng1(11), rng2(11);
  auto improved = FleetSimulator(with).Run(&rng1);
  auto stagnant = FleetSimulator(without).Run(&rng2);
  double improved_late = 0, stagnant_late = 0;
  for (int w = 78; w < 104; ++w) {
    improved_late += improved[w].tickets_per_cluster;
    stagnant_late += stagnant[w].tickets_per_cluster;
  }
  EXPECT_LT(improved_late, stagnant_late / 2);
}

TEST(FleetSimulatorTest, DeterministicForSeed) {
  FleetSimulator::Config config;
  Rng a(5), b(5);
  auto s1 = FleetSimulator(config).Run(&a);
  auto s2 = FleetSimulator(config).Run(&b);
  ASSERT_EQ(s1.size(), s2.size());
  for (size_t i = 0; i < s1.size(); ++i) {
    EXPECT_DOUBLE_EQ(s1[i].tickets, s2[i].tickets);
  }
}

}  // namespace
}  // namespace sdw::fleet
