#include <gtest/gtest.h>

#include "common/random.h"
#include "warehouse/warehouse.h"

namespace sdw::warehouse {
namespace {

WarehouseOptions SmallOptions() {
  WarehouseOptions options;
  options.cluster.num_nodes = 2;
  options.cluster.slices_per_node = 2;
  options.cluster.storage.max_rows_per_block = 256;
  return options;
}

class WarehouseTest : public ::testing::Test {
 protected:
  void SetUp() override { wh_ = std::make_unique<Warehouse>(SmallOptions()); }

  StatementResult MustRun(const std::string& sql) {
    auto r = wh_->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? std::move(*r) : StatementResult{};
  }

  std::unique_ptr<Warehouse> wh_;
};

TEST_F(WarehouseTest, EndToEndSqlSession) {
  MustRun(
      "CREATE TABLE sales (day BIGINT, store BIGINT, amount DOUBLE "
      "PRECISION) DISTKEY(store) SORTKEY(day)");
  MustRun(
      "CREATE TABLE stores (id BIGINT, city VARCHAR) DISTSTYLE ALL");
  MustRun("INSERT INTO stores VALUES (1, 'seattle'), (2, 'portland')");
  // Load sales through INSERT.
  std::string insert = "INSERT INTO sales VALUES ";
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    if (i) insert += ", ";
    insert += "(" + std::to_string(i % 30) + ", " +
              std::to_string(1 + (i % 2)) + ", " +
              std::to_string(1.0 + rng.NextDouble()) + ")";
  }
  MustRun(insert);
  MustRun("ANALYZE sales");

  auto result = MustRun(
      "SELECT city, COUNT(*) AS n, AVG(amount) AS avg_amount "
      "FROM sales JOIN stores ON sales.store = stores.id "
      "WHERE day >= 10 GROUP BY city ORDER BY city");
  ASSERT_EQ(result.rows.num_rows(), 2u);
  EXPECT_EQ(result.column_names,
            (std::vector<std::string>{"city", "n", "avg_amount"}));
  EXPECT_EQ(result.rows.columns[0].StringAt(0), "portland");
  EXPECT_EQ(result.rows.columns[0].StringAt(1), "seattle");
  // 300 rows, day >= 10 keeps 2/3, split evenly by store.
  EXPECT_EQ(result.rows.columns[1].IntAt(0) + result.rows.columns[1].IntAt(1),
            200);
  EXPECT_GT(result.rows.columns[2].DoubleAt(0), 1.0);
}

TEST_F(WarehouseTest, ExplainShowsStrategy) {
  MustRun("CREATE TABLE f (k BIGINT, v BIGINT) DISTKEY(k)");
  MustRun("CREATE TABLE d (id BIGINT, name VARCHAR) DISTKEY(id)");
  auto result = MustRun(
      "EXPLAIN SELECT name, COUNT(*) FROM f JOIN d ON f.k = d.id GROUP BY "
      "name");
  EXPECT_NE(result.message.find("CO-LOCATED"), std::string::npos);
  EXPECT_NE(result.message.find("Final HashAggregate"), std::string::npos);
}

TEST_F(WarehouseTest, CopyFromObjectStore) {
  MustRun("CREATE TABLE logs (ts BIGINT, path VARCHAR) SORTKEY(ts)");
  std::string csv;
  for (int i = 0; i < 1000; ++i) {
    csv += std::to_string(i) + ",/page" + std::to_string(i % 7) + "\n";
  }
  ASSERT_TRUE(wh_->s3()
                  ->region("us-east-1")
                  ->PutObject("bkt/logs/part-0", Bytes(csv.begin(), csv.end()))
                  .ok());
  auto result = MustRun("COPY logs FROM 's3://bkt/logs/' FORMAT CSV");
  EXPECT_EQ(result.copy_stats.rows_loaded, 1000u);
  auto count = MustRun("SELECT COUNT(*) AS n FROM logs");
  EXPECT_EQ(count.rows.columns[0].IntAt(0), 1000);
}

TEST_F(WarehouseTest, BackupRestoreRoundTrip) {
  MustRun("CREATE TABLE t (a BIGINT, b VARCHAR)");
  MustRun("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')");
  auto backup = wh_->Backup(/*user_initiated=*/true);
  ASSERT_TRUE(backup.ok()) << backup.status();
  // Mutate after the snapshot.
  MustRun("INSERT INTO t VALUES (4, 'w')");
  EXPECT_EQ(MustRun("SELECT COUNT(*) AS n FROM t").rows.columns[0].IntAt(0),
            4);
  // Restore rolls back to snapshot state.
  backup::BackupManager::RestoreStats stats;
  ASSERT_TRUE(wh_->RestoreInPlace(backup->snapshot_id, &stats).ok());
  EXPECT_EQ(MustRun("SELECT COUNT(*) AS n FROM t").rows.columns[0].IntAt(0),
            3);
}

TEST_F(WarehouseTest, ResizeKeepsServing) {
  MustRun("CREATE TABLE t (a BIGINT)");
  MustRun("INSERT INTO t VALUES (1), (2), (3), (4), (5)");
  auto stats = wh_->Resize(4);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(wh_->data_plane()->num_nodes(), 4);
  EXPECT_EQ(MustRun("SELECT SUM(a) AS s FROM t").rows.columns[0].IntAt(0),
            15);
  // Writes continue on the new cluster.
  MustRun("INSERT INTO t VALUES (6)");
  EXPECT_EQ(MustRun("SELECT COUNT(*) AS n FROM t").rows.columns[0].IntAt(0),
            6);
}

TEST_F(WarehouseTest, BetweenInAndLikePrefix) {
  MustRun("CREATE TABLE logs (day BIGINT, path VARCHAR, code BIGINT) "
          "SORTKEY(day)");
  std::string sql = "INSERT INTO logs VALUES ";
  for (int i = 0; i < 300; ++i) {
    if (i) sql += ", ";
    sql += "(" + std::to_string(i % 30) + ", '/" +
           (i % 3 == 0 ? std::string("api/v") + std::to_string(i % 5)
                       : std::string("static/img")) +
           "', " + std::to_string(200 + 100 * (i % 4)) + ")";
  }
  MustRun(sql);

  auto between = MustRun(
      "SELECT COUNT(*) AS n FROM logs WHERE day BETWEEN 10 AND 19");
  EXPECT_EQ(between.rows.columns[0].IntAt(0), 100);

  auto in_list = MustRun(
      "SELECT COUNT(*) AS n FROM logs WHERE code IN (200, 400)");
  EXPECT_EQ(in_list.rows.columns[0].IntAt(0), 150);

  auto like = MustRun(
      "SELECT COUNT(*) AS n FROM logs WHERE path LIKE '/api/%'");
  EXPECT_EQ(like.rows.columns[0].IntAt(0), 100);

  // Combined conjuncts.
  auto combo = MustRun(
      "SELECT COUNT(*) AS n FROM logs WHERE day BETWEEN 0 AND 29 AND "
      "path LIKE '/api/%' AND code IN (200, 300, 400, 500)");
  EXPECT_EQ(combo.rows.columns[0].IntAt(0), 100);

  // Unsupported LIKE patterns fail with guidance, not wrong answers.
  auto bad = wh_->Execute("SELECT COUNT(*) FROM logs WHERE path LIKE '%x'");
  EXPECT_EQ(bad.status().code(), StatusCode::kNotSupported);
  auto mid = wh_->Execute("SELECT COUNT(*) FROM logs WHERE path LIKE 'a%b'");
  EXPECT_FALSE(mid.ok());
}

TEST_F(WarehouseTest, BetweenPrunesBlocks) {
  MustRun("CREATE TABLE series (ts BIGINT, v BIGINT) SORTKEY(ts)");
  std::string sql = "INSERT INTO series VALUES (0, 0)";
  for (int i = 1; i < 4000; ++i) {
    sql += ", (" + std::to_string(i) + ", " + std::to_string(i % 7) + ")";
  }
  MustRun(sql);
  auto narrow =
      MustRun("SELECT COUNT(*) AS n FROM series WHERE ts BETWEEN 100 AND 140");
  EXPECT_EQ(narrow.rows.columns[0].IntAt(0), 41);
  auto full = MustRun("SELECT COUNT(*) AS n FROM series");
  EXPECT_LT(narrow.exec_stats.blocks_decoded * 3,
            full.exec_stats.blocks_decoded)
      << "BETWEEN must feed the zone maps";
}

TEST_F(WarehouseTest, VacuumAcceptedAndErrorsPropagate) {
  MustRun("CREATE TABLE t (a BIGINT)");
  auto vacuum = wh_->Execute("VACUUM t");
  ASSERT_TRUE(vacuum.ok());
  EXPECT_FALSE(wh_->Execute("SELECT a FROM missing").ok());
  EXPECT_FALSE(wh_->Execute("CREATE TABLE t (a BIGINT)").ok());  // dup
  EXPECT_FALSE(wh_->Execute("INSERT INTO t VALUES (1, 2)").ok());  // arity
  EXPECT_FALSE(wh_->Execute("garbage statement").ok());
}

TEST_F(WarehouseTest, TransactionRollbackUndoesWrites) {
  MustRun("CREATE TABLE t (a BIGINT) SORTKEY(a)");
  MustRun("INSERT INTO t VALUES (1), (2), (3)");
  MustRun("BEGIN");
  MustRun("INSERT INTO t VALUES (4), (5)");
  MustRun("CREATE TABLE scratch (x BIGINT)");
  MustRun("INSERT INTO scratch VALUES (9)");
  EXPECT_EQ(MustRun("SELECT COUNT(*) AS n FROM t").rows.columns[0].IntAt(0),
            5);
  MustRun("ROLLBACK");
  // Pre-transaction state restored; the scratch table is gone.
  EXPECT_EQ(MustRun("SELECT COUNT(*) AS n FROM t").rows.columns[0].IntAt(0),
            3);
  EXPECT_FALSE(wh_->Execute("SELECT x FROM scratch").ok());
  EXPECT_EQ(MustRun("SELECT SUM(a) AS s FROM t").rows.columns[0].IntAt(0),
            6);
  // Writes after rollback land normally.
  MustRun("INSERT INTO t VALUES (10)");
  EXPECT_EQ(MustRun("SELECT COUNT(*) AS n FROM t").rows.columns[0].IntAt(0),
            4);
}

TEST_F(WarehouseTest, TransactionCommitKeepsWrites) {
  MustRun("CREATE TABLE t (a BIGINT)");
  MustRun("BEGIN");
  MustRun("INSERT INTO t VALUES (1), (2)");
  MustRun("COMMIT");
  EXPECT_EQ(MustRun("SELECT COUNT(*) AS n FROM t").rows.columns[0].IntAt(0),
            2);
}

TEST_F(WarehouseTest, TransactionGuards) {
  MustRun("CREATE TABLE t (a BIGINT)");
  // COMMIT/ROLLBACK without BEGIN.
  EXPECT_EQ(wh_->Execute("COMMIT").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(wh_->Execute("ROLLBACK").status().code(),
            StatusCode::kFailedPrecondition);
  MustRun("BEGIN");
  // Nested BEGIN rejected.
  EXPECT_EQ(wh_->Execute("BEGIN").status().code(),
            StatusCode::kFailedPrecondition);
  // Block-reclaiming ops rejected inside a transaction.
  EXPECT_EQ(wh_->Execute("DROP TABLE t").status().code(),
            StatusCode::kNotSupported);
  EXPECT_EQ(wh_->Execute("VACUUM t").status().code(),
            StatusCode::kNotSupported);
  EXPECT_EQ(wh_->Resize(4).status().code(), StatusCode::kFailedPrecondition);
  MustRun("COMMIT");
  // And allowed again afterwards.
  MustRun("DROP TABLE t");
}

TEST_F(WarehouseTest, RollbackUndoesCopyAndEncodings) {
  MustRun("CREATE TABLE logs (ts BIGINT, msg VARCHAR) SORTKEY(ts)");
  MustRun("BEGIN");
  std::string csv;
  for (int i = 0; i < 500; ++i) {
    csv += std::to_string(i) + ",message-" + std::to_string(i % 5) + "\n";
  }
  ASSERT_TRUE(wh_->s3()
                  ->region("us-east-1")
                  ->PutObject("bkt/roll/part-0", Bytes(csv.begin(), csv.end()))
                  .ok());
  MustRun("COPY logs FROM 's3://bkt/roll/'");
  EXPECT_EQ(MustRun("SELECT COUNT(*) AS n FROM logs").rows.columns[0].IntAt(0),
            500);
  // COPY's analyzer assigned encodings; rollback restores AUTO.
  EXPECT_NE(wh_->data_plane()->catalog()->GetTable("logs")->column(0).encoding,
            ColumnEncoding::kAuto);
  MustRun("ROLLBACK");
  EXPECT_EQ(MustRun("SELECT COUNT(*) AS n FROM logs").rows.columns[0].IntAt(0),
            0);
  EXPECT_EQ(wh_->data_plane()->catalog()->GetTable("logs")->column(0).encoding,
            ColumnEncoding::kAuto);
  // The same COPY works again after rollback.
  MustRun("COPY logs FROM 's3://bkt/roll/'");
  EXPECT_EQ(MustRun("SELECT COUNT(*) AS n FROM logs").rows.columns[0].IntAt(0),
            500);
}

TEST_F(WarehouseTest, ResultTableRendering) {
  MustRun("CREATE TABLE t (a BIGINT, b VARCHAR)");
  MustRun("INSERT INTO t VALUES (1, 'hello'), (2, NULL)");
  auto result = MustRun("SELECT a, b FROM t ORDER BY a");
  std::string table = result.ToTable();
  EXPECT_NE(table.find("hello"), std::string::npos);
  EXPECT_NE(table.find("NULL"), std::string::npos);
  EXPECT_NE(table.find("(2 rows)"), std::string::npos);
}

}  // namespace
}  // namespace sdw::warehouse
