// Multi-session stress for the live serving path: N client threads
// hammer one Warehouse with mixed SELECT / COPY / VACUUM scripts
// through the WLM front door. Each session owns its own table, so every
// per-query answer is deterministic regardless of interleaving — the
// whole concurrent run must be byte-identical to a serial replay on a
// fresh warehouse. Runs under the TSan/ASan CI legs.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "warehouse/warehouse.h"

namespace sdw::warehouse {
namespace {

constexpr int kSessions = 6;
constexpr int kSlots = 3;

WarehouseOptions ServingOptions() {
  WarehouseOptions options;
  options.cluster.num_nodes = 2;
  options.cluster.slices_per_node = 2;
  options.cluster.storage.max_rows_per_block = 64;
  options.wlm.concurrency_slots = kSlots;
  return options;
}

std::string Table(int session) { return "t" + std::to_string(session); }

std::string SessionCsv(int session) {
  std::string csv;
  for (int i = 0; i < 120; ++i) {
    csv += std::to_string(i % 7) + "," +
           std::to_string(1000 * session + i) + "\n";
  }
  return csv;
}

/// Creates one table + staged CSV per session (single-threaded setup).
void Provision(Warehouse* wh) {
  for (int s = 0; s < kSessions; ++s) {
    auto created = wh->Execute("CREATE TABLE " + Table(s) +
                               " (k BIGINT, v BIGINT) DISTKEY(k) SORTKEY(k)");
    ASSERT_TRUE(created.ok()) << created.status();
    const std::string csv = SessionCsv(s);
    ASSERT_TRUE(wh->s3()
                    ->region("us-east-1")
                    ->PutObject("bkt/s" + std::to_string(s) + "/part-0",
                                Bytes(csv.begin(), csv.end()))
                    .ok());
  }
}

/// The per-session script: every statement touches only the session's
/// own table, so its answers do not depend on what other sessions are
/// doing. Returns the ToTable rendering of every SELECT (and the COPY
/// confirmation), in order; empty on any error.
std::vector<std::string> RunScript(Warehouse::Session session, int s,
                                   std::atomic<int>* errors) {
  std::vector<std::string> outputs;
  auto run = [&](const std::string& sql) -> bool {
    auto r = session.Execute(sql);
    if (!r.ok()) {
      errors->fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    outputs.push_back(r->rows.num_columns() > 0 ? r->ToTable(100000)
                                                : r->message);
    return true;
  };
  const std::string select = "SELECT k, COUNT(*) AS n, SUM(v) AS sv FROM " +
                             Table(s) + " GROUP BY k ORDER BY k";
  std::string insert = "INSERT INTO " + Table(s) + " VALUES ";
  for (int i = 0; i < 40; ++i) {
    if (i) insert += ", ";
    insert += "(" + std::to_string(i % 5) + ", " +
              std::to_string(100 * s + i) + ")";
  }
  if (!run(insert)) return outputs;
  if (!run(select)) return outputs;
  if (!run(select)) return outputs;  // repeat: result-cache territory
  if (!run("COPY " + Table(s) + " FROM 's3://bkt/s" + std::to_string(s) +
           "/'")) {
    return outputs;
  }
  if (!run(select)) return outputs;  // must see the COPY's rows
  if (!run("VACUUM " + Table(s))) return outputs;
  if (!run(select)) return outputs;  // must survive the rewrite
  return outputs;
}

TEST(ConcurrentServing, HammeredWarehouseMatchesSerialReplay) {
  Warehouse wh(ServingOptions());
  Provision(&wh);

  std::atomic<int> errors{0};
  std::vector<std::vector<std::string>> concurrent(kSessions);
  {
    std::vector<std::thread> clients;
    clients.reserve(kSessions);
    for (int s = 0; s < kSessions; ++s) {
      Warehouse::Session session = wh.CreateSession();
      clients.emplace_back([&, s, session] {
        concurrent[s] = RunScript(session, s, &errors);
      });
    }
    for (auto& t : clients) t.join();
  }
  ASSERT_EQ(errors.load(), 0);

  // The front door really did bound concurrency.
  EXPECT_LE(wh.wlm()->max_in_flight(), kSlots);
  EXPECT_GE(wh.wlm()->admitted(), static_cast<uint64_t>(kSessions * 5));
  EXPECT_EQ(wh.wlm()->running(), 0);
  EXPECT_EQ(wh.wlm()->queued(), 0u);
  EXPECT_EQ(wh.wlm()->timeouts(), 0u);

  // Serial replay on a fresh warehouse: identical scripts, one session
  // at a time. Every captured answer must match byte-for-byte.
  Warehouse replay(ServingOptions());
  Provision(&replay);
  for (int s = 0; s < kSessions; ++s) {
    std::atomic<int> replay_errors{0};
    std::vector<std::string> serial =
        RunScript(replay.CreateSession(), s, &replay_errors);
    ASSERT_EQ(replay_errors.load(), 0) << "session " << s;
    ASSERT_EQ(concurrent[s].size(), serial.size()) << "session " << s;
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(concurrent[s][i], serial[i])
          << "session " << s << " statement " << i;
    }
  }

  // Every session shows up in stl_wlm under its own id, and the
  // history is queryable mid-flight through plain SQL.
  auto history = wh.Execute("SELECT session_id, COUNT(*) AS n FROM stl_wlm "
                            "GROUP BY session_id ORDER BY session_id");
  ASSERT_TRUE(history.ok()) << history.status();
  EXPECT_GE(history->rows.num_rows(), static_cast<size_t>(kSessions));
}

TEST(ConcurrentServing, QueueTimeoutCancelsStarvedStatement) {
  WarehouseOptions options = ServingOptions();
  options.wlm.concurrency_slots = 1;
  options.wlm.queue_timeout_seconds = 0.02;
  Warehouse wh(options);
  auto created = wh.Execute("CREATE TABLE t (k BIGINT, v BIGINT)");
  ASSERT_TRUE(created.ok()) << created.status();

  // Occupy the only slot directly, then watch a real statement starve.
  auto held = wh.wlm()->Admit();
  ASSERT_TRUE(held.ok()) << held.status();
  auto starved = wh.Execute("SELECT COUNT(*) AS n FROM t");
  ASSERT_FALSE(starved.ok());
  EXPECT_TRUE(starved.status().IsDeadlineExceeded()) << starved.status();
  EXPECT_EQ(wh.wlm()->timeouts(), 1u);

  // The cancellation is in the history (state 'timeout'), and system
  // tables stay reachable while the queue is saturated — admission is
  // bypassed for monitoring.
  auto rows = wh.Execute("SELECT seq, state FROM stl_wlm ORDER BY seq");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_GE(rows->rows.num_rows(), 1u);
  bool saw_timeout = false;
  for (size_t r = 0; r < rows->rows.num_rows(); ++r) {
    if (rows->rows.columns[1].StringAt(r) == "timeout") saw_timeout = true;
  }
  EXPECT_TRUE(saw_timeout);

  // Releasing the slot unblocks the next statement.
  *held = cluster::AdmissionController::Slot();
  auto after = wh.Execute("SELECT COUNT(*) AS n FROM t");
  EXPECT_TRUE(after.ok()) << after.status();
}

TEST(ConcurrentServing, SessionsGetDistinctIds) {
  Warehouse wh(ServingOptions());
  Warehouse::Session a = wh.CreateSession();
  Warehouse::Session b = wh.CreateSession();
  EXPECT_NE(a.id(), b.id());
  EXPECT_NE(a.id(), 0) << "0 is the default (Execute) session";
}

}  // namespace
}  // namespace sdw::warehouse
