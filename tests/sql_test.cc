#include <gtest/gtest.h>

#include "common/random.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace sdw::sql {
namespace {

TEST(LexerTest, TokenizesBasics) {
  auto tokens = Lex("SELECT a, t.b FROM t WHERE x >= 10 AND y = 'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_TRUE((*tokens)[1].Is(TokenType::kIdent, "a"));
  EXPECT_TRUE((*tokens)[2].IsSymbol(","));
  EXPECT_TRUE((*tokens)[4].IsSymbol("."));
  // Case folding both ways.
  auto upper = Lex("select FOO");
  ASSERT_TRUE(upper.ok());
  EXPECT_TRUE((*upper)[0].IsKeyword("SELECT"));
  EXPECT_TRUE((*upper)[1].Is(TokenType::kIdent, "foo"));
}

TEST(LexerTest, NumbersAndOperators) {
  auto tokens = Lex("x <> -42 y <= 3.25 z != 1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[1].IsSymbol("<>"));
  EXPECT_TRUE((*tokens)[2].Is(TokenType::kInteger, "-42"));
  EXPECT_TRUE((*tokens)[4].IsSymbol("<="));
  EXPECT_TRUE((*tokens)[5].Is(TokenType::kFloat, "3.25"));
  EXPECT_TRUE((*tokens)[7].IsSymbol("<>"));  // != normalizes
}

TEST(LexerTest, StringEscapesAndComments) {
  auto tokens = Lex("-- a comment\n'a''b' -- trailing\n");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].Is(TokenType::kString, "a'b"));
  EXPECT_FALSE(Lex("'unterminated").ok());
  EXPECT_FALSE(Lex("SELECT @").ok());
}

TEST(ParserTest, CreateTableFull) {
  auto stmt = ParseStatement(
      "CREATE TABLE clicks (user_id BIGINT, url VARCHAR(256) ENCODE lzo, "
      "ts BIGINT, score DOUBLE PRECISION, day DATE, ok BOOLEAN) "
      "DISTKEY(user_id) INTERLEAVED SORTKEY(ts, user_id)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& create = std::get<CreateTableStmt>(*stmt);
  const TableSchema& s = create.schema;
  EXPECT_EQ(s.name(), "clicks");
  ASSERT_EQ(s.num_columns(), 6u);
  EXPECT_EQ(s.column(0).type, TypeId::kInt64);
  EXPECT_EQ(s.column(1).type, TypeId::kString);
  EXPECT_EQ(s.column(1).encoding, ColumnEncoding::kLz);
  EXPECT_EQ(s.column(3).type, TypeId::kDouble);
  EXPECT_EQ(s.column(4).type, TypeId::kDate);
  EXPECT_EQ(s.column(5).type, TypeId::kBool);
  EXPECT_EQ(s.dist_style(), DistStyle::kKey);
  EXPECT_EQ(s.dist_key(), 0);
  EXPECT_EQ(s.sort_style(), SortStyle::kInterleaved);
  EXPECT_EQ(s.sort_keys(), (std::vector<int>{2, 0}));
}

TEST(ParserTest, CreateTableDistStyles) {
  auto all = ParseStatement("CREATE TABLE d (id BIGINT) DISTSTYLE ALL");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(std::get<CreateTableStmt>(*all).schema.dist_style(),
            DistStyle::kAll);
  auto even = ParseStatement("CREATE TABLE e (id BIGINT) DISTSTYLE EVEN;");
  ASSERT_TRUE(even.ok());
  EXPECT_EQ(std::get<CreateTableStmt>(*even).schema.dist_style(),
            DistStyle::kEven);
}

TEST(ParserTest, DropAnalyzeVacuum) {
  auto drop = ParseStatement("DROP TABLE clicks");
  ASSERT_TRUE(drop.ok());
  EXPECT_EQ(std::get<DropTableStmt>(*drop).table, "clicks");
  auto analyze = ParseStatement("ANALYZE clicks;");
  ASSERT_TRUE(analyze.ok());
  EXPECT_EQ(std::get<AnalyzeStmt>(*analyze).table, "clicks");
  auto vacuum = ParseStatement("VACUUM clicks");
  ASSERT_TRUE(vacuum.ok());
  EXPECT_EQ(std::get<VacuumStmt>(*vacuum).table, "clicks");
}

TEST(ParserTest, CopyVariants) {
  auto stmt = ParseStatement(
      "COPY clicks FROM 's3://mybucket/logs/2014/' FORMAT JSON COMPUPDATE "
      "OFF");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& copy = std::get<CopyStmt>(*stmt);
  EXPECT_EQ(copy.table, "clicks");
  EXPECT_EQ(copy.source_uri, "s3://mybucket/logs/2014/");
  EXPECT_EQ(copy.format, CopyStmt::Format::kJson);
  EXPECT_FALSE(copy.compupdate);
  auto defaults = ParseStatement("COPY t FROM 's3://b/p'");
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(std::get<CopyStmt>(*defaults).format, CopyStmt::Format::kCsv);
  EXPECT_TRUE(std::get<CopyStmt>(*defaults).compupdate);
}

TEST(ParserTest, InsertValues) {
  auto stmt = ParseStatement(
      "INSERT INTO t VALUES (1, 'a', 2.5, NULL, TRUE), (2, 'b', 0.5, 9, "
      "FALSE)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& insert = std::get<InsertStmt>(*stmt);
  ASSERT_EQ(insert.rows.size(), 2u);
  EXPECT_EQ(insert.rows[0][0], Datum::Int64(1));
  EXPECT_EQ(insert.rows[0][1], Datum::String("a"));
  EXPECT_TRUE(insert.rows[0][3].is_null());
  EXPECT_EQ(insert.rows[1][4], Datum::Bool(false));
}

TEST(ParserTest, SelectFull) {
  auto stmt = ParseStatement(
      "SELECT d.name, COUNT(*) AS n, SUM(f.value) AS total, AVG(f.value) "
      "FROM f JOIN d ON f.key = d.id "
      "WHERE f.day >= 10 AND f.day < 20 AND d.name <> 'x' "
      "GROUP BY d.name ORDER BY n DESC, 1 ASC LIMIT 5");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& q = std::get<SelectStmt>(*stmt).query;
  EXPECT_EQ(q.from_table, "f");
  EXPECT_EQ(*q.join_table, "d");
  EXPECT_EQ(q.join_left.ToString(), "f.key");
  EXPECT_EQ(q.join_right.ToString(), "d.id");
  ASSERT_EQ(q.select.size(), 4u);
  EXPECT_EQ(q.select[1].agg, plan::LogicalAggFn::kCountStar);
  EXPECT_EQ(q.select[1].alias, "n");
  EXPECT_EQ(q.select[2].agg, plan::LogicalAggFn::kSum);
  EXPECT_EQ(q.select[3].agg, plan::LogicalAggFn::kAvg);
  ASSERT_EQ(q.where.size(), 3u);
  EXPECT_EQ(q.where[0].op, plan::LogicalCmp::kGe);
  EXPECT_EQ(q.where[2].literal, Datum::String("x"));
  ASSERT_EQ(q.group_by.size(), 1u);
  ASSERT_EQ(q.order_by.size(), 2u);
  EXPECT_EQ(q.order_by[0].select_index, 1);
  EXPECT_TRUE(q.order_by[0].descending);
  EXPECT_EQ(q.order_by[1].select_index, 0);
  EXPECT_FALSE(q.order_by[1].descending);
  EXPECT_EQ(*q.limit, 5u);
}

TEST(ParserTest, ApproximateCountDistinct) {
  auto stmt = ParseStatement(
      "SELECT day, APPROXIMATE COUNT(DISTINCT user_id) AS users FROM t "
      "GROUP BY day");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& q = std::get<SelectStmt>(*stmt).query;
  EXPECT_EQ(q.select[1].agg, plan::LogicalAggFn::kApproxCountDistinct);
  EXPECT_EQ(q.select[1].column.column, "user_id");
  EXPECT_EQ(q.select[1].alias, "users");
  // Exact COUNT(DISTINCT) is rejected with guidance.
  auto exact = ParseStatement("SELECT COUNT(DISTINCT a) FROM t");
  ASSERT_FALSE(exact.ok());
  EXPECT_EQ(exact.status().code(), StatusCode::kNotSupported);
  // Malformed APPROXIMATE forms fail cleanly.
  EXPECT_FALSE(ParseStatement("SELECT APPROXIMATE SUM(a) FROM t").ok());
  EXPECT_FALSE(
      ParseStatement("SELECT APPROXIMATE COUNT(a) FROM t").ok());
}

TEST(ParserTest, ExplainFlag) {
  auto stmt = ParseStatement("EXPLAIN SELECT a FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(std::get<SelectStmt>(*stmt).explain);
}

TEST(ParserTest, OrderByColumnName) {
  auto stmt = ParseStatement("SELECT a, b FROM t ORDER BY b");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(std::get<SelectStmt>(*stmt).query.order_by[0].select_index, 1);
  EXPECT_FALSE(
      ParseStatement("SELECT a FROM t ORDER BY missing").ok());
}

TEST(ParserTest, RejectsMalformedStatements) {
  EXPECT_FALSE(ParseStatement("").ok());
  EXPECT_FALSE(ParseStatement("SELEC a FROM t").ok());
  EXPECT_FALSE(ParseStatement("SELECT FROM t").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseStatement("CREATE TABLE t").ok());
  EXPECT_FALSE(ParseStatement("CREATE TABLE t (a NOTATYPE)").ok());
  EXPECT_FALSE(ParseStatement("COPY t FROM missing_quotes").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO t VALUES 1, 2").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t; extra").ok());
}

TEST(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  // Property: arbitrary token sequences must produce a Status, never a
  // crash or hang. Seeds are fixed for reproducibility.
  const std::vector<std::string> vocab = {
      "SELECT", "FROM",  "WHERE",  "GROUP",  "BY",      "ORDER", "LIMIT",
      "JOIN",   "ON",    "AND",    "AS",     "CREATE",  "TABLE", "COPY",
      "INSERT", "INTO",  "VALUES", "COUNT",  "SUM",     "AVG",   "DISTKEY",
      "SORTKEY", "(",    ")",      ",",      ".",       ";",     "*",
      "=",      "<>",    "<",      "<=",     ">",       ">=",    "'str'",
      "42",     "3.14",  "-7",     "ident",  "t",       "a",     "b",
      "NULL",   "TRUE",  "APPROXIMATE", "DISTINCT", "ENCODE", "BIGINT",
      "VARCHAR"};
  Rng rng(2025);
  int parsed_ok = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string sql;
    const size_t len = 1 + rng.Uniform(25);
    for (size_t i = 0; i < len; ++i) {
      sql += vocab[rng.Uniform(vocab.size())];
      sql += ' ';
    }
    auto result = ParseStatement(sql);  // must not crash
    if (result.ok()) ++parsed_ok;
  }
  // Sanity: the soup occasionally forms a valid statement, but mostly
  // does not (if everything parses, error handling is broken).
  EXPECT_LT(parsed_ok, 300);
}

TEST(ParserFuzzTest, MutatedRealStatementsNeverCrash) {
  const std::string base =
      "SELECT d.name, COUNT(*) AS n FROM f JOIN d ON f.k = d.id "
      "WHERE f.day >= 10 GROUP BY d.name ORDER BY n DESC LIMIT 5";
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = base;
    const int edits = 1 + static_cast<int>(rng.Uniform(4));
    for (int e = 0; e < edits; ++e) {
      const size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:
          mutated.erase(pos, 1);
          break;
        case 1:
          mutated.insert(pos, 1, static_cast<char>(' ' + rng.Uniform(94)));
          break;
        default:
          mutated[pos] = static_cast<char>(' ' + rng.Uniform(94));
          break;
      }
    }
    (void)ParseStatement(mutated);  // must not crash
  }
}

}  // namespace
}  // namespace sdw::sql
