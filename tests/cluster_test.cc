#include <gtest/gtest.h>

#include <numeric>

#include "cluster/cluster.h"
#include "cluster/executor.h"
#include "common/logging.h"
#include "common/random.h"
#include "plan/planner.h"

namespace sdw::cluster {
namespace {

ClusterConfig SmallConfig(int nodes = 2, int slices = 2) {
  ClusterConfig config;
  config.num_nodes = nodes;
  config.slices_per_node = slices;
  config.storage.max_rows_per_block = 256;
  config.storage.block_bytes = 64 * 1024;
  return config;
}

TableSchema FactSchema(DistStyle style) {
  TableSchema s("fact", {{"key", TypeId::kInt64},
                         {"day", TypeId::kInt64},
                         {"value", TypeId::kInt64}});
  if (style == DistStyle::kKey) {
    SDW_CHECK_OK(s.SetDistKey("key"));
  } else {
    s.SetDistStyle(style);
  }
  SDW_CHECK_OK(s.SetSortKey(SortStyle::kCompound, {"day"}));
  return s;
}

std::vector<ColumnVector> FactRows(size_t n, uint64_t seed) {
  Rng rng(seed);
  ColumnVector key(TypeId::kInt64);
  ColumnVector day(TypeId::kInt64);
  ColumnVector value(TypeId::kInt64);
  for (size_t i = 0; i < n; ++i) {
    key.AppendInt(rng.UniformRange(0, 199));
    day.AppendInt(rng.UniformRange(0, 29));
    value.AppendInt(rng.UniformRange(1, 100));
  }
  std::vector<ColumnVector> cols;
  cols.push_back(std::move(key));
  cols.push_back(std::move(day));
  cols.push_back(std::move(value));
  return cols;
}

TEST(ClusterTest, TopologyAndDdl) {
  Cluster cluster(SmallConfig(3, 2));
  EXPECT_EQ(cluster.num_nodes(), 3);
  EXPECT_EQ(cluster.total_slices(), 6);
  ASSERT_TRUE(cluster.CreateTable(FactSchema(DistStyle::kEven)).ok());
  EXPECT_TRUE(cluster.catalog()->HasTable("fact"));
  EXPECT_EQ(cluster.CreateTable(FactSchema(DistStyle::kEven)).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(cluster.shard(5, "fact").ok());
  EXPECT_FALSE(cluster.shard(6, "fact").ok());
  ASSERT_TRUE(cluster.DropTable("fact").ok());
  EXPECT_FALSE(cluster.shard(0, "fact").ok());
}

TEST(ClusterTest, EvenDistributionBalances) {
  Cluster cluster(SmallConfig(2, 2));
  ASSERT_TRUE(cluster.CreateTable(FactSchema(DistStyle::kEven)).ok());
  ASSERT_TRUE(cluster.InsertRows("fact", FactRows(4000, 1)).ok());
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ((*cluster.shard(s, "fact"))->row_count(), 1000u);
  }
  EXPECT_EQ(*cluster.TotalRows("fact"), 4000u);
}

TEST(ClusterTest, KeyDistributionCoLocatesEqualKeys) {
  Cluster cluster(SmallConfig(2, 2));
  ASSERT_TRUE(cluster.CreateTable(FactSchema(DistStyle::kKey)).ok());
  ASSERT_TRUE(cluster.InsertRows("fact", FactRows(4000, 1)).ok());
  EXPECT_EQ(*cluster.TotalRows("fact"), 4000u);
  // Every key must live on exactly one slice.
  std::map<int64_t, std::set<int>> key_slices;
  for (int s = 0; s < 4; ++s) {
    auto data = (*cluster.shard(s, "fact"))->ReadAll({0});
    ASSERT_TRUE(data.ok());
    for (size_t i = 0; i < (*data)[0].size(); ++i) {
      key_slices[(*data)[0].IntAt(i)].insert(s);
    }
  }
  for (const auto& [key, slices] : key_slices) {
    EXPECT_EQ(slices.size(), 1u) << "key " << key << " split across slices";
  }
  // And the distribution should be reasonably balanced.
  uint64_t min_rows = UINT64_MAX, max_rows = 0;
  for (int s = 0; s < 4; ++s) {
    uint64_t r = (*cluster.shard(s, "fact"))->row_count();
    min_rows = std::min(min_rows, r);
    max_rows = std::max(max_rows, r);
  }
  EXPECT_LT(max_rows, 3 * min_rows);
}

TEST(ClusterTest, AllDistributionReplicatesEverywhere) {
  Cluster cluster(SmallConfig(2, 2));
  ASSERT_TRUE(cluster.CreateTable(FactSchema(DistStyle::kAll)).ok());
  ASSERT_TRUE(cluster.InsertRows("fact", FactRows(500, 1)).ok());
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ((*cluster.shard(s, "fact"))->row_count(), 500u);
  }
  // TotalRows counts the logical table, not the copies.
  EXPECT_EQ(*cluster.TotalRows("fact"), 500u);
  EXPECT_GT(cluster.network_bytes(), 0u);  // replication crossed nodes
}

TEST(ClusterTest, SliceRunsAreSorted) {
  Cluster cluster(SmallConfig(2, 2));
  ASSERT_TRUE(cluster.CreateTable(FactSchema(DistStyle::kEven)).ok());
  ASSERT_TRUE(cluster.InsertRows("fact", FactRows(2000, 1)).ok());
  // Each slice's single run must be sorted by day (the sort key).
  for (int s = 0; s < 4; ++s) {
    auto data = (*cluster.shard(s, "fact"))->ReadAll({1});
    ASSERT_TRUE(data.ok());
    for (size_t i = 1; i < (*data)[0].size(); ++i) {
      EXPECT_LE((*data)[0].IntAt(i - 1), (*data)[0].IntAt(i));
    }
  }
}

TEST(ClusterTest, InsertValidation) {
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(cluster.CreateTable(FactSchema(DistStyle::kEven)).ok());
  EXPECT_FALSE(cluster.InsertRows("nope", FactRows(10, 1)).ok());
  auto missing_col = FactRows(10, 1);
  missing_col.pop_back();
  EXPECT_FALSE(cluster.InsertRows("fact", missing_col).ok());
  cluster.set_read_only(true);
  EXPECT_EQ(cluster.InsertRows("fact", FactRows(10, 1)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ClusterTest, AnalyzeComputesStats) {
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(cluster.CreateTable(FactSchema(DistStyle::kEven)).ok());
  ASSERT_TRUE(cluster.InsertRows("fact", FactRows(3000, 2)).ok());
  ASSERT_TRUE(cluster.Analyze("fact").ok());
  const TableStats& stats = cluster.catalog()->GetStats("fact");
  EXPECT_EQ(stats.row_count, 3000u);
  EXPECT_EQ(stats.columns[1].min, Datum::Int64(0));
  EXPECT_EQ(stats.columns[1].max, Datum::Int64(29));
  EXPECT_GE(stats.columns[0].distinct_estimate, 150u);
  EXPECT_LE(stats.columns[0].distinct_estimate, 200u);
}

// ---------------------------------------------------------------------------
// Distributed query execution
// ---------------------------------------------------------------------------

struct TestWarehouse {
  explicit TestWarehouse(ClusterConfig config) : cluster(config) {}

  Result<QueryResult> Run(const plan::LogicalQuery& q,
                          ExecOptions options = {}) {
    plan::Planner planner(cluster.catalog());
    SDW_ASSIGN_OR_RETURN(plan::PhysicalQuery physical, planner.Plan(q));
    QueryExecutor executor(&cluster, options);
    return executor.Execute(physical);
  }

  Cluster cluster;
};

void LoadJoinTables(TestWarehouse* w, DistStyle fact_style,
                    DistStyle dim_style, uint64_t dim_rows = 200) {
  TableSchema fact = FactSchema(fact_style);
  ASSERT_TRUE(w->cluster.CreateTable(fact).ok());
  ASSERT_TRUE(w->cluster.InsertRows("fact", FactRows(3000, 7)).ok());

  TableSchema dim("dim", {{"id", TypeId::kInt64}, {"name", TypeId::kString}});
  if (dim_style == DistStyle::kKey) {
    ASSERT_TRUE(dim.SetDistKey("id").ok());
  } else {
    dim.SetDistStyle(dim_style);
  }
  ASSERT_TRUE(w->cluster.CreateTable(dim).ok());
  ColumnVector id(TypeId::kInt64);
  ColumnVector name(TypeId::kString);
  for (uint64_t i = 0; i < dim_rows; ++i) {
    id.AppendInt(static_cast<int64_t>(i));
    name.AppendString("name-" + std::to_string(i % 10));
  }
  std::vector<ColumnVector> dim_cols;
  dim_cols.push_back(std::move(id));
  dim_cols.push_back(std::move(name));
  ASSERT_TRUE(w->cluster.InsertRows("dim", dim_cols).ok());
  ASSERT_TRUE(w->cluster.Analyze("fact").ok());
  ASSERT_TRUE(w->cluster.Analyze("dim").ok());
}

plan::LogicalQuery JoinCountQuery() {
  plan::LogicalQuery q;
  q.from_table = "fact";
  q.join_table = "dim";
  q.join_left = {"fact", "key"};
  q.join_right = {"dim", "id"};
  q.select = {{plan::LogicalAggFn::kNone, {"dim", "name"}, ""},
              {plan::LogicalAggFn::kCountStar, {}, "n"},
              {plan::LogicalAggFn::kSum, {"fact", "value"}, "total"}};
  q.group_by = {{"dim", "name"}};
  q.order_by = {{0, false}};
  return q;
}

TEST(DistributedExecTest, ScanFilterProject) {
  TestWarehouse w(SmallConfig());
  ASSERT_TRUE(w.cluster.CreateTable(FactSchema(DistStyle::kEven)).ok());
  ASSERT_TRUE(w.cluster.InsertRows("fact", FactRows(2000, 3)).ok());
  plan::LogicalQuery q;
  q.from_table = "fact";
  q.where = {{{"", "day"}, plan::LogicalCmp::kEq, Datum::Int64(5)}};
  q.select = {{plan::LogicalAggFn::kNone, {"", "key"}, ""},
              {plan::LogicalAggFn::kNone, {"", "value"}, ""}};
  auto r = w.Run(q);
  ASSERT_TRUE(r.ok()) << r.status();
  // ~2000/30 rows expected.
  EXPECT_GT(r->rows.num_rows(), 30u);
  EXPECT_LT(r->rows.num_rows(), 120u);
  EXPECT_EQ(r->column_names, (std::vector<std::string>{"key", "value"}));
  EXPECT_GT(r->stats.slice_seconds.size(), 0u);
}

TEST(DistributedExecTest, GlobalAggregateMatchesManualSum) {
  TestWarehouse w(SmallConfig());
  ASSERT_TRUE(w.cluster.CreateTable(FactSchema(DistStyle::kEven)).ok());
  auto rows = FactRows(2500, 4);
  int64_t expected_sum = 0;
  for (size_t i = 0; i < rows[2].size(); ++i) expected_sum += rows[2].IntAt(i);
  ASSERT_TRUE(w.cluster.InsertRows("fact", rows).ok());
  plan::LogicalQuery q;
  q.from_table = "fact";
  q.select = {{plan::LogicalAggFn::kCountStar, {}, "n"},
              {plan::LogicalAggFn::kSum, {"", "value"}, "s"},
              {plan::LogicalAggFn::kAvg, {"", "value"}, "a"},
              {plan::LogicalAggFn::kMin, {"", "value"}, "lo"},
              {plan::LogicalAggFn::kMax, {"", "value"}, "hi"}};
  auto r = w.Run(q);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->rows.num_rows(), 1u);
  EXPECT_EQ(r->rows.columns[0].IntAt(0), 2500);
  EXPECT_EQ(r->rows.columns[1].IntAt(0), expected_sum);
  EXPECT_NEAR(r->rows.columns[2].DoubleAt(0),
              static_cast<double>(expected_sum) / 2500.0, 1e-9);
  EXPECT_GE(r->rows.columns[3].IntAt(0), 1);
  EXPECT_LE(r->rows.columns[4].IntAt(0), 100);
}

TEST(DistributedExecTest, AllJoinStrategiesAgree) {
  // The same logical join must produce identical results under
  // co-located, broadcast and shuffle execution.
  auto run_with = [&](DistStyle fact_style, DistStyle dim_style,
                      uint64_t dim_rows,
                      plan::JoinStrategy expected) -> exec::Batch {
    TestWarehouse w(SmallConfig());
    LoadJoinTables(&w, fact_style, dim_style, dim_rows);
    plan::Planner planner(w.cluster.catalog());
    auto physical = planner.Plan(JoinCountQuery());
    EXPECT_TRUE(physical.ok()) << physical.status();
    EXPECT_EQ(physical->join->strategy, expected);
    QueryExecutor executor(&w.cluster);
    auto r = executor.Execute(*physical);
    EXPECT_TRUE(r.ok()) << r.status();
    return std::move(r->rows);
  };

  // KEY/KEY on the join columns: co-located.
  exec::Batch colocated =
      run_with(DistStyle::kKey, DistStyle::kKey, 200,
               plan::JoinStrategy::kCoLocated);
  // EVEN fact, small EVEN dim: broadcast.
  exec::Batch broadcast =
      run_with(DistStyle::kEven, DistStyle::kEven, 200,
               plan::JoinStrategy::kBroadcastBuild);
  // EVEN fact, large dim (stats above threshold after we inflate them):
  // force shuffle by setting a tiny broadcast threshold instead.
  exec::Batch shuffled;
  {
    TestWarehouse w(SmallConfig());
    LoadJoinTables(&w, DistStyle::kEven, DistStyle::kEven, 200);
    plan::PlannerOptions opts;
    opts.broadcast_row_threshold = 10;  // force shuffle
    plan::Planner planner(w.cluster.catalog(), opts);
    auto physical = planner.Plan(JoinCountQuery());
    ASSERT_TRUE(physical.ok());
    ASSERT_EQ(physical->join->strategy, plan::JoinStrategy::kShuffle);
    QueryExecutor executor(&w.cluster);
    auto r = executor.Execute(*physical);
    ASSERT_TRUE(r.ok()) << r.status();
    shuffled = std::move(r->rows);
  }

  ASSERT_EQ(colocated.num_rows(), broadcast.num_rows());
  ASSERT_EQ(colocated.num_rows(), shuffled.num_rows());
  for (size_t i = 0; i < colocated.num_rows(); ++i) {
    for (size_t c = 0; c < colocated.num_columns(); ++c) {
      EXPECT_EQ(colocated.columns[c].DatumAt(i).Compare(
                    broadcast.columns[c].DatumAt(i)),
                0);
      EXPECT_EQ(colocated.columns[c].DatumAt(i).Compare(
                    shuffled.columns[c].DatumAt(i)),
                0);
    }
  }
}

TEST(DistributedExecTest, CoLocatedJoinMovesLessData) {
  TestWarehouse co(SmallConfig());
  LoadJoinTables(&co, DistStyle::kKey, DistStyle::kKey, 200);
  TestWarehouse ev(SmallConfig());
  LoadJoinTables(&ev, DistStyle::kEven, DistStyle::kEven, 200);

  auto run = [](TestWarehouse* w) {
    auto r = w->Run(JoinCountQuery());
    EXPECT_TRUE(r.ok());
    return r->stats.network_bytes;
  };
  uint64_t colocated_bytes = run(&co);
  uint64_t broadcast_bytes = run(&ev);
  EXPECT_LT(colocated_bytes, broadcast_bytes);
}

TEST(DistributedExecTest, InterpretedMatchesCompiled) {
  TestWarehouse w(SmallConfig());
  ASSERT_TRUE(w.cluster.CreateTable(FactSchema(DistStyle::kEven)).ok());
  ASSERT_TRUE(w.cluster.InsertRows("fact", FactRows(2000, 11)).ok());
  plan::LogicalQuery q;
  q.from_table = "fact";
  q.where = {{{"", "day"}, plan::LogicalCmp::kLe, Datum::Int64(10)}};
  q.select = {{plan::LogicalAggFn::kNone, {"", "day"}, ""},
              {plan::LogicalAggFn::kCountStar, {}, "n"},
              {plan::LogicalAggFn::kSum, {"", "value"}, "s"}};
  q.group_by = {{"", "day"}};
  q.order_by = {{0, false}};

  auto compiled = w.Run(q, {ExecutionMode::kCompiled, 0.0});
  auto interpreted = w.Run(q, {ExecutionMode::kInterpreted, 0.0});
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  ASSERT_TRUE(interpreted.ok()) << interpreted.status();
  ASSERT_EQ(compiled->rows.num_rows(), interpreted->rows.num_rows());
  for (size_t i = 0; i < compiled->rows.num_rows(); ++i) {
    for (size_t c = 0; c < compiled->rows.num_columns(); ++c) {
      EXPECT_EQ(compiled->rows.columns[c].DatumAt(i).Compare(
                    interpreted->rows.columns[c].DatumAt(i)),
                0);
    }
  }
  // Joins are compiled-only.
  TestWarehouse wj(SmallConfig());
  LoadJoinTables(&wj, DistStyle::kKey, DistStyle::kKey);
  auto join_interpreted =
      wj.Run(JoinCountQuery(), {ExecutionMode::kInterpreted, 0.0});
  EXPECT_EQ(join_interpreted.status().code(), StatusCode::kNotSupported);
}

TEST(DistributedExecTest, ZonePredicatesReduceDecodes) {
  TestWarehouse w(SmallConfig(1, 1));
  ASSERT_TRUE(w.cluster.CreateTable(FactSchema(DistStyle::kEven)).ok());
  ASSERT_TRUE(w.cluster.InsertRows("fact", FactRows(20000, 13)).ok());
  plan::LogicalQuery narrow;
  narrow.from_table = "fact";
  narrow.where = {{{"", "day"}, plan::LogicalCmp::kEq, Datum::Int64(3)}};
  narrow.select = {{plan::LogicalAggFn::kCountStar, {}, "n"}};
  auto with_zones = w.Run(narrow);
  ASSERT_TRUE(with_zones.ok());

  plan::LogicalQuery full;
  full.from_table = "fact";
  full.select = {{plan::LogicalAggFn::kCountStar, {}, "n"}};
  auto no_zones = w.Run(full);
  ASSERT_TRUE(no_zones.ok());
  EXPECT_LT(with_zones->stats.blocks_decoded * 2,
            no_zones->stats.blocks_decoded);
}

TEST(ClusterTest, ResizePreservesDataAndKeepsSourceReadable) {
  TestWarehouse w(SmallConfig(2, 2));
  LoadJoinTables(&w, DistStyle::kKey, DistStyle::kKey);
  auto before = w.Run(JoinCountQuery());
  ASSERT_TRUE(before.ok());

  Cluster::ResizeStats stats;
  auto target = w.cluster.Resize(4, &stats);
  ASSERT_TRUE(target.ok()) << target.status();
  EXPECT_EQ((*target)->num_nodes(), 4);
  EXPECT_GT(stats.bytes_moved, 0u);
  EXPECT_GT(stats.modeled_seconds, 0.0);
  EXPECT_TRUE(w.cluster.read_only());

  // Source still answers reads.
  auto during = w.Run(JoinCountQuery());
  ASSERT_TRUE(during.ok()) << during.status();

  // Target answers the same query with the same result.
  plan::Planner planner((*target)->catalog());
  auto physical = planner.Plan(JoinCountQuery());
  ASSERT_TRUE(physical.ok());
  QueryExecutor executor(target->get());
  auto after = executor.Execute(*physical);
  ASSERT_TRUE(after.ok()) << after.status();
  ASSERT_EQ(before->rows.num_rows(), after->rows.num_rows());
  for (size_t i = 0; i < before->rows.num_rows(); ++i) {
    for (size_t c = 0; c < before->rows.num_columns(); ++c) {
      EXPECT_EQ(before->rows.columns[c].DatumAt(i).Compare(
                    after->rows.columns[c].DatumAt(i)),
                0);
    }
  }
  // Writes resume on the target.
  EXPECT_TRUE((*target)->InsertRows("fact", FactRows(10, 99)).ok());
}

TEST(ClusterTest, VacuumRestoresSortOrderAcrossRuns) {
  // Many small sorted runs overlap in their day ranges, so zone maps
  // prune poorly; VACUUM merges them into one sorted region.
  Cluster cluster(SmallConfig(1, 1));
  ASSERT_TRUE(cluster.CreateTable(FactSchema(DistStyle::kEven)).ok());
  for (int run = 0; run < 20; ++run) {
    ASSERT_TRUE(cluster.InsertRows("fact", FactRows(500, 100 + run)).ok());
  }
  auto* shard = *cluster.shard(0, "fact");
  storage::RangePredicate pred{1, Datum::Int64(5), Datum::Int64(5)};

  auto count_decodes = [&] {
    shard = *cluster.shard(0, "fact");
    shard->ResetCounters();
    for (const auto& range : shard->CandidateRanges({pred})) {
      SDW_CHECK(shard->ReadRange({1}, range).ok());
    }
    return shard->blocks_decoded();
  };
  const uint64_t fragmented = count_decodes();
  const uint64_t rows_before = *cluster.TotalRows("fact");

  auto rewritten = cluster.Vacuum("fact");
  ASSERT_TRUE(rewritten.ok()) << rewritten.status();
  EXPECT_GT(*rewritten, 0u);

  const uint64_t compacted = count_decodes();
  EXPECT_LT(compacted * 3, fragmented)
      << "vacuum should sharply reduce blocks decoded for a point query";
  // Data intact, fully sorted.
  EXPECT_EQ(*cluster.TotalRows("fact"), rows_before);
  auto data = (*cluster.shard(0, "fact"))->ReadAll({1});
  ASSERT_TRUE(data.ok());
  for (size_t i = 1; i < (*data)[0].size(); ++i) {
    EXPECT_LE((*data)[0].IntAt(i - 1), (*data)[0].IntAt(i));
  }
}

TEST(ClusterTest, VacuumReclaimsAndValidates) {
  Cluster cluster(SmallConfig(2, 2));
  ASSERT_TRUE(cluster.CreateTable(FactSchema(DistStyle::kKey)).ok());
  for (int run = 0; run < 5; ++run) {
    ASSERT_TRUE(cluster.InsertRows("fact", FactRows(300, run)).ok());
  }
  // Sum must be identical before and after.
  auto sum_values = [&] {
    int64_t total = 0;
    for (int s = 0; s < cluster.total_slices(); ++s) {
      auto data = (*cluster.shard(s, "fact"))->ReadAll({2});
      SDW_CHECK(data.ok());
      for (size_t i = 0; i < (*data)[0].size(); ++i) {
        total += (*data)[0].IntAt(i);
      }
    }
    return total;
  };
  const int64_t before = sum_values();
  ASSERT_TRUE(cluster.Vacuum("fact").ok());
  EXPECT_EQ(sum_values(), before);
  // Unknown table / read-only cluster rejected.
  EXPECT_FALSE(cluster.Vacuum("missing").ok());
  cluster.set_read_only(true);
  EXPECT_EQ(cluster.Vacuum("fact").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ClusterTest, ResizeDownWorks) {
  TestWarehouse w(SmallConfig(4, 2));
  ASSERT_TRUE(w.cluster.CreateTable(FactSchema(DistStyle::kEven)).ok());
  ASSERT_TRUE(w.cluster.InsertRows("fact", FactRows(1000, 5)).ok());
  Cluster::ResizeStats stats;
  auto target = w.cluster.Resize(1, &stats);
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(*(*target)->TotalRows("fact"), 1000u);
}

}  // namespace
}  // namespace sdw::cluster
