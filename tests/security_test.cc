#include <gtest/gtest.h>

#include "common/random.h"
#include "security/chacha20.h"
#include "security/keychain.h"

namespace sdw::security {
namespace {

TEST(ChaCha20Test, Rfc8439KnownAnswer) {
  // RFC 8439 §2.3.2 test vector.
  Key256 key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<uint8_t>(i);
  Nonce96 nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                   0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  auto block = ChaCha20Block(key, nonce, 1);
  // Verified against an independent RFC 8439 implementation.
  const uint8_t expected_head[16] = {0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b,
                                     0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f,
                                     0xa3, 0x20, 0x71, 0xc4};
  const uint8_t expected_tail[8] = {0xcb, 0xd0, 0x83, 0xe8,
                                    0xa2, 0x50, 0x3c, 0x4e};
  for (int i = 0; i < 16; ++i) EXPECT_EQ(block[i], expected_head[i]);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(block[56 + i], expected_tail[i]);
}

TEST(ChaCha20Test, XorRoundTrips) {
  Rng rng(1);
  Key256 key;
  for (auto& b : key) b = static_cast<uint8_t>(rng.Next());
  Nonce96 nonce{};
  for (size_t size : {0u, 1u, 63u, 64u, 65u, 1000u}) {
    Bytes data(size);
    for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
    Bytes original = data;
    ChaCha20Xor(key, nonce, 0, &data);
    if (size > 8) {
      EXPECT_NE(data, original);
    }
    ChaCha20Xor(key, nonce, 0, &data);
    EXPECT_EQ(data, original);
  }
}

TEST(ChaCha20Test, DifferentNoncesDiverge) {
  Key256 key{};
  Nonce96 n1{};
  Nonce96 n2{};
  n2[0] = 1;
  Bytes a(64, 0);
  Bytes b(64, 0);
  ChaCha20Xor(key, n1, 0, &a);
  ChaCha20Xor(key, n2, 0, &b);
  EXPECT_NE(a, b);
}

TEST(KeychainTest, EncryptDecryptRoundTrip) {
  ServiceKeyProvider provider(11);
  auto hierarchy = KeyHierarchy::Create(&provider);
  ASSERT_TRUE(hierarchy.ok());
  Bytes plaintext(500, 0xab);
  auto encrypted = hierarchy->EncryptBlock(1, plaintext);
  ASSERT_TRUE(encrypted.ok());
  EXPECT_NE(*encrypted, plaintext);
  auto decrypted = hierarchy->DecryptBlock(1, *encrypted);
  ASSERT_TRUE(decrypted.ok());
  EXPECT_EQ(*decrypted, plaintext);
}

TEST(KeychainTest, BlockKeysAreDistinct) {
  // The same plaintext encrypts differently per block, blocking
  // block-to-block injection (§3.2).
  ServiceKeyProvider provider(11);
  auto hierarchy = KeyHierarchy::Create(&provider);
  ASSERT_TRUE(hierarchy.ok());
  Bytes plaintext(100, 0x55);
  auto c1 = hierarchy->EncryptBlock(1, plaintext);
  auto c2 = hierarchy->EncryptBlock(2, plaintext);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_NE(*c1, *c2);
  // Swapping ciphertexts across blocks fails to produce the plaintext.
  auto cross = hierarchy->DecryptBlock(1, *c2);
  ASSERT_TRUE(cross.ok());
  EXPECT_NE(*cross, plaintext);
}

TEST(KeychainTest, DuplicateBlockKeyRejected) {
  ServiceKeyProvider provider(11);
  auto hierarchy = KeyHierarchy::Create(&provider);
  ASSERT_TRUE(hierarchy.ok());
  ASSERT_TRUE(hierarchy->EncryptBlock(1, Bytes(10)).ok());
  EXPECT_EQ(hierarchy->EncryptBlock(1, Bytes(10)).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(hierarchy->DecryptBlock(99, Bytes(10)).status().code(),
            StatusCode::kNotFound);
}

TEST(KeychainTest, ClusterKeyRotationPreservesData) {
  ServiceKeyProvider provider(11);
  auto hierarchy = KeyHierarchy::Create(&provider);
  ASSERT_TRUE(hierarchy.ok());
  std::vector<Bytes> ciphertexts;
  Bytes plaintext(200, 0x33);
  for (storage::BlockId id = 1; id <= 50; ++id) {
    auto c = hierarchy->EncryptBlock(id, plaintext);
    ASSERT_TRUE(c.ok());
    ciphertexts.push_back(*c);
  }
  const uint64_t before = hierarchy->rewrap_operations();
  ASSERT_TRUE(hierarchy->RotateClusterKey().ok());
  // Rotation rewraps keys only: 50 block keys + 1 cluster key.
  EXPECT_EQ(hierarchy->rewrap_operations() - before, 51u);
  // Old ciphertexts still decrypt (data untouched).
  for (storage::BlockId id = 1; id <= 50; ++id) {
    auto d = hierarchy->DecryptBlock(id, ciphertexts[id - 1]);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(*d, plaintext);
  }
}

TEST(KeychainTest, MasterKeyRotationAcrossProviders) {
  ServiceKeyProvider old_provider(11);
  HsmKeyProvider new_provider(99);
  auto hierarchy = KeyHierarchy::Create(&old_provider);
  ASSERT_TRUE(hierarchy.ok());
  Bytes plaintext(64, 0x77);
  auto c = hierarchy->EncryptBlock(5, plaintext);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(hierarchy->RotateMasterKey(&new_provider).ok());
  auto d = hierarchy->DecryptBlock(5, *c);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, plaintext);
}

TEST(KeychainTest, HsmOutageBlocksDecryption) {
  HsmKeyProvider provider(42);
  auto hierarchy = KeyHierarchy::Create(&provider);
  ASSERT_TRUE(hierarchy.ok());
  auto c = hierarchy->EncryptBlock(1, Bytes(32, 1));
  ASSERT_TRUE(c.ok());
  provider.set_available(false);
  EXPECT_EQ(hierarchy->DecryptBlock(1, *c).status().code(),
            StatusCode::kUnavailable);
  provider.set_available(true);
  EXPECT_TRUE(hierarchy->DecryptBlock(1, *c).ok());
}

TEST(KeychainTest, RepudiationIsPermanent) {
  ServiceKeyProvider provider(11);
  auto hierarchy = KeyHierarchy::Create(&provider);
  ASSERT_TRUE(hierarchy.ok());
  auto c = hierarchy->EncryptBlock(1, Bytes(32, 1));
  ASSERT_TRUE(c.ok());
  hierarchy->Repudiate();
  EXPECT_EQ(hierarchy->DecryptBlock(1, *c).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(hierarchy->EncryptBlock(2, Bytes(8)).ok());
}

}  // namespace
}  // namespace sdw::security
