#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "warehouse/system_tables.h"
#include "warehouse/warehouse.h"

namespace sdw {
namespace {

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

TEST(RegistryTest, CountersGaugesAndSnapshot) {
  obs::Registry& reg = obs::Registry::Global();
  obs::Counter* c = reg.counter("test.registry.counter");
  obs::Gauge* g = reg.gauge("test.registry.gauge");
  c->Reset();
  g->Set(0);

  c->Add();
  c->Add(4);
  g->Set(2);
  g->Add(1);
  EXPECT_EQ(c->value(), 5u);
  EXPECT_EQ(g->value(), 3);

  // Same name returns the same instrument.
  EXPECT_EQ(reg.counter("test.registry.counter"), c);
  EXPECT_EQ(reg.gauge("test.registry.gauge"), g);

  bool saw_counter = false, saw_gauge = false;
  std::string prev;
  for (const obs::MetricRow& row : reg.Snapshot()) {
    EXPECT_LE(prev, row.name);  // sorted by name
    prev = row.name;
    if (row.name == "test.registry.counter") {
      saw_counter = true;
      EXPECT_EQ(row.kind, "counter");
      EXPECT_DOUBLE_EQ(row.value, 5.0);
    }
    if (row.name == "test.registry.gauge") {
      saw_gauge = true;
      EXPECT_EQ(row.kind, "gauge");
      EXPECT_DOUBLE_EQ(row.value, 3.0);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
}

TEST(RegistryTest, ResetZeroesValuesButKeepsRegistrations) {
  obs::Registry& reg = obs::Registry::Global();
  obs::Counter* c = reg.counter("test.registry.reset");
  c->Add(7);
  EXPECT_GE(c->value(), 7u);
  reg.Reset();
  EXPECT_EQ(c->value(), 0u);
  // The cached pointer is still the registered instrument.
  EXPECT_EQ(reg.counter("test.registry.reset"), c);
  c->Add(2);
  EXPECT_EQ(c->value(), 2u);
}

TEST(RegistryTest, HistogramBucketing) {
  obs::Registry& reg = obs::Registry::Global();
  obs::Histogram* h =
      reg.histogram("test.registry.hist", {1.0, 10.0, 100.0});
  h->Reset();

  h->Observe(0.5);    // <= 1
  h->Observe(1.0);    // == 1: upper edges are inclusive
  h->Observe(5.0);    // <= 10
  h->Observe(10.0);   // == 10
  h->Observe(50.0);   // <= 100
  h->Observe(1000.0);  // overflow

  ASSERT_EQ(h->num_buckets(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(h->bucket_count(0), 2u);
  EXPECT_EQ(h->bucket_count(1), 2u);
  EXPECT_EQ(h->bucket_count(2), 1u);
  EXPECT_EQ(h->bucket_count(3), 1u);
  EXPECT_EQ(h->count(), 6u);
  EXPECT_DOUBLE_EQ(h->sum(), 1066.5);

  // Snapshot flattens to per-bucket rows plus count and sum.
  std::set<std::string> names;
  for (const obs::MetricRow& row : reg.Snapshot()) {
    if (row.name.rfind("test.registry.hist", 0) == 0) names.insert(row.name);
  }
  EXPECT_TRUE(names.count("test.registry.hist.le_1"));
  EXPECT_TRUE(names.count("test.registry.hist.le_10"));
  EXPECT_TRUE(names.count("test.registry.hist.le_100"));
  EXPECT_TRUE(names.count("test.registry.hist.le_inf"));
  EXPECT_TRUE(names.count("test.registry.hist.count"));
  EXPECT_TRUE(names.count("test.registry.hist.sum"));
}

// Run under TSan: concurrent writers on the same instruments must be
// race-free and lose no updates.
TEST(RegistryTest, ConcurrentUpdatesAreExact) {
  obs::Registry& reg = obs::Registry::Global();
  obs::Counter* c = reg.counter("test.registry.concurrent");
  obs::Histogram* h =
      reg.histogram("test.registry.concurrent_hist", {0.5});
  c->Reset();
  h->Reset();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Add();
        h->Observe(t % 2 == 0 ? 0.25 : 1.0);
        // Exercise the registration path concurrently too.
        reg.counter("test.registry.concurrent_lookup")->Add();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h->bucket_count(0), h->bucket_count(1));
}

TEST(LoggingTest, ThresholdIsThreadSafeAndSticky) {
  const LogLevel before = GetLogThreshold();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 1000; ++i) {
        SetLogThreshold(LogLevel::kError);
        (void)GetLogThreshold();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(GetLogThreshold(), LogLevel::kError);
  SetLogThreshold(before);
}

// ---------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------

TEST(TraceTest, VirtualTimesModelStagesAndParallelSiblings) {
  obs::Trace trace;
  obs::Span* root = trace.AddSpan("query", -1, 0);
  obs::Span* a = trace.AddSpan("scan", root->span_id, 0, 0);
  obs::Span* b = trace.AddSpan("scan", root->span_id, 0, 1);
  obs::Span* fin = trace.AddSpan("finalize", root->span_id, 1);
  a->counters.rows_out = 100;
  b->counters.rows_out = 10;
  fin->counters.rows_out = 5;
  trace.AssignVirtualTimes(40);

  EXPECT_EQ(root->start_tick, 40u);
  // Same-stage siblings start together; the stage ends at the slower one.
  EXPECT_EQ(a->start_tick, b->start_tick);
  EXPECT_GT(a->end_tick, b->end_tick);
  // The next stage starts after the previous one ends.
  EXPECT_GE(fin->start_tick, a->end_tick);
  EXPECT_GE(root->end_tick, fin->end_tick);
  EXPECT_EQ(trace.end_tick(), root->end_tick);
}

// ---------------------------------------------------------------------
// Warehouse-level observability
// ---------------------------------------------------------------------

warehouse::WarehouseOptions ObsOptions(int pool_size) {
  warehouse::WarehouseOptions options;
  options.cluster.num_nodes = 2;
  options.cluster.slices_per_node = 2;
  options.cluster.exec_pool_threads = pool_size;
  options.cluster.storage.max_rows_per_block = 64;
  options.exec.pool_size = pool_size;
  // Force the shuffle strategy for non-co-located joins.
  options.planner.broadcast_row_threshold = 0;
  return options;
}

void RunWorkload(warehouse::Warehouse* wh) {
  auto run = [&](const std::string& sql) {
    auto r = wh->Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status();
  };
  run("CREATE TABLE f (k BIGINT, v DOUBLE PRECISION)");
  run("CREATE TABLE d (id BIGINT, name VARCHAR)");
  std::string insert_f = "INSERT INTO f VALUES ";
  Rng rng(17);
  for (int i = 0; i < 400; ++i) {
    if (i) insert_f += ", ";
    insert_f += "(" + std::to_string(i % 20) + ", " +
                std::to_string(rng.NextDouble()) + ")";
  }
  run(insert_f);
  std::string insert_d = "INSERT INTO d VALUES ";
  for (int i = 0; i < 20; ++i) {
    if (i) insert_d += ", ";
    insert_d += "(" + std::to_string(i) + ", 'name" + std::to_string(i) + "')";
  }
  run(insert_d);
  run("ANALYZE f");
  run("ANALYZE d");
  // A deliberately bad query shape: very selective (20 of 400 rows)
  // but k=i%20 is unsorted, so zone maps skip nothing — this fires
  // the selective-filter-no-skip alert deterministically.
  run("SELECT COUNT(*) AS n FROM f WHERE k = 5");
  run("SELECT name, COUNT(*) AS n, SUM(v) AS s FROM f JOIN d "
      "ON f.k = d.id GROUP BY name ORDER BY name");
  run("SELECT k, COUNT(*) AS n FROM f WHERE k < 10 GROUP BY k ORDER BY k");
}

TEST(SystemTablesTest, ShuffleJoinSpanTreeShape) {
  warehouse::Warehouse wh(ObsOptions(0));
  RunWorkload(&wh);

  // The join query is the second-to-last record.
  auto records = wh.query_log()->Snapshot();
  ASSERT_GE(records.size(), 2u);
  const obs::QueryRecord& join_q = records[records.size() - 2];
  ASSERT_NE(join_q.sql_text.find("JOIN"), std::string::npos);
  ASSERT_NE(join_q.trace, nullptr);

  const obs::Span* root = join_q.trace->root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name, "query");
  EXPECT_EQ(root->parent_id, -1);

  // Expected children of the root: both shuffle pre-passes, the slice
  // pipelines, and the leader finalize.
  std::set<std::string> root_children;
  for (const obs::Span& s : join_q.trace->spans()) {
    if (s.parent_id == root->span_id) root_children.insert(s.name);
  }
  EXPECT_TRUE(root_children.count("shuffle probe"));
  EXPECT_TRUE(root_children.count("shuffle build"));
  EXPECT_TRUE(root_children.count("pipeline"));
  EXPECT_TRUE(root_children.count("finalize"));

  // Each parallel phase has one child span per slice.
  int shuffle_scans = 0, slice_pipelines = 0;
  for (const obs::Span& s : join_q.trace->spans()) {
    if (s.name == "shuffle scan") ++shuffle_scans;
    if (s.name == "slice pipeline") ++slice_pipelines;
    if (s.slice >= 0) {
      EXPECT_LT(s.slice, 4);
    }
    // Virtual times were assigned and nest within the root.
    EXPECT_GE(s.start_tick, root->start_tick);
    EXPECT_LE(s.end_tick, root->end_tick);
  }
  EXPECT_EQ(shuffle_scans, 8);  // probe + build, 4 slices each
  EXPECT_EQ(slice_pipelines, 4);

  // The trace's span counters are what ExecStats reports (the
  // double-counting fix): summing pipeline rows gives the pre-limit
  // row flow, and blocks decoded match the per-span attribution.
  obs::SpanCounters total;
  for (const obs::Span& s : join_q.trace->spans()) total += s.counters;
  EXPECT_EQ(join_q.counters.blocks_decoded, total.blocks_decoded);
  EXPECT_GT(total.rows_out, 0u);
}

std::string TableDump(warehouse::Warehouse* wh, const std::string& sql) {
  auto r = wh->Execute(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
  if (!r.ok()) return "";
  return r->ToTable(1000000);
}

TEST(SystemTablesTest, SerialAndPooledRunsLogIdenticalTables) {
  // Every per-warehouse system table renders identically: virtual
  // ticks come from deterministic work counters, never wall clock.
  // stl_query projects out queue_seconds/exec_seconds (measured real
  // time, the one documented nondeterminism in the table), and the
  // gauge sample's cache hit rates come off process-global counters,
  // so each arm runs from a clean registry.
  const std::vector<std::string> sqls = {
      "SELECT query_id, sql_text, status, start_tick, end_tick, "
      "result_rows, blocks_decoded, network_bytes, masked_reads, "
      "s3_fault_reads, snapshot FROM stl_query ORDER BY query_id",
      "SELECT * FROM stl_span ORDER BY query_id, span_id",
      "SELECT tbl, node, slice, col, blk, rows, encoding "
      "FROM stv_blocklist ORDER BY tbl, node, slice, col, blk",
      "SELECT * FROM stl_scan ORDER BY scan_id",
      "SELECT * FROM stl_alert_event_log ORDER BY alert_id",
      "SELECT * FROM stv_gauge_history ORDER BY seq",
      "SELECT * FROM stv_inflight ORDER BY inflight_id",
  };
  std::map<std::string, std::string> dumps[2];
  for (int arm = 0; arm < 2; ++arm) {
    obs::Registry::Global().Reset();
    warehouse::WarehouseOptions options = ObsOptions(arm == 0 ? 0 : 4);
    options.cluster.replicate = true;  // the sweep gauges need replication
    warehouse::Warehouse wh(options);
    RunWorkload(&wh);
    auto sweep = wh.RunHealthSweep();
    ASSERT_TRUE(sweep.ok()) << sweep.status();
    for (const std::string& sql : sqls) dumps[arm][sql] = TableDump(&wh, sql);
  }
  for (const std::string& sql : sqls) {
    EXPECT_EQ(dumps[0][sql], dumps[1][sql]) << sql;
  }
  // The histories being compared are non-trivial: the workload's bad
  // query fired at least one alert and logged its scans.
  EXPECT_NE(dumps[0]["SELECT * FROM stl_scan ORDER BY scan_id"], "");
  EXPECT_NE(dumps[0]["SELECT * FROM stl_alert_event_log ORDER BY alert_id"]
                .find("selective-filter-no-skip"),
            std::string::npos);
}

TEST(SystemTablesTest, MetricsAccumulateIdenticallySerialVsPooled) {
  // stv_metrics is process-global, so compare the counters each run
  // accumulates from a clean registry: the same workload must bump
  // every metric by the same amount with the pool off or on (e.g.
  // sdw_pool_tasks counts before the inline/fan-out branch).
  obs::Registry::Global().Reset();
  std::string serial_dump;
  {
    warehouse::Warehouse serial(ObsOptions(0));
    RunWorkload(&serial);
    serial_dump =
        TableDump(&serial, "SELECT * FROM stv_metrics ORDER BY name");
  }
  obs::Registry::Global().Reset();
  std::string pooled_dump;
  {
    warehouse::Warehouse pooled(ObsOptions(4));
    RunWorkload(&pooled);
    pooled_dump =
        TableDump(&pooled, "SELECT * FROM stv_metrics ORDER BY name");
  }
  EXPECT_EQ(serial_dump, pooled_dump);
  EXPECT_NE(serial_dump.find("sdw_storage_blocks_decoded"),
            std::string::npos);
}

TEST(SystemTablesTest, StlQuerySplitsQueueAndExecSeconds) {
  warehouse::Warehouse wh(ObsOptions(0));
  RunWorkload(&wh);
  auto r = wh.Execute(
      "SELECT * FROM stl_query ORDER BY exec_seconds DESC LIMIT 10");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_GT(r->rows.num_rows(), 0u);
  ASSERT_LE(r->rows.num_rows(), 10u);
  EXPECT_EQ(r->column_names[0], "query_id");
  const auto& cols = r->rows.columns;
  auto schema_idx = [&](const std::string& name) {
    for (size_t i = 0; i < r->column_names.size(); ++i) {
      if (r->column_names[i] == name) return static_cast<int>(i);
    }
    return -1;
  };
  const int queue = schema_idx("queue_seconds");
  const int exec = schema_idx("exec_seconds");
  ASSERT_GE(queue, 0);
  ASSERT_GE(exec, 0);
  for (size_t i = 0; i < r->rows.num_rows(); ++i) {
    // Uncontended: no queue wait; every finished query spent real time
    // executing.
    EXPECT_GE(cols[queue].DoubleAt(i), 0.0);
    EXPECT_GT(cols[exec].DoubleAt(i), 0.0);
    if (i > 0) {
      EXPECT_GE(cols[exec].DoubleAt(i - 1), cols[exec].DoubleAt(i));
    }
  }
  // System-table queries are not themselves logged.
  auto again = wh.Execute("SELECT COUNT(*) AS n FROM stl_query");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(static_cast<size_t>(again->rows.columns[0].IntAt(0)),
            wh.query_log()->Snapshot().size());
}

TEST(SystemTablesTest, ScanTelemetryFeedsStlScanAndBlockHeat) {
  warehouse::Warehouse wh(ObsOptions(0));
  RunWorkload(&wh);

  // The bad query decoded all 400 rows of f, kept 20, and skipped no
  // blocks — all from immutable version metadata.
  auto r = wh.Execute(
      "SELECT scan_id, tbl, predicates, rows_scanned, rows_out, blocks_read, "
      "blocks_skipped FROM stl_scan WHERE tbl = 'f' ORDER BY scan_id");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_GT(r->rows.num_rows(), 0u);
  bool saw_selective = false;
  for (size_t i = 0; i < r->rows.num_rows(); ++i) {
    const std::string preds = r->rows.columns[2].StringAt(i);
    if (preds.find("k >= 5") == std::string::npos) continue;
    saw_selective = true;
    EXPECT_NE(preds.find("k <= 5"), std::string::npos) << preds;
    EXPECT_EQ(r->rows.columns[3].IntAt(i), 400);  // rows_scanned
    EXPECT_EQ(r->rows.columns[4].IntAt(i), 20);   // rows_out
    EXPECT_GE(r->rows.columns[5].IntAt(i), 4);    // blocks_read
    EXPECT_EQ(r->rows.columns[6].IntAt(i), 0);    // blocks_skipped
  }
  EXPECT_TRUE(saw_selective);

  // The per-table heat fold agrees with summing the log.
  auto heat = wh.scan_log()->Heat();
  ASSERT_TRUE(heat.count("f"));
  EXPECT_GT(heat["f"].scans, 0u);
  auto sums = wh.Execute(
      "SELECT SUM(rows_scanned) AS rs, SUM(blocks_read) AS br "
      "FROM stl_scan WHERE tbl = 'f'");
  ASSERT_TRUE(sums.ok()) << sums.status();
  EXPECT_EQ(static_cast<uint64_t>(sums->rows.columns[0].IntAt(0)),
            heat["f"].rows_scanned);
  EXPECT_EQ(static_cast<uint64_t>(sums->rows.columns[1].IntAt(0)),
            heat["f"].blocks_read);
}

TEST(SystemTablesTest, SelectiveFilterAlertFiresDeterministically) {
  warehouse::Warehouse wh(ObsOptions(0));
  RunWorkload(&wh);

  auto r = wh.Execute(
      "SELECT query_id, rule, tbl, evidence, action "
      "FROM stl_alert_event_log WHERE rule = 'selective-filter-no-skip'");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_GT(r->rows.num_rows(), 0u);
  EXPECT_GT(r->rows.columns[0].IntAt(0), 0);  // fired by a real query
  EXPECT_EQ(r->rows.columns[2].StringAt(0), "f");
  EXPECT_GE(r->rows.columns[3].DoubleAt(0), 4.0);  // blocks read
  EXPECT_NE(r->rows.columns[4].StringAt(0).find("sort key"),
            std::string::npos);

  // EXPLAIN ANALYZE of the same shape surfaces the alert inline.
  auto ea = wh.Execute("EXPLAIN ANALYZE SELECT COUNT(*) AS n FROM f "
                       "WHERE k = 5");
  ASSERT_TRUE(ea.ok()) << ea.status();
  EXPECT_NE(ea->message.find("blocks_read="), std::string::npos)
      << ea->message;
  EXPECT_NE(ea->message.find("blocks_skipped="), std::string::npos)
      << ea->message;
  EXPECT_NE(ea->message.find("Alert: selective-filter-no-skip"),
            std::string::npos)
      << ea->message;
}

TEST(SystemTablesTest, InflightIsVisibleFromASecondSessionMidCopy) {
  warehouse::Warehouse wh(ObsOptions(4));
  warehouse::Warehouse::Session writer_session = wh.CreateSession();
  warehouse::Warehouse::Session reader_session = wh.CreateSession();
  auto created =
      writer_session.Execute("CREATE TABLE logs (ts BIGINT, path VARCHAR)");
  ASSERT_TRUE(created.ok()) << created.status();
  std::string csv;
  for (int i = 0; i < 20000; ++i) {
    csv += std::to_string(i) + ",/page" + std::to_string(i % 7) + "\n";
  }
  ASSERT_TRUE(wh.s3()
                  ->region("us-east-1")
                  ->PutObject("bkt/live/part-0", Bytes(csv.begin(), csv.end()))
                  .ok());

  // The writer keeps COPYing until the reader has caught one mid-
  // flight (bounded, so a miss fails the test instead of hanging).
  std::atomic<bool> caught{false};
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    for (int i = 0; i < 200 && !caught.load(); ++i) {
      auto copied = writer_session.Execute("COPY logs FROM 's3://bkt/live/'");
      EXPECT_TRUE(copied.ok()) << copied.status();
    }
    writer_done.store(true);
  });
  while (!writer_done.load()) {
    // System-table reads bypass admission, so the probe never queues
    // behind the COPY it is observing.
    auto live = reader_session.Execute(
        "SELECT session_id, statement, phase, rows_scanned "
        "FROM stv_inflight");
    ASSERT_TRUE(live.ok()) << live.status();
    for (size_t i = 0; i < live->rows.num_rows(); ++i) {
      if (live->rows.columns[1].StringAt(i).find("COPY") ==
          std::string::npos) {
        continue;
      }
      EXPECT_EQ(live->rows.columns[0].IntAt(i), writer_session.id());
      caught.store(true);
    }
  }
  writer.join();
  EXPECT_TRUE(caught.load());
  // Once everything drained, stv_inflight is empty again.
  auto after = reader_session.Execute("SELECT COUNT(*) AS n FROM stv_inflight");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows.columns[0].IntAt(0), 0);
}

TEST(SystemTablesTest, AggregatesAndFiltersOverSystemTables) {
  warehouse::Warehouse wh(ObsOptions(0));
  RunWorkload(&wh);

  auto blocks = wh.Execute(
      "SELECT tbl, COUNT(*) AS n FROM stv_blocklist GROUP BY tbl ORDER BY "
      "tbl");
  ASSERT_TRUE(blocks.ok()) << blocks.status();
  ASSERT_EQ(blocks->rows.num_rows(), 2u);
  EXPECT_EQ(blocks->rows.columns[0].StringAt(0), "d");
  EXPECT_EQ(blocks->rows.columns[0].StringAt(1), "f");
  EXPECT_GT(blocks->rows.columns[1].IntAt(1), 0);

  auto metrics = wh.Execute(
      "SELECT name, value FROM stv_metrics WHERE kind = 'counter' "
      "ORDER BY name");
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  bool saw_query_count = false;
  for (size_t i = 0; i < metrics->rows.num_rows(); ++i) {
    if (metrics->rows.columns[0].StringAt(i) == "sdw_query_count") {
      saw_query_count = true;
      EXPECT_GT(metrics->rows.columns[1].DoubleAt(i), 0.0);
    }
  }
  EXPECT_TRUE(saw_query_count);

  auto spans = wh.Execute(
      "SELECT name, COUNT(*) AS n, SUM(rows_out) AS rows FROM stl_span "
      "GROUP BY name ORDER BY name");
  ASSERT_TRUE(spans.ok()) << spans.status();
  EXPECT_GT(spans->rows.num_rows(), 0u);

  // EXPLAIN on a system table is rejected; joins with system tables too.
  EXPECT_FALSE(wh.Execute("EXPLAIN SELECT * FROM stl_query").ok());
}

TEST(SystemTablesTest, HealthEventsAreQueryable) {
  warehouse::WarehouseOptions options = ObsOptions(0);
  options.cluster.replicate = true;
  warehouse::Warehouse wh(options);
  auto run = [&](const std::string& sql) {
    auto r = wh.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status();
  };
  run("CREATE TABLE t (a BIGINT, b BIGINT)");
  std::string insert = "INSERT INTO t VALUES ";
  for (int i = 0; i < 500; ++i) {
    if (i) insert += ", ";
    insert += "(" + std::to_string(i) + ", " + std::to_string(i * 2) + ")";
  }
  run(insert);

  wh.data_plane()->FailNode(1);
  auto sweep = wh.RunHealthSweep();
  ASSERT_TRUE(sweep.ok()) << sweep.status();

  auto events = wh.Execute(
      "SELECT source, kind, COUNT(*) AS n FROM stl_health_events "
      "GROUP BY source, kind ORDER BY source, kind");
  ASSERT_TRUE(events.ok()) << events.status();
  ASSERT_GT(events->rows.num_rows(), 0u);
  bool saw_replace = false;
  for (size_t i = 0; i < events->rows.num_rows(); ++i) {
    if (events->rows.columns[1].StringAt(i) == "replace") saw_replace = true;
  }
  EXPECT_TRUE(saw_replace);

  // The sweep gauged the pre-sweep state: the failed node left blocks
  // at a single copy, so the sample shows degradation and the
  // threshold rule filed a sweep alert (query_id -1).
  auto gauges = wh.Execute(
      "SELECT seq, degraded_blocks FROM stv_gauge_history ORDER BY seq");
  ASSERT_TRUE(gauges.ok()) << gauges.status();
  ASSERT_GT(gauges->rows.num_rows(), 0u);
  EXPECT_GT(gauges->rows.columns[1].IntAt(0), 0);
  auto alerts = wh.Execute(
      "SELECT query_id, evidence FROM stl_alert_event_log "
      "WHERE rule = 'replication-degraded'");
  ASSERT_TRUE(alerts.ok()) << alerts.status();
  ASSERT_GT(alerts->rows.num_rows(), 0u);
  EXPECT_EQ(alerts->rows.columns[0].IntAt(0), -1);
  EXPECT_GT(alerts->rows.columns[1].DoubleAt(0), 0.0);
}

TEST(SystemTablesTest, ExplainAnalyzeAnnotatesThePlan) {
  warehouse::Warehouse wh(ObsOptions(0));
  RunWorkload(&wh);
  auto r = wh.Execute(
      "EXPLAIN ANALYZE SELECT name, COUNT(*) AS n FROM f JOIN d "
      "ON f.k = d.id GROUP BY name ORDER BY name");
  ASSERT_TRUE(r.ok()) << r.status();
  const std::string& msg = r->message;
  EXPECT_NE(msg.find("XN Scan f"), std::string::npos) << msg;
  EXPECT_NE(msg.find("blocks_decoded="), std::string::npos) << msg;
  EXPECT_NE(msg.find("blocks_read="), std::string::npos) << msg;
  EXPECT_NE(msg.find("blocks_skipped="), std::string::npos) << msg;
  EXPECT_NE(msg.find("SHUFFLE Hash Join"), std::string::npos) << msg;
  EXPECT_NE(msg.find("probe rows="), std::string::npos) << msg;
  EXPECT_NE(msg.find("Slice pipelines"), std::string::npos) << msg;
  EXPECT_NE(msg.find("elapsed_ticks="), std::string::npos) << msg;
  // EXPLAIN ANALYZE runs the query, so it is logged like any other.
  const auto records = wh.query_log()->Snapshot();
  EXPECT_NE(records.back().sql_text.find("EXPLAIN ANALYZE"),
            std::string::npos);
}

}  // namespace
}  // namespace sdw
