// Durable commits: the S3-backed commit log, crash-point injection and
// replay recovery. The core proof is differential: crash the warehouse
// at every instrumented site of every statement of a mixed script,
// restart it as a fresh Warehouse over the surviving object store,
// Recover(), and require byte-identical state against a twin that
// never crashed — acknowledged commits are never lost, unacknowledged
// ones are atomically absent. Also covers the commit-log wire format,
// torn-tail truncation, snapshot+tail recovery chains, transaction
// durability, the BackupManager crash-safety satellites (snapshot-id
// derivation, recovery-base delete/age guards) and the self-triggering
// GC sweep. Runs under the TSan/ASan/UBSan CI legs.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "backup/backup_manager.h"
#include "backup/s3sim.h"
#include "common/logging.h"
#include "durability/commit_log.h"
#include "warehouse/warehouse.h"

namespace sdw::warehouse {
namespace {

WarehouseOptions SmallOptions(backup::S3* shared) {
  WarehouseOptions options;
  options.cluster.num_nodes = 2;
  options.cluster.slices_per_node = 2;
  options.cluster.storage.max_rows_per_block = 32;
  options.shared_s3 = shared;
  return options;
}

std::unique_ptr<Warehouse> MakeWarehouse(backup::S3* shared) {
  return std::make_unique<Warehouse>(SmallOptions(shared));
}

/// COPY sources live in the same (surviving) object store, so replay
/// can re-fetch them. The twin gets an identical seed in its own store.
void SeedSources(backup::S3* s3) {
  std::string csv;
  for (int i = 100; i < 140; ++i) {
    csv += std::to_string(i) + "," + std::to_string(i * 10) + "\n";
  }
  SDW_CHECK_OK(s3->region("us-east-1")
                   ->PutObject("src/t/part-0", Bytes(csv.begin(), csv.end())));
}

/// A mixed mutation script: DDL, INSERT, COPY, VACUUM, ANALYZE, DROP —
/// every logged statement kind, on EVEN-placed tables so round-robin
/// cursor determinism is exercised too.
std::vector<std::string> Script() {
  return {
      "CREATE TABLE t (k BIGINT, v BIGINT)",
      "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)",
      "COPY t FROM 's3://src/t/' FORMAT CSV",
      "INSERT INTO t VALUES (4, 40), (5, 50)",
      "VACUUM t",
      "CREATE TABLE u (a BIGINT, b VARCHAR)",
      "INSERT INTO u VALUES (7, 'x'), (8, 'y')",
      "DROP TABLE u",
      "ANALYZE t",
      "INSERT INTO t VALUES (6, 60)",
  };
}

void MustRun(Warehouse* wh, const std::string& sql) {
  auto r = wh->Execute(sql);
  ASSERT_TRUE(r.ok()) << sql << " -> " << r.status();
}

/// Full observable state, rendered to a comparable string: catalog,
/// per-slice physical row placement (catches round-robin divergence
/// that no ORDER BY query would), and query results per table.
std::string Dump(Warehouse* wh) {
  std::string out;
  std::vector<std::string> tables = wh->data_plane()->catalog()->TableNames();
  std::sort(tables.begin(), tables.end());
  const int slices =
      wh->data_plane()->num_nodes() * 2;  // slices_per_node in SmallOptions
  for (const std::string& name : tables) {
    out += "== " + name + " ==\n";
    for (int s = 0; s < slices; ++s) {
      auto shard = wh->data_plane()->shard_ref(s, name);
      if (!shard.ok()) continue;
      out += "slice " + std::to_string(s) + ": " +
             std::to_string((*shard)->Snapshot()->row_count) + "\n";
    }
  }
  for (const std::string& name : tables) {
    const std::string sql =
        name == "t"
            ? "SELECT k, COUNT(*) AS n, SUM(v) AS s FROM t GROUP BY k "
              "ORDER BY k"
            : "SELECT a, COUNT(*) AS n FROM " + name + " GROUP BY a ORDER BY a";
    auto r = wh->Execute(sql);
    out += r.ok() ? r->ToTable(1000) : r.status().ToString();
  }
  return out;
}

bool SiteDurable(const std::string& site) {
  // The log append is the durability point: sites at or before it lose
  // the statement, sites after it keep it.
  return site == durability::kCrashPostLogPreInstall ||
         site == durability::kCrashMidInstall ||
         site == durability::kCrashPreAck;
}

// ---------------------------------------------------------------------------
// The tentpole proof: crash at every site of every statement
// ---------------------------------------------------------------------------

TEST(DurabilityCrashSweep, EverySiteEveryStatementRecoversExactly) {
  const std::vector<std::string> script = Script();
  for (const char* site : durability::kAllCrashSites) {
    for (size_t k = 0; k < script.size(); ++k) {
      SCOPED_TRACE(std::string(site) + " at statement " + std::to_string(k));
      backup::S3 shared;
      SeedSources(&shared);
      std::unique_ptr<Warehouse> victim = MakeWarehouse(&shared);
      for (size_t i = 0; i < k; ++i) MustRun(victim.get(), script[i]);

      victim->crash_points()->ArmCrash(site);
      Result<StatementResult> last = victim->Execute(script[k]);
      if (!victim->crashed()) {
        // The site is not on this statement's path (e.g. mid-install
        // on a DDL that installs nothing) — the arm must be harmless.
        EXPECT_TRUE(last.ok()) << last.status();
        continue;
      }
      // The crash surfaced as an aborted statement and the process is
      // down: nothing gets in or out until recovery.
      EXPECT_EQ(last.status().code(), StatusCode::kAborted) << last.status();
      EXPECT_EQ(victim->Execute("SELECT COUNT(*) AS n FROM t").status().code(),
                StatusCode::kAborted);

      // Restart: a fresh process over the surviving object store.
      std::unique_ptr<Warehouse> reborn = MakeWarehouse(&shared);
      auto recovered = reborn->Recover();
      ASSERT_TRUE(recovered.ok()) << recovered.status();

      // The twin never crashed and executed exactly the acknowledged
      // history (statement k only when its log append completed).
      backup::S3 twin_s3;
      SeedSources(&twin_s3);
      std::unique_ptr<Warehouse> twin = MakeWarehouse(&twin_s3);
      const size_t twin_statements = k + (SiteDurable(site) ? 1 : 0);
      for (size_t i = 0; i < twin_statements; ++i) {
        MustRun(twin.get(), script[i]);
      }
      EXPECT_EQ(Dump(reborn.get()), Dump(twin.get()));

      // A torn append leaves a half-written record recovery truncates.
      if (std::string(site) == durability::kCrashTornAppend) {
        EXPECT_NE(recovered->torn_lsn, 0u);
      }
      // The recovered warehouse is live again.
      MustRun(reborn.get(), "CREATE TABLE liveness (x BIGINT)");
      MustRun(reborn.get(), "INSERT INTO liveness VALUES (99)");
    }
  }
}

// ---------------------------------------------------------------------------
// Commit-log wire format
// ---------------------------------------------------------------------------

TEST(CommitLogWire, RoundTripChecksumAndTornRejection) {
  durability::LogRecord record;
  record.lsn = 7;
  record.kind = durability::LogRecord::Kind::kTransaction;
  record.session_id = 3;
  record.statements = {"INSERT INTO t VALUES (1, 2)", "ANALYZE t"};
  Bytes wire;
  durability::SerializeLogRecord(record, &wire);

  auto back = durability::DeserializeLogRecord(wire);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->lsn, 7u);
  EXPECT_EQ(back->kind, durability::LogRecord::Kind::kTransaction);
  EXPECT_EQ(back->session_id, 3);
  EXPECT_EQ(back->statements, record.statements);

  Bytes flipped = wire;
  flipped[flipped.size() / 2] ^= 0x01;
  EXPECT_EQ(durability::DeserializeLogRecord(flipped).status().code(),
            StatusCode::kCorruption);

  Bytes torn(wire.begin(), wire.begin() + wire.size() / 2);
  EXPECT_FALSE(durability::DeserializeLogRecord(torn).ok());
}

TEST(CommitLogTest, AppendReadTruncateAndRestartDerivation) {
  backup::S3 s3;
  durability::CommitLog log(&s3, "us-east-1", "c1");
  for (int i = 0; i < 3; ++i) {
    durability::LogRecord r;
    r.statements = {"stmt " + std::to_string(i)};
    auto lsn = log.Append(std::move(r));
    ASSERT_TRUE(lsn.ok()) << lsn.status();
    EXPECT_EQ(*lsn, static_cast<uint64_t>(i + 1));
  }
  auto tail = log.ReadTail(1);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->records.size(), 2u);
  EXPECT_EQ(tail->records[0].lsn, 2u);
  EXPECT_EQ(tail->torn_lsn, 0u);

  ASSERT_TRUE(log.TruncateThrough(2).ok());
  auto after = log.ReadTail(0);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->records.size(), 1u);
  EXPECT_EQ(after->records[0].lsn, 3u);

  // A fresh process derives its cursor from the surviving objects —
  // never reusing (and silently overwriting) a live LSN.
  durability::CommitLog reborn(&s3, "us-east-1", "c1");
  auto last = reborn.LastLsn();
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(*last, 3u);
  durability::LogRecord r;
  r.statements = {"stmt 3"};
  auto lsn = reborn.Append(std::move(r));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 4u);

  // Torn-tail truncation frees the slot for the next append.
  ASSERT_TRUE(reborn.TruncateFrom(4).ok());
  durability::LogRecord again;
  again.statements = {"stmt 3 retry"};
  auto reused = reborn.Append(std::move(again));
  ASSERT_TRUE(reused.ok());
  EXPECT_EQ(*reused, 4u);
}

// ---------------------------------------------------------------------------
// Snapshot + log tail recovery chains
// ---------------------------------------------------------------------------

TEST(DurabilityRecovery, SnapshotPlusTailAndLogTruncationOnBackup) {
  backup::S3 shared;
  SeedSources(&shared);
  const std::vector<std::string> script = Script();
  std::unique_ptr<Warehouse> victim = MakeWarehouse(&shared);
  for (size_t i = 0; i < 5; ++i) MustRun(victim.get(), script[i]);

  auto backup = victim->Backup();
  ASSERT_TRUE(backup.ok()) << backup.status();
  // The snapshot absorbed the whole log: everything at or below its
  // watermark is truncated away.
  auto remaining = victim->commit_log()->ReadTail(0);
  ASSERT_TRUE(remaining.ok());
  EXPECT_TRUE(remaining->records.empty());

  for (size_t i = 5; i < script.size(); ++i) MustRun(victim.get(), script[i]);
  victim->crash_points()->ArmCrash(durability::kCrashPreAck);
  EXPECT_EQ(victim->Execute("INSERT INTO t VALUES (11, 110)").status().code(),
            StatusCode::kAborted);

  std::unique_ptr<Warehouse> reborn = MakeWarehouse(&shared);
  auto recovered = reborn->Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->base_snapshot_id, backup->snapshot_id);
  // Only the post-snapshot tail replays: statements 5..9 plus the
  // crashed-but-logged INSERT.
  EXPECT_EQ(recovered->replayed_records, script.size() - 5 + 1);

  backup::S3 twin_s3;
  SeedSources(&twin_s3);
  std::unique_ptr<Warehouse> twin = MakeWarehouse(&twin_s3);
  for (const std::string& sql : script) MustRun(twin.get(), sql);
  MustRun(twin.get(), "INSERT INTO t VALUES (11, 110)");
  EXPECT_EQ(Dump(reborn.get()), Dump(twin.get()));

  // Recovery reported itself into the health-event history
  // (stl_health_events).
  bool saw_recover_event = false;
  for (const auto& event : reborn->event_log()->Snapshot()) {
    if (event.source == "durability" && event.kind == "recover") {
      saw_recover_event = true;
    }
  }
  EXPECT_TRUE(saw_recover_event);
}

TEST(DurabilityRecovery, RecoverIsIdempotent) {
  backup::S3 shared;
  SeedSources(&shared);
  std::unique_ptr<Warehouse> victim = MakeWarehouse(&shared);
  for (const std::string& sql : Script()) MustRun(victim.get(), sql);
  victim->crash_points()->ArmCrash(durability::kCrashMidInstall);
  EXPECT_FALSE(victim->Execute("INSERT INTO t VALUES (12, 120)").ok());

  std::unique_ptr<Warehouse> reborn = MakeWarehouse(&shared);
  auto first = reborn->Recover();
  ASSERT_TRUE(first.ok()) << first.status();
  const std::string state = Dump(reborn.get());
  // A crash during recovery just recovers again: replay is LSN-guarded
  // and lands on the identical state.
  auto second = reborn->Recover();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->replayed_records, first->replayed_records);
  EXPECT_EQ(Dump(reborn.get()), state);
}

TEST(DurabilityRecovery, LoggingOffMeansNoWalObjectsAndEmptyRecovery) {
  backup::S3 shared;
  WarehouseOptions options = SmallOptions(&shared);
  options.durability.log_commits = false;
  auto wh = std::make_unique<Warehouse>(options);
  ASSERT_TRUE(wh->Execute("CREATE TABLE t (k BIGINT, v BIGINT)").ok());
  ASSERT_TRUE(wh->Execute("INSERT INTO t VALUES (1, 10)").ok());
  EXPECT_TRUE(shared.region("us-east-1")->ListPrefix("simpledw/wal").empty());
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

TEST(DurabilityTxn, CommitIsTheDurabilityPointAndRollbackLeavesNoTrace) {
  backup::S3 shared;
  std::unique_ptr<Warehouse> victim = MakeWarehouse(&shared);
  MustRun(victim.get(), "CREATE TABLE t (k BIGINT, v BIGINT)");
  // Committed transaction: durable as one atomic record.
  MustRun(victim.get(), "BEGIN");
  MustRun(victim.get(), "INSERT INTO t VALUES (1, 10)");
  MustRun(victim.get(), "INSERT INTO t VALUES (2, 20)");
  MustRun(victim.get(), "COMMIT");
  // Rolled-back transaction: nothing may survive, not even placement
  // cursors.
  MustRun(victim.get(), "BEGIN");
  MustRun(victim.get(), "INSERT INTO t VALUES (77, 770)");
  MustRun(victim.get(), "ROLLBACK");
  // Open transaction dies with the process: its statements were only
  // buffered, never logged.
  MustRun(victim.get(), "BEGIN");
  MustRun(victim.get(), "INSERT INTO t VALUES (88, 880)");
  victim->crash_points()->ArmCrash(durability::kCrashPreLog);
  EXPECT_EQ(victim->Execute("INSERT INTO t VALUES (89, 890)").status().code(),
            StatusCode::kAborted);

  std::unique_ptr<Warehouse> reborn = MakeWarehouse(&shared);
  ASSERT_TRUE(reborn->Recover().ok());

  backup::S3 twin_s3;
  std::unique_ptr<Warehouse> twin = MakeWarehouse(&twin_s3);
  MustRun(twin.get(), "CREATE TABLE t (k BIGINT, v BIGINT)");
  MustRun(twin.get(), "INSERT INTO t VALUES (1, 10)");
  MustRun(twin.get(), "INSERT INTO t VALUES (2, 20)");
  EXPECT_EQ(Dump(reborn.get()), Dump(twin.get()));
}

TEST(DurabilityTxn, CrashAfterCommitLogAppendKeepsTheTransaction) {
  backup::S3 shared;
  std::unique_ptr<Warehouse> victim = MakeWarehouse(&shared);
  MustRun(victim.get(), "CREATE TABLE t (k BIGINT, v BIGINT)");
  MustRun(victim.get(), "BEGIN");
  MustRun(victim.get(), "INSERT INTO t VALUES (5, 50)");
  victim->crash_points()->ArmCrash(durability::kCrashPostLogPreInstall);
  EXPECT_EQ(victim->Execute("COMMIT").status().code(), StatusCode::kAborted);

  std::unique_ptr<Warehouse> reborn = MakeWarehouse(&shared);
  ASSERT_TRUE(reborn->Recover().ok());
  auto count = reborn->Execute("SELECT COUNT(*) AS n FROM t");
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(count->rows.columns[0].IntAt(0), 1);
}

// ---------------------------------------------------------------------------
// Satellite: BackupManager snapshot ids survive restarts
// ---------------------------------------------------------------------------

TEST(BackupManagerRestart, SnapshotIdsDeriveFromSurvivingManifests) {
  backup::S3 shared;
  SeedSources(&shared);
  std::unique_ptr<Warehouse> first = MakeWarehouse(&shared);
  MustRun(first.get(), "CREATE TABLE t (k BIGINT, v BIGINT)");
  MustRun(first.get(), "INSERT INTO t VALUES (1, 10)");
  auto b1 = first->Backup();
  ASSERT_TRUE(b1.ok());
  auto b2 = first->Backup();
  ASSERT_TRUE(b2.ok());
  EXPECT_GT(b2->snapshot_id, b1->snapshot_id);

  // The "restarted process" must not reuse (and overwrite) id 1.
  std::unique_ptr<Warehouse> reborn = MakeWarehouse(&shared);
  ASSERT_TRUE(reborn->Recover().ok());
  auto b3 = reborn->Backup();
  ASSERT_TRUE(b3.ok());
  EXPECT_GT(b3->snapshot_id, b2->snapshot_id);
  EXPECT_EQ(reborn->backups()->ListSnapshots().size(), 3u);
}

// ---------------------------------------------------------------------------
// Satellite: the recovery base is protected from deletion/aging/GC
// ---------------------------------------------------------------------------

TEST(BackupLifecycle, RecoveryBaseRefusesDeletionUntilSuperseded) {
  backup::S3 shared;
  std::unique_ptr<Warehouse> wh = MakeWarehouse(&shared);
  MustRun(wh.get(), "CREATE TABLE t (k BIGINT, v BIGINT)");
  MustRun(wh.get(), "INSERT INTO t VALUES (1, 10)");
  auto b1 = wh->Backup(/*user_initiated=*/true);
  ASSERT_TRUE(b1.ok());
  // b1 is the recovery base: the live log tail replays on top of it.
  EXPECT_EQ(wh->backups()->DeleteSnapshot(b1->snapshot_id).code(),
            StatusCode::kFailedPrecondition);

  MustRun(wh.get(), "INSERT INTO t VALUES (2, 20)");
  auto b2 = wh->Backup(/*user_initiated=*/true);
  ASSERT_TRUE(b2.ok());
  // Superseded: b2 is the base now, so b1 may go.
  EXPECT_TRUE(wh->backups()->DeleteSnapshot(b1->snapshot_id).ok());
  EXPECT_EQ(wh->backups()->DeleteSnapshot(b2->snapshot_id).code(),
            StatusCode::kFailedPrecondition);
}

TEST(BackupLifecycle, AgingAndGcNeverOrphanTheRecoveryChain) {
  backup::S3 shared;
  SeedSources(&shared);
  std::unique_ptr<Warehouse> wh = MakeWarehouse(&shared);
  MustRun(wh.get(), "CREATE TABLE t (k BIGINT, v BIGINT)");
  MustRun(wh.get(), "INSERT INTO t VALUES (1, 10)");
  auto base = wh->Backup();
  ASSERT_TRUE(base.ok());
  MustRun(wh.get(), "INSERT INTO t VALUES (2, 20)");

  // Later system snapshots taken behind the warehouse's back (no
  // watermark, base pointer unmoved) would normally age `base` out.
  ASSERT_TRUE(wh->backups()->Backup(wh->data_plane()).ok());
  ASSERT_TRUE(wh->backups()->Backup(wh->data_plane()).ok());
  auto aged = wh->backups()->AgeSystemBackups(/*keep_latest=*/1);
  ASSERT_TRUE(aged.ok());
  std::vector<uint64_t> left = wh->backups()->ListSnapshots();
  // The base survived aging even though it is not among the newest.
  EXPECT_NE(std::find(left.begin(), left.end(), base->snapshot_id),
            left.end());
  // Backup GC must not reclaim blocks the recovery chain references.
  ASSERT_TRUE(wh->backups()->CollectGarbage().ok());

  wh->crash_points()->ArmCrash(durability::kCrashPreLog);
  EXPECT_FALSE(wh->Execute("INSERT INTO t VALUES (3, 30)").ok());
  std::unique_ptr<Warehouse> reborn = MakeWarehouse(&shared);
  auto recovered = reborn->Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->base_snapshot_id, base->snapshot_id);
  auto count = reborn->Execute("SELECT COUNT(*) AS n FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows.columns[0].IntAt(0), 2);
}

// ---------------------------------------------------------------------------
// Satellite: self-triggering GC in the health sweep
// ---------------------------------------------------------------------------

TEST(SelfTriggeringGc, SweepCollectsWhenPressureCrossesThreshold) {
  backup::S3 shared;
  WarehouseOptions options = SmallOptions(&shared);
  options.cluster.replicate = true;
  options.health_gc_threshold = 1;
  auto wh = std::make_unique<Warehouse>(options);
  ASSERT_TRUE(wh->Execute("CREATE TABLE t (k BIGINT, v BIGINT)").ok());
  // Each INSERT retires the previous chain version; nothing collects
  // them inline.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(wh->Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                            ", 1)")
                    .ok());
  }
  EXPECT_GT(wh->data_plane()->PendingGarbage(), 0u);

  // A pinned reader defers reclaim: the sweep triggers GC but the
  // pinned versions stay, and the reader's snapshot remains scannable.
  cluster::ReadSnapshot pinned;
  ASSERT_TRUE(wh->data_plane()->PinTables({"t"}, &pinned).ok());
  ASSERT_TRUE(wh->Execute("INSERT INTO t VALUES (100, 1)").ok());
  auto sweep = wh->RunHealthSweep();
  ASSERT_TRUE(sweep.ok()) << sweep.status();
  EXPECT_TRUE(sweep->gc_triggered);
  EXPECT_GT(wh->data_plane()->PendingGarbage(), 0u);  // pinned ones deferred
  pinned.tables.clear();                              // release the pin

  ASSERT_TRUE(wh->Execute("INSERT INTO t VALUES (101, 1)").ok());
  auto drained = wh->RunHealthSweep();
  ASSERT_TRUE(drained.ok());
  EXPECT_TRUE(drained->gc_triggered);
  EXPECT_EQ(wh->data_plane()->PendingGarbage(), 0u);

  // Threshold 0 disables self-GC entirely.
  WarehouseOptions off = SmallOptions(nullptr);
  off.cluster.replicate = true;
  off.health_gc_threshold = 0;
  auto manual = std::make_unique<Warehouse>(off);
  ASSERT_TRUE(manual->Execute("CREATE TABLE t (k BIGINT)").ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        manual->Execute("INSERT INTO t VALUES (" + std::to_string(i) + ")")
            .ok());
  }
  auto untouched = manual->RunHealthSweep();
  ASSERT_TRUE(untouched.ok());
  EXPECT_FALSE(untouched->gc_triggered);
  EXPECT_GT(manual->data_plane()->PendingGarbage(), 0u);
}

}  // namespace
}  // namespace sdw::warehouse
