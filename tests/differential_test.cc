// Differential testing: the same randomly-generated query must produce
// identical results regardless of physical choices — cluster topology,
// distribution style, join strategy, or execution engine. This is the
// paper's core promise made testable: physical design knobs (the few
// that remain) change performance, never answers.

#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.h"
#include "cluster/executor.h"
#include "common/logging.h"
#include "common/random.h"
#include "plan/planner.h"
#include "warehouse/warehouse.h"
#include "workload/replay.h"
#include "workload/synth.h"

namespace sdw {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::ExecOptions;
using cluster::ExecutionMode;
using cluster::QueryExecutor;

ClusterConfig Config(int nodes, int slices) {
  ClusterConfig config;
  config.num_nodes = nodes;
  config.slices_per_node = slices;
  config.storage.max_rows_per_block = 128;
  return config;
}

/// Loads identical fact/dim data into a cluster with the given styles.
void Load(Cluster* cluster, DistStyle fact_style, DistStyle dim_style,
          SortStyle sort_style, uint64_t data_seed) {
  TableSchema fact("fact", {{"k", TypeId::kInt64},
                            {"a", TypeId::kInt64},
                            {"b", TypeId::kInt64},
                            {"x", TypeId::kDouble}});
  if (fact_style == DistStyle::kKey) {
    SDW_CHECK_OK(fact.SetDistKey("k"));
  } else {
    fact.SetDistStyle(fact_style);
  }
  if (sort_style != SortStyle::kNone) {
    SDW_CHECK_OK(fact.SetSortKey(sort_style, {"a", "b"}));
  }
  SDW_CHECK_OK(cluster->CreateTable(fact));

  TableSchema dim("dim", {{"id", TypeId::kInt64}, {"tag", TypeId::kString}});
  if (dim_style == DistStyle::kKey) {
    SDW_CHECK_OK(dim.SetDistKey("id"));
  } else {
    dim.SetDistStyle(dim_style);
  }
  SDW_CHECK_OK(cluster->CreateTable(dim));

  Rng rng(data_seed);
  {
    ColumnVector k(TypeId::kInt64), a(TypeId::kInt64), b(TypeId::kInt64),
        x(TypeId::kDouble);
    for (int i = 0; i < 4000; ++i) {
      k.AppendInt(rng.UniformRange(0, 149));
      if (rng.Bernoulli(0.05)) {
        a.AppendNull();
      } else {
        a.AppendInt(rng.UniformRange(0, 49));
      }
      b.AppendInt(rng.UniformRange(-20, 20));
      x.AppendDouble(rng.UniformRange(0, 1000) / 8.0);
    }
    std::vector<ColumnVector> cols;
    cols.push_back(std::move(k));
    cols.push_back(std::move(a));
    cols.push_back(std::move(b));
    cols.push_back(std::move(x));
    SDW_CHECK_OK(cluster->InsertRows("fact", cols));
  }
  {
    ColumnVector id(TypeId::kInt64), tag(TypeId::kString);
    for (int i = 0; i < 150; ++i) {
      id.AppendInt(i);
      tag.AppendString("tag-" + std::to_string(i % 12));
    }
    std::vector<ColumnVector> cols;
    cols.push_back(std::move(id));
    cols.push_back(std::move(tag));
    SDW_CHECK_OK(cluster->InsertRows("dim", cols));
  }
  SDW_CHECK_OK(cluster->Analyze("fact"));
  SDW_CHECK_OK(cluster->Analyze("dim"));
}

/// Generates a random single-block query over the fact (and maybe dim)
/// tables. ORDER BY covers every select item so results are totally
/// ordered and comparable.
plan::LogicalQuery RandomQuery(Rng* rng, bool allow_join) {
  plan::LogicalQuery q;
  q.from_table = "fact";
  const bool join = allow_join && rng->Bernoulli(0.5);
  if (join) {
    q.join_table = "dim";
    q.join_left = {"fact", "k"};
    q.join_right = {"dim", "id"};
  }
  // WHERE: 0-2 conjuncts on fact int columns.
  const char* fact_cols[] = {"k", "a", "b"};
  const int nconj = static_cast<int>(rng->Uniform(3));
  for (int c = 0; c < nconj; ++c) {
    plan::Selection sel;
    sel.column = {"fact", fact_cols[rng->Uniform(3)]};
    sel.op = static_cast<plan::LogicalCmp>(rng->Uniform(6));
    sel.literal = Datum::Int64(rng->UniformRange(-10, 60));
    q.where.push_back(sel);
  }
  // GROUP BY one column + a batch of aggregates, or plain projection.
  if (rng->Bernoulli(0.7)) {
    plan::ColumnName group =
        join && rng->Bernoulli(0.5)
            ? plan::ColumnName{"dim", "tag"}
            : plan::ColumnName{"fact", "b"};
    q.group_by = {group};
    q.select = {{plan::LogicalAggFn::kNone, group, "g"},
                {plan::LogicalAggFn::kCountStar, {}, "n"},
                {plan::LogicalAggFn::kSum, {"fact", "x"}, "sx"},
                {plan::LogicalAggFn::kMin, {"fact", "b"}, "lo"},
                {plan::LogicalAggFn::kMax, {"fact", "x"}, "hi"},
                {plan::LogicalAggFn::kAvg, {"fact", "x"}, "mean"},
                {plan::LogicalAggFn::kCount, {"fact", "a"}, "na"}};
    q.order_by = {{0, false}};
  } else {
    q.select = {{plan::LogicalAggFn::kNone, {"fact", "k"}, ""},
                {plan::LogicalAggFn::kNone, {"fact", "b"}, ""},
                {plan::LogicalAggFn::kNone, {"fact", "x"}, ""}};
    for (int i = 0; i < 3; ++i) {
      q.order_by.push_back({i, rng->Bernoulli(0.5)});
    }
  }
  return q;
}

void ExpectBatchesEqual(const exec::Batch& a, const exec::Batch& b,
                        const std::string& context) {
  ASSERT_EQ(a.num_rows(), b.num_rows()) << context;
  ASSERT_EQ(a.num_columns(), b.num_columns()) << context;
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      if (a.columns[c].type() == TypeId::kDouble &&
          !a.columns[c].IsNull(r) && !b.columns[c].IsNull(r)) {
        ASSERT_NEAR(a.columns[c].DoubleAt(r), b.columns[c].DoubleAt(r), 1e-6)
            << context << " row " << r << " col " << c;
      } else {
        ASSERT_EQ(a.columns[c].DatumAt(r).Compare(b.columns[c].DatumAt(r)), 0)
            << context << " row " << r << " col " << c << ": "
            << a.columns[c].DatumAt(r).ToString() << " vs "
            << b.columns[c].DatumAt(r).ToString();
      }
    }
  }
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, TopologiesAndEnginesAgree) {
  const uint64_t seed = GetParam();
  // Reference: single node, single slice, EVEN, unsorted.
  Cluster reference(Config(1, 1));
  Load(&reference, DistStyle::kEven, DistStyle::kEven, SortStyle::kNone,
       seed);
  // Variants exercising every physical dimension.
  Cluster colocated(Config(3, 2));
  Load(&colocated, DistStyle::kKey, DistStyle::kKey, SortStyle::kCompound,
       seed);
  Cluster broadcast(Config(2, 3));
  Load(&broadcast, DistStyle::kEven, DistStyle::kEven,
       SortStyle::kInterleaved, seed);
  Cluster replicated(Config(2, 2));
  Load(&replicated, DistStyle::kEven, DistStyle::kAll, SortStyle::kCompound,
       seed);

  Rng rng(seed * 977 + 3);
  for (int trial = 0; trial < 8; ++trial) {
    plan::LogicalQuery q = RandomQuery(&rng, /*allow_join=*/true);
    const std::string context =
        "seed " + std::to_string(seed) + " trial " + std::to_string(trial);

    plan::Planner ref_planner(reference.catalog());
    auto ref_plan = ref_planner.Plan(q);
    ASSERT_TRUE(ref_plan.ok()) << context << ": " << ref_plan.status();
    QueryExecutor ref_exec(&reference);
    auto expected = ref_exec.Execute(*ref_plan);
    ASSERT_TRUE(expected.ok()) << context << ": " << expected.status();

    for (Cluster* variant : {&colocated, &broadcast, &replicated}) {
      plan::Planner planner(variant->catalog());
      auto physical = planner.Plan(q);
      ASSERT_TRUE(physical.ok()) << context;
      QueryExecutor executor(variant);
      auto got = executor.Execute(*physical);
      ASSERT_TRUE(got.ok()) << context << ": " << got.status();
      ExpectBatchesEqual(expected->rows, got->rows, context);
    }

    // Forced shuffle must also agree (different code path entirely).
    if (q.join_table.has_value()) {
      plan::PlannerOptions force;
      force.broadcast_row_threshold = 1;
      plan::Planner planner(broadcast.catalog(), force);
      auto physical = planner.Plan(q);
      ASSERT_TRUE(physical.ok()) << context;
      ASSERT_EQ(physical->join->strategy, plan::JoinStrategy::kShuffle);
      QueryExecutor executor(&broadcast);
      auto got = executor.Execute(*physical);
      ASSERT_TRUE(got.ok()) << context << ": " << got.status();
      ExpectBatchesEqual(expected->rows, got->rows, context + " (shuffle)");
    }

    // The interpreted engine must agree on join-free queries.
    if (!q.join_table.has_value()) {
      plan::Planner planner(colocated.catalog());
      auto physical = planner.Plan(q);
      ASSERT_TRUE(physical.ok()) << context;
      QueryExecutor interpreted(&colocated,
                                ExecOptions{ExecutionMode::kInterpreted, 0.0});
      auto got = interpreted.Execute(*physical);
      ASSERT_TRUE(got.ok()) << context << ": " << got.status();
      ExpectBatchesEqual(expected->rows, got->rows, context + " (interp)");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// The cache axis: cold-cache, warm result-cache, and segment-cache-only
// serving must all be byte-identical — across topologies and both
// engines. Caches are a performance knob, never an answer knob.
TEST_P(DifferentialTest, CacheArmsAgree) {
  const uint64_t seed = GetParam();
  auto make = [&](int nodes, int slices, DistStyle fact_style,
                  DistStyle dim_style, SortStyle sort_style, bool segment,
                  bool result, ExecutionMode mode) {
    warehouse::WarehouseOptions options;
    options.cluster = Config(nodes, slices);
    options.exec.mode = mode;
    options.cache.enable_segment_cache = segment;
    options.cache.enable_result_cache = result;
    auto wh = std::make_unique<warehouse::Warehouse>(options);
    Load(wh->data_plane(), fact_style, dim_style, sort_style, seed);
    return wh;
  };

  // Cold reference: no caches at all, trivial topology.
  auto cold = make(1, 1, DistStyle::kEven, DistStyle::kEven, SortStyle::kNone,
                   false, false, ExecutionMode::kCompiled);
  // Warm arm: both caches on; repeats must come from the result cache.
  auto warm = make(3, 2, DistStyle::kKey, DistStyle::kKey,
                   SortStyle::kCompound, true, true,
                   ExecutionMode::kCompiled);
  // Segment-only arm: repeats reuse the cached plan but re-execute.
  auto segonly = make(2, 3, DistStyle::kEven, DistStyle::kEven,
                      SortStyle::kInterleaved, true, false,
                      ExecutionMode::kCompiled);
  // Interpreted engine with both caches (join-free queries only).
  auto interp = make(2, 2, DistStyle::kEven, DistStyle::kAll,
                     SortStyle::kCompound, true, true,
                     ExecutionMode::kInterpreted);

  Rng rng(seed * 7919 + 11);
  for (int trial = 0; trial < 8; ++trial) {
    plan::LogicalQuery q = RandomQuery(&rng, /*allow_join=*/true);
    const std::string context =
        "seed " + std::to_string(seed) + " trial " + std::to_string(trial);

    auto expected = cold->ExecuteQuery(q);
    ASSERT_TRUE(expected.ok()) << context << ": " << expected.status();
    EXPECT_FALSE(expected->from_result_cache) << context;

    auto warm_cold = warm->ExecuteQuery(q);
    ASSERT_TRUE(warm_cold.ok()) << context << ": " << warm_cold.status();
    ExpectBatchesEqual(expected->rows, warm_cold->rows, context + " (warm/1)");
    auto warm_hit = warm->ExecuteQuery(q);
    ASSERT_TRUE(warm_hit.ok()) << context << ": " << warm_hit.status();
    EXPECT_TRUE(warm_hit->from_result_cache) << context;
    ExpectBatchesEqual(expected->rows, warm_hit->rows, context + " (warm/2)");

    auto seg_cold = segonly->ExecuteQuery(q);
    ASSERT_TRUE(seg_cold.ok()) << context << ": " << seg_cold.status();
    auto seg_repeat = segonly->ExecuteQuery(q);
    ASSERT_TRUE(seg_repeat.ok()) << context << ": " << seg_repeat.status();
    EXPECT_FALSE(seg_repeat->from_result_cache) << context;
    ExpectBatchesEqual(expected->rows, seg_repeat->rows, context + " (seg)");

    if (!q.join_table.has_value()) {
      auto interp_cold = interp->ExecuteQuery(q);
      ASSERT_TRUE(interp_cold.ok()) << context << ": "
                                    << interp_cold.status();
      ExpectBatchesEqual(expected->rows, interp_cold->rows,
                         context + " (interp/1)");
      auto interp_hit = interp->ExecuteQuery(q);
      ASSERT_TRUE(interp_hit.ok()) << context << ": " << interp_hit.status();
      EXPECT_TRUE(interp_hit->from_result_cache) << context;
      ExpectBatchesEqual(expected->rows, interp_hit->rows,
                         context + " (interp/2)");
    }
  }
  // The warm arm really did serve from its caches.
  EXPECT_GT(warm->result_cache()->size(), 0u);
  EXPECT_GT(warm->segment_cache()->size(), 0u);
}

// The serving-harness axis: a synthesized trace at a fixed seed must
// replay byte-identically whether it runs serially in trace order,
// through a concurrent session pool, or against warm caches. The trace
// is read-only after provisioning (no ETL sessions), so statement
// interleaving is a performance knob, never an answer knob.
TEST(WorkloadTraceDifferential, SynthesizedTraceReplaysIdentically) {
  workload::SynthConfig config;
  config.seed = 13;
  config.duration_seconds = 0.25;
  config.dashboard_sessions = 3;
  config.dashboard_think_seconds = 0.02;
  config.etl_sessions = 0;  // read-only replay: order-independent answers
  config.adhoc_sessions = 2;
  config.adhoc_think_seconds = 0.05;
  config.sales_rows = 200;
  config.events_rows = 1500;
  const workload::Trace trace = workload::Synthesize(config);
  ASSERT_FALSE(trace.statements.empty());

  auto run = [&trace](int workers, bool warm) {
    warehouse::Warehouse wh;
    workload::ReplayOptions opts;
    opts.workers = workers;
    opts.capture_results = true;
    workload::Replayer replayer(&wh, opts);
    SDW_CHECK_OK(replayer.Provision(trace));
    if (warm) {
      auto priming = replayer.Replay(trace);  // fill result/segment caches
      SDW_CHECK_OK(priming.status());
    }
    auto result = replayer.Replay(trace);
    SDW_CHECK_OK(result.status());
    EXPECT_EQ(result->errors, 0);
    return result->outputs;
  };

  const std::vector<std::string> serial = run(0, false);
  const std::vector<std::string> pooled = run(4, false);
  const std::vector<std::string> cache_warm = run(0, true);
  ASSERT_EQ(serial.size(), trace.statements.size());
  EXPECT_EQ(serial, pooled) << "pooled replay must be byte-identical";
  EXPECT_EQ(serial, cache_warm) << "cache-warm replay must be byte-identical";
}

}  // namespace
}  // namespace sdw
