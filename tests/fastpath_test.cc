// Tests for the performance fast paths: selection-vector filtering,
// the specialized aggregation kernel, decode caching, bulk AppendRange
// and the lane-wrapping constructors. Each fast path must be
// behaviourally identical to the generic path it shortcuts.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "exec/expr.h"
#include "exec/operators.h"
#include "storage/block_store.h"
#include "storage/table_shard.h"

namespace sdw {
namespace {

// ---------------------------------------------------------------------------
// ColumnVector bulk paths
// ---------------------------------------------------------------------------

TEST(AppendSelectedTest, SelectsInOrderWithNulls) {
  ColumnVector src(TypeId::kInt64);
  src.AppendInt(10);
  src.AppendNull();
  src.AppendInt(30);
  src.AppendInt(40);
  ColumnVector dst(TypeId::kInt64);
  ASSERT_TRUE(dst.AppendSelected(src, {3, 1, 1, 0}).ok());
  ASSERT_EQ(dst.size(), 4u);
  EXPECT_EQ(dst.IntAt(0), 40);
  EXPECT_TRUE(dst.IsNull(1));
  EXPECT_TRUE(dst.IsNull(2));
  EXPECT_EQ(dst.IntAt(3), 10);
  EXPECT_EQ(dst.null_count(), 2u);
}

TEST(AppendSelectedTest, AllTypesAndEmptySelection) {
  for (TypeId type : {TypeId::kInt64, TypeId::kDouble, TypeId::kString}) {
    ColumnVector src(type);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(src.AppendDatum(type == TypeId::kString
                                      ? Datum::String(std::to_string(i))
                                  : type == TypeId::kDouble
                                      ? Datum::Double(i * 1.5)
                                      : Datum::Int64(i))
                      .ok());
    }
    ColumnVector dst(type);
    ASSERT_TRUE(dst.AppendSelected(src, {}).ok());
    EXPECT_EQ(dst.size(), 0u);
    ASSERT_TRUE(dst.AppendSelected(src, {9, 0}).ok());
    EXPECT_EQ(dst.DatumAt(0).Compare(src.DatumAt(9)), 0);
    EXPECT_EQ(dst.DatumAt(1).Compare(src.DatumAt(0)), 0);
  }
  ColumnVector ints(TypeId::kInt64);
  ColumnVector strs(TypeId::kString);
  EXPECT_FALSE(strs.AppendSelected(ints, {}).ok());
}

TEST(TakeLanesTest, WrapWithoutCopy) {
  std::vector<int64_t> lane = {1, 2, 3};
  ColumnVector v = ColumnVector::TakeInts(TypeId::kDate, std::move(lane));
  EXPECT_EQ(v.type(), TypeId::kDate);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.IntAt(2), 3);
  EXPECT_FALSE(v.has_nulls());
  ColumnVector d = ColumnVector::TakeDoubles({1.5, 2.5});
  EXPECT_DOUBLE_EQ(d.DoubleAt(1), 2.5);
  ColumnVector s = ColumnVector::TakeStrings({"a", "b"});
  EXPECT_EQ(s.StringAt(0), "a");
}

// ---------------------------------------------------------------------------
// Filter fast path vs a reference row filter
// ---------------------------------------------------------------------------

TEST(FilterFastPathTest, MatchesRowByRowSemantics) {
  Rng rng(3);
  exec::Batch batch;
  ColumnVector a(TypeId::kInt64);
  ColumnVector b(TypeId::kString);
  for (int i = 0; i < 5000; ++i) {
    if (rng.Bernoulli(0.05)) {
      a.AppendNull();
    } else {
      a.AppendInt(rng.UniformRange(0, 99));
    }
    b.AppendString(std::to_string(i));
  }
  batch.columns.push_back(std::move(a));
  batch.columns.push_back(std::move(b));

  auto pred = exec::Cmp(exec::CmpOp::kLt, exec::Col(0, TypeId::kInt64),
                        exec::Lit(Datum::Int64(30)));
  // Reference: evaluate per row.
  std::vector<std::string> expected;
  for (size_t i = 0; i < batch.num_rows(); ++i) {
    auto keep = pred->EvalRow(batch.RowAt(i));
    ASSERT_TRUE(keep.ok());
    if (!keep->is_null() && keep->int_value() != 0) {
      expected.push_back(batch.columns[1].StringAt(i));
    }
  }
  // Fast path through the operator.
  auto types = batch.Types();
  std::vector<exec::Batch> batches;
  batches.push_back(std::move(batch));
  auto filtered =
      exec::Filter(exec::MemoryScan(types, std::move(batches)), pred);
  auto out = exec::Collect(filtered.get());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(out->columns[1].StringAt(i), expected[i]);
  }
}

TEST(FilterFastPathTest, PassThroughWhenNothingFiltered) {
  exec::Batch batch;
  ColumnVector a(TypeId::kInt64);
  for (int i = 0; i < 100; ++i) a.AppendInt(i);
  batch.columns.push_back(std::move(a));
  auto types = batch.Types();
  std::vector<exec::Batch> batches;
  batches.push_back(std::move(batch));
  auto filtered = exec::Filter(
      exec::MemoryScan(types, std::move(batches)),
      exec::Cmp(exec::CmpOp::kGe, exec::Col(0, TypeId::kInt64),
                exec::Lit(Datum::Int64(0))));
  auto out = exec::Collect(filtered.get());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 100u);
}

// ---------------------------------------------------------------------------
// Aggregation fast path vs generic path
// ---------------------------------------------------------------------------

exec::Batch MakeAggBatch(size_t n, uint64_t seed, bool with_nulls) {
  Rng rng(seed);
  exec::Batch batch;
  ColumnVector key(TypeId::kInt64);
  ColumnVector iv(TypeId::kInt64);
  ColumnVector dv(TypeId::kDouble);
  for (size_t i = 0; i < n; ++i) {
    key.AppendInt(rng.UniformRange(0, 19));
    if (with_nulls && rng.Bernoulli(0.1)) {
      iv.AppendNull();
    } else {
      iv.AppendInt(rng.UniformRange(-50, 50));
    }
    dv.AppendDouble(rng.NextDouble());
  }
  batch.columns.push_back(std::move(key));
  batch.columns.push_back(std::move(iv));
  batch.columns.push_back(std::move(dv));
  return batch;
}

exec::Batch RunAgg(exec::Batch input, const std::vector<exec::AggSpec>& aggs,
                   std::vector<int> group_by) {
  auto types = input.Types();
  std::vector<exec::Batch> batches;
  batches.push_back(std::move(input));
  auto agg = exec::HashAggregate(exec::MemoryScan(types, std::move(batches)),
                                 std::move(group_by), aggs);
  auto sorted = exec::Sort(std::move(agg), {{0, false}});
  auto out = exec::Collect(sorted.get());
  SDW_CHECK(out.ok());
  return std::move(*out);
}

TEST(AggFastPathTest, FastAndGenericAgree) {
  // The same input aggregated (a) via the fast path (int key, count/sum)
  // and (b) via the generic path (forced by adding a MIN agg) must give
  // identical counts and sums.
  std::vector<exec::AggSpec> fast_aggs = {{exec::AggFn::kCount, -1},
                                          {exec::AggFn::kSum, 1},
                                          {exec::AggFn::kSum, 2}};
  std::vector<exec::AggSpec> generic_aggs = fast_aggs;
  generic_aggs.push_back({exec::AggFn::kMin, 1});  // disables the fast path

  for (bool with_nulls : {false, true}) {
    exec::Batch fast =
        RunAgg(MakeAggBatch(20000, 7, with_nulls), fast_aggs, {0});
    exec::Batch generic =
        RunAgg(MakeAggBatch(20000, 7, with_nulls), generic_aggs, {0});
    ASSERT_EQ(fast.num_rows(), generic.num_rows());
    for (size_t i = 0; i < fast.num_rows(); ++i) {
      EXPECT_EQ(fast.columns[0].IntAt(i), generic.columns[0].IntAt(i));
      EXPECT_EQ(fast.columns[1].IntAt(i), generic.columns[1].IntAt(i));
      EXPECT_EQ(fast.columns[2].IntAt(i), generic.columns[2].IntAt(i));
      EXPECT_NEAR(fast.columns[3].DoubleAt(i), generic.columns[3].DoubleAt(i),
                  1e-9);
    }
  }
}

TEST(AggFastPathTest, NullKeysFallBackCorrectly) {
  // A batch whose key column has NULLs must take the generic path and
  // produce a NULL group.
  exec::Batch batch;
  ColumnVector key(TypeId::kInt64);
  ColumnVector v(TypeId::kInt64);
  key.AppendInt(1);
  v.AppendInt(10);
  key.AppendNull();
  v.AppendInt(20);
  key.AppendNull();
  v.AppendInt(30);
  batch.columns.push_back(std::move(key));
  batch.columns.push_back(std::move(v));
  exec::Batch out = RunAgg(std::move(batch),
                           {{exec::AggFn::kCount, -1},
                            {exec::AggFn::kSum, 1}},
                           {0});
  ASSERT_EQ(out.num_rows(), 2u);  // NULL group + group 1
  EXPECT_TRUE(out.columns[0].IsNull(0));
  EXPECT_EQ(out.columns[2].IntAt(0), 50);  // NULL group sums 20+30
  EXPECT_EQ(out.columns[2].IntAt(1), 10);
}

TEST(AggFastPathTest, MixedFastAndGenericBatchesShareGroups) {
  // Stream two batches: one null-free (fast path) and one with NULL
  // keys (generic); both must land in the same group table.
  exec::Batch clean;
  {
    ColumnVector key(TypeId::kInt64);
    ColumnVector v(TypeId::kInt64);
    for (int i = 0; i < 100; ++i) {
      key.AppendInt(i % 5);
      v.AppendInt(1);
    }
    clean.columns.push_back(std::move(key));
    clean.columns.push_back(std::move(v));
  }
  exec::Batch dirty;
  {
    ColumnVector key(TypeId::kInt64);
    ColumnVector v(TypeId::kInt64);
    for (int i = 0; i < 50; ++i) {
      if (i % 10 == 0) {
        key.AppendNull();
      } else {
        key.AppendInt(i % 5);
      }
      v.AppendInt(1);
    }
    dirty.columns.push_back(std::move(key));
    dirty.columns.push_back(std::move(v));
  }
  auto types = clean.Types();
  std::vector<exec::Batch> batches;
  batches.push_back(std::move(clean));
  batches.push_back(std::move(dirty));
  auto agg = exec::HashAggregate(exec::MemoryScan(types, std::move(batches)),
                                 {0}, {{exec::AggFn::kSum, 1}});
  auto out = exec::Collect(exec::Sort(std::move(agg), {{0, false}}).get());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 6u);  // NULL + 5 keys
  int64_t total = 0;
  for (size_t i = 0; i < out->num_rows(); ++i) {
    total += out->columns[1].IntAt(i);
  }
  EXPECT_EQ(total, 150);
}

// ---------------------------------------------------------------------------
// Decode cache
// ---------------------------------------------------------------------------

TEST(DecodeCacheTest, RepeatReadsDoNotRecount) {
  storage::BlockStore store;
  TableSchema schema("t", {{"a", TypeId::kInt64}});
  storage::StorageOptions options;
  options.max_rows_per_block = 100;
  storage::TableShard shard(schema, options, &store);
  ColumnVector a(TypeId::kInt64);
  for (int i = 0; i < 1000; ++i) a.AppendInt(i);
  std::vector<ColumnVector> run;
  run.push_back(std::move(a));
  ASSERT_TRUE(shard.Append(run).ok());

  shard.ResetCounters();
  ASSERT_TRUE(shard.ReadRange({0}, {0, 100}).ok());
  EXPECT_EQ(shard.blocks_decoded(), 1u);
  // Same block again: served from cache.
  ASSERT_TRUE(shard.ReadRange({0}, {0, 100}).ok());
  EXPECT_EQ(shard.blocks_decoded(), 1u);
  ASSERT_TRUE(shard.ReadRange({0}, {50, 150}).ok());
  EXPECT_EQ(shard.blocks_decoded(), 2u);  // only block 2 was new
  // Reset clears the cache.
  shard.ResetCounters();
  ASSERT_TRUE(shard.ReadRange({0}, {0, 100}).ok());
  EXPECT_EQ(shard.blocks_decoded(), 1u);
}

TEST(DecodeCacheTest, EvictionKeepsResultsCorrect) {
  storage::BlockStore store;
  TableSchema schema("t", {{"a", TypeId::kInt64}});
  storage::StorageOptions options;
  options.max_rows_per_block = 10;  // 100 blocks > cache capacity (64)
  storage::TableShard shard(schema, options, &store);
  ColumnVector a(TypeId::kInt64);
  for (int i = 0; i < 1000; ++i) a.AppendInt(i);
  std::vector<ColumnVector> run;
  run.push_back(std::move(a));
  ASSERT_TRUE(shard.Append(run).ok());
  // Two full passes: eviction churns, data stays right.
  for (int pass = 0; pass < 2; ++pass) {
    auto cols = shard.ReadAll({0});
    ASSERT_TRUE(cols.ok());
    for (int i = 0; i < 1000; ++i) {
      ASSERT_EQ((*cols)[0].IntAt(i), i);
    }
  }
}

TEST(DecodeCacheTest, CorruptionStillDetectedOnFirstRead) {
  storage::BlockStore store;
  TableSchema schema("t", {{"a", TypeId::kInt64}});
  storage::StorageOptions options;
  options.max_rows_per_block = 100;
  storage::TableShard shard(schema, options, &store);
  ColumnVector a(TypeId::kInt64);
  for (int i = 0; i < 100; ++i) a.AppendInt(i);
  std::vector<ColumnVector> run;
  run.push_back(std::move(a));
  ASSERT_TRUE(shard.Append(run).ok());
  store.CorruptForTest(shard.chain(0)[0].id);
  EXPECT_EQ(shard.ReadAll({0}).status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// LoadChains validation (the streaming-restore entry point)
// ---------------------------------------------------------------------------

TEST(LoadChainsTest, RejectsInvalidChains) {
  storage::BlockStore store;
  TableSchema schema("t", {{"a", TypeId::kInt64}, {"b", TypeId::kInt64}});
  storage::TableShard shard(schema, {}, &store);

  // Wrong column count.
  EXPECT_FALSE(shard.LoadChains({{}}).ok());

  // Gap in the row ranges.
  storage::BlockMeta m1;
  m1.id = 1;
  m1.first_row = 0;
  m1.row_count = 10;
  storage::BlockMeta m2 = m1;
  m2.id = 2;
  m2.first_row = 20;  // gap: should be 10
  EXPECT_FALSE(shard.LoadChains({{m1, m2}, {m1}}).ok());

  // Chains disagreeing on total rows.
  storage::BlockMeta m3 = m1;
  m3.row_count = 5;
  EXPECT_FALSE(shard.LoadChains({{m1}, {m3}}).ok());

  // Valid chains accepted; second load rejected (non-empty shard).
  ASSERT_TRUE(shard.LoadChains({{m1}, {m1}}).ok());
  EXPECT_EQ(shard.row_count(), 10u);
  EXPECT_EQ(shard.LoadChains({{m1}, {m1}}).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace sdw
