// Negative fixtures for tools/analyze.py: every line tagged with
// analyze:expect(<rule>) MUST trip that check when the analyzer parses
// this file standalone, and nothing else may fire.
// `python3 tools/analyze.py --check-fixtures` (the analyze_fixtures
// ctest) fails if the analyzer ever stops catching these. The file
// must stay parseable with `-std=c++20 -I src`; it is never compiled
// into a binary.

#include <functional>
#include <utility>

#include "common/logging.h"
#include "common/thread_annotations.h"

namespace sdw::fixtures {

/// A helper that owns its own lock: a mutable member of this type in
/// another class is internally synchronized and needs no guard.
class InternallySynced {
 public:
  void Bump() {
    common::MutexLock lock(mu_);
    ++count_;
  }

 private:
  common::Mutex mu_;
  int count_ SDW_GUARDED_BY(mu_) = 0;
};

class Hazards {
 public:
  using Callback = std::function<void(int)>;

  void LogUnderLock() {
    common::MutexLock lock(mu_);
    ++hits_;
    SDW_LOG(Info) << "under the lock";  // analyze:expect(log-under-lock)
  }

  void LogAfterRelease() {
    int copy;
    {
      common::MutexLock lock(mu_);
      copy = ++hits_;
    }
    SDW_LOG(Info) << "after release: " << copy;  // fine: lock released
  }

  void CallbackUnderLock() {
    common::MutexLock lock(mu_);
    if (callback_) callback_(42);  // analyze:expect(callback-under-lock)
  }

  void CallbackCopiedOut() {
    Callback cb;
    {
      common::MutexLock lock(mu_);
      cb = callback_;
    }
    if (cb) cb(7);  // fine: invoked after release
  }

  void set_callback(Callback cb) {
    common::MutexLock lock(mu_);
    callback_ = std::move(cb);
  }

 private:
  mutable common::Mutex mu_;
  mutable int hits_ SDW_GUARDED_BY(mu_) = 0;  // fine: guarded
  mutable int misses_ = 0;  // analyze:expect(unguarded-mutable-member)
  mutable InternallySynced stats_;  // fine: internally synchronized
  Callback callback_ SDW_GUARDED_BY(mu_);
};

class EscapeHatch {
 public:
  int padding_so_no_full_line_comment_sits_in_the_window = 0;
  int more_padding = 0;
  int yet_more_padding = 0;

  void Bare() SDW_NO_THREAD_SAFETY_ANALYSIS {}  // analyze:expect(bare-no-thread-safety-analysis)

  /// Why-comment: this fixture cannot express the invariant the
  /// analysis would need, which is exactly when the hatch is legal.
  void Explained() SDW_NO_THREAD_SAFETY_ANALYSIS {}

 private:
  common::Mutex mu_;
};

}  // namespace sdw::fixtures
