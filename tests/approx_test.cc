#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/hash.h"
#include "common/random.h"
#include "exec/hll.h"
#include "warehouse/warehouse.h"

namespace sdw {
namespace {

using exec::HyperLogLog;

// ---------------------------------------------------------------------------
// HyperLogLog sketch
// ---------------------------------------------------------------------------

TEST(HllTest, EmptySketchEstimatesZero) {
  HyperLogLog hll;
  EXPECT_EQ(hll.Estimate(), 0u);
}

TEST(HllTest, ExactAtTinyCardinalities) {
  // Linear counting keeps small cardinalities near-exact.
  HyperLogLog hll;
  for (uint64_t v = 0; v < 100; ++v) hll.Add(Hash64(v));
  EXPECT_NEAR(static_cast<double>(hll.Estimate()), 100.0, 5.0);
}

TEST(HllTest, DuplicatesDoNotInflate) {
  HyperLogLog hll;
  for (int rep = 0; rep < 1000; ++rep) {
    for (uint64_t v = 0; v < 50; ++v) hll.Add(Hash64(v));
  }
  EXPECT_NEAR(static_cast<double>(hll.Estimate()), 50.0, 5.0);
}

class HllAccuracyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HllAccuracyTest, ErrorWithinFourPercent) {
  // Precision 12 -> standard error ~1.04/sqrt(4096) = 1.6%; allow 4%.
  const uint64_t cardinality = GetParam();
  HyperLogLog hll;
  for (uint64_t v = 0; v < cardinality; ++v) {
    hll.Add(Hash64(v * 0x9e3779b97f4a7c15ull + 17));
  }
  const double estimate = static_cast<double>(hll.Estimate());
  const double error =
      std::abs(estimate - static_cast<double>(cardinality)) / cardinality;
  EXPECT_LT(error, 0.04) << "cardinality " << cardinality << " estimated as "
                         << estimate;
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, HllAccuracyTest,
                         ::testing::Values(1000, 10000, 100000, 1000000));

TEST(HllTest, MergeEqualsUnion) {
  Rng rng(5);
  HyperLogLog a, b, merged_reference;
  std::set<uint64_t> truth;
  for (int i = 0; i < 60000; ++i) {
    uint64_t v = rng.Uniform(40000);
    uint64_t h = Hash64(v);
    truth.insert(v);
    if (i % 2 == 0) {
      a.Add(h);
    } else {
      b.Add(h);
    }
    merged_reference.Add(h);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  // Merge must be identical to having seen everything in one sketch.
  EXPECT_EQ(a.Estimate(), merged_reference.Estimate());
  const double error =
      std::abs(static_cast<double>(a.Estimate()) - truth.size()) /
      truth.size();
  EXPECT_LT(error, 0.04);
}

TEST(HllTest, MergePrecisionMismatchRejected) {
  HyperLogLog a(12), b(10);
  EXPECT_FALSE(a.Merge(b).ok());
}

TEST(HllTest, SerializeRoundTrip) {
  HyperLogLog hll;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) hll.Add(rng.Next());
  std::string wire = hll.Serialize();
  auto back = HyperLogLog::Deserialize(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Estimate(), hll.Estimate());
  // Corrupt wire forms are rejected.
  EXPECT_FALSE(HyperLogLog::Deserialize("").ok());
  EXPECT_FALSE(HyperLogLog::Deserialize(wire.substr(0, 10)).ok());
  std::string bad_precision = wire;
  bad_precision[0] = 3;
  EXPECT_FALSE(HyperLogLog::Deserialize(bad_precision).ok());
}

// ---------------------------------------------------------------------------
// APPROXIMATE COUNT(DISTINCT) end to end through SQL
// ---------------------------------------------------------------------------

class ApproxSqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    warehouse::WarehouseOptions options;
    options.cluster.num_nodes = 2;
    options.cluster.slices_per_node = 2;
    wh_ = std::make_unique<warehouse::Warehouse>(options);
    ASSERT_TRUE(wh_->Execute("CREATE TABLE visits (day BIGINT, user_id "
                             "BIGINT, url VARCHAR)")
                    .ok());
    Rng rng(11);
    // 30000 visits from exactly 5000 distinct users across 3 days.
    std::string sql;
    for (int batch = 0; batch < 30; ++batch) {
      sql = "INSERT INTO visits VALUES ";
      for (int i = 0; i < 1000; ++i) {
        if (i) sql += ", ";
        sql += "(" + std::to_string(rng.Uniform(3)) + ", " +
               std::to_string(rng.Uniform(5000)) + ", '/p" +
               std::to_string(rng.Uniform(40)) + "')";
      }
      ASSERT_TRUE(wh_->Execute(sql).ok());
    }
  }

  std::unique_ptr<warehouse::Warehouse> wh_;
};

TEST_F(ApproxSqlTest, GlobalApproxDistinct) {
  auto r = wh_->Execute(
      "SELECT APPROXIMATE COUNT(DISTINCT user_id) AS users FROM visits");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->rows.num_rows(), 1u);
  const double estimate = static_cast<double>(r->rows.columns[0].IntAt(0));
  // ~4994 truly distinct users were drawn; allow 4% sketch error + the
  // sampling shortfall.
  EXPECT_NEAR(estimate, 5000.0, 250.0);
  EXPECT_EQ(r->column_names[0], "users");
}

TEST_F(ApproxSqlTest, GroupedApproxDistinctMergesAcrossSlices) {
  auto r = wh_->Execute(
      "SELECT day, APPROXIMATE COUNT(DISTINCT user_id) AS users, COUNT(*) "
      "AS visits FROM visits GROUP BY day ORDER BY day");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->rows.num_rows(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    const double users = static_cast<double>(r->rows.columns[1].IntAt(i));
    const double visits = static_cast<double>(r->rows.columns[2].IntAt(i));
    // ~10000 visits/day over 5000 users -> ~4300 distinct expected
    // (coupon collector); sanity-band the estimate.
    EXPECT_GT(users, 3500);
    EXPECT_LT(users, 5000 * 1.05);
    EXPECT_GT(visits, 9000);
  }
}

TEST_F(ApproxSqlTest, StringColumnsSketchToo) {
  auto r = wh_->Execute(
      "SELECT APPROXIMATE COUNT(DISTINCT url) AS urls FROM visits");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NEAR(static_cast<double>(r->rows.columns[0].IntAt(0)), 40.0, 3.0);
}

TEST_F(ApproxSqlTest, ApproxMatchesExactGroundTruth) {
  // Cross-check the distributed estimate against an exact distinct
  // computed from the raw shards.
  auto r = wh_->Execute(
      "SELECT APPROXIMATE COUNT(DISTINCT user_id) AS users FROM visits");
  ASSERT_TRUE(r.ok());
  std::set<int64_t> exact;
  for (int s = 0; s < wh_->data_plane()->total_slices(); ++s) {
    auto shard = wh_->data_plane()->shard(s, "visits");
    ASSERT_TRUE(shard.ok());
    auto cols = (*shard)->ReadAll({1});
    ASSERT_TRUE(cols.ok());
    for (size_t i = 0; i < (*cols)[0].size(); ++i) {
      exact.insert((*cols)[0].IntAt(i));
    }
  }
  const double estimate = static_cast<double>(r->rows.columns[0].IntAt(0));
  const double error = std::abs(estimate - static_cast<double>(exact.size())) /
                       exact.size();
  EXPECT_LT(error, 0.04) << "exact " << exact.size() << " vs " << estimate;
}

TEST_F(ApproxSqlTest, ExactDistinctIsRejectedWithGuidance) {
  auto r = wh_->Execute("SELECT COUNT(DISTINCT user_id) FROM visits");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotSupported);
  EXPECT_NE(r.status().message().find("APPROXIMATE"), std::string::npos);
}

TEST_F(ApproxSqlTest, InterpretedModeRefusesSketches) {
  warehouse::WarehouseOptions options;
  options.cluster.num_nodes = 1;
  options.cluster.slices_per_node = 1;
  options.exec.mode = cluster::ExecutionMode::kInterpreted;
  warehouse::Warehouse interpreted(options);
  ASSERT_TRUE(interpreted.Execute("CREATE TABLE t (a BIGINT)").ok());
  ASSERT_TRUE(interpreted.Execute("INSERT INTO t VALUES (1), (2)").ok());
  auto r = interpreted.Execute(
      "SELECT APPROXIMATE COUNT(DISTINCT a) FROM t");
  EXPECT_EQ(r.status().code(), StatusCode::kNotSupported);
}

}  // namespace
}  // namespace sdw
