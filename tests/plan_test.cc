#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "plan/planner.h"

namespace sdw::plan {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableSchema clicks("clicks", {{"user_id", TypeId::kInt64},
                                  {"url", TypeId::kString},
                                  {"ts", TypeId::kInt64},
                                  {"latency", TypeId::kDouble}});
    ASSERT_TRUE(clicks.SetDistKey("user_id").ok());
    ASSERT_TRUE(catalog_.CreateTable(clicks).ok());

    TableSchema users("users", {{"id", TypeId::kInt64},
                                {"country", TypeId::kString}});
    ASSERT_TRUE(users.SetDistKey("id").ok());
    ASSERT_TRUE(catalog_.CreateTable(users).ok());

    TableSchema countries("countries", {{"code", TypeId::kString},
                                        {"name", TypeId::kString}});
    countries.SetDistStyle(DistStyle::kAll);
    ASSERT_TRUE(catalog_.CreateTable(countries).ok());

    TableSchema products("products", {{"pid", TypeId::kInt64},
                                      {"label", TypeId::kString}});
    ASSERT_TRUE(catalog_.CreateTable(products).ok());  // EVEN

    TableStats small;
    small.row_count = 100;
    small.columns.resize(2);
    catalog_.UpdateStats("products", small);

    TableStats big;
    big.row_count = 10u * 1000 * 1000;
    big.columns.resize(2);
    catalog_.UpdateStats("users", big);
  }

  Catalog catalog_;
};

LogicalQuery SimpleScan() {
  LogicalQuery q;
  q.from_table = "clicks";
  q.select = {{LogicalAggFn::kNone, {"", "url"}, ""},
              {LogicalAggFn::kNone, {"", "ts"}, ""}};
  return q;
}

TEST_F(PlannerTest, SimpleProjectionBindsColumns) {
  Planner planner(&catalog_);
  auto p = planner.Plan(SimpleScan());
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->scan.table, "clicks");
  EXPECT_EQ(p->scan.columns, (std::vector<int>{1, 2}));  // url, ts
  EXPECT_FALSE(p->join.has_value());
  EXPECT_FALSE(p->agg.has_value());
  ASSERT_EQ(p->project.size(), 2u);
  EXPECT_EQ(p->output_names, (std::vector<std::string>{"url", "ts"}));
}

TEST_F(PlannerTest, WhereProducesZonePredicatesAndResidual) {
  LogicalQuery q = SimpleScan();
  q.where = {{{"", "ts"}, LogicalCmp::kGe, Datum::Int64(100)},
             {{"", "ts"}, LogicalCmp::kLt, Datum::Int64(200)},
             {{"", "url"}, LogicalCmp::kNe, Datum::String("x")}};
  Planner planner(&catalog_);
  auto p = planner.Plan(q);
  ASSERT_TRUE(p.ok()) << p.status();
  // kNe contributes no zone predicate; the two ts bounds do.
  EXPECT_EQ(p->scan.predicates.size(), 2u);
  EXPECT_EQ(p->scan.predicates[0].column, 2);  // ts schema index
  ASSERT_TRUE(p->scan.filter != nullptr);
}

TEST_F(PlannerTest, RejectsUnknownNames) {
  Planner planner(&catalog_);
  LogicalQuery q = SimpleScan();
  q.from_table = "nope";
  EXPECT_FALSE(planner.Plan(q).ok());
  q = SimpleScan();
  q.select[0].column.column = "nope";
  EXPECT_FALSE(planner.Plan(q).ok());
  q = SimpleScan();
  q.select.clear();
  EXPECT_FALSE(planner.Plan(q).ok());
}

TEST_F(PlannerTest, CoLocatedJoinOnMatchingDistKeys) {
  LogicalQuery q;
  q.from_table = "clicks";
  q.join_table = "users";
  q.join_left = {"clicks", "user_id"};
  q.join_right = {"users", "id"};
  q.select = {{LogicalAggFn::kNone, {"users", "country"}, ""}};
  Planner planner(&catalog_);
  auto p = planner.Plan(q);
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_TRUE(p->join.has_value());
  EXPECT_EQ(p->join->strategy, JoinStrategy::kCoLocated);
}

TEST_F(PlannerTest, AllDistributedBuildIsCoLocated) {
  LogicalQuery q;
  q.from_table = "clicks";
  q.join_table = "countries";
  q.join_left = {"clicks", "url"};
  q.join_right = {"countries", "code"};
  q.select = {{LogicalAggFn::kNone, {"countries", "name"}, ""}};
  Planner planner(&catalog_);
  auto p = planner.Plan(q);
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->join->strategy, JoinStrategy::kCoLocated);
}

TEST_F(PlannerTest, SmallBuildSideIsBroadcast) {
  LogicalQuery q;
  q.from_table = "clicks";
  q.join_table = "products";
  q.join_left = {"clicks", "ts"};
  q.join_right = {"products", "pid"};
  q.select = {{LogicalAggFn::kNone, {"products", "label"}, ""}};
  Planner planner(&catalog_);
  auto p = planner.Plan(q);
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->join->strategy, JoinStrategy::kBroadcastBuild);
}

TEST_F(PlannerTest, LargeMisalignedJoinShuffles) {
  LogicalQuery q;
  q.from_table = "clicks";
  q.join_table = "users";
  q.join_left = {"clicks", "ts"};  // not the dist key
  q.join_right = {"users", "id"};
  q.select = {{LogicalAggFn::kNone, {"users", "country"}, ""}};
  Planner planner(&catalog_);
  auto p = planner.Plan(q);
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->join->strategy, JoinStrategy::kShuffle);
}

TEST_F(PlannerTest, JoinSwapsReversedCondition) {
  // ON users.id = clicks.user_id (build side first) still binds.
  LogicalQuery q;
  q.from_table = "clicks";
  q.join_table = "users";
  q.join_left = {"users", "id"};
  q.join_right = {"clicks", "user_id"};
  q.select = {{LogicalAggFn::kNone, {"users", "country"}, ""}};
  Planner planner(&catalog_);
  auto p = planner.Plan(q);
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->join->strategy, JoinStrategy::kCoLocated);
}

TEST_F(PlannerTest, AggregateWithGroupBy) {
  LogicalQuery q;
  q.from_table = "clicks";
  q.select = {{LogicalAggFn::kNone, {"", "user_id"}, ""},
              {LogicalAggFn::kCountStar, {}, "n"},
              {LogicalAggFn::kSum, {"", "latency"}, "total"},
              {LogicalAggFn::kAvg, {"", "latency"}, "mean"}};
  q.group_by = {{"", "user_id"}};
  Planner planner(&catalog_);
  auto p = planner.Plan(q);
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_TRUE(p->agg.has_value());
  EXPECT_EQ(p->agg->group_by.size(), 1u);
  // COUNT(*) + SUM + AVG->(SUM, COUNT) = 4 physical aggs.
  EXPECT_EQ(p->agg->aggs.size(), 4u);
  EXPECT_EQ(p->project.size(), 4u);
  EXPECT_EQ(p->output_names,
            (std::vector<std::string>{"user_id", "n", "total", "mean"}));
  // AVG slot is a division expression.
  EXPECT_NE(p->project[3]->ToString().find("/"), std::string::npos);
}

TEST_F(PlannerTest, NonGroupedColumnRejected) {
  LogicalQuery q;
  q.from_table = "clicks";
  q.select = {{LogicalAggFn::kNone, {"", "url"}, ""},
              {LogicalAggFn::kCountStar, {}, ""}};
  q.group_by = {{"", "user_id"}};
  Planner planner(&catalog_);
  EXPECT_FALSE(planner.Plan(q).ok());
}

TEST_F(PlannerTest, OrderByAndLimitValidated) {
  LogicalQuery q = SimpleScan();
  q.order_by = {{1, true}};
  q.limit = 10;
  Planner planner(&catalog_);
  auto p = planner.Plan(q);
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p->order_by.size(), 1u);
  EXPECT_TRUE(p->order_by[0].descending);
  EXPECT_EQ(*p->limit, 10u);
  q.order_by = {{5, false}};
  EXPECT_FALSE(planner.Plan(q).ok());
}

TEST_F(PlannerTest, AmbiguousColumnRejected) {
  // "url" exists only in clicks, but "id"... make an ambiguous case:
  // both clicks.user_id and users.id are distinct names, so craft one
  // via products.label vs countries.name — instead use join with same
  // column name by qualifying. Simplest: unqualified "id" with users
  // joined to products (no shared name) resolves fine; ambiguity needs
  // a shared name, e.g. joining users to users is disallowed by the
  // logical model, so test qualified unknown table instead.
  LogicalQuery q;
  q.from_table = "clicks";
  q.join_table = "users";
  q.join_left = {"clicks", "user_id"};
  q.join_right = {"users", "id"};
  q.select = {{LogicalAggFn::kNone, {"nope", "id"}, ""}};
  Planner planner(&catalog_);
  EXPECT_FALSE(planner.Plan(q).ok());
}

TEST_F(PlannerTest, ExplainRendersPlan) {
  LogicalQuery q;
  q.from_table = "clicks";
  q.join_table = "users";
  q.join_left = {"clicks", "user_id"};
  q.join_right = {"users", "id"};
  q.select = {{LogicalAggFn::kNone, {"users", "country"}, ""},
              {LogicalAggFn::kCountStar, {}, "n"}};
  q.group_by = {{"users", "country"}};
  Planner planner(&catalog_);
  auto p = planner.Plan(q);
  ASSERT_TRUE(p.ok());
  std::string explain = p->ToString();
  EXPECT_NE(explain.find("CO-LOCATED"), std::string::npos);
  EXPECT_NE(explain.find("Final HashAggregate"), std::string::npos);
}

}  // namespace
}  // namespace sdw::plan
