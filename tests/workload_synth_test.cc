#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "workload/replay.h"
#include "workload/synth.h"

namespace sdw::workload {
namespace {

SynthConfig SmallConfig() {
  SynthConfig config;
  config.seed = 7;
  config.duration_seconds = 0.5;
  config.dashboard_sessions = 4;
  config.dashboard_think_seconds = 0.02;
  config.dashboard_templates = 8;
  config.etl_sessions = 1;
  config.etl_burst_interval_seconds = 0.2;
  config.etl_files_per_burst = 2;
  config.etl_rows_per_file = 50;
  config.adhoc_sessions = 2;
  config.adhoc_think_seconds = 0.1;
  config.sales_rows = 256;
  config.events_rows = 2000;
  return config;
}

TEST(WorkloadSynthTest, SameSeedIsByteIdentical) {
  const SynthConfig config = SmallConfig();
  const std::string first = TraceToScript(Synthesize(config));
  const std::string second = TraceToScript(Synthesize(config));
  EXPECT_EQ(first, second) << "a seed must pin the whole trace";
  ASSERT_FALSE(first.empty());

  SynthConfig other = config;
  other.seed = 8;
  EXPECT_NE(TraceToScript(Synthesize(other)), first)
      << "a different seed must produce a different trace";
}

TEST(WorkloadSynthTest, MixKnobsDoNotPerturbOtherStreams) {
  // Removing the ETL sessions must not change what the dashboard and
  // ad-hoc sessions do — each session draws from its own seeded stream.
  SynthConfig with_etl = SmallConfig();
  SynthConfig without_etl = SmallConfig();
  without_etl.etl_sessions = 0;
  const Trace a = Synthesize(with_etl);
  const Trace b = Synthesize(without_etl);
  auto dashboard_sql = [](const Trace& trace) {
    std::vector<std::string> sql;
    for (const TimedStatement& ts : trace.statements) {
      if (ts.klass == "dashboard") sql.push_back(ts.sql);
    }
    return sql;
  };
  EXPECT_EQ(dashboard_sql(a), dashboard_sql(b));
  EXPECT_TRUE(b.fixtures.empty());
}

TEST(WorkloadSynthTest, ArrivalProcessShape) {
  SynthConfig config = SmallConfig();
  config.duration_seconds = 2.0;
  const Trace trace = Synthesize(config);

  ASSERT_FALSE(trace.statements.empty());
  double prev = 0;
  for (const TimedStatement& ts : trace.statements) {
    EXPECT_GE(ts.at_seconds, prev) << "stream must be time-sorted";
    EXPECT_LT(ts.at_seconds, config.duration_seconds);
    prev = ts.at_seconds;
  }

  // Exponential arrivals: each dashboard session emits roughly
  // duration / think statements. Bound loosely (2x either way) — this
  // is a shape check, not a distribution test.
  const double expected_per_session =
      config.duration_seconds / config.dashboard_think_seconds;
  const int dash = trace.stats.by_class.at("dashboard");
  EXPECT_GT(dash, config.dashboard_sessions * expected_per_session / 2);
  EXPECT_LT(dash, config.dashboard_sessions * expected_per_session * 2);
  EXPECT_GT(trace.stats.by_class.at("adhoc"), 0);
  EXPECT_GT(trace.stats.by_class.at("etl"), 0);
  // Every COPY statement's prefix has its fixtures staged.
  EXPECT_EQ(trace.fixtures.size(),
            static_cast<size_t>(trace.stats.by_class.at("etl") *
                                config.etl_files_per_burst));
}

TEST(WorkloadSynthTest, RepeatRateMatchesDashboardMix) {
  SynthConfig config = SmallConfig();
  config.duration_seconds = 2.0;
  config.etl_sessions = 0;
  const Trace trace = Synthesize(config);

  int dash = 0;
  int dash_repeats = 0;
  std::set<uint64_t> dash_fingerprints;
  for (const TimedStatement& ts : trace.statements) {
    if (ts.klass != "dashboard") continue;
    ++dash;
    if (ts.repeat) ++dash_repeats;
    dash_fingerprints.insert(ts.fingerprint);
  }
  // Dashboards draw from a fixed template pool: at most
  // dashboard_templates distinct statements, everything else repeats.
  EXPECT_LE(dash_fingerprints.size(),
            static_cast<size_t>(config.dashboard_templates));
  EXPECT_GE(dash_repeats, dash - config.dashboard_templates);
  ASSERT_GT(dash, config.dashboard_templates * 4)
      << "config must draw enough statements to exercise repeats";
  // Zipf-skewed template popularity: the bulk of dashboard traffic is
  // repeats (the result-cache feed the mix is designed around).
  EXPECT_GT(static_cast<double>(dash_repeats) / dash, 0.5);
  // Ad-hoc scans use fresh literals: they contribute (almost) no
  // repeats, so total repeats stay dominated by the dashboard class.
  EXPECT_LE(trace.stats.repeats, dash_repeats + 2);
}

TEST(WorkloadSynthTest, SerialReplaySmoke) {
  SynthConfig config = SmallConfig();
  config.duration_seconds = 0.2;
  const Trace trace = Synthesize(config);
  ASSERT_FALSE(trace.statements.empty());

  warehouse::Warehouse wh;
  Replayer replayer(&wh);
  auto provisioned = replayer.Provision(trace);
  ASSERT_TRUE(provisioned.ok()) << provisioned;
  auto result = replayer.Replay(trace);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->errors, 0);
  EXPECT_EQ(result->timeouts, 0);
  int statements = 0;
  for (const auto& [klass, stats] : result->by_class) {
    statements += stats.statements;
  }
  EXPECT_EQ(statements, trace.stats.statements);
  // The repeated dashboard templates hit the result cache.
  const auto dash = result->by_class.find("dashboard");
  ASSERT_NE(dash, result->by_class.end());
  EXPECT_GT(dash->second.cache_hits, 0);
}

}  // namespace
}  // namespace sdw::workload
