#include <gtest/gtest.h>

#include "common/random.h"
#include "replication/replication.h"

namespace sdw::replication {
namespace {

class ReplicationTest : public ::testing::Test {
 protected:
  void MakeNodes(int n) {
    owned_.clear();
    stores_.clear();
    for (int i = 0; i < n; ++i) {
      owned_.push_back(std::make_unique<storage::BlockStore>());
      stores_.push_back(owned_.back().get());
    }
  }

  std::vector<std::unique_ptr<storage::BlockStore>> owned_;
  std::vector<storage::BlockStore*> stores_;
};

Bytes Payload(int i) { return Bytes(100, static_cast<uint8_t>(i)); }

TEST_F(ReplicationTest, WritesLandOnTwoNodes) {
  MakeNodes(4);
  ReplicationManager mgr(stores_, {2});
  auto id = mgr.Write(0, Payload(1));
  ASSERT_TRUE(id.ok());
  auto placement = mgr.GetPlacement(*id);
  ASSERT_TRUE(placement.ok());
  EXPECT_EQ(placement->primary, 0);
  EXPECT_NE(placement->secondary, 0);
  EXPECT_EQ(mgr.ReplicaCount(*id), 2);
  // Both copies really exist.
  EXPECT_TRUE(stores_[placement->primary]->Contains(*id));
  EXPECT_TRUE(stores_[placement->secondary]->Contains(*id));
}

TEST_F(ReplicationTest, SecondaryStaysInsideCohort) {
  MakeNodes(8);
  ReplicationManager mgr(stores_, {4});
  for (int i = 0; i < 100; ++i) {
    const int primary = i % 8;
    auto id = mgr.Write(primary, Payload(i));
    ASSERT_TRUE(id.ok());
    auto placement = mgr.GetPlacement(*id);
    EXPECT_EQ(mgr.CohortOf(placement->primary),
              mgr.CohortOf(placement->secondary))
        << "secondary escaped its cohort";
  }
}

TEST_F(ReplicationTest, ReadMasksPrimaryFailure) {
  MakeNodes(4);
  ReplicationManager mgr(stores_, {2});
  auto id = mgr.Write(1, Payload(7));
  ASSERT_TRUE(id.ok());
  mgr.FailNode(1);
  auto read = mgr.Read(*id);
  ASSERT_TRUE(read.ok()) << "secondary should mask the failure";
  EXPECT_EQ(*read, Payload(7));
  EXPECT_EQ(mgr.ReplicaCount(*id), 1);
}

TEST_F(ReplicationTest, ReadMasksCorruptPrimary) {
  MakeNodes(2);
  ReplicationManager mgr(stores_, {2});
  auto id = mgr.Write(0, Payload(9));
  ASSERT_TRUE(id.ok());
  stores_[0]->CorruptForTest(*id);
  auto read = mgr.Read(*id);
  ASSERT_TRUE(read.ok()) << "checksum failure should fall through";
  EXPECT_EQ(*read, Payload(9));
}

TEST_F(ReplicationTest, DoubleFaultLosesData) {
  MakeNodes(2);
  ReplicationManager mgr(stores_, {2});
  auto id = mgr.Write(0, Payload(3));
  ASSERT_TRUE(id.ok());
  mgr.FailNode(0);
  mgr.FailNode(1);
  EXPECT_EQ(mgr.Read(*id).status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(mgr.IsReadable(*id));
}

TEST_F(ReplicationTest, ReReplicationRestoresRedundancy) {
  MakeNodes(4);
  ReplicationManager mgr(stores_, {4});
  std::vector<storage::BlockId> ids;
  for (int i = 0; i < 50; ++i) {
    auto id = mgr.Write(i % 4, Payload(i));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  mgr.FailNode(2);
  int degraded = 0;
  for (auto id : ids) {
    if (mgr.ReplicaCount(id) == 1) ++degraded;
  }
  EXPECT_GT(degraded, 0);
  auto restored = mgr.ReReplicate();
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, degraded);
  for (auto id : ids) {
    EXPECT_EQ(mgr.ReplicaCount(id), 2) << "block " << id;
    auto read = mgr.Read(id);
    ASSERT_TRUE(read.ok());
  }
}

TEST_F(ReplicationTest, ReReplicateIsIdempotent) {
  MakeNodes(4);
  ReplicationManager mgr(stores_, {4});
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(mgr.Write(i % 4, Payload(i)).ok());
  }
  mgr.FailNode(0);
  ASSERT_TRUE(mgr.ReReplicate().ok());
  auto second = mgr.ReReplicate();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 0);
}

TEST_F(ReplicationTest, CohortSizeBoundsBlastRadius) {
  // With cohort_size=2 a node failure touches exactly 1 other node;
  // with cohort_size=8 it can touch up to 7.
  for (int cohort_size : {2, 4, 8}) {
    MakeNodes(8);
    ReplicationManager mgr(stores_, {cohort_size}, 7);
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE(mgr.Write(i % 8, Payload(i)).ok());
    }
    auto radius = mgr.BlastRadius(0);
    EXPECT_LE(static_cast<int>(radius.size()), cohort_size - 1)
        << "cohort " << cohort_size;
    if (cohort_size > 2) {
      EXPECT_GT(static_cast<int>(radius.size()), 1);
    }
  }
}

TEST_F(ReplicationTest, WriteToFailedPrimaryRejected) {
  MakeNodes(2);
  ReplicationManager mgr(stores_, {2});
  mgr.FailNode(0);
  EXPECT_EQ(mgr.Write(0, Payload(1)).status().code(),
            StatusCode::kUnavailable);
  EXPECT_FALSE(mgr.Write(-1, Payload(1)).ok());
  EXPECT_FALSE(mgr.Write(9, Payload(1)).ok());
}

TEST_F(ReplicationTest, OddNodeCountFallsBackOffNode) {
  MakeNodes(3);
  ReplicationManager mgr(stores_, {2});
  // Node 2 is a singleton cohort; its secondary must still be off-node.
  auto id = mgr.Write(2, Payload(5));
  ASSERT_TRUE(id.ok());
  auto placement = mgr.GetPlacement(*id);
  EXPECT_NE(placement->secondary, 2);
}

}  // namespace
}  // namespace sdw::replication
