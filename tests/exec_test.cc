#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "exec/expr.h"
#include "exec/operators.h"
#include "exec/row_executor.h"
#include "storage/block_store.h"
#include "storage/table_shard.h"

namespace sdw::exec {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

Batch IntBatch(const std::vector<std::vector<int64_t>>& columns) {
  Batch b;
  for (const auto& col : columns) {
    ColumnVector v(TypeId::kInt64);
    for (int64_t x : col) v.AppendInt(x);
    b.columns.push_back(std::move(v));
  }
  return b;
}

OperatorPtr ScanOf(Batch batch) {
  auto types = batch.Types();
  std::vector<Batch> batches;
  batches.push_back(std::move(batch));
  return MemoryScan(types, std::move(batches));
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

TEST(ExprTest, ColAndLit) {
  Batch b = IntBatch({{1, 2, 3}});
  auto col = Col(0, TypeId::kInt64);
  auto batch_result = col->EvalBatch(b);
  ASSERT_TRUE(batch_result.ok());
  EXPECT_EQ(batch_result->IntAt(2), 3);
  auto lit = Lit(Datum::Int64(9));
  auto lit_result = lit->EvalBatch(b);
  ASSERT_TRUE(lit_result.ok());
  ASSERT_EQ(lit_result->size(), 3u);
  EXPECT_EQ(lit_result->IntAt(0), 9);
  EXPECT_EQ(col->EvalRow({Datum::Int64(5)})->int_value(), 5);
}

TEST(ExprTest, ComparisonVariants) {
  Batch b = IntBatch({{1, 2, 3}, {2, 2, 2}});
  struct Case {
    CmpOp op;
    std::vector<int64_t> expected;
  };
  for (const auto& [op, expected] :
       std::vector<Case>{{CmpOp::kEq, {0, 1, 0}},
                         {CmpOp::kNe, {1, 0, 1}},
                         {CmpOp::kLt, {1, 0, 0}},
                         {CmpOp::kLe, {1, 1, 0}},
                         {CmpOp::kGt, {0, 0, 1}},
                         {CmpOp::kGe, {0, 1, 1}}}) {
    auto e = Cmp(op, Col(0, TypeId::kInt64), Col(1, TypeId::kInt64));
    auto r = e->EvalBatch(b);
    ASSERT_TRUE(r.ok());
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(r->IntAt(i), expected[i]) << "op " << static_cast<int>(op);
    }
  }
}

TEST(ExprTest, NullComparisonsAreNull) {
  ColumnVector v(TypeId::kInt64);
  v.AppendInt(1);
  v.AppendNull();
  Batch b;
  b.columns.push_back(std::move(v));
  auto e = Cmp(CmpOp::kEq, Col(0, TypeId::kInt64), Lit(Datum::Int64(1)));
  auto r = e->EvalBatch(b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->IntAt(0), 1);
  EXPECT_TRUE(r->IsNull(1));
  EXPECT_TRUE(e->EvalRow({Datum::Null()})->is_null());
}

TEST(ExprTest, ThreeValuedLogic) {
  Datum t = Datum::Bool(true), f = Datum::Bool(false), n = Datum::Null();
  auto eval = [](ExprPtr e, Datum a, Datum b) {
    return *e->EvalRow({std::move(a), std::move(b)});
  };
  auto a = Col(0, TypeId::kBool);
  auto b = Col(1, TypeId::kBool);
  EXPECT_EQ(eval(And(a, b), t, n).is_null(), true);
  EXPECT_EQ(eval(And(a, b), f, n), Datum::Bool(false));  // false AND null
  EXPECT_EQ(eval(Or(a, b), t, n), Datum::Bool(true));    // true OR null
  EXPECT_EQ(eval(Or(a, b), f, n).is_null(), true);
  EXPECT_EQ(eval(And(a, b), t, t), Datum::Bool(true));
  EXPECT_TRUE(Not(a)->EvalRow({n})->is_null());
  EXPECT_EQ(*Not(a)->EvalRow({t}), Datum::Bool(false));
}

TEST(ExprTest, Arithmetic) {
  Batch b = IntBatch({{10, 20}, {3, 4}});
  auto add = Arith(ArithOp::kAdd, Col(0, TypeId::kInt64), Col(1, TypeId::kInt64));
  EXPECT_EQ(add->type(), TypeId::kInt64);
  auto r = add->EvalBatch(b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->IntAt(0), 13);
  EXPECT_EQ(r->IntAt(1), 24);
  // Division always produces DOUBLE.
  auto div = Arith(ArithOp::kDiv, Col(0, TypeId::kInt64), Col(1, TypeId::kInt64));
  EXPECT_EQ(div->type(), TypeId::kDouble);
  auto d = div->EvalBatch(b);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->DoubleAt(1), 5.0);
  // String arithmetic rejected.
  auto bad = Arith(ArithOp::kAdd, Lit(Datum::String("x")), Lit(Datum::Int64(1)));
  EXPECT_FALSE(bad->EvalBatch(b).ok());
}

TEST(ExprTest, IsNullAndStartsWith) {
  ColumnVector s(TypeId::kString);
  s.AppendString("https://a");
  s.AppendNull();
  s.AppendString("ftp://b");
  Batch b;
  b.columns.push_back(std::move(s));
  auto isnull = IsNull(Col(0, TypeId::kString));
  auto r1 = isnull->EvalBatch(b);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->IntAt(0), 0);
  EXPECT_EQ(r1->IntAt(1), 1);
  auto prefix = StartsWith(Col(0, TypeId::kString), "https://");
  auto r2 = prefix->EvalBatch(b);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->IntAt(0), 1);
  EXPECT_TRUE(r2->IsNull(1));
  EXPECT_EQ(r2->IntAt(2), 0);
}

TEST(ExprTest, ToStringReadsLikeSql) {
  auto e = And(Cmp(CmpOp::kGt, Col(0, TypeId::kInt64), Lit(Datum::Int64(5))),
               Not(IsNull(Col(1, TypeId::kString))));
  EXPECT_EQ(e->ToString(), "(($0 > 5) AND NOT $1 IS NULL)");
}

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

TEST(OperatorTest, FilterKeepsMatchingRows) {
  auto scan = ScanOf(IntBatch({{1, 2, 3, 4, 5}}));
  auto filtered =
      Filter(std::move(scan),
             Cmp(CmpOp::kGt, Col(0, TypeId::kInt64), Lit(Datum::Int64(2))));
  auto out = Collect(filtered.get());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 3u);
  EXPECT_EQ(out->columns[0].IntAt(0), 3);
  EXPECT_EQ(out->columns[0].IntAt(2), 5);
}

TEST(OperatorTest, ProjectComputesExpressions) {
  auto scan = ScanOf(IntBatch({{1, 2}, {10, 20}}));
  auto projected = Project(
      std::move(scan),
      {Arith(ArithOp::kMul, Col(0, TypeId::kInt64), Col(1, TypeId::kInt64)),
       Col(1, TypeId::kInt64)});
  auto out = Collect(projected.get());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->columns[0].IntAt(0), 10);
  EXPECT_EQ(out->columns[0].IntAt(1), 40);
  EXPECT_EQ(out->columns[1].IntAt(1), 20);
}

TEST(OperatorTest, HashJoinInner) {
  // probe: (k, v) ; build: (k, w)
  auto probe = ScanOf(IntBatch({{1, 2, 3, 2}, {10, 20, 30, 21}}));
  auto build = ScanOf(IntBatch({{2, 3, 4}, {200, 300, 400}}));
  auto join = HashJoin(std::move(probe), std::move(build), {0}, {0});
  auto sorted = Sort(std::move(join), {{1, false}});
  auto out = Collect(sorted.get());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 3u);
  // Output: probe cols (k, v) then build cols (k, w).
  EXPECT_EQ(out->columns[1].IntAt(0), 20);
  EXPECT_EQ(out->columns[3].IntAt(0), 200);
  EXPECT_EQ(out->columns[1].IntAt(1), 21);
  EXPECT_EQ(out->columns[3].IntAt(1), 200);
  EXPECT_EQ(out->columns[1].IntAt(2), 30);
  EXPECT_EQ(out->columns[3].IntAt(2), 300);
}

TEST(OperatorTest, HashJoinDuplicateBuildKeysFanOut) {
  auto probe = ScanOf(IntBatch({{7}}));
  auto build = ScanOf(IntBatch({{7, 7}, {1, 2}}));
  auto join = HashJoin(std::move(probe), std::move(build), {0}, {0});
  auto out = Collect(join.get());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 2u);
}

TEST(OperatorTest, HashJoinNullKeysNeverMatch) {
  ColumnVector k(TypeId::kInt64);
  k.AppendNull();
  k.AppendInt(1);
  Batch probe_batch;
  probe_batch.columns.push_back(std::move(k));
  ColumnVector bk(TypeId::kInt64);
  bk.AppendNull();
  bk.AppendInt(1);
  Batch build_batch;
  build_batch.columns.push_back(std::move(bk));
  auto join = HashJoin(ScanOf(std::move(probe_batch)),
                       ScanOf(std::move(build_batch)), {0}, {0});
  auto out = Collect(join.get());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 1u);  // only 1=1, not NULL=NULL
}

TEST(OperatorTest, HashAggregateGrouped) {
  auto scan = ScanOf(IntBatch({{1, 2, 1, 2, 1}, {10, 20, 30, 40, 50}}));
  auto agg = HashAggregate(std::move(scan), {0},
                           {{AggFn::kCount, -1},
                            {AggFn::kSum, 1},
                            {AggFn::kMin, 1},
                            {AggFn::kMax, 1}});
  auto sorted = Sort(std::move(agg), {{0, false}});
  auto out = Collect(sorted.get());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 2u);
  EXPECT_EQ(out->columns[0].IntAt(0), 1);
  EXPECT_EQ(out->columns[1].IntAt(0), 3);   // count
  EXPECT_EQ(out->columns[2].IntAt(0), 90);  // sum 10+30+50
  EXPECT_EQ(out->columns[3].IntAt(0), 10);  // min
  EXPECT_EQ(out->columns[4].IntAt(0), 50);  // max
  EXPECT_EQ(out->columns[2].IntAt(1), 60);  // 20+40
}

TEST(OperatorTest, GlobalAggregateOnEmptyInput) {
  auto scan = MemoryScan({TypeId::kInt64}, {});
  auto agg = HashAggregate(std::move(scan), {},
                           {{AggFn::kCount, -1}, {AggFn::kSum, 0}});
  auto out = Collect(agg.get());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->columns[0].IntAt(0), 0);
  EXPECT_TRUE(out->columns[1].IsNull(0));  // SUM of nothing is NULL
}

TEST(OperatorTest, PartialThenFinalEqualsSingle) {
  // The leader-node final aggregation path: partials from two "slices"
  // merged by a final aggregate must equal a single-pass aggregate.
  Rng rng(5);
  std::vector<std::vector<int64_t>> slice1{{}, {}};
  std::vector<std::vector<int64_t>> slice2{{}, {}};
  std::vector<std::vector<int64_t>> all{{}, {}};
  for (int i = 0; i < 2000; ++i) {
    int64_t g = rng.UniformRange(0, 9);
    int64_t v = rng.UniformRange(-100, 100);
    auto& dest = rng.Bernoulli(0.5) ? slice1 : slice2;
    dest[0].push_back(g);
    dest[1].push_back(v);
    all[0].push_back(g);
    all[1].push_back(v);
  }
  std::vector<AggSpec> aggs = {{AggFn::kCount, -1},
                               {AggFn::kSum, 1},
                               {AggFn::kMin, 1},
                               {AggFn::kMax, 1}};
  auto p1 = HashAggregate(ScanOf(IntBatch(slice1)), {0}, aggs, AggMode::kPartial);
  auto p2 = HashAggregate(ScanOf(IntBatch(slice2)), {0}, aggs, AggMode::kPartial);
  auto b1 = Collect(p1.get());
  auto b2 = Collect(p2.get());
  ASSERT_TRUE(b1.ok());
  ASSERT_TRUE(b2.ok());
  std::vector<Batch> partials;
  partials.push_back(std::move(*b1));
  partials.push_back(std::move(*b2));
  auto types = partials[0].Types();
  auto final_agg = HashAggregate(MemoryScan(types, std::move(partials)), {0},
                                 aggs, AggMode::kFinal);
  auto merged = Collect(Sort(std::move(final_agg), {{0, false}}).get());
  auto single_agg =
      HashAggregate(ScanOf(IntBatch(all)), {0}, aggs, AggMode::kSingle);
  auto single = Collect(Sort(std::move(single_agg), {{0, false}}).get());
  ASSERT_TRUE(merged.ok());
  ASSERT_TRUE(single.ok());
  ASSERT_EQ(merged->num_rows(), single->num_rows());
  for (size_t i = 0; i < merged->num_rows(); ++i) {
    for (size_t c = 0; c < merged->num_columns(); ++c) {
      EXPECT_EQ(merged->columns[c].DatumAt(i).Compare(
                    single->columns[c].DatumAt(i)),
                0)
          << "row " << i << " col " << c;
    }
  }
}

TEST(OperatorTest, SortAscDescAndStability) {
  auto scan = ScanOf(IntBatch({{3, 1, 2, 1}, {0, 1, 2, 3}}));
  auto sorted = Sort(std::move(scan), {{0, false}, {1, true}});
  auto out = Collect(sorted.get());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->columns[0].IntAt(0), 1);
  EXPECT_EQ(out->columns[1].IntAt(0), 3);  // desc tie-break
  EXPECT_EQ(out->columns[1].IntAt(1), 1);
  EXPECT_EQ(out->columns[0].IntAt(3), 3);
}

TEST(OperatorTest, LimitTruncates) {
  auto scan = ScanOf(IntBatch({{1, 2, 3, 4, 5}}));
  auto limited = Limit(std::move(scan), 2);
  auto out = Collect(limited.get());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 2u);
  auto scan2 = ScanOf(IntBatch({{1, 2}}));
  auto limited2 = Limit(std::move(scan2), 10);
  EXPECT_EQ(Collect(limited2.get())->num_rows(), 2u);
}

// ---------------------------------------------------------------------------
// ShardScan + row executor equivalence
// ---------------------------------------------------------------------------

TableSchema SalesSchema() {
  return TableSchema("sales", {{"day", TypeId::kInt64},
                               {"store", TypeId::kInt64},
                               {"amount", TypeId::kDouble}});
}

void FillSales(storage::TableShard* shard, size_t n, uint64_t seed) {
  Rng rng(seed);
  ColumnVector day(TypeId::kInt64);
  ColumnVector store(TypeId::kInt64);
  ColumnVector amount(TypeId::kDouble);
  for (size_t i = 0; i < n; ++i) {
    day.AppendInt(static_cast<int64_t>(i / 10));
    store.AppendInt(rng.UniformRange(0, 9));
    amount.AppendDouble(rng.NextDouble() * 100);
  }
  std::vector<ColumnVector> run;
  run.push_back(std::move(day));
  run.push_back(std::move(store));
  run.push_back(std::move(amount));
  ASSERT_TRUE(shard->Append(run).ok());
}

TEST(ShardScanTest, ProjectsAndPrunes) {
  storage::BlockStore store;
  storage::StorageOptions opts;
  opts.max_rows_per_block = 128;
  storage::TableShard shard(SalesSchema(), opts, &store);
  FillSales(&shard, 2000, 3);
  // Scan day in [50, 52] with pruning.
  auto scan = ShardScan(&shard, {0, 2},
                        {{0, Datum::Int64(50), Datum::Int64(52)}});
  auto filtered = Filter(
      std::move(scan),
      And(Cmp(CmpOp::kGe, Col(0, TypeId::kInt64), Lit(Datum::Int64(50))),
          Cmp(CmpOp::kLe, Col(0, TypeId::kInt64), Lit(Datum::Int64(52)))));
  auto out = Collect(filtered.get());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 30u);  // 3 days x 10 rows
}

TEST(RowExecutorTest, MatchesVectorizedPipeline) {
  storage::BlockStore store;
  storage::StorageOptions opts;
  opts.max_rows_per_block = 256;
  storage::TableShard shard(SalesSchema(), opts, &store);
  FillSales(&shard, 3000, 7);

  auto predicate =
      Cmp(CmpOp::kEq, Col(1, TypeId::kInt64), Lit(Datum::Int64(4)));
  std::vector<AggSpec> aggs = {{AggFn::kCount, -1}, {AggFn::kSum, 2}};

  // Vectorized ("compiled") pipeline.
  auto vec = HashAggregate(
      Filter(ShardScan(&shard, {0, 1, 2}), predicate), {0}, aggs);
  auto vec_out = Collect(Sort(std::move(vec), {{0, false}}).get());
  ASSERT_TRUE(vec_out.ok());

  // Tuple-at-a-time (interpreted) pipeline.
  auto row_pipe =
      RowAggregate(RowFilter(RowScan(&shard, {0, 1, 2}), predicate), {0}, aggs);
  auto row_collected = CollectRows(
      row_pipe.get(), {TypeId::kInt64, TypeId::kInt64, TypeId::kDouble});
  ASSERT_TRUE(row_collected.ok());
  // Row groups come back in rendered-key order; normalize to numeric.
  std::vector<Batch> row_batches;
  auto row_types = row_collected->Types();
  row_batches.push_back(std::move(*row_collected));
  auto row_out = Collect(
      Sort(MemoryScan(row_types, std::move(row_batches)), {{0, false}}).get());
  ASSERT_TRUE(row_out.ok());

  ASSERT_EQ(vec_out->num_rows(), row_out->num_rows());
  for (size_t i = 0; i < vec_out->num_rows(); ++i) {
    EXPECT_EQ(vec_out->columns[0].IntAt(i), row_out->columns[0].IntAt(i));
    EXPECT_EQ(vec_out->columns[1].IntAt(i), row_out->columns[1].IntAt(i));
    EXPECT_NEAR(vec_out->columns[2].DoubleAt(i),
                row_out->columns[2].DoubleAt(i), 1e-6);
  }
}

TEST(OperatorTest, SortPlacesNullsFirst) {
  ColumnVector v(TypeId::kInt64);
  v.AppendInt(5);
  v.AppendNull();
  v.AppendInt(-1);
  v.AppendNull();
  Batch b;
  b.columns.push_back(std::move(v));
  auto types = b.Types();
  std::vector<Batch> batches;
  batches.push_back(std::move(b));
  auto sorted =
      Sort(MemoryScan(types, std::move(batches)), {{0, false}});
  auto out = Collect(sorted.get());
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->columns[0].IsNull(0));
  EXPECT_TRUE(out->columns[0].IsNull(1));
  EXPECT_EQ(out->columns[0].IntAt(2), -1);
  EXPECT_EQ(out->columns[0].IntAt(3), 5);
  // Descending flips them last.
  std::vector<Batch> batches2;
  Batch b2 = MakeBatch(types);
  SDW_CHECK_OK(b2.columns[0].AppendRange(out->columns[0], 0, 4));
  batches2.push_back(std::move(b2));
  auto desc = Collect(
      Sort(MemoryScan(types, std::move(batches2)), {{0, true}}).get());
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(desc->columns[0].IntAt(0), 5);
  EXPECT_TRUE(desc->columns[0].IsNull(3));
}

TEST(OperatorTest, LimitZeroAndEmptyInputs) {
  auto empty = MemoryScan({TypeId::kInt64}, {});
  auto limited = Limit(std::move(empty), 0);
  auto out = Collect(limited.get());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 0u);
  // Join against an empty build side yields nothing.
  auto probe = ScanOf(IntBatch({{1, 2, 3}}));
  auto build = MemoryScan({TypeId::kInt64}, {});
  auto join = HashJoin(std::move(probe), std::move(build), {0}, {0});
  auto jout = Collect(join.get());
  ASSERT_TRUE(jout.ok());
  EXPECT_EQ(jout->num_rows(), 0u);
}

TEST(OperatorTest, MultiColumnJoinKeys) {
  // Composite keys: (a, b) must match both components.
  auto probe = ScanOf(IntBatch({{1, 1, 2}, {10, 20, 10}, {7, 8, 9}}));
  auto build = ScanOf(IntBatch({{1, 2}, {10, 10}, {100, 200}}));
  auto join =
      HashJoin(std::move(probe), std::move(build), {0, 1}, {0, 1});
  auto out = Collect(join.get());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 2u);  // (1,10) and (2,10) match
  EXPECT_EQ(out->columns[2].IntAt(0), 7);
  EXPECT_EQ(out->columns[5].IntAt(0), 100);
  EXPECT_EQ(out->columns[2].IntAt(1), 9);
  EXPECT_EQ(out->columns[5].IntAt(1), 200);
}

TEST(ExprTest, StartsWithEmptyPrefixMatchesAll) {
  ColumnVector s(TypeId::kString);
  s.AppendString("");
  s.AppendString("abc");
  Batch b;
  b.columns.push_back(std::move(s));
  auto e = StartsWith(Col(0, TypeId::kString), "");
  auto r = e->EvalBatch(b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->IntAt(0), 1);
  EXPECT_EQ(r->IntAt(1), 1);
}

TEST(RowExecutorTest, ProjectAndFilter) {
  storage::BlockStore store;
  storage::TableShard shard(SalesSchema(), {}, &store);
  FillSales(&shard, 100, 1);
  auto pipe = RowProject(
      RowFilter(RowScan(&shard, {0, 1, 2}),
                Cmp(CmpOp::kLt, Col(0, TypeId::kInt64), Lit(Datum::Int64(2)))),
      {Arith(ArithOp::kAdd, Col(0, TypeId::kInt64), Col(1, TypeId::kInt64))});
  auto out = CollectRows(pipe.get(), {TypeId::kInt64});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 20u);
}

}  // namespace
}  // namespace sdw::exec
