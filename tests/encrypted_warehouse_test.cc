// The §3.2 encryption checkbox end to end: "Enabling encryption
// requires setting a checkbox ... we generate block-specific encryption
// keys ... wrap these with cluster-specific keys ... all user data,
// including backups, is encrypted." These tests verify plaintext never
// reaches the device or the object store, and that every managed
// operation (COPY, query, backup, restore, resize, VACUUM, rotation)
// keeps working with the box ticked.

#include <gtest/gtest.h>

#include "common/random.h"
#include "warehouse/warehouse.h"

namespace sdw::warehouse {
namespace {

WarehouseOptions EncryptedOptions() {
  WarehouseOptions options;
  options.cluster.num_nodes = 2;
  options.cluster.slices_per_node = 2;
  options.cluster.storage.max_rows_per_block = 256;
  options.encrypted = true;
  return options;
}

/// The canary string we expect to never appear in stored bytes.
constexpr char kCanary[] = "TOPSECRET-cleartext-canary";

bool ContainsCanary(const Bytes& data) {
  const std::string needle(kCanary);
  return std::search(data.begin(), data.end(), needle.begin(),
                     needle.end()) != data.end();
}

class EncryptedWarehouseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wh_ = std::make_unique<Warehouse>(EncryptedOptions());
    Must("CREATE TABLE secrets (id BIGINT, payload VARCHAR)");
    std::string sql = "INSERT INTO secrets VALUES ";
    for (int i = 0; i < 200; ++i) {
      if (i) sql += ", ";
      sql += "(" + std::to_string(i) + ", '" + kCanary + "-" +
             std::to_string(i) + "')";
    }
    Must(sql);
  }

  StatementResult Must(const std::string& sql) {
    auto r = wh_->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? std::move(*r) : StatementResult{};
  }

  int64_t Count() {
    return Must("SELECT COUNT(*) AS n FROM secrets").rows.columns[0].IntAt(0);
  }

  std::unique_ptr<Warehouse> wh_;
};

TEST_F(EncryptedWarehouseTest, PlaintextNeverTouchesTheDevice) {
  // Queries see cleartext...
  auto r = Must("SELECT payload FROM secrets WHERE id = 7");
  ASSERT_EQ(r.rows.num_rows(), 1u);
  EXPECT_NE(r.rows.columns[0].StringAt(0).find(kCanary), std::string::npos);
  // ...but every stored block is ciphertext.
  for (int n = 0; n < wh_->data_plane()->num_nodes(); ++n) {
    storage::BlockStore* store = wh_->data_plane()->node(n)->store();
    for (storage::BlockId id : store->ListIds()) {
      auto raw = store->GetRaw(id);
      ASSERT_TRUE(raw.ok());
      EXPECT_FALSE(ContainsCanary(*raw)) << "block " << id << " on node " << n;
    }
  }
}

TEST_F(EncryptedWarehouseTest, BackupsAreEncryptedToo) {
  auto backup = wh_->Backup();
  ASSERT_TRUE(backup.ok()) << backup.status();
  backup::S3Region* region = wh_->s3()->region("us-east-1");
  int blocks_checked = 0;
  for (const std::string& key : region->ListPrefix("simpledw/blocks/")) {
    auto object = region->GetObject(key);
    ASSERT_TRUE(object.ok());
    EXPECT_FALSE(ContainsCanary(*object)) << key;
    ++blocks_checked;
  }
  EXPECT_GT(blocks_checked, 0);
}

TEST_F(EncryptedWarehouseTest, StreamingRestoreDecryptsOnFault) {
  const int64_t expected = Count();
  auto backup = wh_->Backup();
  ASSERT_TRUE(backup.ok());
  Must("DROP TABLE secrets");
  ASSERT_TRUE(wh_->RestoreInPlace(backup->snapshot_id).ok());
  EXPECT_EQ(Count(), expected);
  auto r = Must("SELECT payload FROM secrets WHERE id = 42");
  EXPECT_NE(r.rows.columns[0].StringAt(0).find(kCanary), std::string::npos);
}

TEST_F(EncryptedWarehouseTest, ResizeReEncryptsOnTheTarget) {
  const int64_t expected = Count();
  auto stats = wh_->Resize(4);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(Count(), expected);
  // Target device holds ciphertext only.
  for (int n = 0; n < wh_->data_plane()->num_nodes(); ++n) {
    storage::BlockStore* store = wh_->data_plane()->node(n)->store();
    for (storage::BlockId id : store->ListIds()) {
      auto raw = store->GetRaw(id);
      ASSERT_TRUE(raw.ok());
      EXPECT_FALSE(ContainsCanary(*raw));
    }
  }
}

TEST_F(EncryptedWarehouseTest, KeyRotationIsTransparent) {
  const int64_t before = Count();
  const uint64_t keys_before = wh_->keys()->num_block_keys();
  ASSERT_TRUE(wh_->RotateKeys().ok());
  EXPECT_EQ(Count(), before);  // data untouched, reads still decrypt
  EXPECT_EQ(wh_->keys()->num_block_keys(), keys_before);
  // Writes after rotation work too.
  Must("INSERT INTO secrets VALUES (999, 'post-rotation')");
  EXPECT_EQ(Count(), before + 1);
}

TEST_F(EncryptedWarehouseTest, VacuumRewritesUnderEncryption) {
  for (int run = 0; run < 3; ++run) {
    Must("INSERT INTO secrets VALUES (" + std::to_string(1000 + run) +
         ", 'late')");
  }
  const int64_t before = Count();
  auto vacuum = Must("VACUUM secrets");
  EXPECT_NE(vacuum.message.find("rewritten"), std::string::npos);
  EXPECT_EQ(Count(), before);
}

TEST(EncryptionOffTest, RotationRequiresTheCheckbox) {
  WarehouseOptions options;
  options.cluster.num_nodes = 1;
  Warehouse wh(options);
  EXPECT_EQ(wh.RotateKeys().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(wh.keys(), nullptr);
}

}  // namespace
}  // namespace sdw::warehouse
