#include <gtest/gtest.h>

#include "backup/backup_manager.h"
#include "backup/manifest.h"
#include "backup/s3sim.h"
#include "cluster/executor.h"
#include "common/logging.h"
#include "common/random.h"
#include "plan/planner.h"

namespace sdw::backup {
namespace {

// ---------------------------------------------------------------------------
// S3 simulator
// ---------------------------------------------------------------------------

TEST(S3SimTest, PutGetListDelete) {
  S3 s3;
  S3Region* r = s3.region("us-east-1");
  ASSERT_TRUE(r->PutObject("a/1", {1}).ok());
  ASSERT_TRUE(r->PutObject("a/2", {2}).ok());
  ASSERT_TRUE(r->PutObject("b/1", {3}).ok());
  auto got = r->GetObject("a/2");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)[0], 2);
  EXPECT_EQ(r->ListPrefix("a/"),
            (std::vector<std::string>{"a/1", "a/2"}));
  ASSERT_TRUE(r->DeleteObject("a/1").ok());
  EXPECT_FALSE(r->HasObject("a/1"));
  EXPECT_EQ(r->GetObject("a/1").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r->num_objects(), 2u);
}

TEST(S3SimTest, OverwriteAccountsBytes) {
  S3 s3;
  S3Region* r = s3.region("x");
  ASSERT_TRUE(r->PutObject("k", Bytes(100)).ok());
  ASSERT_TRUE(r->PutObject("k", Bytes(40)).ok());
  EXPECT_EQ(r->total_bytes(), 40u);
}

TEST(S3SimTest, UnavailableRegionFailsButKeepsData) {
  S3 s3;
  S3Region* r = s3.region("x");
  ASSERT_TRUE(r->PutObject("k", {9}).ok());
  r->set_available(false);
  EXPECT_EQ(r->GetObject("k").status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(r->PutObject("j", {1}).code(), StatusCode::kUnavailable);
  r->set_available(true);
  EXPECT_TRUE(r->GetObject("k").ok());
}

TEST(S3SimTest, CrossRegionCopy) {
  S3 s3;
  ASSERT_TRUE(s3.region("east")->PutObject("c/1", {1}).ok());
  ASSERT_TRUE(s3.region("east")->PutObject("c/2", {2, 2}).ok());
  auto copied = s3.CopyPrefix("east", "c/", "west");
  ASSERT_TRUE(copied.ok());
  EXPECT_EQ(*copied, 3u);
  EXPECT_TRUE(s3.region("west")->HasObject("c/1"));
  EXPECT_TRUE(s3.region("west")->HasObject("c/2"));
}

// ---------------------------------------------------------------------------
// Manifest serde
// ---------------------------------------------------------------------------

TEST(ManifestTest, DatumRoundTrip) {
  for (const Datum& d :
       {Datum::Null(), Datum::Int64(-42), Datum::Int32(7), Datum::Bool(true),
        Datum::Date(12345), Datum::Double(3.25), Datum::String("hello")}) {
    Bytes out;
    SerializeDatum(d, &out);
    size_t pos = 0;
    auto back = DeserializeDatum(out, &pos);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->Compare(d), 0);
    EXPECT_EQ(pos, out.size());
  }
}

// ---------------------------------------------------------------------------
// Backup + restore end to end
// ---------------------------------------------------------------------------

cluster::ClusterConfig SmallConfig() {
  cluster::ClusterConfig config;
  config.num_nodes = 2;
  config.slices_per_node = 2;
  config.storage.max_rows_per_block = 128;
  config.storage.block_bytes = 16 * 1024;
  return config;
}

std::unique_ptr<cluster::Cluster> MakeLoadedCluster(size_t rows = 2000) {
  auto c = std::make_unique<cluster::Cluster>(SmallConfig());
  TableSchema schema("events", {{"ts", TypeId::kInt64},
                                {"kind", TypeId::kString},
                                {"value", TypeId::kDouble}});
  SDW_CHECK_OK(schema.SetSortKey(SortStyle::kCompound, {"ts"}));
  SDW_CHECK_OK(c->CreateTable(schema));
  Rng rng(3);
  ColumnVector ts(TypeId::kInt64);
  ColumnVector kind(TypeId::kString);
  ColumnVector value(TypeId::kDouble);
  for (size_t i = 0; i < rows; ++i) {
    ts.AppendInt(static_cast<int64_t>(i));
    kind.AppendString("kind-" + std::to_string(rng.Uniform(5)));
    value.AppendDouble(rng.NextDouble() * 10);
  }
  std::vector<ColumnVector> cols;
  cols.push_back(std::move(ts));
  cols.push_back(std::move(kind));
  cols.push_back(std::move(value));
  SDW_CHECK_OK(c->InsertRows("events", cols));
  SDW_CHECK_OK(c->Analyze("events"));
  return c;
}

uint64_t CountEvents(cluster::Cluster* c) {
  plan::LogicalQuery q;
  q.from_table = "events";
  q.select = {{plan::LogicalAggFn::kCountStar, {}, "n"}};
  plan::Planner planner(c->catalog());
  auto physical = planner.Plan(q);
  SDW_CHECK(physical.ok());
  cluster::QueryExecutor executor(c);
  auto r = executor.Execute(*physical);
  SDW_CHECK(r.ok()) << r.status();
  return static_cast<uint64_t>(r->rows.columns[0].IntAt(0));
}

TEST(BackupTest, ManifestRoundTripsThroughWire) {
  auto c = MakeLoadedCluster();
  auto manifest = CaptureManifest(c.get());
  ASSERT_TRUE(manifest.ok());
  manifest->snapshot_id = 7;
  Bytes wire;
  SerializeManifest(*manifest, &wire);
  auto back = DeserializeManifest(wire);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->snapshot_id, 7u);
  EXPECT_EQ(back->tables.size(), 1u);
  EXPECT_EQ(back->tables[0].schema.name(), "events");
  EXPECT_EQ(back->tables[0].schema.sort_style(), SortStyle::kCompound);
  EXPECT_EQ(back->tables[0].shards.size(), 4u);
  EXPECT_EQ(back->ReferencedBlocks().size(),
            manifest->ReferencedBlocks().size());
  // Zone maps survive the round trip.
  const auto& chain = back->tables[0].shards[0].chains[0];
  ASSERT_FALSE(chain.empty());
  EXPECT_TRUE(chain[0].zone.has_values());
}

TEST(BackupTest, BackupIsIncremental) {
  S3 s3;
  auto c = MakeLoadedCluster();
  BackupManager mgr(&s3, "us-east-1", "cluster-a");
  auto first = mgr.Backup(c.get());
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_GT(first->blocks_uploaded, 0u);
  EXPECT_EQ(first->blocks_skipped, 0u);

  // No new data: second backup uploads nothing.
  auto second = mgr.Backup(c.get());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->blocks_uploaded, 0u);
  EXPECT_EQ(second->blocks_skipped, first->blocks_uploaded);

  // Append new data: only the delta uploads.
  ColumnVector ts(TypeId::kInt64);
  ColumnVector kind(TypeId::kString);
  ColumnVector value(TypeId::kDouble);
  for (int i = 0; i < 100; ++i) {
    ts.AppendInt(100000 + i);
    kind.AppendString("new");
    value.AppendDouble(1.0);
  }
  std::vector<ColumnVector> cols;
  cols.push_back(std::move(ts));
  cols.push_back(std::move(kind));
  cols.push_back(std::move(value));
  ASSERT_TRUE(c->InsertRows("events", cols).ok());
  auto third = mgr.Backup(c.get());
  ASSERT_TRUE(third.ok());
  EXPECT_GT(third->blocks_uploaded, 0u);
  EXPECT_LT(third->blocks_uploaded, first->blocks_uploaded);
}

TEST(BackupTest, StreamingRestoreServesQueriesBeforeBlocksArrive) {
  S3 s3;
  auto c = MakeLoadedCluster();
  const uint64_t expected = CountEvents(c.get());
  BackupManager mgr(&s3, "us-east-1", "cluster-a");
  auto backup = mgr.Backup(c.get());
  ASSERT_TRUE(backup.ok());

  BackupManager::RestoreStats stats;
  auto restored = mgr.StreamingRestore(backup->snapshot_id, &stats);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_GT(stats.total_blocks, 0u);
  EXPECT_LT(stats.time_to_first_query_seconds, stats.full_restore_seconds);

  // No blocks are local yet.
  uint64_t resident = 0;
  for (int n = 0; n < (*restored)->num_nodes(); ++n) {
    resident += (*restored)->node(n)->store()->num_blocks();
  }
  EXPECT_EQ(resident, 0u);

  // Queries work immediately (blocks page-fault from S3).
  EXPECT_EQ(CountEvents(restored->get()), expected);

  // Faulted blocks are now cached locally.
  uint64_t after = 0;
  for (int n = 0; n < (*restored)->num_nodes(); ++n) {
    after += (*restored)->node(n)->store()->num_blocks();
  }
  EXPECT_GT(after, 0u);

  // Background restore completes the remainder.
  auto fetched = mgr.FinishRestore(restored->get(), backup->snapshot_id);
  ASSERT_TRUE(fetched.ok());
  uint64_t full = 0;
  for (int n = 0; n < (*restored)->num_nodes(); ++n) {
    full += (*restored)->node(n)->store()->num_blocks();
  }
  EXPECT_EQ(full, stats.total_blocks);
}

TEST(BackupTest, RestoredDataMatchesExactly) {
  S3 s3;
  auto c = MakeLoadedCluster(500);
  BackupManager mgr(&s3, "us-east-1", "cluster-a");
  auto backup = mgr.Backup(c.get());
  ASSERT_TRUE(backup.ok());
  auto restored = mgr.StreamingRestore(backup->snapshot_id);
  ASSERT_TRUE(restored.ok());
  for (int s = 0; s < c->total_slices(); ++s) {
    auto src = (*c->shard(s, "events"))->ReadAll({0, 1, 2});
    auto dst = (*(*restored)->shard(s, "events"))->ReadAll({0, 1, 2});
    ASSERT_TRUE(src.ok());
    ASSERT_TRUE(dst.ok());
    ASSERT_EQ((*src)[0].size(), (*dst)[0].size());
    for (size_t i = 0; i < (*src)[0].size(); ++i) {
      EXPECT_EQ((*src)[0].IntAt(i), (*dst)[0].IntAt(i));
      EXPECT_EQ((*src)[1].StringAt(i), (*dst)[1].StringAt(i));
      EXPECT_DOUBLE_EQ((*src)[2].DoubleAt(i), (*dst)[2].DoubleAt(i));
    }
  }
}

TEST(BackupTest, SnapshotAgingKeepsUserBackups) {
  S3 s3;
  auto c = MakeLoadedCluster(200);
  BackupManager mgr(&s3, "us-east-1", "cluster-a");
  ASSERT_TRUE(mgr.Backup(c.get(), /*user_initiated=*/false).ok());
  ASSERT_TRUE(mgr.Backup(c.get(), /*user_initiated=*/true).ok());
  ASSERT_TRUE(mgr.Backup(c.get(), false).ok());
  ASSERT_TRUE(mgr.Backup(c.get(), false).ok());
  EXPECT_EQ(mgr.ListSnapshots().size(), 4u);
  auto removed = mgr.AgeSystemBackups(1);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 2);  // two old system backups gone
  auto remaining = mgr.ListSnapshots();
  EXPECT_EQ(remaining.size(), 2u);
  // The user backup (id 2) survived.
  EXPECT_NE(std::find(remaining.begin(), remaining.end(), 2u),
            remaining.end());
}

TEST(BackupTest, GarbageCollectionDropsUnreferencedBlocks) {
  S3 s3;
  auto c = MakeLoadedCluster(500);
  BackupManager mgr(&s3, "us-east-1", "cluster-a");
  auto b1 = mgr.Backup(c.get());
  ASSERT_TRUE(b1.ok());
  const uint64_t blocks_before =
      s3.region("us-east-1")->ListPrefix("cluster-a/blocks/").size();
  ASSERT_TRUE(mgr.DeleteSnapshot(b1->snapshot_id).ok());
  auto reclaimed = mgr.CollectGarbage();
  ASSERT_TRUE(reclaimed.ok());
  EXPECT_GT(*reclaimed, 0u);
  EXPECT_EQ(s3.region("us-east-1")->ListPrefix("cluster-a/blocks/").size(),
            0u);
  EXPECT_GT(blocks_before, 0u);
}

TEST(BackupTest, DisasterRecoveryRestoreFromSecondRegion) {
  S3 s3;
  auto c = MakeLoadedCluster(400);
  const uint64_t expected = CountEvents(c.get());
  BackupManager mgr(&s3, "us-east-1", "cluster-a");
  auto backup = mgr.Backup(c.get());
  ASSERT_TRUE(backup.ok());
  // The §3.2 checkbox: replicate backups to a second region.
  auto copied = mgr.ReplicateToRegion("eu-west-1");
  ASSERT_TRUE(copied.ok());
  EXPECT_GT(*copied, 0u);

  // Primary region goes down; restore from the DR region still works.
  s3.region("us-east-1")->set_available(false);
  BackupManager::RestoreStats stats;
  auto restored =
      mgr.StreamingRestoreFromRegion("eu-west-1", backup->snapshot_id, &stats);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(CountEvents(restored->get()), expected);
}

TEST(BackupTest, S3CopyMasksLocalMediaFailure) {
  // §2.1: "the primary, secondary and Amazon S3 copies of the data
  // block are each available for read, making media failures
  // transparent." Here the local copy dies after a backup; wiring the
  // store's fault handler to the backup bucket keeps queries working.
  S3 s3;
  auto c = MakeLoadedCluster(800);
  const uint64_t expected = CountEvents(c.get());
  BackupManager mgr(&s3, "us-east-1", "cluster-a");
  auto backup = mgr.Backup(c.get());
  ASSERT_TRUE(backup.ok());

  // Media failure: node 0 loses every block.
  cluster::ComputeNode* node = c->node(0);
  for (storage::BlockId id : node->store()->ListIds()) {
    node->store()->DropForTest(id);
  }
  // Without the S3 leg, reads fail (drop the decode cache first: the
  // cache is per-scan warm state, not a durability mechanism).
  (*c->shard(0, "events"))->ResetCounters();
  (*c->shard(1, "events"))->ResetCounters();
  EXPECT_FALSE((*c->shard(0, "events"))->ReadAll({0}).ok());

  // With it, the failure is transparent.
  S3Region* region = s3.region("us-east-1");
  node->store()->set_fault_handler(
      [&mgr, region](storage::BlockId id) -> sdw::Result<Bytes> {
        return region->GetObject(mgr.BlockKey(id));
      });
  EXPECT_EQ(CountEvents(c.get()), expected);
  EXPECT_GT(node->store()->faults(), 0u);
}

TEST(BackupTest, RestoreFailsCleanlyWhenRegionDown) {
  S3 s3;
  auto c = MakeLoadedCluster(100);
  BackupManager mgr(&s3, "us-east-1", "cluster-a");
  auto backup = mgr.Backup(c.get());
  ASSERT_TRUE(backup.ok());
  s3.region("us-east-1")->set_available(false);
  auto restored = mgr.StreamingRestore(backup->snapshot_id);
  EXPECT_EQ(restored.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace sdw::backup
