#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "storage/block_store.h"
#include "storage/table_shard.h"
#include "storage/zone_map.h"

namespace sdw::storage {
namespace {

// ---------------------------------------------------------------------------
// BlockStore
// ---------------------------------------------------------------------------

TEST(BlockStoreTest, PutGetDelete) {
  BlockStore store;
  BlockId id = store.Allocate();
  Bytes data = {1, 2, 3, 4};
  ASSERT_TRUE(store.Put(id, data).ok());
  EXPECT_TRUE(store.Contains(id));
  auto got = store.Get(id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, data);
  ASSERT_TRUE(store.Delete(id).ok());
  EXPECT_FALSE(store.Contains(id));
  EXPECT_EQ(store.Delete(id).code(), StatusCode::kNotFound);
}

TEST(BlockStoreTest, BlocksAreImmutable) {
  BlockStore store;
  BlockId id = store.Allocate();
  ASSERT_TRUE(store.Put(id, {1}).ok());
  EXPECT_EQ(store.Put(id, {2}).code(), StatusCode::kAlreadyExists);
}

TEST(BlockStoreTest, ChecksumDetectsCorruption) {
  BlockStore store;
  BlockId id = store.Allocate();
  ASSERT_TRUE(store.Put(id, Bytes(100, 7)).ok());
  store.CorruptForTest(id);
  EXPECT_EQ(store.Get(id).status().code(), StatusCode::kCorruption);
}

TEST(BlockStoreTest, MissWithoutHandlerIsUnavailable) {
  BlockStore store;
  EXPECT_EQ(store.Get(42).status().code(), StatusCode::kUnavailable);
}

TEST(BlockStoreTest, FaultHandlerPagesBlockIn) {
  BlockStore store;
  int handler_calls = 0;
  store.set_fault_handler([&](BlockId id) -> Result<Bytes> {
    ++handler_calls;
    return Bytes{static_cast<uint8_t>(id), 9, 9};
  });
  auto got = store.Get(5);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)[0], 5);
  EXPECT_EQ(handler_calls, 1);
  EXPECT_EQ(store.faults(), 1u);
  // Second read is local: handler not called again.
  ASSERT_TRUE(store.Get(5).ok());
  EXPECT_EQ(handler_calls, 1);
}

TEST(BlockStoreTest, AccountsBytes) {
  BlockStore store;
  BlockId a = store.Allocate();
  BlockId b = store.Allocate();
  ASSERT_TRUE(store.Put(a, Bytes(100)).ok());
  ASSERT_TRUE(store.Put(b, Bytes(50)).ok());
  EXPECT_EQ(store.total_bytes(), 150u);
  EXPECT_EQ(store.num_blocks(), 2u);
  ASSERT_TRUE(store.Delete(a).ok());
  EXPECT_EQ(store.total_bytes(), 50u);
  EXPECT_EQ(store.ListIds(), (std::vector<BlockId>{b}));
}

// ---------------------------------------------------------------------------
// ZoneMap
// ---------------------------------------------------------------------------

TEST(ZoneMapTest, TracksMinMax) {
  ZoneMap zone;
  zone.Update(Datum::Int64(10));
  zone.Update(Datum::Int64(-5));
  zone.Update(Datum::Int64(3));
  EXPECT_EQ(zone.min(), Datum::Int64(-5));
  EXPECT_EQ(zone.max(), Datum::Int64(10));
}

TEST(ZoneMapTest, OverlapSemantics) {
  ZoneMap zone;
  zone.Update(Datum::Int64(10));
  zone.Update(Datum::Int64(20));
  EXPECT_TRUE(zone.MayOverlap(Datum::Int64(15), Datum::Int64(25)));
  EXPECT_TRUE(zone.MayOverlap(Datum::Int64(20), Datum::Int64(99)));
  EXPECT_FALSE(zone.MayOverlap(Datum::Int64(21), Datum::Int64(99)));
  EXPECT_FALSE(zone.MayOverlap(Datum::Int64(0), Datum::Int64(9)));
  // Unbounded sides.
  EXPECT_TRUE(zone.MayOverlap(Datum::Null(), Datum::Int64(10)));
  EXPECT_TRUE(zone.MayOverlap(Datum::Int64(10), Datum::Null()));
  EXPECT_TRUE(zone.MayOverlap(Datum::Null(), Datum::Null()));
  EXPECT_TRUE(zone.MayContain(Datum::Int64(15)));
  EXPECT_FALSE(zone.MayContain(Datum::Int64(5)));
}

TEST(ZoneMapTest, PureNullBlockNeverMatchesRanges) {
  ZoneMap zone;
  zone.Update(Datum::Null());
  EXPECT_TRUE(zone.has_nulls());
  EXPECT_FALSE(zone.has_values());
  EXPECT_FALSE(zone.MayOverlap(Datum::Null(), Datum::Null()));
}

TEST(ZoneMapTest, StringZones) {
  ZoneMap zone;
  zone.Update(Datum::String("banana"));
  zone.Update(Datum::String("cherry"));
  EXPECT_TRUE(zone.MayContain(Datum::String("blueberry")));
  EXPECT_FALSE(zone.MayContain(Datum::String("apple")));
}

// ---------------------------------------------------------------------------
// TableShard
// ---------------------------------------------------------------------------

TableSchema EventsSchema() {
  TableSchema s("events", {
                              {"ts", TypeId::kInt64},
                              {"user_id", TypeId::kInt64},
                              {"payload", TypeId::kString},
                          });
  return s;
}

std::vector<ColumnVector> MakeRun(int64_t start_ts, size_t n, uint64_t seed) {
  Rng rng(seed);
  ColumnVector ts(TypeId::kInt64);
  ColumnVector user(TypeId::kInt64);
  ColumnVector payload(TypeId::kString);
  for (size_t i = 0; i < n; ++i) {
    ts.AppendInt(start_ts + static_cast<int64_t>(i));
    user.AppendInt(rng.UniformRange(0, 999));
    payload.AppendString("p" + std::to_string(rng.Uniform(50)));
  }
  std::vector<ColumnVector> run;
  run.push_back(std::move(ts));
  run.push_back(std::move(user));
  run.push_back(std::move(payload));
  return run;
}

StorageOptions SmallBlocks() {
  StorageOptions opts;
  opts.block_bytes = 2048;  // many blocks from small data
  opts.max_rows_per_block = 256;
  return opts;
}

TEST(TableShardTest, AppendAndReadAll) {
  BlockStore store;
  TableShard shard(EventsSchema(), SmallBlocks(), &store);
  ASSERT_TRUE(shard.Append(MakeRun(0, 1000, 1)).ok());
  EXPECT_EQ(shard.row_count(), 1000u);
  EXPECT_GT(store.num_blocks(), 3u);  // chunked into multiple blocks
  auto cols = shard.ReadAll({0, 1, 2});
  ASSERT_TRUE(cols.ok());
  ASSERT_EQ((*cols)[0].size(), 1000u);
  EXPECT_EQ((*cols)[0].IntAt(0), 0);
  EXPECT_EQ((*cols)[0].IntAt(999), 999);
}

TEST(TableShardTest, MultipleRunsConcatenate) {
  BlockStore store;
  TableShard shard(EventsSchema(), SmallBlocks(), &store);
  ASSERT_TRUE(shard.Append(MakeRun(0, 300, 1)).ok());
  ASSERT_TRUE(shard.Append(MakeRun(300, 300, 2)).ok());
  EXPECT_EQ(shard.row_count(), 600u);
  auto cols = shard.ReadRange({0}, {295, 305});
  ASSERT_TRUE(cols.ok());
  ASSERT_EQ((*cols)[0].size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ((*cols)[0].IntAt(i), 295 + i);
}

TEST(TableShardTest, RejectsMalformedRuns) {
  BlockStore store;
  TableShard shard(EventsSchema(), SmallBlocks(), &store);
  auto run = MakeRun(0, 10, 1);
  run.pop_back();
  EXPECT_FALSE(shard.Append(run).ok());  // missing column
  auto ragged = MakeRun(0, 10, 1);
  ragged[1].AppendInt(11);
  EXPECT_FALSE(shard.Append(ragged).ok());  // ragged
  std::vector<ColumnVector> wrong_type;
  wrong_type.emplace_back(TypeId::kString);
  wrong_type.emplace_back(TypeId::kInt64);
  wrong_type.emplace_back(TypeId::kString);
  EXPECT_FALSE(shard.Append(wrong_type).ok());
}

TEST(TableShardTest, EmptyAppendIsNoop) {
  BlockStore store;
  TableShard shard(EventsSchema(), SmallBlocks(), &store);
  std::vector<ColumnVector> empty;
  empty.emplace_back(TypeId::kInt64);
  empty.emplace_back(TypeId::kInt64);
  empty.emplace_back(TypeId::kString);
  ASSERT_TRUE(shard.Append(empty).ok());
  EXPECT_EQ(shard.row_count(), 0u);
  EXPECT_TRUE(shard.CandidateRanges({}).empty());
}

TEST(TableShardTest, CandidateRangesPruneSortedColumn) {
  BlockStore store;
  TableShard shard(EventsSchema(), SmallBlocks(), &store);
  ASSERT_TRUE(shard.Append(MakeRun(0, 2000, 1)).ok());  // ts sorted 0..1999
  // Predicate on a narrow ts range must prune most blocks.
  RangePredicate pred{0, Datum::Int64(500), Datum::Int64(520)};
  auto ranges = shard.CandidateRanges({pred});
  ASSERT_FALSE(ranges.empty());
  uint64_t covered = 0;
  for (const auto& r : ranges) {
    covered += r.size();
    // Candidates must include all matching rows.
    EXPECT_LE(r.begin, 500u);
  }
  EXPECT_LT(covered, 2000u / 2);  // pruned more than half
  // All matching rows are inside some candidate.
  bool contains = false;
  for (const auto& r : ranges) {
    if (r.begin <= 500 && 521 <= r.end) contains = true;
  }
  EXPECT_TRUE(contains);
}

TEST(TableShardTest, NoPredicateScansEverything) {
  BlockStore store;
  TableShard shard(EventsSchema(), SmallBlocks(), &store);
  ASSERT_TRUE(shard.Append(MakeRun(0, 500, 1)).ok());
  auto ranges = shard.CandidateRanges({});
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (RowRange{0, 500}));
}

TEST(TableShardTest, ImpossiblePredicateYieldsNothing) {
  BlockStore store;
  TableShard shard(EventsSchema(), SmallBlocks(), &store);
  ASSERT_TRUE(shard.Append(MakeRun(0, 500, 1)).ok());
  RangePredicate pred{0, Datum::Int64(10000), Datum::Int64(20000)};
  EXPECT_TRUE(shard.CandidateRanges({pred}).empty());
}

TEST(TableShardTest, ConjunctionIntersectsRanges) {
  BlockStore store;
  TableShard shard(EventsSchema(), SmallBlocks(), &store);
  ASSERT_TRUE(shard.Append(MakeRun(0, 2000, 1)).ok());
  RangePredicate p1{0, Datum::Int64(100), Datum::Int64(1900)};
  RangePredicate p2{0, Datum::Int64(1000), Datum::Int64(1100)};
  auto both = shard.CandidateRanges({p1, p2});
  auto narrow = shard.CandidateRanges({p2});
  uint64_t both_rows = 0;
  uint64_t narrow_rows = 0;
  for (const auto& r : both) both_rows += r.size();
  for (const auto& r : narrow) narrow_rows += r.size();
  EXPECT_EQ(both_rows, narrow_rows);  // p2 subsumes p1
}

TEST(TableShardTest, ScanVerifiesAgainstFullScan) {
  // Property: zone-map pruned scan returns exactly the rows a full scan
  // plus filter returns.
  BlockStore store;
  TableShard shard(EventsSchema(), SmallBlocks(), &store);
  // Semi-sorted data: sorted ts with occasional jitter.
  Rng rng(9);
  ColumnVector ts(TypeId::kInt64);
  ColumnVector user(TypeId::kInt64);
  ColumnVector payload(TypeId::kString);
  for (int i = 0; i < 3000; ++i) {
    ts.AppendInt(i + rng.UniformRange(-3, 3));
    user.AppendInt(rng.UniformRange(0, 99));
    payload.AppendString("x");
  }
  std::vector<ColumnVector> run;
  run.push_back(std::move(ts));
  run.push_back(std::move(user));
  run.push_back(std::move(payload));
  ASSERT_TRUE(shard.Append(run).ok());

  for (int64_t lo : {0, 500, 1500, 2990}) {
    const int64_t hi = lo + 40;
    RangePredicate pred{0, Datum::Int64(lo), Datum::Int64(hi)};
    // Pruned scan.
    std::vector<int64_t> pruned;
    for (const auto& range : shard.CandidateRanges({pred})) {
      auto cols = shard.ReadRange({0}, range);
      ASSERT_TRUE(cols.ok());
      for (size_t i = 0; i < (*cols)[0].size(); ++i) {
        int64_t v = (*cols)[0].IntAt(i);
        if (v >= lo && v <= hi) pruned.push_back(v);
      }
    }
    // Full scan.
    std::vector<int64_t> full;
    auto cols = shard.ReadAll({0});
    ASSERT_TRUE(cols.ok());
    for (size_t i = 0; i < (*cols)[0].size(); ++i) {
      int64_t v = (*cols)[0].IntAt(i);
      if (v >= lo && v <= hi) full.push_back(v);
    }
    EXPECT_EQ(pruned, full) << "range [" << lo << "," << hi << "]";
  }
}

TEST(TableShardTest, BlockSkippingReducesDecodes) {
  BlockStore store;
  TableShard shard(EventsSchema(), SmallBlocks(), &store);
  ASSERT_TRUE(shard.Append(MakeRun(0, 4000, 1)).ok());
  shard.ResetCounters();
  // Narrow predicate on the sorted column.
  RangePredicate pred{0, Datum::Int64(2000), Datum::Int64(2010)};
  for (const auto& range : shard.CandidateRanges({pred})) {
    ASSERT_TRUE(shard.ReadRange({0}, range).ok());
  }
  uint64_t pruned_decodes = shard.blocks_decoded();
  shard.ResetCounters();
  ASSERT_TRUE(shard.ReadAll({0}).ok());
  uint64_t full_decodes = shard.blocks_decoded();
  EXPECT_LT(pruned_decodes * 4, full_decodes);
}

TEST(TableShardTest, ReadRangeBoundsChecked) {
  BlockStore store;
  TableShard shard(EventsSchema(), SmallBlocks(), &store);
  ASSERT_TRUE(shard.Append(MakeRun(0, 100, 1)).ok());
  EXPECT_FALSE(shard.ReadRange({0}, {0, 200}).ok());
  EXPECT_FALSE(shard.ReadRange({7}, {0, 10}).ok());
  EXPECT_FALSE(shard.ReadRange({-1}, {0, 10}).ok());
}

TEST(TableShardTest, AllBlockIdsCoverChains) {
  BlockStore store;
  TableShard shard(EventsSchema(), SmallBlocks(), &store);
  ASSERT_TRUE(shard.Append(MakeRun(0, 1000, 1)).ok());
  auto ids = shard.AllBlockIds();
  EXPECT_EQ(ids.size(), store.num_blocks());
  for (BlockId id : ids) EXPECT_TRUE(store.Contains(id));
}

TEST(TableShardTest, EncodedColumnsUseSchemaEncoding) {
  TableSchema schema = EventsSchema();
  schema.SetColumnEncoding(0, ColumnEncoding::kDelta);
  schema.SetColumnEncoding(2, ColumnEncoding::kBytedict);
  BlockStore store_encoded;
  TableShard encoded(schema, SmallBlocks(), &store_encoded);
  ASSERT_TRUE(encoded.Append(MakeRun(0, 2000, 1)).ok());

  BlockStore store_raw;
  TableShard raw(EventsSchema(), SmallBlocks(), &store_raw);
  ASSERT_TRUE(raw.Append(MakeRun(0, 2000, 1)).ok());

  EXPECT_LT(encoded.encoded_bytes(), raw.encoded_bytes());
  // And data still reads back identically.
  auto a = encoded.ReadAll({0, 2});
  auto b = raw.ReadAll({0, 2});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < (*a)[0].size(); ++i) {
    EXPECT_EQ((*a)[0].IntAt(i), (*b)[0].IntAt(i));
    EXPECT_EQ((*a)[1].StringAt(i), (*b)[1].StringAt(i));
  }
}

}  // namespace
}  // namespace sdw::storage
