// Serial (pool_size = 0) vs parallel execution must be observationally
// identical: same rows, same blocks_decoded, same network accounting —
// across scan, co-located / broadcast / shuffle joins, and aggregates.
// Also the shuffle-join regression tests: an empty side must produce an
// empty (not crashing) join, and shuffle network accounting must use
// real wire sizes (EstimateBytes), consistent with the broadcast path.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>

#include "cluster/cluster.h"
#include "cluster/executor.h"
#include "common/logging.h"
#include "common/random.h"
#include "load/copy.h"
#include "plan/planner.h"

namespace sdw::cluster {
namespace {

constexpr int kParallelPool = 4;

ClusterConfig Config(int nodes = 2, int slices = 2) {
  ClusterConfig config;
  config.num_nodes = nodes;
  config.slices_per_node = slices;
  config.storage.max_rows_per_block = 256;
  config.storage.block_bytes = 64 * 1024;
  return config;
}

/// fact(k, v, tag) / dim(id, grp, name): tag/name are varchar so the
/// network-accounting tests can observe string wire sizes.
void CreateTables(Cluster* cluster, DistStyle fact_style, DistStyle dim_style) {
  TableSchema fact("fact", {{"k", TypeId::kInt64},
                            {"v", TypeId::kInt64},
                            {"tag", TypeId::kString}});
  if (fact_style == DistStyle::kKey) {
    SDW_CHECK_OK(fact.SetDistKey("k"));
  } else {
    fact.SetDistStyle(fact_style);
  }
  SDW_CHECK_OK(cluster->CreateTable(fact));

  TableSchema dim("dim", {{"id", TypeId::kInt64},
                          {"grp", TypeId::kInt64},
                          {"name", TypeId::kString}});
  if (dim_style == DistStyle::kKey) {
    SDW_CHECK_OK(dim.SetDistKey("id"));
  } else {
    dim.SetDistStyle(dim_style);
  }
  SDW_CHECK_OK(cluster->CreateTable(dim));
}

void LoadData(Cluster* cluster, size_t fact_rows, size_t dim_rows) {
  Rng rng(7);
  if (fact_rows > 0) {
    ColumnVector k(TypeId::kInt64), v(TypeId::kInt64), tag(TypeId::kString);
    for (size_t i = 0; i < fact_rows; ++i) {
      k.AppendInt(rng.UniformRange(0, static_cast<int>(dim_rows ? dim_rows : 64) - 1));
      v.AppendInt(rng.UniformRange(0, 999));
      tag.AppendString("tag-" + std::string(60, 'x') +
                       std::to_string(rng.UniformRange(0, 9)));
    }
    std::vector<ColumnVector> cols;
    cols.push_back(std::move(k));
    cols.push_back(std::move(v));
    cols.push_back(std::move(tag));
    SDW_CHECK_OK(cluster->InsertRows("fact", cols));
    SDW_CHECK_OK(cluster->Analyze("fact"));
  }
  if (dim_rows > 0) {
    ColumnVector id(TypeId::kInt64), grp(TypeId::kInt64),
        name(TypeId::kString);
    for (size_t i = 0; i < dim_rows; ++i) {
      id.AppendInt(static_cast<int64_t>(i));
      grp.AppendInt(static_cast<int64_t>(i % 13));
      name.AppendString("name-" + std::string(200, 'y') + std::to_string(i));
    }
    std::vector<ColumnVector> cols;
    cols.push_back(std::move(id));
    cols.push_back(std::move(grp));
    cols.push_back(std::move(name));
    SDW_CHECK_OK(cluster->InsertRows("dim", cols));
    SDW_CHECK_OK(cluster->Analyze("dim"));
  }
}

/// All rows of a batch, sorted lexicographically so comparisons do not
/// depend on slice interleaving (the leader sort a client would add).
std::vector<Row> CanonicalRows(const exec::Batch& batch) {
  std::vector<Row> rows;
  rows.reserve(batch.num_rows());
  for (size_t i = 0; i < batch.num_rows(); ++i) rows.push_back(batch.RowAt(i));
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    for (size_t c = 0; c < a.size(); ++c) {
      const int cmp = a[c].Compare(b[c]);
      if (cmp != 0) return cmp < 0;
    }
    return false;
  });
  return rows;
}

void ExpectSameRows(const exec::Batch& a, const exec::Batch& b) {
  ASSERT_EQ(a.num_columns(), b.num_columns());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  const std::vector<Row> ra = CanonicalRows(a);
  const std::vector<Row> rb = CanonicalRows(b);
  for (size_t i = 0; i < ra.size(); ++i) {
    for (size_t c = 0; c < ra[i].size(); ++c) {
      EXPECT_EQ(ra[i][c].Compare(rb[i][c]), 0)
          << "row " << i << " column " << c << " differs";
    }
  }
}

/// Runs `logical` serially then in parallel on the same cluster and
/// asserts identical rows, blocks_decoded and network accounting.
void CheckDeterminism(Cluster* cluster, const plan::LogicalQuery& logical,
                      plan::PlannerOptions planner_options = {}) {
  plan::Planner planner(cluster->catalog(), planner_options);
  auto physical = planner.Plan(logical);
  ASSERT_TRUE(physical.ok()) << physical.status();

  ExecOptions serial_opts;
  serial_opts.pool_size = 0;
  QueryExecutor serial(cluster, serial_opts);
  auto serial_result = serial.Execute(*physical);
  ASSERT_TRUE(serial_result.ok()) << serial_result.status();

  ExecOptions parallel_opts;
  parallel_opts.pool_size = kParallelPool;
  QueryExecutor parallel(cluster, parallel_opts);
  auto parallel_result = parallel.Execute(*physical);
  ASSERT_TRUE(parallel_result.ok()) << parallel_result.status();

  ExpectSameRows(serial_result->rows, parallel_result->rows);
  EXPECT_EQ(serial_result->stats.blocks_decoded,
            parallel_result->stats.blocks_decoded);
  EXPECT_EQ(serial_result->stats.network_bytes,
            parallel_result->stats.network_bytes);
}

TEST(ParallelExecTest, ScanOnlyDeterministic) {
  Cluster cluster(Config());
  CreateTables(&cluster, DistStyle::kEven, DistStyle::kEven);
  LoadData(&cluster, 4000, 200);
  plan::LogicalQuery q;
  q.from_table = "fact";
  q.where = {{{"", "v"}, plan::LogicalCmp::kLt, Datum::Int64(500)}};
  q.select = {{plan::LogicalAggFn::kNone, {"", "k"}, ""},
              {plan::LogicalAggFn::kNone, {"", "v"}, ""},
              {plan::LogicalAggFn::kNone, {"", "tag"}, ""}};
  CheckDeterminism(&cluster, q);
}

TEST(ParallelExecTest, AggregateDeterministic) {
  Cluster cluster(Config());
  CreateTables(&cluster, DistStyle::kEven, DistStyle::kEven);
  LoadData(&cluster, 4000, 200);
  plan::LogicalQuery q;
  q.from_table = "fact";
  q.select = {{plan::LogicalAggFn::kNone, {"", "k"}, ""},
              {plan::LogicalAggFn::kCountStar, {}, "n"},
              {plan::LogicalAggFn::kSum, {"", "v"}, "s"},
              {plan::LogicalAggFn::kMin, {"", "v"}, "lo"},
              {plan::LogicalAggFn::kMax, {"", "v"}, "hi"}};
  q.group_by = {{"", "k"}};
  CheckDeterminism(&cluster, q);
}

plan::LogicalQuery JoinQuery() {
  plan::LogicalQuery q;
  q.from_table = "fact";
  q.join_table = "dim";
  q.join_left = {"fact", "k"};
  q.join_right = {"dim", "id"};
  q.select = {{plan::LogicalAggFn::kNone, {"dim", "grp"}, ""},
              {plan::LogicalAggFn::kCountStar, {}, "n"},
              {plan::LogicalAggFn::kSum, {"fact", "v"}, "s"}};
  q.group_by = {{"dim", "grp"}};
  return q;
}

TEST(ParallelExecTest, CoLocatedJoinDeterministic) {
  Cluster cluster(Config());
  CreateTables(&cluster, DistStyle::kKey, DistStyle::kKey);
  LoadData(&cluster, 4000, 200);
  CheckDeterminism(&cluster, JoinQuery());
}

TEST(ParallelExecTest, BroadcastJoinDeterministic) {
  Cluster cluster(Config());
  CreateTables(&cluster, DistStyle::kEven, DistStyle::kEven);
  LoadData(&cluster, 4000, 200);
  CheckDeterminism(&cluster, JoinQuery());  // dim is small -> broadcast
}

TEST(ParallelExecTest, ShuffleJoinDeterministic) {
  Cluster cluster(Config());
  CreateTables(&cluster, DistStyle::kEven, DistStyle::kEven);
  LoadData(&cluster, 4000, 200);
  CheckDeterminism(&cluster, JoinQuery(),
                   {.broadcast_row_threshold = 1});  // force shuffle
}

TEST(ParallelExecTest, InterpretedModeDeterministic) {
  Cluster cluster(Config());
  CreateTables(&cluster, DistStyle::kEven, DistStyle::kEven);
  LoadData(&cluster, 4000, 200);
  plan::LogicalQuery q;
  q.from_table = "fact";
  q.where = {{{"", "v"}, plan::LogicalCmp::kGe, Datum::Int64(100)}};
  q.select = {{plan::LogicalAggFn::kNone, {"", "k"}, ""},
              {plan::LogicalAggFn::kCountStar, {}, "n"}};
  q.group_by = {{"", "k"}};
  plan::Planner planner(cluster.catalog());
  auto physical = planner.Plan(q);
  ASSERT_TRUE(physical.ok());

  ExecOptions serial{ExecutionMode::kInterpreted, 0.0, 0};
  auto serial_result = QueryExecutor(&cluster, serial).Execute(*physical);
  ASSERT_TRUE(serial_result.ok());
  ExecOptions parallel{ExecutionMode::kInterpreted, 0.0, kParallelPool};
  auto parallel_result = QueryExecutor(&cluster, parallel).Execute(*physical);
  ASSERT_TRUE(parallel_result.ok());
  ExpectSameRows(serial_result->rows, parallel_result->rows);
  EXPECT_EQ(serial_result->stats.blocks_decoded,
            parallel_result->stats.blocks_decoded);
}

// --- Shuffle-join empty-side regressions (used to crash: per-target
// buckets were only allocated once the first batch arrived). ---

/// fact JOIN dim with an explicitly shuffled strategy, built by hand so
/// the strategy does not depend on stats.
plan::PhysicalQuery ManualShuffleJoin() {
  plan::PhysicalQuery q;
  q.scan.table = "fact";
  q.scan.columns = {0, 1};
  plan::JoinSpec join;
  join.build.table = "dim";
  join.build.columns = {0, 1};
  join.probe_keys = {0};
  join.build_keys = {0};
  join.strategy = plan::JoinStrategy::kShuffle;
  q.join = join;
  q.output_names = {"k", "v", "id", "grp"};
  return q;
}

TEST(ParallelExecTest, ShuffleJoinEmptyBuildSide) {
  for (int pool_size : {0, kParallelPool}) {
    Cluster cluster(Config());
    CreateTables(&cluster, DistStyle::kEven, DistStyle::kEven);
    LoadData(&cluster, 500, /*dim_rows=*/0);  // build side empty
    ExecOptions opts;
    opts.pool_size = pool_size;
    QueryExecutor executor(&cluster, opts);
    auto result = executor.Execute(ManualShuffleJoin());
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->rows.num_rows(), 0u);
    EXPECT_EQ(result->rows.num_columns(), 4u);
  }
}

TEST(ParallelExecTest, ShuffleJoinEmptyProbeSide) {
  for (int pool_size : {0, kParallelPool}) {
    Cluster cluster(Config());
    CreateTables(&cluster, DistStyle::kEven, DistStyle::kEven);
    LoadData(&cluster, /*fact_rows=*/0, 300);  // probe side empty
    ExecOptions opts;
    opts.pool_size = pool_size;
    QueryExecutor executor(&cluster, opts);
    auto result = executor.Execute(ManualShuffleJoin());
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->rows.num_rows(), 0u);
  }
}

TEST(ParallelExecTest, ShuffleJoinBothSidesEmpty) {
  Cluster cluster(Config());
  CreateTables(&cluster, DistStyle::kEven, DistStyle::kEven);
  QueryExecutor executor(&cluster);
  auto result = executor.Execute(ManualShuffleJoin());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.num_rows(), 0u);
}

// --- Shuffle network accounting: EstimateBytes-based, consistent with
// the broadcast path. ---

uint64_t SideBytes(Cluster* cluster, const std::string& table,
                   const std::vector<int>& columns) {
  uint64_t total = 0;
  for (int s = 0; s < cluster->total_slices(); ++s) {
    auto shard = cluster->shard(s, table);
    SDW_CHECK(shard.ok());
    auto data = (*shard)->ReadAll(columns);
    SDW_CHECK(data.ok());
    total += EstimateBytes(*data);
  }
  return total;
}

TEST(ParallelExecTest, ShuffleAccountingConsistentWithBroadcast) {
  Cluster cluster(Config(2, 1));
  CreateTables(&cluster, DistStyle::kEven, DistStyle::kEven);
  LoadData(&cluster, 3000, 600);

  // Join without aggregation, selecting every pipeline column in
  // pipeline order (probe then build), so the leader projection is the
  // identity and leader-return bytes are observable from the result.
  plan::LogicalQuery q;
  q.from_table = "fact";
  q.join_table = "dim";
  q.join_left = {"fact", "k"};
  q.join_right = {"dim", "id"};
  q.select = {{plan::LogicalAggFn::kNone, {"fact", "k"}, ""},
              {plan::LogicalAggFn::kNone, {"fact", "v"}, ""},
              {plan::LogicalAggFn::kNone, {"dim", "id"}, ""},
              {plan::LogicalAggFn::kNone, {"dim", "name"}, ""}};

  plan::Planner broadcast_planner(cluster.catalog());
  auto broadcast_plan = broadcast_planner.Plan(q);
  ASSERT_TRUE(broadcast_plan.ok());
  ASSERT_EQ(broadcast_plan->join->strategy,
            plan::JoinStrategy::kBroadcastBuild);
  plan::Planner shuffle_planner(cluster.catalog(),
                                {.broadcast_row_threshold = 1});
  auto shuffle_plan = shuffle_planner.Plan(q);
  ASSERT_TRUE(shuffle_plan.ok());
  ASSERT_EQ(shuffle_plan->join->strategy, plan::JoinStrategy::kShuffle);

  QueryExecutor executor(&cluster);
  auto broadcast_result = executor.Execute(*broadcast_plan);
  ASSERT_TRUE(broadcast_result.ok());
  auto shuffle_result = executor.Execute(*shuffle_plan);
  ASSERT_TRUE(shuffle_result.ok());

  // Both strategies join the same rows, so they return the same bytes
  // to the leader; what differs is the pre-pass movement.
  const uint64_t leader_bytes =
      EstimateBytes(broadcast_result->rows.columns);
  ASSERT_EQ(leader_bytes, EstimateBytes(shuffle_result->rows.columns));

  // Broadcast moves the whole (projected) build side to the other node.
  const uint64_t build_bytes =
      SideBytes(&cluster, "dim", broadcast_plan->join->build.columns);
  const uint64_t probe_bytes =
      SideBytes(&cluster, "fact", broadcast_plan->scan.columns);
  EXPECT_EQ(broadcast_result->stats.network_bytes,
            build_bytes * (cluster.num_nodes() - 1) + leader_bytes);

  // Shuffle moves the cross-node share of both sides, measured with the
  // same EstimateBytes yardstick: strictly more than the old flat
  // 8-bytes-per-column guess could ever charge (the dim rows carry wide
  // varchars), strictly less than shipping both sides entirely.
  const uint64_t moved =
      shuffle_result->stats.network_bytes - leader_bytes;
  const uint64_t total_rows = 3000 + 600;
  EXPECT_GT(moved, total_rows * 8 * 2);  // flat estimate, all rows moved
  EXPECT_LT(moved, probe_bytes + build_bytes);
  EXPECT_GT(moved, (probe_bytes + build_bytes) / 4);  // ~half for 2 nodes
}

// --- COPY: parallel per-file parse loads byte-identical data. ---

TEST(ParallelExecTest, ParallelCopyDeterministic) {
  std::vector<std::string> payloads;
  Rng rng(11);
  for (int f = 0; f < 8; ++f) {
    std::string csv;
    for (int r = 0; r < 200; ++r) {
      csv += std::to_string(rng.UniformRange(0, 99)) + "," +
             std::to_string(rng.UniformRange(0, 999)) + ",tag" +
             std::to_string(rng.UniformRange(0, 9)) + "\n";
    }
    payloads.push_back(std::move(csv));
  }

  auto run = [&](int pool_size) {
    auto cluster = std::make_unique<Cluster>(Config());
    CreateTables(cluster.get(), DistStyle::kEven, DistStyle::kEven);
    load::CopyExecutor copy(cluster.get(), nullptr);
    load::CopyOptions options;
    options.pool_size = pool_size;
    auto stats = copy.CopyFromPayloads("fact", payloads, options);
    SDW_CHECK(stats.ok()) << stats.status();
    EXPECT_EQ(stats->rows_loaded, 8u * 200u);
    return cluster;
  };
  auto serial_cluster = run(0);
  auto parallel_cluster = run(kParallelPool);

  plan::LogicalQuery q;
  q.from_table = "fact";
  q.select = {{plan::LogicalAggFn::kNone, {"", "k"}, ""},
              {plan::LogicalAggFn::kNone, {"", "v"}, ""},
              {plan::LogicalAggFn::kNone, {"", "tag"}, ""}};
  auto run_query = [&](Cluster* cluster) {
    plan::Planner planner(cluster->catalog());
    auto physical = planner.Plan(q);
    SDW_CHECK(physical.ok());
    QueryExecutor executor(cluster);
    auto result = executor.Execute(*physical);
    SDW_CHECK(result.ok());
    return std::move(result->rows);
  };
  exec::Batch serial_rows = run_query(serial_cluster.get());
  exec::Batch parallel_rows = run_query(parallel_cluster.get());
  ExpectSameRows(serial_rows, parallel_rows);
  // Same distribution too, not just the same multiset of rows.
  for (int s = 0; s < serial_cluster->total_slices(); ++s) {
    auto a = serial_cluster->shard(s, "fact");
    auto b = parallel_cluster->shard(s, "fact");
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ((*a)->row_count(), (*b)->row_count()) << "slice " << s;
  }
}

// --- Fault tolerance under the slice pool: masked replica reads and
// retried S3 fetches must stay deterministic when slices race. ---

TEST(ParallelExecTest, ReplicatedClusterWithFailedNodeDeterministic) {
  ClusterConfig config = Config(4, 2);
  config.replicate = true;
  Cluster cluster(config);
  CreateTables(&cluster, DistStyle::kKey, DistStyle::kKey);
  LoadData(&cluster, 4000, 200);
  ASSERT_NE(cluster.replication(), nullptr);

  cluster.FailNode(1);
  CheckDeterminism(&cluster, JoinQuery());
  EXPECT_GT(cluster.masked_reads(), 0u)
      << "the serial arm reads through replica masking";

  // The pool's concurrent faults of one block share a single fetch, so
  // the per-store fault counters equal the block population, not the
  // (racy) reader count.
  Cluster fresh(config);
  CreateTables(&fresh, DistStyle::kKey, DistStyle::kKey);
  LoadData(&fresh, 4000, 200);
  const uint64_t node1_blocks = fresh.node(1)->store()->num_blocks();
  fresh.FailNode(1);
  ExecOptions parallel_opts;
  parallel_opts.pool_size = kParallelPool;
  plan::Planner planner(fresh.catalog());
  auto physical = planner.Plan(JoinQuery());
  ASSERT_TRUE(physical.ok());
  auto result = QueryExecutor(&fresh, parallel_opts).Execute(*physical);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LE(fresh.node(1)->store()->faults(), node1_blocks);
  EXPECT_GT(result->stats.masked_reads, 0u);
}

TEST(ParallelExecTest, ParallelCopyWithTransientS3FaultsDeterministic) {
  backup::S3 s3;
  backup::S3Region* region = s3.region("us-east-1");
  Rng rng(13);
  for (int f = 0; f < 6; ++f) {
    std::string csv;
    for (int r = 0; r < 150; ++r) {
      csv += std::to_string(rng.UniformRange(0, 99)) + "," +
             std::to_string(rng.UniformRange(0, 999)) + ",t" +
             std::to_string(rng.UniformRange(0, 9)) + "\n";
    }
    SDW_CHECK_OK(region->PutObject("bkt/in/part-" + std::to_string(f),
                                   Bytes(csv.begin(), csv.end())));
  }

  auto run = [&](int pool_size) {
    auto cluster = std::make_unique<Cluster>(Config());
    CreateTables(cluster.get(), DistStyle::kEven, DistStyle::kEven);
    // Same scripted outage for both arms: the first fetches hit a
    // 2-call S3 blip that bounded retry absorbs.
    region->fault_point()->FailNext(2);
    load::CopyExecutor copy(cluster.get(), &s3);
    load::CopyOptions options;
    options.pool_size = pool_size;
    auto stats = copy.CopyFromUri("fact", "s3://bkt/in/", options);
    SDW_CHECK(stats.ok()) << stats.status();
    EXPECT_EQ(stats->rows_loaded, 6u * 150u);
    EXPECT_EQ(stats->s3_retry_attempts, 2);
    return cluster;
  };
  auto serial_cluster = run(0);
  auto parallel_cluster = run(kParallelPool);

  plan::LogicalQuery q;
  q.from_table = "fact";
  q.select = {{plan::LogicalAggFn::kNone, {"", "k"}, ""},
              {plan::LogicalAggFn::kNone, {"", "v"}, ""},
              {plan::LogicalAggFn::kNone, {"", "tag"}, ""}};
  auto rows_of = [&](Cluster* cluster) {
    plan::Planner planner(cluster->catalog());
    auto physical = planner.Plan(q);
    SDW_CHECK(physical.ok());
    auto result = QueryExecutor(cluster).Execute(*physical);
    SDW_CHECK(result.ok());
    return std::move(result->rows);
  };
  exec::Batch serial_rows = rows_of(serial_cluster.get());
  exec::Batch parallel_rows = rows_of(parallel_cluster.get());
  ExpectSameRows(serial_rows, parallel_rows);
}

}  // namespace
}  // namespace sdw::cluster
