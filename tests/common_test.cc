#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/units.h"

namespace sdw {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad knob");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad knob");
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_FALSE(Status::NotFound("x").IsCorruption());
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  SDW_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(3).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kOutOfRange);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoublePositive(int x) {
  SDW_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);
  Result<int> err = ParsePositive(-3);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*DoublePositive(21), 42);
  EXPECT_FALSE(DoublePositive(0).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).ValueOrDie();
  EXPECT_EQ(*p, 7);
}

TEST(BytesTest, FixedRoundTrip) {
  Bytes b;
  PutFixed32(&b, 0xdeadbeefu);
  PutFixed64(&b, 0x0123456789abcdefull);
  ASSERT_EQ(b.size(), 12u);
  EXPECT_EQ(GetFixed32(b.data()), 0xdeadbeefu);
  EXPECT_EQ(GetFixed64(b.data() + 4), 0x0123456789abcdefull);
}

TEST(BytesTest, VarintRoundTripProperty) {
  Rng rng(1);
  Bytes b;
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                  UINT64_MAX, UINT64_MAX - 1};
  for (int i = 0; i < 1000; ++i) values.push_back(rng.Next() >> rng.Uniform(64));
  for (uint64_t v : values) PutVarint64(&b, v);
  size_t pos = 0;
  for (uint64_t v : values) {
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(b, &pos, &out));
    EXPECT_EQ(out, v);
  }
  EXPECT_EQ(pos, b.size());
}

TEST(BytesTest, VarintTruncationDetected) {
  Bytes b;
  PutVarint64(&b, 1ull << 40);
  b.resize(b.size() - 1);
  size_t pos = 0;
  uint64_t out;
  EXPECT_FALSE(GetVarint64(b, &pos, &out));
}

TEST(BytesTest, ZigZagRoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1}, int64_t{-2},
                    INT64_MIN, INT64_MAX}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  // Small magnitudes must encode small.
  EXPECT_LE(ZigZagEncode(-64), 127u);
}

TEST(BytesTest, LengthPrefixedRoundTrip) {
  Bytes b;
  PutLengthPrefixed(&b, "");
  PutLengthPrefixed(&b, "hello world");
  std::string s;
  size_t pos = 0;
  ASSERT_TRUE(GetLengthPrefixed(b, &pos, &s));
  EXPECT_EQ(s, "");
  ASSERT_TRUE(GetLengthPrefixed(b, &pos, &s));
  EXPECT_EQ(s, "hello world");
}

TEST(HashTest, Crc32cKnownVector) {
  // Standard CRC32C test vector.
  const char* data = "123456789";
  EXPECT_EQ(Crc32c(data, 9), 0xe3069283u);
}

TEST(HashTest, Crc32cDetectsFlips) {
  Bytes b(1024);
  Rng rng(2);
  for (auto& x : b) x = static_cast<uint8_t>(rng.Next());
  uint32_t base = Crc32c(b.data(), b.size());
  for (size_t i = 0; i < b.size(); i += 97) {
    b[i] ^= 1;
    EXPECT_NE(Crc32c(b.data(), b.size()), base);
    b[i] ^= 1;
  }
}

TEST(HashTest, Hash64Avalanche) {
  // Adjacent integers should land far apart and never collide in a
  // small sample.
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) seen.insert(Hash64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(HashTest, StringHashMatchesContentNotIdentity) {
  std::string a = "warehouse";
  std::string b = "ware";
  b += "house";
  EXPECT_EQ(Hash64(std::string_view(a)), Hash64(std::string_view(b)));
  EXPECT_NE(Hash64(std::string_view("a")), Hash64(std::string_view("b")));
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
  }
  // Different seed should diverge immediately in practice.
  Rng a2(42);
  EXPECT_NE(a2.Next(), c.Next());
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(11);
  int low = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Zipf(1000, 1.2) < 10) ++low;
  }
  // With heavy skew most of the mass is in the first few values.
  EXPECT_GT(low, kTrials / 3);
  // Uniform (theta=0) must not skew.
  int low_uniform = 0;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Zipf(1000, 0.0) < 10) ++low_uniform;
  }
  EXPECT_LT(low_uniform, kTrials / 20);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / kTrials, 5.0, 0.3);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  rng.Shuffle(&v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 100u);
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2 * kMiB), "2.00 MiB");
  EXPECT_EQ(FormatBytes(5 * kGiB + kGiB / 2), "5.50 GiB");
}

TEST(UnitsTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(0.5), "500 ms");
  EXPECT_EQ(FormatDuration(90), "1.50 min");
  EXPECT_EQ(FormatDuration(2 * kDay), "2.00 d");
}

TEST(UnitsTest, FormatCount) {
  EXPECT_EQ(FormatCount(5e9), "5.00 B");
  EXPECT_EQ(FormatCount(150e9), "150 B");
  EXPECT_EQ(FormatCount(2e12), "2.00 T");
}

TEST(ThreadPoolTest, RunsEveryIndexOnce) {
  for (int threads : {0, 1, 4}) {
    common::ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    std::vector<std::atomic<int>> hits(100);
    ASSERT_TRUE(pool.ParallelFor(100, [&](int i) {
                      hits[i].fetch_add(1);
                      return Status::OK();
                    })
                    .ok());
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ReturnsLowestIndexFailure) {
  for (int threads : {0, 4}) {
    common::ThreadPool pool(threads);
    Status s = pool.ParallelFor(32, [&](int i) {
      if (i == 7 || i == 20) {
        return Status::InvalidArgument("task " + std::to_string(i));
      }
      return Status::OK();
    });
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(s.message(), "task 7");
  }
}

TEST(ThreadPoolTest, ExceptionBecomesStatus) {
  common::ThreadPool pool(2);
  Status s = pool.ParallelFor(4, [&](int i) -> Status {
    if (i == 2) throw std::runtime_error("boom");
    return Status::OK();
  });
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST(ThreadPoolTest, SharedPoolConcurrentCallers) {
  // Two ParallelFor calls issued from pool workers of an outer pool
  // must each join only their own tasks.
  common::ThreadPool outer(2);
  common::ThreadPool shared(3);
  std::atomic<int> total{0};
  ASSERT_TRUE(outer
                  .ParallelFor(2,
                               [&](int) {
                                 return shared.ParallelFor(50, [&](int) {
                                   total.fetch_add(1);
                                   return Status::OK();
                                 });
                               })
                  .ok());
  EXPECT_EQ(total.load(), 100);
}

}  // namespace
}  // namespace sdw
