#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "compress/analyzer.h"
#include "compress/codec.h"
#include "compress/lz77.h"

namespace sdw::compress {
namespace {

// ---------------------------------------------------------------------------
// Data generators for the round-trip property sweep.
// ---------------------------------------------------------------------------

enum class Shape {
  kSortedInts,
  kUniformInts,
  kSmallInts,
  kSmallIntsWithOutliers,
  kConstant,
  kRuns,
  kLowCardStrings,
  kRandomStrings,
  kWordyText,
  kDoubles,
  kWithNulls,
  kAllNulls,
  kEmptyStrings,
};

ColumnVector Generate(Shape shape, TypeId type, size_t n, uint64_t seed) {
  Rng rng(seed);
  ColumnVector v(type);
  const std::vector<std::string> kWords = {"the",  "quick", "brown",
                                           "fox",  "jumps", "over",
                                           "lazy", "dog",   "warehouse"};
  for (size_t i = 0; i < n; ++i) {
    switch (shape) {
      case Shape::kSortedInts:
        v.AppendInt(static_cast<int64_t>(i) * 3 + static_cast<int64_t>(rng.Uniform(3)));
        break;
      case Shape::kUniformInts:
        v.AppendInt(static_cast<int64_t>(rng.Next()));
        break;
      case Shape::kSmallInts:
        v.AppendInt(rng.UniformRange(-100, 100));
        break;
      case Shape::kSmallIntsWithOutliers:
        v.AppendInt(rng.Bernoulli(0.02) ? static_cast<int64_t>(rng.Next())
                                        : rng.UniformRange(-100, 100));
        break;
      case Shape::kConstant:
        if (type == TypeId::kString) {
          v.AppendString("constant");
        } else if (type == TypeId::kDouble) {
          v.AppendDouble(3.25);
        } else {
          v.AppendInt(77);
        }
        break;
      case Shape::kRuns:
        v.AppendInt(static_cast<int64_t>(i / 50));
        break;
      case Shape::kLowCardStrings:
        v.AppendString("region-" + std::to_string(rng.Uniform(8)));
        break;
      case Shape::kRandomStrings:
        v.AppendString(rng.NextString(5 + rng.Uniform(20)));
        break;
      case Shape::kWordyText: {
        std::string s;
        size_t words = 1 + rng.Uniform(8);
        for (size_t w = 0; w < words; ++w) {
          if (w) s += ' ';
          s += kWords[rng.Uniform(kWords.size())];
        }
        v.AppendString(s);
        break;
      }
      case Shape::kDoubles:
        v.AppendDouble(rng.Normal(100.0, 15.0));
        break;
      case Shape::kWithNulls:
        if (rng.Bernoulli(0.2)) {
          v.AppendNull();
        } else if (type == TypeId::kString) {
          v.AppendString(rng.NextString(6));
        } else if (type == TypeId::kDouble) {
          v.AppendDouble(rng.NextDouble());
        } else {
          v.AppendInt(rng.UniformRange(0, 1000));
        }
        break;
      case Shape::kAllNulls:
        v.AppendNull();
        break;
      case Shape::kEmptyStrings:
        v.AppendString(rng.Bernoulli(0.5) ? "" : " leading and  double");
        break;
    }
  }
  return v;
}

void ExpectEqualVectors(const ColumnVector& a, const ColumnVector& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.type(), b.type());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.IsNull(i), b.IsNull(i)) << "row " << i;
    if (a.IsNull(i)) continue;
    ASSERT_EQ(a.DatumAt(i).Compare(b.DatumAt(i)), 0)
        << "row " << i << ": " << a.DatumAt(i).ToString() << " vs "
        << b.DatumAt(i).ToString();
  }
}

// ---------------------------------------------------------------------------
// Parameterized round-trip sweep: every (codec, compatible shape) pair.
// ---------------------------------------------------------------------------

using RoundTripCase = std::tuple<ColumnEncoding, Shape, TypeId>;

class CodecRoundTripTest : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(CodecRoundTripTest, EncodeDecodeIsIdentity) {
  auto [encoding, shape, type] = GetParam();
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    ColumnVector input = Generate(shape, type, 2000, seed);
    Bytes encoded;
    ASSERT_TRUE(EncodeColumn(encoding, input, &encoded).ok());
    auto decoded = DecodeColumn(encoding, type, encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    ExpectEqualVectors(input, *decoded);
  }
}

std::vector<RoundTripCase> AllCases() {
  std::vector<RoundTripCase> cases;
  struct ShapeType {
    Shape shape;
    TypeId type;
  };
  const std::vector<ShapeType> int_shapes = {
      {Shape::kSortedInts, TypeId::kInt64},
      {Shape::kUniformInts, TypeId::kInt64},
      {Shape::kSmallInts, TypeId::kInt32},
      {Shape::kSmallIntsWithOutliers, TypeId::kInt64},
      {Shape::kConstant, TypeId::kInt64},
      {Shape::kRuns, TypeId::kDate},
      {Shape::kWithNulls, TypeId::kInt64},
      {Shape::kAllNulls, TypeId::kInt64},
  };
  const std::vector<ShapeType> string_shapes = {
      {Shape::kLowCardStrings, TypeId::kString},
      {Shape::kRandomStrings, TypeId::kString},
      {Shape::kWordyText, TypeId::kString},
      {Shape::kConstant, TypeId::kString},
      {Shape::kWithNulls, TypeId::kString},
      {Shape::kEmptyStrings, TypeId::kString},
  };
  const std::vector<ShapeType> double_shapes = {
      {Shape::kDoubles, TypeId::kDouble},
      {Shape::kConstant, TypeId::kDouble},
      {Shape::kWithNulls, TypeId::kDouble},
  };
  auto add = [&](ColumnEncoding e, const std::vector<ShapeType>& shapes) {
    for (const auto& st : shapes) cases.emplace_back(e, st.shape, st.type);
  };
  for (ColumnEncoding e :
       {ColumnEncoding::kRaw, ColumnEncoding::kRunLength,
        ColumnEncoding::kBytedict, ColumnEncoding::kLz}) {
    add(e, int_shapes);
    add(e, string_shapes);
    add(e, double_shapes);
  }
  for (ColumnEncoding e :
       {ColumnEncoding::kDelta, ColumnEncoding::kMostly8,
        ColumnEncoding::kMostly16, ColumnEncoding::kMostly32}) {
    add(e, int_shapes);
  }
  add(ColumnEncoding::kText255, string_shapes);
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<RoundTripCase>& info) {
  auto [encoding, shape, type] = info.param;
  return std::string(ColumnEncodingName(encoding)) + "_shape" +
         std::to_string(static_cast<int>(shape)) + "_type" +
         std::to_string(static_cast<int>(type));
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecRoundTripTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

// ---------------------------------------------------------------------------
// Codec-specific behaviour.
// ---------------------------------------------------------------------------

TEST(CodecTest, EmptyVectorRoundTrips) {
  for (ColumnEncoding e :
       {ColumnEncoding::kRaw, ColumnEncoding::kRunLength,
        ColumnEncoding::kDelta, ColumnEncoding::kBytedict,
        ColumnEncoding::kMostly8, ColumnEncoding::kLz}) {
    ColumnVector empty(TypeId::kInt64);
    Bytes out;
    ASSERT_TRUE(EncodeColumn(e, empty, &out).ok());
    auto decoded = DecodeColumn(e, TypeId::kInt64, out);
    ASSERT_TRUE(decoded.ok()) << ColumnEncodingName(e);
    EXPECT_EQ(decoded->size(), 0u);
  }
}

TEST(CodecTest, TypeMismatchRejected) {
  ColumnVector strings(TypeId::kString);
  strings.AppendString("x");
  Bytes out;
  EXPECT_FALSE(EncodeColumn(ColumnEncoding::kDelta, strings, &out).ok());
  EXPECT_FALSE(EncodeColumn(ColumnEncoding::kMostly8, strings, &out).ok());
  ColumnVector ints(TypeId::kInt64);
  ints.AppendInt(1);
  EXPECT_FALSE(EncodeColumn(ColumnEncoding::kText255, ints, &out).ok());
}

TEST(CodecTest, AutoHasNoCodec) {
  EXPECT_EQ(GetCodec(ColumnEncoding::kAuto), nullptr);
  ColumnVector ints(TypeId::kInt64);
  ints.AppendInt(1);
  Bytes out;
  EXPECT_FALSE(EncodeColumn(ColumnEncoding::kAuto, ints, &out).ok());
}

TEST(CodecTest, BytedictOverflowUsesEscapes) {
  // More than 255 distinct values still round-trips.
  ColumnVector v(TypeId::kString);
  for (int i = 0; i < 600; ++i) v.AppendString("val-" + std::to_string(i));
  Bytes out;
  ASSERT_TRUE(EncodeColumn(ColumnEncoding::kBytedict, v, &out).ok());
  auto decoded = DecodeColumn(ColumnEncoding::kBytedict, TypeId::kString, out);
  ASSERT_TRUE(decoded.ok());
  ExpectEqualVectors(v, *decoded);
}

TEST(CodecTest, MostlyCodecsHandleExtremes) {
  ColumnVector v(TypeId::kInt64);
  v.AppendInt(INT64_MIN);
  v.AppendInt(INT64_MAX);
  v.AppendInt(-128);  // == Mostly8's in-band marker
  v.AppendInt(127);
  v.AppendInt(0);
  for (ColumnEncoding e : {ColumnEncoding::kMostly8, ColumnEncoding::kMostly16,
                           ColumnEncoding::kMostly32}) {
    Bytes out;
    ASSERT_TRUE(EncodeColumn(e, v, &out).ok());
    auto decoded = DecodeColumn(e, TypeId::kInt64, out);
    ASSERT_TRUE(decoded.ok()) << ColumnEncodingName(e);
    ExpectEqualVectors(v, *decoded);
  }
}

TEST(CodecTest, RunLengthCompressesRuns) {
  ColumnVector runs = Generate(Shape::kRuns, TypeId::kInt64, 5000, 9);
  Bytes raw, rle;
  ASSERT_TRUE(EncodeColumn(ColumnEncoding::kRaw, runs, &raw).ok());
  ASSERT_TRUE(EncodeColumn(ColumnEncoding::kRunLength, runs, &rle).ok());
  EXPECT_LT(rle.size() * 10, raw.size());  // >10x on long runs
}

TEST(CodecTest, DeltaCompressesSorted) {
  ColumnVector sorted = Generate(Shape::kSortedInts, TypeId::kInt64, 5000, 9);
  Bytes raw, delta;
  ASSERT_TRUE(EncodeColumn(ColumnEncoding::kRaw, sorted, &raw).ok());
  ASSERT_TRUE(EncodeColumn(ColumnEncoding::kDelta, sorted, &delta).ok());
  EXPECT_LT(delta.size() * 4, raw.size());
}

TEST(CodecTest, DecodeDetectsTruncation) {
  ColumnVector v = Generate(Shape::kUniformInts, TypeId::kInt64, 100, 5);
  for (ColumnEncoding e :
       {ColumnEncoding::kRaw, ColumnEncoding::kRunLength,
        ColumnEncoding::kDelta, ColumnEncoding::kBytedict,
        ColumnEncoding::kMostly16, ColumnEncoding::kLz}) {
    Bytes out;
    ASSERT_TRUE(EncodeColumn(e, v, &out).ok());
    Bytes truncated(out.begin(), out.begin() + out.size() / 2);
    auto decoded = DecodeColumn(e, TypeId::kInt64, truncated);
    EXPECT_FALSE(decoded.ok()) << ColumnEncodingName(e);
  }
}

// ---------------------------------------------------------------------------
// LZ77.
// ---------------------------------------------------------------------------

TEST(Lz77Test, RoundTripRandom) {
  Rng rng(3);
  for (size_t size : {0u, 1u, 3u, 100u, 10000u}) {
    Bytes input(size);
    for (auto& b : input) b = static_cast<uint8_t>(rng.Next());
    Bytes compressed;
    Lz77Compress(input, &compressed);
    auto out = Lz77Decompress(compressed);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(*out, input);
  }
}

TEST(Lz77Test, CompressesRepetitiveData) {
  Bytes input;
  for (int i = 0; i < 1000; ++i) {
    const char* phrase = "abcdefgh12345678";
    input.insert(input.end(), phrase, phrase + 16);
  }
  Bytes compressed;
  Lz77Compress(input, &compressed);
  EXPECT_LT(compressed.size() * 20, input.size());
  auto out = Lz77Decompress(compressed);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(Lz77Test, OverlappingMatches) {
  // "aaaa..." forces overlapping copy semantics.
  Bytes input(5000, 'a');
  Bytes compressed;
  Lz77Compress(input, &compressed);
  EXPECT_LT(compressed.size(), 200u);
  auto out = Lz77Decompress(compressed);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(Lz77Test, RejectsCorruptStream) {
  Bytes input(1000, 'x');
  Bytes compressed;
  Lz77Compress(input, &compressed);
  Bytes truncated(compressed.begin(), compressed.begin() + 3);
  EXPECT_FALSE(Lz77Decompress(truncated).ok());
  Bytes empty;
  EXPECT_FALSE(Lz77Decompress(empty).ok());
}

// ---------------------------------------------------------------------------
// Analyzer: the automatic COMPUPDATE knob must pick sensible encodings.
// ---------------------------------------------------------------------------

TEST(AnalyzerTest, ConstantColumnPicksRunLength) {
  ColumnVector v = Generate(Shape::kConstant, TypeId::kInt64, 4000, 1);
  auto r = AnalyzeColumn(v);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->encoding, ColumnEncoding::kRunLength);
  EXPECT_GT(r->ratio(), 100.0);
}

TEST(AnalyzerTest, SortedIntsPickDelta) {
  ColumnVector v = Generate(Shape::kSortedInts, TypeId::kInt64, 4000, 1);
  auto r = AnalyzeColumn(v);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->encoding, ColumnEncoding::kDelta);
}

TEST(AnalyzerTest, SmallIntsPickNarrowStorage) {
  ColumnVector v = Generate(Shape::kSmallInts, TypeId::kInt32, 4000, 1);
  auto r = AnalyzeColumn(v);
  ASSERT_TRUE(r.ok());
  // Mostly8 and bytedict are both reasonable; either must beat raw by ~4x+.
  EXPECT_GT(r->ratio(), 3.0);
}

TEST(AnalyzerTest, RandomIntsStayRaw) {
  ColumnVector v = Generate(Shape::kUniformInts, TypeId::kInt64, 4000, 1);
  auto r = AnalyzeColumn(v);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->encoding, ColumnEncoding::kRaw);
}

TEST(AnalyzerTest, LowCardinalityStringsPickDictionary) {
  ColumnVector v = Generate(Shape::kLowCardStrings, TypeId::kString, 4000, 1);
  auto r = AnalyzeColumn(v);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->encoding == ColumnEncoding::kBytedict ||
              r->encoding == ColumnEncoding::kText255 ||
              r->encoding == ColumnEncoding::kLz);
  EXPECT_GT(r->ratio(), 3.0);
}

TEST(AnalyzerTest, EmptySampleRejected) {
  ColumnVector v(TypeId::kInt64);
  EXPECT_FALSE(AnalyzeColumn(v).ok());
}

TEST(AnalyzerTest, SampleIsBounded) {
  // A large column must not blow up analysis: only sample_rows are used.
  ColumnVector v = Generate(Shape::kSortedInts, TypeId::kInt64, 100000, 1);
  AnalyzerOptions opts;
  opts.sample_rows = 512;
  auto r = AnalyzeColumn(v, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->raw_bytes, 512u * 8 + 16);
}

TEST(AnalyzerTest, ChosenEncodingAlwaysRoundTrips) {
  // Property: whatever the analyzer picks must decode to the input.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    for (Shape shape : {Shape::kSortedInts, Shape::kSmallIntsWithOutliers,
                        Shape::kRuns, Shape::kWithNulls}) {
      ColumnVector v = Generate(shape, TypeId::kInt64, 3000, seed);
      auto r = AnalyzeColumn(v);
      ASSERT_TRUE(r.ok());
      Bytes out;
      ASSERT_TRUE(EncodeColumn(r->encoding, v, &out).ok());
      auto decoded = DecodeColumn(r->encoding, TypeId::kInt64, out);
      ASSERT_TRUE(decoded.ok());
      ExpectEqualVectors(v, *decoded);
    }
  }
}

}  // namespace
}  // namespace sdw::compress
