#include <gtest/gtest.h>

#include "common/random.h"
#include "load/copy.h"
#include "load/formats.h"
#include "load/infer.h"

namespace sdw::load {
namespace {

TableSchema LogSchema() {
  return TableSchema("logs", {{"ts", TypeId::kInt64},
                              {"path", TypeId::kString},
                              {"latency", TypeId::kDouble},
                              {"ok", TypeId::kBool}});
}

TEST(CsvTest, ParsesTypedFields) {
  auto cols = ParseCsv("100,/home,1.5,true\n200,/cart,0.25,false\n",
                       LogSchema());
  ASSERT_TRUE(cols.ok()) << cols.status();
  ASSERT_EQ((*cols)[0].size(), 2u);
  EXPECT_EQ((*cols)[0].IntAt(0), 100);
  EXPECT_EQ((*cols)[1].StringAt(1), "/cart");
  EXPECT_DOUBLE_EQ((*cols)[2].DoubleAt(0), 1.5);
  EXPECT_EQ((*cols)[3].IntAt(1), 0);
}

TEST(CsvTest, NullsAndQuoting) {
  auto cols = ParseCsv("1,\"a,b\"\"c\",\\N,1\n,\"\",2.0,0\n", LogSchema());
  ASSERT_TRUE(cols.ok()) << cols.status();
  EXPECT_EQ((*cols)[1].StringAt(0), "a,b\"c");
  EXPECT_TRUE((*cols)[2].IsNull(0));
  EXPECT_TRUE((*cols)[0].IsNull(1));
  // A quoted empty string is an empty string, not NULL.
  EXPECT_FALSE((*cols)[1].IsNull(1));
  EXPECT_EQ((*cols)[1].StringAt(1), "");
}

TEST(CsvTest, RejectsMalformedRows) {
  EXPECT_FALSE(ParseCsv("1,2\n", LogSchema()).ok());          // too few
  EXPECT_FALSE(ParseCsv("1,a,2.0,1,extra\n", LogSchema()).ok());  // too many
  EXPECT_FALSE(ParseCsv("abc,a,1.0,1\n", LogSchema()).ok());  // bad int
  EXPECT_FALSE(ParseCsv("1,a,xyz,1\n", LogSchema()).ok());    // bad double
  EXPECT_FALSE(ParseCsv("1,a,1.0,maybe\n", LogSchema()).ok());  // bad bool
}

TEST(CsvTest, RoundTripsThroughFormat) {
  Rng rng(5);
  std::vector<ColumnVector> cols;
  cols.emplace_back(TypeId::kInt64);
  cols.emplace_back(TypeId::kString);
  cols.emplace_back(TypeId::kDouble);
  cols.emplace_back(TypeId::kBool);
  for (int i = 0; i < 500; ++i) {
    if (rng.Bernoulli(0.1)) {
      cols[0].AppendNull();
    } else {
      cols[0].AppendInt(rng.UniformRange(-1000, 1000));
    }
    std::string s = rng.NextString(rng.Uniform(10));
    if (rng.Bernoulli(0.2)) s += ",\"tricky\"\n";
    cols[1].AppendString(s);
    cols[2].AppendDouble(rng.NextDouble());
    cols[3].AppendInt(rng.Bernoulli(0.5) ? 1 : 0);
  }
  std::string text = FormatCsv(cols);
  auto parsed = ParseCsv(text, LogSchema());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  for (size_t c = 0; c < cols.size(); ++c) {
    ASSERT_EQ((*parsed)[c].size(), cols[c].size());
    for (size_t i = 0; i < cols[c].size(); ++i) {
      ASSERT_EQ((*parsed)[c].IsNull(i), cols[c].IsNull(i)) << c << "," << i;
      if (cols[c].IsNull(i)) continue;
      EXPECT_EQ((*parsed)[c].DatumAt(i).Compare(cols[c].DatumAt(i)), 0)
          << c << "," << i;
    }
  }
}

TEST(JsonTest, ParsesObjectsPerLine) {
  const std::string text =
      "{\"ts\": 100, \"path\": \"/home\", \"latency\": 1.5, \"ok\": true}\n"
      "{\"path\": \"/x\", \"ts\": 200, \"extra\": 9}\n"
      "{}\n";
  auto cols = ParseJsonLines(text, LogSchema());
  ASSERT_TRUE(cols.ok()) << cols.status();
  ASSERT_EQ((*cols)[0].size(), 3u);
  EXPECT_EQ((*cols)[0].IntAt(0), 100);
  EXPECT_EQ((*cols)[1].StringAt(1), "/x");
  EXPECT_TRUE((*cols)[2].IsNull(1));  // absent field
  EXPECT_TRUE((*cols)[0].IsNull(2));  // empty object: all NULL
  EXPECT_EQ((*cols)[3].IntAt(0), 1);
}

TEST(JsonTest, EscapesAndNulls) {
  const std::string text =
      "{\"path\": \"a\\\"b\\nc\", \"ts\": null, \"latency\": -2.5, "
      "\"ok\": false}\n";
  auto cols = ParseJsonLines(text, LogSchema());
  ASSERT_TRUE(cols.ok()) << cols.status();
  EXPECT_EQ((*cols)[1].StringAt(0), "a\"b\nc");
  EXPECT_TRUE((*cols)[0].IsNull(0));
  EXPECT_DOUBLE_EQ((*cols)[2].DoubleAt(0), -2.5);
}

TEST(JsonTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseJsonLines("not json\n", LogSchema()).ok());
  EXPECT_FALSE(ParseJsonLines("{\"ts\" 1}\n", LogSchema()).ok());
  EXPECT_FALSE(ParseJsonLines("{\"ts\": }\n", LogSchema()).ok());
}

// ---------------------------------------------------------------------------
// COPY end to end
// ---------------------------------------------------------------------------

class CopyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster::ClusterConfig config;
    config.num_nodes = 2;
    config.slices_per_node = 2;
    config.storage.max_rows_per_block = 256;
    cluster_ = std::make_unique<cluster::Cluster>(config);
    TableSchema schema = LogSchema();
    ASSERT_TRUE(schema.SetSortKey(SortStyle::kCompound, {"ts"}).ok());
    ASSERT_TRUE(cluster_->CreateTable(schema).ok());
  }

  std::string MakeCsv(int rows, int first_ts) {
    Rng rng(first_ts);
    std::string out;
    for (int i = 0; i < rows; ++i) {
      out += std::to_string(first_ts + i) + ",/p" +
             std::to_string(rng.Uniform(20)) + "," +
             std::to_string(rng.NextDouble()) + ",true\n";
    }
    return out;
  }

  std::unique_ptr<cluster::Cluster> cluster_;
  backup::S3 s3_;
};

TEST_F(CopyTest, CopiesFromS3Prefix) {
  backup::S3Region* region = s3_.region("us-east-1");
  for (int f = 0; f < 4; ++f) {
    std::string csv = MakeCsv(500, f * 500);
    ASSERT_TRUE(region
                    ->PutObject("mybucket/logs/part-" + std::to_string(f),
                                Bytes(csv.begin(), csv.end()))
                    .ok());
  }
  CopyExecutor executor(cluster_.get(), &s3_);
  auto stats = executor.CopyFromUri("logs", "s3://mybucket/logs/");
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->rows_loaded, 2000u);
  EXPECT_EQ(stats->files, 4);
  EXPECT_GT(stats->modeled_seconds, 0.0);
  EXPECT_EQ(*cluster_->TotalRows("logs"), 2000u);
  // Statistics were refreshed ("statistics are updated with load").
  EXPECT_EQ(cluster_->catalog()->GetStats("logs").row_count, 2000u);
}

TEST_F(CopyTest, FirstLoadPicksEncodings) {
  CopyExecutor executor(cluster_.get(), &s3_);
  auto stats =
      executor.CopyFromPayloads("logs", {MakeCsv(4000, 0)});
  ASSERT_TRUE(stats.ok()) << stats.status();
  // The analyzer assigned encodings to the AUTO columns.
  EXPECT_FALSE(stats->chosen_encodings.empty());
  auto schema = cluster_->catalog()->GetTable("logs");
  ASSERT_TRUE(schema.ok());
  // Sorted ts column must land on DELTA.
  EXPECT_EQ(schema->column(0).encoding, ColumnEncoding::kDelta);
  // Low-cardinality path strings get a dictionary-ish encoding.
  EXPECT_NE(schema->column(1).encoding, ColumnEncoding::kAuto);
  // And the data still reads back.
  EXPECT_EQ(*cluster_->TotalRows("logs"), 4000u);

  // Second load must not re-run the analyzer.
  auto again = executor.CopyFromPayloads("logs", {MakeCsv(100, 9999)});
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->chosen_encodings.empty());
}

TEST_F(CopyTest, CompupdateOffSkipsAnalyzer) {
  CopyExecutor executor(cluster_.get(), &s3_);
  CopyOptions options;
  options.compupdate = false;
  auto stats = executor.CopyFromPayloads("logs", {MakeCsv(1000, 0)}, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->chosen_encodings.empty());
  EXPECT_EQ(cluster_->catalog()->GetTable("logs")->column(0).encoding,
            ColumnEncoding::kAuto);
}

TEST_F(CopyTest, JsonCopy) {
  CopyExecutor executor(cluster_.get(), &s3_);
  CopyOptions options;
  options.format = CopyFormat::kJson;
  const std::string payload =
      "{\"ts\": 1, \"path\": \"/a\", \"latency\": 0.5, \"ok\": true}\n"
      "{\"ts\": 2, \"path\": \"/b\", \"latency\": 1.5, \"ok\": false}\n";
  auto stats = executor.CopyFromPayloads("logs", {payload}, options);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->rows_loaded, 2u);
}

TEST_F(CopyTest, ErrorsSurfaceCleanly) {
  CopyExecutor executor(cluster_.get(), &s3_);
  EXPECT_FALSE(executor.CopyFromUri("logs", "s3://nope/missing/").ok());
  EXPECT_FALSE(executor.CopyFromUri("logs", "file:///etc/passwd").ok());
  EXPECT_FALSE(
      executor.CopyFromPayloads("missing_table", {MakeCsv(10, 0)}).ok());
  EXPECT_FALSE(executor.CopyFromPayloads("logs", {"bad,csv\n"}).ok());
}

// ---------------------------------------------------------------------------
// JSON schema inference ("automatically relationalizing", §4)
// ---------------------------------------------------------------------------

TEST(InferTest, InfersTypesAndWidens) {
  const std::string sample =
      "{\"ts\": 100, \"name\": \"a\", \"score\": 1, \"ok\": true}\n"
      "{\"ts\": 200, \"name\": \"b\", \"score\": 2.5, \"ok\": false, "
      "\"extra\": null}\n"
      "{\"ts\": 300, \"name\": \"c\", \"score\": 3}\n";
  auto schema = InferJsonSchema("events", sample);
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->name(), "events");
  ASSERT_EQ(schema->num_columns(), 5u);
  // First-appearance order.
  EXPECT_EQ(schema->column(0).name, "ts");
  EXPECT_EQ(schema->column(0).type, TypeId::kInt64);
  EXPECT_EQ(schema->column(1).type, TypeId::kString);
  // int widened by a 2.5 observation.
  EXPECT_EQ(schema->column(2).type, TypeId::kDouble);
  EXPECT_EQ(schema->column(3).type, TypeId::kBool);
  // all-NULL field defaults to VARCHAR.
  EXPECT_EQ(schema->column(4).name, "extra");
  EXPECT_EQ(schema->column(4).type, TypeId::kString);
}

TEST(InferTest, MixedScalarAndStringBecomesString) {
  const std::string sample =
      "{\"v\": 1}\n{\"v\": \"two\"}\n{\"v\": 3.5}\n";
  auto schema = InferJsonSchema("t", sample);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->column(0).type, TypeId::kString);
}

TEST(InferTest, RejectsEmptyOrMalformed) {
  EXPECT_FALSE(InferJsonSchema("t", "").ok());
  EXPECT_FALSE(InferJsonSchema("t", "{}\n{}\n").ok());
  EXPECT_FALSE(InferJsonSchema("t", "not json\n").ok());
}

TEST(InferTest, SampleLimitRespected) {
  // Drifted types past the sample window are not observed.
  std::string sample = "{\"v\": 1}\n{\"v\": 2}\n{\"v\": \"drift\"}\n";
  InferenceOptions options;
  options.sample_lines = 2;
  auto schema = InferJsonSchema("t", sample, options);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->column(0).type, TypeId::kInt64);
}

TEST_F(CopyTest, InferredSchemaRoundTripsThroughCopy) {
  // The full "relationalize a data lake" flow: infer -> CREATE -> COPY.
  backup::S3Region* region = s3_.region("us-east-1");
  const std::string payload =
      "{\"ts\": 1, \"path\": \"/a\", \"latency\": 0.5, \"ok\": true}\n"
      "{\"ts\": 2, \"path\": \"/b\", \"latency\": 1.25}\n";
  ASSERT_TRUE(region
                  ->PutObject("lake/raw/part-0",
                              Bytes(payload.begin(), payload.end()))
                  .ok());
  auto schema =
      InferJsonSchemaFromUri(region, "lake_events", "s3://lake/raw/");
  ASSERT_TRUE(schema.ok()) << schema.status();
  ASSERT_TRUE(cluster_->CreateTable(*schema).ok());
  CopyExecutor executor(cluster_.get(), &s3_);
  CopyOptions options;
  options.format = CopyFormat::kJson;
  auto stats = executor.CopyFromUri("lake_events", "s3://lake/raw/", options);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->rows_loaded, 2u);
  auto shard = cluster_->shard(0, "lake_events");
  ASSERT_TRUE(shard.ok());
  EXPECT_FALSE(InferJsonSchemaFromUri(region, "x", "s3://nope/").ok());
}

}  // namespace
}  // namespace sdw::load
