// Negative fixtures for the lock-hierarchy rules: a bare
// SDW_NO_THREAD_SAFETY_ANALYSIS (no why-comment above it) and a
// LockRank enumerator DESIGN.md's section-4f rank table never
// mentions must both trip tools/lint.py. This file is never compiled.

#include "common/thread_annotations.h"

namespace sdw::fixtures {

class Sneaky {
 public:
  Sneaky() = default;

  int padding_so_the_header_comment_is_out_of_window = 0;

  void Unexplained() SDW_NO_THREAD_SAFETY_ANALYSIS;  // lint:expect(bare-no-thread-safety-analysis)

  /// Why-comment: the moved-from object is never used again, so the
  /// analysis cannot see that mu_ needs no hold here.
  void Explained() SDW_NO_THREAD_SAFETY_ANALYSIS;  // fine: comment above

 private:
  common::Mutex mu_;
};

/// A shadow LockRank enum exercising lock-rank-doc: kBlockStore is in
/// DESIGN.md's rank table; the 999 rank is a constraint nobody signed.
enum class LockRank {
  kBlockStore = 550,  // fine: documented
  kTotallyUndocumentedRank = 999,  // lint:expect(lock-rank-doc)
};

}  // namespace sdw::fixtures
