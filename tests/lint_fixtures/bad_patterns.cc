// Negative fixtures for tools/lint.py: every line tagged with
// lint:expect(<rule>) MUST trip that rule, and nothing else may fire.
// `python3 tools/lint.py --check-fixtures` (registered as the
// lint_fixtures ctest) fails if the linter ever stops catching these.
// This file is never compiled.

#include <chrono>
#include <thread>

#include "common/logging.h"
#include "common/thread_annotations.h"
#include "obs/registry.h"

namespace sdw::fixtures {

double WallClockLeak() {
  auto t0 = std::chrono::steady_clock::now();  // lint:expect(wall-clock)
  auto wall = std::chrono::system_clock::now();  // lint:expect(wall-clock)
  (void)wall;
  int noise = rand();  // lint:expect(wall-clock)
  (void)noise;
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

void NakedThread() {
  std::thread worker([] {});  // lint:expect(naked-thread)
  worker.join();
  // Qualified statics are fine: no thread is spawned.
  (void)std::thread::hardware_concurrency();
}

class Chatty {
 public:
  void LogWhileLocked() {
    common::MutexLock lock(mu_);
    SDW_LOG(Info) << "under the lock";  // lint:expect(log-under-lock)
    ++value_;
  }

  void LogAfterUnlock() {
    int copy;
    {
      common::MutexLock lock(mu_);
      copy = ++value_;
    }
    SDW_LOG(Info) << "after release: " << copy;  // fine: lock released
  }

 private:
  common::Mutex mu_;
  int value_ SDW_GUARDED_BY(mu_) = 0;
};

void BadMetricNames() {
  // Dotted legacy name.
  obs::Registry::Global().counter("query.count");  // lint:expect(metric-name)
  // Missing the sdw_ prefix.
  obs::Registry::Global().counter("pool_tasks");  // lint:expect(metric-name)
  // Prefix alone is not enough: a module segment is required.
  obs::Registry::Global().gauge("sdw_depth");  // lint:expect(metric-name)
  // Well-formed, and the call wraps lines like real call sites do.
  obs::Registry::Global().counter(
      "sdw_fixture_good_name");
}

void BadCachePrefixes() {
  // MakeCacheMetrics prefixes expand into <prefix>_hits etc., so they
  // obey the same naming rule as direct Registry calls.
  warehouse::MakeCacheMetrics("segcache");  // lint:expect(metric-name)
  warehouse::MakeCacheMetrics("sdw_cache_result");  // fine: two segments
}

class RogueS3Writer {
 public:
  // Mutating S3 objects outside src/backup/ + src/durability/ can
  // clobber the recovery chain or strand objects that commit-log
  // truncation and backup GC never learn about.
  void Scribble(backup::S3Region* region) {
    region->PutObject("simpledw/wal/rogue", {});  // lint:expect(s3-writes)
    region->DeleteObject("simpledw/wal/00000001");  // lint:expect(s3-writes)
  }

  void ScribbleByValue(backup::S3Region& region) {
    region.PutObject("simpledw/backup/rogue", {});  // lint:expect(s3-writes)
  }
};

class SnapshotBypass {
 public:
  // Reading the version map directly skips the snapshot-coherence
  // protocol: only warehouse.{h,cc} may touch it.
  uint64_t PeekVersion(const std::string& table) {
    return table_versions_[table];  // lint:expect(mvcc-versions)
  }

 private:
  std::map<std::string, uint64_t> table_versions_;  // lint:expect(mvcc-versions)
};

}  // namespace sdw::fixtures
