// Negative fixture for the system-table-doc rule: serving an stl_/stv_
// table that DESIGN.md never mentions must trip the linter. Documented
// names (stl_query here) pass. This file is never compiled.

#include <string>

namespace sdw::fixtures {

std::string UndocumentedSystemTable(const std::string& name) {
  if (name == "stl_query") return "documented";  // fine: in DESIGN.md
  if (name == "stv_totally_undocumented") {  // lint:expect(system-table-doc)
    return "who signed off on this?";
  }
  return "";
}

}  // namespace sdw::fixtures
