#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "catalog/types.h"

namespace sdw {
namespace {

TableSchema ClicksSchema() {
  return TableSchema("clicks", {
                                   {"user_id", TypeId::kInt64},
                                   {"url", TypeId::kString},
                                   {"ts", TypeId::kInt64},
                                   {"latency", TypeId::kDouble},
                                   {"day", TypeId::kDate},
                               });
}

TEST(DatumTest, NullsCompareFirst) {
  EXPECT_LT(Datum::Null(), Datum::Int64(INT64_MIN));
  EXPECT_EQ(Datum::Null().Compare(Datum::Null()), 0);
}

TEST(DatumTest, IntOrdering) {
  EXPECT_LT(Datum::Int64(1), Datum::Int64(2));
  EXPECT_LT(Datum::Int64(-5), Datum::Int64(0));
  EXPECT_EQ(Datum::Int64(7).Compare(Datum::Int32(7)), 0);
}

TEST(DatumTest, MixedNumericComparesAsDouble) {
  EXPECT_LT(Datum::Int64(1), Datum::Double(1.5));
  EXPECT_LT(Datum::Double(0.5), Datum::Int64(1));
}

TEST(DatumTest, StringOrdering) {
  EXPECT_LT(Datum::String("abc"), Datum::String("abd"));
  EXPECT_EQ(Datum::String("x").Compare(Datum::String("x")), 0);
}

TEST(DatumTest, HashConsistentWithEquality) {
  EXPECT_EQ(Datum::Int64(42).Hash(), Datum::Int64(42).Hash());
  EXPECT_EQ(Datum::String("abc").Hash(), Datum::String("abc").Hash());
  EXPECT_NE(Datum::Int64(1).Hash(), Datum::Int64(2).Hash());
  EXPECT_EQ(Datum::Double(0.0).Hash(), Datum::Double(-0.0).Hash());
}

TEST(DatumTest, ToStringRendersSqlish) {
  EXPECT_EQ(Datum::Null().ToString(), "NULL");
  EXPECT_EQ(Datum::Int64(42).ToString(), "42");
  EXPECT_EQ(Datum::String("hi").ToString(), "'hi'");
  EXPECT_EQ(Datum::Bool(true).ToString(), "true");
}

TEST(ColumnVectorTest, AppendAndRead) {
  ColumnVector v(TypeId::kInt64);
  v.AppendInt(10);
  v.AppendNull();
  v.AppendInt(-3);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.IntAt(0), 10);
  EXPECT_TRUE(v.IsNull(1));
  EXPECT_EQ(v.IntAt(2), -3);
  EXPECT_EQ(v.null_count(), 1u);
  EXPECT_TRUE(v.DatumAt(1).is_null());
  EXPECT_EQ(v.DatumAt(2), Datum::Int64(-3));
}

TEST(ColumnVectorTest, AppendDatumTypeChecks) {
  ColumnVector ints(TypeId::kInt64);
  EXPECT_TRUE(ints.AppendDatum(Datum::Int32(5)).ok());
  EXPECT_FALSE(ints.AppendDatum(Datum::String("no")).ok());
  ColumnVector strs(TypeId::kString);
  EXPECT_FALSE(strs.AppendDatum(Datum::Int64(1)).ok());
  EXPECT_TRUE(strs.AppendDatum(Datum::Null()).ok());
}

TEST(ColumnVectorTest, AppendRange) {
  ColumnVector a(TypeId::kString);
  a.AppendString("x");
  a.AppendNull();
  a.AppendString("z");
  ColumnVector b(TypeId::kString);
  ASSERT_TRUE(b.AppendRange(a, 1, 3).ok());
  ASSERT_EQ(b.size(), 2u);
  EXPECT_TRUE(b.IsNull(0));
  EXPECT_EQ(b.StringAt(1), "z");
  EXPECT_FALSE(b.AppendRange(a, 2, 5).ok());
  ColumnVector c(TypeId::kInt64);
  EXPECT_FALSE(c.AppendRange(a, 0, 1).ok());
}

TEST(SchemaTest, FindColumn) {
  TableSchema s = ClicksSchema();
  EXPECT_EQ(*s.FindColumn("url"), 1u);
  EXPECT_FALSE(s.FindColumn("nope").ok());
}

TEST(SchemaTest, DistKey) {
  TableSchema s = ClicksSchema();
  EXPECT_EQ(s.dist_style(), DistStyle::kEven);
  ASSERT_TRUE(s.SetDistKey("user_id").ok());
  EXPECT_EQ(s.dist_style(), DistStyle::kKey);
  EXPECT_EQ(s.dist_key(), 0);
  EXPECT_FALSE(s.SetDistKey("nope").ok());
  s.SetDistStyle(DistStyle::kAll);
  EXPECT_EQ(s.dist_key(), -1);
}

TEST(SchemaTest, SortKeys) {
  TableSchema s = ClicksSchema();
  ASSERT_TRUE(s.SetSortKey(SortStyle::kCompound, {"day", "user_id"}).ok());
  EXPECT_EQ(s.sort_keys(), (std::vector<int>{4, 0}));
  ASSERT_TRUE(s.SetSortKey(SortStyle::kInterleaved, {"ts", "user_id"}).ok());
  EXPECT_EQ(s.sort_style(), SortStyle::kInterleaved);
  EXPECT_FALSE(s.SetSortKey(SortStyle::kCompound, {}).ok());
  EXPECT_FALSE(s.SetSortKey(SortStyle::kCompound, {"nope"}).ok());
}

TEST(SchemaTest, ToStringShowsDdl) {
  TableSchema s = ClicksSchema();
  ASSERT_TRUE(s.SetDistKey("user_id").ok());
  std::string ddl = s.ToString();
  EXPECT_NE(ddl.find("DISTKEY(user_id)"), std::string::npos);
  EXPECT_NE(ddl.find("BIGINT"), std::string::npos);
}

TEST(CatalogTest, CreateGetDrop) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable(ClicksSchema()).ok());
  EXPECT_TRUE(cat.HasTable("clicks"));
  EXPECT_EQ(cat.CreateTable(ClicksSchema()).code(),
            StatusCode::kAlreadyExists);
  auto t = cat.GetTable("clicks");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_columns(), 5u);
  ASSERT_TRUE(cat.DropTable("clicks").ok());
  EXPECT_FALSE(cat.HasTable("clicks"));
  EXPECT_EQ(cat.DropTable("clicks").code(), StatusCode::kNotFound);
}

TEST(CatalogTest, RejectsInvalidSchemas) {
  Catalog cat;
  EXPECT_FALSE(cat.CreateTable(TableSchema("", {{"a", TypeId::kInt64}})).ok());
  EXPECT_FALSE(cat.CreateTable(TableSchema("t", {})).ok());
}

TEST(CatalogTest, StatsLifecycle) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable(ClicksSchema()).ok());
  EXPECT_EQ(cat.GetStats("clicks").row_count, 0u);
  TableStats stats;
  stats.row_count = 123;
  stats.columns.resize(5);
  stats.columns[0].min = Datum::Int64(1);
  stats.columns[0].max = Datum::Int64(99);
  cat.UpdateStats("clicks", stats);
  EXPECT_EQ(cat.GetStats("clicks").row_count, 123u);
  EXPECT_EQ(cat.GetStats("clicks").columns[0].max, Datum::Int64(99));
}

TEST(CatalogTest, UpdateTableForAnalyzer) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable(ClicksSchema()).ok());
  auto t = cat.GetTable("clicks");
  ASSERT_TRUE(t.ok());
  t->SetColumnEncoding(0, ColumnEncoding::kDelta);
  ASSERT_TRUE(cat.UpdateTable("clicks", *t).ok());
  EXPECT_EQ(cat.GetTable("clicks")->column(0).encoding,
            ColumnEncoding::kDelta);
  EXPECT_EQ(cat.UpdateTable("missing", *t).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace sdw
