// Read-your-writes regression suite for the result cache: every write
// path (INSERT, COPY, VACUUM, DROP, transactions, streaming restore)
// must bump the touched tables' version counters so a repeated SELECT
// can never be served stale rows — including when a chaos-layer fault
// aborts the write halfway through the invalidation window.

#include <gtest/gtest.h>

#include <string>

#include "common/fault_injector.h"
#include "warehouse/warehouse.h"

namespace sdw::warehouse {
namespace {

WarehouseOptions CachedOptions() {
  WarehouseOptions options;
  options.cluster.num_nodes = 2;
  options.cluster.slices_per_node = 2;
  options.cluster.storage.max_rows_per_block = 32;
  return options;  // both caches on by default
}

class CacheInvalidationTest : public ::testing::Test {
 protected:
  StatementResult MustRun(Warehouse* wh, const std::string& sql) {
    auto r = wh->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? std::move(*r) : StatementResult{};
  }

  int64_t Count(Warehouse* wh, bool* from_cache = nullptr) {
    StatementResult r = MustRun(wh, kCount);
    if (from_cache != nullptr) *from_cache = r.from_result_cache;
    if (r.rows.num_rows() != 1) {
      ADD_FAILURE() << "COUNT returned " << r.rows.num_rows() << " rows";
      return -1;
    }
    return r.rows.columns[0].IntAt(0);
  }

  static constexpr const char* kCount = "SELECT COUNT(*) AS n FROM t";
};

TEST_F(CacheInvalidationTest, RepeatSelectHitsUntilInsertInvalidates) {
  Warehouse wh(CachedOptions());
  MustRun(&wh, "CREATE TABLE t (k BIGINT, v BIGINT)");
  MustRun(&wh, "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");

  bool cached = false;
  EXPECT_EQ(Count(&wh, &cached), 3);
  EXPECT_FALSE(cached) << "first run executes";
  EXPECT_EQ(Count(&wh, &cached), 3);
  EXPECT_TRUE(cached) << "repeat is served from the result cache";

  MustRun(&wh, "INSERT INTO t VALUES (4, 40)");
  EXPECT_EQ(Count(&wh, &cached), 4) << "read-your-writes";
  EXPECT_FALSE(cached) << "the INSERT invalidated the cached entry";
  EXPECT_EQ(Count(&wh, &cached), 4);
  EXPECT_TRUE(cached);
}

TEST_F(CacheInvalidationTest, CopyAndVacuumInvalidate) {
  Warehouse wh(CachedOptions());
  MustRun(&wh, "CREATE TABLE t (k BIGINT, v BIGINT) SORTKEY(k)");
  MustRun(&wh, "INSERT INTO t VALUES (5, 50), (6, 60)");
  bool cached = false;
  EXPECT_EQ(Count(&wh, &cached), 2);
  EXPECT_EQ(Count(&wh, &cached), 2);
  ASSERT_TRUE(cached);

  std::string csv;
  for (int i = 0; i < 100; ++i) csv += std::to_string(i) + "," + "7\n";
  ASSERT_TRUE(wh.s3()
                  ->region("us-east-1")
                  ->PutObject("bkt/t/part-0", Bytes(csv.begin(), csv.end()))
                  .ok());
  MustRun(&wh, "COPY t FROM 's3://bkt/t/'");
  EXPECT_EQ(Count(&wh, &cached), 102);
  EXPECT_FALSE(cached) << "COPY invalidated the cached count";

  EXPECT_EQ(Count(&wh, &cached), 102);
  ASSERT_TRUE(cached);
  MustRun(&wh, "VACUUM t");
  EXPECT_EQ(Count(&wh, &cached), 102) << "VACUUM preserves rows";
  EXPECT_FALSE(cached) << "but still invalidates (blocks were rewritten)";
}

TEST_F(CacheInvalidationTest, DropAndRecreateNeverServesTheOldTable) {
  Warehouse wh(CachedOptions());
  MustRun(&wh, "CREATE TABLE t (k BIGINT, v BIGINT)");
  MustRun(&wh, "INSERT INTO t VALUES (1, 10), (2, 20)");
  bool cached = false;
  EXPECT_EQ(Count(&wh, &cached), 2);
  EXPECT_EQ(Count(&wh, &cached), 2);
  ASSERT_TRUE(cached);

  MustRun(&wh, "DROP TABLE t");
  EXPECT_FALSE(wh.Execute(kCount).ok()) << "no ghost answers for a dropped "
                                           "table";
  MustRun(&wh, "CREATE TABLE t (k BIGINT, v BIGINT)");
  MustRun(&wh, "INSERT INTO t VALUES (9, 90)");
  EXPECT_EQ(Count(&wh, &cached), 1) << "the new t, not the cached old t";
  EXPECT_FALSE(cached);
}

TEST_F(CacheInvalidationTest, RollbackInvalidatesInTransactionReads) {
  Warehouse wh(CachedOptions());
  MustRun(&wh, "CREATE TABLE t (k BIGINT, v BIGINT)");
  MustRun(&wh, "INSERT INTO t VALUES (1, 10)");
  bool cached = false;
  EXPECT_EQ(Count(&wh, &cached), 1);

  MustRun(&wh, "BEGIN");
  MustRun(&wh, "INSERT INTO t VALUES (2, 20)");
  EXPECT_EQ(Count(&wh, &cached), 2) << "in-transaction read sees the insert";
  EXPECT_EQ(Count(&wh, &cached), 2);
  ASSERT_TRUE(cached) << "in-transaction repeats may cache";
  MustRun(&wh, "ROLLBACK");
  EXPECT_EQ(Count(&wh, &cached), 1)
      << "the rolled-back insert must not be served from cache";
  EXPECT_FALSE(cached);
}

TEST_F(CacheInvalidationTest, StreamingRestoreInvalidatesEverything) {
  Warehouse wh(CachedOptions());
  MustRun(&wh, "CREATE TABLE t (k BIGINT, v BIGINT)");
  MustRun(&wh, "INSERT INTO t VALUES (1, 10), (2, 20)");
  auto backup = wh.Backup(/*user_initiated=*/true);
  ASSERT_TRUE(backup.ok()) << backup.status();

  MustRun(&wh, "INSERT INTO t VALUES (3, 30)");
  bool cached = false;
  EXPECT_EQ(Count(&wh, &cached), 3);
  EXPECT_EQ(Count(&wh, &cached), 3);
  ASSERT_TRUE(cached);

  ASSERT_TRUE(wh.RestoreInPlace(backup->snapshot_id).ok());
  EXPECT_EQ(Count(&wh, &cached), 2)
      << "restore rewinds the data; the post-backup count is stale";
  EXPECT_FALSE(cached);
}

// Chaos arm: the COPY aborts mid-load on an S3 outage, *after* the
// version bump but before any rows landed. The bump must stick — a
// failed write conservatively invalidates, it never un-invalidates.
TEST_F(CacheInvalidationTest, FailedCopyStillInvalidates) {
  Warehouse wh(CachedOptions());
  MustRun(&wh, "CREATE TABLE t (k BIGINT, v BIGINT)");
  MustRun(&wh, "INSERT INTO t VALUES (1, 10)");
  bool cached = false;
  EXPECT_EQ(Count(&wh, &cached), 1);
  EXPECT_EQ(Count(&wh, &cached), 1);
  ASSERT_TRUE(cached);

  std::string csv = "2,20\n3,30\n";
  backup::S3Region* region = wh.s3()->region("us-east-1");
  ASSERT_TRUE(
      region->PutObject("bkt/t/part-0", Bytes(csv.begin(), csv.end())).ok());
  region->fault_point()->FailNext(1000);  // outage beyond the retry budget
  auto failed = wh.Execute("COPY t FROM 's3://bkt/t/'");
  ASSERT_FALSE(failed.ok());
  region->fault_point()->Reset();

  EXPECT_EQ(Count(&wh, &cached), 1) << "no rows landed";
  EXPECT_FALSE(cached) << "the aborted COPY still invalidated the entry";
}

// Chaos arm: a node dies mid-SELECT right after an INSERT invalidated
// the cache. The re-execution masks the failure through replicas and
// must return the fresh rows — never fall back to the stale entry.
TEST_F(CacheInvalidationTest, NodeFailureDuringReexecutionStaysFresh) {
  WarehouseOptions options = CachedOptions();
  options.cluster.replicate = true;
  Warehouse wh(options);
  MustRun(&wh, "CREATE TABLE t (k BIGINT, v BIGINT)");
  std::string insert = "INSERT INTO t VALUES ";
  for (int i = 0; i < 200; ++i) {
    if (i) insert += ", ";
    insert += "(" + std::to_string(i) + ", " + std::to_string(i) + ")";
  }
  MustRun(&wh, insert);
  bool cached = false;
  EXPECT_EQ(Count(&wh, &cached), 200);
  EXPECT_EQ(Count(&wh, &cached), 200);
  ASSERT_TRUE(cached);

  MustRun(&wh, "INSERT INTO t VALUES (1000, 1000)");
  chaos::FaultInjector injector(0xC0FFEE);
  chaos::FaultPoint* point = injector.point("node0:read");
  wh.data_plane()->node(0)->store()->set_read_fault(point);
  point->ArmTrigger(1, [&] { wh.data_plane()->FailNode(0); });

  StatementResult masked = MustRun(&wh, kCount);
  EXPECT_FALSE(masked.from_result_cache);
  ASSERT_EQ(masked.rows.num_rows(), 1u);
  EXPECT_EQ(masked.rows.columns[0].IntAt(0), 201) << "fresh, fault-masked";
  EXPECT_GT(masked.exec_stats.masked_reads, 0u);
}

// stv_cache exposes entry liveness: a bumped version flips the entry to
// live=0 until the next execution replaces it.
TEST_F(CacheInvalidationTest, StvCacheShowsStaleEntries) {
  Warehouse wh(CachedOptions());
  MustRun(&wh, "CREATE TABLE t (k BIGINT, v BIGINT)");
  MustRun(&wh, "INSERT INTO t VALUES (1, 10)");
  Count(&wh);

  auto live = MustRun(&wh, "SELECT cache, live FROM stv_cache ORDER BY cache");
  ASSERT_EQ(live.rows.num_rows(), 2u) << "one segment + one result entry";
  EXPECT_EQ(live.rows.columns[1].IntAt(0), 1);
  EXPECT_EQ(live.rows.columns[1].IntAt(1), 1);

  MustRun(&wh, "INSERT INTO t VALUES (2, 20)");
  auto stale = MustRun(&wh, "SELECT cache, live FROM stv_cache ORDER BY cache");
  ASSERT_EQ(stale.rows.num_rows(), 2u);
  EXPECT_EQ(stale.rows.columns[1].IntAt(0), 0) << "segment entry now stale";
  EXPECT_EQ(stale.rows.columns[1].IntAt(1), 0) << "result entry now stale";
}

}  // namespace
}  // namespace sdw::warehouse
