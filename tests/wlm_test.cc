#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "cluster/wlm.h"
#include "common/random.h"

namespace sdw::cluster {
namespace {

WlmConfig Slots(int n, double penalty = 0.0) {
  WlmConfig config;
  config.concurrency_slots = n;
  config.per_slot_memory_penalty = penalty;
  return config;
}

TEST(WlmTest, SlotsBoundConcurrency) {
  sim::Engine engine;
  WorkloadManager wlm(&engine, Slots(2));
  for (int i = 0; i < 6; ++i) wlm.Submit(10.0);
  EXPECT_EQ(wlm.running(), 2);
  EXPECT_EQ(wlm.queued(), 4u);
  engine.RunUntil(15.0);
  EXPECT_EQ(wlm.running(), 2);  // next wave admitted
  engine.Run();
  EXPECT_EQ(wlm.running(), 0);
  EXPECT_EQ(wlm.reports().size(), 6u);
  // Three waves of two: completions at 10, 20, 30.
  EXPECT_DOUBLE_EQ(wlm.reports().back().finished_at, 30.0);
}

TEST(WlmTest, FifoAdmission) {
  sim::Engine engine;
  WorkloadManager wlm(&engine, Slots(1));
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    wlm.Submit(1.0, [&order, i](const WorkloadManager::QueryReport&) {
      order.push_back(i);
    });
  }
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(WlmTest, QueueTimeAccounted) {
  sim::Engine engine;
  WorkloadManager wlm(&engine, Slots(1));
  wlm.Submit(5.0);
  wlm.Submit(5.0);
  engine.Run();
  EXPECT_DOUBLE_EQ(wlm.reports()[0].queued_seconds, 0.0);
  EXPECT_DOUBLE_EQ(wlm.reports()[1].queued_seconds, 5.0);
  EXPECT_DOUBLE_EQ(wlm.reports()[1].exec_seconds, 5.0);
}

TEST(WlmTest, MemoryPenaltySlowsWideConfigs) {
  // 10 slots with a 4% per-slot penalty run each query 1.36x slower.
  sim::Engine engine;
  WorkloadManager wlm(&engine, Slots(10, 0.04));
  wlm.Submit(10.0);
  engine.Run();
  EXPECT_NEAR(wlm.reports()[0].exec_seconds, 13.6, 1e-9);
}

TEST(WlmTest, TradeoffComponentsAreMonotone) {
  // The two forces the slot count balances: queue wait falls with more
  // slots; per-query execution rises with more slots (smaller memory
  // share). The A11 bench shows the resulting sweet spot on a realistic
  // arrival mix.
  auto run = [](int slots) {
    sim::Engine engine;
    WorkloadManager wlm(&engine, Slots(slots, 0.04));
    for (int i = 0; i < 40; ++i) wlm.Submit(1.0);
    engine.Run();
    double queue = 0, exec = 0;
    for (const auto& r : wlm.reports()) {
      queue += r.queued_seconds;
      exec += r.exec_seconds;
    }
    return std::make_pair(queue / 40, exec / 40);
  };
  auto [q1, e1] = run(1);
  auto [q5, e5] = run(5);
  auto [q40, e40] = run(40);
  EXPECT_GT(q1, q5);
  EXPECT_GT(q5, q40);
  EXPECT_LT(e1, e5);
  EXPECT_LT(e5, e40);
}

TEST(WlmTest, LateSubmissionsAdmitImmediatelyWhenIdle) {
  sim::Engine engine;
  WorkloadManager wlm(&engine, Slots(2));
  wlm.Submit(1.0);
  engine.Run();
  ASSERT_EQ(wlm.reports().size(), 1u);
  // Engine idle at t=1; a new query starts right away.
  wlm.Submit(2.0);
  engine.Run();
  EXPECT_DOUBLE_EQ(wlm.reports()[1].queued_seconds, 0.0);
  EXPECT_DOUBLE_EQ(wlm.reports()[1].finished_at, 3.0);
}

TEST(WlmTest, ZeroAndNegativeSlotConfigsAreClamped) {
  // A zero- or negative-slot queue would deadlock every submission;
  // sanitize to the smallest valid config instead of crashing.
  EXPECT_EQ(SanitizeWlmConfig(Slots(0)).concurrency_slots, 1);
  EXPECT_EQ(SanitizeWlmConfig(Slots(-3)).concurrency_slots, 1);
  EXPECT_EQ(SanitizeWlmConfig(Slots(4)).concurrency_slots, 4);
  WlmConfig history = Slots(2);
  history.max_report_history = 0;
  EXPECT_EQ(SanitizeWlmConfig(history).max_report_history, 1u);

  // Both the simulator and the live controller accept the bad config.
  sim::Engine engine;
  WorkloadManager wlm(&engine, Slots(0));
  wlm.Submit(1.0);
  engine.Run();
  EXPECT_EQ(wlm.reports().size(), 1u);
  AdmissionController controller(Slots(-1));
  EXPECT_EQ(controller.config().concurrency_slots, 1);
  auto slot = controller.Admit();
  ASSERT_TRUE(slot.ok()) << slot.status();
}

TEST(WlmTest, SimulatorReportHistoryIsRingBuffered) {
  sim::Engine engine;
  WlmConfig config = Slots(2);
  config.max_report_history = 8;
  WorkloadManager wlm(&engine, config);
  for (int i = 0; i < 50; ++i) wlm.Submit(1.0);
  engine.Run();
  EXPECT_EQ(wlm.reports().size(), 8u) << "history must not grow unbounded";
  // The survivors are the newest reports: the last completion is at
  // t=25 (50 unit queries through 2 slots).
  EXPECT_DOUBLE_EQ(wlm.reports().back().finished_at, 25.0);
}

TEST(WlmTest, AdmissionReportHistoryIsRingBuffered) {
  WlmConfig config = Slots(4);
  config.max_report_history = 16;
  AdmissionController controller(config);
  for (int i = 0; i < 100; ++i) {
    AdmissionController::Report report;
    report.session_id = i;
    report.state = "run";
    controller.Record(std::move(report));
  }
  const std::vector<AdmissionController::Report> reports =
      controller.reports();
  ASSERT_EQ(reports.size(), 16u);
  EXPECT_EQ(reports.front().session_id, 84);
  EXPECT_EQ(reports.back().session_id, 99);
  // Sequence numbers keep counting across evictions.
  EXPECT_EQ(reports.back().seq, 99u);
}

TEST(WlmTest, AdmissionEnforcesSlotLimitAcrossThreads) {
  WlmConfig config = Slots(2);
  AdmissionController controller(config);
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&controller] {
      auto slot = controller.Admit();
      ASSERT_TRUE(slot.ok()) << slot.status();
      // Hold the slot briefly so admissions genuinely overlap.
      std::this_thread::yield();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(controller.running(), 0);
  EXPECT_EQ(controller.admitted(), 8u);
  EXPECT_LE(controller.max_in_flight(), 2);
  EXPECT_EQ(controller.timeouts(), 0u);
}

TEST(WlmTest, AdmissionQueueTimeoutFires) {
  WlmConfig config = Slots(1);
  config.queue_timeout_seconds = 0.02;
  AdmissionController controller(config);
  auto held = controller.Admit();
  ASSERT_TRUE(held.ok()) << held.status();
  // The only slot is occupied: the second admit must time out.
  auto starved = controller.Admit();
  ASSERT_FALSE(starved.ok());
  EXPECT_TRUE(starved.status().IsDeadlineExceeded()) << starved.status();
  EXPECT_EQ(controller.timeouts(), 1u);
  EXPECT_EQ(controller.queued(), 0u) << "timed-out waiters leave the queue";
}

}  // namespace
}  // namespace sdw::cluster
