#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/wlm.h"
#include "common/random.h"

namespace sdw::cluster {
namespace {

WlmConfig Slots(int n, double penalty = 0.0) {
  WlmConfig config;
  config.concurrency_slots = n;
  config.per_slot_memory_penalty = penalty;
  return config;
}

TEST(WlmTest, SlotsBoundConcurrency) {
  sim::Engine engine;
  WorkloadManager wlm(&engine, Slots(2));
  for (int i = 0; i < 6; ++i) wlm.Submit(10.0);
  EXPECT_EQ(wlm.running(), 2);
  EXPECT_EQ(wlm.queued(), 4u);
  engine.RunUntil(15.0);
  EXPECT_EQ(wlm.running(), 2);  // next wave admitted
  engine.Run();
  EXPECT_EQ(wlm.running(), 0);
  EXPECT_EQ(wlm.reports().size(), 6u);
  // Three waves of two: completions at 10, 20, 30.
  EXPECT_DOUBLE_EQ(wlm.reports().back().finished_at, 30.0);
}

TEST(WlmTest, FifoAdmission) {
  sim::Engine engine;
  WorkloadManager wlm(&engine, Slots(1));
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    wlm.Submit(1.0, [&order, i](const WorkloadManager::QueryReport&) {
      order.push_back(i);
    });
  }
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(WlmTest, QueueTimeAccounted) {
  sim::Engine engine;
  WorkloadManager wlm(&engine, Slots(1));
  wlm.Submit(5.0);
  wlm.Submit(5.0);
  engine.Run();
  EXPECT_DOUBLE_EQ(wlm.reports()[0].queued_seconds, 0.0);
  EXPECT_DOUBLE_EQ(wlm.reports()[1].queued_seconds, 5.0);
  EXPECT_DOUBLE_EQ(wlm.reports()[1].exec_seconds, 5.0);
}

TEST(WlmTest, MemoryPenaltySlowsWideConfigs) {
  // 10 slots with a 4% per-slot penalty run each query 1.36x slower.
  sim::Engine engine;
  WorkloadManager wlm(&engine, Slots(10, 0.04));
  wlm.Submit(10.0);
  engine.Run();
  EXPECT_NEAR(wlm.reports()[0].exec_seconds, 13.6, 1e-9);
}

TEST(WlmTest, TradeoffComponentsAreMonotone) {
  // The two forces the slot count balances: queue wait falls with more
  // slots; per-query execution rises with more slots (smaller memory
  // share). The A11 bench shows the resulting sweet spot on a realistic
  // arrival mix.
  auto run = [](int slots) {
    sim::Engine engine;
    WorkloadManager wlm(&engine, Slots(slots, 0.04));
    for (int i = 0; i < 40; ++i) wlm.Submit(1.0);
    engine.Run();
    double queue = 0, exec = 0;
    for (const auto& r : wlm.reports()) {
      queue += r.queued_seconds;
      exec += r.exec_seconds;
    }
    return std::make_pair(queue / 40, exec / 40);
  };
  auto [q1, e1] = run(1);
  auto [q5, e5] = run(5);
  auto [q40, e40] = run(40);
  EXPECT_GT(q1, q5);
  EXPECT_GT(q5, q40);
  EXPECT_LT(e1, e5);
  EXPECT_LT(e5, e40);
}

TEST(WlmTest, LateSubmissionsAdmitImmediatelyWhenIdle) {
  sim::Engine engine;
  WorkloadManager wlm(&engine, Slots(2));
  wlm.Submit(1.0);
  engine.Run();
  ASSERT_EQ(wlm.reports().size(), 1u);
  // Engine idle at t=1; a new query starts right away.
  wlm.Submit(2.0);
  engine.Run();
  EXPECT_DOUBLE_EQ(wlm.reports()[1].queued_seconds, 0.0);
  EXPECT_DOUBLE_EQ(wlm.reports()[1].finished_at, 3.0);
}

TEST(WlmTest, ZeroAndNegativeSlotConfigsAreClamped) {
  // A zero- or negative-slot queue would deadlock every submission;
  // sanitize to the smallest valid config instead of crashing.
  EXPECT_EQ(SanitizeWlmConfig(Slots(0)).concurrency_slots, 1);
  EXPECT_EQ(SanitizeWlmConfig(Slots(-3)).concurrency_slots, 1);
  EXPECT_EQ(SanitizeWlmConfig(Slots(4)).concurrency_slots, 4);
  WlmConfig history = Slots(2);
  history.max_report_history = 0;
  EXPECT_EQ(SanitizeWlmConfig(history).max_report_history, 1u);

  // Both the simulator and the live controller accept the bad config.
  sim::Engine engine;
  WorkloadManager wlm(&engine, Slots(0));
  wlm.Submit(1.0);
  engine.Run();
  EXPECT_EQ(wlm.reports().size(), 1u);
  AdmissionController controller(Slots(-1));
  EXPECT_EQ(controller.config().concurrency_slots, 1);
  auto slot = controller.Admit();
  ASSERT_TRUE(slot.ok()) << slot.status();
}

TEST(WlmTest, SimulatorReportHistoryIsRingBuffered) {
  sim::Engine engine;
  WlmConfig config = Slots(2);
  config.max_report_history = 8;
  WorkloadManager wlm(&engine, config);
  for (int i = 0; i < 50; ++i) wlm.Submit(1.0);
  engine.Run();
  EXPECT_EQ(wlm.reports().size(), 8u) << "history must not grow unbounded";
  // The survivors are the newest reports: the last completion is at
  // t=25 (50 unit queries through 2 slots).
  EXPECT_DOUBLE_EQ(wlm.reports().back().finished_at, 25.0);
}

TEST(WlmTest, AdmissionReportHistoryIsRingBuffered) {
  WlmConfig config = Slots(4);
  config.max_report_history = 16;
  AdmissionController controller(config);
  for (int i = 0; i < 100; ++i) {
    AdmissionController::Report report;
    report.session_id = i;
    report.state = "run";
    controller.Record(std::move(report));
  }
  const std::vector<AdmissionController::Report> reports =
      controller.reports();
  ASSERT_EQ(reports.size(), 16u);
  EXPECT_EQ(reports.front().session_id, 84);
  EXPECT_EQ(reports.back().session_id, 99);
  // Sequence numbers keep counting across evictions.
  EXPECT_EQ(reports.back().seq, 99u);
}

TEST(WlmTest, AdmissionEnforcesSlotLimitAcrossThreads) {
  WlmConfig config = Slots(2);
  AdmissionController controller(config);
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&controller] {
      auto slot = controller.Admit();
      ASSERT_TRUE(slot.ok()) << slot.status();
      // Hold the slot briefly so admissions genuinely overlap.
      std::this_thread::yield();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(controller.running(), 0);
  EXPECT_EQ(controller.admitted(), 8u);
  EXPECT_LE(controller.max_in_flight(), 2);
  EXPECT_EQ(controller.timeouts(), 0u);
}

TEST(WlmTest, AdmissionQueueTimeoutFires) {
  WlmConfig config = Slots(1);
  config.queue_timeout_seconds = 0.02;
  AdmissionController controller(config);
  auto held = controller.Admit();
  ASSERT_TRUE(held.ok()) << held.status();
  // The only slot is occupied: the second admit must time out.
  auto starved = controller.Admit();
  ASSERT_FALSE(starved.ok());
  EXPECT_TRUE(starved.status().IsDeadlineExceeded()) << starved.status();
  EXPECT_EQ(controller.timeouts(), 1u);
  EXPECT_EQ(controller.queued(), 0u) << "timed-out waiters leave the queue";
}

// ---------------------------------------------------------------------------
// Multi-queue WLM: classifier, hopping, SQA, sanitization.
// ---------------------------------------------------------------------------

WlmQueueConfig Queue(std::string name, int slots,
                     std::vector<std::string> query_classes = {},
                     std::vector<std::string> user_groups = {}) {
  WlmQueueConfig queue;
  queue.name = std::move(name);
  queue.slots = slots;
  queue.query_classes = std::move(query_classes);
  queue.user_groups = std::move(user_groups);
  return queue;
}

/// Spins until `pred` holds (tests only — the live controller runs on
/// real time, so cross-thread sequencing points need a poll).
bool WaitUntil(const std::function<bool()>& pred) {
  for (int i = 0; i < 5000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

TEST(WlmMultiQueueTest, SanitizeClampsQueueShares) {
  WlmConfig config = Slots(2);
  config.queues.push_back(Queue("etl", 0, {"copy"}));
  config.queues.push_back(Queue("adhoc", -3));
  config.queues[0].hop_on_timeout = "nowhere";  // dangling
  config.queues[1].hop_on_timeout = "adhoc";    // self
  config.queues[1].queue_timeout_seconds = -5;

  WlmConfig clean = SanitizeWlmConfig(config);
  ASSERT_EQ(clean.queues.size(), 3u) << "catch-all default must be appended";
  EXPECT_EQ(clean.queues[0].slots, 1) << "zero share clamps to 1";
  EXPECT_EQ(clean.queues[1].slots, 1) << "negative share clamps to 1";
  EXPECT_EQ(clean.queues[2].name, "default");
  EXPECT_EQ(clean.queues[2].slots, 1);
  // Shares (1 + 1 + 1) exceeded concurrency_slots=2: the total grows so
  // no named queue silently starves.
  EXPECT_EQ(clean.concurrency_slots, 3);
  EXPECT_TRUE(clean.queues[0].hop_on_timeout.empty()) << "dangling hop cleared";
  EXPECT_TRUE(clean.queues[1].hop_on_timeout.empty()) << "self hop cleared";
  EXPECT_EQ(clean.queues[1].queue_timeout_seconds, 0) << "negative -> inherit";

  WlmConfig sqa = Slots(2);
  sqa.enable_sqa = true;
  sqa.sqa_slots = 0;
  sqa.sqa_max_estimated_seconds = -1;
  sqa.sqa_demote_exec_seconds = 0;
  WlmConfig sqa_clean = SanitizeWlmConfig(sqa);
  EXPECT_EQ(sqa_clean.sqa_slots, 1);
  EXPECT_GT(sqa_clean.sqa_max_estimated_seconds, 0);
  EXPECT_GT(sqa_clean.sqa_demote_exec_seconds, 0);
}

TEST(WlmMultiQueueTest, ClassifierPrecedence) {
  WlmConfig config = Slots(8);
  config.queues.push_back(Queue("etl", 2, {"copy"}, {"analyst"}));
  config.queues.push_back(Queue("etl2", 2, {"copy"}));
  config.queues.push_back(Queue("dash", 2, {}, {"dashboard"}));
  AdmissionController controller(config);

  auto admitted_queue = [&controller](const std::string& group,
                                      const std::string& klass) {
    AdmitRequest request;
    request.user_group = group;
    request.query_class = klass;
    auto slot = controller.Admit(request);
    EXPECT_TRUE(slot.ok()) << slot.status();
    return slot.ok() ? slot->queue() : std::string();
  };

  // Query-class rules beat user-group rules.
  EXPECT_EQ(admitted_queue("dashboard", "copy"), "etl");
  // Within a pass, declaration order wins ("etl" before "etl2").
  EXPECT_EQ(admitted_queue("", "copy"), "etl");
  // Group pass runs when no class rule matches.
  EXPECT_EQ(admitted_queue("dashboard", "select"), "dash");
  // "analyst" is a group rule on etl, not a class rule: still group pass.
  EXPECT_EQ(admitted_queue("analyst", "select"), "etl");
  // Nothing matches: the catch-all.
  EXPECT_EQ(admitted_queue("unknown", "vacuum"), "default");
}

TEST(WlmMultiQueueTest, HopLandsInTargetFifoOrder) {
  WlmConfig config = Slots(2);
  config.queue_timeout_seconds = 10.0;
  config.queues.push_back(Queue("a", 1, {"qa"}));
  config.queues.back().hop_on_timeout = "b";
  config.queues.back().queue_timeout_seconds = 0.03;
  config.queues.push_back(Queue("b", 1, {"qb"}));
  AdmissionController controller(config);

  AdmitRequest in_a;
  in_a.query_class = "qa";
  AdmitRequest in_b;
  in_b.query_class = "qb";

  auto hold_a = controller.Admit(in_a);
  ASSERT_TRUE(hold_a.ok()) << hold_a.status();
  EXPECT_EQ(hold_a->queue(), "a");
  auto hold_b = controller.Admit(in_b);
  ASSERT_TRUE(hold_b.ok()) << hold_b.status();
  EXPECT_EQ(hold_b->queue(), "b");

  // Admission order recorder: each waiter notes its turn, then releases
  // its slot (Slot destructor) so the next head can go.
  std::atomic<int> turn{0};
  std::atomic<int> w1_turn{-1}, hopper_turn{-1}, w2_turn{-1};
  std::atomic<int> hopper_hops{-1};
  std::string hopper_queue;

  std::thread w1([&] {
    auto slot = controller.Admit(in_b);
    ASSERT_TRUE(slot.ok()) << slot.status();
    w1_turn = turn.fetch_add(1);
  });
  ASSERT_TRUE(WaitUntil([&] { return controller.queued() == 1; }));

  std::thread hopper([&] {
    auto slot = controller.Admit(in_a);
    ASSERT_TRUE(slot.ok()) << slot.status();
    hopper_turn = turn.fetch_add(1);
    hopper_hops = slot->hops();
    hopper_queue = slot->queue();
  });
  // The hopper waits 0.03s in "a", then re-enqueues at b's tail.
  ASSERT_TRUE(WaitUntil([&] { return controller.hops() == 1; }));

  std::thread w2([&] {
    auto slot = controller.Admit(in_b);
    ASSERT_TRUE(slot.ok()) << slot.status();
    w2_turn = turn.fetch_add(1);
  });
  ASSERT_TRUE(WaitUntil([&] { return controller.queued() == 3; }));

  // Free b's slot: the three waiters drain in b's FIFO order.
  hold_b = AdmissionController::Slot();
  w1.join();
  hopper.join();
  w2.join();

  EXPECT_EQ(w1_turn.load(), 0) << "b's original waiter was enqueued first";
  EXPECT_EQ(hopper_turn.load(), 1) << "the hop lands at b's tail, not head";
  EXPECT_EQ(w2_turn.load(), 2) << "arrivals after the hop queue behind it";
  EXPECT_EQ(hopper_queue, "b");
  EXPECT_EQ(hopper_hops.load(), 1);
  EXPECT_EQ(controller.timeouts(), 0u) << "a hop is not a cancellation";
  const std::vector<AdmissionController::QueueStats> stats =
      controller.queue_stats();
  ASSERT_EQ(stats.size(), 3u);  // a, b, default
  EXPECT_EQ(stats[0].name, "a");
  EXPECT_EQ(stats[0].hops_out, 1u);
  EXPECT_EQ(stats[0].timeouts, 0u);
}

TEST(WlmMultiQueueTest, TimeoutReportCarriesAccruedWaitAcrossHops) {
  // The regression this pins down: a queued statement that hops and then
  // times out must report the wait summed over *every* queue it visited
  // — not just the final residence, and never the configured timeout
  // constant.
  WlmConfig config = Slots(2);
  config.queues.push_back(Queue("a", 1, {"qa"}));
  config.queues.back().hop_on_timeout = "b";
  config.queues.back().queue_timeout_seconds = 0.04;
  config.queues.push_back(Queue("b", 1, {"qb"}));
  config.queues.back().queue_timeout_seconds = 0.04;
  AdmissionController controller(config);

  AdmitRequest in_a;
  in_a.query_class = "qa";
  AdmitRequest in_b;
  in_b.query_class = "qb";
  auto hold_a = controller.Admit(in_a);
  ASSERT_TRUE(hold_a.ok()) << hold_a.status();
  auto hold_b = controller.Admit(in_b);
  ASSERT_TRUE(hold_b.ok()) << hold_b.status();

  AdmitRequest starved;
  starved.query_class = "qa";
  starved.session_id = 7;
  starved.statement = "SELECT 1";
  AdmissionController::Report report;
  auto denied = controller.Admit(starved, &report);
  ASSERT_FALSE(denied.ok());
  EXPECT_TRUE(denied.status().IsDeadlineExceeded()) << denied.status();

  EXPECT_EQ(report.state, "timeout");
  EXPECT_EQ(report.queue, "b") << "cancelled from the queue it died in";
  EXPECT_EQ(report.hops, 1);
  EXPECT_EQ(report.session_id, 7);
  EXPECT_EQ(report.statement, "SELECT 1");
  // 0.04s accrued in "a" plus 0.04s in "b". The pre-fix behavior
  // reported only the last queue's wait (~0.04): assert the sum.
  EXPECT_GE(report.queued_seconds, 0.079);
  EXPECT_EQ(controller.timeouts(), 1u);
  EXPECT_EQ(controller.hops(), 1u);
}

TEST(WlmMultiQueueTest, SqaMisestimateDemotedNotWedged) {
  WlmConfig config = Slots(1);
  config.enable_sqa = true;
  config.sqa_slots = 1;
  config.sqa_max_estimated_seconds = 0.25;
  config.sqa_demote_exec_seconds = 0.01;
  AdmissionController controller(config);

  AdmitRequest cheap;
  cheap.query_class = "select";
  cheap.estimated_seconds = 0.001;
  auto overstayer = controller.Admit(cheap);
  ASSERT_TRUE(overstayer.ok()) << overstayer.status();
  EXPECT_EQ(overstayer->queue(), "sqa");

  // The "short" query is still holding its fast-lane slot well past the
  // demotion threshold. A genuinely short follow-up must not be wedged
  // behind it: waiters poll, demote the overstayer's accounting to its
  // home queue, and take the freed fast-lane slot.
  auto follow_up = controller.Admit(cheap);
  ASSERT_TRUE(follow_up.ok()) << follow_up.status();
  EXPECT_EQ(follow_up->queue(), "sqa");
  EXPECT_GE(controller.sqa_demotions(), 1u);
  // The demoted statement was not cancelled — it finishes normally.
  EXPECT_EQ(controller.timeouts(), 0u);
  EXPECT_EQ(controller.running(), 2);

  // Let both finish (the demoted overstayer now counts against the
  // default queue, so its release frees that slot for the next check).
  *overstayer = AdmissionController::Slot();
  *follow_up = AdmissionController::Slot();
  ASSERT_TRUE(WaitUntil([&] { return controller.running() == 0; }));

  // Estimates above the threshold (or unknown) never enter the lane.
  AdmitRequest heavy;
  heavy.query_class = "select";
  heavy.estimated_seconds = 10.0;
  {
    auto slot = controller.Admit(heavy);
    ASSERT_TRUE(slot.ok()) << slot.status();
    EXPECT_EQ(slot->queue(), "default");
  }
  AdmitRequest unknown;
  unknown.estimated_seconds = -1;
  {
    auto slot = controller.Admit(unknown);
    ASSERT_TRUE(slot.ok()) << slot.status();
    EXPECT_EQ(slot->queue(), "default");
  }
}

}  // namespace
}  // namespace sdw::cluster
