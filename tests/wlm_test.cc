#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/wlm.h"
#include "common/random.h"

namespace sdw::cluster {
namespace {

WlmConfig Slots(int n, double penalty = 0.0) {
  WlmConfig config;
  config.concurrency_slots = n;
  config.per_slot_memory_penalty = penalty;
  return config;
}

TEST(WlmTest, SlotsBoundConcurrency) {
  sim::Engine engine;
  WorkloadManager wlm(&engine, Slots(2));
  for (int i = 0; i < 6; ++i) wlm.Submit(10.0);
  EXPECT_EQ(wlm.running(), 2);
  EXPECT_EQ(wlm.queued(), 4u);
  engine.RunUntil(15.0);
  EXPECT_EQ(wlm.running(), 2);  // next wave admitted
  engine.Run();
  EXPECT_EQ(wlm.running(), 0);
  EXPECT_EQ(wlm.reports().size(), 6u);
  // Three waves of two: completions at 10, 20, 30.
  EXPECT_DOUBLE_EQ(wlm.reports().back().finished_at, 30.0);
}

TEST(WlmTest, FifoAdmission) {
  sim::Engine engine;
  WorkloadManager wlm(&engine, Slots(1));
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    wlm.Submit(1.0, [&order, i](const WorkloadManager::QueryReport&) {
      order.push_back(i);
    });
  }
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(WlmTest, QueueTimeAccounted) {
  sim::Engine engine;
  WorkloadManager wlm(&engine, Slots(1));
  wlm.Submit(5.0);
  wlm.Submit(5.0);
  engine.Run();
  EXPECT_DOUBLE_EQ(wlm.reports()[0].queued_seconds, 0.0);
  EXPECT_DOUBLE_EQ(wlm.reports()[1].queued_seconds, 5.0);
  EXPECT_DOUBLE_EQ(wlm.reports()[1].exec_seconds, 5.0);
}

TEST(WlmTest, MemoryPenaltySlowsWideConfigs) {
  // 10 slots with a 4% per-slot penalty run each query 1.36x slower.
  sim::Engine engine;
  WorkloadManager wlm(&engine, Slots(10, 0.04));
  wlm.Submit(10.0);
  engine.Run();
  EXPECT_NEAR(wlm.reports()[0].exec_seconds, 13.6, 1e-9);
}

TEST(WlmTest, TradeoffComponentsAreMonotone) {
  // The two forces the slot count balances: queue wait falls with more
  // slots; per-query execution rises with more slots (smaller memory
  // share). The A11 bench shows the resulting sweet spot on a realistic
  // arrival mix.
  auto run = [](int slots) {
    sim::Engine engine;
    WorkloadManager wlm(&engine, Slots(slots, 0.04));
    for (int i = 0; i < 40; ++i) wlm.Submit(1.0);
    engine.Run();
    double queue = 0, exec = 0;
    for (const auto& r : wlm.reports()) {
      queue += r.queued_seconds;
      exec += r.exec_seconds;
    }
    return std::make_pair(queue / 40, exec / 40);
  };
  auto [q1, e1] = run(1);
  auto [q5, e5] = run(5);
  auto [q40, e40] = run(40);
  EXPECT_GT(q1, q5);
  EXPECT_GT(q5, q40);
  EXPECT_LT(e1, e5);
  EXPECT_LT(e5, e40);
}

TEST(WlmTest, LateSubmissionsAdmitImmediatelyWhenIdle) {
  sim::Engine engine;
  WorkloadManager wlm(&engine, Slots(2));
  wlm.Submit(1.0);
  engine.Run();
  ASSERT_EQ(wlm.reports().size(), 1u);
  // Engine idle at t=1; a new query starts right away.
  wlm.Submit(2.0);
  engine.Run();
  EXPECT_DOUBLE_EQ(wlm.reports()[1].queued_seconds, 0.0);
  EXPECT_DOUBLE_EQ(wlm.reports()[1].finished_at, 3.0);
}

}  // namespace
}  // namespace sdw::cluster
