// Regression tests for the races the thread-safety annotation pass
// surfaced (run under the TSan CI leg, where the pre-fix code fails):
//
//  1. BlockStore hook setters vs in-flight operations: setters now
//     install under the store lock and operations copy the hook out
//     before invoking it, so swapping a handler mid-read is safe.
//  2. Cluster::InsertRows: inserts now serialize under the cluster
//     lock — the round-robin cursor and the shard appends commit
//     together (TableShard::Append is slice-private on the query path,
//     not thread-safe), so concurrent inserts cannot tear either and
//     every row lands exactly once.
//  3. ReplicationManager degraded writes: the warning log moved outside
//     the placement lock; the degradation accounting it sits next to
//     must still be exact.
//  4. ReReplicate skip-and-continue: the [[nodiscard]] sweep surfaced
//     that one failed block copy aborted the whole healing pass (and
//     the enclosing health sweep); failures are now skipped, counted,
//     and retried by the next sweep.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "common/fault_injector.h"
#include "replication/replication.h"
#include "storage/block_store.h"

namespace sdw {
namespace {

Bytes Payload(uint8_t tag, size_t n = 512) { return Bytes(n, tag); }

TEST(BlockStoreHookRace, SwappingHooksDuringReadsIsSafe) {
  storage::BlockStore store;
  std::vector<storage::BlockId> ids;
  for (int i = 0; i < 32; ++i) {
    storage::BlockId id = storage::BlockStore::Allocate();
    ASSERT_TRUE(store.Put(id, Payload(static_cast<uint8_t>(i))).ok());
    ids.push_back(id);
  }

  // Identity transform: swapping it in and out must not change what
  // readers observe.
  auto identity = [](storage::BlockId, Bytes data) -> Result<Bytes> {
    return data;
  };
  auto handler = [](storage::BlockId) -> Result<Bytes> {
    return Status::Unavailable("no replica in this test");
  };

  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      store.set_fault_handler(handler);
      store.set_read_transform(identity);
      store.set_fault_handler(nullptr);
      store.set_read_transform(nullptr);
    }
  });

  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (int r = 0; r < 3000; ++r) {
        const size_t i = static_cast<size_t>(t + r) % ids.size();
        auto read = store.Get(ids[i]);
        if (!read.ok() || *read != Payload(static_cast<uint8_t>(i))) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true, std::memory_order_relaxed);
  swapper.join();
  // Blocks are resident throughout, so every read must succeed no
  // matter which hooks were installed at the instant it ran.
  EXPECT_EQ(failures.load(), 0);
}

TEST(ClusterInsertRace, ConcurrentEvenInsertsLandEveryRowOnce) {
  cluster::ClusterConfig config;
  config.num_nodes = 2;
  config.slices_per_node = 2;
  config.exec_pool_threads = 0;
  config.storage.max_rows_per_block = 256;
  cluster::Cluster cluster(config);

  TableSchema schema("t", {{"v", TypeId::kInt64}});
  schema.SetDistStyle(DistStyle::kEven);
  ASSERT_TRUE(cluster.CreateTable(schema).ok());

  constexpr int kThreads = 4;
  constexpr int kBatches = 50;
  constexpr int kRowsPerBatch = 13;
  std::atomic<int> errors{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int b = 0; b < kBatches; ++b) {
        ColumnVector v(TypeId::kInt64);
        for (int i = 0; i < kRowsPerBatch; ++i) {
          v.AppendInt(t * 1000 + b);
        }
        std::vector<ColumnVector> cols;
        cols.push_back(std::move(v));
        if (!cluster.InsertRows("t", cols).ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : writers) th.join();
  ASSERT_EQ(errors.load(), 0);

  const uint64_t expected = uint64_t{kThreads} * kBatches * kRowsPerBatch;
  auto total = cluster.TotalRows("t");
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(*total, expected);
  // Inserts serialize, so the imbalance across slices is bounded by
  // the batch granularity, not by lost updates.
  uint64_t lo = expected;
  uint64_t hi = 0;
  for (int s = 0; s < cluster.total_slices(); ++s) {
    const uint64_t rows = (*cluster.shard(s, "t"))->row_count();
    lo = std::min(lo, rows);
    hi = std::max(hi, rows);
  }
  EXPECT_LE(hi - lo, uint64_t{kThreads} * kRowsPerBatch);
}

TEST(ReplicationDegradedWrite, AccountingExactWithLoggingOutsideLock) {
  storage::BlockStore a;
  storage::BlockStore b;
  replication::ReplicationManager repl({&a, &b});

  // First write replicates cleanly; then the secondary's device fails
  // the next put, which must degrade to a tracked single-copy
  // placement (and log — outside the placement lock).
  auto ok_id = repl.Write(0, Payload(1));
  ASSERT_TRUE(ok_id.ok());
  EXPECT_EQ(repl.degraded_writes(), 0u);
  ASSERT_TRUE(repl.GetPlacement(*ok_id).ok());
  EXPECT_EQ(repl.GetPlacement(*ok_id)->secondary, 1);

  chaos::FaultPoint write_fault("node1:write");
  b.set_write_fault(&write_fault);
  write_fault.FailNext(1);
  auto degraded_id = repl.Write(0, Payload(2));
  ASSERT_TRUE(degraded_id.ok());
  EXPECT_EQ(repl.degraded_writes(), 1u);
  auto placement = repl.GetPlacement(*degraded_id);
  ASSERT_TRUE(placement.ok());
  EXPECT_EQ(placement->primary, 0);
  EXPECT_EQ(placement->secondary, -1);
  // The primary copy still serves reads.
  EXPECT_TRUE(repl.Read(*degraded_id).ok());
}

TEST(ReReplicateSkip, OneFailedCopyDoesNotAbortHealingTheRest) {
  // Regression for the ignored-Status bug the [[nodiscard]] sweep
  // surfaced: ReReplicate() used to SDW_RETURN_IF_ERROR out of its
  // healing loop on the first failed block copy, so one transient
  // device fault left every later degraded block single-copy — and the
  // health sweep that called it then skipped node replacement and GC
  // for that cycle too.
  std::vector<std::unique_ptr<storage::BlockStore>> owned;
  std::vector<storage::BlockStore*> stores;
  for (int i = 0; i < 4; ++i) {
    owned.push_back(std::make_unique<storage::BlockStore>());
    stores.push_back(owned.back().get());
  }
  replication::ReplicationManager repl(stores, {2});

  std::vector<storage::BlockId> ids;
  for (int i = 0; i < 6; ++i) {
    auto id = repl.Write(0, Payload(static_cast<uint8_t>(i)));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  // Primary 0's cohort is {0, 1}, so every secondary landed on node 1;
  // failing it degrades all six blocks with node 0 as sole survivor.
  repl.FailNode(1);
  ASSERT_EQ(repl.CountSingleCopyBlocks(), 6);

  // Re-replication falls back past the exhausted cohort to node 2 for
  // every block. Script exactly one device write failure there.
  chaos::FaultPoint write_fault("node2:write");
  write_fault.FailNext(1);
  stores[2]->set_write_fault(&write_fault);

  auto restored = repl.ReReplicate();
  ASSERT_TRUE(restored.ok()) << restored.status();
  // The faulted block is skipped, the other five heal (pre-fix: error
  // returned, zero healed).
  EXPECT_EQ(*restored, 5);
  EXPECT_EQ(repl.CountSingleCopyBlocks(), 1);

  // The skipped block is picked up by the next sweep once the fault
  // clears.
  auto retry = repl.ReReplicate();
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_EQ(*retry, 1);
  EXPECT_EQ(repl.CountSingleCopyBlocks(), 0);
  for (storage::BlockId id : ids) EXPECT_EQ(repl.ReplicaCount(id), 2);
}

}  // namespace
}  // namespace sdw
