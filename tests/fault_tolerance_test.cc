// End-to-end fault tolerance: deterministic fault injection (seeded
// rates, scripted outages, mid-query triggers), the replicated read
// path that masks media failures and whole-node loss (§2.1), bounded
// retry against transient S3 unavailability, and the warehouse health
// sweep that restarts flaky nodes locally and escalates dead ones to
// the control plane's replacement workflow (§2.2).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "common/retry.h"
#include "replication/replication.h"
#include "warehouse/warehouse.h"

namespace sdw::warehouse {
namespace {

Bytes MakePayload(const std::string& text) {
  return Bytes(text.begin(), text.end());
}

// --- chaos::FaultPoint scripting modes ---

TEST(FaultPointTest, SeededFailureRateIsDeterministic) {
  auto run = [](uint64_t seed) {
    chaos::FaultPoint point("site", seed);
    point.set_failure_rate(0.3);
    std::vector<bool> injected;
    for (int i = 0; i < 200; ++i) injected.push_back(!point.OnCall().ok());
    return injected;
  };
  const auto a = run(7);
  const auto b = run(7);
  EXPECT_EQ(a, b) << "same seed must inject the same calls";
  EXPECT_NE(a, run(8)) << "different seeds must differ";
  chaos::FaultPoint clean("clean");
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(clean.OnCall().ok());
}

TEST(FaultPointTest, FailNextAndTriggers) {
  chaos::FaultPoint point("site");
  point.FailNext(2, StatusCode::kCorruption);
  EXPECT_EQ(point.OnCall().code(), StatusCode::kCorruption);
  EXPECT_EQ(point.OnCall().code(), StatusCode::kCorruption);
  EXPECT_TRUE(point.OnCall().ok()) << "outage must end after exactly N calls";
  EXPECT_EQ(point.calls(), 3u);
  EXPECT_EQ(point.injected(), 2u);

  int fired_at = -1;
  point.ArmTrigger(5, [&] { fired_at = static_cast<int>(point.calls()); });
  EXPECT_TRUE(point.OnCall().ok());  // call 4
  EXPECT_EQ(fired_at, -1);
  EXPECT_TRUE(point.OnCall().ok());  // call 5: trigger fires, call succeeds
  EXPECT_EQ(fired_at, 5);
}

TEST(FaultPointTest, InjectorSeedsPointsPerSite) {
  chaos::FaultInjector injector(42);
  chaos::FaultPoint* a = injector.point("node0:read");
  EXPECT_EQ(a, injector.point("node0:read")) << "points are singletons";
  EXPECT_NE(a, injector.point("node1:read"));
  EXPECT_EQ(injector.sites(),
            (std::vector<std::string>{"node0:read", "node1:read"}));
}

// --- common::Retry against a scripted S3 outage ---

TEST(RetryTest, RecoversWithinBudgetFailsBeyondIt) {
  backup::S3 s3;
  backup::S3Region* region = s3.region("us-east-1");
  ASSERT_TRUE(region->PutObject("k", MakePayload("v")).ok());

  // Outage shorter than the budget: retried away, backoff accounted.
  region->fault_point()->FailNext(2);
  common::RetryPolicy policy;
  policy.max_attempts = 4;
  common::Retry retry(policy);
  auto got = retry.Call<Bytes>([&] { return region->GetObject("k"); });
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(retry.attempts(), 3);
  EXPECT_GT(retry.backoff_seconds(), 0.0);

  // Outage longer than the budget: clean kUnavailable, bounded attempts.
  region->fault_point()->FailNext(100);
  common::Retry exhausted(policy);
  auto failed = exhausted.Call<Bytes>([&] { return region->GetObject("k"); });
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(exhausted.attempts(), policy.max_attempts);
  region->fault_point()->Reset();

  // Non-transient errors are never retried.
  common::Retry not_found(policy);
  auto missing = not_found.Call<Bytes>([&] { return region->GetObject("no"); });
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(not_found.attempts(), 1);
}

// --- replication: degraded writes heal instead of leaking orphans ---

TEST(ReplicationFaultTest, SecondaryPutFailureDegradesThenHeals) {
  storage::BlockStore a, b;
  replication::ReplicationManager repl({&a, &b});

  chaos::FaultPoint write_fault("node1:write");
  b.set_write_fault(&write_fault);
  write_fault.FailNext(1);

  auto id = repl.Write(0, MakePayload("hello blocks"));
  ASSERT_TRUE(id.ok()) << "a failed secondary must degrade, not fail the "
                          "write: " << id.status();
  EXPECT_EQ(repl.degraded_writes(), 1u);
  EXPECT_EQ(b.num_blocks(), 0u) << "no orphaned secondary copy";
  auto placement = repl.GetPlacement(*id);
  ASSERT_TRUE(placement.ok());
  EXPECT_EQ(placement->primary, 0);
  EXPECT_EQ(placement->secondary, -1) << "single-copy placement recorded";
  EXPECT_EQ(repl.CountSingleCopyBlocks(), 1);

  // The device recovered; re-replication restores two-copy redundancy.
  auto healed = repl.ReReplicate();
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(*healed, 1);
  EXPECT_EQ(repl.ReplicaCount(*id), 2);
  EXPECT_EQ(repl.CountSingleCopyBlocks(), 0);
  ASSERT_TRUE(b.Contains(*id));
  auto copy = b.GetStored(*id);
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(*copy, MakePayload("hello blocks"));
}

// --- concurrent fault-ins share one fetch (deterministic counters) ---

TEST(ReplicationFaultTest, ConcurrentFaultsOfOneBlockSingleFlight) {
  storage::BlockStore store;
  const storage::BlockId id = storage::BlockStore::Allocate();
  ASSERT_TRUE(store.Put(id, MakePayload("payload")).ok());
  store.DropForTest(id);

  std::atomic<int> handler_calls{0};
  store.set_fault_handler([&](storage::BlockId) -> Result<Bytes> {
    handler_calls.fetch_add(1);
    return MakePayload("payload");
  });

  std::vector<std::thread> threads;
  std::atomic<int> successes{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      auto got = store.Get(id);
      if (got.ok() && *got == MakePayload("payload")) successes.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(successes.load(), 4);
  EXPECT_EQ(handler_calls.load(), 1) << "racers must share the leader's fetch";
  EXPECT_EQ(store.faults(), 1u);
  EXPECT_TRUE(store.Contains(id)) << "faulted block is cached back in";
}

// --- warehouse-level chaos ---

WarehouseOptions ReplicatedOptions(int nodes = 4) {
  WarehouseOptions options;
  options.cluster.num_nodes = nodes;
  options.cluster.slices_per_node = 2;
  options.cluster.storage.max_rows_per_block = 64;
  options.cluster.replicate = true;
  // These scenarios repeat one query before/after a fault and assert on
  // its execution stats (masked reads). A result-cache hit would be
  // byte-identical but skip execution entirely — force the re-run.
  options.cache.enable_result_cache = false;
  return options;
}

class FaultWarehouseTest : public ::testing::Test {
 protected:
  StatementResult MustRun(Warehouse* wh, const std::string& sql) {
    auto r = wh->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? std::move(*r) : StatementResult{};
  }

  void LoadFleet(Warehouse* wh, int rows = 600) {
    MustRun(wh, "CREATE TABLE t (k BIGINT, v BIGINT) DISTKEY(k) SORTKEY(v)");
    std::string insert = "INSERT INTO t VALUES ";
    for (int i = 0; i < rows; ++i) {
      if (i) insert += ", ";
      insert += "(" + std::to_string(i % 37) + ", " + std::to_string(i) + ")";
    }
    MustRun(wh, insert);
  }

  static constexpr const char* kQuery =
      "SELECT k, COUNT(*) AS n, SUM(v) AS s FROM t GROUP BY k ORDER BY k";
};

// The acceptance scenario: a seeded injector kills a whole node in the
// middle of a query. The query completes with byte-identical results
// through masked replica reads, and the next health sweep re-replicates
// every under-replicated block and escalates the node to a
// control-plane replacement.
TEST_F(FaultWarehouseTest, NodeDiesMidQueryMaskedThenRecovered) {
  Warehouse wh(ReplicatedOptions(4));
  LoadFleet(&wh);
  const std::string baseline = MustRun(&wh, kQuery).ToTable(100000);

  chaos::FaultInjector injector(0xFEED);
  chaos::FaultPoint* point = injector.point("node0:read");
  wh.data_plane()->node(0)->store()->set_read_fault(point);
  // The first read node 0 serves during the query takes the whole node
  // down: every local block vanishes and the node is marked failed.
  point->ArmTrigger(1, [&] { wh.data_plane()->FailNode(0); });

  StatementResult after = MustRun(&wh, kQuery);
  EXPECT_EQ(after.ToTable(100000), baseline)
      << "masked reads must be invisible to the client";
  EXPECT_GT(after.exec_stats.masked_reads, 0u);
  EXPECT_GT(wh.data_plane()->node_read_failures(0), 0u);

  auto health = wh.RunHealthSweep();
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(health->unhealthy_nodes, 1);
  EXPECT_EQ(health->escalations, 1) << "a dead node goes straight to the "
                                       "control plane";
  EXPECT_EQ(health->restarts, 0);
  EXPECT_GT(health->blocks_rereplicated, 0u);
  EXPECT_EQ(health->single_copy_blocks, 0u);
  EXPECT_EQ(health->lost_blocks, 0u);
  EXPECT_GT(health->control_plane_seconds, 0.0);

  replication::ReplicationManager* repl = wh.data_plane()->replication();
  EXPECT_FALSE(repl->IsNodeFailed(0)) << "replacement rejoined the fleet";
  for (storage::BlockId id : repl->AllBlocks()) {
    EXPECT_EQ(repl->ReplicaCount(id), 2) << "block " << id;
  }
  EXPECT_EQ(MustRun(&wh, kQuery).ToTable(100000), baseline);
}

TEST_F(FaultWarehouseTest, QueryOverFailedNodeIsByteIdentical) {
  Warehouse wh(ReplicatedOptions(4));
  LoadFleet(&wh);
  const std::string baseline = MustRun(&wh, kQuery).ToTable(100000);

  wh.data_plane()->FailNode(2);
  StatementResult masked = MustRun(&wh, kQuery);
  EXPECT_EQ(masked.ToTable(100000), baseline);
  EXPECT_GT(masked.exec_stats.masked_reads, 0u);
  EXPECT_EQ(masked.exec_stats.s3_fault_reads, 0u)
      << "replica masking must come before the S3 page-fault path";
}

// A flaky-but-alive node is a host-manager problem first: restart
// locally, escalate only after the restart budget is spent.
TEST_F(FaultWarehouseTest, FlakyNodeRestartsThenEscalates) {
  WarehouseOptions options = ReplicatedOptions(4);
  options.health_read_failure_threshold = 3;
  options.host_manager.max_restarts = 1;
  Warehouse wh(options);
  LoadFleet(&wh);

  auto provoke_faults = [&] {
    storage::BlockStore* store = wh.data_plane()->node(1)->store();
    for (storage::BlockId id : store->ListIds()) store->DropForTest(id);
    MustRun(&wh, kQuery);
    ASSERT_GE(wh.data_plane()->node_read_failures(1), 3u);
  };

  provoke_faults();
  auto first = wh.RunHealthSweep();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->restarts, 1);
  EXPECT_EQ(first->escalations, 0);
  EXPECT_EQ(wh.data_plane()->node_read_failures(1), 0u)
      << "a restart clears the node's failure counter";

  provoke_faults();
  auto second = wh.RunHealthSweep();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->restarts, 0);
  EXPECT_EQ(second->escalations, 1) << "restart budget spent: escalate";
  EXPECT_EQ(MustRun(&wh, "SELECT COUNT(*) AS n FROM t")
                .rows.columns[0]
                .IntAt(0),
            600);
}

// Two nodes, one dead: no healthy peer to re-replicate to, so the sweep
// reports degraded single-copy mode and the warehouse keeps serving;
// once the replacement rejoins, the next sweep restores two copies.
TEST_F(FaultWarehouseTest, DegradedSingleCopyModeKeepsServing) {
  Warehouse wh(ReplicatedOptions(2));
  LoadFleet(&wh, 300);
  const std::string baseline =
      MustRun(&wh, "SELECT SUM(v) AS s FROM t").ToTable();

  wh.data_plane()->FailNode(1);
  EXPECT_EQ(MustRun(&wh, "SELECT SUM(v) AS s FROM t").ToTable(), baseline);

  auto first = wh.RunHealthSweep();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->escalations, 1);
  EXPECT_EQ(first->blocks_rereplicated, 0u)
      << "nowhere to copy to while the peer is down";
  EXPECT_GT(first->single_copy_blocks, 0u);
  EXPECT_EQ(first->lost_blocks, 0u);
  EXPECT_EQ(MustRun(&wh, "SELECT SUM(v) AS s FROM t").ToTable(), baseline)
      << "degrade, don't fail";

  auto second = wh.RunHealthSweep();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_GT(second->blocks_rereplicated, 0u);
  EXPECT_EQ(second->single_copy_blocks, 0u);
  replication::ReplicationManager* repl = wh.data_plane()->replication();
  for (storage::BlockId id : repl->AllBlocks()) {
    EXPECT_EQ(repl->ReplicaCount(id), 2);
  }
}

TEST_F(FaultWarehouseTest, HealthSweepNeedsReplication) {
  WarehouseOptions options;
  options.cluster.num_nodes = 2;
  Warehouse wh(options);
  EXPECT_EQ(wh.RunHealthSweep().status().code(),
            StatusCode::kFailedPrecondition);
}

// --- COPY and Backup survive scripted S3 outages via bounded retry ---

TEST_F(FaultWarehouseTest, CopyRetriesTransientOutageFailsBeyondBudget) {
  Warehouse wh(ReplicatedOptions(2));
  MustRun(&wh, "CREATE TABLE logs (ts BIGINT, msg VARCHAR)");
  std::string csv;
  for (int i = 0; i < 400; ++i) {
    csv += std::to_string(i) + ",m" + std::to_string(i % 9) + "\n";
  }
  backup::S3Region* region = wh.s3()->region("us-east-1");
  ASSERT_TRUE(region->PutObject("bkt/logs/part-0", MakePayload(csv)).ok());

  // Transient: outage shorter than the default 4-attempt budget.
  region->fault_point()->FailNext(2);
  StatementResult loaded = MustRun(&wh, "COPY logs FROM 's3://bkt/logs/'");
  EXPECT_EQ(loaded.copy_stats.rows_loaded, 400u);
  EXPECT_EQ(loaded.copy_stats.s3_retry_attempts, 2);
  EXPECT_GT(loaded.copy_stats.retry_backoff_seconds, 0.0);

  // Hard outage: budget spent, clean kUnavailable to the client.
  region->fault_point()->FailNext(1000);
  auto failed = wh.Execute("COPY logs FROM 's3://bkt/logs/'");
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  region->fault_point()->Reset();
}

TEST_F(FaultWarehouseTest, BackupRetriesTransientOutageFailsBeyondBudget) {
  Warehouse wh(ReplicatedOptions(2));
  LoadFleet(&wh, 200);
  backup::S3Region* region = wh.s3()->region("us-east-1");

  region->fault_point()->FailNext(2);
  auto backup = wh.Backup(/*user_initiated=*/true);
  ASSERT_TRUE(backup.ok()) << backup.status();
  EXPECT_EQ(backup->s3_retry_attempts, 2);
  EXPECT_GT(backup->retry_backoff_seconds, 0.0);
  EXPECT_GT(backup->blocks_uploaded, 0u);

  MustRun(&wh, "INSERT INTO t VALUES (1, 10000)");
  region->fault_point()->FailNext(1000);
  EXPECT_EQ(wh.Backup().status().code(), StatusCode::kUnavailable);
  region->fault_point()->Reset();
}

// Streaming restore wires the S3 page-fault path behind replication
// masking: a restored (cold) cluster serves queries by faulting blocks
// in from the object store, counted separately from masked reads.
TEST_F(FaultWarehouseTest, RestoredClusterPageFaultsFromS3) {
  Warehouse wh(ReplicatedOptions(2));
  LoadFleet(&wh, 300);
  const std::string baseline = MustRun(&wh, kQuery).ToTable(100000);
  auto backup = wh.Backup(/*user_initiated=*/true);
  ASSERT_TRUE(backup.ok()) << backup.status();

  ASSERT_TRUE(wh.RestoreInPlace(backup->snapshot_id).ok());
  StatementResult cold = MustRun(&wh, kQuery);
  EXPECT_EQ(cold.ToTable(100000), baseline);
  EXPECT_GT(cold.exec_stats.s3_fault_reads, 0u);
  EXPECT_EQ(wh.data_plane()->node_read_failures(0), 0u)
      << "cold page faults are not a node-health signal";
  EXPECT_EQ(wh.data_plane()->node_read_failures(1), 0u);

  // Once paged in, reads are local again.
  StatementResult warm = MustRun(&wh, kQuery);
  EXPECT_EQ(warm.exec_stats.s3_fault_reads, 0u);
  EXPECT_EQ(warm.ToTable(100000), baseline);
}

// DROP TABLE and VACUUM must reclaim secondary copies too — otherwise
// every rewrite leaks replica blocks on the peers.
TEST_F(FaultWarehouseTest, DropAndVacuumReclaimSecondaryCopies) {
  Warehouse wh(ReplicatedOptions(2));
  LoadFleet(&wh, 300);
  replication::ReplicationManager* repl = wh.data_plane()->replication();
  ASSERT_GT(repl->AllBlocks().size(), 0u);

  MustRun(&wh, "INSERT INTO t VALUES (5, 9999)");  // second sorted run
  const size_t tracked_before = repl->AllBlocks().size();
  MustRun(&wh, "VACUUM t");
  EXPECT_LE(repl->AllBlocks().size(), tracked_before);
  for (storage::BlockId id : repl->AllBlocks()) {
    EXPECT_EQ(repl->ReplicaCount(id), 2) << "vacuumed chains re-replicate";
  }

  MustRun(&wh, "DROP TABLE t");
  EXPECT_EQ(repl->AllBlocks().size(), 0u);
  EXPECT_EQ(wh.data_plane()->node(0)->store()->num_blocks(), 0u);
  EXPECT_EQ(wh.data_plane()->node(1)->store()->num_blocks(), 0u)
      << "secondary copies reclaimed";
}

}  // namespace
}  // namespace sdw::warehouse
