#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "zorder/zorder.h"

namespace sdw::zorder {
namespace {

TEST(InterleaveTest, TwoDimKnownValues) {
  // Classic Morton pattern: (x=1, y=0) -> 1, (0,1) -> 2, (1,1) -> 3.
  EXPECT_EQ(Interleave({0, 0}), 0u);
  EXPECT_EQ(Interleave({1, 0}), 1u);
  EXPECT_EQ(Interleave({0, 1}), 2u);
  EXPECT_EQ(Interleave({1, 1}), 3u);
  EXPECT_EQ(Interleave({2, 0}), 4u);
  EXPECT_EQ(Interleave({3, 3}), 15u);
}

TEST(InterleaveTest, RoundTripProperty) {
  Rng rng(1);
  for (size_t ndims = 1; ndims <= 8; ++ndims) {
    const int bits = BitsPerDim(ndims);
    const uint32_t mask =
        bits >= 32 ? 0xffffffffu : ((1u << bits) - 1);
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<uint32_t> coords(ndims);
      for (auto& c : coords) c = static_cast<uint32_t>(rng.Next()) & mask;
      uint64_t key = Interleave(coords);
      EXPECT_EQ(Deinterleave(key, ndims), coords);
    }
  }
}

TEST(InterleaveTest, SingleDimIsIdentity) {
  EXPECT_EQ(Interleave({12345u}), 12345u);
  EXPECT_EQ(Deinterleave(99999u, 1), (std::vector<uint32_t>{99999u}));
}

TEST(InterleaveTest, MonotoneAlongEachAxis) {
  // Fixing all other coordinates, the key grows with any coordinate.
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    uint32_t x = static_cast<uint32_t>(rng.Uniform(1u << 30));
    uint32_t y = static_cast<uint32_t>(rng.Uniform(1u << 30));
    EXPECT_LT(Interleave({x, y}), Interleave({x + 1, y}));
    EXPECT_LT(Interleave({x, y}), Interleave({x, y + 1}));
  }
}

TEST(MapperTest, RejectsBadDimensionCounts) {
  EXPECT_FALSE(ZOrderMapper::Create({}).ok());
  std::vector<ZOrderMapper::Dimension> nine(9);
  EXPECT_FALSE(ZOrderMapper::Create(nine).ok());
}

TEST(MapperTest, NumericScaling) {
  auto mapper = ZOrderMapper::Create(
      {{TypeId::kInt64, 0.0, 100.0}, {TypeId::kInt64, 0.0, 100.0}});
  ASSERT_TRUE(mapper.ok());
  EXPECT_EQ(mapper->MapValue(0, Datum::Int64(0)), 0u);
  uint32_t mid = mapper->MapValue(0, Datum::Int64(50));
  uint32_t hi = mapper->MapValue(0, Datum::Int64(100));
  EXPECT_GT(mid, 0u);
  EXPECT_GT(hi, mid);
  // Out-of-calibration values clamp instead of wrapping.
  EXPECT_EQ(mapper->MapValue(0, Datum::Int64(1000)), hi);
  EXPECT_EQ(mapper->MapValue(0, Datum::Int64(-5)), 0u);
  // NULLs sort first.
  EXPECT_EQ(mapper->MapValue(0, Datum::Null()), 0u);
}

TEST(MapperTest, StringOrdinalPreservesPrefixOrder) {
  auto mapper =
      ZOrderMapper::Create({{TypeId::kString, 0, 0}, {TypeId::kInt64, 0, 1}});
  ASSERT_TRUE(mapper.ok());
  EXPECT_LT(mapper->MapValue(0, Datum::String("apple")),
            mapper->MapValue(0, Datum::String("banana")));
  EXPECT_LT(mapper->MapValue(0, Datum::String("banana")),
            mapper->MapValue(0, Datum::String("cherry")));
}

TEST(MapperTest, MapColumnsMatchesMapRow) {
  ColumnVector a(TypeId::kInt64);
  ColumnVector b(TypeId::kInt64);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    a.AppendInt(rng.UniformRange(0, 1000));
    b.AppendInt(rng.UniformRange(0, 1000));
  }
  auto mapper = BuildMapperFromColumns({&a, &b});
  ASSERT_TRUE(mapper.ok());
  auto keys = mapper->MapColumns({&a, &b});
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ(keys->size(), 500u);
  for (size_t i = 0; i < 500; ++i) {
    EXPECT_EQ((*keys)[i], mapper->MapRow({a.DatumAt(i), b.DatumAt(i)}));
  }
}

TEST(MapperTest, RaggedColumnsRejected) {
  ColumnVector a(TypeId::kInt64);
  ColumnVector b(TypeId::kInt64);
  a.AppendInt(1);
  auto mapper = ZOrderMapper::Create(
      {{TypeId::kInt64, 0, 1}, {TypeId::kInt64, 0, 1}});
  ASSERT_TRUE(mapper.ok());
  EXPECT_FALSE(mapper->MapColumns({&a, &b}).ok());
  EXPECT_FALSE(mapper->MapColumns({&a}).ok());
}

TEST(MapperTest, ZOrderClustersBothDimensions) {
  // Sort 4096 points of a 64x64 grid by z-key and cut into 64 chunks:
  // every chunk must span far less than the full range in BOTH
  // dimensions (that is the multidimensional-clustering property the
  // paper relies on, vs. a compound sort where the trailing dimension
  // spans everything).
  const int kSide = 64;
  std::vector<std::pair<uint64_t, std::pair<int, int>>> points;
  auto mapper = ZOrderMapper::Create({{TypeId::kInt64, 0, kSide - 1},
                                      {TypeId::kInt64, 0, kSide - 1}});
  ASSERT_TRUE(mapper.ok());
  for (int x = 0; x < kSide; ++x) {
    for (int y = 0; y < kSide; ++y) {
      uint64_t key = mapper->MapRow({Datum::Int64(x), Datum::Int64(y)});
      points.push_back({key, {x, y}});
    }
  }
  std::sort(points.begin(), points.end());
  const size_t kChunk = 64;
  double total_span_x = 0;
  double total_span_y = 0;
  for (size_t start = 0; start < points.size(); start += kChunk) {
    int min_x = kSide, max_x = -1, min_y = kSide, max_y = -1;
    for (size_t i = start; i < start + kChunk; ++i) {
      auto [x, y] = points[i].second;
      min_x = std::min(min_x, x);
      max_x = std::max(max_x, x);
      min_y = std::min(min_y, y);
      max_y = std::max(max_y, y);
    }
    total_span_x += max_x - min_x;
    total_span_y += max_y - min_y;
  }
  const double chunks = static_cast<double>(points.size()) / kChunk;
  // Average per-chunk span must be a small fraction of the side in both
  // dimensions (perfect z-order on a square grid gives ~ side/8).
  EXPECT_LT(total_span_x / chunks, kSide / 3.0);
  EXPECT_LT(total_span_y / chunks, kSide / 3.0);
}

}  // namespace
}  // namespace sdw::zorder
