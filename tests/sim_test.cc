#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"

namespace sdw::sim {
namespace {

TEST(EngineTest, EventsRunInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.Schedule(3.0, [&] { order.push_back(3); });
  e.Schedule(1.0, [&] { order.push_back(1); });
  e.Schedule(2.0, [&] { order.push_back(2); });
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.Now(), 3.0);
  EXPECT_EQ(e.events_executed(), 3u);
}

TEST(EngineTest, SameTimeIsFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  e.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EngineTest, EventsCanScheduleMoreEvents) {
  Engine e;
  std::vector<double> times;
  std::function<void()> tick = [&] {
    times.push_back(e.Now());
    if (times.size() < 5) e.Schedule(2.0, tick);
  };
  e.Schedule(0.0, tick);
  e.Run();
  ASSERT_EQ(times.size(), 5u);
  EXPECT_DOUBLE_EQ(times[4], 8.0);
}

TEST(EngineTest, RunUntilAdvancesClockExactly) {
  Engine e;
  int fired = 0;
  e.Schedule(5.0, [&] { ++fired; });
  e.Schedule(15.0, [&] { ++fired; });
  e.RunUntil(10.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(e.Now(), 10.0);
  e.Run();
  EXPECT_EQ(fired, 2);
}

TEST(JoinBarrierTest, FiresOnceAfterNArrivals) {
  int fired = 0;
  JoinBarrier barrier(3, [&] { ++fired; });
  barrier.Arrive();
  barrier.Arrive();
  EXPECT_EQ(fired, 0);
  barrier.Arrive();
  EXPECT_EQ(fired, 1);
}

TEST(ResourceTest, CapacityLimitsConcurrency) {
  Engine e;
  Resource disk(&e, 2);
  std::vector<double> completions;
  // Three 10s jobs on a 2-wide resource: two finish at 10, one at 20.
  for (int i = 0; i < 3; ++i) {
    disk.Use(10.0, [&] { completions.push_back(e.Now()); });
  }
  e.Run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_DOUBLE_EQ(completions[0], 10.0);
  EXPECT_DOUBLE_EQ(completions[1], 10.0);
  EXPECT_DOUBLE_EQ(completions[2], 20.0);
}

TEST(ResourceTest, FifoAdmission) {
  Engine e;
  Resource r(&e, 1);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    r.Use(1.0, [&order, i] { order.push_back(i); });
  }
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ResourceTest, ParallelismScalesThroughput) {
  // N jobs of S seconds on a k-server resource finish at ceil(N/k)*S:
  // the structural reason cluster-parallel admin ops stay flat (Fig 2).
  for (int k : {1, 4, 16}) {
    Engine e;
    Resource r(&e, k);
    double last = 0;
    for (int i = 0; i < 16; ++i) {
      r.Use(5.0, [&] { last = e.Now(); });
    }
    e.Run();
    EXPECT_DOUBLE_EQ(last, 5.0 * ((16 + k - 1) / k));
  }
}

}  // namespace
}  // namespace sdw::sim
