// Dark-data pipeline: the §4 "Data Transformation" use case. Raw
// semi-structured ad impressions (JSON lines) land in the object
// store, COPY relationalizes them, a big SQL aggregation distills them
// into a lookup table, and the result feeds an online service — the
// ad-tech pattern the paper describes.
//
// Run: ./build/examples/dark_data_pipeline

#include <cstdio>
#include <iostream>

#include "common/random.h"
#include "common/units.h"
#include "warehouse/warehouse.h"

int main() {
  sdw::warehouse::WarehouseOptions options;
  options.cluster.num_nodes = 2;
  options.cluster.slices_per_node = 2;
  sdw::warehouse::Warehouse wh(options);

  std::cout << "== Dark data -> lookup table pipeline ==\n\n";

  auto create = wh.Execute(
      "CREATE TABLE impressions (ts BIGINT, campaign VARCHAR, "
      "site VARCHAR, cost DOUBLE PRECISION, clicked BOOLEAN) SORTKEY(ts)");
  if (!create.ok()) {
    std::cerr << create.status() << "\n";
    return 1;
  }

  // Raw JSON logs: schema drifts (extra fields, missing fields) — the
  // "machine-generated logs that mutate over time" of §1.
  sdw::Rng rng(11);
  const char* campaigns[] = {"spring-sale", "brand", "retarget", "video"};
  const char* sites[] = {"news.example", "social.example", "search.example"};
  std::string json;
  const int kEvents = 30000;
  for (int i = 0; i < kEvents; ++i) {
    json += "{\"ts\": " + std::to_string(1000000 + i) + ", \"campaign\": \"" +
            campaigns[rng.Uniform(4)] + "\", \"site\": \"" +
            sites[rng.Zipf(3, 1.0)] + "\", \"cost\": " +
            std::to_string(0.001 + rng.NextDouble() * 0.05);
    if (rng.Bernoulli(0.8)) {
      json += ", \"clicked\": " + std::string(rng.Bernoulli(0.04) ? "true" : "false");
    }  // some events never report the click field
    if (rng.Bernoulli(0.3)) {
      json += ", \"debug_id\": \"" + rng.NextString(12) + "\"";  // drift
    }
    json += "}\n";
  }
  if (!wh.s3()
           ->region("us-east-1")
           ->PutObject("adtech/raw/events-0",
                       sdw::Bytes(json.begin(), json.end()))
           .ok()) {
    return 1;
  }
  std::printf("Raw dark data: %s of JSON events\n",
              sdw::FormatBytes(json.size()).c_str());

  auto copy =
      wh.Execute("COPY impressions FROM 's3://adtech/raw/' FORMAT JSON");
  if (!copy.ok()) {
    std::cerr << copy.status() << "\n";
    return 1;
  }
  std::printf("Relationalized %llu rows; analyzer picked encodings:\n",
              static_cast<unsigned long long>(copy->copy_stats.rows_loaded));
  for (const auto& [column, encoding] : copy->copy_stats.chosen_encodings) {
    std::printf("  %-10s -> %s\n", column.c_str(),
                sdw::ColumnEncodingName(encoding));
  }

  // The distillation query that would feed the ad exchange.
  auto lookup = wh.Execute(
      "SELECT campaign, site, COUNT(*) AS impressions, "
      "SUM(cost) AS spend, AVG(cost) AS avg_cpm "
      "FROM impressions GROUP BY campaign, site "
      "ORDER BY spend DESC LIMIT 12");
  if (!lookup.ok()) {
    std::cerr << lookup.status() << "\n";
    return 1;
  }
  std::cout << "\nCampaign x site lookup table:\n" << lookup->ToTable(12);

  // Click-through needs the boolean column (with its NULL drift rows).
  auto ctr = wh.Execute(
      "SELECT campaign, COUNT(clicked) AS reported, COUNT(*) AS total "
      "FROM impressions GROUP BY campaign ORDER BY campaign");
  if (!ctr.ok()) {
    std::cerr << ctr.status() << "\n";
    return 1;
  }
  std::cout << "\nClick reporting coverage (COUNT(col) skips NULL drift):\n"
            << ctr->ToTable();
  return 0;
}
