// Quickstart: stand up a warehouse, load data with COPY, and query it
// through SQL — the paper's "time to first report" flow, in code.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>
#include <iostream>
#include <string>

#include "common/random.h"
#include "common/units.h"
#include "warehouse/warehouse.h"

namespace {

using sdw::warehouse::StatementResult;
using sdw::warehouse::Warehouse;
using sdw::warehouse::WarehouseOptions;

void Run(Warehouse* wh, const std::string& sql) {
  std::cout << "sdw=# " << sql << "\n";
  auto result = wh->Execute(sql);
  if (!result.ok()) {
    std::cout << "ERROR: " << result.status() << "\n\n";
    return;
  }
  if (result->rows.num_columns() > 0) {
    std::cout << result->ToTable();
  } else {
    std::cout << result->message << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  // A 2-node, 2-slices-per-node cluster: the smallest paid config the
  // paper describes, provisioned "in minutes" (here, instantly).
  WarehouseOptions options;
  options.cluster.num_nodes = 2;
  options.cluster.slices_per_node = 2;
  // The §3.2 checkbox: every block (and backup) is encrypted under a
  // block->cluster->master key hierarchy. Nothing else changes.
  options.encrypted = true;
  Warehouse wh(options);

  std::cout << "== SimpleDW quickstart: a 2-node warehouse ==\n\n";

  Run(&wh,
      "CREATE TABLE pageviews (day BIGINT, url VARCHAR, user_id BIGINT, "
      "ms DOUBLE PRECISION) DISTKEY(user_id) SORTKEY(day)");
  Run(&wh, "CREATE TABLE users (id BIGINT, plan VARCHAR) DISTSTYLE ALL");
  Run(&wh, "INSERT INTO users VALUES (1, 'free'), (2, 'pro'), (3, 'pro')");

  // Drop a CSV into the object store and COPY it in (auto compression
  // analysis happens on this first load).
  sdw::Rng rng(7);
  std::string csv;
  for (int i = 0; i < 5000; ++i) {
    csv += std::to_string(i / 200) + ",/page" + std::to_string(rng.Uniform(9)) +
           "," + std::to_string(1 + rng.Uniform(3)) + "," +
           std::to_string(10.0 + rng.NextDouble() * 90.0) + "\n";
  }
  auto put = wh.s3()->region("us-east-1")->PutObject(
      "demo/pageviews/part-0", sdw::Bytes(csv.begin(), csv.end()));
  if (!put.ok()) {
    std::cerr << put << "\n";
    return 1;
  }
  Run(&wh, "COPY pageviews FROM 's3://demo/pageviews/' FORMAT CSV");

  Run(&wh,
      "EXPLAIN SELECT plan, COUNT(*) FROM pageviews JOIN users ON "
      "pageviews.user_id = users.id GROUP BY plan");
  Run(&wh,
      "SELECT plan, COUNT(*) AS views, AVG(ms) AS avg_ms FROM pageviews "
      "JOIN users ON pageviews.user_id = users.id "
      "WHERE day >= 10 GROUP BY plan ORDER BY views DESC");
  Run(&wh,
      "SELECT url, COUNT(*) AS hits FROM pageviews GROUP BY url "
      "ORDER BY hits DESC LIMIT 5");

  // One-click backup, then restore the snapshot in place.
  auto backup = wh.Backup(/*user_initiated=*/true);
  if (!backup.ok()) {
    std::cerr << backup.status() << "\n";
    return 1;
  }
  std::printf("Took snapshot %llu: %llu blocks, %s uploaded\n",
              static_cast<unsigned long long>(backup->snapshot_id),
              static_cast<unsigned long long>(backup->blocks_uploaded),
              sdw::FormatBytes(backup->bytes_uploaded).c_str());
  Run(&wh, "DROP TABLE pageviews");
  auto restore = wh.RestoreInPlace(backup->snapshot_id);
  if (!restore.ok()) {
    std::cerr << restore << "\n";
    return 1;
  }
  std::cout << "Streaming restore done; the table is back:\n\n";
  Run(&wh, "SELECT COUNT(*) AS rows FROM pageviews");

  // The warehouse monitors itself through SQL (§2.2): per-query
  // history, execution traces, and the block-level storage layout are
  // plain tables, and EXPLAIN ANALYZE annotates the plan with what
  // actually happened.
  Run(&wh,
      "EXPLAIN ANALYZE SELECT url, COUNT(*) AS hits FROM pageviews "
      "GROUP BY url ORDER BY hits DESC LIMIT 5");
  Run(&wh,
      "SELECT query_id, status, exec_seconds, result_rows, "
      "blocks_decoded FROM stl_query ORDER BY exec_seconds DESC "
      "LIMIT 5");
  Run(&wh,
      "SELECT tbl, COUNT(*) AS blocks, SUM(rows) AS stored_rows "
      "FROM stv_blocklist GROUP BY tbl ORDER BY tbl");
  return 0;
}
