// Weblog analytics: the paper's flagship workload (§1). The Amazon
// Enterprise Data Warehouse team joins trillions of click records with
// billions of product ids; this example runs the same schema and the
// same co-located join design at laptop scale and shows why DISTKEY
// and SORTKEY are the only physical knobs you need.
//
// Run: ./build/examples/weblog_analytics

#include <cstdio>
#include <iostream>

#include "common/random.h"
#include "common/units.h"
#include "warehouse/warehouse.h"

namespace {

using sdw::warehouse::Warehouse;
using sdw::warehouse::WarehouseOptions;

constexpr int kDays = 14;
constexpr int kClicksPerDay = 20000;
constexpr int kProducts = 2000;

void Must(const sdw::Result<sdw::warehouse::StatementResult>& r,
          const char* what) {
  if (!r.ok()) {
    std::cerr << what << " failed: " << r.status() << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  WarehouseOptions options;
  options.cluster.num_nodes = 4;
  options.cluster.slices_per_node = 2;
  Warehouse wh(options);

  std::cout << "== Weblog analytics on an 8-slice cluster ==\n\n";

  // Fact table: clicks, distributed on product_id so the product join
  // is co-located; sorted on day so date-range scans skip blocks.
  Must(wh.Execute("CREATE TABLE clicks (day BIGINT, product_id BIGINT, "
                  "user_id BIGINT, latency DOUBLE PRECISION) "
                  "DISTKEY(product_id) SORTKEY(day)"),
       "create clicks");
  // Dimension: products, distributed on the same join key.
  Must(wh.Execute("CREATE TABLE products (product_id BIGINT, category "
                  "VARCHAR, price DOUBLE PRECISION) DISTKEY(product_id)"),
       "create products");

  // Generate and load the catalog.
  sdw::Rng rng(42);
  {
    std::string csv;
    const char* categories[] = {"books", "music", "garden", "toys", "grocery"};
    for (int p = 0; p < kProducts; ++p) {
      csv += std::to_string(p) + "," + categories[p % 5] + "," +
             std::to_string(5.0 + rng.NextDouble() * 95.0) + "\n";
    }
    auto put = wh.s3()->region("us-east-1")->PutObject(
        "edw/products/part-0", sdw::Bytes(csv.begin(), csv.end()));
    if (!put.ok()) return 1;
    Must(wh.Execute("COPY products FROM 's3://edw/products/'"),
         "copy products");
  }

  // Nightly click loads: one COPY per day, exactly the paper's
  // "ingest at an hourly or nightly cadence" pattern.
  double total_load_model_seconds = 0;
  uint64_t total_rows = 0;
  for (int day = 0; day < kDays; ++day) {
    std::string csv;
    for (int i = 0; i < kClicksPerDay; ++i) {
      // Zipf-skewed product popularity, like real click traffic.
      csv += std::to_string(day) + "," +
             std::to_string(rng.Zipf(kProducts, 0.9)) + "," +
             std::to_string(rng.Uniform(50000)) + "," +
             std::to_string(rng.Exponential(120.0)) + "\n";
    }
    auto key = "edw/clicks/day-" + std::to_string(day);
    if (!wh.s3()
             ->region("us-east-1")
             ->PutObject(key, sdw::Bytes(csv.begin(), csv.end()))
             .ok()) {
      return 1;
    }
    auto copy = wh.Execute("COPY clicks FROM 's3://" + key + "'");
    Must(copy, "copy clicks");
    total_load_model_seconds += copy->copy_stats.modeled_seconds;
    total_rows += copy->copy_stats.rows_loaded;
  }
  std::printf("Loaded %s click rows across %d nightly COPYs "
              "(modeled cluster time %s)\n\n",
              sdw::FormatCount(static_cast<double>(total_rows)).c_str(),
              kDays, sdw::FormatDuration(total_load_model_seconds).c_str());

  // The join the paper brags about, at laptop scale: clicks x products.
  auto explain = wh.Execute(
      "EXPLAIN SELECT category, COUNT(*) FROM clicks JOIN products ON "
      "clicks.product_id = products.product_id GROUP BY category");
  Must(explain, "explain");
  std::cout << "Query plan (note the CO-LOCATED join — no network):\n"
            << explain->message << "\n\n";

  auto report = wh.Execute(
      "SELECT category, COUNT(*) AS clicks, AVG(latency) AS avg_latency_ms, "
      "MAX(price) AS top_price "
      "FROM clicks JOIN products ON clicks.product_id = products.product_id "
      "WHERE day >= 7 GROUP BY category ORDER BY clicks DESC");
  Must(report, "report");
  std::cout << "Last-7-days category report:\n" << report->ToTable() << "\n";
  std::printf("slice-parallel time %s, network %s, %llu blocks decoded\n\n",
              sdw::FormatDuration(report->exec_stats.MaxSliceSeconds()).c_str(),
              sdw::FormatBytes(report->exec_stats.network_bytes).c_str(),
              static_cast<unsigned long long>(
                  report->exec_stats.blocks_decoded));

  // Block skipping at work: a single-day query decodes a fraction of
  // the blocks a full scan would.
  auto narrow = wh.Execute(
      "SELECT COUNT(*) AS n FROM clicks WHERE day = 3");
  Must(narrow, "narrow");
  auto full = wh.Execute("SELECT COUNT(*) AS n FROM clicks");
  Must(full, "full");
  std::printf("Zone maps: day=3 decoded %llu blocks vs %llu for the full "
              "scan\n",
              static_cast<unsigned long long>(narrow->exec_stats.blocks_decoded),
              static_cast<unsigned long long>(full->exec_stats.blocks_decoded));
  return 0;
}
