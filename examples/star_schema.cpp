// Star-schema analytics: a Star Schema Benchmark-flavored workload
// (lineorder fact + date/customer/part dimensions) demonstrating the
// paper's whole physical-design story in one place: DISTKEY the fact on
// its biggest join key, DISTSTYLE ALL the small dimensions, SORTKEY the
// date column — then run the same queries against a naive design (all
// EVEN, no sort keys) and print the difference the two knobs make.
//
// Run: ./build/examples/star_schema

#include <cstdio>
#include <iostream>

#include "common/random.h"
#include "common/units.h"
#include "warehouse/warehouse.h"

namespace {

using sdw::warehouse::Warehouse;
using sdw::warehouse::WarehouseOptions;

constexpr int kLineorders = 150000;
constexpr int kCustomers = 3000;
constexpr int kParts = 2000;
constexpr int kDays = 365;

void Must(const sdw::Result<sdw::warehouse::StatementResult>& r,
          const char* what) {
  if (!r.ok()) {
    std::cerr << what << ": " << r.status() << "\n";
    std::exit(1);
  }
}

/// Builds the star schema with or without the tuned physical design.
std::unique_ptr<Warehouse> BuildWarehouse(bool tuned) {
  WarehouseOptions options;
  options.cluster.num_nodes = 2;
  options.cluster.slices_per_node = 2;
  auto wh = std::make_unique<Warehouse>(options);

  const char* fact_ddl =
      tuned ? "CREATE TABLE lineorder (orderdate BIGINT, custkey BIGINT, "
              "partkey BIGINT, quantity BIGINT, revenue DOUBLE PRECISION) "
              "DISTKEY(custkey) SORTKEY(orderdate)"
            : "CREATE TABLE lineorder (orderdate BIGINT, custkey BIGINT, "
              "partkey BIGINT, quantity BIGINT, revenue DOUBLE PRECISION)";
  Must(wh->Execute(fact_ddl), "create lineorder");
  Must(wh->Execute(tuned ? "CREATE TABLE customer (custkey BIGINT, region "
                           "VARCHAR, segment VARCHAR) DISTKEY(custkey)"
                         : "CREATE TABLE customer (custkey BIGINT, region "
                           "VARCHAR, segment VARCHAR)"),
       "create customer");
  Must(wh->Execute(tuned ? "CREATE TABLE part (partkey BIGINT, category "
                           "VARCHAR, brand VARCHAR) DISTSTYLE ALL"
                         : "CREATE TABLE part (partkey BIGINT, category "
                           "VARCHAR, brand VARCHAR)"),
       "create part");

  sdw::Rng rng(2015);
  const char* regions[] = {"AMERICA", "EUROPE", "ASIA", "AFRICA", "MEA"};
  const char* segments[] = {"AUTOMOBILE", "BUILDING", "MACHINERY"};
  {
    std::string csv;
    for (int c = 0; c < kCustomers; ++c) {
      csv += std::to_string(c) + "," + regions[rng.Uniform(5)] + "," +
             segments[rng.Uniform(3)] + "\n";
    }
    (void)wh->s3()->region("us-east-1")->PutObject(
        "ssb/customer/part-0", sdw::Bytes(csv.begin(), csv.end()));
    Must(wh->Execute("COPY customer FROM 's3://ssb/customer/'"),
         "copy customer");
  }
  {
    std::string csv;
    for (int p = 0; p < kParts; ++p) {
      csv += std::to_string(p) + ",MFGR#" + std::to_string(1 + p % 5) +
             ",Brand#" + std::to_string(1 + p % 40) + "\n";
    }
    (void)wh->s3()->region("us-east-1")->PutObject(
        "ssb/part/part-0", sdw::Bytes(csv.begin(), csv.end()));
    Must(wh->Execute("COPY part FROM 's3://ssb/part/'"), "copy part");
  }
  // Fact loads arrive as 12 "monthly" COPYs.
  for (int month = 0; month < 12; ++month) {
    std::string csv;
    for (int i = 0; i < kLineorders / 12; ++i) {
      const int day = month * (kDays / 12) + static_cast<int>(rng.Uniform(30));
      csv += std::to_string(day) + "," +
             std::to_string(rng.Zipf(kCustomers, 0.5)) + "," +
             std::to_string(rng.Uniform(kParts)) + "," +
             std::to_string(1 + rng.Uniform(50)) + "," +
             std::to_string(10.0 + rng.NextDouble() * 990.0) + "\n";
    }
    const std::string key = "ssb/lineorder/month-" + std::to_string(month);
    (void)wh->s3()->region("us-east-1")->PutObject(
        key, sdw::Bytes(csv.begin(), csv.end()));
    Must(wh->Execute("COPY lineorder FROM 's3://" + key + "'"),
         "copy lineorder");
  }
  // Merge the 12 sorted runs (nightly maintenance).
  Must(wh->Execute("VACUUM lineorder"), "vacuum");
  Must(wh->Execute("ANALYZE lineorder"), "analyze");
  Must(wh->Execute("ANALYZE customer"), "analyze");
  Must(wh->Execute("ANALYZE part"), "analyze");
  return wh;
}

struct QueryCost {
  double slice_seconds = 0;
  uint64_t network = 0;
  uint64_t blocks = 0;
};

QueryCost Run(Warehouse* wh, const std::string& sql, bool print) {
  auto r = wh->Execute(sql);
  Must(r, sql.c_str());
  if (print) std::cout << r->ToTable(8) << "\n";
  return {r->exec_stats.MaxSliceSeconds(), r->exec_stats.network_bytes,
          r->exec_stats.blocks_decoded};
}

}  // namespace

int main() {
  std::cout << "== Star-schema analytics (SSB-flavored) ==\n\n";
  auto tuned = BuildWarehouse(/*tuned=*/true);
  auto naive = BuildWarehouse(/*tuned=*/false);

  const std::vector<std::pair<const char*, std::string>> queries = {
      {"Q1: monthly revenue, one quarter (sort-key range scan)",
       "SELECT orderdate, SUM(revenue) AS rev FROM lineorder "
       "WHERE orderdate BETWEEN 90 AND 179 GROUP BY orderdate "
       "ORDER BY rev DESC LIMIT 5"},
      {"Q2: revenue by region (co-located customer join)",
       "SELECT region, COUNT(*) AS orders, SUM(revenue) AS rev "
       "FROM lineorder JOIN customer ON lineorder.custkey = "
       "customer.custkey GROUP BY region ORDER BY rev DESC"},
      {"Q3: brand drill-down (replicated part join + range)",
       "SELECT category, AVG(revenue) AS avg_rev FROM lineorder "
       "JOIN part ON lineorder.partkey = part.partkey "
       "WHERE orderdate BETWEEN 0 AND 89 GROUP BY category ORDER BY "
       "avg_rev DESC"},
      {"Q4: distinct buyers per segment (HLL sketches)",
       "SELECT segment, APPROXIMATE COUNT(DISTINCT lineorder.custkey) AS "
       "buyers FROM lineorder JOIN customer ON lineorder.custkey = "
       "customer.custkey GROUP BY segment ORDER BY buyers DESC"},
  };

  std::printf("%-55s  %12s  %12s  %10s\n", "", "tuned", "naive", "blocks");
  for (const auto& [label, sql] : queries) {
    std::cout << "\n" << label << ":\n";
    QueryCost tuned_cost = Run(tuned.get(), sql, true);
    QueryCost naive_cost = Run(naive.get(), sql, false);
    std::printf("  slice time  %12s  vs  %12s\n",
                sdw::FormatDuration(tuned_cost.slice_seconds).c_str(),
                sdw::FormatDuration(naive_cost.slice_seconds).c_str());
    std::printf("  network     %12s  vs  %12s\n",
                sdw::FormatBytes(tuned_cost.network).c_str(),
                sdw::FormatBytes(naive_cost.network).c_str());
    std::printf("  blocks      %12llu  vs  %12llu\n",
                static_cast<unsigned long long>(tuned_cost.blocks),
                static_cast<unsigned long long>(naive_cost.blocks));
  }

  std::cout << "\nThe whole physical design surface is two table "
               "attributes — DISTKEY/DISTSTYLE and SORTKEY — and both "
               "degrade gracefully when wrong (§3.3).\n";
  return 0;
}
