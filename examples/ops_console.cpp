// Ops console: the "simplicity" side of the paper — everything a DBA
// used to do, reduced to one call each: backup, streaming restore,
// cross-region disaster recovery, resize, encryption and key rotation,
// and warm-pool provisioning, with the simulated control plane timing
// each workflow.
//
// Run: ./build/examples/ops_console

#include <cstdio>
#include <iostream>

#include "backup/backup_manager.h"
#include "common/random.h"
#include "common/units.h"
#include "controlplane/control_plane.h"
#include "security/keychain.h"
#include "warehouse/warehouse.h"

namespace {

using sdw::FormatBytes;
using sdw::FormatDuration;

void Header(const char* title) {
  std::printf("\n--- %s ---\n", title);
}

}  // namespace

int main() {
  std::cout << "== SimpleDW ops console ==\n";

  // ------------------------------------------------------------------
  Header("1. Provisioning: cold EC2 vs preconfigured warm pool");
  {
    sdw::sim::Engine engine;
    sdw::controlplane::ControlPlane cold(&engine);
    auto cold_result = cold.ProvisionCluster(16);
    sdw::controlplane::WarmPool pool(32, 60.0);
    sdw::controlplane::ControlPlane warm(&engine);
    warm.set_warm_pool(&pool);
    auto warm_result = warm.ProvisionCluster(16);
    std::printf("  16 nodes, cold provisioning : %s\n",
                FormatDuration(cold_result.seconds).c_str());
    std::printf("  16 nodes, warm pool         : %s  (the paper's 15min->3min)\n",
                FormatDuration(warm_result.seconds).c_str());
  }

  // ------------------------------------------------------------------
  Header("2. Backup + streaming restore + cross-region DR");
  {
    sdw::warehouse::WarehouseOptions options;
    options.cluster.num_nodes = 2;
    sdw::warehouse::Warehouse wh(options);
    (void)wh.Execute("CREATE TABLE t (a BIGINT, b VARCHAR) SORTKEY(a)");
    sdw::Rng rng(1);
    for (int batch = 0; batch < 5; ++batch) {
      std::string sql = "INSERT INTO t VALUES ";
      for (int i = 0; i < 200; ++i) {
        if (i) sql += ", ";
        sql += "(" + std::to_string(batch * 200 + i) + ", '" +
               rng.NextString(8) + "')";
      }
      (void)wh.Execute(sql);
    }
    auto b1 = wh.Backup();
    auto b2 = wh.Backup();  // incremental: nothing changed
    std::printf("  first backup : %llu blocks, %s\n",
                static_cast<unsigned long long>(b1->blocks_uploaded),
                FormatBytes(b1->bytes_uploaded).c_str());
    std::printf("  second backup: %llu blocks uploaded, %llu reused "
                "(continuous + incremental)\n",
                static_cast<unsigned long long>(b2->blocks_uploaded),
                static_cast<unsigned long long>(b2->blocks_skipped));
    // DR is a checkbox: replicate, then restore from the other region.
    auto copied = wh.backups()->ReplicateToRegion("eu-west-1");
    std::printf("  DR replication to eu-west-1: %s copied\n",
                FormatBytes(*copied).c_str());
    sdw::backup::BackupManager::RestoreStats stats;
    auto restored = wh.backups()->StreamingRestoreFromRegion(
        "eu-west-1", b1->snapshot_id, &stats);
    if (restored.ok()) {
      std::printf("  DR streaming restore: SQL open after %s; full restore "
                  "would stream %s\n",
                  FormatDuration(stats.time_to_first_query_seconds).c_str(),
                  FormatBytes(stats.total_bytes).c_str());
    }
  }

  // ------------------------------------------------------------------
  Header("3. Resize 2 -> 8 nodes (source stays readable)");
  {
    sdw::warehouse::WarehouseOptions options;
    options.cluster.num_nodes = 2;
    sdw::warehouse::Warehouse wh(options);
    (void)wh.Execute("CREATE TABLE t (a BIGINT)");
    std::string sql = "INSERT INTO t VALUES (0)";
    for (int i = 1; i < 2000; ++i) sql += ", (" + std::to_string(i) + ")";
    (void)wh.Execute(sql);
    auto stats = wh.Resize(8);
    auto check = wh.Execute("SELECT COUNT(*) AS n FROM t");
    std::printf("  moved %s, modeled copy %s; data intact: %lld rows\n",
                FormatBytes(stats->bytes_moved).c_str(),
                FormatDuration(stats->modeled_seconds).c_str(),
                static_cast<long long>(check->rows.columns[0].IntAt(0)));
  }

  // ------------------------------------------------------------------
  Header("4. Encryption: checkbox on, rotation rewraps keys not data");
  {
    sdw::security::HsmKeyProvider hsm(2024);
    auto keys = sdw::security::KeyHierarchy::Create(&hsm);
    sdw::Rng rng(5);
    uint64_t data_bytes = 0;
    for (sdw::storage::BlockId id = 1; id <= 1000; ++id) {
      sdw::Bytes block(4096);
      for (auto& byte : block) byte = static_cast<uint8_t>(rng.Next());
      data_bytes += block.size();
      (void)keys->EncryptBlock(id, std::move(block));
    }
    auto before = keys->rewrap_operations();
    (void)keys->RotateClusterKey();
    std::printf("  1000 encrypted blocks (%s); cluster-key rotation touched "
                "%llu keys and 0 data bytes\n",
                FormatBytes(data_bytes).c_str(),
                static_cast<unsigned long long>(keys->rewrap_operations() -
                                                before));
  }

  // ------------------------------------------------------------------
  Header("5. Patch train with automatic rollback");
  {
    sdw::sim::Engine engine;
    sdw::controlplane::ControlPlane cp(&engine);
    sdw::Rng rng(9);
    int rollbacks = 0;
    double total = 0;
    for (int week = 0; week < 10; ++week) {
      auto patch = cp.Patch(16, /*defect_probability=*/0.15, &rng);
      total += patch.seconds;
      if (patch.rolled_back) ++rollbacks;
    }
    std::printf("  10 weekly patches of a 16-node cluster: %d auto-rollbacks, "
                "avg window %s\n",
                rollbacks, FormatDuration(total / 10).c_str());
  }

  std::cout << "\nDone.\n";
  return 0;
}
