#ifndef SDW_BACKUP_MANIFEST_H_
#define SDW_BACKUP_MANIFEST_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "cluster/cluster.h"
#include "common/bytes.h"
#include "common/result.h"
#include "storage/table_shard.h"

namespace sdw::backup {

/// One slice's chains for one table, as captured at snapshot time.
struct ShardManifest {
  int global_slice = 0;
  /// chains[column] = block metadata in chain order.
  std::vector<std::vector<storage::BlockMeta>> chains;
};

struct TableManifest {
  TableSchema schema;
  uint64_t stats_row_count = 0;
  /// The EVEN-distribution round-robin cursor at capture time. Restored
  /// so replaying the commit-log tail lands every row on the same slice
  /// the original execution chose — recovery must be byte-identical,
  /// and slice placement is part of that determinism.
  uint64_t round_robin_cursor = 0;
  std::vector<ShardManifest> shards;
};

/// A full point-in-time description of a cluster: topology, catalog and
/// every block chain. Restoring the manifest is all that is needed to
/// open the database for SQL — data blocks stream in afterwards (§2.3).
struct SnapshotManifest {
  uint64_t snapshot_id = 0;
  bool user_initiated = false;  // user backups are kept until deleted
  /// Commit-log watermark: every log record with lsn <= durable_lsn is
  /// contained in this snapshot. Recovery restores the snapshot and
  /// replays only the records after it — the snapshot + log tail form
  /// one complete recovery chain.
  uint64_t durable_lsn = 0;
  cluster::ClusterConfig config;
  std::vector<TableManifest> tables;

  /// Every block id referenced by this snapshot.
  std::vector<storage::BlockId> ReferencedBlocks() const;
};

/// Wire form round-trip (stored as the S3 manifest object).
void SerializeManifest(const SnapshotManifest& manifest, Bytes* out);
Result<SnapshotManifest> DeserializeManifest(const Bytes& data);

/// Datum wire helpers, shared with tests.
void SerializeDatum(const Datum& value, Bytes* out);
Result<Datum> DeserializeDatum(const Bytes& data, size_t* pos);

/// Captures the manifest of a live cluster.
Result<SnapshotManifest> CaptureManifest(cluster::Cluster* cluster);

}  // namespace sdw::backup

#endif  // SDW_BACKUP_MANIFEST_H_
