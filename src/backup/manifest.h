#ifndef SDW_BACKUP_MANIFEST_H_
#define SDW_BACKUP_MANIFEST_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "cluster/cluster.h"
#include "common/bytes.h"
#include "common/result.h"
#include "storage/table_shard.h"

namespace sdw::backup {

/// One slice's chains for one table, as captured at snapshot time.
struct ShardManifest {
  int global_slice = 0;
  /// chains[column] = block metadata in chain order.
  std::vector<std::vector<storage::BlockMeta>> chains;
};

struct TableManifest {
  TableSchema schema;
  uint64_t stats_row_count = 0;
  std::vector<ShardManifest> shards;
};

/// A full point-in-time description of a cluster: topology, catalog and
/// every block chain. Restoring the manifest is all that is needed to
/// open the database for SQL — data blocks stream in afterwards (§2.3).
struct SnapshotManifest {
  uint64_t snapshot_id = 0;
  bool user_initiated = false;  // user backups are kept until deleted
  cluster::ClusterConfig config;
  std::vector<TableManifest> tables;

  /// Every block id referenced by this snapshot.
  std::vector<storage::BlockId> ReferencedBlocks() const;
};

/// Wire form round-trip (stored as the S3 manifest object).
void SerializeManifest(const SnapshotManifest& manifest, Bytes* out);
Result<SnapshotManifest> DeserializeManifest(const Bytes& data);

/// Datum wire helpers, shared with tests.
void SerializeDatum(const Datum& value, Bytes* out);
Result<Datum> DeserializeDatum(const Bytes& data, size_t* pos);

/// Captures the manifest of a live cluster.
Result<SnapshotManifest> CaptureManifest(cluster::Cluster* cluster);

}  // namespace sdw::backup

#endif  // SDW_BACKUP_MANIFEST_H_
