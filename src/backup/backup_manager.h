#ifndef SDW_BACKUP_BACKUP_MANAGER_H_
#define SDW_BACKUP_BACKUP_MANAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "backup/manifest.h"
#include "backup/s3sim.h"
#include "cluster/cluster.h"
#include "cluster/cost_model.h"
#include "common/retry.h"

namespace sdw::backup {

/// Continuous, incremental, automatic block-level backup to the object
/// store, and streaming restore that opens the database after metadata
/// restoration while blocks page-fault in on demand (§2.2-2.3, §3.2).
class BackupManager {
 public:
  BackupManager(S3* s3, std::string region, std::string cluster_id,
                cluster::CostModel cost_model = {});

  struct BackupStats {
    uint64_t snapshot_id = 0;
    uint64_t blocks_uploaded = 0;
    /// Blocks already present from earlier snapshots (incremental win).
    uint64_t blocks_skipped = 0;
    uint64_t bytes_uploaded = 0;
    /// Modeled wall clock: per-node-parallel upload, so proportional to
    /// the data *changed* on the busiest node, not total data (§3.2).
    double modeled_seconds = 0;
    /// Upload attempts beyond the first (transient S3 faults retried
    /// away) and the virtual backoff they cost.
    int s3_retry_attempts = 0;
    double retry_backoff_seconds = 0;
  };

  /// Takes a snapshot. System backups are auto-aged; user backups are
  /// kept until explicitly deleted. `durable_lsn` is the commit-log
  /// watermark recorded in the manifest: every log record at or below
  /// it is contained in this snapshot (0 when commit logging is off).
  Result<BackupStats> Backup(cluster::Cluster* cluster,
                             bool user_initiated = false,
                             uint64_t durable_lsn = 0);

  std::vector<uint64_t> ListSnapshots();
  Result<SnapshotManifest> GetManifest(uint64_t snapshot_id);

  /// Deletes a snapshot. Refused (kFailedPrecondition) when the
  /// snapshot is the commit log's recovery base: the live log tail
  /// replays on top of it, so deleting it would orphan every commit
  /// since — back up again (advancing the base) first.
  Status DeleteSnapshot(uint64_t snapshot_id);

  /// Deletes system snapshots beyond the most recent `keep_latest`,
  /// never touching user snapshots or the commit log's recovery base.
  /// Returns snapshots removed.
  Result<int> AgeSystemBackups(int keep_latest);

  /// The commit log's recovery-base snapshot id, read from the shared
  /// `<cluster_id>/wal-meta/base` object src/durability owns (0 when no
  /// commit log exists — then the delete/age guards are inert).
  Result<uint64_t> RecoveryBaseSnapshot();

  /// The smallest durable_lsn watermark across remaining snapshots —
  /// the point the commit log can truncate through: records at or
  /// below it are contained in every snapshot that could still serve
  /// as a recovery base. 0 when no snapshots exist.
  Result<uint64_t> MinimumWatermark();

  /// Deletes blocks no remaining snapshot references. Returns bytes
  /// reclaimed.
  Result<uint64_t> CollectGarbage();

  struct RestoreStats {
    /// Modeled time until SQL can be accepted (metadata + catalog only).
    double time_to_first_query_seconds = 0;
    /// Modeled time for a full (non-streaming) restore of every block.
    double full_restore_seconds = 0;
    uint64_t total_blocks = 0;
    uint64_t total_bytes = 0;
  };

  /// Opens a new cluster from a snapshot: catalog and chains restored
  /// eagerly, data blocks wired to page-fault from S3 on first read.
  Result<std::unique_ptr<cluster::Cluster>> StreamingRestore(
      uint64_t snapshot_id, RestoreStats* stats = nullptr);

  /// Same, but reading from another region (disaster recovery).
  Result<std::unique_ptr<cluster::Cluster>> StreamingRestoreFromRegion(
      const std::string& region, uint64_t snapshot_id,
      RestoreStats* stats = nullptr);

  /// Drives the background restore to completion: every block of the
  /// snapshot is paged onto local storage. Returns bytes fetched.
  Result<uint64_t> FinishRestore(cluster::Cluster* cluster,
                                 uint64_t snapshot_id);

  /// Copies every object of this cluster to a second region (the
  /// "checkbox" DR of §3.2). Returns bytes copied.
  Result<uint64_t> ReplicateToRegion(const std::string& dst_region);

  std::string BlockKey(storage::BlockId id) const;
  std::string ManifestKey(uint64_t snapshot_id) const;

  const std::string& region() const { return region_; }

  /// Bounded-retry budget for every S3 interaction (uploads, manifest
  /// fetches, restore page faults): transient unavailability degrades
  /// to latency; outages beyond the budget surface as kUnavailable.
  void set_retry_policy(common::RetryPolicy policy) {
    retry_policy_ = policy;
  }
  const common::RetryPolicy& retry_policy() const { return retry_policy_; }

 private:
  Result<std::unique_ptr<cluster::Cluster>> RestoreInternal(
      S3Region* source, uint64_t snapshot_id, RestoreStats* stats);

  S3* s3_;
  std::string region_;
  std::string cluster_id_;
  cluster::CostModel cost_model_;
  common::RetryPolicy retry_policy_;
  uint64_t next_snapshot_id_ = 1;
};

}  // namespace sdw::backup

#endif  // SDW_BACKUP_BACKUP_MANAGER_H_
