#include "backup/manifest.h"

#include <set>

namespace sdw::backup {

namespace {
constexpr uint8_t kDatumNull = 0;
constexpr uint8_t kDatumValue = 1;
}  // namespace

void SerializeDatum(const Datum& value, Bytes* out) {
  out->push_back(static_cast<uint8_t>(value.type()));
  if (value.is_null()) {
    out->push_back(kDatumNull);
    return;
  }
  out->push_back(kDatumValue);
  switch (value.type()) {
    case TypeId::kString:
      PutLengthPrefixed(out, value.string_value());
      break;
    case TypeId::kDouble: {
      uint64_t bits;
      double d = value.double_value();
      __builtin_memcpy(&bits, &d, 8);
      PutFixed64(out, bits);
      break;
    }
    default:
      PutVarint64(out, ZigZagEncode(value.int_value()));
      break;
  }
}

Result<Datum> DeserializeDatum(const Bytes& data, size_t* pos) {
  if (*pos + 2 > data.size()) return Status::Corruption("datum truncated");
  const TypeId type = static_cast<TypeId>(data[(*pos)++]);
  const uint8_t flag = data[(*pos)++];
  if (flag == kDatumNull) return Datum::Null();
  switch (type) {
    case TypeId::kString: {
      std::string s;
      if (!GetLengthPrefixed(data, pos, &s)) {
        return Status::Corruption("datum string truncated");
      }
      return Datum::String(std::move(s));
    }
    case TypeId::kDouble: {
      if (*pos + 8 > data.size()) {
        return Status::Corruption("datum double truncated");
      }
      uint64_t bits = GetFixed64(data.data() + *pos);
      *pos += 8;
      double d;
      __builtin_memcpy(&d, &bits, 8);
      return Datum::Double(d);
    }
    case TypeId::kBool:
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kDate: {
      uint64_t raw = 0;
      if (!GetVarint64(data, pos, &raw)) {
        return Status::Corruption("datum int truncated");
      }
      int64_t v = ZigZagDecode(raw);
      switch (type) {
        case TypeId::kBool:
          return Datum::Bool(v != 0);
        case TypeId::kInt32:
          return Datum::Int32(static_cast<int32_t>(v));
        case TypeId::kDate:
          return Datum::Date(static_cast<int32_t>(v));
        default:
          return Datum::Int64(v);
      }
    }
  }
  return Status::Corruption("datum has unknown type");
}

namespace {

void SerializeSchema(const TableSchema& schema, Bytes* out) {
  PutLengthPrefixed(out, schema.name());
  PutVarint64(out, schema.num_columns());
  for (const ColumnDef& col : schema.columns()) {
    PutLengthPrefixed(out, col.name);
    out->push_back(static_cast<uint8_t>(col.type));
    out->push_back(static_cast<uint8_t>(col.encoding));
    out->push_back(col.nullable ? 1 : 0);
  }
  out->push_back(static_cast<uint8_t>(schema.dist_style()));
  PutVarint64(out, ZigZagEncode(schema.dist_key()));
  out->push_back(static_cast<uint8_t>(schema.sort_style()));
  PutVarint64(out, schema.sort_keys().size());
  for (int k : schema.sort_keys()) PutVarint64(out, ZigZagEncode(k));
}

Result<TableSchema> DeserializeSchema(const Bytes& data, size_t* pos) {
  std::string name;
  if (!GetLengthPrefixed(data, pos, &name)) {
    return Status::Corruption("schema name truncated");
  }
  uint64_t ncols = 0;
  if (!GetVarint64(data, pos, &ncols)) {
    return Status::Corruption("schema truncated");
  }
  std::vector<ColumnDef> cols;
  for (uint64_t c = 0; c < ncols; ++c) {
    ColumnDef col;
    if (!GetLengthPrefixed(data, pos, &col.name) ||
        *pos + 3 > data.size()) {
      return Status::Corruption("column def truncated");
    }
    col.type = static_cast<TypeId>(data[(*pos)++]);
    col.encoding = static_cast<ColumnEncoding>(data[(*pos)++]);
    col.nullable = data[(*pos)++] != 0;
    cols.push_back(std::move(col));
  }
  TableSchema schema(name, cols);
  if (*pos >= data.size()) return Status::Corruption("schema truncated");
  const DistStyle dist = static_cast<DistStyle>(data[(*pos)++]);
  uint64_t raw = 0;
  if (!GetVarint64(data, pos, &raw)) {
    return Status::Corruption("schema truncated");
  }
  const int dist_key = static_cast<int>(ZigZagDecode(raw));
  if (dist == DistStyle::kKey && dist_key >= 0) {
    SDW_RETURN_IF_ERROR(schema.SetDistKey(cols[dist_key].name));
  } else {
    schema.SetDistStyle(dist);
  }
  if (*pos >= data.size()) return Status::Corruption("schema truncated");
  const SortStyle sort = static_cast<SortStyle>(data[(*pos)++]);
  uint64_t nkeys = 0;
  if (!GetVarint64(data, pos, &nkeys)) {
    return Status::Corruption("schema truncated");
  }
  std::vector<std::string> sort_names;
  for (uint64_t k = 0; k < nkeys; ++k) {
    uint64_t kraw = 0;
    if (!GetVarint64(data, pos, &kraw)) {
      return Status::Corruption("schema truncated");
    }
    sort_names.push_back(cols[ZigZagDecode(kraw)].name);
  }
  if (sort != SortStyle::kNone) {
    SDW_RETURN_IF_ERROR(schema.SetSortKey(sort, sort_names));
  }
  return schema;
}

void SerializeBlockMeta(const storage::BlockMeta& meta, Bytes* out) {
  PutVarint64(out, meta.id);
  PutVarint64(out, meta.first_row);
  PutVarint64(out, meta.row_count);
  out->push_back(static_cast<uint8_t>(meta.encoding));
  PutVarint64(out, meta.encoded_bytes);
  out->push_back(meta.zone.has_values() ? 1 : 0);
  out->push_back(meta.zone.has_nulls() ? 1 : 0);
  if (meta.zone.has_values()) {
    SerializeDatum(meta.zone.min(), out);
    SerializeDatum(meta.zone.max(), out);
  }
}

Result<storage::BlockMeta> DeserializeBlockMeta(const Bytes& data,
                                                size_t* pos) {
  storage::BlockMeta meta;
  uint64_t id = 0, first = 0, rows = 0, bytes = 0;
  if (!GetVarint64(data, pos, &id) || !GetVarint64(data, pos, &first) ||
      !GetVarint64(data, pos, &rows) || *pos >= data.size()) {
    return Status::Corruption("block meta truncated");
  }
  meta.id = id;
  meta.first_row = first;
  meta.row_count = rows;
  meta.encoding = static_cast<ColumnEncoding>(data[(*pos)++]);
  if (!GetVarint64(data, pos, &bytes) || *pos + 2 > data.size()) {
    return Status::Corruption("block meta truncated");
  }
  meta.encoded_bytes = bytes;
  const bool has_values = data[(*pos)++] != 0;
  const bool has_nulls = data[(*pos)++] != 0;
  if (has_nulls) meta.zone.Update(Datum::Null());
  if (has_values) {
    SDW_ASSIGN_OR_RETURN(Datum lo, DeserializeDatum(data, pos));
    SDW_ASSIGN_OR_RETURN(Datum hi, DeserializeDatum(data, pos));
    meta.zone.Update(lo);
    meta.zone.Update(hi);
  }
  return meta;
}

}  // namespace

std::vector<storage::BlockId> SnapshotManifest::ReferencedBlocks() const {
  std::set<storage::BlockId> ids;
  for (const TableManifest& table : tables) {
    for (const ShardManifest& shard : table.shards) {
      for (const auto& chain : shard.chains) {
        for (const auto& meta : chain) ids.insert(meta.id);
      }
    }
  }
  return {ids.begin(), ids.end()};
}

void SerializeManifest(const SnapshotManifest& manifest, Bytes* out) {
  PutVarint64(out, manifest.snapshot_id);
  out->push_back(manifest.user_initiated ? 1 : 0);
  PutVarint64(out, manifest.config.num_nodes);
  PutVarint64(out, manifest.config.slices_per_node);
  PutVarint64(out, manifest.config.storage.block_bytes);
  PutVarint64(out, manifest.config.storage.max_rows_per_block);
  // Fault-tolerance topology: a restored cluster must replicate (or
  // not) exactly like the snapshotted one.
  out->push_back(manifest.config.replicate ? 1 : 0);
  PutVarint64(out, manifest.config.replication.cohort_size);
  PutVarint64(out, manifest.config.replication_seed);
  PutVarint64(out, manifest.durable_lsn);
  PutVarint64(out, manifest.tables.size());
  for (const TableManifest& table : manifest.tables) {
    SerializeSchema(table.schema, out);
    PutVarint64(out, table.stats_row_count);
    PutVarint64(out, table.round_robin_cursor);
    PutVarint64(out, table.shards.size());
    for (const ShardManifest& shard : table.shards) {
      PutVarint64(out, shard.global_slice);
      PutVarint64(out, shard.chains.size());
      for (const auto& chain : shard.chains) {
        PutVarint64(out, chain.size());
        for (const auto& meta : chain) SerializeBlockMeta(meta, out);
      }
    }
  }
}

Result<SnapshotManifest> DeserializeManifest(const Bytes& data) {
  SnapshotManifest manifest;
  size_t pos = 0;
  uint64_t v = 0;
  if (!GetVarint64(data, &pos, &v)) return Status::Corruption("manifest");
  manifest.snapshot_id = v;
  if (pos >= data.size()) return Status::Corruption("manifest");
  manifest.user_initiated = data[pos++] != 0;
  uint64_t nodes = 0, slices = 0, block_bytes = 0, max_rows = 0, ntables = 0;
  uint64_t cohort = 0, repl_seed = 0;
  if (!GetVarint64(data, &pos, &nodes) || !GetVarint64(data, &pos, &slices) ||
      !GetVarint64(data, &pos, &block_bytes) ||
      !GetVarint64(data, &pos, &max_rows)) {
    return Status::Corruption("manifest header truncated");
  }
  if (pos >= data.size()) return Status::Corruption("manifest");
  manifest.config.replicate = data[pos++] != 0;
  uint64_t durable_lsn = 0;
  if (!GetVarint64(data, &pos, &cohort) ||
      !GetVarint64(data, &pos, &repl_seed) ||
      !GetVarint64(data, &pos, &durable_lsn) ||
      !GetVarint64(data, &pos, &ntables)) {
    return Status::Corruption("manifest header truncated");
  }
  manifest.durable_lsn = durable_lsn;
  manifest.config.num_nodes = static_cast<int>(nodes);
  manifest.config.slices_per_node = static_cast<int>(slices);
  manifest.config.storage.block_bytes = block_bytes;
  manifest.config.storage.max_rows_per_block = max_rows;
  manifest.config.replication.cohort_size = static_cast<int>(cohort);
  manifest.config.replication_seed = repl_seed;
  for (uint64_t t = 0; t < ntables; ++t) {
    TableManifest table;
    SDW_ASSIGN_OR_RETURN(table.schema, DeserializeSchema(data, &pos));
    uint64_t stats_rows = 0, rr_cursor = 0, nshards = 0;
    if (!GetVarint64(data, &pos, &stats_rows) ||
        !GetVarint64(data, &pos, &rr_cursor) ||
        !GetVarint64(data, &pos, &nshards)) {
      return Status::Corruption("table manifest truncated");
    }
    table.stats_row_count = stats_rows;
    table.round_robin_cursor = rr_cursor;
    for (uint64_t s = 0; s < nshards; ++s) {
      ShardManifest shard;
      uint64_t slice = 0, nchains = 0;
      if (!GetVarint64(data, &pos, &slice) ||
          !GetVarint64(data, &pos, &nchains)) {
        return Status::Corruption("shard manifest truncated");
      }
      shard.global_slice = static_cast<int>(slice);
      for (uint64_t c = 0; c < nchains; ++c) {
        uint64_t nblocks = 0;
        if (!GetVarint64(data, &pos, &nblocks)) {
          return Status::Corruption("chain truncated");
        }
        std::vector<storage::BlockMeta> chain;
        for (uint64_t b = 0; b < nblocks; ++b) {
          SDW_ASSIGN_OR_RETURN(storage::BlockMeta meta,
                               DeserializeBlockMeta(data, &pos));
          chain.push_back(std::move(meta));
        }
        shard.chains.push_back(std::move(chain));
      }
      table.shards.push_back(std::move(shard));
    }
    manifest.tables.push_back(std::move(table));
  }
  return manifest;
}

Result<SnapshotManifest> CaptureManifest(cluster::Cluster* cluster) {
  SnapshotManifest manifest;
  manifest.config = cluster->config();
  manifest.config.num_nodes = cluster->num_nodes();
  for (const std::string& name : cluster->catalog()->TableNames()) {
    SDW_ASSIGN_OR_RETURN(TableSchema schema,
                         cluster->catalog()->GetTable(name));
    TableManifest table;
    table.schema = schema;
    table.stats_row_count = cluster->catalog()->GetStats(name).row_count;
    table.round_robin_cursor = cluster->round_robin_cursor(name);
    for (int s = 0; s < cluster->total_slices(); ++s) {
      SDW_ASSIGN_OR_RETURN(storage::TableShard * shard, cluster->shard(s, name));
      ShardManifest sm;
      sm.global_slice = s;
      for (size_t c = 0; c < shard->num_columns(); ++c) {
        sm.chains.push_back(shard->chain(c));
      }
      table.shards.push_back(std::move(sm));
    }
    manifest.tables.push_back(std::move(table));
  }
  return manifest;
}

}  // namespace sdw::backup
