#include "backup/backup_manager.h"

#include <algorithm>
#include <set>

#include "common/hash.h"

namespace sdw::backup {

BackupManager::BackupManager(S3* s3, std::string region,
                             std::string cluster_id,
                             cluster::CostModel cost_model)
    : s3_(s3),
      region_(std::move(region)),
      cluster_id_(std::move(cluster_id)),
      cost_model_(cost_model) {
  // Seed the id counter from what the region already holds: a manager
  // re-created over existing snapshots (the post-crash recovery path)
  // must not reuse ids and silently overwrite old manifests.
  for (uint64_t id : ListSnapshots()) {
    next_snapshot_id_ = std::max(next_snapshot_id_, id + 1);
  }
}

std::string BackupManager::BlockKey(storage::BlockId id) const {
  return cluster_id_ + "/blocks/" + std::to_string(id);
}

std::string BackupManager::ManifestKey(uint64_t snapshot_id) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%012llu",
                static_cast<unsigned long long>(snapshot_id));
  return cluster_id_ + "/manifests/" + buf;
}

Result<BackupManager::BackupStats> BackupManager::Backup(
    cluster::Cluster* cluster, bool user_initiated, uint64_t durable_lsn) {
  S3Region* region = s3_->region(region_);
  SDW_ASSIGN_OR_RETURN(SnapshotManifest manifest, CaptureManifest(cluster));
  manifest.snapshot_id = next_snapshot_id_++;
  manifest.user_initiated = user_initiated;
  manifest.durable_lsn = durable_lsn;

  BackupStats stats;
  stats.snapshot_id = manifest.snapshot_id;
  std::vector<uint64_t> per_node_bytes(cluster->num_nodes(), 0);
  // Backups run for hours against a service that throttles: every
  // upload gets a bounded retry budget so transient unavailability
  // degrades to (modeled) latency instead of a failed snapshot.
  common::Retry retry(retry_policy_);
  int uploads = 0;

  // Upload blocks that are not already backed up (incremental; user
  // backups "leverage the blocks already backed up in system backups").
  for (const TableManifest& table : manifest.tables) {
    for (const ShardManifest& shard : table.shards) {
      cluster::ComputeNode* node = cluster->NodeOfSlice(shard.global_slice);
      for (const auto& chain : shard.chains) {
        for (const storage::BlockMeta& meta : chain) {
          const std::string key = BlockKey(meta.id);
          if (region->HasObject(key)) {
            ++stats.blocks_skipped;
            continue;
          }
          SDW_ASSIGN_OR_RETURN(Bytes data, node->store()->GetRaw(meta.id));
          stats.bytes_uploaded += data.size();
          per_node_bytes[node->node_id()] += data.size();
          SDW_RETURN_IF_ERROR(retry.CallVoid(
              [&] { return region->PutObject(key, data); }));
          ++uploads;
          ++stats.blocks_uploaded;
        }
      }
    }
  }

  Bytes manifest_bytes;
  SerializeManifest(manifest, &manifest_bytes);
  SDW_RETURN_IF_ERROR(retry.CallVoid([&] {
    return region->PutObject(ManifestKey(manifest.snapshot_id),
                             manifest_bytes);
  }));
  ++uploads;

  // Nodes upload in parallel: the busiest node bounds wall clock.
  uint64_t max_node_bytes = 0;
  for (uint64_t b : per_node_bytes) max_node_bytes = std::max(max_node_bytes, b);
  stats.s3_retry_attempts = retry.attempts() - uploads;
  stats.retry_backoff_seconds = retry.backoff_seconds();
  stats.modeled_seconds =
      cost_model_.S3Seconds(max_node_bytes, 1) + retry.backoff_seconds();
  return stats;
}

std::vector<uint64_t> BackupManager::ListSnapshots() {
  std::vector<uint64_t> ids;
  const std::string prefix = cluster_id_ + "/manifests/";
  for (const std::string& key : s3_->region(region_)->ListPrefix(prefix)) {
    ids.push_back(std::stoull(key.substr(prefix.size())));
  }
  return ids;
}

Result<SnapshotManifest> BackupManager::GetManifest(uint64_t snapshot_id) {
  common::Retry retry(retry_policy_);
  SDW_ASSIGN_OR_RETURN(Bytes data, retry.Call<Bytes>([&] {
    return s3_->region(region_)->GetObject(ManifestKey(snapshot_id));
  }));
  return DeserializeManifest(data);
}

Result<uint64_t> BackupManager::RecoveryBaseSnapshot() {
  // Shared layout with src/durability/commit_log.cc: a checksummed
  // fixed64 at <cluster_id>/wal-meta/base, written only by CommitLog.
  const std::string key = cluster_id_ + "/wal-meta/base";
  S3Region* region = s3_->region(region_);
  if (!region->HasObject(key)) return static_cast<uint64_t>(0);
  common::Retry retry(retry_policy_);
  SDW_ASSIGN_OR_RETURN(Bytes data, retry.Call<Bytes>([&] {
    return region->GetObject(key);
  }));
  if (data.size() != 12 ||
      GetFixed32(data.data() + 8) != Crc32c(data.data(), 8)) {
    return Status::Corruption("wal-meta/base checksum mismatch");
  }
  return GetFixed64(data.data());
}

Result<uint64_t> BackupManager::MinimumWatermark() {
  uint64_t minimum = 0;
  bool any = false;
  for (uint64_t id : ListSnapshots()) {
    SDW_ASSIGN_OR_RETURN(SnapshotManifest manifest, GetManifest(id));
    minimum = any ? std::min(minimum, manifest.durable_lsn)
                  : manifest.durable_lsn;
    any = true;
  }
  return minimum;
}

Status BackupManager::DeleteSnapshot(uint64_t snapshot_id) {
  SDW_ASSIGN_OR_RETURN(uint64_t base, RecoveryBaseSnapshot());
  if (base != 0 && base == snapshot_id) {
    return Status::FailedPrecondition(
        "snapshot " + std::to_string(snapshot_id) +
        " is the recovery base of the live commit-log tail; take a new "
        "backup (which advances the base) before deleting it");
  }
  return s3_->region(region_)->DeleteObject(ManifestKey(snapshot_id));
}

Result<int> BackupManager::AgeSystemBackups(int keep_latest) {
  SDW_ASSIGN_OR_RETURN(uint64_t base, RecoveryBaseSnapshot());
  std::vector<uint64_t> ids = ListSnapshots();
  // Partition into system/user; ids ascend (oldest first). The
  // recovery base ages like a user snapshot: the live log tail depends
  // on it until a newer backup advances the pointer.
  std::vector<uint64_t> system_ids;
  for (uint64_t id : ids) {
    if (base != 0 && id == base) continue;
    SDW_ASSIGN_OR_RETURN(SnapshotManifest manifest, GetManifest(id));
    if (!manifest.user_initiated) system_ids.push_back(id);
  }
  int removed = 0;
  if (static_cast<int>(system_ids.size()) > keep_latest) {
    const size_t to_remove = system_ids.size() - keep_latest;
    for (size_t i = 0; i < to_remove; ++i) {
      SDW_RETURN_IF_ERROR(DeleteSnapshot(system_ids[i]));
      ++removed;
    }
  }
  return removed;
}

Result<uint64_t> BackupManager::CollectGarbage() {
  S3Region* region = s3_->region(region_);
  std::set<std::string> referenced;
  for (uint64_t id : ListSnapshots()) {
    SDW_ASSIGN_OR_RETURN(SnapshotManifest manifest, GetManifest(id));
    for (storage::BlockId block : manifest.ReferencedBlocks()) {
      referenced.insert(BlockKey(block));
    }
  }
  uint64_t reclaimed = 0;
  for (const std::string& key :
       region->ListPrefix(cluster_id_ + "/blocks/")) {
    if (referenced.count(key)) continue;
    SDW_ASSIGN_OR_RETURN(Bytes data, region->GetObject(key));
    reclaimed += data.size();
    SDW_RETURN_IF_ERROR(region->DeleteObject(key));
  }
  return reclaimed;
}

Result<std::unique_ptr<cluster::Cluster>> BackupManager::RestoreInternal(
    S3Region* source, uint64_t snapshot_id, RestoreStats* stats) {
  common::Retry manifest_retry(retry_policy_);
  SDW_ASSIGN_OR_RETURN(Bytes manifest_bytes,
                       manifest_retry.Call<Bytes>([&] {
                         return source->GetObject(ManifestKey(snapshot_id));
                       }));
  SDW_ASSIGN_OR_RETURN(SnapshotManifest manifest,
                       DeserializeManifest(manifest_bytes));

  auto cluster = std::make_unique<cluster::Cluster>(manifest.config);
  // Wire page-faulting behind the cluster's masking chain: a missing
  // block is looked for on its replica first, then fetched from the
  // object store and cached locally (§2.3 streaming restore). Going
  // through the cluster (not per-store handlers) keeps replication
  // masking composed in front of the S3 path. Each fault carries its
  // own retry budget; a local Retry keeps concurrent slices race-free.
  const common::RetryPolicy fault_policy = retry_policy_;
  cluster->set_page_fault_handler(
      [source, fault_policy, this](storage::BlockId id) -> Result<Bytes> {
        common::Retry retry(fault_policy);
        return retry.Call<Bytes>(
            [&] { return source->GetObject(BlockKey(id)); });
      });

  uint64_t total_blocks = 0;
  uint64_t total_bytes = 0;
  uint64_t manifest_bytes_size = manifest_bytes.size();
  for (const TableManifest& table : manifest.tables) {
    SDW_RETURN_IF_ERROR(cluster->CreateTable(table.schema));
    TableStats table_stats;
    table_stats.row_count = table.stats_row_count;
    table_stats.columns.resize(table.schema.num_columns());
    cluster->catalog()->UpdateStats(table.schema.name(), table_stats);
    cluster->set_round_robin_cursor(table.schema.name(),
                                    table.round_robin_cursor);
    for (const ShardManifest& shard : table.shards) {
      SDW_ASSIGN_OR_RETURN(
          storage::TableShard * target,
          cluster->shard(shard.global_slice, table.schema.name()));
      for (const auto& chain : shard.chains) {
        total_blocks += chain.size();
        for (const auto& meta : chain) total_bytes += meta.encoded_bytes;
      }
      SDW_RETURN_IF_ERROR(target->LoadChains(shard.chains));
    }
  }

  if (stats != nullptr) {
    stats->total_blocks = total_blocks;
    stats->total_bytes = total_bytes;
    // First query needs only the manifest/catalog (tiny); full restore
    // streams every block through the per-node S3 pipes.
    stats->time_to_first_query_seconds =
        cost_model_.S3Seconds(manifest_bytes_size, 1);
    stats->full_restore_seconds =
        cost_model_.S3Seconds(total_bytes, cluster->num_nodes());
  }
  return cluster;
}

Result<std::unique_ptr<cluster::Cluster>> BackupManager::StreamingRestore(
    uint64_t snapshot_id, RestoreStats* stats) {
  return RestoreInternal(s3_->region(region_), snapshot_id, stats);
}

Result<std::unique_ptr<cluster::Cluster>>
BackupManager::StreamingRestoreFromRegion(const std::string& region,
                                          uint64_t snapshot_id,
                                          RestoreStats* stats) {
  return RestoreInternal(s3_->region(region), snapshot_id, stats);
}

Result<uint64_t> BackupManager::FinishRestore(cluster::Cluster* cluster,
                                              uint64_t snapshot_id) {
  SDW_ASSIGN_OR_RETURN(SnapshotManifest manifest, GetManifest(snapshot_id));
  uint64_t bytes = 0;
  for (const TableManifest& table : manifest.tables) {
    for (const ShardManifest& shard : table.shards) {
      cluster::ComputeNode* node = cluster->NodeOfSlice(shard.global_slice);
      for (const auto& chain : shard.chains) {
        for (const storage::BlockMeta& meta : chain) {
          SDW_ASSIGN_OR_RETURN(Bytes data, node->store()->GetRaw(meta.id));
          bytes += data.size();
        }
      }
    }
  }
  return bytes;
}

Result<uint64_t> BackupManager::ReplicateToRegion(
    const std::string& dst_region) {
  return s3_->CopyPrefix(region_, cluster_id_ + "/", dst_region);
}

}  // namespace sdw::backup
