#ifndef SDW_BACKUP_S3SIM_H_
#define SDW_BACKUP_S3SIM_H_

#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace sdw::backup {

/// One region of the simulated object store: a durable, highly
/// available key->bytes namespace (the Amazon S3 stand-in). Region
/// availability can be faulted to exercise the "escalators, not
/// elevators" degradation paths (§5).
class S3Region {
 public:
  explicit S3Region(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  Status PutObject(const std::string& key, Bytes data);
  Result<Bytes> GetObject(const std::string& key) const;
  Status DeleteObject(const std::string& key);
  bool HasObject(const std::string& key) const {
    return objects_.count(key) > 0;
  }

  /// Keys with the given prefix, ascending.
  std::vector<std::string> ListPrefix(const std::string& prefix) const;

  /// Fault injection: an unavailable region fails every call with
  /// kUnavailable (durability is preserved — objects return when the
  /// region heals).
  void set_available(bool available) { available_ = available; }
  bool available() const { return available_; }

  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t num_objects() const { return objects_.size(); }
  uint64_t put_count() const { return puts_; }
  uint64_t get_count() const { return gets_; }

 private:
  std::string name_;
  std::map<std::string, Bytes> objects_;
  bool available_ = true;
  uint64_t total_bytes_ = 0;
  mutable uint64_t puts_ = 0;
  mutable uint64_t gets_ = 0;
};

/// The multi-region object store.
class S3 {
 public:
  /// Gets (creating on first use) a region by name.
  S3Region* region(const std::string& name);

  /// Server-side copy of one object across regions.
  Status CopyObject(const std::string& src_region, const std::string& key,
                    const std::string& dst_region);

  /// Server-side copy of every object under a prefix (the DR path).
  Result<uint64_t> CopyPrefix(const std::string& src_region,
                              const std::string& prefix,
                              const std::string& dst_region);

 private:
  std::map<std::string, S3Region> regions_;
};

}  // namespace sdw::backup

#endif  // SDW_BACKUP_S3SIM_H_
