#ifndef SDW_BACKUP_S3SIM_H_
#define SDW_BACKUP_S3SIM_H_

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/fault_injector.h"
#include "common/result.h"
#include "common/thread_annotations.h"

namespace sdw::backup {

/// One region of the simulated object store: a durable, highly
/// available key->bytes namespace (the Amazon S3 stand-in). Region
/// availability can be faulted to exercise the "escalators, not
/// elevators" degradation paths (§5).
///
/// Thread-safe: COPY fans object fetches across the slice pool and
/// parallel queries page-fault blocks concurrently, so the object map
/// sits behind a mutex and the counters are atomics.
class S3Region {
 public:
  explicit S3Region(std::string name)
      : name_(std::move(name)), fault_point_("s3:" + name_) {}

  S3Region(const S3Region&) = delete;
  S3Region& operator=(const S3Region&) = delete;

  const std::string& name() const { return name_; }

  Status PutObject(const std::string& key, Bytes data) SDW_EXCLUDES(mu_);
  Result<Bytes> GetObject(const std::string& key) const SDW_EXCLUDES(mu_);
  Status DeleteObject(const std::string& key) SDW_EXCLUDES(mu_);
  bool HasObject(const std::string& key) const SDW_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return objects_.count(key) > 0;
  }

  /// Keys with the given prefix, ascending.
  std::vector<std::string> ListPrefix(const std::string& prefix) const
      SDW_EXCLUDES(mu_);

  /// Binary fault injection: an unavailable region fails every call
  /// with kUnavailable (durability is preserved — objects return when
  /// the region heals).
  void set_available(bool available) {
    available_.store(available, std::memory_order_relaxed);
  }
  bool available() const {
    return available_.load(std::memory_order_relaxed);
  }

  /// Scripted fault injection beyond the binary switch: seeded
  /// transient failure rates and fail-next-N outages on the object
  /// APIs (Put/Get/Delete) — what the bounded-retry paths are tested
  /// against. Listing stays up (it is metadata-plane here).
  chaos::FaultPoint* fault_point() { return &fault_point_; }

  uint64_t total_bytes() const SDW_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return total_bytes_;
  }
  uint64_t num_objects() const SDW_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return objects_.size();
  }
  uint64_t put_count() const {
    return puts_.load(std::memory_order_relaxed);
  }
  uint64_t get_count() const {
    return gets_.load(std::memory_order_relaxed);
  }

 private:
  /// Availability gate every object call passes through: the binary
  /// switch first, then the scripted fault point.
  Status CheckAvailable() const;

  std::string name_;
  mutable common::Mutex mu_{common::LockRank::kS3Region};
  std::map<std::string, Bytes> objects_ SDW_GUARDED_BY(mu_);
  std::atomic<bool> available_{true};
  uint64_t total_bytes_ SDW_GUARDED_BY(mu_) = 0;
  mutable std::atomic<uint64_t> puts_{0};
  mutable std::atomic<uint64_t> gets_{0};
  mutable chaos::FaultPoint fault_point_;
};

/// The multi-region object store.
class S3 {
 public:
  /// Gets (creating on first use) a region by name.
  S3Region* region(const std::string& name) SDW_EXCLUDES(mu_);

  /// Server-side copy of one object across regions.
  Status CopyObject(const std::string& src_region, const std::string& key,
                    const std::string& dst_region);

  /// Server-side copy of every object under a prefix (the DR path).
  Result<uint64_t> CopyPrefix(const std::string& src_region,
                              const std::string& prefix,
                              const std::string& dst_region);

 private:
  /// Guards the region directory only; object calls go through the
  /// regions' own locks (region() hands out stable pointers —
  /// std::map nodes don't move).
  common::Mutex mu_{common::LockRank::kS3Directory};
  std::map<std::string, S3Region> regions_ SDW_GUARDED_BY(mu_);
};

}  // namespace sdw::backup

#endif  // SDW_BACKUP_S3SIM_H_
