#include "backup/s3sim.h"

#include "obs/registry.h"

namespace sdw::backup {

Status S3Region::CheckAvailable() const {
  if (!available()) {
    return Status::Unavailable("region " + name_ + " is down");
  }
  return fault_point_.OnCall();
}

Status S3Region::PutObject(const std::string& key, Bytes data) {
  SDW_RETURN_IF_ERROR(CheckAvailable());
  puts_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter* puts = obs::Registry::Global().counter("sdw_s3_puts");
  puts->Add();
  common::MutexLock lock(mu_);
  auto it = objects_.find(key);
  if (it != objects_.end()) {
    total_bytes_ -= it->second.size();
  }
  total_bytes_ += data.size();
  objects_[key] = std::move(data);
  return Status::OK();
}

Result<Bytes> S3Region::GetObject(const std::string& key) const {
  SDW_RETURN_IF_ERROR(CheckAvailable());
  gets_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter* gets = obs::Registry::Global().counter("sdw_s3_gets");
  gets->Add();
  common::MutexLock lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return Status::NotFound("no object '" + key + "' in " + name_);
  }
  return it->second;
}

Status S3Region::DeleteObject(const std::string& key) {
  SDW_RETURN_IF_ERROR(CheckAvailable());
  common::MutexLock lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("no object '" + key + "'");
  total_bytes_ -= it->second.size();
  objects_.erase(it);
  return Status::OK();
}

std::vector<std::string> S3Region::ListPrefix(
    const std::string& prefix) const {
  common::MutexLock lock(mu_);
  std::vector<std::string> keys;
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    keys.push_back(it->first);
  }
  return keys;
}

S3Region* S3::region(const std::string& name) {
  common::MutexLock lock(mu_);
  // try_emplace constructs in place: S3Region is immovable (mutex).
  return &regions_.try_emplace(name, name).first->second;
}

Status S3::CopyObject(const std::string& src_region, const std::string& key,
                      const std::string& dst_region) {
  SDW_ASSIGN_OR_RETURN(Bytes data, region(src_region)->GetObject(key));
  return region(dst_region)->PutObject(key, std::move(data));
}

Result<uint64_t> S3::CopyPrefix(const std::string& src_region,
                                const std::string& prefix,
                                const std::string& dst_region) {
  uint64_t bytes = 0;
  for (const std::string& key : region(src_region)->ListPrefix(prefix)) {
    SDW_ASSIGN_OR_RETURN(Bytes data, region(src_region)->GetObject(key));
    bytes += data.size();
    SDW_RETURN_IF_ERROR(region(dst_region)->PutObject(key, std::move(data)));
  }
  return bytes;
}

}  // namespace sdw::backup
