#include "backup/s3sim.h"

namespace sdw::backup {

Status S3Region::PutObject(const std::string& key, Bytes data) {
  if (!available_) return Status::Unavailable("region " + name_ + " is down");
  ++puts_;
  auto it = objects_.find(key);
  if (it != objects_.end()) {
    total_bytes_ -= it->second.size();
  }
  total_bytes_ += data.size();
  objects_[key] = std::move(data);
  return Status::OK();
}

Result<Bytes> S3Region::GetObject(const std::string& key) const {
  if (!available_) return Status::Unavailable("region " + name_ + " is down");
  ++gets_;
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return Status::NotFound("no object '" + key + "' in " + name_);
  }
  return it->second;
}

Status S3Region::DeleteObject(const std::string& key) {
  if (!available_) return Status::Unavailable("region " + name_ + " is down");
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("no object '" + key + "'");
  total_bytes_ -= it->second.size();
  objects_.erase(it);
  return Status::OK();
}

std::vector<std::string> S3Region::ListPrefix(
    const std::string& prefix) const {
  std::vector<std::string> keys;
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    keys.push_back(it->first);
  }
  return keys;
}

S3Region* S3::region(const std::string& name) {
  auto it = regions_.find(name);
  if (it == regions_.end()) {
    it = regions_.emplace(name, S3Region(name)).first;
  }
  return &it->second;
}

Status S3::CopyObject(const std::string& src_region, const std::string& key,
                      const std::string& dst_region) {
  SDW_ASSIGN_OR_RETURN(Bytes data, region(src_region)->GetObject(key));
  return region(dst_region)->PutObject(key, std::move(data));
}

Result<uint64_t> S3::CopyPrefix(const std::string& src_region,
                                const std::string& prefix,
                                const std::string& dst_region) {
  uint64_t bytes = 0;
  for (const std::string& key : region(src_region)->ListPrefix(prefix)) {
    SDW_ASSIGN_OR_RETURN(Bytes data, region(src_region)->GetObject(key));
    bytes += data.size();
    SDW_RETURN_IF_ERROR(region(dst_region)->PutObject(key, std::move(data)));
  }
  return bytes;
}

}  // namespace sdw::backup
