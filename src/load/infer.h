#ifndef SDW_LOAD_INFER_H_
#define SDW_LOAD_INFER_H_

#include <string>

#include "backup/s3sim.h"
#include "catalog/schema.h"
#include "common/result.h"

namespace sdw::load {

struct InferenceOptions {
  /// Lines sampled from the payload (schema drift beyond the sample
  /// surfaces as NULLs at COPY time, matching COPY's semantics).
  size_t sample_lines = 1000;
};

/// Infers a relational schema from newline-delimited JSON — the §4
/// future-work item: "we could support transient data warehouses on a
/// source 'data lake' or automatically 'relationalizing' source
/// semi-structured data into tables for efficient query execution."
///
/// Type widening: integers seen alongside doubles widen to DOUBLE;
/// any field that ever holds a string becomes VARCHAR; booleans stay
/// BOOLEAN unless mixed with anything else; all-NULL fields default to
/// VARCHAR. Columns appear in first-appearance order.
Result<TableSchema> InferJsonSchema(const std::string& table_name,
                                    const std::string& sample_payload,
                                    const InferenceOptions& options = {});

/// Same, sampling the first object under an s3://bucket/prefix URI.
Result<TableSchema> InferJsonSchemaFromUri(backup::S3Region* region,
                                           const std::string& table_name,
                                           const std::string& uri,
                                           const InferenceOptions& options = {});

}  // namespace sdw::load

#endif  // SDW_LOAD_INFER_H_
