#ifndef SDW_LOAD_FORMATS_H_
#define SDW_LOAD_FORMATS_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/types.h"
#include "common/result.h"

namespace sdw::load {

/// Parses CSV text into column vectors matching the schema. Rows are
/// newline-separated; fields comma-separated; an empty field or \N is
/// NULL; double-quoted fields may contain commas and doubled quotes.
Result<std::vector<ColumnVector>> ParseCsv(const std::string& text,
                                           const TableSchema& schema);

/// Renders column vectors as CSV (the inverse, used by tests and data
/// generators).
std::string FormatCsv(const std::vector<ColumnVector>& columns);

/// Parses newline-delimited JSON objects (one per row) into column
/// vectors; fields bind to schema columns by name, absent fields are
/// NULL (COPY "directly supports ingestion of JSON data", §2.1).
Result<std::vector<ColumnVector>> ParseJsonLines(const std::string& text,
                                                 const TableSchema& schema);

/// Parses one flat JSON object into (field, value) pairs in appearance
/// order. Shared by COPY and schema inference.
Result<std::vector<std::pair<std::string, Datum>>> ParseJsonObject(
    const std::string& line);

}  // namespace sdw::load

#endif  // SDW_LOAD_FORMATS_H_
