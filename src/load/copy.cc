#include "load/copy.h"

#include <memory>
#include <optional>

#include "common/thread_pool.h"
#include "compress/analyzer.h"
#include "load/formats.h"
#include "obs/registry.h"

namespace sdw::load {

namespace {

/// Splits "s3://bucket/prefix" into (bucket-as-region-key, prefix).
/// The simulator treats the bucket name as the object-store namespace
/// within the executor's default region.
Result<std::pair<std::string, std::string>> ParseS3Uri(
    const std::string& uri) {
  const std::string scheme = "s3://";
  if (uri.compare(0, scheme.size(), scheme) != 0) {
    return Status::InvalidArgument("COPY source must be an s3:// URI");
  }
  const std::string rest = uri.substr(scheme.size());
  const size_t slash = rest.find('/');
  if (slash == std::string::npos) {
    return Status::InvalidArgument("s3 URI needs a bucket and prefix");
  }
  return std::make_pair(rest.substr(0, slash), rest.substr(slash + 1));
}

}  // namespace

Status CopyExecutor::MaybeRunAnalyzer(const std::string& table,
                                      const std::vector<ColumnVector>& sample,
                                      CopyStats* stats) {
  SDW_ASSIGN_OR_RETURN(uint64_t existing, cluster_->TotalRows(table));
  if (existing > 0) return Status::OK();  // first load only
  SDW_ASSIGN_OR_RETURN(TableSchema schema,
                       cluster_->catalog()->GetTable(table));
  bool changed = false;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (schema.column(c).encoding != ColumnEncoding::kAuto) continue;
    if (sample[c].size() == 0) continue;
    SDW_ASSIGN_OR_RETURN(compress::AnalysisResult analysis,
                         compress::AnalyzeColumn(sample[c]));
    schema.SetColumnEncoding(c, analysis.encoding);
    changed = true;
    stats->chosen_encodings[schema.column(c).name] = analysis.encoding;
    // Propagate to every shard so appended blocks use the encoding.
    for (int s = 0; s < cluster_->total_slices(); ++s) {
      SDW_ASSIGN_OR_RETURN(storage::TableShard * shard,
                           cluster_->shard(s, table));
      shard->SetColumnEncoding(c, analysis.encoding);
    }
  }
  if (changed) {
    SDW_RETURN_IF_ERROR(cluster_->catalog()->UpdateTable(table, schema));
  }
  return Status::OK();
}

Result<CopyStats> CopyExecutor::CopyFromPayloads(
    const std::string& table, const std::vector<std::string>& payloads,
    const CopyOptions& options) {
  CopyStats stats;
  SDW_ASSIGN_OR_RETURN(TableSchema schema, cluster_->catalog()->GetTable(table));

  // Parse every file in parallel on the slice pool ("COPY is
  // parallelized across slices, with each slice reading data in
  // parallel", §2.1); each task owns one slot. Distribution stays in
  // file order below so the load is byte-identical to a serial run.
  std::unique_ptr<common::ThreadPool> own_pool;
  common::ThreadPool* pool = cluster_->pool();
  if (options.pool_size >= 0) {
    own_pool = std::make_unique<common::ThreadPool>(options.pool_size);
    pool = own_pool.get();
  }
  std::vector<std::optional<Result<std::vector<ColumnVector>>>> parsed(
      payloads.size());
  SDW_RETURN_IF_ERROR(pool->ParallelFor(
      static_cast<int>(payloads.size()), [&](int i) -> Status {
        parsed[i].emplace(options.format == CopyFormat::kCsv
                              ? ParseCsv(payloads[i], schema)
                              : ParseJsonLines(payloads[i], schema));
        return Status::OK();
      }));

  bool analyzer_ran = false;
  for (size_t f = 0; f < payloads.size(); ++f) {
    ++stats.files;
    stats.input_bytes += payloads[f].size();
    if (!parsed[f]->ok()) return parsed[f]->status();
    const std::vector<ColumnVector>& columns = **parsed[f];
    if (columns.empty() || columns[0].size() == 0) continue;
    if (options.compupdate && !analyzer_ran) {
      SDW_RETURN_IF_ERROR(MaybeRunAnalyzer(table, columns, &stats));
      analyzer_ran = true;
    }
    SDW_RETURN_IF_ERROR(cluster_->InsertRows(table, columns, options.staging));
    stats.rows_loaded += columns[0].size();
    if (options.progress != nullptr) {
      options.progress->AddRowsScanned(columns[0].size());
    }
  }
  if (options.statupdate && stats.rows_loaded > 0) {
    SDW_RETURN_IF_ERROR(cluster_->Analyze(table));
  }
  static obs::Counter* rows_loaded =
      obs::Registry::Global().counter("sdw_copy_rows_loaded");
  static obs::Counter* files_loaded =
      obs::Registry::Global().counter("sdw_copy_files");
  rows_loaded->Add(stats.rows_loaded);
  files_loaded->Add(stats.files);
  // Slice-parallel ingest: every slice chews its share of the input.
  stats.modeled_seconds =
      static_cast<double>(stats.input_bytes) /
      (cost_model_.slice_ingest_bytes_per_sec * cluster_->total_slices());
  return stats;
}

Result<CopyStats> CopyExecutor::CopyFromUri(const std::string& table,
                                            const std::string& uri,
                                            const CopyOptions& options) {
  SDW_ASSIGN_OR_RETURN(auto bucket_prefix, ParseS3Uri(uri));
  backup::S3Region* region = s3_->region(default_region_);
  const std::string full_prefix = bucket_prefix.first + "/" +
                                  bucket_prefix.second;
  // Transient S3 unavailability degrades to latency, not error: each
  // fetch gets a bounded retry budget with backoff (§2.1 — loads run
  // for hours; one throttled GET must not fail the COPY).
  common::Retry retry(options.retry);
  std::vector<std::string> payloads;
  const std::vector<std::string> keys = region->ListPrefix(full_prefix);
  for (const std::string& key : keys) {
    SDW_ASSIGN_OR_RETURN(
        Bytes data, retry.Call<Bytes>([&] { return region->GetObject(key); }));
    payloads.emplace_back(reinterpret_cast<const char*>(data.data()),
                          data.size());
  }
  if (payloads.empty()) {
    return Status::NotFound("no objects under '" + uri + "'");
  }
  SDW_ASSIGN_OR_RETURN(CopyStats stats,
                       CopyFromPayloads(table, payloads, options));
  stats.s3_retry_attempts =
      retry.attempts() - static_cast<int>(keys.size());
  stats.retry_backoff_seconds = retry.backoff_seconds();
  stats.modeled_seconds += retry.backoff_seconds();
  return stats;
}

}  // namespace sdw::load
