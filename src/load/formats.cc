#include "load/formats.h"

#include <cctype>
#include <cstdlib>

namespace sdw::load {

namespace {

Status AppendField(ColumnVector* column, TypeId type,
                   const std::string& field, bool was_quoted) {
  if (!was_quoted && (field.empty() || field == "\\N")) {
    column->AppendNull();
    return Status::OK();
  }
  switch (type) {
    case TypeId::kString:
      column->AppendString(field);
      return Status::OK();
    case TypeId::kDouble: {
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str()) {
        return Status::InvalidArgument("bad double '" + field + "'");
      }
      column->AppendDouble(v);
      return Status::OK();
    }
    case TypeId::kBool:
      if (field == "true" || field == "t" || field == "1") {
        column->AppendInt(1);
      } else if (field == "false" || field == "f" || field == "0") {
        column->AppendInt(0);
      } else {
        return Status::InvalidArgument("bad boolean '" + field + "'");
      }
      return Status::OK();
    default: {
      char* end = nullptr;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (end == field.c_str()) {
        return Status::InvalidArgument("bad integer '" + field + "'");
      }
      column->AppendInt(v);
      return Status::OK();
    }
  }
}

}  // namespace

Result<std::vector<ColumnVector>> ParseCsv(const std::string& text,
                                           const TableSchema& schema) {
  std::vector<ColumnVector> columns;
  for (const ColumnDef& col : schema.columns()) {
    columns.emplace_back(col.type);
  }
  size_t i = 0;
  const size_t n = text.size();
  size_t line = 1;
  while (i < n) {
    if (text[i] == '\n') {  // skip blank lines
      ++i;
      ++line;
      continue;
    }
    size_t field_index = 0;
    while (true) {
      if (field_index >= columns.size()) {
        return Status::InvalidArgument("too many fields at line " +
                                       std::to_string(line));
      }
      std::string field;
      bool quoted = false;
      if (i < n && text[i] == '"') {
        quoted = true;
        ++i;
        while (i < n) {
          if (text[i] == '"') {
            if (i + 1 < n && text[i + 1] == '"') {
              field.push_back('"');
              i += 2;
              continue;
            }
            ++i;
            break;
          }
          field.push_back(text[i++]);
        }
      } else {
        while (i < n && text[i] != ',' && text[i] != '\n') {
          field.push_back(text[i++]);
        }
      }
      SDW_RETURN_IF_ERROR(AppendField(
          &columns[field_index], schema.column(field_index).type, field,
          quoted));
      ++field_index;
      if (i < n && text[i] == ',') {
        ++i;
        continue;
      }
      break;
    }
    if (field_index != columns.size()) {
      return Status::InvalidArgument("too few fields at line " +
                                     std::to_string(line));
    }
    if (i < n) {
      if (text[i] != '\n') {
        return Status::InvalidArgument("malformed row at line " +
                                       std::to_string(line));
      }
      ++i;
      ++line;
    }
  }
  return columns;
}

std::string FormatCsv(const std::vector<ColumnVector>& columns) {
  std::string out;
  const size_t rows = columns.empty() ? 0 : columns[0].size();
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns.size(); ++c) {
      if (c > 0) out.push_back(',');
      const ColumnVector& col = columns[c];
      if (col.IsNull(r)) {
        out += "\\N";
        continue;
      }
      switch (col.type()) {
        case TypeId::kString: {
          const std::string& s = col.StringAt(r);
          if (s.empty() || s.find_first_of(",\"\n") != std::string::npos) {
            out.push_back('"');
            for (char ch : s) {
              if (ch == '"') out.push_back('"');
              out.push_back(ch);
            }
            out.push_back('"');
          } else {
            out += s;
          }
          break;
        }
        case TypeId::kDouble: {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.17g", col.DoubleAt(r));
          out += buf;
          break;
        }
        case TypeId::kBool:
          out += col.IntAt(r) ? "true" : "false";
          break;
        default:
          out += std::to_string(col.IntAt(r));
          break;
      }
    }
    out.push_back('\n');
  }
  return out;
}

namespace {

/// Minimal JSON value scanner for flat objects of scalars.
struct JsonParser {
  const std::string& text;
  size_t pos = 0;

  void SkipWs() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) &&
           text[pos] != '\n') {
      ++pos;
    }
  }

  Result<std::string> ParseString() {
    if (text[pos] != '"') return Status::InvalidArgument("expected '\"'");
    ++pos;
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) {
        ++pos;
        switch (text[pos]) {
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          default:
            out.push_back(text[pos]);
            break;
        }
        ++pos;
        continue;
      }
      out.push_back(text[pos++]);
    }
    if (pos >= text.size()) return Status::InvalidArgument("unterminated string");
    ++pos;
    return out;
  }
};

}  // namespace

Result<std::vector<std::pair<std::string, Datum>>> ParseJsonObject(
    const std::string& line) {
  std::vector<std::pair<std::string, Datum>> fields;
  JsonParser p{line};
  p.SkipWs();
  if (p.pos >= line.size() || line[p.pos] != '{') {
    return Status::InvalidArgument("expected JSON object");
  }
  ++p.pos;
  p.SkipWs();
  if (p.pos < line.size() && line[p.pos] == '}') {
    ++p.pos;
    return fields;
  }
  while (true) {
    p.SkipWs();
    SDW_ASSIGN_OR_RETURN(std::string key, p.ParseString());
    p.SkipWs();
    if (p.pos >= line.size() || line[p.pos] != ':') {
      return Status::InvalidArgument("expected ':' in JSON object");
    }
    ++p.pos;
    p.SkipWs();
    Datum value;
    if (p.pos < line.size() && line[p.pos] == '"') {
      SDW_ASSIGN_OR_RETURN(std::string s, p.ParseString());
      value = Datum::String(std::move(s));
    } else if (line.compare(p.pos, 4, "null") == 0) {
      value = Datum::Null();
      p.pos += 4;
    } else if (line.compare(p.pos, 4, "true") == 0) {
      value = Datum::Bool(true);
      p.pos += 4;
    } else if (line.compare(p.pos, 5, "false") == 0) {
      value = Datum::Bool(false);
      p.pos += 5;
    } else {
      char* endp = nullptr;
      const char* begin = line.c_str() + p.pos;
      double d = std::strtod(begin, &endp);
      if (endp == begin) {
        return Status::InvalidArgument("bad JSON value");
      }
      // Integral numbers become int64 so they bind to int columns.
      if (d == static_cast<double>(static_cast<int64_t>(d)) &&
          std::string(begin, static_cast<const char*>(endp)).find('.') ==
              std::string::npos) {
        value = Datum::Int64(static_cast<int64_t>(d));
      } else {
        value = Datum::Double(d);
      }
      p.pos += endp - begin;
    }
    fields.emplace_back(std::move(key), std::move(value));
    p.SkipWs();
    if (p.pos < line.size() && line[p.pos] == ',') {
      ++p.pos;
      continue;
    }
    if (p.pos < line.size() && line[p.pos] == '}') {
      ++p.pos;
      break;
    }
    return Status::InvalidArgument("malformed JSON object");
  }
  return fields;
}

Result<std::vector<ColumnVector>> ParseJsonLines(const std::string& text,
                                                 const TableSchema& schema) {
  std::vector<ColumnVector> columns;
  for (const ColumnDef& col : schema.columns()) {
    columns.emplace_back(col.type);
  }
  size_t start = 0;
  size_t line_no = 1;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    start = end + 1;
    // Skip blank lines.
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      ++line_no;
      continue;
    }
    auto parsed = ParseJsonObject(line);
    if (!parsed.ok()) {
      return Status::InvalidArgument(parsed.status().message() + " at line " +
                                     std::to_string(line_no));
    }
    // Emit one full row (absent fields NULL, unknown fields ignored).
    std::vector<bool> present(columns.size(), false);
    std::vector<Datum> values(columns.size());
    for (auto& [key, value] : *parsed) {
      auto idx = schema.FindColumn(key);
      if (idx.ok()) {
        present[*idx] = true;
        values[*idx] = std::move(value);
      }
    }
    for (size_t c = 0; c < columns.size(); ++c) {
      if (!present[c]) {
        columns[c].AppendNull();
      } else {
        SDW_RETURN_IF_ERROR(columns[c].AppendDatum(values[c]));
      }
    }
    ++line_no;
  }
  return columns;
}

}  // namespace sdw::load
