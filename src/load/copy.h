#ifndef SDW_LOAD_COPY_H_
#define SDW_LOAD_COPY_H_

#include <map>
#include <string>
#include <vector>

#include "backup/s3sim.h"
#include "catalog/schema.h"
#include "cluster/cluster.h"
#include "cluster/cost_model.h"
#include "common/result.h"
#include "common/retry.h"
#include "obs/profiler.h"

namespace sdw::load {

/// COPY input format.
enum class CopyFormat { kCsv, kJson };

struct CopyOptions {
  CopyFormat format = CopyFormat::kCsv;
  /// Run the sampling compression analyzer on first load and update the
  /// optimizer statistics afterwards ("by default, compression scheme
  /// and optimizer statistics are updated with load", §2.1).
  bool compupdate = true;
  bool statupdate = true;
  /// Per-file parse parallelism: -1 uses the cluster's shared pool, 0
  /// parses serially, >0 uses a private pool of that size. Rows are
  /// distributed (and the analyzer sampled) in file order either way,
  /// so loads are byte-identical across settings.
  int pool_size = -1;
  /// Bounded retry for object fetches: transient S3 unavailability
  /// degrades to latency (folded into modeled_seconds) instead of a
  /// failed load; an outage longer than the budget still surfaces as
  /// kUnavailable.
  common::RetryPolicy retry;
  /// MVCC staging: when set, every InsertRows run is accumulated on
  /// this StagedWrite instead of installed per-file, so the warehouse
  /// can commit the whole COPY as one atomic version bump (readers see
  /// all files or none). Null keeps the legacy install-per-run path.
  cluster::StagedWrite* staging = nullptr;
  /// Live progress counters for stv_inflight: rows_scanned counts rows
  /// loaded so far (a COPY "scans" its input). Null when unwatched.
  obs::QueryProgress* progress = nullptr;
};

struct CopyStats {
  uint64_t rows_loaded = 0;
  uint64_t input_bytes = 0;
  int files = 0;
  /// Encodings the analyzer chose, by column name (empty if compupdate
  /// was off or the table already had data).
  std::map<std::string, ColumnEncoding> chosen_encodings;
  /// Modeled wall clock: files parse slice-parallel (§2.1: "COPY is
  /// parallelized across slices, with each slice reading data in
  /// parallel, distributing as needed, and sorting locally").
  double modeled_seconds = 0;
  /// Object-fetch attempts beyond the first (transient S3 faults that
  /// were retried away) and the virtual backoff they cost.
  int s3_retry_attempts = 0;
  double retry_backoff_seconds = 0;
};

/// Executes the Redshift-style COPY: reads objects from the simulated
/// object store (or inline payloads), parses, auto-assigns column
/// encodings on first load, distributes rows across slices and sorts
/// each slice's run, then refreshes statistics.
class CopyExecutor {
 public:
  CopyExecutor(cluster::Cluster* cluster, backup::S3* s3,
               std::string default_region = "us-east-1",
               cluster::CostModel cost_model = {})
      : cluster_(cluster),
        s3_(s3),
        default_region_(std::move(default_region)),
        cost_model_(cost_model) {}

  /// COPY table FROM 's3://bucket/prefix': every object under the
  /// prefix is one input file.
  Result<CopyStats> CopyFromUri(const std::string& table,
                                const std::string& uri,
                                const CopyOptions& options = {});

  /// COPY from in-memory payloads (the SSH/EMR-style source).
  Result<CopyStats> CopyFromPayloads(const std::string& table,
                                     const std::vector<std::string>& payloads,
                                     const CopyOptions& options = {});

 private:
  Status MaybeRunAnalyzer(const std::string& table,
                          const std::vector<ColumnVector>& sample,
                          CopyStats* stats);

  cluster::Cluster* cluster_;
  backup::S3* s3_;
  std::string default_region_;
  cluster::CostModel cost_model_;
};

}  // namespace sdw::load

#endif  // SDW_LOAD_COPY_H_
