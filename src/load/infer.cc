#include "load/infer.h"

#include <map>

#include "load/formats.h"

namespace sdw::load {

namespace {

/// Lattice of observed types; Widen folds one more observation in.
struct FieldProfile {
  bool saw_int = false;
  bool saw_double = false;
  bool saw_string = false;
  bool saw_bool = false;

  void Observe(const Datum& value) {
    if (value.is_null()) return;
    switch (value.type()) {
      case TypeId::kString:
        saw_string = true;
        break;
      case TypeId::kDouble:
        saw_double = true;
        break;
      case TypeId::kBool:
        saw_bool = true;
        break;
      default:
        saw_int = true;
        break;
    }
  }

  TypeId Resolve() const {
    if (saw_string) return TypeId::kString;
    if (saw_bool && !saw_int && !saw_double) return TypeId::kBool;
    if (saw_double) return TypeId::kDouble;
    if (saw_int || saw_bool) return TypeId::kInt64;
    return TypeId::kString;  // all NULLs: the permissive default
  }
};

}  // namespace

Result<TableSchema> InferJsonSchema(const std::string& table_name,
                                    const std::string& sample_payload,
                                    const InferenceOptions& options) {
  std::vector<std::string> field_order;
  std::map<std::string, FieldProfile> profiles;

  size_t start = 0;
  size_t lines = 0;
  while (start < sample_payload.size() && lines < options.sample_lines) {
    size_t end = sample_payload.find('\n', start);
    if (end == std::string::npos) end = sample_payload.size();
    std::string line = sample_payload.substr(start, end - start);
    start = end + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    SDW_ASSIGN_OR_RETURN(auto fields, ParseJsonObject(line));
    for (auto& [key, value] : fields) {
      auto it = profiles.find(key);
      if (it == profiles.end()) {
        it = profiles.emplace(key, FieldProfile{}).first;
        field_order.push_back(key);
      }
      it->second.Observe(value);
    }
    ++lines;
  }
  if (field_order.empty()) {
    return Status::InvalidArgument(
        "no JSON objects with fields found in the sample");
  }
  std::vector<ColumnDef> columns;
  columns.reserve(field_order.size());
  for (const std::string& name : field_order) {
    ColumnDef col;
    col.name = name;
    col.type = profiles[name].Resolve();
    columns.push_back(std::move(col));
  }
  return TableSchema(table_name, std::move(columns));
}

Result<TableSchema> InferJsonSchemaFromUri(backup::S3Region* region,
                                           const std::string& table_name,
                                           const std::string& uri,
                                           const InferenceOptions& options) {
  const std::string scheme = "s3://";
  if (uri.compare(0, scheme.size(), scheme) != 0) {
    return Status::InvalidArgument("inference source must be an s3:// URI");
  }
  const std::string prefix = uri.substr(scheme.size());
  auto keys = region->ListPrefix(prefix);
  if (keys.empty()) {
    return Status::NotFound("no objects under '" + uri + "'");
  }
  SDW_ASSIGN_OR_RETURN(Bytes data, region->GetObject(keys.front()));
  return InferJsonSchema(
      table_name,
      std::string(reinterpret_cast<const char*>(data.data()), data.size()),
      options);
}

}  // namespace sdw::load
