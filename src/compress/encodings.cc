#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "compress/codec.h"
#include "compress/lz77.h"
#include "common/logging.h"

namespace sdw::compress {

namespace {

// ---------------------------------------------------------------------------
// Shared header: row count, null count, optional packed null bitmap.
// Value payloads always cover all n positions (nulls hold placeholders),
// which keeps every codec oblivious to nullability.
// ---------------------------------------------------------------------------

void EncodeHeader(const ColumnVector& values, Bytes* out) {
  const size_t n = values.size();
  PutVarint64(out, n);
  PutVarint64(out, values.null_count());
  if (values.null_count() > 0) {
    Bytes bitmap((n + 7) / 8, 0);
    for (size_t i = 0; i < n; ++i) {
      if (values.IsNull(i)) bitmap[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
    }
    out->insert(out->end(), bitmap.begin(), bitmap.end());
  }
}

struct Header {
  size_t n = 0;
  size_t null_count = 0;
  Bytes bitmap;  // empty when null_count == 0

  bool IsNull(size_t i) const {
    if (null_count == 0) return false;
    return (bitmap[i / 8] >> (i % 8)) & 1;
  }
};

Status DecodeHeader(const Bytes& data, size_t* pos, Header* h) {
  uint64_t n = 0;
  uint64_t nulls = 0;
  if (!GetVarint64(data, pos, &n) || !GetVarint64(data, pos, &nulls)) {
    return Status::Corruption("block header truncated");
  }
  h->n = n;
  h->null_count = nulls;
  if (nulls > 0) {
    size_t bitmap_bytes = (n + 7) / 8;
    if (*pos + bitmap_bytes > data.size()) {
      return Status::Corruption("null bitmap truncated");
    }
    h->bitmap.assign(data.begin() + *pos, data.begin() + *pos + bitmap_bytes);
    *pos += bitmap_bytes;
  }
  return Status::OK();
}

// Rebuilds a ColumnVector from decoded lanes + the null bitmap.
template <typename AppendValue>
ColumnVector Assemble(TypeId type, const Header& h, AppendValue&& append) {
  ColumnVector out(type);
  out.Reserve(h.n);
  for (size_t i = 0; i < h.n; ++i) {
    if (h.IsNull(i)) {
      out.AppendNull();
    } else {
      append(&out, i);
    }
  }
  return out;
}

// Lane-moving fast paths for the common null-free case.
ColumnVector AssembleInts(TypeId type, const Header& h,
                          std::vector<int64_t> lane) {
  if (h.null_count == 0) {
    return ColumnVector::TakeInts(type, std::move(lane));
  }
  return Assemble(type, h, [&](ColumnVector* out, size_t i) {
    out->AppendInt(lane[i]);
  });
}

ColumnVector AssembleDoubles(const Header& h, std::vector<double> lane) {
  if (h.null_count == 0) {
    return ColumnVector::TakeDoubles(std::move(lane));
  }
  return Assemble(TypeId::kDouble, h, [&](ColumnVector* out, size_t i) {
    out->AppendDouble(lane[i]);
  });
}

ColumnVector AssembleStrings(const Header& h,
                             std::vector<std::string> lane) {
  if (h.null_count == 0) {
    return ColumnVector::TakeStrings(std::move(lane));
  }
  return Assemble(TypeId::kString, h, [&](ColumnVector* out, size_t i) {
    out->AppendString(std::move(lane[i]));
  });
}

inline uint64_t DoubleBits(double d) {
  uint64_t bits;
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return bits;
}
inline double BitsDouble(uint64_t bits) {
  double d;
  __builtin_memcpy(&d, &bits, sizeof(d));
  return d;
}

// ---------------------------------------------------------------------------
// RAW: fixed-width ints/doubles, length-prefixed strings.
// ---------------------------------------------------------------------------

class RawCodec : public Codec {
 public:
  ColumnEncoding encoding() const override { return ColumnEncoding::kRaw; }
  bool Supports(TypeId type) const override { return true; }

  Status Encode(const ColumnVector& values, Bytes* out) const override {
    EncodeHeader(values, out);
    switch (values.type()) {
      case TypeId::kDouble:
        for (double d : values.doubles()) PutFixed64(out, DoubleBits(d));
        break;
      case TypeId::kString:
        for (const auto& s : values.strings()) PutLengthPrefixed(out, s);
        break;
      default:
        for (int64_t v : values.ints()) {
          PutFixed64(out, static_cast<uint64_t>(v));
        }
        break;
    }
    return Status::OK();
  }

  Result<ColumnVector> Decode(const Bytes& data, TypeId type) const override {
    size_t pos = 0;
    Header h;
    SDW_RETURN_IF_ERROR(DecodeHeader(data, &pos, &h));
    if (type == TypeId::kString) {
      std::vector<std::string> lane(h.n);
      for (size_t i = 0; i < h.n; ++i) {
        if (!GetLengthPrefixed(data, &pos, &lane[i])) {
          return Status::Corruption("raw string truncated");
        }
      }
      return AssembleStrings(h, std::move(lane));
    }
    if (pos + 8 * h.n > data.size()) {
      return Status::Corruption("raw payload truncated");
    }
    if (type == TypeId::kDouble) {
      std::vector<double> lane(h.n);
      for (size_t i = 0; i < h.n; ++i) {
        lane[i] = BitsDouble(GetFixed64(data.data() + pos + 8 * i));
      }
      return AssembleDoubles(h, std::move(lane));
    }
    std::vector<int64_t> lane(h.n);
    for (size_t i = 0; i < h.n; ++i) {
      lane[i] = static_cast<int64_t>(GetFixed64(data.data() + pos + 8 * i));
    }
    return AssembleInts(type, h, std::move(lane));
  }
};

// ---------------------------------------------------------------------------
// RUNLENGTH: (value, run length) pairs; works for every type.
// ---------------------------------------------------------------------------

class RunLengthCodec : public Codec {
 public:
  ColumnEncoding encoding() const override {
    return ColumnEncoding::kRunLength;
  }
  bool Supports(TypeId type) const override { return true; }

  Status Encode(const ColumnVector& values, Bytes* out) const override {
    EncodeHeader(values, out);
    const size_t n = values.size();
    size_t i = 0;
    while (i < n) {
      size_t run = 1;
      while (i + run < n && SameValue(values, i, i + run)) ++run;
      PutVarint64(out, run);
      PutValue(values, i, out);
      i += run;
    }
    return Status::OK();
  }

  Result<ColumnVector> Decode(const Bytes& data, TypeId type) const override {
    size_t pos = 0;
    Header h;
    SDW_RETURN_IF_ERROR(DecodeHeader(data, &pos, &h));
    // Decode runs into full lanes first (runs may span null positions'
    // placeholders), then assemble.
    std::vector<int64_t> int_lane;
    std::vector<double> dbl_lane;
    std::vector<std::string> str_lane;
    size_t produced = 0;
    while (produced < h.n) {
      uint64_t run = 0;
      if (!GetVarint64(data, &pos, &run) || run == 0 ||
          produced + run > h.n) {
        return Status::Corruption("rle run truncated");
      }
      if (type == TypeId::kString) {
        std::string s;
        if (!GetLengthPrefixed(data, &pos, &s)) {
          return Status::Corruption("rle string truncated");
        }
        str_lane.insert(str_lane.end(), run, s);
      } else {
        uint64_t raw = 0;
        if (!GetVarint64(data, &pos, &raw)) {
          return Status::Corruption("rle value truncated");
        }
        if (type == TypeId::kDouble) {
          dbl_lane.insert(dbl_lane.end(), run, BitsDouble(raw));
        } else {
          int_lane.insert(int_lane.end(), run, ZigZagDecode(raw));
        }
      }
      produced += run;
    }
    if (type == TypeId::kString) {
      return AssembleStrings(h, std::move(str_lane));
    }
    if (type == TypeId::kDouble) {
      return AssembleDoubles(h, std::move(dbl_lane));
    }
    return AssembleInts(type, h, std::move(int_lane));
  }

 private:
  static bool SameValue(const ColumnVector& v, size_t a, size_t b) {
    switch (v.type()) {
      case TypeId::kDouble:
        return DoubleBits(v.doubles()[a]) == DoubleBits(v.doubles()[b]);
      case TypeId::kString:
        return v.strings()[a] == v.strings()[b];
      default:
        return v.ints()[a] == v.ints()[b];
    }
  }
  static void PutValue(const ColumnVector& v, size_t i, Bytes* out) {
    switch (v.type()) {
      case TypeId::kDouble:
        PutVarint64(out, DoubleBits(v.doubles()[i]));
        break;
      case TypeId::kString:
        PutLengthPrefixed(out, v.strings()[i]);
        break;
      default:
        PutVarint64(out, ZigZagEncode(v.ints()[i]));
        break;
    }
  }
};

// ---------------------------------------------------------------------------
// DELTA: first value + zigzag varint deltas. Integer-like lanes only;
// excellent for timestamps and monotonically assigned ids.
// ---------------------------------------------------------------------------

class DeltaCodec : public Codec {
 public:
  ColumnEncoding encoding() const override { return ColumnEncoding::kDelta; }
  bool Supports(TypeId type) const override { return IsIntegerLike(type); }

  Status Encode(const ColumnVector& values, Bytes* out) const override {
    if (!Supports(values.type())) {
      return Status::NotSupported("delta requires an integer-like column");
    }
    EncodeHeader(values, out);
    int64_t prev = 0;
    for (int64_t v : values.ints()) {
      // Differences wrap in unsigned space so INT64_MIN/MAX round-trip
      // without signed overflow.
      const uint64_t delta =
          static_cast<uint64_t>(v) - static_cast<uint64_t>(prev);
      PutVarint64(out, ZigZagEncode(static_cast<int64_t>(delta)));
      prev = v;
    }
    return Status::OK();
  }

  Result<ColumnVector> Decode(const Bytes& data, TypeId type) const override {
    size_t pos = 0;
    Header h;
    SDW_RETURN_IF_ERROR(DecodeHeader(data, &pos, &h));
    std::vector<int64_t> lane(h.n);
    int64_t prev = 0;
    for (size_t i = 0; i < h.n; ++i) {
      uint64_t raw = 0;
      if (!GetVarint64(data, &pos, &raw)) {
        return Status::Corruption("delta truncated");
      }
      prev = static_cast<int64_t>(static_cast<uint64_t>(prev) +
                                  static_cast<uint64_t>(ZigZagDecode(raw)));
      lane[i] = prev;
    }
    return AssembleInts(type, h, std::move(lane));
  }
};

// ---------------------------------------------------------------------------
// BYTEDICT: per-block dictionary of up to 255 distinct values, 1-byte
// codes, escape byte 0xFF followed by an inline value for overflow.
// ---------------------------------------------------------------------------

class BytedictCodec : public Codec {
 public:
  ColumnEncoding encoding() const override {
    return ColumnEncoding::kBytedict;
  }
  bool Supports(TypeId type) const override { return true; }

  Status Encode(const ColumnVector& values, Bytes* out) const override {
    EncodeHeader(values, out);
    const size_t n = values.size();
    // Build dictionary in first-appearance order, capped at 255 entries.
    std::map<std::string, uint8_t> dict;
    std::vector<std::string> dict_order;
    std::vector<uint8_t> codes(n);
    std::vector<size_t> escapes;
    for (size_t i = 0; i < n; ++i) {
      std::string key = KeyAt(values, i);
      auto it = dict.find(key);
      if (it != dict.end()) {
        codes[i] = it->second;
      } else if (dict.size() < 255) {
        uint8_t code = static_cast<uint8_t>(dict.size());
        dict[key] = code;
        dict_order.push_back(key);
        codes[i] = code;
      } else {
        codes[i] = 0xFF;
        escapes.push_back(i);
      }
    }
    PutVarint64(out, dict_order.size());
    for (const auto& key : dict_order) {
      PutVarint64(out, key.size());
      out->insert(out->end(), key.begin(), key.end());
    }
    out->insert(out->end(), codes.begin(), codes.end());
    for (size_t idx : escapes) {
      std::string key = KeyAt(values, idx);
      PutVarint64(out, key.size());
      out->insert(out->end(), key.begin(), key.end());
    }
    return Status::OK();
  }

  Result<ColumnVector> Decode(const Bytes& data, TypeId type) const override {
    size_t pos = 0;
    Header h;
    SDW_RETURN_IF_ERROR(DecodeHeader(data, &pos, &h));
    uint64_t dict_size = 0;
    if (!GetVarint64(data, &pos, &dict_size) || dict_size > 255) {
      return Status::Corruption("bytedict: bad dictionary size");
    }
    std::vector<std::string> dict(dict_size);
    for (auto& entry : dict) {
      if (!ReadKey(data, &pos, &entry)) {
        return Status::Corruption("bytedict: dictionary truncated");
      }
    }
    if (pos + h.n > data.size()) {
      return Status::Corruption("bytedict: codes truncated");
    }
    const uint8_t* codes = data.data() + pos;
    pos += h.n;
    std::vector<std::string> lane(h.n);
    for (size_t i = 0; i < h.n; ++i) {
      if (codes[i] == 0xFF) {
        if (!ReadKey(data, &pos, &lane[i])) {
          return Status::Corruption("bytedict: escape truncated");
        }
      } else {
        if (codes[i] >= dict.size()) {
          return Status::Corruption("bytedict: code out of range");
        }
        lane[i] = dict[codes[i]];
      }
    }
    return Assemble(type, h, [&](ColumnVector* out, size_t i) {
      AppendKey(out, type, lane[i]);
    });
  }

 private:
  // Values are keyed by their wire form: 8 raw bytes for numerics, the
  // string itself for VARCHAR.
  static std::string KeyAt(const ColumnVector& v, size_t i) {
    switch (v.type()) {
      case TypeId::kString:
        return v.strings()[i];
      case TypeId::kDouble: {
        uint64_t bits = DoubleBits(v.doubles()[i]);
        return std::string(reinterpret_cast<const char*>(&bits), 8);
      }
      default: {
        int64_t x = v.ints()[i];
        return std::string(reinterpret_cast<const char*>(&x), 8);
      }
    }
  }
  static bool ReadKey(const Bytes& data, size_t* pos, std::string* out) {
    uint64_t len = 0;
    if (!GetVarint64(data, pos, &len) || *pos + len > data.size()) {
      return false;
    }
    out->assign(reinterpret_cast<const char*>(data.data()) + *pos, len);
    *pos += len;
    return true;
  }
  static void AppendKey(ColumnVector* out, TypeId type,
                        const std::string& key) {
    if (type == TypeId::kString) {
      out->AppendString(key);
    } else if (type == TypeId::kDouble) {
      uint64_t bits;
      __builtin_memcpy(&bits, key.data(), 8);
      out->AppendDouble(BitsDouble(bits));
    } else {
      int64_t v;
      __builtin_memcpy(&v, key.data(), 8);
      out->AppendInt(v);
    }
  }
};

// ---------------------------------------------------------------------------
// MOSTLY8/16/32: frame-of-reference narrow storage with an exception
// list for out-of-range values. Integer-like lanes only.
// ---------------------------------------------------------------------------

template <int kWidthBytes>
class MostlyCodec : public Codec {
 public:
  ColumnEncoding encoding() const override {
    if constexpr (kWidthBytes == 1) return ColumnEncoding::kMostly8;
    if constexpr (kWidthBytes == 2) return ColumnEncoding::kMostly16;
    return ColumnEncoding::kMostly32;
  }
  bool Supports(TypeId type) const override { return IsIntegerLike(type); }

  Status Encode(const ColumnVector& values, Bytes* out) const override {
    if (!Supports(values.type())) {
      return Status::NotSupported("mostlyN requires an integer-like column");
    }
    EncodeHeader(values, out);
    constexpr int64_t kLo = Min();
    constexpr int64_t kHi = Max();
    Bytes narrow;
    narrow.reserve(values.size() * kWidthBytes);
    std::vector<std::pair<size_t, int64_t>> exceptions;
    const auto& lane = values.ints();
    for (size_t i = 0; i < lane.size(); ++i) {
      int64_t v = lane[i];
      // kLo itself is the in-band exception marker.
      if (v > kLo && v <= kHi) {
        AppendNarrow(&narrow, v);
      } else {
        AppendNarrow(&narrow, kLo);
        exceptions.emplace_back(i, v);
      }
    }
    out->insert(out->end(), narrow.begin(), narrow.end());
    PutVarint64(out, exceptions.size());
    for (const auto& [idx, v] : exceptions) {
      PutVarint64(out, idx);
      PutVarint64(out, ZigZagEncode(v));
    }
    return Status::OK();
  }

  Result<ColumnVector> Decode(const Bytes& data, TypeId type) const override {
    size_t pos = 0;
    Header h;
    SDW_RETURN_IF_ERROR(DecodeHeader(data, &pos, &h));
    if (pos + h.n * kWidthBytes > data.size()) {
      return Status::Corruption("mostlyN narrow lane truncated");
    }
    std::vector<int64_t> lane(h.n);
    for (size_t i = 0; i < h.n; ++i) {
      lane[i] = ReadNarrow(data.data() + pos + i * kWidthBytes);
    }
    pos += h.n * kWidthBytes;
    uint64_t num_exceptions = 0;
    if (!GetVarint64(data, &pos, &num_exceptions)) {
      return Status::Corruption("mostlyN exception count truncated");
    }
    for (uint64_t e = 0; e < num_exceptions; ++e) {
      uint64_t idx = 0;
      uint64_t raw = 0;
      if (!GetVarint64(data, &pos, &idx) || !GetVarint64(data, &pos, &raw) ||
          idx >= h.n) {
        return Status::Corruption("mostlyN exception truncated");
      }
      lane[idx] = ZigZagDecode(raw);
    }
    return AssembleInts(type, h, std::move(lane));
  }

 private:
  static constexpr int64_t Min() {
    return -(int64_t{1} << (8 * kWidthBytes - 1));
  }
  static constexpr int64_t Max() {
    return (int64_t{1} << (8 * kWidthBytes - 1)) - 1;
  }
  static void AppendNarrow(Bytes* out, int64_t v) {
    uint64_t u = static_cast<uint64_t>(v);
    for (int b = 0; b < kWidthBytes; ++b) {
      out->push_back(static_cast<uint8_t>(u >> (8 * b)));
    }
  }
  static int64_t ReadNarrow(const uint8_t* p) {
    uint64_t u = 0;
    for (int b = 0; b < kWidthBytes; ++b) {
      u |= static_cast<uint64_t>(p[b]) << (8 * b);
    }
    // Sign-extend from kWidthBytes.
    const int shift = 64 - 8 * kWidthBytes;
    return static_cast<int64_t>(u << shift) >> shift;
  }
};

// ---------------------------------------------------------------------------
// LZ: generic byte compressor applied to the RAW wire form.
// ---------------------------------------------------------------------------

class LzCodec : public Codec {
 public:
  ColumnEncoding encoding() const override { return ColumnEncoding::kLz; }
  bool Supports(TypeId type) const override { return true; }

  Status Encode(const ColumnVector& values, Bytes* out) const override {
    Bytes raw;
    SDW_RETURN_IF_ERROR(GetCodec(ColumnEncoding::kRaw)->Encode(values, &raw));
    Lz77Compress(raw, out);
    return Status::OK();
  }

  Result<ColumnVector> Decode(const Bytes& data, TypeId type) const override {
    auto raw = Lz77Decompress(data);
    if (!raw.ok()) return raw.status();
    return GetCodec(ColumnEncoding::kRaw)->Decode(*raw, type);
  }
};

// ---------------------------------------------------------------------------
// TEXT255: word-level dictionary for VARCHAR. Each string becomes a
// sequence of word codes; up to 255 dictionary words per block, escape
// 0xFF + literal word for overflow.
// ---------------------------------------------------------------------------

class Text255Codec : public Codec {
 public:
  ColumnEncoding encoding() const override { return ColumnEncoding::kText255; }
  bool Supports(TypeId type) const override { return type == TypeId::kString; }

  Status Encode(const ColumnVector& values, Bytes* out) const override {
    if (values.type() != TypeId::kString) {
      return Status::NotSupported("text255 requires a VARCHAR column");
    }
    EncodeHeader(values, out);
    std::map<std::string, uint8_t> dict;
    std::vector<std::string> dict_order;
    Bytes body;
    for (const auto& s : values.strings()) {
      std::vector<std::string> words = SplitWords(s);
      PutVarint64(&body, words.size());
      for (const auto& w : words) {
        auto it = dict.find(w);
        if (it != dict.end()) {
          body.push_back(it->second);
        } else if (dict.size() < 255) {
          uint8_t code = static_cast<uint8_t>(dict.size());
          dict[w] = code;
          dict_order.push_back(w);
          body.push_back(code);
        } else {
          body.push_back(0xFF);
          PutLengthPrefixed(&body, w);
        }
      }
    }
    PutVarint64(out, dict_order.size());
    for (const auto& w : dict_order) PutLengthPrefixed(out, w);
    out->insert(out->end(), body.begin(), body.end());
    return Status::OK();
  }

  Result<ColumnVector> Decode(const Bytes& data, TypeId type) const override {
    size_t pos = 0;
    Header h;
    SDW_RETURN_IF_ERROR(DecodeHeader(data, &pos, &h));
    uint64_t dict_size = 0;
    if (!GetVarint64(data, &pos, &dict_size) || dict_size > 255) {
      return Status::Corruption("text255: bad dictionary size");
    }
    std::vector<std::string> dict(dict_size);
    for (auto& w : dict) {
      if (!GetLengthPrefixed(data, &pos, &w)) {
        return Status::Corruption("text255: dictionary truncated");
      }
    }
    std::vector<std::string> lane(h.n);
    for (size_t i = 0; i < h.n; ++i) {
      uint64_t word_count = 0;
      if (!GetVarint64(data, &pos, &word_count)) {
        return Status::Corruption("text255: word count truncated");
      }
      std::string s;
      for (uint64_t w = 0; w < word_count; ++w) {
        if (pos >= data.size()) {
          return Status::Corruption("text255: codes truncated");
        }
        uint8_t code = data[pos++];
        if (w > 0) s += ' ';
        if (code == 0xFF) {
          std::string literal;
          if (!GetLengthPrefixed(data, &pos, &literal)) {
            return Status::Corruption("text255: escape truncated");
          }
          s += literal;
        } else {
          if (code >= dict.size()) {
            return Status::Corruption("text255: code out of range");
          }
          s += dict[code];
        }
      }
      lane[i] = std::move(s);
    }
    return Assemble(type, h, [&](ColumnVector* out, size_t i) {
      out->AppendString(std::move(lane[i]));
    });
  }

 private:
  static std::vector<std::string> SplitWords(const std::string& s) {
    std::vector<std::string> words;
    size_t start = 0;
    while (start <= s.size()) {
      size_t space = s.find(' ', start);
      if (space == std::string::npos) {
        words.push_back(s.substr(start));
        break;
      }
      words.push_back(s.substr(start, space - start));
      start = space + 1;
    }
    // A single empty word means the empty string: encode as zero words.
    if (words.size() == 1 && words[0].empty()) words.clear();
    return words;
  }
};

}  // namespace

const Codec* GetCodec(ColumnEncoding encoding) {
  static const RawCodec& raw = *new RawCodec();
  static const RunLengthCodec& rle = *new RunLengthCodec();
  static const DeltaCodec& delta = *new DeltaCodec();
  static const BytedictCodec& bytedict = *new BytedictCodec();
  static const MostlyCodec<1>& mostly8 = *new MostlyCodec<1>();
  static const MostlyCodec<2>& mostly16 = *new MostlyCodec<2>();
  static const MostlyCodec<4>& mostly32 = *new MostlyCodec<4>();
  static const LzCodec& lz = *new LzCodec();
  static const Text255Codec& text255 = *new Text255Codec();
  switch (encoding) {
    case ColumnEncoding::kRaw:
      return &raw;
    case ColumnEncoding::kRunLength:
      return &rle;
    case ColumnEncoding::kDelta:
      return &delta;
    case ColumnEncoding::kBytedict:
      return &bytedict;
    case ColumnEncoding::kMostly8:
      return &mostly8;
    case ColumnEncoding::kMostly16:
      return &mostly16;
    case ColumnEncoding::kMostly32:
      return &mostly32;
    case ColumnEncoding::kLz:
      return &lz;
    case ColumnEncoding::kText255:
      return &text255;
    case ColumnEncoding::kAuto:
      return nullptr;
  }
  return nullptr;
}

Status EncodeColumn(ColumnEncoding encoding, const ColumnVector& values,
                    Bytes* out) {
  const Codec* codec = GetCodec(encoding);
  if (codec == nullptr) {
    return Status::InvalidArgument("no codec for encoding");
  }
  if (!codec->Supports(values.type())) {
    return Status::NotSupported(std::string(ColumnEncodingName(encoding)) +
                                " does not support " +
                                TypeName(values.type()));
  }
  return codec->Encode(values, out);
}

Result<ColumnVector> DecodeColumn(ColumnEncoding encoding, TypeId type,
                                  const Bytes& data) {
  const Codec* codec = GetCodec(encoding);
  if (codec == nullptr) {
    return Status::InvalidArgument("no codec for encoding");
  }
  return codec->Decode(data, type);
}

}  // namespace sdw::compress
