#include "compress/lz77.h"

#include <cstring>
#include <vector>

namespace sdw::compress {

namespace {
constexpr size_t kWindow = 64 * 1024;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 255 + kMinMatch;
constexpr uint32_t kHashBits = 15;

inline uint32_t HashQuad(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}
}  // namespace

void Lz77Compress(const Bytes& input, Bytes* out) {
  PutVarint64(out, input.size());
  if (input.empty()) return;

  std::vector<int64_t> head(1u << kHashBits, -1);
  const uint8_t* data = input.data();
  const size_t n = input.size();

  size_t literal_start = 0;
  size_t i = 0;
  auto flush_literals = [&](size_t end) {
    PutVarint64(out, end - literal_start);
    out->insert(out->end(), data + literal_start, data + end);
  };

  while (i < n) {
    size_t best_len = 0;
    size_t best_dist = 0;
    if (i + kMinMatch <= n) {
      uint32_t h = HashQuad(data + i);
      int64_t cand = head[h];
      if (cand >= 0 && i - static_cast<size_t>(cand) <= kWindow) {
        const size_t dist = i - static_cast<size_t>(cand);
        size_t len = 0;
        const size_t max_len = std::min(kMaxMatch, n - i);
        while (len < max_len && data[cand + len] == data[i + len]) ++len;
        if (len >= kMinMatch) {
          best_len = len;
          best_dist = dist;
        }
      }
      head[h] = static_cast<int64_t>(i);
    }
    if (best_len > 0) {
      flush_literals(i);
      PutVarint64(out, best_len);
      PutVarint64(out, best_dist);
      // Index positions inside the match so later data can find them.
      const size_t match_end = i + best_len;
      for (size_t j = i + 1; j + kMinMatch <= n && j < match_end; ++j) {
        head[HashQuad(data + j)] = static_cast<int64_t>(j);
      }
      i = match_end;
      literal_start = i;
    } else {
      ++i;
    }
  }
  if (literal_start < n || literal_start == n) {
    flush_literals(n);
    PutVarint64(out, 0);  // terminating "no match"
    PutVarint64(out, 0);
  }
}

Result<Bytes> Lz77Decompress(const Bytes& input) {
  size_t pos = 0;
  uint64_t expected = 0;
  if (!GetVarint64(input, &pos, &expected)) {
    return Status::Corruption("lz77: truncated header");
  }
  Bytes out;
  out.reserve(expected);
  while (out.size() < expected) {
    uint64_t lit_len = 0;
    if (!GetVarint64(input, &pos, &lit_len)) {
      return Status::Corruption("lz77: truncated literal length");
    }
    if (pos + lit_len > input.size() || out.size() + lit_len > expected) {
      return Status::Corruption("lz77: literal overrun");
    }
    out.insert(out.end(), input.begin() + pos, input.begin() + pos + lit_len);
    pos += lit_len;
    if (out.size() == expected) break;
    uint64_t match_len = 0;
    uint64_t dist = 0;
    if (!GetVarint64(input, &pos, &match_len) ||
        !GetVarint64(input, &pos, &dist)) {
      return Status::Corruption("lz77: truncated match");
    }
    if (match_len == 0) continue;
    if (dist == 0 || dist > out.size() || out.size() + match_len > expected) {
      return Status::Corruption("lz77: bad match");
    }
    size_t src = out.size() - dist;
    for (uint64_t k = 0; k < match_len; ++k) {
      out.push_back(out[src + k]);  // overlapping copies are valid
    }
  }
  return out;
}

}  // namespace sdw::compress
