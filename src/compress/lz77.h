#ifndef SDW_COMPRESS_LZ77_H_
#define SDW_COMPRESS_LZ77_H_

#include "common/bytes.h"
#include "common/result.h"

namespace sdw::compress {

/// Greedy LZ77 with a hash-chain match finder over a 64 KiB window —
/// the stand-in for the LZO codec the paper's engine ships. Token
/// stream: varint literal-run length, literals, then varint match
/// length (0 = none) and varint distance, repeated.
void Lz77Compress(const Bytes& input, Bytes* out);

/// Inverse of Lz77Compress. Fails on malformed streams.
Result<Bytes> Lz77Decompress(const Bytes& input);

}  // namespace sdw::compress

#endif  // SDW_COMPRESS_LZ77_H_
