#ifndef SDW_COMPRESS_CODEC_H_
#define SDW_COMPRESS_CODEC_H_

#include <memory>

#include "catalog/schema.h"
#include "catalog/types.h"
#include "common/bytes.h"
#include "common/result.h"

namespace sdw::compress {

/// A block codec: encodes one column vector (one block's worth of values,
/// nulls included) to bytes and back. Implementations are stateless and
/// shared; get one from GetCodec().
class Codec {
 public:
  virtual ~Codec() = default;

  /// The encoding this codec implements.
  virtual ColumnEncoding encoding() const = 0;

  /// True if this codec can encode the given type.
  virtual bool Supports(TypeId type) const = 0;

  /// Encodes `values` (including its null bitmap) into `out` (appended).
  virtual Status Encode(const ColumnVector& values, Bytes* out) const = 0;

  /// Decodes a buffer produced by Encode back into a column vector.
  virtual Result<ColumnVector> Decode(const Bytes& data, TypeId type) const = 0;
};

/// Returns the shared codec for an encoding. kAuto has no codec (the
/// analyzer resolves it before storage ever sees it).
const Codec* GetCodec(ColumnEncoding encoding);

/// Convenience wrappers used by the block writer/reader.
Status EncodeColumn(ColumnEncoding encoding, const ColumnVector& values,
                    Bytes* out);
Result<ColumnVector> DecodeColumn(ColumnEncoding encoding, TypeId type,
                                  const Bytes& data);

}  // namespace sdw::compress

#endif  // SDW_COMPRESS_CODEC_H_
