#include "compress/analyzer.h"

#include "compress/codec.h"

namespace sdw::compress {

std::vector<ColumnEncoding> CandidateEncodings(TypeId type) {
  if (IsIntegerLike(type)) {
    return {ColumnEncoding::kRunLength, ColumnEncoding::kDelta,
            ColumnEncoding::kBytedict, ColumnEncoding::kMostly8,
            ColumnEncoding::kMostly16, ColumnEncoding::kMostly32,
            ColumnEncoding::kLz};
  }
  if (type == TypeId::kDouble) {
    return {ColumnEncoding::kRunLength, ColumnEncoding::kBytedict,
            ColumnEncoding::kLz};
  }
  // VARCHAR.
  return {ColumnEncoding::kRunLength, ColumnEncoding::kBytedict,
          ColumnEncoding::kText255, ColumnEncoding::kLz};
}

Result<AnalysisResult> AnalyzeColumn(const ColumnVector& sample,
                                     const AnalyzerOptions& options) {
  if (sample.size() == 0) {
    return Status::InvalidArgument("cannot analyze an empty sample");
  }
  // Trim the sample to the configured size.
  const ColumnVector* data = &sample;
  ColumnVector trimmed(sample.type());
  if (sample.size() > options.sample_rows) {
    SDW_RETURN_IF_ERROR(trimmed.AppendRange(sample, 0, options.sample_rows));
    data = &trimmed;
  }

  AnalysisResult result;
  Bytes raw;
  SDW_RETURN_IF_ERROR(EncodeColumn(ColumnEncoding::kRaw, *data, &raw));
  result.raw_bytes = raw.size();
  result.encoding = ColumnEncoding::kRaw;
  result.encoded_bytes = raw.size();

  for (ColumnEncoding candidate : CandidateEncodings(data->type())) {
    Bytes encoded;
    Status st = EncodeColumn(candidate, *data, &encoded);
    if (!st.ok()) continue;  // codec/type mismatch: skip candidate
    if (encoded.size() < result.encoded_bytes &&
        static_cast<double>(result.raw_bytes) / encoded.size() >=
            options.min_gain) {
      result.encoding = candidate;
      result.encoded_bytes = encoded.size();
    }
  }
  return result;
}

}  // namespace sdw::compress
