#ifndef SDW_COMPRESS_ANALYZER_H_
#define SDW_COMPRESS_ANALYZER_H_

#include <vector>

#include "catalog/schema.h"
#include "catalog/types.h"
#include "common/result.h"

namespace sdw::compress {

/// Outcome of analyzing one column sample.
struct AnalysisResult {
  ColumnEncoding encoding = ColumnEncoding::kRaw;
  /// Encoded size of the sample under the chosen encoding.
  size_t encoded_bytes = 0;
  /// Encoded size of the sample under RAW, for the compression ratio.
  size_t raw_bytes = 0;

  double ratio() const {
    return encoded_bytes == 0
               ? 1.0
               : static_cast<double>(raw_bytes) / encoded_bytes;
  }
};

/// Options for the sampling analyzer.
struct AnalyzerOptions {
  /// Values sampled per column (the paper: "we automatically pick
  /// compression types based on data sampling").
  size_t sample_rows = 4096;
  /// A candidate must beat RAW by at least this factor to displace it;
  /// avoids paying decode cost for negligible savings.
  double min_gain = 1.05;
};

/// Picks the best encoding for a column by trial-encoding a sample under
/// every applicable codec and choosing the smallest output. This is the
/// automatic COMPUPDATE path run by COPY on first load.
Result<AnalysisResult> AnalyzeColumn(const ColumnVector& sample,
                                     const AnalyzerOptions& options = {});

/// Candidate encodings the analyzer tries for a type, in trial order.
std::vector<ColumnEncoding> CandidateEncodings(TypeId type);

}  // namespace sdw::compress

#endif  // SDW_COMPRESS_ANALYZER_H_
