#ifndef SDW_SIM_ENGINE_H_
#define SDW_SIM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace sdw::sim {

/// Discrete-event simulation engine. Time is double seconds. Events are
/// callbacks scheduled at absolute times and executed in (time, FIFO)
/// order. The whole control plane and fleet model run on this engine so
/// that admin-operation latencies (Figure 2) and fleet telemetry
/// (Figures 4-5) are deterministic functions of the workflow structure.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time in seconds.
  double Now() const { return now_; }

  /// Schedules fn to run `delay` seconds from now (delay >= 0).
  void Schedule(double delay, std::function<void()> fn);

  /// Schedules fn at absolute time t (>= Now()).
  void ScheduleAt(double t, std::function<void()> fn);

  /// Runs one event; returns false if the queue is empty.
  bool Step();

  /// Runs until the event queue is empty.
  void Run();

  /// Runs events with time <= t, then advances the clock to exactly t.
  void RunUntil(double t);

  /// Number of events executed so far (for tests / sanity checks).
  uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    double time;
    uint64_t seq;  // tie-break: FIFO among same-time events
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// Counts down `n` arrivals, then fires `done` once. Used to join
/// data-parallel workflow steps (e.g., per-node backup uploads).
class JoinBarrier {
 public:
  JoinBarrier(int n, std::function<void()> done);

  /// Signals one arrival; fires the callback on the n-th.
  void Arrive();

  int remaining() const { return remaining_; }

 private:
  int remaining_;
  std::function<void()> done_;
};

/// A FIFO resource with `capacity` identical servers (e.g., a disk with
/// one channel, a provisioning pool with k workers). Acquire either
/// grants immediately or queues the continuation.
class Resource {
 public:
  Resource(Engine* engine, int capacity);

  /// Runs fn as soon as a server is free; fn must eventually Release().
  void Acquire(std::function<void()> fn);

  /// Returns a server to the pool, admitting the next waiter if any.
  void Release();

  /// Convenience: acquire, hold a server for `service_time`, release,
  /// then run `done`.
  void Use(double service_time, std::function<void()> done);

  int in_use() const { return in_use_; }
  size_t queue_length() const { return waiters_.size(); }

 private:
  Engine* engine_;
  int capacity_;
  int in_use_ = 0;
  std::queue<std::function<void()>> waiters_;
};

}  // namespace sdw::sim

#endif  // SDW_SIM_ENGINE_H_
