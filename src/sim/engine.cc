#include "sim/engine.h"

#include <utility>

#include "common/logging.h"

namespace sdw::sim {

void Engine::Schedule(double delay, std::function<void()> fn) {
  SDW_CHECK(delay >= 0) << "negative delay " << delay;
  ScheduleAt(now_ + delay, std::move(fn));
}

void Engine::ScheduleAt(double t, std::function<void()> fn) {
  SDW_CHECK(t >= now_) << "scheduling into the past: " << t << " < " << now_;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Engine::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is unsafe,
  // so copy the callback (events are small).
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ++events_executed_;
  ev.fn();
  return true;
}

void Engine::Run() {
  while (Step()) {
  }
}

void Engine::RunUntil(double t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    Step();
  }
  if (t > now_) now_ = t;
}

JoinBarrier::JoinBarrier(int n, std::function<void()> done)
    : remaining_(n), done_(std::move(done)) {
  SDW_CHECK(n > 0);
}

void JoinBarrier::Arrive() {
  SDW_CHECK(remaining_ > 0) << "barrier over-arrived";
  if (--remaining_ == 0) done_();
}

Resource::Resource(Engine* engine, int capacity)
    : engine_(engine), capacity_(capacity) {
  SDW_CHECK(capacity > 0);
}

void Resource::Acquire(std::function<void()> fn) {
  if (in_use_ < capacity_) {
    ++in_use_;
    fn();
  } else {
    waiters_.push(std::move(fn));
  }
}

void Resource::Release() {
  SDW_CHECK(in_use_ > 0);
  if (!waiters_.empty()) {
    auto next = std::move(waiters_.front());
    waiters_.pop();
    // Hand the server directly to the next waiter.
    next();
  } else {
    --in_use_;
  }
}

void Resource::Use(double service_time, std::function<void()> done) {
  Acquire([this, service_time, done = std::move(done)]() {
    engine_->Schedule(service_time, [this, done]() {
      Release();
      done();
    });
  });
}

}  // namespace sdw::sim
