#ifndef SDW_SIM_STOPWATCH_H_
#define SDW_SIM_STOPWATCH_H_

#include <chrono>

namespace sdw::sim {

/// The one sanctioned wall-clock in src/: measures real elapsed seconds
/// for ExecStats-style *measured* telemetry (per-slice CPU seconds,
/// leader time). Everything that feeds logged histories or query
/// results must use virtual ticks instead — tools/lint.py bans direct
/// std::chrono clock use outside src/sim and bench/ so a stray
/// steady_clock::now() can never leak nondeterminism into the
/// deterministic paths.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  /// Seconds since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Monotonic nanosecond timestamp for cross-thread elapsed-time
/// bookkeeping. A Stopwatch is single-owner (Restart() races with
/// Seconds()); code that publishes a start time to concurrent readers
/// stores this value in a std::atomic<int64_t> instead.
inline int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace sdw::sim

#endif  // SDW_SIM_STOPWATCH_H_
