#include "storage/block_store.h"

#include "common/hash.h"

namespace sdw::storage {

BlockId BlockStore::Allocate() {
  static uint64_t next_id = 1;
  return next_id++;
}

Status BlockStore::Put(BlockId id, Bytes data) {
  if (blocks_.count(id)) {
    return Status::AlreadyExists("block " + std::to_string(id) +
                                 " already stored (blocks are immutable)");
  }
  if (write_transform_) {
    SDW_ASSIGN_OR_RETURN(data, write_transform_(id, std::move(data)));
  }
  Stored stored;
  stored.crc = Crc32c(data.data(), data.size());
  total_bytes_ += data.size();
  stored.data = std::move(data);
  blocks_[id] = std::move(stored);
  return Status::OK();
}

Result<Bytes> BlockStore::GetRaw(BlockId id) {
  ++reads_;
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    if (fault_handler_) {
      ++faults_;
      auto fetched = fault_handler_(id);
      if (!fetched.ok()) return fetched.status();
      Bytes data = std::move(fetched).ValueOrDie();
      read_bytes_ += data.size();
      // Page the block back in (stored form) for future reads.
      Stored stored;
      stored.crc = Crc32c(data.data(), data.size());
      total_bytes_ += data.size();
      stored.data = data;
      blocks_[id] = std::move(stored);
      return data;
    }
    return Status::Unavailable("block " + std::to_string(id) +
                               " not on local storage");
  }
  Stored& stored = it->second;
  if (!stored.verified) {
    if (Crc32c(stored.data.data(), stored.data.size()) != stored.crc) {
      return Status::Corruption("block " + std::to_string(id) +
                                " failed checksum");
    }
    stored.verified = true;
  }
  read_bytes_ += stored.data.size();
  return stored.data;
}

Result<Bytes> BlockStore::Get(BlockId id) {
  SDW_ASSIGN_OR_RETURN(Bytes data, GetRaw(id));
  if (read_transform_) {
    return read_transform_(id, std::move(data));
  }
  return data;
}

Status BlockStore::Delete(BlockId id) {
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::NotFound("block " + std::to_string(id));
  }
  total_bytes_ -= it->second.data.size();
  blocks_.erase(it);
  return Status::OK();
}

std::vector<BlockId> BlockStore::ListIds() const {
  std::vector<BlockId> ids;
  ids.reserve(blocks_.size());
  for (const auto& [id, _] : blocks_) ids.push_back(id);
  return ids;
}

void BlockStore::CorruptForTest(BlockId id) {
  auto it = blocks_.find(id);
  if (it != blocks_.end() && !it->second.data.empty()) {
    it->second.data[it->second.data.size() / 2] ^= 0x40;
    it->second.verified = false;  // force re-verification on next read
  }
}

}  // namespace sdw::storage
