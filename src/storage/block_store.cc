#include "storage/block_store.h"

#include "common/hash.h"

namespace sdw::storage {

BlockId BlockStore::Allocate() {
  static std::atomic<uint64_t> next_id{1};
  return next_id.fetch_add(1, std::memory_order_relaxed);
}

Status BlockStore::Put(BlockId id, Bytes data) {
  if (write_transform_) {
    SDW_ASSIGN_OR_RETURN(data, write_transform_(id, std::move(data)));
  }
  Stored stored;
  stored.crc = Crc32c(data.data(), data.size());
  const size_t size = data.size();
  stored.data = std::move(data);
  std::lock_guard<std::mutex> lock(mu_);
  if (blocks_.count(id)) {
    return Status::AlreadyExists("block " + std::to_string(id) +
                                 " already stored (blocks are immutable)");
  }
  total_bytes_ += size;
  blocks_[id] = std::move(stored);
  return Status::OK();
}

Result<Bytes> BlockStore::GetRaw(BlockId id) {
  reads_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = blocks_.find(id);
    if (it != blocks_.end()) {
      Stored& stored = it->second;
      if (!stored.verified) {
        if (Crc32c(stored.data.data(), stored.data.size()) != stored.crc) {
          return Status::Corruption("block " + std::to_string(id) +
                                    " failed checksum");
        }
        stored.verified = true;
      }
      read_bytes_.fetch_add(stored.data.size(), std::memory_order_relaxed);
      return stored.data;
    }
  }
  if (!fault_handler_) {
    return Status::Unavailable("block " + std::to_string(id) +
                               " not on local storage");
  }
  // Miss: fault the block in. The handler runs unlocked (it may reach
  // other stores); a racing fault of the same block just re-stores the
  // identical immutable bytes.
  faults_.fetch_add(1, std::memory_order_relaxed);
  auto fetched = fault_handler_(id);
  if (!fetched.ok()) return fetched.status();
  Bytes data = std::move(fetched).ValueOrDie();
  read_bytes_.fetch_add(data.size(), std::memory_order_relaxed);
  // Page the block back in (stored form) for future reads.
  Stored stored;
  stored.crc = Crc32c(data.data(), data.size());
  stored.data = data;
  std::lock_guard<std::mutex> lock(mu_);
  if (!blocks_.count(id)) {
    total_bytes_ += data.size();
    blocks_[id] = std::move(stored);
  }
  return data;
}

Result<Bytes> BlockStore::Get(BlockId id) {
  SDW_ASSIGN_OR_RETURN(Bytes data, GetRaw(id));
  if (read_transform_) {
    return read_transform_(id, std::move(data));
  }
  return data;
}

Status BlockStore::Delete(BlockId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::NotFound("block " + std::to_string(id));
  }
  total_bytes_ -= it->second.data.size();
  blocks_.erase(it);
  return Status::OK();
}

std::vector<BlockId> BlockStore::ListIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<BlockId> ids;
  ids.reserve(blocks_.size());
  for (const auto& [id, _] : blocks_) ids.push_back(id);
  return ids;
}

void BlockStore::CorruptForTest(BlockId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find(id);
  if (it != blocks_.end() && !it->second.data.empty()) {
    it->second.data[it->second.data.size() / 2] ^= 0x40;
    it->second.verified = false;  // force re-verification on next read
  }
}

}  // namespace sdw::storage
