#include "storage/block_store.h"

#include "common/hash.h"
#include "obs/registry.h"

namespace sdw::storage {

namespace {

// Registry handles cached once; Add() is a relaxed fetch_add.
obs::Counter* ReadsMetric() {
  static obs::Counter* c =
      obs::Registry::Global().counter("sdw_storage_block_reads");
  return c;
}
obs::Counter* ReadBytesMetric() {
  static obs::Counter* c =
      obs::Registry::Global().counter("sdw_storage_block_read_bytes");
  return c;
}
obs::Counter* FaultsMetric() {
  static obs::Counter* c =
      obs::Registry::Global().counter("sdw_storage_block_faults");
  return c;
}
obs::Counter* WritesMetric() {
  static obs::Counter* c =
      obs::Registry::Global().counter("sdw_storage_blocks_written");
  return c;
}

}  // namespace

BlockId BlockStore::Allocate() {
  static std::atomic<uint64_t> next_id{1};
  return next_id.fetch_add(1, std::memory_order_relaxed);
}

Status BlockStore::StoreLocked(BlockId id, Bytes data, uint32_t crc,
                               bool verified) {
  if (blocks_.count(id)) {
    return Status::AlreadyExists("block " + std::to_string(id) +
                                 " already stored (blocks are immutable)");
  }
  Stored stored;
  stored.crc = crc;
  stored.verified = verified;
  total_bytes_ += data.size();
  stored.data = std::move(data);
  blocks_[id] = std::move(stored);
  WritesMetric()->Add();
  return Status::OK();
}

Status BlockStore::Put(BlockId id, Bytes data) {
  // Copy the hooks out under the lock; they are invoked unlocked below
  // (the observer reaches *other* stores — holding our lock across
  // that would order locks between stores, an ABBA deadlock).
  TransformFn transform;
  PutObserver observer;
  chaos::FaultPoint* write_fault;
  {
    common::MutexLock lock(mu_);
    transform = write_transform_;
    observer = put_observer_;
    write_fault = write_fault_;
  }
  if (transform) {
    SDW_ASSIGN_OR_RETURN(data, transform(id, std::move(data)));
  }
  if (write_fault != nullptr) {
    SDW_RETURN_IF_ERROR(write_fault->OnCall());
  }
  const uint32_t crc = Crc32c(data.data(), data.size());
  Bytes for_observer;
  if (observer) for_observer = data;
  {
    common::MutexLock lock(mu_);
    SDW_RETURN_IF_ERROR(StoreLocked(id, std::move(data), crc,
                                    /*verified=*/false));
  }
  // The observer (synchronous replication) writes the secondary copy on
  // a *different* store; it must run unlocked or concurrent cross-node
  // puts would order locks between stores.
  if (observer) observer(id, for_observer);
  return Status::OK();
}

Status BlockStore::PutRaw(BlockId id, Bytes stored) {
  chaos::FaultPoint* write_fault;
  {
    common::MutexLock lock(mu_);
    write_fault = write_fault_;
  }
  if (write_fault != nullptr) {
    SDW_RETURN_IF_ERROR(write_fault->OnCall());
  }
  const uint32_t crc = Crc32c(stored.data(), stored.size());
  common::MutexLock lock(mu_);
  return StoreLocked(id, std::move(stored), crc, /*verified=*/false);
}

Result<Bytes> BlockStore::GetRaw(BlockId id) {
  reads_.fetch_add(1, std::memory_order_relaxed);
  ReadsMetric()->Add();
  // Chaos first: a firing read point turns this call into a local media
  // failure even if the block is resident, so masking is exercised end
  // to end. The point is copied out and called unlocked — armed
  // triggers reach back into the system.
  chaos::FaultPoint* read_fault;
  {
    common::MutexLock lock(mu_);
    read_fault = read_fault_;
  }
  Status miss = Status::OK();
  if (read_fault != nullptr) miss = read_fault->OnCall();

  std::shared_ptr<Inflight> flight;
  bool leader = false;
  FaultHandler handler;
  {
    common::MutexLock lock(mu_);
    if (miss.ok()) {
      auto it = blocks_.find(id);
      if (it != blocks_.end()) {
        Stored& stored = it->second;
        if (stored.verified ||
            Crc32c(stored.data.data(), stored.data.size()) == stored.crc) {
          stored.verified = true;
          read_bytes_.fetch_add(stored.data.size(),
                                std::memory_order_relaxed);
          ReadBytesMetric()->Add(stored.data.size());
          return stored.data;
        }
        // A checksum mismatch is a media failure: drop the bad copy and
        // fall through to the fault path so a replica can mask it.
        miss = Status::Corruption("block " + std::to_string(id) +
                                  " failed checksum");
        total_bytes_ -= stored.data.size();
        blocks_.erase(it);
      } else {
        miss = Status::Unavailable("block " + std::to_string(id) +
                                   " not on local storage");
      }
    }
    if (!fault_handler_) return miss;
    handler = fault_handler_;
    // Single-flight: racing faults of the same block share one fetch.
    auto fit = inflight_.find(id);
    if (fit != inflight_.end()) {
      flight = fit->second;
    } else {
      flight = std::make_shared<Inflight>();
      inflight_[id] = flight;
      leader = true;
    }
    if (!leader) {
      flight->cv.Wait(mu_, [&] { return flight->done; });
      return flight->result;
    }
  }
  // Leader: fault the block in. The handler runs unlocked — it may
  // reach replica stores or S3, which route through other locks.
  faults_.fetch_add(1, std::memory_order_relaxed);
  FaultsMetric()->Add();
  Result<Bytes> fetched = handler(id);
  {
    common::MutexLock lock(mu_);
    if (fetched.ok()) {
      const Bytes& data = *fetched;
      read_bytes_.fetch_add(data.size(), std::memory_order_relaxed);
      ReadBytesMetric()->Add(data.size());
      // Page the block back in (stored form) for future reads.
      if (!blocks_.count(id)) {
        const uint32_t crc = Crc32c(data.data(), data.size());
        (void)StoreLocked(id, data, crc, /*verified=*/true);
      }
    }
    flight->result = fetched;
    flight->done = true;
    inflight_.erase(id);
  }
  flight->cv.NotifyAll();
  return fetched;
}

Result<Bytes> BlockStore::GetStored(BlockId id) {
  common::MutexLock lock(mu_);
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::Unavailable("block " + std::to_string(id) +
                               " not resident");
  }
  Stored& stored = it->second;
  if (!stored.verified) {
    if (Crc32c(stored.data.data(), stored.data.size()) != stored.crc) {
      return Status::Corruption("block " + std::to_string(id) +
                                " failed checksum");
    }
    stored.verified = true;
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  read_bytes_.fetch_add(stored.data.size(), std::memory_order_relaxed);
  return stored.data;
}

Result<Bytes> BlockStore::Get(BlockId id) {
  SDW_ASSIGN_OR_RETURN(Bytes data, GetRaw(id));
  TransformFn transform;
  {
    common::MutexLock lock(mu_);
    transform = read_transform_;
  }
  if (transform) {
    return transform(id, std::move(data));
  }
  return data;
}

Status BlockStore::Delete(BlockId id) {
  common::MutexLock lock(mu_);
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::NotFound("block " + std::to_string(id));
  }
  total_bytes_ -= it->second.data.size();
  blocks_.erase(it);
  return Status::OK();
}

std::vector<BlockId> BlockStore::ListIds() const {
  common::MutexLock lock(mu_);
  std::vector<BlockId> ids;
  ids.reserve(blocks_.size());
  for (const auto& [id, _] : blocks_) ids.push_back(id);
  return ids;
}

void BlockStore::DropForTest(BlockId id) {
  common::MutexLock lock(mu_);
  auto it = blocks_.find(id);
  if (it != blocks_.end()) {
    total_bytes_ -= it->second.data.size();
    blocks_.erase(it);
  }
}

void BlockStore::CorruptForTest(BlockId id) {
  common::MutexLock lock(mu_);
  auto it = blocks_.find(id);
  if (it != blocks_.end() && !it->second.data.empty()) {
    it->second.data[it->second.data.size() / 2] ^= 0x40;
    it->second.verified = false;  // force re-verification on next read
  }
}

}  // namespace sdw::storage
