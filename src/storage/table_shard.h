#ifndef SDW_STORAGE_TABLE_SHARD_H_
#define SDW_STORAGE_TABLE_SHARD_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "catalog/schema.h"
#include "catalog/types.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "storage/block_store.h"
#include "storage/zone_map.h"

namespace sdw::storage {

/// Knobs for the block writer.
struct StorageOptions {
  /// Maximum estimated raw bytes per block (paper: fixed-size 1 MiB
  /// blocks; kept configurable so benches can produce many blocks from
  /// laptop-scale data).
  size_t block_bytes = 1024 * 1024;
  /// Hard cap on rows per block regardless of width.
  size_t max_rows_per_block = 65536;
};

/// A contiguous half-open range of logical row offsets within a shard.
struct RowRange {
  uint64_t begin = 0;
  uint64_t end = 0;

  uint64_t size() const { return end - begin; }
  bool operator==(const RowRange& other) const {
    return begin == other.begin && end == other.end;
  }
};

/// A single-column range predicate used for block skipping: NULL bounds
/// are unbounded; both bounds inclusive.
struct RangePredicate {
  int column = 0;
  Datum lo;
  Datum hi;
};

/// Metadata for one block in a column chain. The linkage between the
/// columns of a row is purely the logical row offset (paper §2.1), so
/// each column chains its blocks independently.
struct BlockMeta {
  BlockId id = 0;
  uint64_t first_row = 0;
  uint64_t row_count = 0;
  ColumnEncoding encoding = ColumnEncoding::kRaw;
  size_t encoded_bytes = 0;
  ZoneMap zone;
};

/// One slice's portion of one table: a chain of encoded blocks per
/// column plus in-memory zone maps. Appends encode and write blocks;
/// scans prune with zone maps and decode only surviving blocks.
class TableShard {
 public:
  TableShard(TableSchema schema, StorageOptions options, BlockStore* store);

  const TableSchema& schema() const { return schema_; }
  uint64_t row_count() const { return row_count_; }

  /// Changes the encoding used for future appends to a column (the
  /// COPY-time compression analyzer calls this before the first load).
  void SetColumnEncoding(size_t column, ColumnEncoding encoding) {
    schema_.SetColumnEncoding(column, encoding);
  }

  /// Appends one run of rows (column vectors of equal length, one per
  /// schema column). The caller has already sorted the run and resolved
  /// kAuto encodings; kAuto falls back to RAW here.
  Status Append(const std::vector<ColumnVector>& columns);

  /// Row ranges that may satisfy all predicates, ascending and
  /// non-overlapping. No predicates -> one full-range candidate.
  std::vector<RowRange> CandidateRanges(
      const std::vector<RangePredicate>& predicates) const;

  /// Materializes the requested columns for a row range. Decodes every
  /// block overlapping the range (per-column chains are block-aligned
  /// independently).
  Result<std::vector<ColumnVector>> ReadRange(const std::vector<int>& columns,
                                              const RowRange& range);

  /// Materializes whole columns.
  Result<std::vector<ColumnVector>> ReadAll(const std::vector<int>& columns);

  /// Chain metadata (backup/replication/benches walk this).
  const std::vector<BlockMeta>& chain(size_t column) const {
    return chains_[column];
  }
  size_t num_columns() const { return chains_.size(); }

  /// Every block id owned by this shard.
  std::vector<BlockId> AllBlockIds() const;

  /// Rebuilds this (empty) shard from backed-up chain metadata. Blocks
  /// need not be resident in the store yet — reads will page-fault them
  /// in via the store's fault handler (streaming restore, §2.3).
  Status LoadChains(std::vector<std::vector<BlockMeta>> chains);

  /// Total encoded bytes across all chains.
  uint64_t encoded_bytes() const { return encoded_bytes_; }

  /// Blocks decoded by ReadRange since the last ResetCounters (the
  /// block-skipping bench's measured quantity). Cached decodes do not
  /// count; ResetCounters also drops the cache so measurements start
  /// cold.
  uint64_t blocks_decoded() const {
    return blocks_decoded_.load(std::memory_order_relaxed);
  }
  void ResetCounters() SDW_EXCLUDES(cache_mu_) {
    common::MutexLock lock(cache_mu_);
    blocks_decoded_.store(0, std::memory_order_relaxed);
    decode_cache_.clear();
    cache_order_.clear();
  }

 private:
  /// Appends one column's run to its chain, splitting into blocks.
  Status AppendColumn(size_t column, const ColumnVector& values,
                      uint64_t first_row);

  /// Reads + decodes one block, serving repeat reads from a small FIFO
  /// cache (scans pull overlapping blocks once, not once per batch).
  Result<std::shared_ptr<const ColumnVector>> DecodeBlock(
      const BlockMeta& meta, TypeId type) SDW_EXCLUDES(cache_mu_);

  /// Estimated raw width of one value of the column, for block sizing.
  static size_t EstimateWidth(const ColumnVector& values);

  TableSchema schema_;
  StorageOptions options_;
  BlockStore* store_;
  std::vector<std::vector<BlockMeta>> chains_;
  uint64_t row_count_ = 0;
  uint64_t encoded_bytes_ = 0;
  /// The decode cache and its FIFO order are the only shard state
  /// mutated by reads, so they carry the shard's read-path lock. Writes
  /// (Append/LoadChains) are single-threaded by the cluster's insert
  /// path and stay unlocked. Holding the lock across the whole decode
  /// (including the store Get) keeps blocks_decoded_ deterministic
  /// under concurrency (no double-decode of a racing miss); slices do
  /// not contend because each slice owns its own shard. Lock order is
  /// strictly cache_mu_ -> store mu_ (BlockStore never calls back into
  /// shards), so the nesting cannot invert.
  std::atomic<uint64_t> blocks_decoded_{0};
  mutable common::Mutex cache_mu_;
  std::map<BlockId, std::shared_ptr<const ColumnVector>> decode_cache_
      SDW_GUARDED_BY(cache_mu_);
  std::vector<BlockId> cache_order_ SDW_GUARDED_BY(cache_mu_);
};

}  // namespace sdw::storage

#endif  // SDW_STORAGE_TABLE_SHARD_H_
