#ifndef SDW_STORAGE_TABLE_SHARD_H_
#define SDW_STORAGE_TABLE_SHARD_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "catalog/schema.h"
#include "catalog/types.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "storage/block_store.h"
#include "storage/zone_map.h"

namespace sdw::storage {

/// Knobs for the block writer.
struct StorageOptions {
  /// Maximum estimated raw bytes per block (paper: fixed-size 1 MiB
  /// blocks; kept configurable so benches can produce many blocks from
  /// laptop-scale data).
  size_t block_bytes = 1024 * 1024;
  /// Hard cap on rows per block regardless of width.
  size_t max_rows_per_block = 65536;
};

/// A contiguous half-open range of logical row offsets within a shard.
struct RowRange {
  uint64_t begin = 0;
  uint64_t end = 0;

  uint64_t size() const { return end - begin; }
  bool operator==(const RowRange& other) const {
    return begin == other.begin && end == other.end;
  }
};

/// A single-column range predicate used for block skipping: NULL bounds
/// are unbounded; both bounds inclusive.
struct RangePredicate {
  int column = 0;
  Datum lo;
  Datum hi;
};

/// Metadata for one block in a column chain. The linkage between the
/// columns of a row is purely the logical row offset (paper §2.1), so
/// each column chains its blocks independently.
struct BlockMeta {
  BlockId id = 0;
  uint64_t first_row = 0;
  uint64_t row_count = 0;
  ColumnEncoding encoding = ColumnEncoding::kRaw;
  size_t encoded_bytes = 0;
  ZoneMap zone;
};

/// One immutable version of a shard's chains. Once published via
/// TableShard::Install the struct is never mutated again, so any number
/// of readers can scan it without locks while writers build successor
/// versions off to the side.
struct ShardVersion {
  uint64_t version = 0;
  std::vector<std::vector<BlockMeta>> chains;
  uint64_t row_count = 0;
  uint64_t encoded_bytes = 0;
};

/// A pinned shard version. Holding the pointer keeps every block the
/// version references alive: garbage collection only reclaims versions
/// whose snapshot is no longer referenced anywhere.
using ShardSnapshot = std::shared_ptr<const ShardVersion>;

class TableShard;

/// A pinned (shard, version) pair — what a snapshot reader actually
/// scans. The shard pointer keeps the decode cache + store wiring
/// alive across DROP TABLE; the version pins the chains.
struct ShardRef {
  std::shared_ptr<TableShard> shard;
  ShardSnapshot version;
};

/// One slice's portion of one table: per-column chains of encoded,
/// immutable blocks plus in-memory zone maps.
///
/// MVCC: the chains live in an immutable ShardVersion published under
/// head_mu_. Readers pin a version with Snapshot() and scan it without
/// further coordination. Writers stage new blocks with PrepareAppend /
/// PrepareRewrite (store writes happen here, but no reader can see the
/// blocks yet) and make them visible with Install, which atomically
/// swaps the head and retires the old version onto a FIFO garbage
/// queue. CollectGarbage deletes the blocks of retired versions once
/// their snapshots are unreferenced.
class TableShard {
 public:
  TableShard(TableSchema schema, StorageOptions options, BlockStore* store);

  const TableSchema& schema() const { return schema_; }

  /// Pins the current head version. [[nodiscard]]: a dropped pin is a
  /// no-op that reads like a consistency guarantee.
  [[nodiscard]] ShardSnapshot Snapshot() const SDW_EXCLUDES(head_mu_);

  /// Rows / bytes / chain metadata of the current head (backup,
  /// replication, system tables and benches walk these; scans should
  /// pin a Snapshot() instead so they see one consistent version).
  uint64_t row_count() const { return Snapshot()->row_count; }
  uint64_t encoded_bytes() const { return Snapshot()->encoded_bytes; }
  std::vector<BlockMeta> chain(size_t column) const {
    return Snapshot()->chains[column];
  }
  size_t num_columns() const { return schema_.num_columns(); }

  /// Changes the encoding used for future appends to a column (the
  /// COPY-time compression analyzer calls this before the first load).
  void SetColumnEncoding(size_t column, ColumnEncoding encoding) {
    schema_.SetColumnEncoding(column, encoding);
  }

  /// Appends one run of rows (column vectors of equal length, one per
  /// schema column) as a single new version: PrepareAppend off the
  /// current head followed immediately by Install.
  Status Append(const std::vector<ColumnVector>& columns);

  /// Builds a successor of `base` with `columns` appended, writing the
  /// new blocks to the store. The result is invisible to readers until
  /// Install; abandon it with DiscardPrepared. `base` may itself be a
  /// prepared-but-uninstalled version (multi-run statements chain their
  /// appends and install once).
  Result<ShardSnapshot> PrepareAppend(const ShardSnapshot& base,
                                      const std::vector<ColumnVector>& columns);

  /// Builds a full replacement version (VACUUM rewrite): fresh chains
  /// holding exactly `columns` starting at row 0, as a successor of
  /// `base`. Invisible until Install.
  Result<ShardSnapshot> PrepareRewrite(const ShardSnapshot& base,
                                       const std::vector<ColumnVector>& columns);

  /// Publishes `next`: atomically swaps the head from `expected` to
  /// `next` and retires `expected` (its blocks absent from `next`
  /// become the retired version's delete set). Fails with
  /// FailedPrecondition if the head moved since `expected` was pinned —
  /// callers serialize writers, so that indicates a bug.
  Status Install(const ShardSnapshot& expected, ShardSnapshot next)
      SDW_EXCLUDES(head_mu_);

  /// Deletes the blocks a prepared-but-uninstalled version added over
  /// its base (statement abort). Returns the ids removed.
  std::vector<BlockId> DiscardPrepared(const ShardVersion& base,
                                       const ShardVersion& next);

  /// Rebuilds this (empty) shard from backed-up chain metadata. Blocks
  /// need not be resident in the store yet — reads will page-fault them
  /// in via the store's fault handler (streaming restore, §2.3).
  Status LoadChains(std::vector<std::vector<BlockMeta>> chains);

  /// Installs `chains` as a new version of a live shard (transaction
  /// rollback restores the pre-transaction manifest this way). Blocks
  /// only reachable from the current head are retired for GC; readers
  /// pinned on older versions are unaffected.
  Status InstallChains(std::vector<std::vector<BlockMeta>> chains)
      SDW_EXCLUDES(head_mu_);

  /// Reclaims retired versions no longer pinned by any snapshot,
  /// deleting their delete-set blocks from the store. The retired queue
  /// is FIFO and an entry is only reclaimed while it is at the front:
  /// delete sets are cumulative along the version chain (a block
  /// retired at version v may still be readable from a pinned version
  /// older than v), so a pinned old version blocks every newer retiree.
  /// Appends reclaimed block ids to `reclaimed` (may be null) and
  /// returns the number of versions freed.
  uint64_t CollectGarbage(std::vector<BlockId>* reclaimed)
      SDW_EXCLUDES(head_mu_);

  /// Retired versions still waiting for GC (pinned or queued).
  size_t retired_versions() const SDW_EXCLUDES(head_mu_);

  /// Snapshot-parameterized reads. Row ranges that may satisfy all
  /// predicates, ascending and non-overlapping; no predicates -> one
  /// full-range candidate.
  std::vector<RowRange> CandidateRanges(
      const ShardVersion& version,
      const std::vector<RangePredicate>& predicates) const;

  /// Materializes the requested columns for a row range of `version`.
  /// Decodes every block overlapping the range (per-column chains are
  /// block-aligned independently).
  Result<std::vector<ColumnVector>> ReadRange(const ShardVersion& version,
                                              const std::vector<int>& columns,
                                              const RowRange& range);

  /// Materializes whole columns of `version`.
  Result<std::vector<ColumnVector>> ReadAll(const ShardVersion& version,
                                            const std::vector<int>& columns);

  /// Head-version conveniences for single-threaded callers (tests,
  /// tools). Each call pins the head anew, so back-to-back calls may
  /// see different versions if a writer installs in between.
  std::vector<RowRange> CandidateRanges(
      const std::vector<RangePredicate>& predicates) const {
    return CandidateRanges(*Snapshot(), predicates);
  }
  Result<std::vector<ColumnVector>> ReadRange(const std::vector<int>& columns,
                                              const RowRange& range) {
    return ReadRange(*Snapshot(), columns, range);
  }
  Result<std::vector<ColumnVector>> ReadAll(const std::vector<int>& columns) {
    return ReadAll(*Snapshot(), columns);
  }

  /// Every block id reachable from the current head.
  std::vector<BlockId> AllBlockIds() const;

  /// Blocks decoded by ReadRange since the last ResetCounters (the
  /// block-skipping bench's measured quantity). Cached decodes do not
  /// count; ResetCounters also drops the cache so measurements start
  /// cold.
  uint64_t blocks_decoded() const {
    return blocks_decoded_.load(std::memory_order_relaxed);
  }
  void ResetCounters() SDW_EXCLUDES(cache_mu_) {
    common::MutexLock lock(cache_mu_);
    blocks_decoded_.store(0, std::memory_order_relaxed);
    decode_cache_.clear();
    cache_order_.clear();
  }

 private:
  /// Appends one column run to `chain`, splitting into blocks and
  /// writing them to the store. Adds the encoded size to `bytes`.
  Status AppendColumnTo(std::vector<BlockMeta>* chain, size_t column,
                        const ColumnVector& values, uint64_t first_row,
                        uint64_t* bytes);

  /// Validates chain invariants (no row gaps, columns agree on row
  /// count) and builds a version struct from them. `version` is the
  /// published version number to stamp.
  Result<std::shared_ptr<ShardVersion>> BuildVersion(
      std::vector<std::vector<BlockMeta>> chains, uint64_t version) const;

  /// Reads + decodes one block, serving repeat reads from a small FIFO
  /// cache (scans pull overlapping blocks once, not once per batch).
  Result<std::shared_ptr<const ColumnVector>> DecodeBlock(
      const BlockMeta& meta, TypeId type) SDW_EXCLUDES(cache_mu_);

  /// Estimated raw width of one value of the column, for block sizing.
  static size_t EstimateWidth(const ColumnVector& values);

  TableSchema schema_;
  StorageOptions options_;
  BlockStore* store_;

  /// A version retired by Install, waiting for its pins to drain.
  struct Retired {
    ShardSnapshot version;
    /// Blocks reachable from `version` but not from its successor —
    /// deletable once no snapshot at or before `version` is pinned.
    std::vector<BlockId> garbage;
  };

  /// head_mu_ orders only the head swap and the retired queue; scans
  /// never take it beyond the initial Snapshot() pin. Lock order is
  /// head_mu_ -> store mu_ (GC deletes under head_mu_; the store never
  /// calls back into shards).
  mutable common::Mutex head_mu_{common::LockRank::kShardHead};
  ShardSnapshot head_ SDW_GUARDED_BY(head_mu_);
  std::deque<Retired> retired_ SDW_GUARDED_BY(head_mu_);

  /// The decode cache and its FIFO order are the only shard state
  /// mutated by reads, so they carry the shard's read-path lock.
  /// Holding the lock across the whole decode (including the store
  /// Get) keeps blocks_decoded_ deterministic under concurrency (no
  /// double-decode of a racing miss); slices do not contend because
  /// each slice owns its own shard. Lock order is strictly cache_mu_ ->
  /// store mu_ (BlockStore never calls back into shards), so the
  /// nesting cannot invert.
  std::atomic<uint64_t> blocks_decoded_{0};
  mutable common::Mutex cache_mu_{common::LockRank::kShardDecodeCache};
  std::map<BlockId, std::shared_ptr<const ColumnVector>> decode_cache_
      SDW_GUARDED_BY(cache_mu_);
  std::vector<BlockId> cache_order_ SDW_GUARDED_BY(cache_mu_);
};

}  // namespace sdw::storage

#endif  // SDW_STORAGE_TABLE_SHARD_H_
