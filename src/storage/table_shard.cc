#include "storage/table_shard.h"

#include <algorithm>
#include <set>
#include <utility>

#include "compress/codec.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace sdw::storage {

namespace {

/// Blocks reachable from `from` but not from `to` — what becomes
/// deletable once no pinned snapshot can still reach `from`.
std::vector<BlockId> DiffBlocks(const ShardVersion& from,
                                const ShardVersion& to) {
  std::set<BlockId> kept;
  for (const auto& chain : to.chains) {
    for (const BlockMeta& block : chain) kept.insert(block.id);
  }
  std::vector<BlockId> garbage;
  for (const auto& chain : from.chains) {
    for (const BlockMeta& block : chain) {
      if (kept.count(block.id) == 0) garbage.push_back(block.id);
    }
  }
  return garbage;
}

}  // namespace

TableShard::TableShard(TableSchema schema, StorageOptions options,
                       BlockStore* store)
    : schema_(std::move(schema)), options_(options), store_(store) {
  auto head = std::make_shared<ShardVersion>();
  head->chains.resize(schema_.num_columns());
  common::MutexLock lock(head_mu_);
  head_ = std::move(head);
}

ShardSnapshot TableShard::Snapshot() const {
  common::MutexLock lock(head_mu_);
  return head_;
}

size_t TableShard::EstimateWidth(const ColumnVector& values) {
  if (values.type() == TypeId::kString) {
    if (values.size() == 0) return 16;
    size_t total = 0;
    const size_t sample = std::min<size_t>(values.size(), 256);
    for (size_t i = 0; i < sample; ++i) total += values.StringAt(i).size() + 2;
    return std::max<size_t>(1, total / sample);
  }
  return 8;
}

Status TableShard::Append(const std::vector<ColumnVector>& columns) {
  ShardSnapshot base = Snapshot();
  SDW_ASSIGN_OR_RETURN(ShardSnapshot next, PrepareAppend(base, columns));
  if (next == base) return Status::OK();  // empty run, nothing staged
  return Install(base, std::move(next));
}

Result<ShardSnapshot> TableShard::PrepareAppend(
    const ShardSnapshot& base, const std::vector<ColumnVector>& columns) {
  if (base == nullptr) {
    return Status::InvalidArgument("PrepareAppend without a base version");
  }
  if (columns.size() != schema_.num_columns()) {
    return Status::InvalidArgument("append column count != schema");
  }
  const size_t n = columns.empty() ? 0 : columns[0].size();
  for (size_t c = 0; c < columns.size(); ++c) {
    if (columns[c].size() != n) {
      return Status::InvalidArgument("ragged append run");
    }
    if (columns[c].type() != schema_.column(c).type) {
      return Status::InvalidArgument("append type mismatch on column " +
                                     schema_.column(c).name);
    }
  }
  if (n == 0) return base;  // no new version needed

  auto next = std::make_shared<ShardVersion>();
  next->version = base->version + 1;
  next->chains = base->chains;
  next->row_count = base->row_count;
  next->encoded_bytes = base->encoded_bytes;
  const uint64_t first_row = base->row_count;
  for (size_t c = 0; c < columns.size(); ++c) {
    SDW_RETURN_IF_ERROR(AppendColumnTo(&next->chains[c], c, columns[c],
                                       first_row, &next->encoded_bytes));
  }
  next->row_count += n;
  return ShardSnapshot(std::move(next));
}

Result<ShardSnapshot> TableShard::PrepareRewrite(
    const ShardSnapshot& base, const std::vector<ColumnVector>& columns) {
  if (base == nullptr) {
    return Status::InvalidArgument("PrepareRewrite without a base version");
  }
  if (columns.size() != schema_.num_columns()) {
    return Status::InvalidArgument("rewrite column count != schema");
  }
  const size_t n = columns.empty() ? 0 : columns[0].size();
  auto next = std::make_shared<ShardVersion>();
  next->version = base->version + 1;
  next->chains.resize(schema_.num_columns());
  if (n > 0) {
    for (size_t c = 0; c < columns.size(); ++c) {
      if (columns[c].size() != n) {
        return Status::InvalidArgument("ragged rewrite run");
      }
      SDW_RETURN_IF_ERROR(AppendColumnTo(&next->chains[c], c, columns[c],
                                         /*first_row=*/0,
                                         &next->encoded_bytes));
    }
    next->row_count = n;
  }
  return ShardSnapshot(std::move(next));
}

Status TableShard::Install(const ShardSnapshot& expected, ShardSnapshot next) {
  if (next == nullptr) {
    return Status::InvalidArgument("Install of a null version");
  }
  static obs::Counter* installed =
      obs::Registry::Global().counter("sdw_mvcc_versions_installed");
  common::MutexLock lock(head_mu_);
  if (head_ != expected) {
    return Status::FailedPrecondition(
        "shard head moved under a staged write (writers must serialize)");
  }
  // Every retired head enters the FIFO queue, even with an empty delete
  // set: delete sets are cumulative along the chain, so a pin on this
  // version must also block reclamation of every later retiree.
  retired_.push_back({head_, DiffBlocks(*head_, *next)});
  head_ = std::move(next);
  installed->Add();
  return Status::OK();
}

std::vector<BlockId> TableShard::DiscardPrepared(const ShardVersion& base,
                                                 const ShardVersion& next) {
  std::vector<BlockId> removed = DiffBlocks(next, base);
  for (BlockId id : removed) (void)store_->Delete(id);
  return removed;
}

uint64_t TableShard::CollectGarbage(std::vector<BlockId>* reclaimed) {
  static obs::Counter* versions_metric =
      obs::Registry::Global().counter("sdw_mvcc_versions_reclaimed");
  static obs::Counter* blocks_metric =
      obs::Registry::Global().counter("sdw_mvcc_blocks_reclaimed");
  common::MutexLock lock(head_mu_);
  uint64_t versions = 0;
  // use_count() == 1 means only the queue itself holds the snapshot:
  // new pins are only ever created by copying an existing reference, so
  // the count cannot concurrently rise back above one.
  while (!retired_.empty() && retired_.front().version.use_count() == 1) {
    for (BlockId id : retired_.front().garbage) {
      (void)store_->Delete(id);
      if (reclaimed != nullptr) reclaimed->push_back(id);
      blocks_metric->Add();
    }
    retired_.pop_front();
    ++versions;
    versions_metric->Add();
  }
  return versions;
}

size_t TableShard::retired_versions() const {
  common::MutexLock lock(head_mu_);
  return retired_.size();
}

Status TableShard::AppendColumnTo(std::vector<BlockMeta>* chain, size_t column,
                                  const ColumnVector& values,
                                  uint64_t first_row, uint64_t* bytes) {
  ColumnEncoding encoding = schema_.column(column).encoding;
  if (encoding == ColumnEncoding::kAuto) encoding = ColumnEncoding::kRaw;

  const size_t width = EstimateWidth(values);
  const size_t rows_per_block = std::max<size_t>(
      1, std::min(options_.max_rows_per_block, options_.block_bytes / width));

  size_t offset = 0;
  while (offset < values.size()) {
    const size_t count = std::min(rows_per_block, values.size() - offset);
    ColumnVector chunk(values.type());
    chunk.Reserve(count);
    SDW_RETURN_IF_ERROR(chunk.AppendRange(values, offset, offset + count));

    Bytes encoded;
    SDW_RETURN_IF_ERROR(compress::EncodeColumn(encoding, chunk, &encoded));

    BlockMeta meta;
    meta.id = store_->Allocate();
    meta.first_row = first_row + offset;
    meta.row_count = count;
    meta.encoding = encoding;
    meta.encoded_bytes = encoded.size();
    meta.zone.UpdateAll(chunk);
    SDW_RETURN_IF_ERROR(store_->Put(meta.id, std::move(encoded)));

    *bytes += meta.encoded_bytes;
    chain->push_back(std::move(meta));
    offset += count;
  }
  return Status::OK();
}

std::vector<RowRange> TableShard::CandidateRanges(
    const ShardVersion& version,
    const std::vector<RangePredicate>& predicates) const {
  std::vector<RowRange> candidates = {{0, version.row_count}};
  if (version.row_count == 0) return {};

  for (const RangePredicate& pred : predicates) {
    if (pred.column < 0 ||
        static_cast<size_t>(pred.column) >= version.chains.size()) {
      continue;
    }
    // Row ranges of blocks in this column that may match.
    std::vector<RowRange> passing;
    for (const BlockMeta& block : version.chains[pred.column]) {
      if (!block.zone.MayOverlap(pred.lo, pred.hi)) continue;
      if (!passing.empty() &&
          passing.back().end == block.first_row) {
        passing.back().end = block.first_row + block.row_count;
      } else {
        passing.push_back(
            {block.first_row, block.first_row + block.row_count});
      }
    }
    // Intersect the candidate list with the passing list (both sorted).
    std::vector<RowRange> merged;
    size_t i = 0;
    size_t j = 0;
    while (i < candidates.size() && j < passing.size()) {
      uint64_t lo = std::max(candidates[i].begin, passing[j].begin);
      uint64_t hi = std::min(candidates[i].end, passing[j].end);
      if (lo < hi) merged.push_back({lo, hi});
      if (candidates[i].end < passing[j].end) {
        ++i;
      } else {
        ++j;
      }
    }
    candidates = std::move(merged);
    if (candidates.empty()) break;
  }
  return candidates;
}

Result<std::vector<ColumnVector>> TableShard::ReadRange(
    const ShardVersion& version, const std::vector<int>& columns,
    const RowRange& range) {
  if (range.end > version.row_count || range.begin > range.end) {
    return Status::OutOfRange("ReadRange outside shard");
  }
  std::vector<ColumnVector> out;
  out.reserve(columns.size());
  for (int c : columns) {
    if (c < 0 || static_cast<size_t>(c) >= version.chains.size()) {
      return Status::InvalidArgument("bad column index");
    }
    ColumnVector result(schema_.column(c).type);
    result.Reserve(range.size());
    for (const BlockMeta& block : version.chains[c]) {
      const uint64_t block_end = block.first_row + block.row_count;
      if (block_end <= range.begin || block.first_row >= range.end) continue;
      SDW_ASSIGN_OR_RETURN(std::shared_ptr<const ColumnVector> decoded,
                           DecodeBlock(block, result.type()));
      const uint64_t lo = std::max(range.begin, block.first_row);
      const uint64_t hi = std::min(range.end, block_end);
      SDW_RETURN_IF_ERROR(result.AppendRange(
          *decoded, lo - block.first_row, hi - block.first_row));
    }
    if (result.size() != range.size()) {
      return Status::Corruption("chain did not cover requested range");
    }
    out.push_back(std::move(result));
  }
  return out;
}

Result<std::vector<ColumnVector>> TableShard::ReadAll(
    const ShardVersion& version, const std::vector<int>& columns) {
  return ReadRange(version, columns, {0, version.row_count});
}

Result<std::shared_ptr<const ColumnVector>> TableShard::DecodeBlock(
    const BlockMeta& meta, TypeId type) {
  common::MutexLock lock(cache_mu_);
  auto it = decode_cache_.find(meta.id);
  if (it != decode_cache_.end()) return it->second;
  SDW_ASSIGN_OR_RETURN(Bytes data, store_->Get(meta.id));
  SDW_ASSIGN_OR_RETURN(ColumnVector decoded,
                       compress::DecodeColumn(meta.encoding, type, data));
  blocks_decoded_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter* decoded_metric =
      obs::Registry::Global().counter("sdw_storage_blocks_decoded");
  decoded_metric->Add();
  // Attribute the decode to the executing slice's trace span, if any.
  if (obs::SpanCounters* span = obs::CurrentSpanCounters()) {
    ++span->blocks_decoded;
  }
  auto shared = std::make_shared<const ColumnVector>(std::move(decoded));
  // FIFO eviction keeps memory bounded even for huge scans.
  constexpr size_t kCacheCapacity = 64;
  if (cache_order_.size() >= kCacheCapacity) {
    decode_cache_.erase(cache_order_.front());
    cache_order_.erase(cache_order_.begin());
  }
  decode_cache_[meta.id] = shared;
  cache_order_.push_back(meta.id);
  return shared;
}

Result<std::shared_ptr<ShardVersion>> TableShard::BuildVersion(
    std::vector<std::vector<BlockMeta>> chains, uint64_t version) const {
  if (chains.size() != schema_.num_columns()) {
    return Status::InvalidArgument("chain count != schema column count");
  }
  auto built = std::make_shared<ShardVersion>();
  built->version = version;
  uint64_t rows = 0;
  for (size_t c = 0; c < chains.size(); ++c) {
    uint64_t expected_row = 0;
    for (const BlockMeta& meta : chains[c]) {
      if (meta.first_row != expected_row) {
        return Status::Corruption("chain has a row-range gap");
      }
      expected_row += meta.row_count;
      built->encoded_bytes += meta.encoded_bytes;
    }
    if (c == 0) {
      rows = expected_row;
    } else if (expected_row != rows) {
      return Status::Corruption("chains disagree on row count");
    }
  }
  built->chains = std::move(chains);
  built->row_count = rows;
  return built;
}

Status TableShard::LoadChains(std::vector<std::vector<BlockMeta>> chains) {
  ShardSnapshot base = Snapshot();
  if (base->row_count != 0 || base->version != 0) {
    return Status::FailedPrecondition("LoadChains on a non-empty shard");
  }
  SDW_ASSIGN_OR_RETURN(std::shared_ptr<ShardVersion> next,
                       BuildVersion(std::move(chains), base->version + 1));
  return Install(base, std::move(next));
}

Status TableShard::InstallChains(std::vector<std::vector<BlockMeta>> chains) {
  ShardSnapshot base = Snapshot();
  SDW_ASSIGN_OR_RETURN(std::shared_ptr<ShardVersion> next,
                       BuildVersion(std::move(chains), base->version + 1));
  return Install(base, std::move(next));
}

std::vector<BlockId> TableShard::AllBlockIds() const {
  ShardSnapshot head = Snapshot();
  std::vector<BlockId> ids;
  for (const auto& chain : head->chains) {
    for (const auto& block : chain) ids.push_back(block.id);
  }
  return ids;
}

}  // namespace sdw::storage
