#ifndef SDW_STORAGE_BLOCK_STORE_H_
#define SDW_STORAGE_BLOCK_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace sdw::storage {

/// Identifies one immutable data block within a BlockStore.
using BlockId = uint64_t;

/// The local block device of one node: immutable, checksummed,
/// fixed-maximum-size blocks (paper §2.1: "each column ... is encoded in
/// a chain of one or more fixed size data blocks"). Blocks are
/// write-once; updates happen by appending new blocks and dropping old
/// ones, which is what makes incremental S3 backup and replication
/// block-level operations.
class BlockStore {
 public:
  /// Called on a read miss (media failure / not yet restored). If it
  /// returns bytes, the block is "page-faulted" back into the store —
  /// the streaming-restore path of §2.3.
  using FaultHandler = std::function<Result<Bytes>(BlockId)>;

  /// Optional at-rest transforms (the §3.2 encryption checkbox): the
  /// write transform runs before bytes hit the device, the read
  /// transform after they are fetched. Checksums, replication, backup
  /// and page-faulting all operate on the transformed (stored) bytes,
  /// so backups are automatically encrypted too.
  using TransformFn = std::function<Result<Bytes>(BlockId, Bytes)>;

  BlockStore() = default;
  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;

  /// Reserves a fresh block id. Ids are unique across every BlockStore
  /// in the process so replication and S3 backup can key replicas of
  /// the same block identically on different devices.
  static BlockId Allocate();

  /// Stores a block. Fails if the id is already present (blocks are
  /// immutable) .
  Status Put(BlockId id, Bytes data);

  /// Reads and checksum-verifies a block. On a miss, consults the fault
  /// handler; on checksum mismatch returns Corruption.
  Result<Bytes> Get(BlockId id);

  /// Removes a block (e.g., superseded after vacuum or re-replication).
  Status Delete(BlockId id);

  bool Contains(BlockId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return blocks_.count(id) > 0;
  }

  /// All ids currently resident, ascending.
  std::vector<BlockId> ListIds() const;

  void set_fault_handler(FaultHandler handler) {
    fault_handler_ = std::move(handler);
  }

  void set_write_transform(TransformFn transform) {
    write_transform_ = std::move(transform);
  }
  void set_read_transform(TransformFn transform) {
    read_transform_ = std::move(transform);
  }

  /// Raw stored bytes, bypassing the read transform (backup uploads and
  /// at-rest inspection).
  Result<Bytes> GetRaw(BlockId id);

  // --- fault injection (tests & durability benches) ---

  /// Simulates media loss of one block (data gone, id forgotten).
  void DropForTest(BlockId id) {
    std::lock_guard<std::mutex> lock(mu_);
    blocks_.erase(id);
  }

  /// Flips one payload byte without updating the checksum.
  void CorruptForTest(BlockId id);

  // --- accounting ---
  uint64_t num_blocks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return blocks_.size();
  }
  uint64_t total_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_bytes_;
  }
  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t read_bytes() const {
    return read_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t faults() const { return faults_.load(std::memory_order_relaxed); }
  void ResetCounters() {
    reads_.store(0, std::memory_order_relaxed);
    read_bytes_.store(0, std::memory_order_relaxed);
    faults_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Stored {
    Bytes data;
    uint32_t crc = 0;
    /// Set after the first successful checksum so hot blocks are not
    /// re-hashed on every read.
    bool verified = false;
  };

  /// One node's slices scan through the same device concurrently, so
  /// the block map (and the verified-flag mutation inside it) sits
  /// behind a lock; the hot counters are relaxed atomics. The fault
  /// handler is invoked outside the lock — it may fetch from a remote
  /// store that routes back through other BlockStores.
  mutable std::mutex mu_;
  std::map<BlockId, Stored> blocks_;
  uint64_t total_bytes_ = 0;
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> read_bytes_{0};
  std::atomic<uint64_t> faults_{0};
  FaultHandler fault_handler_;
  TransformFn write_transform_;
  TransformFn read_transform_;
};

}  // namespace sdw::storage

#endif  // SDW_STORAGE_BLOCK_STORE_H_
