#ifndef SDW_STORAGE_BLOCK_STORE_H_
#define SDW_STORAGE_BLOCK_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/fault_injector.h"
#include "common/result.h"
#include "common/thread_annotations.h"

namespace sdw::storage {

/// Identifies one immutable data block within a BlockStore.
using BlockId = uint64_t;

/// The local block device of one node: immutable, checksummed,
/// fixed-maximum-size blocks (paper §2.1: "each column ... is encoded in
/// a chain of one or more fixed size data blocks"). Blocks are
/// write-once; updates happen by appending new blocks and dropping old
/// ones, which is what makes incremental S3 backup and replication
/// block-level operations.
class BlockStore {
 public:
  /// Called on a read miss (media failure / not yet restored). If it
  /// returns bytes, the block is "page-faulted" back into the store —
  /// the streaming-restore path of §2.3 and the replica-masking path
  /// of §2.1.
  using FaultHandler = std::function<Result<Bytes>(BlockId)>;

  /// Called after every successful Put with the *stored* (transformed)
  /// bytes — the hook synchronous replication hangs off of. Runs
  /// outside the store lock. PutRaw (replica copies, restores) does
  /// not notify, so replication never re-replicates its own writes.
  using PutObserver = std::function<void(BlockId, const Bytes& stored)>;

  /// Optional at-rest transforms (the §3.2 encryption checkbox): the
  /// write transform runs before bytes hit the device, the read
  /// transform after they are fetched. Checksums, replication, backup
  /// and page-faulting all operate on the transformed (stored) bytes,
  /// so backups are automatically encrypted too.
  using TransformFn = std::function<Result<Bytes>(BlockId, Bytes)>;

  BlockStore() = default;
  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;

  /// Reserves a fresh block id. Ids are unique across every BlockStore
  /// in the process so replication and S3 backup can key replicas of
  /// the same block identically on different devices.
  [[nodiscard]] static BlockId Allocate();

  /// Stores a block. Fails if the id is already present (blocks are
  /// immutable).
  Status Put(BlockId id, Bytes data) SDW_EXCLUDES(mu_);

  /// Stores already-transformed bytes (a replica copy or a restored
  /// block): no write transform, no put observer.
  Status PutRaw(BlockId id, Bytes stored) SDW_EXCLUDES(mu_);

  /// Reads and checksum-verifies a block. On a miss, consults the fault
  /// handler; on checksum mismatch the bad copy is dropped and the
  /// fault handler gets a chance to mask the failure from a replica.
  /// Without a handler, misses return Unavailable and bad checksums
  /// Corruption. Concurrent faults of one block share a single fetch.
  Result<Bytes> Get(BlockId id) SDW_EXCLUDES(mu_);

  /// Raw stored bytes, bypassing the read transform (backup uploads and
  /// at-rest inspection). Same miss/fault semantics as Get.
  Result<Bytes> GetRaw(BlockId id) SDW_EXCLUDES(mu_);

  /// Resident-only raw read: never consults the fault handler or the
  /// chaos point. This is what replication peers use to serve masked
  /// reads — a miss here must not recurse into *their* fault handlers.
  Result<Bytes> GetStored(BlockId id) SDW_EXCLUDES(mu_);

  /// Removes a block (e.g., superseded after vacuum or re-replication).
  Status Delete(BlockId id) SDW_EXCLUDES(mu_);

  bool Contains(BlockId id) const SDW_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return blocks_.count(id) > 0;
  }

  /// All ids currently resident, ascending.
  std::vector<BlockId> ListIds() const SDW_EXCLUDES(mu_);

  /// Hook setters. Safe to call while readers/writers are in flight:
  /// installation happens under the store lock and operations copy the
  /// hook out before invoking it, so an in-flight operation either sees
  /// the old hook or the new one, never a torn std::function.
  void set_fault_handler(FaultHandler handler) SDW_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    fault_handler_ = std::move(handler);
  }

  void set_put_observer(PutObserver observer) SDW_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    put_observer_ = std::move(observer);
  }

  void set_write_transform(TransformFn transform) SDW_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    write_transform_ = std::move(transform);
  }
  void set_read_transform(TransformFn transform) SDW_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    read_transform_ = std::move(transform);
  }

  // --- fault injection (chaos tests & durability benches) ---

  /// Injects scripted faults into the read path: a firing point makes
  /// the read behave as a local media failure (even for resident
  /// blocks), exercising the replica/S3 masking chain end to end.
  void set_read_fault(chaos::FaultPoint* point) SDW_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    read_fault_ = point;
  }

  /// Injects scripted faults into Put/PutRaw (device write failures —
  /// how tests script "the secondary copy failed to land").
  void set_write_fault(chaos::FaultPoint* point) SDW_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    write_fault_ = point;
  }

  /// Simulates media loss of one block (data gone, id forgotten).
  void DropForTest(BlockId id) SDW_EXCLUDES(mu_);

  /// Flips one payload byte without updating the checksum.
  void CorruptForTest(BlockId id) SDW_EXCLUDES(mu_);

  // --- accounting ---
  uint64_t num_blocks() const SDW_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return blocks_.size();
  }
  uint64_t total_bytes() const SDW_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return total_bytes_;
  }
  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t read_bytes() const {
    return read_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t faults() const { return faults_.load(std::memory_order_relaxed); }
  void ResetCounters() {
    reads_.store(0, std::memory_order_relaxed);
    read_bytes_.store(0, std::memory_order_relaxed);
    faults_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Stored {
    Bytes data;
    uint32_t crc = 0;
    /// Set after the first successful checksum so hot blocks are not
    /// re-hashed on every read.
    bool verified = false;
  };

  /// One fault-in in flight per block id: the first thread to miss
  /// fetches through the fault handler, racing threads wait on the
  /// shared slot. Keeps the fault count deterministic under
  /// concurrency and fetches each block at most once. Members are
  /// guarded by the owning store's mu_ (not annotatable from a nested
  /// struct; the cv waits on mu_ itself).
  struct Inflight {
    common::CondVar cv;
    bool done = false;
    Result<Bytes> result{Status::Unavailable("fault-in pending")};
  };

  Status StoreLocked(BlockId id, Bytes data, uint32_t crc, bool verified)
      SDW_REQUIRES(mu_);

  /// One node's slices scan through the same device concurrently, so
  /// the block map (and the verified-flag mutation inside it) sits
  /// behind a lock; the hot counters are relaxed atomics. The fault
  /// handler and the put observer are invoked outside the lock — both
  /// may reach other BlockStores, and holding our lock across that
  /// would order locks between stores (ABBA deadlock). Operations copy
  /// the hook out under the lock first, so setters stay race-free.
  mutable common::Mutex mu_{common::LockRank::kBlockStore};
  std::map<BlockId, Stored> blocks_ SDW_GUARDED_BY(mu_);
  std::map<BlockId, std::shared_ptr<Inflight>> inflight_ SDW_GUARDED_BY(mu_);
  uint64_t total_bytes_ SDW_GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> read_bytes_{0};
  std::atomic<uint64_t> faults_{0};
  FaultHandler fault_handler_ SDW_GUARDED_BY(mu_);
  PutObserver put_observer_ SDW_GUARDED_BY(mu_);
  TransformFn write_transform_ SDW_GUARDED_BY(mu_);
  TransformFn read_transform_ SDW_GUARDED_BY(mu_);
  chaos::FaultPoint* read_fault_ SDW_GUARDED_BY(mu_) = nullptr;
  chaos::FaultPoint* write_fault_ SDW_GUARDED_BY(mu_) = nullptr;
};

}  // namespace sdw::storage

#endif  // SDW_STORAGE_BLOCK_STORE_H_
