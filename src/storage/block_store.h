#ifndef SDW_STORAGE_BLOCK_STORE_H_
#define SDW_STORAGE_BLOCK_STORE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/bytes.h"
#include "common/fault_injector.h"
#include "common/result.h"

namespace sdw::storage {

/// Identifies one immutable data block within a BlockStore.
using BlockId = uint64_t;

/// The local block device of one node: immutable, checksummed,
/// fixed-maximum-size blocks (paper §2.1: "each column ... is encoded in
/// a chain of one or more fixed size data blocks"). Blocks are
/// write-once; updates happen by appending new blocks and dropping old
/// ones, which is what makes incremental S3 backup and replication
/// block-level operations.
class BlockStore {
 public:
  /// Called on a read miss (media failure / not yet restored). If it
  /// returns bytes, the block is "page-faulted" back into the store —
  /// the streaming-restore path of §2.3 and the replica-masking path
  /// of §2.1.
  using FaultHandler = std::function<Result<Bytes>(BlockId)>;

  /// Called after every successful Put with the *stored* (transformed)
  /// bytes — the hook synchronous replication hangs off of. Runs
  /// outside the store lock. PutRaw (replica copies, restores) does
  /// not notify, so replication never re-replicates its own writes.
  using PutObserver = std::function<void(BlockId, const Bytes& stored)>;

  /// Optional at-rest transforms (the §3.2 encryption checkbox): the
  /// write transform runs before bytes hit the device, the read
  /// transform after they are fetched. Checksums, replication, backup
  /// and page-faulting all operate on the transformed (stored) bytes,
  /// so backups are automatically encrypted too.
  using TransformFn = std::function<Result<Bytes>(BlockId, Bytes)>;

  BlockStore() = default;
  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;

  /// Reserves a fresh block id. Ids are unique across every BlockStore
  /// in the process so replication and S3 backup can key replicas of
  /// the same block identically on different devices.
  static BlockId Allocate();

  /// Stores a block. Fails if the id is already present (blocks are
  /// immutable).
  Status Put(BlockId id, Bytes data);

  /// Stores already-transformed bytes (a replica copy or a restored
  /// block): no write transform, no put observer.
  Status PutRaw(BlockId id, Bytes stored);

  /// Reads and checksum-verifies a block. On a miss, consults the fault
  /// handler; on checksum mismatch the bad copy is dropped and the
  /// fault handler gets a chance to mask the failure from a replica.
  /// Without a handler, misses return Unavailable and bad checksums
  /// Corruption. Concurrent faults of one block share a single fetch.
  Result<Bytes> Get(BlockId id);

  /// Raw stored bytes, bypassing the read transform (backup uploads and
  /// at-rest inspection). Same miss/fault semantics as Get.
  Result<Bytes> GetRaw(BlockId id);

  /// Resident-only raw read: never consults the fault handler or the
  /// chaos point. This is what replication peers use to serve masked
  /// reads — a miss here must not recurse into *their* fault handlers.
  Result<Bytes> GetStored(BlockId id);

  /// Removes a block (e.g., superseded after vacuum or re-replication).
  Status Delete(BlockId id);

  bool Contains(BlockId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return blocks_.count(id) > 0;
  }

  /// All ids currently resident, ascending.
  std::vector<BlockId> ListIds() const;

  void set_fault_handler(FaultHandler handler) {
    fault_handler_ = std::move(handler);
  }

  void set_put_observer(PutObserver observer) {
    put_observer_ = std::move(observer);
  }

  void set_write_transform(TransformFn transform) {
    write_transform_ = std::move(transform);
  }
  void set_read_transform(TransformFn transform) {
    read_transform_ = std::move(transform);
  }

  // --- fault injection (chaos tests & durability benches) ---

  /// Injects scripted faults into the read path: a firing point makes
  /// the read behave as a local media failure (even for resident
  /// blocks), exercising the replica/S3 masking chain end to end.
  void set_read_fault(chaos::FaultPoint* point) { read_fault_ = point; }

  /// Injects scripted faults into Put/PutRaw (device write failures —
  /// how tests script "the secondary copy failed to land").
  void set_write_fault(chaos::FaultPoint* point) { write_fault_ = point; }

  /// Simulates media loss of one block (data gone, id forgotten).
  void DropForTest(BlockId id);

  /// Flips one payload byte without updating the checksum.
  void CorruptForTest(BlockId id);

  // --- accounting ---
  uint64_t num_blocks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return blocks_.size();
  }
  uint64_t total_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_bytes_;
  }
  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t read_bytes() const {
    return read_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t faults() const { return faults_.load(std::memory_order_relaxed); }
  void ResetCounters() {
    reads_.store(0, std::memory_order_relaxed);
    read_bytes_.store(0, std::memory_order_relaxed);
    faults_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Stored {
    Bytes data;
    uint32_t crc = 0;
    /// Set after the first successful checksum so hot blocks are not
    /// re-hashed on every read.
    bool verified = false;
  };

  /// One fault-in in flight per block id: the first thread to miss
  /// fetches through the fault handler, racing threads wait on the
  /// shared slot. Keeps the fault count deterministic under
  /// concurrency and fetches each block at most once.
  struct Inflight {
    std::condition_variable cv;
    bool done = false;
    Result<Bytes> result{Status::Unavailable("fault-in pending")};
  };

  Status StoreLocked(BlockId id, Bytes data, uint32_t crc, bool verified);

  /// One node's slices scan through the same device concurrently, so
  /// the block map (and the verified-flag mutation inside it) sits
  /// behind a lock; the hot counters are relaxed atomics. The fault
  /// handler and the put observer are invoked outside the lock — both
  /// may reach other BlockStores, and holding our lock across that
  /// would order locks between stores (ABBA deadlock).
  mutable std::mutex mu_;
  std::map<BlockId, Stored> blocks_;
  std::map<BlockId, std::shared_ptr<Inflight>> inflight_;
  uint64_t total_bytes_ = 0;
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> read_bytes_{0};
  std::atomic<uint64_t> faults_{0};
  FaultHandler fault_handler_;
  PutObserver put_observer_;
  TransformFn write_transform_;
  TransformFn read_transform_;
  chaos::FaultPoint* read_fault_ = nullptr;
  chaos::FaultPoint* write_fault_ = nullptr;
};

}  // namespace sdw::storage

#endif  // SDW_STORAGE_BLOCK_STORE_H_
