#ifndef SDW_STORAGE_ZONE_MAP_H_
#define SDW_STORAGE_ZONE_MAP_H_

#include "catalog/types.h"

namespace sdw::storage {

/// Per-block min/max metadata kept in memory (paper §6: "column-block
/// skipping based on value-ranges stored in memory"; the technique of
/// Moerkotte's Small Materialized Aggregates). A range predicate that
/// cannot overlap [min, max] skips the block without any IO.
class ZoneMap {
 public:
  ZoneMap() = default;

  /// Folds one value into the zone. NULLs are tracked separately.
  void Update(const Datum& value) {
    if (value.is_null()) {
      has_nulls_ = true;
      return;
    }
    if (!has_values_) {
      min_ = value;
      max_ = value;
      has_values_ = true;
      return;
    }
    if (value < min_) min_ = value;
    if (max_ < value) max_ = value;
  }

  /// Folds a whole column vector.
  void UpdateAll(const ColumnVector& values) {
    for (size_t i = 0; i < values.size(); ++i) Update(values.DatumAt(i));
  }

  /// True if some row in this block may satisfy lo <= value <= hi.
  /// A NULL bound is unbounded on that side. NULL rows never match a
  /// range predicate, so a block of pure NULLs is always skippable.
  bool MayOverlap(const Datum& lo, const Datum& hi) const {
    if (!has_values_) return false;
    if (!hi.is_null() && hi < min_) return false;
    if (!lo.is_null() && max_ < lo) return false;
    return true;
  }

  /// True if some row may equal the value.
  bool MayContain(const Datum& value) const {
    return MayOverlap(value, value);
  }

  bool has_values() const { return has_values_; }
  bool has_nulls() const { return has_nulls_; }
  const Datum& min() const { return min_; }
  const Datum& max() const { return max_; }

 private:
  bool has_values_ = false;
  bool has_nulls_ = false;
  Datum min_;
  Datum max_;
};

}  // namespace sdw::storage

#endif  // SDW_STORAGE_ZONE_MAP_H_
