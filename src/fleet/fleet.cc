#include "fleet/fleet.h"

#include <algorithm>
#include <cmath>

namespace sdw::fleet {

std::vector<GrowthPoint> AnalysisGapSeries(const GrowthConfig& config) {
  std::vector<GrowthPoint> series;
  double enterprise = 1.0;
  double warehouse = 1.0;
  for (int year = config.start_year; year <= config.end_year; ++year) {
    series.push_back({year, enterprise, warehouse});
    enterprise *= 1.0 + config.enterprise_cagr;
    warehouse *= 1.0 + config.warehouse_cagr;
  }
  return series;
}

ReleaseTrain::Summary ReleaseTrain::Run(Rng* rng) const {
  Summary summary;
  double backlog = 0;       // features built but not yet shipped
  double deployed = 0;
  int deploys = 0;
  int failed = 0;
  for (int week = 1; week <= config_.weeks; ++week) {
    backlog += config_.features_per_week;
    if (week % config_.deploy_interval_weeks == 0 && backlog > 0) {
      ++deploys;
      // Bigger patches fail more often: independent per-feature risk.
      const double p_ok =
          std::pow(1.0 - config_.failure_prob_per_feature, backlog);
      if (rng->Bernoulli(1.0 - p_ok)) {
        ++failed;  // rolled back automatically; retry next cycle
      } else {
        deployed += backlog;
        backlog = 0;
      }
    }
    summary.series.push_back({week, deployed, failed, deploys});
  }
  summary.failed_deploy_fraction =
      deploys == 0 ? 0 : static_cast<double>(failed) / deploys;
  return summary;
}

std::vector<FleetSimulator::WeekStat> FleetSimulator::Run(Rng* rng) const {
  // Latent defect pool with Pareto-distributed ticket rates.
  std::vector<double> defects;
  defects.reserve(config_.initial_defects);
  for (int d = 0; d < config_.initial_defects; ++d) {
    defects.push_back(rng->Pareto(config_.rate_scale, config_.pareto_alpha));
  }

  std::vector<WeekStat> series;
  double clusters = config_.initial_clusters;
  double deploy_accum = 0;
  for (int week = 1; week <= config_.weeks; ++week) {
    // Tickets this week: each defect fires proportionally to fleet size.
    double expected = 0;
    for (double rate : defects) expected += rate * clusters / 1000.0;
    // Observation noise.
    double tickets = std::max(0.0, rng->Normal(expected, 0.05 * expected));

    WeekStat stat;
    stat.week = week;
    stat.clusters = clusters;
    stat.tickets = tickets;
    stat.tickets_per_cluster = clusters > 0 ? tickets / clusters : 0;
    stat.live_defects = static_cast<int>(defects.size());
    series.push_back(stat);

    // Pareto scheduling: extinguish the top causes.
    std::sort(defects.begin(), defects.end(), std::greater<double>());
    for (int e = 0; e < config_.extinguished_per_week && !defects.empty();
         ++e) {
      defects.erase(defects.begin());
    }
    // Biweekly deploys introduce new, smaller defects.
    if (week % 2 == 0) {
      deploy_accum += config_.new_defects_per_deploy;
      while (deploy_accum >= 1.0) {
        defects.push_back(rng->Pareto(
            config_.rate_scale * config_.new_defect_scale,
            config_.pareto_alpha));
        deploy_accum -= 1.0;
      }
    }
    clusters *= 1.0 + config_.weekly_cluster_growth;
  }
  return series;
}

}  // namespace sdw::fleet
