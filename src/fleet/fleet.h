#ifndef SDW_FLEET_FLEET_H_
#define SDW_FLEET_FLEET_H_

#include <vector>

#include "common/random.h"

namespace sdw::fleet {

/// One point of the Figure-1 "analysis gap" model: enterprise data
/// compounds at 30-60% CAGR while warehouse capacity compounds at the
/// data-warehouse market's 8-11% — the gap is the dark data the paper
/// targets.
struct GrowthPoint {
  int year = 0;
  double enterprise_data = 0;   // normalized to 1.0 at start_year
  double warehouse_data = 0;
};

struct GrowthConfig {
  int start_year = 1990;
  int end_year = 2020;
  double enterprise_cagr = 0.40;
  double warehouse_cagr = 0.10;
};

std::vector<GrowthPoint> AnalysisGapSeries(const GrowthConfig& config);

/// The Figure-4 release train: features are developed continuously and
/// shipped on a fixed cadence; each deploy can fail (probability grows
/// with its size) and be rolled back to retry next cycle. The paper's
/// lesson: slowing from 2-week to 4-week trains "meaningfully increased
/// the probability of a failed patch".
class ReleaseTrain {
 public:
  struct Config {
    int weeks = 104;
    double features_per_week = 1.15;
    int deploy_interval_weeks = 2;
    /// Chance one feature's change breaks the patch.
    double failure_prob_per_feature = 0.03;
  };

  struct WeekStat {
    int week = 0;
    double cumulative_deployed = 0;
    int failed_deploys_to_date = 0;
    int deploys_to_date = 0;
  };

  struct Summary {
    std::vector<WeekStat> series;
    double failed_deploy_fraction = 0;
  };

  explicit ReleaseTrain(Config config) : config_(config) {}

  Summary Run(Rng* rng) const;

 private:
  Config config_;
};

/// The Figure-5 fleet model: the cluster fleet grows every week; a pool
/// of latent defects (Pareto-distributed rates — a few causes dominate)
/// generates Sev2 tickets proportional to fleet size; the team
/// extinguishes the top-N causes each week while deploys introduce a
/// few new (smaller) ones. Output: total tickets correlate with fleet
/// growth while tickets *per cluster* decline (§5).
class FleetSimulator {
 public:
  struct Config {
    int weeks = 104;
    double initial_clusters = 200;
    double weekly_cluster_growth = 0.035;
    int initial_defects = 150;
    /// Pareto shape of per-defect ticket rates; smaller = heavier tail.
    double pareto_alpha = 1.1;
    /// Scale of per-defect rate (tickets per 1000 clusters per week).
    double rate_scale = 0.08;
    /// Causes extinguished per week ("extinguishing one of the top ten
    /// causes of error each week").
    int extinguished_per_week = 1;
    /// New defects introduced per deploy (deploys are biweekly).
    double new_defects_per_deploy = 1.5;
    /// New defects are introduced at a fraction of the original scale
    /// (the worst bugs get caught pre-release as the process matures).
    double new_defect_scale = 0.4;
  };

  struct WeekStat {
    int week = 0;
    double clusters = 0;
    double tickets = 0;
    double tickets_per_cluster = 0;
    int live_defects = 0;
  };

  explicit FleetSimulator(Config config) : config_(config) {}

  std::vector<WeekStat> Run(Rng* rng) const;

 private:
  Config config_;
};

}  // namespace sdw::fleet

#endif  // SDW_FLEET_FLEET_H_
