#ifndef SDW_SECURITY_CHACHA20_H_
#define SDW_SECURITY_CHACHA20_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace sdw::security {

/// 256-bit key and 96-bit nonce, RFC 8439 layout.
using Key256 = std::array<uint8_t, 32>;
using Nonce96 = std::array<uint8_t, 12>;

/// XORs `data` in place with the ChaCha20 keystream for (key, nonce,
/// initial counter). Encryption and decryption are the same operation.
void ChaCha20Xor(const Key256& key, const Nonce96& nonce, uint32_t counter,
                 Bytes* data);

/// One 64-byte keystream block (exposed for the known-answer test).
std::array<uint8_t, 64> ChaCha20Block(const Key256& key, const Nonce96& nonce,
                                      uint32_t counter);

}  // namespace sdw::security

#endif  // SDW_SECURITY_CHACHA20_H_
