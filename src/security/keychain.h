#ifndef SDW_SECURITY_KEYCHAIN_H_
#define SDW_SECURITY_KEYCHAIN_H_

#include <map>
#include <memory>
#include <string>

#include "common/random.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "security/chacha20.h"
#include "storage/block_store.h"

namespace sdw::security {

/// Source of the master key: ours ("stored by us off-network") or the
/// customer's HSM (§3.2).
class MasterKeyProvider {
 public:
  virtual ~MasterKeyProvider() = default;
  virtual Result<Key256> GetMasterKey() = 0;
  virtual std::string name() const = 0;
};

/// The service-managed master key.
class ServiceKeyProvider : public MasterKeyProvider {
 public:
  explicit ServiceKeyProvider(uint64_t seed);
  Result<Key256> GetMasterKey() override;
  std::string name() const override { return "service-managed"; }

  /// Rotating the service master (keeps a new key; old wraps must be
  /// re-wrapped via KeyHierarchy::RotateMasterKey).
  void Rotate(uint64_t seed);

 private:
  Key256 key_;
};

/// An HSM that can be taken offline (fault injection / repudiation).
class HsmKeyProvider : public MasterKeyProvider {
 public:
  explicit HsmKeyProvider(uint64_t seed);
  Result<Key256> GetMasterKey() override;
  std::string name() const override { return "hsm"; }
  void set_available(bool available) { available_ = available; }

 private:
  Key256 key_;
  bool available_ = true;
};

/// The three-level key hierarchy of §3.2: per-block keys (prevent
/// cross-block injection) wrapped by a cluster key (prevents
/// cross-cluster injection) wrapped by the master key. Rotation
/// re-encrypts keys, never data; repudiation = losing the keys.
///
/// Thread-safe: with MVCC snapshot reads, concurrent SELECTs decrypt
/// blocks while a COPY encrypts new ones, so all hierarchy state is
/// guarded by an internal mutex. Rotation must observe a stable key
/// map, so one mutex over the whole hierarchy keeps the invariants
/// simple; block payloads are small enough that holding it across the
/// ChaCha pass is not a contention concern in this model.
class KeyHierarchy {
 public:
  /// Creates a hierarchy with a fresh cluster key wrapped by the
  /// provider's master key.
  static Result<KeyHierarchy> Create(MasterKeyProvider* provider,
                                     uint64_t seed = 1);

  /// Movable so Create can return by value. Moves happen before the
  /// hierarchy is published to other threads; the moved-from object
  /// must not be used again.
  KeyHierarchy(KeyHierarchy&& other) noexcept SDW_NO_THREAD_SAFETY_ANALYSIS;
  KeyHierarchy& operator=(KeyHierarchy&& other) noexcept
      SDW_NO_THREAD_SAFETY_ANALYSIS;

  /// Encrypts a block: generates its block key, wraps it with the
  /// cluster key, returns ciphertext (wrapped key is kept internally).
  Result<Bytes> EncryptBlock(storage::BlockId id, Bytes plaintext);

  /// Decrypts a block: unwraps its key via cluster+master keys.
  Result<Bytes> DecryptBlock(storage::BlockId id, Bytes ciphertext);

  /// Re-wraps every block key with a fresh cluster key. Cost is
  /// proportional to the number of block keys, not data bytes.
  Status RotateClusterKey();

  /// Re-wraps the cluster key after the master key changed.
  Status RotateMasterKey(MasterKeyProvider* new_provider);

  /// Cryptographic erasure: drops the wrapped cluster key, making every
  /// block permanently undecryptable.
  void Repudiate();

  size_t num_block_keys() const SDW_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return wrapped_block_keys_.size();
  }
  uint64_t rewrap_operations() const SDW_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return rewrap_operations_;
  }

 private:
  KeyHierarchy(MasterKeyProvider* provider, uint64_t seed);

  Result<Key256> UnwrapClusterKey() SDW_REQUIRES(mu_);
  Key256 GenerateKey() SDW_REQUIRES(mu_);

  mutable common::Mutex mu_{common::LockRank::kKeychain};
  MasterKeyProvider* provider_ SDW_GUARDED_BY(mu_);
  Rng rng_ SDW_GUARDED_BY(mu_);
  bool repudiated_ SDW_GUARDED_BY(mu_) = false;
  /// Cluster key encrypted under the master key.
  Bytes wrapped_cluster_key_ SDW_GUARDED_BY(mu_);
  Nonce96 cluster_key_nonce_ SDW_GUARDED_BY(mu_);
  /// Block keys encrypted under the cluster key.
  struct WrappedKey {
    Bytes wrapped;
    Nonce96 nonce;
  };
  std::map<storage::BlockId, WrappedKey> wrapped_block_keys_
      SDW_GUARDED_BY(mu_);
  uint64_t rewrap_operations_ SDW_GUARDED_BY(mu_) = 0;
};

}  // namespace sdw::security

#endif  // SDW_SECURITY_KEYCHAIN_H_
