#include "security/keychain.h"

namespace sdw::security {

namespace {

Key256 KeyFromRng(Rng* rng) {
  Key256 key;
  for (size_t i = 0; i < key.size(); i += 8) {
    uint64_t word = rng->Next();
    for (size_t b = 0; b < 8; ++b) {
      key[i + b] = static_cast<uint8_t>(word >> (8 * b));
    }
  }
  return key;
}

Nonce96 NonceFromRng(Rng* rng) {
  Nonce96 nonce;
  uint64_t a = rng->Next();
  uint32_t b = static_cast<uint32_t>(rng->Next());
  for (size_t i = 0; i < 8; ++i) nonce[i] = static_cast<uint8_t>(a >> (8 * i));
  for (size_t i = 0; i < 4; ++i) {
    nonce[8 + i] = static_cast<uint8_t>(b >> (8 * i));
  }
  return nonce;
}

Bytes WrapKey(const Key256& kek, const Nonce96& nonce, const Key256& key) {
  Bytes wrapped(key.begin(), key.end());
  ChaCha20Xor(kek, nonce, 0, &wrapped);
  return wrapped;
}

Result<Key256> UnwrapKey(const Key256& kek, const Nonce96& nonce,
                         const Bytes& wrapped) {
  if (wrapped.size() != 32) {
    return Status::Corruption("wrapped key has wrong size");
  }
  Bytes plain = wrapped;
  ChaCha20Xor(kek, nonce, 0, &plain);
  Key256 key;
  std::copy(plain.begin(), plain.end(), key.begin());
  return key;
}

}  // namespace

ServiceKeyProvider::ServiceKeyProvider(uint64_t seed) {
  Rng rng(seed);
  key_ = KeyFromRng(&rng);
}

Result<Key256> ServiceKeyProvider::GetMasterKey() { return key_; }

void ServiceKeyProvider::Rotate(uint64_t seed) {
  Rng rng(seed);
  key_ = KeyFromRng(&rng);
}

HsmKeyProvider::HsmKeyProvider(uint64_t seed) {
  Rng rng(seed);
  key_ = KeyFromRng(&rng);
}

Result<Key256> HsmKeyProvider::GetMasterKey() {
  if (!available_) return Status::Unavailable("HSM unreachable");
  return key_;
}

KeyHierarchy::KeyHierarchy(MasterKeyProvider* provider, uint64_t seed)
    : provider_(provider), rng_(seed) {}

KeyHierarchy::KeyHierarchy(KeyHierarchy&& other) noexcept
    : provider_(other.provider_),
      rng_(other.rng_),
      repudiated_(other.repudiated_),
      wrapped_cluster_key_(std::move(other.wrapped_cluster_key_)),
      cluster_key_nonce_(other.cluster_key_nonce_),
      wrapped_block_keys_(std::move(other.wrapped_block_keys_)),
      rewrap_operations_(other.rewrap_operations_) {}

KeyHierarchy& KeyHierarchy::operator=(KeyHierarchy&& other) noexcept {
  provider_ = other.provider_;
  rng_ = other.rng_;
  repudiated_ = other.repudiated_;
  wrapped_cluster_key_ = std::move(other.wrapped_cluster_key_);
  cluster_key_nonce_ = other.cluster_key_nonce_;
  wrapped_block_keys_ = std::move(other.wrapped_block_keys_);
  rewrap_operations_ = other.rewrap_operations_;
  return *this;
}

Result<KeyHierarchy> KeyHierarchy::Create(MasterKeyProvider* provider,
                                          uint64_t seed) {
  KeyHierarchy hierarchy(provider, seed);
  SDW_ASSIGN_OR_RETURN(Key256 master, provider->GetMasterKey());
  {
    common::MutexLock lock(hierarchy.mu_);
    Key256 cluster_key = hierarchy.GenerateKey();
    hierarchy.cluster_key_nonce_ = NonceFromRng(&hierarchy.rng_);
    hierarchy.wrapped_cluster_key_ =
        WrapKey(master, hierarchy.cluster_key_nonce_, cluster_key);
  }
  return hierarchy;
}

Key256 KeyHierarchy::GenerateKey() { return KeyFromRng(&rng_); }

Result<Key256> KeyHierarchy::UnwrapClusterKey() {
  if (repudiated_) {
    return Status::FailedPrecondition("cluster keys repudiated");
  }
  SDW_ASSIGN_OR_RETURN(Key256 master, provider_->GetMasterKey());
  return UnwrapKey(master, cluster_key_nonce_, wrapped_cluster_key_);
}

Result<Bytes> KeyHierarchy::EncryptBlock(storage::BlockId id,
                                         Bytes plaintext) {
  common::MutexLock lock(mu_);
  if (wrapped_block_keys_.count(id)) {
    return Status::AlreadyExists("block already has a key");
  }
  SDW_ASSIGN_OR_RETURN(Key256 cluster_key, UnwrapClusterKey());
  Key256 block_key = GenerateKey();
  WrappedKey wrapped;
  wrapped.nonce = NonceFromRng(&rng_);
  wrapped.wrapped = WrapKey(cluster_key, wrapped.nonce, block_key);
  // Data nonce: derived from the block id, distinct from the wrap nonce.
  Nonce96 data_nonce{};
  for (int i = 0; i < 8; ++i) {
    data_nonce[i] = static_cast<uint8_t>(id >> (8 * i));
  }
  data_nonce[11] = 0xd4;
  ChaCha20Xor(block_key, data_nonce, 1, &plaintext);
  wrapped_block_keys_[id] = std::move(wrapped);
  return plaintext;
}

Result<Bytes> KeyHierarchy::DecryptBlock(storage::BlockId id,
                                         Bytes ciphertext) {
  common::MutexLock lock(mu_);
  auto it = wrapped_block_keys_.find(id);
  if (it == wrapped_block_keys_.end()) {
    return Status::NotFound("no key for block " + std::to_string(id));
  }
  SDW_ASSIGN_OR_RETURN(Key256 cluster_key, UnwrapClusterKey());
  SDW_ASSIGN_OR_RETURN(
      Key256 block_key,
      UnwrapKey(cluster_key, it->second.nonce, it->second.wrapped));
  Nonce96 data_nonce{};
  for (int i = 0; i < 8; ++i) {
    data_nonce[i] = static_cast<uint8_t>(id >> (8 * i));
  }
  data_nonce[11] = 0xd4;
  ChaCha20Xor(block_key, data_nonce, 1, &ciphertext);
  return ciphertext;
}

Status KeyHierarchy::RotateClusterKey() {
  common::MutexLock lock(mu_);
  SDW_ASSIGN_OR_RETURN(Key256 old_cluster_key, UnwrapClusterKey());
  Key256 new_cluster_key = GenerateKey();
  for (auto& [id, wrapped] : wrapped_block_keys_) {
    SDW_ASSIGN_OR_RETURN(
        Key256 block_key,
        UnwrapKey(old_cluster_key, wrapped.nonce, wrapped.wrapped));
    wrapped.nonce = NonceFromRng(&rng_);
    wrapped.wrapped = WrapKey(new_cluster_key, wrapped.nonce, block_key);
    ++rewrap_operations_;
  }
  SDW_ASSIGN_OR_RETURN(Key256 master, provider_->GetMasterKey());
  cluster_key_nonce_ = NonceFromRng(&rng_);
  wrapped_cluster_key_ = WrapKey(master, cluster_key_nonce_, new_cluster_key);
  ++rewrap_operations_;
  return Status::OK();
}

Status KeyHierarchy::RotateMasterKey(MasterKeyProvider* new_provider) {
  common::MutexLock lock(mu_);
  SDW_ASSIGN_OR_RETURN(Key256 cluster_key, UnwrapClusterKey());
  SDW_ASSIGN_OR_RETURN(Key256 new_master, new_provider->GetMasterKey());
  cluster_key_nonce_ = NonceFromRng(&rng_);
  wrapped_cluster_key_ = WrapKey(new_master, cluster_key_nonce_, cluster_key);
  provider_ = new_provider;
  ++rewrap_operations_;
  return Status::OK();
}

void KeyHierarchy::Repudiate() {
  common::MutexLock lock(mu_);
  repudiated_ = true;
  wrapped_cluster_key_.clear();
}

}  // namespace sdw::security
