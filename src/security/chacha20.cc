#include "security/chacha20.h"

#include <cstring>

namespace sdw::security {

namespace {

inline uint32_t Rotl32(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

inline void QuarterRound(uint32_t* a, uint32_t* b, uint32_t* c, uint32_t* d) {
  *a += *b;
  *d = Rotl32(*d ^ *a, 16);
  *c += *d;
  *b = Rotl32(*b ^ *c, 12);
  *a += *b;
  *d = Rotl32(*d ^ *a, 8);
  *c += *d;
  *b = Rotl32(*b ^ *c, 7);
}

inline uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

}  // namespace

std::array<uint8_t, 64> ChaCha20Block(const Key256& key, const Nonce96& nonce,
                                      uint32_t counter) {
  uint32_t state[16] = {
      0x61707865u, 0x3320646eu, 0x79622d32u, 0x6b206574u,
      Load32(key.data()),      Load32(key.data() + 4),
      Load32(key.data() + 8),  Load32(key.data() + 12),
      Load32(key.data() + 16), Load32(key.data() + 20),
      Load32(key.data() + 24), Load32(key.data() + 28),
      counter,                  Load32(nonce.data()),
      Load32(nonce.data() + 4), Load32(nonce.data() + 8),
  };
  uint32_t working[16];
  std::memcpy(working, state, sizeof(state));
  for (int round = 0; round < 10; ++round) {
    QuarterRound(&working[0], &working[4], &working[8], &working[12]);
    QuarterRound(&working[1], &working[5], &working[9], &working[13]);
    QuarterRound(&working[2], &working[6], &working[10], &working[14]);
    QuarterRound(&working[3], &working[7], &working[11], &working[15]);
    QuarterRound(&working[0], &working[5], &working[10], &working[15]);
    QuarterRound(&working[1], &working[6], &working[11], &working[12]);
    QuarterRound(&working[2], &working[7], &working[8], &working[13]);
    QuarterRound(&working[3], &working[4], &working[9], &working[14]);
  }
  std::array<uint8_t, 64> out;
  for (int i = 0; i < 16; ++i) {
    uint32_t word = working[i] + state[i];
    std::memcpy(out.data() + 4 * i, &word, 4);
  }
  return out;
}

void ChaCha20Xor(const Key256& key, const Nonce96& nonce, uint32_t counter,
                 Bytes* data) {
  size_t offset = 0;
  while (offset < data->size()) {
    std::array<uint8_t, 64> keystream = ChaCha20Block(key, nonce, counter++);
    const size_t n = std::min<size_t>(64, data->size() - offset);
    for (size_t i = 0; i < n; ++i) {
      (*data)[offset + i] ^= keystream[i];
    }
    offset += n;
  }
}

}  // namespace sdw::security
