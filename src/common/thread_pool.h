#ifndef SDW_COMMON_THREAD_POOL_H_
#define SDW_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"

namespace sdw::common {

/// A fixed-size work-queue thread pool. Constructed with zero threads it
/// degenerates to inline (serial) execution, which is the knob the
/// benches use to compare serial vs parallel wall clock on identical
/// code paths.
///
/// The pool may be shared by many concurrent callers (query execution
/// and COPY both draw from the cluster's pool): ParallelFor tracks
/// completion of its own tasks only, so one caller's join never waits
/// on another caller's work.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; `num_threads <= 0` creates none and
  /// every task runs inline on the calling thread.
  explicit ThreadPool(int num_threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers. Outstanding tasks finish first.
  ~ThreadPool() SDW_EXCLUDES(mu_);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(i) for every i in [0, n), on the workers when the pool has
  /// any and inline otherwise, and joins before returning. Statuses are
  /// collected per index and the lowest-index failure is returned, so a
  /// serial and a parallel run of the same failing workload report the
  /// same error. Exceptions escaping fn are converted to an Internal
  /// status rather than terminating the process (the join stays safe).
  Status ParallelFor(int n, const std::function<Status(int)>& fn)
      SDW_EXCLUDES(mu_);

 private:
  void WorkerLoop() SDW_EXCLUDES(mu_);

  Mutex mu_{LockRank::kThreadPool};
  CondVar work_ready_;
  std::deque<std::function<void()>> queue_ SDW_GUARDED_BY(mu_);
  bool shutting_down_ SDW_GUARDED_BY(mu_) = false;
  /// Written only in the constructor, before any worker can observe it;
  /// read-only afterwards (num_threads, the serial-fallback check, the
  /// destructor's join).
  std::vector<std::thread> workers_;
};

}  // namespace sdw::common

#endif  // SDW_COMMON_THREAD_POOL_H_
