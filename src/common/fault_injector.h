#ifndef SDW_COMMON_FAULT_INJECTOR_H_
#define SDW_COMMON_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace sdw::chaos {

/// One instrumented call site (a BlockStore's read path, an S3Region's
/// API, ...). Every failure scenario in tests and benches is scripted
/// through these points so it is reproducible from a seed: the paper's
/// fleet sees media failures, transient S3 unavailability and
/// whole-node loss constantly (§2.1-§2.2); the simulator has to be able
/// to replay any of them on demand.
///
/// Three scripting modes, composable:
///  - `set_failure_rate(p)`: each call fails independently with
///    probability p, drawn from a seeded Rng (deterministic sequence).
///  - `FailNext(n)`: the next n calls fail unconditionally — scripted
///    outages with an exact length ("S3 down for the next 3 requests").
///  - `ArmTrigger(at_call, fn)`: run an arbitrary callback when the
///    point's call counter reaches `at_call` — e.g. kill a whole node
///    in the middle of a query. The callback runs outside the point's
///    lock and does not itself fail the call.
///
/// Thread-safe; calls and injected faults are counted.
class FaultPoint {
 public:
  explicit FaultPoint(std::string site = "", uint64_t seed = 0xC4A05u);

  FaultPoint(const FaultPoint&) = delete;
  FaultPoint& operator=(const FaultPoint&) = delete;

  /// Reseeds the probabilistic mode's Rng.
  void set_seed(uint64_t seed) SDW_EXCLUDES(mu_);

  /// Each call fails independently with probability `p` (0 disables).
  void set_failure_rate(double p) SDW_EXCLUDES(mu_);

  /// The next `n` calls fail with `code`, then the point recovers.
  void FailNext(int n, StatusCode code = StatusCode::kUnavailable)
      SDW_EXCLUDES(mu_);

  /// Runs `fn` when the call counter reaches `at_call` (1-based: the
  /// first call is call 1). The triggering call itself is not failed.
  void ArmTrigger(uint64_t at_call, std::function<void()> fn)
      SDW_EXCLUDES(mu_);

  /// The instrumented site calls this on every operation; a non-OK
  /// status means the operation must fail with it.
  Status OnCall() SDW_EXCLUDES(mu_);

  uint64_t calls() const SDW_EXCLUDES(mu_);
  uint64_t injected() const SDW_EXCLUDES(mu_);

  /// Clears all modes, triggers and counters (site name kept).
  void Reset() SDW_EXCLUDES(mu_);

 private:
  struct Trigger {
    uint64_t at_call = 0;
    std::function<void()> fn;
  };

  mutable common::Mutex mu_{common::LockRank::kFaultPoint};
  /// Immutable after construction (site identity).
  std::string site_;
  Rng rng_ SDW_GUARDED_BY(mu_);
  double failure_rate_ SDW_GUARDED_BY(mu_) = 0.0;
  int fail_next_ SDW_GUARDED_BY(mu_) = 0;
  StatusCode fail_code_ SDW_GUARDED_BY(mu_) = StatusCode::kUnavailable;
  uint64_t calls_ SDW_GUARDED_BY(mu_) = 0;
  uint64_t injected_ SDW_GUARDED_BY(mu_) = 0;
  std::vector<Trigger> triggers_ SDW_GUARDED_BY(mu_);
};

/// Deterministic whole-process crash injection for the durability
/// harness. A FaultPoint fails one *operation*; a crash point kills the
/// *process*: once a crash fires, every subsequent site check fails too
/// — the in-memory state is dead and nothing after the crash point may
/// reach the object store. The warehouse instruments named sites along
/// its commit path (pre-log, post-log-pre-install, mid-install,
/// post-install-pre-ack); a test arms exactly one, drives a statement
/// into it, and then "restarts the process" by building a fresh
/// warehouse over the surviving S3 and calling Recover().
///
/// Thread-safe; AtSite/CrashNow take only the controller's own leaf
/// lock, so sites may be checked under any warehouse lock.
class CrashController {
 public:
  /// Arms a one-shot crash at the named site (replaces any armed site).
  void ArmCrash(const std::string& site) SDW_EXCLUDES(mu_);

  /// The instrumented site calls this. Returns kAborted when the
  /// process just crashed here (site armed) or is already down.
  Status AtSite(const std::string& site) SDW_EXCLUDES(mu_);

  /// True iff `site` is armed and not yet fired: consumes the arm and
  /// records the crash. For sites that must do partial work on the way
  /// down (a torn log append writes half a record first).
  bool CrashNow(const std::string& site) SDW_EXCLUDES(mu_);

  /// The "process is down" status every post-crash call fails with.
  Status Down() const SDW_EXCLUDES(mu_);

  bool crashed() const SDW_EXCLUDES(mu_);
  std::string crash_site() const SDW_EXCLUDES(mu_);

  /// Clears the crash and any armed site (a fresh process start).
  void Reset() SDW_EXCLUDES(mu_);

 private:
  mutable common::Mutex mu_{common::LockRank::kCrashController};
  std::string armed_ SDW_GUARDED_BY(mu_);
  std::string crash_site_ SDW_GUARDED_BY(mu_);
  bool crashed_ SDW_GUARDED_BY(mu_) = false;
};

/// Named registry of fault points so a test can reach every
/// instrumented site of a warehouse through one object. Points are
/// created on first use, each seeded deterministically from the
/// injector seed and the site name.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0xC4A05u);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// The point for `site`, created (and seeded) on first use. The
  /// pointer stays valid for the injector's lifetime.
  FaultPoint* point(const std::string& site) SDW_EXCLUDES(mu_);

  /// Sites registered so far, sorted.
  std::vector<std::string> sites() const SDW_EXCLUDES(mu_);

 private:
  mutable common::Mutex mu_{common::LockRank::kFaultInjector};
  /// Immutable after construction.
  uint64_t seed_;
  std::map<std::string, std::unique_ptr<FaultPoint>> points_
      SDW_GUARDED_BY(mu_);
};

}  // namespace sdw::chaos

#endif  // SDW_COMMON_FAULT_INJECTOR_H_
