#ifndef SDW_COMMON_RANDOM_H_
#define SDW_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace sdw {

/// Deterministic, fast PRNG (xoshiro256** core seeded via splitmix64).
/// Used everywhere so that simulations, data generators and tests are
/// reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5d357ull);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exponentially distributed with the given mean (> 0).
  double Exponential(double mean);

  /// Standard normal via Box-Muller.
  double Normal(double mean, double stddev);

  /// Zipf-distributed value in [0, n) with exponent theta (0 = uniform,
  /// larger = more skew). Uses the classic rejection-free approximation.
  uint64_t Zipf(uint64_t n, double theta);

  /// Pareto-distributed (Lomax) value with scale and shape alpha; the
  /// heavy-tail distribution the paper's operational-defect model uses.
  double Pareto(double scale, double alpha);

  /// Random lowercase ASCII string of the given length.
  std::string NextString(size_t length);

  /// Shuffles a vector in place (Fisher-Yates).
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Uniform(i)]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace sdw

#endif  // SDW_COMMON_RANDOM_H_
