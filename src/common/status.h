#ifndef SDW_COMMON_STATUS_H_
#define SDW_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace sdw {

/// Error categories used across the warehouse. Modeled after the
/// Status idioms of Arrow/RocksDB/absl: no exceptions anywhere; every
/// fallible operation returns a Status (or Result<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIoError,
  kCorruption,
  kUnavailable,
  kFailedPrecondition,
  kOutOfRange,
  kNotSupported,
  kAborted,
  kInternal,
  kDeadlineExceeded,
};

/// Returns a stable human-readable name ("InvalidArgument", ...) for a code.
const char* StatusCodeName(StatusCode code);

/// A Status is either OK (cheap, no allocation) or an error code plus a
/// message describing what went wrong. Statuses are copyable values.
///
/// [[nodiscard]] on the class: a dropped Status is a silently swallowed
/// error, so every call site must consume the value — handle it,
/// propagate it (SDW_RETURN_IF_ERROR), or discard it explicitly with a
/// `(void)` cast and a reason the next reader can check.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status out of the enclosing function.
#define SDW_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::sdw::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace sdw

#endif  // SDW_COMMON_STATUS_H_
