#ifndef SDW_COMMON_UNITS_H_
#define SDW_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace sdw {

inline constexpr uint64_t kKiB = 1024ull;
inline constexpr uint64_t kMiB = 1024ull * kKiB;
inline constexpr uint64_t kGiB = 1024ull * kMiB;
inline constexpr uint64_t kTiB = 1024ull * kGiB;

/// Simulated time is kept in double seconds throughout the sim/control
/// plane; these constants make call sites read like the paper's units.
inline constexpr double kSecond = 1.0;
inline constexpr double kMinute = 60.0;
inline constexpr double kHour = 3600.0;
inline constexpr double kDay = 86400.0;
inline constexpr double kWeek = 7 * kDay;

/// "1.5 GiB", "312 MiB" -- human-readable byte counts for bench output.
std::string FormatBytes(uint64_t bytes);

/// "9.75 h", "14.2 min", "830 ms" -- human-readable durations (seconds in).
std::string FormatDuration(double seconds);

/// "5.0 B", "150 M", "12.3 k" -- human-readable row counts.
std::string FormatCount(double count);

}  // namespace sdw

#endif  // SDW_COMMON_UNITS_H_
