#ifndef SDW_COMMON_LOCK_RANK_H_
#define SDW_COMMON_LOCK_RANK_H_

#include <string>

namespace sdw::common {

/// The lock hierarchy of the concurrent core, as ranks. A thread may
/// only acquire a mutex whose rank is strictly greater than every rank
/// it already holds, so any cycle in the dynamic acquisition order is
/// impossible by construction. Lower rank = acquired earlier (outer);
/// the leaves of the hierarchy carry the highest ranks.
///
/// The authoritative table — one row per mutex member in src/, with its
/// module and acquired-before edges — lives in DESIGN.md §4f and is
/// linted against this enum by tools/lint.py (rule `lock-rank-doc`):
/// every enumerator added here must gain a DESIGN.md row, so code and
/// doc cannot drift apart.
///
/// Gaps between values are deliberate: new locks slot in between
/// existing layers without renumbering the table.
enum class LockRank : int {
  /// Exempt from ordering checks (test-local mutexes, or locks outside
  /// the concurrent core). Never use for a mutex in src/.
  kUnranked = 0,

  // ---- client side (outside the warehouse entirely) ----
  kWorkloadReplay = 50,  // workload::Replayer dispatch queue mutex

  // ---- warehouse front door (outermost) ----
  kWarehouseWriter = 100,    // Warehouse::writer_mu_
  kWarehouseData = 150,      // Warehouse::data_mu_
  kWarehouseVersions = 200,  // Warehouse::cache_mu_ (table-version map)
  kQueryCache = 210,         // LruQueryCache::mu_ (segment/result caches)
  kCatalog = 250,            // Catalog::mu_

  // ---- data plane ----
  kShardDecodeCache = 300,  // TableShard::cache_mu_ (held across store Get)
  kClusterRouting = 350,    // Cluster::mu_
  kComputeNode = 400,       // ComputeNode::mu_
  kShardHead = 450,         // TableShard::head_mu_
  kReplication = 500,       // ReplicationManager::mu_
  kBlockStore = 550,        // BlockStore::mu_

  // ---- durability / backup / security ----
  kCommitLog = 580,   // durability::CommitLog::mu_ (held across S3 ops)
  kS3Directory = 600,  // backup::S3::mu_ (region map)
  kS3Region = 610,     // backup::S3Region::mu_
  kKeychain = 620,     // security::KeyHierarchy::mu_

  // ---- serving-side bookkeeping (taken under any warehouse lock) ----
  kWlmAdmission = 700,      // cluster::AdmissionController::mu_
  kQueryLog = 710,          // obs::QueryLog::mu_
  kEventLog = 715,          // obs::EventLog::mu_
  kScanLog = 720,           // obs::ScanLog::mu_
  kAlertLog = 725,          // obs::AlertLog::mu_
  kGaugeHistory = 730,      // obs::GaugeHistory::mu_
  kInflightRegistry = 735,  // obs::InflightRegistry::mu_

  // ---- leaves ----
  kPoolJoin = 790,         // ThreadPool::ParallelFor per-call JoinState::mu
  kThreadPool = 800,       // common::ThreadPool::mu_
  kFaultInjector = 850,    // chaos::FaultInjector::mu_ (point directory)
  kFaultPoint = 860,       // chaos::FaultPoint::mu_
  kCrashController = 870,  // chaos::CrashController::mu_
  kMetricsRegistry = 900,  // obs::Registry::mu_ (registration under any lock)
};

/// Stable name for reports and the DESIGN.md lint ("kWarehouseWriter").
const char* LockRankName(LockRank rank);

/// Runtime lock-rank validation. Off by default (the hooks cost one
/// relaxed atomic load per lock op); enabled process-wide either
/// programmatically or by setting SDW_LOCK_RANK_CHECKS=1 in the
/// environment (how the sanitizer CI legs turn it on suite-wide).
void EnableLockRankChecks(bool enabled);
bool LockRankChecksEnabled();

/// What the validator reports on an out-of-order acquisition: the two
/// ranks plus a rendered report containing both acquisition stacks.
struct LockRankViolation {
  LockRank acquired = LockRank::kUnranked;
  LockRank held = LockRank::kUnranked;
  /// Human-readable report: the inversion, the acquiring stack and the
  /// stack that acquired the already-held lock.
  std::string report;
};

/// Violation sink. The default handler writes the report to stderr and
/// aborts (a rank inversion is a latent deadlock — same severity as a
/// failed SDW_CHECK); tests install a capturing handler to assert on
/// the report instead of dying. Returns the previous handler.
using LockRankViolationHandler = void (*)(const LockRankViolation&);
LockRankViolationHandler SetLockRankViolationHandler(
    LockRankViolationHandler handler);

namespace internal {

/// Called by Mutex/SharedMutex before blocking on the underlying lock:
/// checks `rank` against every rank this thread already holds and
/// records the acquisition (with a captured backtrace) on the
/// per-thread stack. `check_order` is false for try_lock successes —
/// a non-blocking acquire cannot deadlock, but must still be recorded
/// so later blocking acquires see it.
void OnLockAcquire(const void* mutex, LockRank rank, bool check_order);

/// Called on unlock; removes the most recent matching record. Tolerant
/// of missing entries (checks enabled while locks were already held).
void OnLockRelease(const void* mutex, LockRank rank);

/// Number of ranked locks the calling thread currently holds (tests).
int HeldRankedLocks();

}  // namespace internal

}  // namespace sdw::common

#endif  // SDW_COMMON_LOCK_RANK_H_
