#ifndef SDW_COMMON_BYTES_H_
#define SDW_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace sdw {

/// Raw byte buffer used by encodings, blocks and the object store.
using Bytes = std::vector<uint8_t>;

/// Little-endian fixed-width append/read helpers plus LEB128 varints.
/// These are free functions (not a stream class) so encoders can mix
/// direct buffer writes with helper calls.

inline void PutFixed32(Bytes* dst, uint32_t v) {
  uint8_t buf[4];
  std::memcpy(buf, &v, 4);
  dst->insert(dst->end(), buf, buf + 4);
}

inline void PutFixed64(Bytes* dst, uint64_t v) {
  uint8_t buf[8];
  std::memcpy(buf, &v, 8);
  dst->insert(dst->end(), buf, buf + 8);
}

inline uint32_t GetFixed32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t GetFixed64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

/// Appends v as a LEB128 varint (1-10 bytes).
void PutVarint64(Bytes* dst, uint64_t v);

/// Reads a varint at *pos, advancing *pos. Returns false on truncation.
bool GetVarint64(const Bytes& src, size_t* pos, uint64_t* out);

/// ZigZag transform so small negative numbers stay small as varints.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Appends a length-prefixed string.
void PutLengthPrefixed(Bytes* dst, const std::string& s);

/// Reads a length-prefixed string at *pos. Returns false on truncation.
bool GetLengthPrefixed(const Bytes& src, size_t* pos, std::string* out);

}  // namespace sdw

#endif  // SDW_COMMON_BYTES_H_
