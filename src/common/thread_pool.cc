#include "common/thread_pool.h"

#include "obs/registry.h"

namespace sdw::common {

ThreadPool::ThreadPool(int num_threads) {
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  work_ready_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      work_ready_.Wait(mu_,
                       [this]() SDW_REQUIRES(mu_) {
                         return shutting_down_ || !queue_.empty();
                       });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

Status ThreadPool::ParallelFor(int n, const std::function<Status(int)>& fn) {
  if (n <= 0) return Status::OK();
  // Counted identically on the inline and fanned-out paths so serial
  // (pool_size=0) and pooled runs of a workload report the same value.
  static obs::Counter* tasks =
      obs::Registry::Global().counter("sdw_pool_tasks");
  tasks->Add(static_cast<uint64_t>(n));

  auto run_one = [&fn](int i) -> Status {
    try {
      return fn(i);
    } catch (const std::exception& e) {
      return Status::Internal(std::string("uncaught exception in pool task: ") +
                              e.what());
    } catch (...) {
      return Status::Internal("uncaught non-exception throw in pool task");
    }
  };

  // Serial fallback: no workers, or nothing to fan out.
  if (workers_.empty() || n == 1) {
    for (int i = 0; i < n; ++i) {
      SDW_RETURN_IF_ERROR(run_one(i));
    }
    return Status::OK();
  }

  // Per-call join state so concurrent ParallelFor callers sharing this
  // pool only wait for their own tasks.
  struct JoinState {
    Mutex mu{LockRank::kPoolJoin};
    CondVar done;
    int remaining SDW_GUARDED_BY(mu) = 0;
  };
  JoinState join;
  {
    MutexLock lock(join.mu);
    join.remaining = n;
  }
  std::vector<Status> statuses(static_cast<size_t>(n));

  {
    MutexLock lock(mu_);
    for (int i = 0; i < n; ++i) {
      queue_.push_back([&run_one, &join, &statuses, i] {
        Status s = run_one(i);
        MutexLock join_lock(join.mu);
        statuses[static_cast<size_t>(i)] = std::move(s);
        if (--join.remaining == 0) join.done.NotifyAll();
      });
    }
  }
  work_ready_.NotifyAll();

  {
    MutexLock lock(join.mu);
    join.done.Wait(join.mu, [&join]() SDW_REQUIRES(join.mu) {
      return join.remaining == 0;
    });
  }
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace sdw::common
