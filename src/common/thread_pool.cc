#include "common/thread_pool.h"

#include "obs/registry.h"

namespace sdw::common {

ThreadPool::ThreadPool(int num_threads) {
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock,
                       [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

Status ThreadPool::ParallelFor(int n, const std::function<Status(int)>& fn) {
  if (n <= 0) return Status::OK();
  // Counted identically on the inline and fanned-out paths so serial
  // (pool_size=0) and pooled runs of a workload report the same value.
  static obs::Counter* tasks = obs::Registry::Global().counter("pool.tasks");
  tasks->Add(static_cast<uint64_t>(n));

  auto run_one = [&fn](int i) -> Status {
    try {
      return fn(i);
    } catch (const std::exception& e) {
      return Status::Internal(std::string("uncaught exception in pool task: ") +
                              e.what());
    } catch (...) {
      return Status::Internal("uncaught non-exception throw in pool task");
    }
  };

  // Serial fallback: no workers, or nothing to fan out.
  if (workers_.empty() || n == 1) {
    for (int i = 0; i < n; ++i) {
      SDW_RETURN_IF_ERROR(run_one(i));
    }
    return Status::OK();
  }

  // Per-call join state so concurrent ParallelFor callers sharing this
  // pool only wait for their own tasks.
  struct JoinState {
    std::mutex mu;
    std::condition_variable done;
    int remaining;
  };
  JoinState join{.remaining = n};
  std::vector<Status> statuses(static_cast<size_t>(n));

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 0; i < n; ++i) {
      queue_.push_back([&run_one, &join, &statuses, i] {
        Status s = run_one(i);
        std::lock_guard<std::mutex> join_lock(join.mu);
        statuses[static_cast<size_t>(i)] = std::move(s);
        if (--join.remaining == 0) join.done.notify_all();
      });
    }
  }
  work_ready_.notify_all();

  {
    std::unique_lock<std::mutex> lock(join.mu);
    join.done.wait(lock, [&join] { return join.remaining == 0; });
  }
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace sdw::common
