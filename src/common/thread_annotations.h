#ifndef SDW_COMMON_THREAD_ANNOTATIONS_H_
#define SDW_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "common/lock_rank.h"

/// Clang thread-safety (capability) annotations for SimpleDW.
///
/// Every lock-protected member in the concurrent core is declared with
/// SDW_GUARDED_BY(mu_) and every function with a locking contract carries
/// SDW_REQUIRES / SDW_ACQUIRE / SDW_RELEASE / SDW_EXCLUDES, so a clang
/// build with -Werror=thread-safety (cmake -DSDW_THREAD_SAFETY=ON) proves
/// at compile time that no annotated member is touched without its lock
/// and no annotated lock is taken re-entrantly. Under GCC the macros
/// expand to nothing and the wrappers below compile to the plain
/// std::mutex code they replace.
///
/// Rules of the house (DESIGN.md §4f):
///  - protect members with SDW_GUARDED_BY, not comments;
///  - private helpers that assume the lock take SDW_REQUIRES(mu_);
///  - never hold a lock across user callbacks (observers, fault
///    handlers, triggers) — copy the callback out under the lock and
///    invoke it after release;
///  - SDW_NO_THREAD_SAFETY_ANALYSIS is a last resort and must carry a
///    why-comment at every use.

#if defined(__clang__)
#define SDW_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define SDW_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op outside clang
#endif

/// Declares a type to be a capability ("mutex") the analysis can track.
#define SDW_CAPABILITY(x) SDW_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define SDW_SCOPED_CAPABILITY \
  SDW_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Member is readable/writable only while holding `x`.
#define SDW_GUARDED_BY(x) SDW_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointee (not the pointer) is protected by `x`.
#define SDW_PT_GUARDED_BY(x) \
  SDW_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Caller must hold the capability (exclusively) to call this function.
#define SDW_REQUIRES(...) \
  SDW_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Caller must hold the capability at least shared.
#define SDW_REQUIRES_SHARED(...) \
  SDW_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability shared (reader side).
#define SDW_ACQUIRE_SHARED(...) \
  SDW_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// Function releases a shared hold of the capability.
#define SDW_RELEASE_SHARED(...) \
  SDW_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability and does not release it.
#define SDW_ACQUIRE(...) \
  SDW_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define SDW_RELEASE(...) \
  SDW_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `ret`.
#define SDW_TRY_ACQUIRE(...) \
  SDW_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock guard for functions
/// that take it themselves, or that invoke user callbacks).
#define SDW_EXCLUDES(...) \
  SDW_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define SDW_RETURN_CAPABILITY(x) \
  SDW_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Documented lock-order edge: this lock is acquired before `...`.
/// Clang accepts (but does not yet enforce) these, so they carry the
/// same-class edges of the hierarchy for the reader and the analyzer;
/// the *enforced* ordering — including every cross-class edge — is the
/// LockRank each mutex is constructed with (common/lock_rank.h), which
/// the runtime validator checks on every acquisition when enabled.
#define SDW_ACQUIRED_BEFORE(...) \
  SDW_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define SDW_ACQUIRED_AFTER(...) \
  SDW_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// Escape hatch: turns the analysis off for one function. Every use
/// MUST carry a why-comment on the preceding lines explaining why the
/// analysis cannot see the invariant (tools/lint.py rule
/// `bare-no-thread-safety-analysis` and tools/analyze.py both fail
/// uses without one).
#define SDW_NO_THREAD_SAFETY_ANALYSIS \
  SDW_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace sdw::common {

/// An annotated std::mutex. BasicLockable (lowercase lock/unlock) so a
/// CondVar can wait on it directly; use MutexLock for scopes.
///
/// Every mutex in the concurrent core is constructed with its LockRank
/// (common/lock_rank.h); when rank checks are enabled, lock() verifies
/// the acquisition respects the hierarchy before blocking, so a rank
/// inversion is reported (with both acquisition stacks) even on runs
/// where the interleaving never actually deadlocks. A default-ranked
/// (kUnranked) mutex is exempt — that is for test-local locks only.
class SDW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(LockRank rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SDW_ACQUIRE() {
    internal::OnLockAcquire(this, rank_, /*check_order=*/true);
    mu_.lock();
  }
  void unlock() SDW_RELEASE() {
    internal::OnLockRelease(this, rank_);
    mu_.unlock();
  }
  bool try_lock() SDW_TRY_ACQUIRE(true) {
    const bool acquired = mu_.try_lock();
    // A successful try_lock is recorded but not order-checked: it
    // cannot block, so it cannot deadlock — but later blocking
    // acquisitions must still see it on the held stack.
    if (acquired) internal::OnLockAcquire(this, rank_, /*check_order=*/false);
    return acquired;
  }

  LockRank rank() const { return rank_; }

 private:
  std::mutex mu_;
  const LockRank rank_ = LockRank::kUnranked;
};

/// RAII lock scope over a Mutex — the annotated replacement for
/// std::lock_guard / std::unique_lock in this codebase.
class SDW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SDW_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SDW_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait() takes the Mutex itself
/// (which the caller must hold — typically via a MutexLock on the same
/// mutex); the internal unlock/relock happens inside the standard
/// library and is invisible to (and safely ignored by) the analysis.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  void Wait(Mutex& mu) SDW_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) SDW_REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  /// Timed wait: returns the predicate's value when the wait ends
  /// (false = timed out with the predicate still unsatisfied). The
  /// relative duration keeps callers off named clocks — deadlines are
  /// the one place src/ may depend on real time passing (DESIGN.md §4f;
  /// measurement still goes through sim::Stopwatch).
  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout,
               Predicate pred) SDW_REQUIRES(mu) {
    return cv_.wait_for(mu, timeout, std::move(pred));
  }

 private:
  std::condition_variable_any cv_;
};

/// An annotated std::shared_mutex: many concurrent readers or one
/// writer. Use ReaderMutexLock / WriterMutexLock for scopes. Ranked
/// like Mutex; shared and exclusive acquisitions obey the same rank
/// (a reader holding data_mu_ nests inner locks exactly like a writer).
class SDW_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(LockRank rank) : rank_(rank) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() SDW_ACQUIRE() {
    internal::OnLockAcquire(this, rank_, /*check_order=*/true);
    mu_.lock();
  }
  void unlock() SDW_RELEASE() {
    internal::OnLockRelease(this, rank_);
    mu_.unlock();
  }
  void lock_shared() SDW_ACQUIRE_SHARED() {
    internal::OnLockAcquire(this, rank_, /*check_order=*/true);
    mu_.lock_shared();
  }
  void unlock_shared() SDW_RELEASE_SHARED() {
    internal::OnLockRelease(this, rank_);
    mu_.unlock_shared();
  }

  LockRank rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  const LockRank rank_ = LockRank::kUnranked;
};

/// RAII exclusive (writer) scope over a SharedMutex.
class SDW_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) SDW_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() SDW_RELEASE() { mu_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) scope over a SharedMutex.
class SDW_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) SDW_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() SDW_RELEASE() { mu_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace sdw::common

#endif  // SDW_COMMON_THREAD_ANNOTATIONS_H_
