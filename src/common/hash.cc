#include "common/hash.h"

#include <cstring>

namespace sdw {

namespace {

// Slicing-by-8 CRC32C tables (polynomial 0x82f63b78), generated at
// first use. Table k folds a byte that is k positions ahead.
struct Crc32cTables {
  uint32_t table[8][256];
  Crc32cTables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0);
      }
      table[0][i] = crc;
    }
    for (int k = 1; k < 8; ++k) {
      for (uint32_t i = 0; i < 256; ++i) {
        table[k][i] =
            (table[k - 1][i] >> 8) ^ table[0][table[k - 1][i] & 0xff];
      }
    }
  }
};

const Crc32cTables& GetCrcTables() {
  static const Crc32cTables& t = *new Crc32cTables();
  return t;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  const Crc32cTables& t = GetCrcTables();
  uint32_t crc = 0xffffffffu;
  // 8 bytes per iteration through the sliced tables.
  while (n >= 8) {
    uint32_t low;
    uint32_t high;
    std::memcpy(&low, p, 4);
    std::memcpy(&high, p + 4, 4);
    low ^= crc;
    crc = t.table[7][low & 0xff] ^ t.table[6][(low >> 8) & 0xff] ^
          t.table[5][(low >> 16) & 0xff] ^ t.table[4][low >> 24] ^
          t.table[3][high & 0xff] ^ t.table[2][(high >> 8) & 0xff] ^
          t.table[1][(high >> 16) & 0xff] ^ t.table[0][high >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ t.table[0][(crc ^ *p++) & 0xff];
  }
  return crc ^ 0xffffffffu;
}

uint64_t Hash64(uint64_t value) {
  uint64_t z = value + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Hash64(std::string_view value) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : value) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return Hash64(h);
}

}  // namespace sdw
