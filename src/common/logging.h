#ifndef SDW_COMMON_LOGGING_H_
#define SDW_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace sdw {

/// Log severity, ordered; messages below the global threshold are dropped.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the process-wide minimum severity that is emitted (default kWarning,
/// so tests and benches stay quiet unless something is wrong).
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

namespace internal_logging {

/// Stream-style log sink; emits on destruction, aborts for kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define SDW_LOG(level)                                                     \
  ::sdw::internal_logging::LogMessage(::sdw::LogLevel::k##level, __FILE__, \
                                      __LINE__)                            \
      .stream()

/// Invariant check: always on (benchmark correctness depends on it), aborts
/// with a location message on failure.
#define SDW_CHECK(cond)                                             \
  if (!(cond))                                                      \
  ::sdw::internal_logging::LogMessage(::sdw::LogLevel::kFatal,      \
                                      __FILE__, __LINE__)           \
          .stream()                                                 \
      << "Check failed: " #cond " "

#define SDW_CHECK_OK(expr)                                          \
  do {                                                              \
    ::sdw::Status _st_check = (expr);                               \
    SDW_CHECK(_st_check.ok()) << _st_check.ToString();              \
  } while (0)

#define SDW_DCHECK(cond) SDW_CHECK(cond)

}  // namespace sdw

#endif  // SDW_COMMON_LOGGING_H_
