#include "common/retry.h"

#include <algorithm>
#include <cmath>

#include "obs/registry.h"

namespace sdw::common {

namespace internal_retry {

void NoteAttempt() {
  static obs::Counter* attempts =
      obs::Registry::Global().counter("sdw_retry_attempts");
  attempts->Add();
}

}  // namespace internal_retry

void Retry::Backoff(int attempt) {
  static obs::Counter* retries =
      obs::Registry::Global().counter("sdw_retry_retries");
  static obs::Histogram* backoff_hist = obs::Registry::Global().histogram(
      "sdw_retry_backoff_seconds", {0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0});
  retries->Add();
  double base = policy_.initial_backoff_seconds *
                std::pow(policy_.backoff_multiplier, attempt - 1);
  base = std::min(base, policy_.max_backoff_seconds);
  const double jitter =
      1.0 + policy_.jitter_fraction * (2.0 * rng_.NextDouble() - 1.0);
  const double delay = base * jitter;
  backoff_seconds_ += delay;
  backoff_hist->Observe(delay);
  if (sleep_) sleep_(delay);
}

}  // namespace sdw::common
