#include "common/retry.h"

#include <algorithm>
#include <cmath>

namespace sdw::common {

void Retry::Backoff(int attempt) {
  double base = policy_.initial_backoff_seconds *
                std::pow(policy_.backoff_multiplier, attempt - 1);
  base = std::min(base, policy_.max_backoff_seconds);
  const double jitter =
      1.0 + policy_.jitter_fraction * (2.0 * rng_.NextDouble() - 1.0);
  const double delay = base * jitter;
  backoff_seconds_ += delay;
  if (sleep_) sleep_(delay);
}

}  // namespace sdw::common
