#ifndef SDW_COMMON_RETRY_H_
#define SDW_COMMON_RETRY_H_

#include <cstdint>
#include <functional>

#include "common/random.h"
#include "common/result.h"

namespace sdw::common {

namespace internal_retry {
/// Registry hooks (defined in retry.cc so the template stays light).
void NoteAttempt();
}  // namespace internal_retry

/// Bounded-retry knobs for transient failures (S3 throttling and
/// outages). Exponential backoff with seeded jitter: deterministic in
/// tests, decorrelated across callers in a fleet.
struct RetryPolicy {
  /// Total tries including the first (<=1 disables retry).
  int max_attempts = 4;
  double initial_backoff_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 2.0;
  /// Each backoff is scaled by a uniform factor in [1-j, 1+j].
  double jitter_fraction = 0.25;
  uint64_t seed = 0x6e77a1u;
};

/// Retries an operation on kUnavailable with exponential backoff.
/// Simulated-clock aware: the sleep function is injectable and the
/// default one only *accounts* the backoff (no real sleeping), so COPY
/// and Backup fold `backoff_seconds()` into their modeled time and
/// tests stay instant. Any error other than kUnavailable — and the
/// last kUnavailable once the attempt budget is spent — is returned
/// to the caller unchanged. Not thread-safe: use one instance per
/// thread or operation.
class Retry {
 public:
  using SleepFn = std::function<void(double seconds)>;

  explicit Retry(RetryPolicy policy = {}, SleepFn sleep = nullptr)
      : policy_(policy), sleep_(std::move(sleep)), rng_(policy.seed) {}

  template <typename T>
  Result<T> Call(const std::function<Result<T>()>& fn) {
    for (int attempt = 1;; ++attempt) {
      ++attempts_;
      internal_retry::NoteAttempt();
      Result<T> result = fn();
      if (result.ok() || !ShouldRetry(result.status(), attempt)) {
        return result;
      }
      Backoff(attempt);
    }
  }

  Status CallVoid(const std::function<Status()>& fn) {
    for (int attempt = 1;; ++attempt) {
      ++attempts_;
      internal_retry::NoteAttempt();
      Status status = fn();
      if (status.ok() || !ShouldRetry(status, attempt)) return status;
      Backoff(attempt);
    }
  }

  /// Operations attempted so far (across every Call on this instance).
  int attempts() const { return attempts_; }

  /// Total (virtual or real) seconds spent backing off.
  double backoff_seconds() const { return backoff_seconds_; }

 private:
  bool ShouldRetry(const Status& status, int attempt) const {
    return status.IsUnavailable() && attempt < policy_.max_attempts;
  }

  void Backoff(int attempt);

  RetryPolicy policy_;
  SleepFn sleep_;
  Rng rng_;
  int attempts_ = 0;
  double backoff_seconds_ = 0.0;
};

}  // namespace sdw::common

#endif  // SDW_COMMON_RETRY_H_
