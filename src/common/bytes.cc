#include "common/bytes.h"

namespace sdw {

void PutVarint64(Bytes* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  dst->push_back(static_cast<uint8_t>(v));
}

bool GetVarint64(const Bytes& src, size_t* pos, uint64_t* out) {
  uint64_t result = 0;
  int shift = 0;
  while (*pos < src.size() && shift <= 63) {
    uint8_t byte = src[*pos];
    ++(*pos);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

void PutLengthPrefixed(Bytes* dst, const std::string& s) {
  PutVarint64(dst, s.size());
  dst->insert(dst->end(), s.begin(), s.end());
}

bool GetLengthPrefixed(const Bytes& src, size_t* pos, std::string* out) {
  uint64_t len = 0;
  if (!GetVarint64(src, pos, &len)) return false;
  if (*pos + len > src.size()) return false;
  out->assign(reinterpret_cast<const char*>(src.data()) + *pos, len);
  *pos += len;
  return true;
}

}  // namespace sdw
