#include "common/units.h"

#include <cstdio>

namespace sdw {

namespace {
std::string FormatWithUnit(double value, const char* unit) {
  char buf[64];
  if (value >= 100) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", value, unit);
  } else if (value >= 10) {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, unit);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, unit);
  }
  return buf;
}
}  // namespace

std::string FormatBytes(uint64_t bytes) {
  double b = static_cast<double>(bytes);
  if (bytes >= kTiB) return FormatWithUnit(b / kTiB, "TiB");
  if (bytes >= kGiB) return FormatWithUnit(b / kGiB, "GiB");
  if (bytes >= kMiB) return FormatWithUnit(b / kMiB, "MiB");
  if (bytes >= kKiB) return FormatWithUnit(b / kKiB, "KiB");
  return FormatWithUnit(b, "B");
}

std::string FormatDuration(double seconds) {
  if (seconds >= kDay) return FormatWithUnit(seconds / kDay, "d");
  if (seconds >= kHour) return FormatWithUnit(seconds / kHour, "h");
  if (seconds >= kMinute) return FormatWithUnit(seconds / kMinute, "min");
  if (seconds >= 1.0) return FormatWithUnit(seconds, "s");
  if (seconds >= 1e-3) return FormatWithUnit(seconds * 1e3, "ms");
  return FormatWithUnit(seconds * 1e6, "us");
}

std::string FormatCount(double count) {
  if (count >= 1e12) return FormatWithUnit(count / 1e12, "T");
  if (count >= 1e9) return FormatWithUnit(count / 1e9, "B");
  if (count >= 1e6) return FormatWithUnit(count / 1e6, "M");
  if (count >= 1e3) return FormatWithUnit(count / 1e3, "k");
  return FormatWithUnit(count, "");
}

}  // namespace sdw
