#include "common/fault_injector.h"

#include <utility>

#include "common/hash.h"
#include "obs/registry.h"

namespace sdw::chaos {

FaultPoint::FaultPoint(std::string site, uint64_t seed)
    : site_(std::move(site)), rng_(seed) {}

void FaultPoint::set_seed(uint64_t seed) {
  common::MutexLock lock(mu_);
  rng_ = Rng(seed);
}

void FaultPoint::set_failure_rate(double p) {
  common::MutexLock lock(mu_);
  failure_rate_ = p;
}

void FaultPoint::FailNext(int n, StatusCode code) {
  common::MutexLock lock(mu_);
  fail_next_ = n;
  fail_code_ = code;
}

void FaultPoint::ArmTrigger(uint64_t at_call, std::function<void()> fn) {
  common::MutexLock lock(mu_);
  triggers_.push_back({at_call, std::move(fn)});
}

Status FaultPoint::OnCall() {
  static obs::Counter* calls =
      obs::Registry::Global().counter("sdw_chaos_calls");
  static obs::Counter* injected =
      obs::Registry::Global().counter("sdw_chaos_injected");
  calls->Add();
  std::vector<std::function<void()>> due;
  Status status = Status::OK();
  {
    common::MutexLock lock(mu_);
    ++calls_;
    for (size_t i = 0; i < triggers_.size();) {
      if (triggers_[i].at_call <= calls_) {
        due.push_back(std::move(triggers_[i].fn));
        triggers_.erase(triggers_.begin() + static_cast<long>(i));
      } else {
        ++i;
      }
    }
    if (fail_next_ > 0) {
      --fail_next_;
      ++injected_;
      status = Status(fail_code_, "injected fault at '" + site_ + "'");
    } else if (failure_rate_ > 0.0 && rng_.Bernoulli(failure_rate_)) {
      ++injected_;
      status =
          Status(fail_code_, "injected transient fault at '" + site_ + "'");
    }
  }
  if (!status.ok()) injected->Add();
  // Triggers run unlocked: they typically reach back into the system
  // (drop a node's blocks, flip another point) and must not deadlock.
  for (auto& fn : due) fn();
  return status;
}

uint64_t FaultPoint::calls() const {
  common::MutexLock lock(mu_);
  return calls_;
}

uint64_t FaultPoint::injected() const {
  common::MutexLock lock(mu_);
  return injected_;
}

void FaultPoint::Reset() {
  common::MutexLock lock(mu_);
  failure_rate_ = 0.0;
  fail_next_ = 0;
  fail_code_ = StatusCode::kUnavailable;
  calls_ = 0;
  injected_ = 0;
  triggers_.clear();
}

void CrashController::ArmCrash(const std::string& site) {
  common::MutexLock lock(mu_);
  armed_ = site;
}

Status CrashController::AtSite(const std::string& site) {
  static obs::Counter* crashes =
      obs::Registry::Global().counter("sdw_chaos_crashes");
  common::MutexLock lock(mu_);
  if (crashed_) {
    return Status::Aborted("process is down (crashed at '" + crash_site_ +
                           "')");
  }
  if (!armed_.empty() && armed_ == site) {
    crashed_ = true;
    crash_site_ = site;
    armed_.clear();
    crashes->Add();
    return Status::Aborted("crash injected at '" + site + "'");
  }
  return Status::OK();
}

bool CrashController::CrashNow(const std::string& site) {
  static obs::Counter* crashes =
      obs::Registry::Global().counter("sdw_chaos_crashes");
  common::MutexLock lock(mu_);
  if (crashed_ || armed_.empty() || armed_ != site) return false;
  crashed_ = true;
  crash_site_ = site;
  armed_.clear();
  crashes->Add();
  return true;
}

Status CrashController::Down() const {
  common::MutexLock lock(mu_);
  if (!crashed_) return Status::OK();
  return Status::Aborted("process is down (crashed at '" + crash_site_ +
                         "')");
}

bool CrashController::crashed() const {
  common::MutexLock lock(mu_);
  return crashed_;
}

std::string CrashController::crash_site() const {
  common::MutexLock lock(mu_);
  return crash_site_;
}

void CrashController::Reset() {
  common::MutexLock lock(mu_);
  armed_.clear();
  crash_site_.clear();
  crashed_ = false;
}

FaultInjector::FaultInjector(uint64_t seed) : seed_(seed) {}

FaultPoint* FaultInjector::point(const std::string& site) {
  common::MutexLock lock(mu_);
  auto it = points_.find(site);
  if (it == points_.end()) {
    const uint64_t point_seed = seed_ ^ Hash64(std::string_view(site));
    it = points_
             .emplace(site, std::make_unique<FaultPoint>(site, point_seed))
             .first;
  }
  return it->second.get();
}

std::vector<std::string> FaultInjector::sites() const {
  common::MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(points_.size());
  for (const auto& [site, _] : points_) out.push_back(site);
  return out;
}

}  // namespace sdw::chaos
