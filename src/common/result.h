#ifndef SDW_COMMON_RESULT_H_
#define SDW_COMMON_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "common/status.h"

namespace sdw {

/// Result<T> holds either a value of type T or a non-OK Status,
/// mirroring arrow::Result / absl::StatusOr. Accessing the value of an
/// errored Result aborts the process (we do not use exceptions).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value and from Status so call sites read naturally:
  ///   Result<int> F() { if (bad) return Status::InvalidArgument("..."); return 42; }
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      // An OK status carries no value; this is a programming error.
      std::abort();
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the contained status; OK when a value is present.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    if (!ok()) std::abort();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    if (!ok()) std::abort();
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    if (!ok()) std::abort();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error Status out of the enclosing function.
#define SDW_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  SDW_ASSIGN_OR_RETURN_IMPL_(                                 \
      SDW_RESULT_CONCAT_(_sdw_result_, __LINE__), lhs, rexpr)

#define SDW_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueOrDie()

#define SDW_RESULT_CONCAT_(a, b) SDW_RESULT_CONCAT_2_(a, b)
#define SDW_RESULT_CONCAT_2_(a, b) a##b

}  // namespace sdw

#endif  // SDW_COMMON_RESULT_H_
