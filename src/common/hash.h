#ifndef SDW_COMMON_HASH_H_
#define SDW_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sdw {

/// CRC32C (Castagnoli) over a byte range; used as the block checksum,
/// matching the storage-engine convention of RocksDB/Redshift blocks.
uint32_t Crc32c(const void* data, size_t n);

/// 64-bit mix hash (splitmix64 finalizer). Fast, good avalanche; used for
/// hash distribution of rows across slices and for hash-join tables.
uint64_t Hash64(uint64_t value);

/// FNV-1a based string hash finished with the 64-bit mixer.
uint64_t Hash64(std::string_view value);

/// Combines two hashes (boost::hash_combine style, 64-bit constants).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ull + (a << 12) + (a >> 4));
}

}  // namespace sdw

#endif  // SDW_COMMON_HASH_H_
