#include "common/lock_rank.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define SDW_LOCK_RANK_HAVE_BACKTRACE 1
#endif
#endif

namespace sdw::common {

namespace {

std::atomic<bool> g_checks_enabled{[] {
  const char* env = std::getenv("SDW_LOCK_RANK_CHECKS");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}()};

std::atomic<LockRankViolationHandler> g_handler{nullptr};

constexpr int kMaxFrames = 24;

/// One ranked lock the thread currently holds, with the stack that
/// acquired it so a violation report can show both sides.
struct HeldLock {
  const void* mutex = nullptr;
  LockRank rank = LockRank::kUnranked;
  void* frames[kMaxFrames];
  int num_frames = 0;
};

/// The per-thread stack of held ranked locks. A plain vector: depth is
/// bounded by the hierarchy (< 16 in practice) and only the owning
/// thread ever touches it.
thread_local std::vector<HeldLock> t_held;

void CaptureStack(HeldLock* held) {
#if SDW_LOCK_RANK_HAVE_BACKTRACE
  held->num_frames = backtrace(held->frames, kMaxFrames);
#else
  held->num_frames = 0;
#endif
}

void AppendStack(std::ostringstream* out, void* const* frames,
                 int num_frames) {
#if SDW_LOCK_RANK_HAVE_BACKTRACE
  if (num_frames <= 0) {
    *out << "    (no stack captured)\n";
    return;
  }
  char** symbols = backtrace_symbols(frames, num_frames);
  for (int i = 0; i < num_frames; ++i) {
    *out << "    #" << i << ' '
         << (symbols != nullptr ? symbols[i] : "(unknown)") << '\n';
  }
  free(symbols);  // backtrace_symbols mallocs one block
#else
  (void)frames;
  (void)num_frames;
  *out << "    (backtrace unavailable on this platform)\n";
#endif
}

void DefaultHandler(const LockRankViolation& violation) {
  std::fputs(violation.report.c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kUnranked: return "kUnranked";
    case LockRank::kWorkloadReplay: return "kWorkloadReplay";
    case LockRank::kWarehouseWriter: return "kWarehouseWriter";
    case LockRank::kWarehouseData: return "kWarehouseData";
    case LockRank::kWarehouseVersions: return "kWarehouseVersions";
    case LockRank::kQueryCache: return "kQueryCache";
    case LockRank::kCatalog: return "kCatalog";
    case LockRank::kShardDecodeCache: return "kShardDecodeCache";
    case LockRank::kClusterRouting: return "kClusterRouting";
    case LockRank::kComputeNode: return "kComputeNode";
    case LockRank::kShardHead: return "kShardHead";
    case LockRank::kReplication: return "kReplication";
    case LockRank::kBlockStore: return "kBlockStore";
    case LockRank::kCommitLog: return "kCommitLog";
    case LockRank::kS3Directory: return "kS3Directory";
    case LockRank::kS3Region: return "kS3Region";
    case LockRank::kKeychain: return "kKeychain";
    case LockRank::kWlmAdmission: return "kWlmAdmission";
    case LockRank::kQueryLog: return "kQueryLog";
    case LockRank::kEventLog: return "kEventLog";
    case LockRank::kScanLog: return "kScanLog";
    case LockRank::kAlertLog: return "kAlertLog";
    case LockRank::kGaugeHistory: return "kGaugeHistory";
    case LockRank::kInflightRegistry: return "kInflightRegistry";
    case LockRank::kPoolJoin: return "kPoolJoin";
    case LockRank::kThreadPool: return "kThreadPool";
    case LockRank::kFaultInjector: return "kFaultInjector";
    case LockRank::kFaultPoint: return "kFaultPoint";
    case LockRank::kCrashController: return "kCrashController";
    case LockRank::kMetricsRegistry: return "kMetricsRegistry";
  }
  return "(unknown rank)";
}

void EnableLockRankChecks(bool enabled) {
  g_checks_enabled.store(enabled, std::memory_order_relaxed);
}

bool LockRankChecksEnabled() {
  return g_checks_enabled.load(std::memory_order_relaxed);
}

LockRankViolationHandler SetLockRankViolationHandler(
    LockRankViolationHandler handler) {
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

namespace internal {

void OnLockAcquire(const void* mutex, LockRank rank, bool check_order) {
  if (rank == LockRank::kUnranked) return;
  if (!LockRankChecksEnabled()) return;
  const HeldLock* blocking = nullptr;
  if (check_order) {
    for (const HeldLock& held : t_held) {
      // Strict ordering: equal ranks never nest either (two locks of
      // the same layer held together is an ABBA hazard between
      // instances — e.g. two BlockStores).
      if (held.rank >= rank &&
          (blocking == nullptr || held.rank >= blocking->rank)) {
        blocking = &held;
      }
    }
  }
  if (blocking != nullptr) {
    LockRankViolation violation;
    violation.acquired = rank;
    violation.held = blocking->rank;
    std::ostringstream report;
    report << "lock-rank violation: acquiring " << LockRankName(rank) << " ("
           << static_cast<int>(rank) << ") at " << mutex << " while holding "
           << LockRankName(blocking->rank) << " ("
           << static_cast<int>(blocking->rank) << ") at " << blocking->mutex
           << "\n  stack acquiring " << LockRankName(rank) << ":\n";
    HeldLock here;
    CaptureStack(&here);
    AppendStack(&report, here.frames, here.num_frames);
    report << "  stack that acquired the held " << LockRankName(blocking->rank)
           << ":\n";
    AppendStack(&report, blocking->frames, blocking->num_frames);
    violation.report = report.str();
    LockRankViolationHandler handler =
        g_handler.load(std::memory_order_acquire);
    (handler != nullptr ? handler : DefaultHandler)(violation);
    // A non-aborting handler (report mode) falls through: the
    // acquisition is still recorded so one inversion doesn't cascade
    // into bogus release mismatches.
  }
  HeldLock held;
  held.mutex = mutex;
  held.rank = rank;
  CaptureStack(&held);
  t_held.push_back(held);
}

void OnLockRelease(const void* mutex, LockRank rank) {
  if (rank == LockRank::kUnranked) return;
  if (t_held.empty()) return;  // checks were enabled mid-hold
  // Usually the top of the stack (RAII scopes unwind in order); search
  // backwards for out-of-order manual unlocks and CondVar relocks.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mutex == mutex) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

int HeldRankedLocks() { return static_cast<int>(t_held.size()); }

}  // namespace internal

}  // namespace sdw::common
