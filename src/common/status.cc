#include "common/status.h"

namespace sdw {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace sdw
