#include "common/logging.h"

#include <atomic>

#include "obs/registry.h"

namespace sdw {

namespace {
// Atomic so the slice pool can flip verbosity while workers are logging.
std::atomic<LogLevel> g_threshold{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogThreshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}
LogLevel GetLogThreshold() {
  return g_threshold.load(std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Virtual-clock tick (monotonic logical time, not wall clock) so log
  // lines order deterministically across threads in tests.
  stream_ << "[t=" << obs::NextLogTick() << " sev=" << LevelName(level) << " "
          << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogThreshold() || level_ == LogLevel::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace sdw
