#include "common/random.h"

#include <cmath>

namespace sdw {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::Exponential(double mean) {
  double u = NextDouble();
  if (u <= 0.0) u = 1e-300;
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 1e-300;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return mean + stddev * z;
}

uint64_t Rng::Zipf(uint64_t n, double theta) {
  if (n <= 1) return 0;
  if (theta <= 0.0) return Uniform(n);
  // Approximate inverse-CDF sampling of a Zipf(theta) over [1, n]:
  // the CDF of the continuous analogue x^(1-theta) is invertible in
  // closed form; this keeps sampling O(1) without a precomputed table.
  const double alpha = 1.0 - theta;
  if (std::abs(alpha) < 1e-9) {
    // theta == 1: density 1/x, CDF log(x)/log(n).
    double u = NextDouble();
    double x = std::exp(u * std::log(static_cast<double>(n)));
    uint64_t v = static_cast<uint64_t>(x);
    return v >= n ? n - 1 : v;
  }
  double u = NextDouble();
  double x = std::pow(
      u * (std::pow(static_cast<double>(n), alpha) - 1.0) + 1.0, 1.0 / alpha);
  uint64_t v = static_cast<uint64_t>(x) - 1;
  return v >= n ? n - 1 : v;
}

double Rng::Pareto(double scale, double alpha) {
  double u = NextDouble();
  if (u <= 0.0) u = 1e-300;
  return scale * (std::pow(u, -1.0 / alpha) - 1.0);
}

std::string Rng::NextString(size_t length) {
  std::string s(length, 'a');
  for (auto& c : s) c = static_cast<char>('a' + Uniform(26));
  return s;
}

}  // namespace sdw
