#include "workload/synth.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <tuple>
#include <unordered_set>

#include "common/hash.h"
#include "common/random.h"

namespace sdw::workload {

namespace {

/// SplitMix64 finalizer — decorrelates per-purpose Rng streams derived
/// from one user-facing seed, so adding a session (or reordering the
/// generation loops) never perturbs any other stream.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

Rng StreamRng(uint64_t seed, uint64_t stream) {
  return Rng(Mix(seed ^ Mix(stream)));
}

std::string FormatSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", s);
  return buf;
}

/// The fixed dashboard query pool. Literals are frozen here, so every
/// later draw of template i is the byte-identical statement — the
/// repeats the result cache (and the repeat-rate test) feed on. Each
/// template folds its index into a literal, so all pool entries are
/// distinct texts (distinct fingerprints) by construction.
std::vector<std::string> BuildDashboardTemplates(const SynthConfig& config) {
  Rng rng = StreamRng(config.seed, /*stream=*/1);
  std::vector<std::string> templates;
  templates.reserve(static_cast<size_t>(config.dashboard_templates));
  for (int i = 0; i < config.dashboard_templates; ++i) {
    switch (i % 3) {
      case 0: {
        int64_t lo = rng.UniformRange(0, 400000);
        int64_t hi = lo + rng.UniformRange(100000, 400000);
        templates.push_back(
            "SELECT k, COUNT(*) AS n, SUM(v) AS sv FROM sales WHERE v BETWEEN " +
            std::to_string(lo) + " AND " + std::to_string(hi) +
            " GROUP BY k ORDER BY k LIMIT " + std::to_string(20 + i));
        break;
      }
      case 1: {
        int64_t x = rng.UniformRange(0, 50);
        templates.push_back(
            "SELECT k, SUM(v) AS total FROM sales WHERE k >= " +
            std::to_string(x) + " GROUP BY k ORDER BY total DESC LIMIT " +
            std::to_string(5 + i));
        break;
      }
      default: {
        int64_t x = 100000 + 1000 * static_cast<int64_t>(i) +
                    rng.UniformRange(0, 999);
        templates.push_back("SELECT COUNT(*) AS n FROM sales WHERE v > " +
                            std::to_string(x));
        break;
      }
    }
  }
  return templates;
}

/// CREATE + chunked INSERTs + ANALYZE for one base table.
void EmitTableSetup(const std::string& table, uint64_t rows, Rng* rng,
                    std::vector<std::string>* setup) {
  setup->push_back("CREATE TABLE " + table +
                   " (k BIGINT, v BIGINT) DISTKEY(k) SORTKEY(k)");
  constexpr uint64_t kChunk = 512;
  for (uint64_t done = 0; done < rows; done += kChunk) {
    uint64_t n = std::min(kChunk, rows - done);
    std::string insert = "INSERT INTO " + table + " VALUES ";
    for (uint64_t r = 0; r < n; ++r) {
      if (r) insert += ", ";
      insert += "(" + std::to_string(rng->UniformRange(0, 100)) + ", " +
                std::to_string(rng->UniformRange(0, 1000000)) + ")";
    }
    setup->push_back(std::move(insert));
  }
  setup->push_back("ANALYZE " + table);
}

struct RawStatement {
  double at = 0;
  int session = 0;
  int seq = 0;  // per-session emission order (total-order tiebreak)
  std::string klass;
  std::string sql;
};

}  // namespace

Trace Synthesize(const SynthConfig& config) {
  Trace trace;
  trace.config = config;

  // Base data: one stream for all setup rows (stream 0).
  Rng setup_rng = StreamRng(config.seed, /*stream=*/0);
  EmitTableSetup("sales", config.sales_rows, &setup_rng, &trace.setup_sql);
  EmitTableSetup("events", config.events_rows, &setup_rng, &trace.setup_sql);
  trace.setup_sql.push_back(
      "CREATE TABLE etl_events (k BIGINT, v BIGINT) DISTKEY(k) SORTKEY(k)");

  const std::vector<std::string> templates = BuildDashboardTemplates(config);

  std::vector<RawStatement> raw;
  int next_session = 0;
  // Streams 2.. are per-session: stream id = 2 + session index, so the
  // mix knobs (how many of each class) never shift another session's
  // randomness.
  auto session_rng = [&config](int session) {
    return StreamRng(config.seed, 2 + static_cast<uint64_t>(session));
  };

  // Dashboards: exponential think times over the skewed template pool.
  for (int d = 0; d < config.dashboard_sessions; ++d) {
    const int session = next_session++;
    trace.sessions.push_back({session, "dashboard", "dashboard"});
    Rng rng = session_rng(session);
    int seq = 0;
    double t = rng.Exponential(config.dashboard_think_seconds);
    while (t < config.duration_seconds && !templates.empty()) {
      size_t pick = static_cast<size_t>(
          rng.Zipf(templates.size(), config.dashboard_zipf_theta));
      raw.push_back({t, session, seq++, "dashboard", templates[pick]});
      t += rng.Exponential(config.dashboard_think_seconds);
    }
  }

  // ETL: bursts of staged files, one COPY per burst over the burst's
  // whole prefix. Fixture bytes come from the same per-session stream,
  // in emission order, so the staged data is as reproducible as the
  // statements that load it.
  for (int e = 0; e < config.etl_sessions; ++e) {
    const int session = next_session++;
    trace.sessions.push_back({session, "etl", "etl"});
    Rng rng = session_rng(session);
    int seq = 0;
    int burst = 0;
    double t = rng.Exponential(config.etl_burst_interval_seconds);
    while (t < config.duration_seconds) {
      const std::string prefix = "workload/etl/s" + std::to_string(session) +
                                 "-b" + std::to_string(burst) + "/";
      for (int f = 0; f < config.etl_files_per_burst; ++f) {
        Fixture fixture;
        fixture.key = prefix + "part-" + std::to_string(f);
        for (int r = 0; r < config.etl_rows_per_file; ++r) {
          fixture.csv += std::to_string(rng.UniformRange(0, 100)) + "," +
                         std::to_string(rng.UniformRange(0, 1000000)) + "\n";
        }
        trace.fixtures.push_back(std::move(fixture));
      }
      raw.push_back({t, session, seq++, "etl",
                     "COPY etl_events FROM 's3://" + prefix + "' FORMAT CSV"});
      ++burst;
      t += rng.Exponential(config.etl_burst_interval_seconds);
    }
  }

  // Ad-hoc analysts: heavy scans over the big table with fresh literals
  // every time — no cache help, honestly expensive under the cost model.
  for (int a = 0; a < config.adhoc_sessions; ++a) {
    const int session = next_session++;
    trace.sessions.push_back({session, "adhoc", "analyst"});
    Rng rng = session_rng(session);
    int seq = 0;
    double t = rng.Exponential(config.adhoc_think_seconds);
    while (t < config.duration_seconds) {
      int64_t lo = rng.UniformRange(0, 800000);
      int64_t hi = lo + rng.UniformRange(50000, 200000);
      raw.push_back(
          {t, session, seq++, "adhoc",
           "SELECT k, COUNT(*) AS n, SUM(v) AS sv FROM events WHERE v BETWEEN " +
               std::to_string(lo) + " AND " + std::to_string(hi) +
               " GROUP BY k ORDER BY sv DESC LIMIT 10"});
      t += rng.Exponential(config.adhoc_think_seconds);
    }
  }

  // Merge into one totally ordered stream: by arrival, ties broken by
  // (session, per-session seq) so equal timestamps still sort stably.
  std::sort(raw.begin(), raw.end(),
            [](const RawStatement& a, const RawStatement& b) {
              return std::tie(a.at, a.session, a.seq) <
                     std::tie(b.at, b.session, b.seq);
            });

  std::unordered_set<uint64_t> seen;
  trace.statements.reserve(raw.size());
  for (RawStatement& r : raw) {
    TimedStatement ts;
    ts.at_seconds = r.at;
    ts.session = r.session;
    ts.klass = std::move(r.klass);
    ts.fingerprint = Hash64(std::string_view(r.sql));
    ts.repeat = !seen.insert(ts.fingerprint).second;
    ts.sql = std::move(r.sql);
    ++trace.stats.statements;
    if (ts.repeat) ++trace.stats.repeats;
    ++trace.stats.by_class[ts.klass];
    trace.statements.push_back(std::move(ts));
  }
  return trace;
}

std::string TraceToScript(const Trace& trace) {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "# workload trace seed=%" PRIu64
                " duration=%s statements=%d repeats=%d\n",
                trace.config.seed,
                FormatSeconds(trace.config.duration_seconds).c_str(),
                trace.stats.statements, trace.stats.repeats);
  out += buf;
  for (const SessionSpec& s : trace.sessions) {
    out += "session " + std::to_string(s.index) + " " + s.klass + " group=" +
           s.user_group + "\n";
  }
  for (const std::string& sql : trace.setup_sql) {
    out += "setup " + sql + "\n";
  }
  for (const Fixture& f : trace.fixtures) {
    std::snprintf(buf, sizeof(buf), " bytes=%zu hash=%016" PRIx64 "\n",
                  f.csv.size(), Hash64(std::string_view(f.csv)));
    out += "fixture " + f.key + buf;
  }
  for (const TimedStatement& ts : trace.statements) {
    out += "@" + FormatSeconds(ts.at_seconds) + " s" +
           std::to_string(ts.session) + " " + ts.klass +
           (ts.repeat ? " repeat " : " ") + ts.sql + "\n";
  }
  return out;
}

}  // namespace sdw::workload
