#include "workload/replay.h"

#include <algorithm>
#include <chrono>
#include <deque>

#include "backup/s3sim.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "sim/stopwatch.h"

namespace sdw::workload {

namespace {

/// One statement's measured outcome; slot-per-statement, written by
/// exactly one worker, read only after the pool joins.
struct Outcome {
  double latency_seconds = 0;
  bool error = false;
  bool timeout = false;
  bool cache_hit = false;
};

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

std::string RenderOutput(const Result<warehouse::StatementResult>& r) {
  if (!r.ok()) return "ERROR " + r.status().message();
  return r->rows.num_columns() > 0 ? r->ToTable(100000) : r->message;
}

}  // namespace

Status Replayer::Provision(const Trace& trace) {
  backup::S3Region* region = warehouse_->s3()->region(options_.region);
  for (const Fixture& f : trace.fixtures) {
    // Staged ingest input under the dedicated workload/ bucket — client
    // data the trace's own COPY statements consume, never the backup or
    // commit-log prefixes, so the recovery chain cannot be clobbered.
    SDW_RETURN_IF_ERROR(region->PutObject(  // lint:allow(s3-writes)
        f.key, Bytes(f.csv.begin(), f.csv.end())));
  }
  for (const std::string& sql : trace.setup_sql) {
    auto r = warehouse_->Execute(sql);
    if (!r.ok()) return r.status();
  }
  return Status::OK();
}

Result<ReplayResult> Replayer::Replay(const Trace& trace) {
  const int n = static_cast<int>(trace.statements.size());
  ReplayResult result;
  if (options_.capture_results) result.outputs.resize(n);
  if (n == 0) return result;

  std::vector<warehouse::Warehouse::Session> sessions;
  sessions.reserve(trace.sessions.size());
  for (const SessionSpec& spec : trace.sessions) {
    sessions.push_back(warehouse_->CreateSession(spec.user_group));
  }
  for (const TimedStatement& ts : trace.statements) {
    if (ts.session < 0 || ts.session >= static_cast<int>(sessions.size())) {
      return Status::InvalidArgument("trace statement references session " +
                                     std::to_string(ts.session) +
                                     " but the trace declares only " +
                                     std::to_string(sessions.size()));
    }
  }

  std::vector<Outcome> outcomes(n);
  /// Dispatch timestamps on the shared replay clock; written by the
  /// dispatcher before the index is published, read by the worker that
  /// pops it (the queue mutex orders the two).
  std::vector<double> dispatched(n, 0);
  sim::Stopwatch clock;

  auto execute_one = [&](int i) {
    const TimedStatement& ts = trace.statements[i];
    auto r = sessions[ts.session].Execute(ts.sql);
    Outcome& o = outcomes[i];
    o.latency_seconds = clock.Seconds() - dispatched[i];
    if (!r.ok()) {
      o.error = true;
      o.timeout = r.status().code() == StatusCode::kDeadlineExceeded;
    } else {
      o.cache_hit = r->from_result_cache;
    }
    if (options_.capture_results) result.outputs[i] = RenderOutput(r);
  };

  if (options_.workers <= 0) {
    // Reference arm: exact trace order, one statement at a time. Pacing
    // still applies (a paced serial replay is a valid baseline), via
    // the same timed-wait primitive the concurrent dispatcher uses.
    common::Mutex mu(common::LockRank::kWorkloadReplay);
    common::CondVar idle;
    for (int i = 0; i < n; ++i) {
      if (options_.time_scale > 0) {
        const double due = trace.statements[i].at_seconds / options_.time_scale;
        common::MutexLock lock(mu);
        while (clock.Seconds() < due) {
          idle.WaitFor(mu, std::chrono::duration<double>(due - clock.Seconds()),
                       [] { return false; });
        }
      }
      dispatched[i] = clock.Seconds();
      execute_one(i);
    }
  } else {
    // Concurrent arm: task 0 is the pacing dispatcher, tasks 1..workers
    // are client threads draining the ready queue. The queue mutex is
    // kWorkloadReplay — ranked below every warehouse lock, and never
    // held across Execute(), so the harness can never participate in a
    // warehouse deadlock cycle.
    common::Mutex mu(common::LockRank::kWorkloadReplay);
    common::CondVar cv;
    std::deque<int> ready;
    bool done = false;

    common::ThreadPool pool(options_.workers + 1);
    Status pool_status = pool.ParallelFor(
        options_.workers + 1, [&](int task) -> Status {
          if (task == 0) {
            for (int i = 0; i < n; ++i) {
              if (options_.time_scale > 0) {
                const double due =
                    trace.statements[i].at_seconds / options_.time_scale;
                common::MutexLock lock(mu);
                while (clock.Seconds() < due) {
                  cv.WaitFor(mu,
                             std::chrono::duration<double>(due -
                                                           clock.Seconds()),
                             [] { return false; });
                }
              }
              {
                common::MutexLock lock(mu);
                dispatched[i] = clock.Seconds();
                ready.push_back(i);
              }
              cv.NotifyAll();
            }
            {
              common::MutexLock lock(mu);
              done = true;
            }
            cv.NotifyAll();
            return Status::OK();
          }
          for (;;) {
            int index = -1;
            {
              common::MutexLock lock(mu);
              cv.Wait(mu, [&] { return !ready.empty() || done; });
              if (ready.empty()) return Status::OK();
              index = ready.front();
              ready.pop_front();
            }
            execute_one(index);
          }
        });
    if (!pool_status.ok()) return pool_status;
  }

  // Fold the per-statement slots into per-class aggregates.
  std::map<std::string, std::vector<double>> latencies;
  for (int i = 0; i < n; ++i) {
    const TimedStatement& ts = trace.statements[i];
    const Outcome& o = outcomes[i];
    ClassStats& cs = result.by_class[ts.klass];
    ++cs.statements;
    if (o.error) {
      ++cs.errors;
      ++result.errors;
    }
    if (o.timeout) {
      ++cs.timeouts;
      ++result.timeouts;
    }
    if (o.cache_hit) ++cs.cache_hits;
    latencies[ts.klass].push_back(o.latency_seconds);
  }
  for (auto& [klass, lats] : latencies) {
    std::sort(lats.begin(), lats.end());
    ClassStats& cs = result.by_class[klass];
    double sum = 0;
    for (double l : lats) sum += l;
    cs.mean_seconds = sum / static_cast<double>(lats.size());
    cs.p50_seconds = Percentile(lats, 0.50);
    cs.p99_seconds = Percentile(lats, 0.99);
    cs.max_seconds = lats.back();
  }
  return result;
}

}  // namespace sdw::workload
