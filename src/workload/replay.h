#ifndef SDW_WORKLOAD_REPLAY_H_
#define SDW_WORKLOAD_REPLAY_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "warehouse/warehouse.h"
#include "workload/synth.h"

namespace sdw::workload {

struct ReplayOptions {
  /// Concurrent client threads. 0 replays serially on the calling
  /// thread, in exact trace order — the reference arm the differential
  /// tests compare concurrent replays against.
  int workers = 0;
  /// Trace seconds per real second (a pacing speedup factor): the
  /// dispatcher releases a statement stamped @t at real time
  /// t / time_scale. <= 0 releases everything immediately (closed-loop
  /// saturation — the benches' stress mode).
  double time_scale = 0;
  /// Capture each statement's rendered output (trace order) for
  /// byte-identity comparisons. Off by default: rendering large result
  /// sets distorts latency runs.
  bool capture_results = false;
  /// Region the COPY fixtures are staged in.
  std::string region = "us-east-1";
};

/// Per-class latency/outcome aggregate over one replay.
struct ClassStats {
  int statements = 0;
  int errors = 0;    // failed statements (timeouts included)
  int timeouts = 0;  // WLM queue-timeout cancellations specifically
  int cache_hits = 0;
  double mean_seconds = 0;
  double p50_seconds = 0;
  double p99_seconds = 0;
  double max_seconds = 0;
};

struct ReplayResult {
  std::map<std::string, ClassStats> by_class;
  /// Rendered per-statement outputs in trace order; empty unless
  /// ReplayOptions::capture_results.
  std::vector<std::string> outputs;
  int errors = 0;
  int timeouts = 0;
};

/// Drives a synthesized Trace against a live Warehouse: Provision()
/// stages the COPY fixtures and runs the setup script serially, then
/// Replay() opens one session per SessionSpec and plays the timed
/// statement stream — serially, or from a worker pool fed by a pacing
/// dispatcher. Latency is measured dispatch-to-completion, so queue
/// time inside the WLM counts (that is the thing the A18 bench is
/// about).
class Replayer {
 public:
  explicit Replayer(warehouse::Warehouse* warehouse, ReplayOptions options = {})
      : warehouse_(warehouse), options_(options) {}

  /// Uploads the staged fixtures and executes the setup SQL, in order,
  /// on the calling thread. Run once per warehouse before Replay().
  Status Provision(const Trace& trace);

  /// Plays the trace. Statement-level failures do not abort the replay
  /// — they are counted per class (a timed-out query is an outcome,
  /// not a harness error); only harness-level failures (e.g. a session
  /// pool that cannot start) surface as a non-OK status.
  Result<ReplayResult> Replay(const Trace& trace);

 private:
  warehouse::Warehouse* warehouse_;
  ReplayOptions options_;
};

}  // namespace sdw::workload

#endif  // SDW_WORKLOAD_REPLAY_H_
