#ifndef SDW_WORKLOAD_SYNTH_H_
#define SDW_WORKLOAD_SYNTH_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sdw::workload {

/// Knobs for the trace synthesizer. The defaults describe a small but
/// shape-faithful serving mix: many chatty dashboard sessions hammering
/// a small table with a skewed set of repeated queries (result-cache
/// territory), a couple of ETL sessions COPYing bursts of staged files,
/// and a couple of ad-hoc analysts running heavy one-off scans over a
/// large table. Everything downstream of the seed is deterministic.
struct SynthConfig {
  uint64_t seed = 42;
  /// Virtual trace horizon: arrival timestamps land in [0, duration).
  double duration_seconds = 1.0;

  // ---- dashboard sessions ("dashboard" user group) ----
  int dashboard_sessions = 8;
  /// Mean exponential think time between a session's queries.
  double dashboard_think_seconds = 0.02;
  /// Size of the global template pool dashboards draw from. Templates
  /// are fixed SQL texts (literals frozen at synthesis), so two picks
  /// of the same template are byte-identical statements — the repeats
  /// that make result caches earn their keep.
  int dashboard_templates = 12;
  /// Zipf exponent of template popularity (0 = uniform; higher = a few
  /// hot dashboards dominate, like real fleets).
  double dashboard_zipf_theta = 0.9;

  // ---- ETL sessions ("etl" user group) ----
  int etl_sessions = 2;
  /// Mean exponential gap between one session's COPY bursts.
  double etl_burst_interval_seconds = 0.25;
  /// Staged files per burst (one COPY ingests the whole prefix).
  int etl_files_per_burst = 3;
  int etl_rows_per_file = 200;

  // ---- ad-hoc sessions ("analyst" user group) ----
  int adhoc_sessions = 2;
  double adhoc_think_seconds = 0.1;

  // ---- base data the setup script materializes ----
  /// Small dashboard fact table (estimates stay under any sane SQA
  /// threshold).
  uint64_t sales_rows = 512;
  /// Large ad-hoc table (estimates exceed a tight SQA threshold
  /// honestly, via stats bytes — no artificial tagging).
  uint64_t events_rows = 20000;
};

/// One synthesized client connection.
struct SessionSpec {
  int index = 0;
  /// "dashboard" | "etl" | "adhoc" — also the reporting class.
  std::string klass;
  /// WLM classifier group the session connects as.
  std::string user_group;
};

/// A staged S3 object a COPY statement in the trace ingests.
struct Fixture {
  std::string key;  // bucket/prefix/part-N (no s3:// scheme)
  std::string csv;
};

/// One timestamped statement of the trace.
struct TimedStatement {
  double at_seconds = 0;
  int session = 0;
  std::string klass;
  std::string sql;
  /// Hash64 of the SQL text — the statement fingerprint.
  uint64_t fingerprint = 0;
  /// The same fingerprint appeared earlier in the trace (in trace
  /// order): a result-cache opportunity.
  bool repeat = false;
};

struct TraceStats {
  int statements = 0;
  int repeats = 0;
  std::map<std::string, int> by_class;
};

/// A fully materialized workload: sessions, the setup DDL/DML that
/// builds the base tables, the staged COPY fixtures, and the merged
/// timestamped statement stream (sorted by arrival time; ties broken
/// by session then per-session order, so the stream is totally ordered
/// and reproducible).
struct Trace {
  SynthConfig config;
  std::vector<SessionSpec> sessions;
  std::vector<std::string> setup_sql;
  std::vector<Fixture> fixtures;
  std::vector<TimedStatement> statements;
  TraceStats stats;
};

/// Synthesizes the trace for `config`. Pure function of the config:
/// same config (seed included) => identical Trace, independent of
/// platform, thread count, or how often it is called.
Trace Synthesize(const SynthConfig& config);

/// Renders the whole trace as one canonical text script (sessions,
/// setup, fixture digests, then every timed statement). Two traces are
/// equal iff their scripts are byte-identical — the determinism tests
/// compare this rendering.
std::string TraceToScript(const Trace& trace);

}  // namespace sdw::workload

#endif  // SDW_WORKLOAD_SYNTH_H_
