#include "catalog/types.h"

#include <cstdio>

#include "common/hash.h"
#include "common/logging.h"

namespace sdw {

const char* TypeName(TypeId type) {
  switch (type) {
    case TypeId::kBool:
      return "BOOLEAN";
    case TypeId::kInt32:
      return "INTEGER";
    case TypeId::kInt64:
      return "BIGINT";
    case TypeId::kDouble:
      return "DOUBLE PRECISION";
    case TypeId::kDate:
      return "DATE";
    case TypeId::kString:
      return "VARCHAR";
  }
  return "?";
}

int Datum::Compare(const Datum& other) const {
  if (is_null_ && other.is_null_) return 0;
  if (is_null_) return -1;
  if (other.is_null_) return 1;
  if (type_ == TypeId::kString || other.type_ == TypeId::kString) {
    SDW_DCHECK(type_ == other.type_) << "comparing string with non-string";
    return string_.compare(other.string_);
  }
  if (type_ == TypeId::kDouble || other.type_ == TypeId::kDouble) {
    double a = AsDouble();
    double b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  return int_ < other.int_ ? -1 : (int_ > other.int_ ? 1 : 0);
}

uint64_t Datum::Hash() const {
  if (is_null_) return 0x6e756c6cull;  // "null"
  switch (type_) {
    case TypeId::kString:
      return Hash64(std::string_view(string_));
    case TypeId::kDouble: {
      // Normalize -0.0 so equal doubles hash equally.
      double d = double_ == 0.0 ? 0.0 : double_;
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return Hash64(bits);
    }
    default:
      return Hash64(static_cast<uint64_t>(int_));
  }
}

std::string Datum::ToString() const {
  if (is_null_) return "NULL";
  char buf[32];
  switch (type_) {
    case TypeId::kBool:
      return int_ ? "true" : "false";
    case TypeId::kDouble:
      std::snprintf(buf, sizeof(buf), "%g", double_);
      return buf;
    case TypeId::kString:
      return "'" + string_ + "'";
    default:
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
      return buf;
  }
}

void ColumnVector::Reserve(size_t n) {
  nulls_.reserve(n);
  if (type_ == TypeId::kDouble) {
    doubles_.reserve(n);
  } else if (type_ == TypeId::kString) {
    strings_.reserve(n);
  } else {
    ints_.reserve(n);
  }
}

void ColumnVector::AppendNull() {
  if (type_ == TypeId::kDouble) {
    doubles_.push_back(0.0);
  } else if (type_ == TypeId::kString) {
    strings_.emplace_back();
  } else {
    ints_.push_back(0);
  }
  nulls_.push_back(1);
  ++null_count_;
}

Status ColumnVector::AppendDatum(const Datum& d) {
  if (d.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case TypeId::kDouble:
      if (d.type() == TypeId::kString) {
        return Status::InvalidArgument("string datum into double column");
      }
      AppendDouble(d.AsDouble());
      return Status::OK();
    case TypeId::kString:
      if (d.type() != TypeId::kString) {
        return Status::InvalidArgument("non-string datum into string column");
      }
      AppendString(d.string_value());
      return Status::OK();
    default:
      if (!IsIntegerLike(d.type())) {
        return Status::InvalidArgument("non-integer datum into integer column");
      }
      AppendInt(d.int_value());
      return Status::OK();
  }
}

Datum ColumnVector::DatumAt(size_t i) const {
  if (IsNull(i)) return Datum::Null();
  switch (type_) {
    case TypeId::kBool:
      return Datum::Bool(ints_[i] != 0);
    case TypeId::kInt32:
      return Datum::Int32(static_cast<int32_t>(ints_[i]));
    case TypeId::kInt64:
      return Datum::Int64(ints_[i]);
    case TypeId::kDate:
      return Datum::Date(static_cast<int32_t>(ints_[i]));
    case TypeId::kDouble:
      return Datum::Double(doubles_[i]);
    case TypeId::kString:
      return Datum::String(strings_[i]);
  }
  return Datum::Null();
}

Status ColumnVector::AppendRange(const ColumnVector& other, size_t begin,
                                 size_t end) {
  if (other.type_ != type_) {
    return Status::InvalidArgument("AppendRange across types");
  }
  if (end > other.size() || begin > end) {
    return Status::OutOfRange("AppendRange bounds");
  }
  // Bulk lane copies (hot path for scans and exchanges).
  if (type_ == TypeId::kDouble) {
    doubles_.insert(doubles_.end(), other.doubles_.begin() + begin,
                    other.doubles_.begin() + end);
  } else if (type_ == TypeId::kString) {
    strings_.insert(strings_.end(), other.strings_.begin() + begin,
                    other.strings_.begin() + end);
  } else {
    ints_.insert(ints_.end(), other.ints_.begin() + begin,
                 other.ints_.begin() + end);
  }
  nulls_.insert(nulls_.end(), other.nulls_.begin() + begin,
                other.nulls_.begin() + end);
  if (other.null_count_ > 0) {
    for (size_t i = begin; i < end; ++i) null_count_ += other.nulls_[i];
  }
  return Status::OK();
}

ColumnVector ColumnVector::TakeInts(TypeId type, std::vector<int64_t> lane) {
  ColumnVector v(type);
  v.nulls_.assign(lane.size(), 0);
  v.ints_ = std::move(lane);
  return v;
}

ColumnVector ColumnVector::TakeDoubles(std::vector<double> lane) {
  ColumnVector v(TypeId::kDouble);
  v.nulls_.assign(lane.size(), 0);
  v.doubles_ = std::move(lane);
  return v;
}

ColumnVector ColumnVector::TakeStrings(std::vector<std::string> lane) {
  ColumnVector v(TypeId::kString);
  v.nulls_.assign(lane.size(), 0);
  v.strings_ = std::move(lane);
  return v;
}

Status ColumnVector::AppendSelected(const ColumnVector& other,
                                    const std::vector<uint32_t>& indices) {
  if (other.type_ != type_) {
    return Status::InvalidArgument("AppendSelected across types");
  }
  const size_t base = nulls_.size();
  nulls_.resize(base + indices.size());
  if (type_ == TypeId::kDouble) {
    doubles_.resize(base + indices.size());
    for (size_t i = 0; i < indices.size(); ++i) {
      doubles_[base + i] = other.doubles_[indices[i]];
      nulls_[base + i] = other.nulls_[indices[i]];
    }
  } else if (type_ == TypeId::kString) {
    strings_.resize(base + indices.size());
    for (size_t i = 0; i < indices.size(); ++i) {
      strings_[base + i] = other.strings_[indices[i]];
      nulls_[base + i] = other.nulls_[indices[i]];
    }
  } else {
    ints_.resize(base + indices.size());
    for (size_t i = 0; i < indices.size(); ++i) {
      ints_[base + i] = other.ints_[indices[i]];
      nulls_[base + i] = other.nulls_[indices[i]];
    }
  }
  if (other.null_count_ > 0) {
    for (size_t i = 0; i < indices.size(); ++i) {
      null_count_ += nulls_[base + i];
    }
  }
  return Status::OK();
}

}  // namespace sdw
