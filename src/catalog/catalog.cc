#include "catalog/catalog.h"

namespace sdw {

Status Catalog::CreateTable(const TableSchema& schema) {
  if (schema.name().empty()) {
    return Status::InvalidArgument("table name must not be empty");
  }
  if (schema.num_columns() == 0) {
    return Status::InvalidArgument("table needs at least one column");
  }
  common::MutexLock lock(mu_);
  if (tables_.count(schema.name())) {
    return Status::AlreadyExists("table '" + schema.name() + "' exists");
  }
  tables_[schema.name()] = schema;
  TableStats stats;
  stats.columns.resize(schema.num_columns());
  stats_[schema.name()] = stats;
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  common::MutexLock lock(mu_);
  if (!tables_.erase(name)) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  stats_.erase(name);
  return Status::OK();
}

Result<TableSchema> Catalog::GetTable(const std::string& name) const {
  common::MutexLock lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return it->second;
}

Status Catalog::UpdateTable(const std::string& name,
                            const TableSchema& schema) {
  common::MutexLock lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  it->second = schema;
  return Status::OK();
}

TableStats Catalog::GetStats(const std::string& name) const {
  common::MutexLock lock(mu_);
  auto it = stats_.find(name);
  return it == stats_.end() ? TableStats{} : it->second;
}

void Catalog::UpdateStats(const std::string& name, const TableStats& stats) {
  common::MutexLock lock(mu_);
  stats_[name] = stats;
}

std::vector<std::string> Catalog::TableNames() const {
  common::MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace sdw
