#ifndef SDW_CATALOG_SCHEMA_H_
#define SDW_CATALOG_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/types.h"
#include "common/result.h"
#include "common/status.h"

namespace sdw {

/// How a table's rows are spread across slices (paper §2.1): round-robin
/// (EVEN), hashed on a distribution key (KEY, enables co-located joins),
/// or fully replicated to every slice (ALL, for small dimensions).
enum class DistStyle : uint8_t { kEven = 0, kKey = 1, kAll = 2 };

const char* DistStyleName(DistStyle s);

/// Physical sort organization of each slice's data. Compound sorts
/// lexicographically on the sort columns (fast only when leading columns
/// are constrained); interleaved uses a multi-dimensional z-curve
/// (paper §3.3: degrades gracefully, no projections needed).
enum class SortStyle : uint8_t { kNone = 0, kCompound = 1, kInterleaved = 2 };

const char* SortStyleName(SortStyle s);

/// Per-column storage encoding. kAuto means the COPY-time compression
/// analyzer samples the data and picks one — the paper's flagship "dusty
/// knob" (§1 design goal 5, §3.3).
enum class ColumnEncoding : uint8_t {
  kAuto = 0,
  kRaw = 1,        // no encoding
  kRunLength = 2,  // (value, count) runs
  kDelta = 3,      // frame-of-reference deltas, varint-packed
  kBytedict = 4,   // per-block dictionary, 1-byte codes
  kMostly8 = 5,    // 64-bit lane stored as 8-bit with exception list
  kMostly16 = 6,
  kMostly32 = 7,
  kLz = 8,         // LZ77 over the raw bytes
  kText255 = 9,    // word-level dictionary for text
};

const char* ColumnEncodingName(ColumnEncoding e);

/// A column definition as written in CREATE TABLE.
struct ColumnDef {
  std::string name;
  TypeId type = TypeId::kInt64;
  ColumnEncoding encoding = ColumnEncoding::kAuto;
  bool nullable = true;
};

/// A table schema: columns plus the only physical-design knobs the
/// paper leaves with the customer (§3.3): distribution style/key and
/// sort style/keys.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<ColumnDef> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }

  /// Index of a column by name, or error.
  Result<size_t> FindColumn(const std::string& name) const;

  DistStyle dist_style() const { return dist_style_; }
  int dist_key() const { return dist_key_; }
  SortStyle sort_style() const { return sort_style_; }
  const std::vector<int>& sort_keys() const { return sort_keys_; }

  /// Sets DISTSTYLE KEY on the named column.
  Status SetDistKey(const std::string& column_name);
  void SetDistStyle(DistStyle style) {
    dist_style_ = style;
    if (style != DistStyle::kKey) dist_key_ = -1;
  }

  /// Sets a compound or interleaved sort key over the named columns.
  Status SetSortKey(SortStyle style,
                    const std::vector<std::string>& column_names);

  void SetColumnEncoding(size_t i, ColumnEncoding e) {
    columns_[i].encoding = e;
  }

  /// DDL-ish rendering for logs and examples.
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
  DistStyle dist_style_ = DistStyle::kEven;
  int dist_key_ = -1;
  SortStyle sort_style_ = SortStyle::kNone;
  std::vector<int> sort_keys_;
};

/// Per-column statistics maintained by ANALYZE / COPY (paper: "optimizer
/// statistics are updated with load").
struct ColumnStats {
  Datum min;
  Datum max;
  uint64_t null_count = 0;
  uint64_t distinct_estimate = 0;
};

/// Table-level statistics for the planner's cost model.
struct TableStats {
  uint64_t row_count = 0;
  uint64_t total_bytes = 0;
  std::vector<ColumnStats> columns;
};

}  // namespace sdw

#endif  // SDW_CATALOG_SCHEMA_H_
