#ifndef SDW_CATALOG_CATALOG_H_
#define SDW_CATALOG_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/thread_annotations.h"

namespace sdw {

/// The leader node's catalog: named tables, their schemas and stats.
/// (Restore streams the catalog first so SQL can be accepted while data
/// blocks page-fault in — see backup/streaming restore.)
///
/// Internally synchronized: snapshot readers plan against the catalog
/// while writers create/drop tables and refresh stats, so every method
/// takes the catalog mutex and returns by value.
class Catalog {
 public:
  Catalog() = default;

  /// Registers a new table. Fails if the name exists.
  Status CreateTable(const TableSchema& schema) SDW_EXCLUDES(mu_);

  /// Removes a table and its stats.
  Status DropTable(const std::string& name) SDW_EXCLUDES(mu_);

  bool HasTable(const std::string& name) const SDW_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return tables_.count(name) > 0;
  }

  Result<TableSchema> GetTable(const std::string& name) const
      SDW_EXCLUDES(mu_);

  /// Replaces an existing table's schema wholesale (the COPY analyzer
  /// assigns encodings; transaction rollback restores the manifest
  /// schema). Fails if the table does not exist.
  Status UpdateTable(const std::string& name, const TableSchema& schema)
      SDW_EXCLUDES(mu_);

  /// Stats by value (empty stats for unknown tables).
  TableStats GetStats(const std::string& name) const SDW_EXCLUDES(mu_);
  void UpdateStats(const std::string& name, const TableStats& stats)
      SDW_EXCLUDES(mu_);

  std::vector<std::string> TableNames() const SDW_EXCLUDES(mu_);

  size_t num_tables() const SDW_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return tables_.size();
  }

 private:
  mutable common::Mutex mu_{common::LockRank::kCatalog};
  std::map<std::string, TableSchema> tables_ SDW_GUARDED_BY(mu_);
  std::map<std::string, TableStats> stats_ SDW_GUARDED_BY(mu_);
};

}  // namespace sdw

#endif  // SDW_CATALOG_CATALOG_H_
