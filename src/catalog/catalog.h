#ifndef SDW_CATALOG_CATALOG_H_
#define SDW_CATALOG_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"

namespace sdw {

/// The leader node's catalog: named tables, their schemas and stats.
/// (Restore streams the catalog first so SQL can be accepted while data
/// blocks page-fault in — see backup/streaming restore.)
class Catalog {
 public:
  Catalog() = default;

  /// Registers a new table. Fails if the name exists.
  Status CreateTable(const TableSchema& schema);

  /// Removes a table and its stats.
  Status DropTable(const std::string& name);

  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  Result<TableSchema> GetTable(const std::string& name) const;

  /// Mutable schema access (e.g., analyzer assigns encodings on first load).
  Result<TableSchema*> GetTableMutable(const std::string& name);

  const TableStats& GetStats(const std::string& name) const;
  void UpdateStats(const std::string& name, const TableStats& stats);

  std::vector<std::string> TableNames() const;

  size_t num_tables() const { return tables_.size(); }

 private:
  std::map<std::string, TableSchema> tables_;
  std::map<std::string, TableStats> stats_;
  TableStats empty_stats_;
};

}  // namespace sdw

#endif  // SDW_CATALOG_CATALOG_H_
