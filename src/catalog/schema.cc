#include "catalog/schema.h"

namespace sdw {

const char* DistStyleName(DistStyle s) {
  switch (s) {
    case DistStyle::kEven:
      return "EVEN";
    case DistStyle::kKey:
      return "KEY";
    case DistStyle::kAll:
      return "ALL";
  }
  return "?";
}

const char* SortStyleName(SortStyle s) {
  switch (s) {
    case SortStyle::kNone:
      return "NONE";
    case SortStyle::kCompound:
      return "COMPOUND";
    case SortStyle::kInterleaved:
      return "INTERLEAVED";
  }
  return "?";
}

const char* ColumnEncodingName(ColumnEncoding e) {
  switch (e) {
    case ColumnEncoding::kAuto:
      return "AUTO";
    case ColumnEncoding::kRaw:
      return "RAW";
    case ColumnEncoding::kRunLength:
      return "RUNLENGTH";
    case ColumnEncoding::kDelta:
      return "DELTA";
    case ColumnEncoding::kBytedict:
      return "BYTEDICT";
    case ColumnEncoding::kMostly8:
      return "MOSTLY8";
    case ColumnEncoding::kMostly16:
      return "MOSTLY16";
    case ColumnEncoding::kMostly32:
      return "MOSTLY32";
    case ColumnEncoding::kLz:
      return "LZO";
    case ColumnEncoding::kText255:
      return "TEXT255";
  }
  return "?";
}

Result<size_t> TableSchema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column '" + name + "' in table '" + name_ + "'");
}

Status TableSchema::SetDistKey(const std::string& column_name) {
  SDW_ASSIGN_OR_RETURN(size_t idx, FindColumn(column_name));
  dist_style_ = DistStyle::kKey;
  dist_key_ = static_cast<int>(idx);
  return Status::OK();
}

Status TableSchema::SetSortKey(SortStyle style,
                               const std::vector<std::string>& column_names) {
  if (style == SortStyle::kNone) {
    sort_style_ = SortStyle::kNone;
    sort_keys_.clear();
    return Status::OK();
  }
  if (column_names.empty()) {
    return Status::InvalidArgument("sort key needs at least one column");
  }
  std::vector<int> keys;
  for (const auto& name : column_names) {
    SDW_ASSIGN_OR_RETURN(size_t idx, FindColumn(name));
    keys.push_back(static_cast<int>(idx));
  }
  sort_style_ = style;
  sort_keys_ = std::move(keys);
  return Status::OK();
}

std::string TableSchema::ToString() const {
  std::string out = "CREATE TABLE " + name_ + " (";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += TypeName(columns_[i].type);
    if (columns_[i].encoding != ColumnEncoding::kAuto) {
      out += " ENCODE ";
      out += ColumnEncodingName(columns_[i].encoding);
    }
  }
  out += ") DISTSTYLE ";
  out += DistStyleName(dist_style_);
  if (dist_style_ == DistStyle::kKey && dist_key_ >= 0) {
    out += " DISTKEY(" + columns_[dist_key_].name + ")";
  }
  if (sort_style_ != SortStyle::kNone) {
    out += " ";
    out += SortStyleName(sort_style_);
    out += " SORTKEY(";
    for (size_t i = 0; i < sort_keys_.size(); ++i) {
      if (i > 0) out += ", ";
      out += columns_[sort_keys_[i]].name;
    }
    out += ")";
  }
  return out;
}

}  // namespace sdw
