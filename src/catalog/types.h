#ifndef SDW_CATALOG_TYPES_H_
#define SDW_CATALOG_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace sdw {

/// SQL value types supported by the engine. Dates are stored as int32
/// days since epoch; booleans as 0/1. All integer-like types share the
/// int64 storage lane inside Datum/ColumnVector.
enum class TypeId : uint8_t {
  kBool = 0,
  kInt32 = 1,
  kInt64 = 2,
  kDouble = 3,
  kDate = 4,
  kString = 5,
};

/// "BIGINT", "VARCHAR", ... SQL-ish display name.
const char* TypeName(TypeId type);

/// True for types whose values live in the int64 lane.
inline bool IsIntegerLike(TypeId t) {
  return t == TypeId::kBool || t == TypeId::kInt32 || t == TypeId::kInt64 ||
         t == TypeId::kDate;
}

/// A single (possibly NULL) typed value. Datum is a value type used at
/// the API boundary (rows in/out, literals, stats); bulk execution uses
/// ColumnVector lanes directly.
class Datum {
 public:
  /// NULL of unspecified type (binds to any column).
  Datum() : type_(TypeId::kInt64), is_null_(true) {}

  static Datum Null() { return Datum(); }
  static Datum Bool(bool v) { return Datum(TypeId::kBool, v ? 1 : 0); }
  static Datum Int32(int32_t v) { return Datum(TypeId::kInt32, v); }
  static Datum Int64(int64_t v) { return Datum(TypeId::kInt64, v); }
  static Datum Date(int32_t days) { return Datum(TypeId::kDate, days); }
  static Datum Double(double v) {
    Datum d(TypeId::kDouble, 0);
    d.double_ = v;
    return d;
  }
  static Datum String(std::string v) {
    Datum d(TypeId::kString, 0);
    d.string_ = std::move(v);
    return d;
  }

  TypeId type() const { return type_; }
  bool is_null() const { return is_null_; }

  int64_t int_value() const { return int_; }
  double double_value() const { return double_; }
  const std::string& string_value() const { return string_; }

  /// Numeric view: int lanes widened, doubles as-is. Not valid for strings.
  double AsDouble() const {
    return type_ == TypeId::kDouble ? double_ : static_cast<double>(int_);
  }

  /// Total order: NULLs first, then by value. Comparing across
  /// incompatible types is a programming error checked in debug.
  int Compare(const Datum& other) const;

  bool operator==(const Datum& other) const { return Compare(other) == 0; }
  bool operator<(const Datum& other) const { return Compare(other) < 0; }

  /// Hash consistent with operator== (used for hash distribution/joins).
  uint64_t Hash() const;

  /// SQL-ish rendering ("NULL", "42", "'abc'", "3.14").
  std::string ToString() const;

 private:
  Datum(TypeId type, int64_t v) : type_(type), is_null_(false), int_(v) {}

  TypeId type_;
  bool is_null_;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
};

/// A row at the API boundary.
using Row = std::vector<Datum>;

/// A typed column of values with a null bitmap, the unit of vectorized
/// execution and of block encoding. Integer-like types share the int64
/// lane; doubles and strings have their own lanes.
class ColumnVector {
 public:
  explicit ColumnVector(TypeId type) : type_(type) {}

  /// Wraps an already-built null-free lane without copying (codec
  /// decode fast paths).
  static ColumnVector TakeInts(TypeId type, std::vector<int64_t> lane);
  static ColumnVector TakeDoubles(std::vector<double> lane);
  static ColumnVector TakeStrings(std::vector<std::string> lane);

  TypeId type() const { return type_; }
  size_t size() const { return nulls_.size(); }
  bool has_nulls() const { return null_count_ > 0; }
  size_t null_count() const { return null_count_; }

  void Reserve(size_t n);

  void AppendInt(int64_t v) {
    ints_.push_back(v);
    nulls_.push_back(0);
  }
  void AppendDouble(double v) {
    doubles_.push_back(v);
    nulls_.push_back(0);
  }
  void AppendString(std::string v) {
    strings_.push_back(std::move(v));
    nulls_.push_back(0);
  }
  void AppendNull();

  /// Appends a Datum, checking type compatibility.
  Status AppendDatum(const Datum& d);

  bool IsNull(size_t i) const { return nulls_[i] != 0; }
  int64_t IntAt(size_t i) const { return ints_[i]; }
  double DoubleAt(size_t i) const { return doubles_[i]; }
  const std::string& StringAt(size_t i) const { return strings_[i]; }

  /// Value at i as a Datum (NULL-aware).
  Datum DatumAt(size_t i) const;

  /// Direct lane access for tight loops and encoders.
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }
  const std::vector<uint8_t>& nulls() const { return nulls_; }

  /// Appends rows [begin, end) of other (same type) to this vector.
  Status AppendRange(const ColumnVector& other, size_t begin, size_t end);

  /// Appends the selected rows of other (same type) in index order —
  /// the tight lane-wise copy the vectorized Filter relies on.
  Status AppendSelected(const ColumnVector& other,
                        const std::vector<uint32_t>& indices);

 private:
  TypeId type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<uint8_t> nulls_;
  size_t null_count_ = 0;
};

}  // namespace sdw

#endif  // SDW_CATALOG_TYPES_H_
