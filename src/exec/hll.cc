#include "exec/hll.h"

#include <cmath>

#include "common/logging.h"

namespace sdw::exec {

HyperLogLog::HyperLogLog(int precision) : precision_(precision) {
  SDW_CHECK(precision >= 4 && precision <= 16) << "precision out of range";
  registers_.assign(size_t{1} << precision, 0);
}

void HyperLogLog::Add(uint64_t hash) {
  const uint64_t index = hash >> (64 - precision_);
  // Rank = position of the first 1-bit in the remaining bits (1-based).
  const uint64_t remaining = hash << precision_;
  const uint8_t rank =
      remaining == 0 ? static_cast<uint8_t>(64 - precision_ + 1)
                     : static_cast<uint8_t>(__builtin_clzll(remaining) + 1);
  if (rank > registers_[index]) registers_[index] = rank;
}

Status HyperLogLog::Merge(const HyperLogLog& other) {
  if (other.precision_ != precision_) {
    return Status::InvalidArgument("merging sketches of different precision");
  }
  for (size_t i = 0; i < registers_.size(); ++i) {
    if (other.registers_[i] > registers_[i]) {
      registers_[i] = other.registers_[i];
    }
  }
  return Status::OK();
}

uint64_t HyperLogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  // Bias-correction constant alpha_m.
  double alpha;
  if (registers_.size() <= 16) {
    alpha = 0.673;
  } else if (registers_.size() <= 32) {
    alpha = 0.697;
  } else if (registers_.size() <= 64) {
    alpha = 0.709;
  } else {
    alpha = 0.7213 / (1.0 + 1.079 / m);
  }
  double sum = 0;
  size_t zeros = 0;
  for (uint8_t reg : registers_) {
    sum += std::ldexp(1.0, -reg);
    if (reg == 0) ++zeros;
  }
  double estimate = alpha * m * m / sum;
  // Small-range correction: linear counting while registers are sparse.
  if (estimate <= 2.5 * m && zeros > 0) {
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return static_cast<uint64_t>(estimate + 0.5);
}

std::string HyperLogLog::Serialize() const {
  std::string out;
  out.reserve(registers_.size() + 1);
  out.push_back(static_cast<char>(precision_));
  out.append(reinterpret_cast<const char*>(registers_.data()),
             registers_.size());
  return out;
}

Result<HyperLogLog> HyperLogLog::Deserialize(const std::string& data) {
  if (data.empty()) return Status::Corruption("empty HLL sketch");
  const int precision = static_cast<uint8_t>(data[0]);
  if (precision < 4 || precision > 16 ||
      data.size() != (size_t{1} << precision) + 1) {
    return Status::Corruption("malformed HLL sketch");
  }
  HyperLogLog hll(precision);
  for (size_t i = 0; i < hll.registers_.size(); ++i) {
    hll.registers_[i] = static_cast<uint8_t>(data[i + 1]);
  }
  return hll;
}

}  // namespace sdw::exec
