#ifndef SDW_EXEC_OPERATORS_H_
#define SDW_EXEC_OPERATORS_H_

#include <memory>
#include <optional>
#include <vector>

#include "exec/batch.h"
#include "exec/expr.h"
#include "storage/table_shard.h"

namespace sdw::obs {
class QueryProgress;
}  // namespace sdw::obs

namespace sdw::exec {

/// A pull-based batch operator (vectorized Volcano). Next() yields
/// batches until std::nullopt.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Column types this operator produces.
  virtual std::vector<TypeId> OutputTypes() const = 0;

  /// Produces the next batch, or nullopt at end of stream.
  virtual Result<std::optional<Batch>> Next() = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Drains an operator into one materialized batch.
Result<Batch> Collect(Operator* op);

/// Yields pre-materialized batches (test inputs, exchange receive
/// queues, ALL-distributed dimension tables).
OperatorPtr MemoryScan(std::vector<TypeId> types, std::vector<Batch> batches);

/// Per-scan telemetry filled by ShardScan (and CountRows for rows_out).
/// Block and byte counts are computed statically at operator
/// construction from the pinned version's chain metadata and the
/// zone-map candidate ranges — deterministic regardless of decode-cache
/// state or scheduling; rows_scanned accumulates as batches decode.
struct ScanTelemetry {
  uint64_t rows_scanned = 0;
  uint64_t rows_out = 0;
  uint64_t blocks_read = 0;
  uint64_t blocks_skipped = 0;
  uint64_t bytes_decoded = 0;
};

/// Scans a table shard: zone-map pruning from the range predicates,
/// then batch-wise decode of the surviving row ranges. `columns` picks
/// and orders the projected columns.
struct ScanOptions {
  size_t batch_rows = 4096;
  /// Optional telemetry sink; must outlive the operator. Each slice's
  /// scan gets its own struct (no cross-thread writes).
  ScanTelemetry* telemetry = nullptr;
  /// Optional live progress counters (stv_inflight); bumped with
  /// relaxed atomics per batch, shared across slices.
  obs::QueryProgress* progress = nullptr;
};
OperatorPtr ShardScan(storage::ShardRef ref, std::vector<int> columns,
                      std::vector<storage::RangePredicate> predicates = {},
                      ScanOptions options = {});
/// Non-owning form: pins the shard's current head version (tests and
/// other single-threaded callers; concurrent readers pass a ShardRef).
OperatorPtr ShardScan(storage::TableShard* shard, std::vector<int> columns,
                      std::vector<storage::RangePredicate> predicates = {},
                      ScanOptions options = {});

/// Keeps rows where `predicate` evaluates to TRUE (NULL drops).
OperatorPtr Filter(OperatorPtr input, ExprPtr predicate);

/// Transparent pass-through that adds every batch's row count to
/// `*counter`. Placed above a scan's filter to record post-filter
/// cardinality (stl_scan's rows_out). `counter` must outlive the
/// operator and be written from one thread only.
OperatorPtr CountRows(OperatorPtr input, uint64_t* counter);

/// Computes one output column per expression.
OperatorPtr Project(OperatorPtr input, std::vector<ExprPtr> exprs);

/// Inner hash join: materializes and hashes `build`, streams `probe`.
/// Output columns: probe columns then build columns. Keys are column
/// indices into each side's output.
OperatorPtr HashJoin(OperatorPtr probe, OperatorPtr build,
                     std::vector<int> probe_keys, std::vector<int> build_keys);

/// Aggregate functions. AVG is planned as SUM/COUNT upstream so that
/// partial aggregates merge associatively across slices.
/// kApproxDistinct implements APPROXIMATE COUNT(DISTINCT) via
/// HyperLogLog sketches: slices emit serialized sketches as their
/// partials (a string column) and the leader merges them — the paper's
/// "distributed approximate equivalents for ... non-linear exact
/// operations" (§4).
enum class AggFn { kCount, kSum, kMin, kMax, kApproxDistinct };

struct AggSpec {
  AggFn fn = AggFn::kCount;
  /// Input column; -1 for COUNT(*).
  int column = -1;
};

/// How the aggregate participates in distributed execution: kSingle
/// computes the whole aggregate; kPartial emits per-slice partial
/// states; kFinal merges partials at the leader (paper §2.1: "performs
/// final aggregation of results").
enum class AggMode { kSingle, kPartial, kFinal };

/// Hash aggregation grouped by `group_by` columns. Output: group
/// columns, then one column per agg. In kFinal mode the input must have
/// the kPartial output layout.
OperatorPtr HashAggregate(OperatorPtr input, std::vector<int> group_by,
                          std::vector<AggSpec> aggs,
                          AggMode mode = AggMode::kSingle);

/// Materializing sort. `descending[i]` flips key i.
struct SortKey {
  int column = 0;
  bool descending = false;
};
OperatorPtr Sort(OperatorPtr input, std::vector<SortKey> keys);

/// Emits at most `limit` rows.
OperatorPtr Limit(OperatorPtr input, uint64_t limit);

}  // namespace sdw::exec

#endif  // SDW_EXEC_OPERATORS_H_
