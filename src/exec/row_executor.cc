#include "exec/row_executor.h"

#include <map>
#include <memory>
#include <utility>

#include "exec/hll.h"

namespace sdw::exec {

namespace {

class RowScanOp : public RowOperator {
 public:
  RowScanOp(storage::ShardRef ref, std::vector<int> columns)
      : ref_(std::move(ref)), columns_(std::move(columns)) {}

  Result<std::optional<Row>> Next() override {
    if (row_in_batch_ >= batch_.num_rows()) {
      const uint64_t rows = ref_.version->row_count;
      if (next_row_ >= rows) return std::optional<Row>();
      const uint64_t end = std::min<uint64_t>(rows, next_row_ + 4096);
      SDW_ASSIGN_OR_RETURN(
          std::vector<ColumnVector> cols,
          ref_.shard->ReadRange(*ref_.version, columns_, {next_row_, end}));
      batch_.columns = std::move(cols);
      next_row_ = end;
      row_in_batch_ = 0;
    }
    return std::optional<Row>(batch_.RowAt(row_in_batch_++));
  }

 private:
  storage::ShardRef ref_;
  std::vector<int> columns_;
  Batch batch_;
  uint64_t next_row_ = 0;
  size_t row_in_batch_ = 0;
};

class RowFilterOp : public RowOperator {
 public:
  RowFilterOp(RowOperatorPtr input, ExprPtr predicate)
      : input_(std::move(input)), predicate_(std::move(predicate)) {}

  Result<std::optional<Row>> Next() override {
    while (true) {
      SDW_ASSIGN_OR_RETURN(std::optional<Row> row, input_->Next());
      if (!row.has_value()) return std::optional<Row>();
      SDW_ASSIGN_OR_RETURN(Datum keep, predicate_->EvalRow(*row));
      if (!keep.is_null() && keep.int_value() != 0) return row;
    }
  }

 private:
  RowOperatorPtr input_;
  ExprPtr predicate_;
};

class RowProjectOp : public RowOperator {
 public:
  RowProjectOp(RowOperatorPtr input, std::vector<ExprPtr> exprs)
      : input_(std::move(input)), exprs_(std::move(exprs)) {}

  Result<std::optional<Row>> Next() override {
    SDW_ASSIGN_OR_RETURN(std::optional<Row> row, input_->Next());
    if (!row.has_value()) return std::optional<Row>();
    Row out;
    out.reserve(exprs_.size());
    for (const auto& e : exprs_) {
      SDW_ASSIGN_OR_RETURN(Datum v, e->EvalRow(*row));
      out.push_back(std::move(v));
    }
    return std::optional<Row>(std::move(out));
  }

 private:
  RowOperatorPtr input_;
  std::vector<ExprPtr> exprs_;
};

class RowAggregateOp : public RowOperator {
 public:
  RowAggregateOp(RowOperatorPtr input, std::vector<int> group_by,
                 std::vector<AggSpec> aggs)
      : input_(std::move(input)),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)) {}

  Result<std::optional<Row>> Next() override {
    if (!accumulated_) {
      SDW_RETURN_IF_ERROR(Accumulate());
      accumulated_ = true;
    }
    if (emit_index_ >= output_.size()) return std::optional<Row>();
    return std::optional<Row>(std::move(output_[emit_index_++]));
  }

 private:
  struct State {
    int64_t count = 0;
    double sum = 0;
    int64_t sum_int = 0;
    bool sum_is_double = false;
    bool has_value = false;
    Datum min;
    Datum max;
    std::unique_ptr<HyperLogLog> hll;
  };

  Status Accumulate() {
    // Key by rendered datums (ordered map keeps deterministic output).
    std::map<std::string, std::pair<Row, std::vector<State>>> groups;
    while (true) {
      SDW_ASSIGN_OR_RETURN(std::optional<Row> row, input_->Next());
      if (!row.has_value()) break;
      std::string key;
      Row key_row;
      for (int g : group_by_) {
        key += (*row)[g].ToString();
        key.push_back('\x1f');
        key_row.push_back((*row)[g]);
      }
      auto it = groups.find(key);
      if (it == groups.end()) {
        it = groups
                 .emplace(std::move(key),
                          std::make_pair(std::move(key_row),
                                         std::vector<State>(aggs_.size())))
                 .first;
      }
      for (size_t a = 0; a < aggs_.size(); ++a) {
        State& s = it->second.second[a];
        const AggSpec& spec = aggs_[a];
        if (spec.fn == AggFn::kCount) {
          if (spec.column < 0 || !(*row)[spec.column].is_null()) ++s.count;
          continue;
        }
        const Datum& v = (*row)[spec.column];
        if (v.is_null()) continue;
        switch (spec.fn) {
          case AggFn::kSum:
            if (v.type() == TypeId::kDouble) {
              s.sum += v.double_value();
              s.sum_is_double = true;
            } else {
              s.sum_int += v.int_value();
            }
            s.has_value = true;
            break;
          case AggFn::kMin:
          case AggFn::kMax:
            if (!s.has_value || v < s.min) s.min = v;
            if (!s.has_value || s.max < v) s.max = v;
            s.has_value = true;
            break;
          case AggFn::kApproxDistinct:
            if (!s.hll) s.hll = std::make_unique<HyperLogLog>();
            s.hll->Add(v.Hash());
            break;
          case AggFn::kCount:
            break;
        }
      }
    }
    if (group_by_.empty() && groups.empty()) {
      groups.emplace("", std::make_pair(Row{}, std::vector<State>(aggs_.size())));
    }
    for (auto& [_, entry] : groups) {
      Row out = std::move(entry.first);
      for (size_t a = 0; a < aggs_.size(); ++a) {
        const State& s = entry.second[a];
        switch (aggs_[a].fn) {
          case AggFn::kCount:
            out.push_back(Datum::Int64(s.count));
            break;
          case AggFn::kSum:
            if (!s.has_value) {
              out.push_back(Datum::Null());
            } else if (s.sum_is_double) {
              out.push_back(Datum::Double(s.sum));
            } else {
              out.push_back(Datum::Int64(s.sum_int));
            }
            break;
          case AggFn::kMin:
            out.push_back(s.has_value ? s.min : Datum::Null());
            break;
          case AggFn::kMax:
            out.push_back(s.has_value ? s.max : Datum::Null());
            break;
          case AggFn::kApproxDistinct:
            out.push_back(Datum::Int64(
                s.hll ? static_cast<int64_t>(s.hll->Estimate()) : 0));
            break;
        }
      }
      output_.push_back(std::move(out));
    }
    return Status::OK();
  }

  RowOperatorPtr input_;
  std::vector<int> group_by_;
  std::vector<AggSpec> aggs_;
  bool accumulated_ = false;
  std::vector<Row> output_;
  size_t emit_index_ = 0;
};

}  // namespace

RowOperatorPtr RowScan(storage::ShardRef ref, std::vector<int> columns) {
  return std::make_unique<RowScanOp>(std::move(ref), std::move(columns));
}

RowOperatorPtr RowScan(storage::TableShard* shard, std::vector<int> columns) {
  storage::ShardRef ref;
  ref.shard = std::shared_ptr<storage::TableShard>(
      shard, [](storage::TableShard*) {});
  ref.version = shard->Snapshot();
  return RowScan(std::move(ref), std::move(columns));
}

RowOperatorPtr RowFilter(RowOperatorPtr input, ExprPtr predicate) {
  return std::make_unique<RowFilterOp>(std::move(input), std::move(predicate));
}

RowOperatorPtr RowProject(RowOperatorPtr input, std::vector<ExprPtr> exprs) {
  return std::make_unique<RowProjectOp>(std::move(input), std::move(exprs));
}

RowOperatorPtr RowAggregate(RowOperatorPtr input, std::vector<int> group_by,
                            std::vector<AggSpec> aggs) {
  return std::make_unique<RowAggregateOp>(std::move(input),
                                          std::move(group_by),
                                          std::move(aggs));
}

Result<Batch> CollectRows(RowOperator* op, const std::vector<TypeId>& types) {
  Batch out = MakeBatch(types);
  while (true) {
    SDW_ASSIGN_OR_RETURN(std::optional<Row> row, op->Next());
    if (!row.has_value()) break;
    if (row->size() != types.size()) {
      return Status::Internal("row width mismatch in CollectRows");
    }
    for (size_t c = 0; c < types.size(); ++c) {
      SDW_RETURN_IF_ERROR(out.columns[c].AppendDatum((*row)[c]));
    }
  }
  return out;
}

}  // namespace sdw::exec
