#ifndef SDW_EXEC_BATCH_H_
#define SDW_EXEC_BATCH_H_

#include <vector>

#include "catalog/types.h"
#include "common/result.h"

namespace sdw::exec {

/// The unit of vectorized execution: a set of equal-length column
/// vectors.
struct Batch {
  std::vector<ColumnVector> columns;

  size_t num_rows() const { return columns.empty() ? 0 : columns[0].size(); }
  size_t num_columns() const { return columns.size(); }

  std::vector<TypeId> Types() const {
    std::vector<TypeId> types;
    types.reserve(columns.size());
    for (const auto& c : columns) types.push_back(c.type());
    return types;
  }

  /// One row as datums (API-boundary use only).
  Row RowAt(size_t i) const {
    Row row;
    row.reserve(columns.size());
    for (const auto& c : columns) row.push_back(c.DatumAt(i));
    return row;
  }
};

/// Builds an empty batch with the given column types.
inline Batch MakeBatch(const std::vector<TypeId>& types) {
  Batch b;
  b.columns.reserve(types.size());
  for (TypeId t : types) b.columns.emplace_back(t);
  return b;
}

/// Appends row i of `src` to `dst` (columns must line up).
inline Status AppendRow(const Batch& src, size_t i, Batch* dst) {
  for (size_t c = 0; c < src.columns.size(); ++c) {
    SDW_RETURN_IF_ERROR(
        dst->columns[c].AppendRange(src.columns[c], i, i + 1));
  }
  return Status::OK();
}

}  // namespace sdw::exec

#endif  // SDW_EXEC_BATCH_H_
