#ifndef SDW_EXEC_EXPR_H_
#define SDW_EXEC_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/types.h"
#include "common/result.h"
#include "exec/batch.h"

namespace sdw::exec {

/// Comparison operators.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Arithmetic operators.
enum class ArithOp { kAdd, kSub, kMul, kDiv };

/// A typed scalar expression. Every expression supports both a
/// vectorized batch evaluation (the "compiled" engine's path) and a
/// row-at-a-time evaluation (the interpreted Volcano path used by the
/// compilation-tradeoff experiment, A5).
class Expr {
 public:
  virtual ~Expr() = default;

  /// Result type of this expression.
  virtual TypeId type() const = 0;

  /// Vectorized evaluation over a whole batch.
  virtual Result<ColumnVector> EvalBatch(const Batch& input) const = 0;

  /// Scalar evaluation of one row (virtual-dispatch per value — the
  /// "general-purpose executor functions" the paper contrasts with
  /// compiled execution).
  virtual Result<Datum> EvalRow(const Row& row) const = 0;

  /// SQL-ish rendering.
  virtual std::string ToString() const = 0;
};

using ExprPtr = std::shared_ptr<const Expr>;

/// Reference to input column `index` of the given type.
ExprPtr Col(int index, TypeId type);

/// Constant.
ExprPtr Lit(Datum value);

/// Comparison producing a BOOLEAN (NULL when either side is NULL).
ExprPtr Cmp(CmpOp op, ExprPtr left, ExprPtr right);

/// Boolean conjunction/disjunction/negation (SQL three-valued logic).
ExprPtr And(ExprPtr left, ExprPtr right);
ExprPtr Or(ExprPtr left, ExprPtr right);
ExprPtr Not(ExprPtr input);

/// Arithmetic. Integer op integer -> BIGINT (div -> DOUBLE); any double
/// operand -> DOUBLE.
ExprPtr Arith(ArithOp op, ExprPtr left, ExprPtr right);

/// True when the argument is NULL.
ExprPtr IsNull(ExprPtr input);

/// String prefix test (the LIKE 'abc%' fast path).
ExprPtr StartsWith(ExprPtr input, std::string prefix);

}  // namespace sdw::exec

#endif  // SDW_EXEC_EXPR_H_
