#include "exec/operators.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "common/hash.h"
#include "exec/hll.h"
#include "common/logging.h"
#include "obs/profiler.h"

namespace sdw::exec {

Result<Batch> Collect(Operator* op) {
  Batch out = MakeBatch(op->OutputTypes());
  while (true) {
    SDW_ASSIGN_OR_RETURN(std::optional<Batch> batch, op->Next());
    if (!batch.has_value()) break;
    for (size_t c = 0; c < out.columns.size(); ++c) {
      SDW_RETURN_IF_ERROR(out.columns[c].AppendRange(
          batch->columns[c], 0, batch->columns[c].size()));
    }
  }
  return out;
}

namespace {

// Serializes a set of key datums into a hashable string (type-erased,
// length-delimited so distinct tuples never collide).
std::string SerializeKey(const Batch& batch, const std::vector<int>& keys,
                         size_t row) {
  std::string out;
  for (int k : keys) {
    const ColumnVector& col = batch.columns[k];
    if (col.IsNull(row)) {
      out.push_back('\x00');
      continue;
    }
    out.push_back('\x01');
    switch (col.type()) {
      case TypeId::kString: {
        const std::string& s = col.StringAt(row);
        uint32_t len = static_cast<uint32_t>(s.size());
        out.append(reinterpret_cast<const char*>(&len), 4);
        out.append(s);
        break;
      }
      case TypeId::kDouble: {
        double d = col.DoubleAt(row);
        if (d == 0.0) d = 0.0;  // normalize -0.0
        out.append(reinterpret_cast<const char*>(&d), 8);
        break;
      }
      default: {
        int64_t v = col.IntAt(row);
        out.append(reinterpret_cast<const char*>(&v), 8);
        break;
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// MemoryScan
// ---------------------------------------------------------------------------

class MemoryScanOp : public Operator {
 public:
  MemoryScanOp(std::vector<TypeId> types, std::vector<Batch> batches)
      : types_(std::move(types)), batches_(std::move(batches)) {}

  std::vector<TypeId> OutputTypes() const override { return types_; }

  Result<std::optional<Batch>> Next() override {
    if (next_ >= batches_.size()) return std::optional<Batch>();
    return std::optional<Batch>(std::move(batches_[next_++]));
  }

 private:
  std::vector<TypeId> types_;
  std::vector<Batch> batches_;
  size_t next_ = 0;
};

// ---------------------------------------------------------------------------
// ShardScan
// ---------------------------------------------------------------------------

class ShardScanOp : public Operator {
 public:
  ShardScanOp(storage::ShardRef ref, std::vector<int> columns,
              std::vector<storage::RangePredicate> predicates,
              ScanOptions options)
      : ref_(std::move(ref)),
        columns_(std::move(columns)),
        options_(options),
        ranges_(ref_.shard->CandidateRanges(*ref_.version, predicates)) {
    if (options_.telemetry != nullptr) RecordStaticTelemetry();
  }

  std::vector<TypeId> OutputTypes() const override {
    std::vector<TypeId> types;
    types.reserve(columns_.size());
    for (int c : columns_) {
      types.push_back(ref_.shard->schema().column(c).type);
    }
    return types;
  }

  Result<std::optional<Batch>> Next() override {
    while (range_index_ < ranges_.size()) {
      const storage::RowRange& range = ranges_[range_index_];
      if (offset_ >= range.size()) {
        ++range_index_;
        offset_ = 0;
        continue;
      }
      const uint64_t begin = range.begin + offset_;
      const uint64_t end =
          std::min<uint64_t>(range.end, begin + options_.batch_rows);
      offset_ += end - begin;
      SDW_ASSIGN_OR_RETURN(
          std::vector<ColumnVector> cols,
          ref_.shard->ReadRange(*ref_.version, columns_, {begin, end}));
      if (options_.telemetry != nullptr) {
        options_.telemetry->rows_scanned += end - begin;
      }
      if (options_.progress != nullptr) {
        options_.progress->AddRowsScanned(end - begin);
      }
      Batch batch;
      batch.columns = std::move(cols);
      return std::optional<Batch>(std::move(batch));
    }
    return std::optional<Batch>();
  }

 private:
  // Counts, per projected column chain, the blocks overlapping a
  // candidate range (they will be decoded) vs the rest (zone-map
  // skipped). Pure metadata walk over the immutable version — the same
  // numbers on every run, whatever the decode cache holds.
  void RecordStaticTelemetry() {
    ScanTelemetry* t = options_.telemetry;
    for (int c : columns_) {
      const auto& chain = ref_.version->chains[c];
      size_t range_index = 0;
      for (const storage::BlockMeta& block : chain) {
        const uint64_t block_end = block.first_row + block.row_count;
        while (range_index < ranges_.size() &&
               ranges_[range_index].end <= block.first_row) {
          ++range_index;
        }
        const bool overlaps = range_index < ranges_.size() &&
                              ranges_[range_index].begin < block_end;
        if (overlaps) {
          t->blocks_read++;
          t->bytes_decoded += block.encoded_bytes;
        } else {
          t->blocks_skipped++;
        }
      }
    }
  }

  storage::ShardRef ref_;
  std::vector<int> columns_;
  ScanOptions options_;
  std::vector<storage::RowRange> ranges_;
  size_t range_index_ = 0;
  uint64_t offset_ = 0;
};

// ---------------------------------------------------------------------------
// CountRows
// ---------------------------------------------------------------------------

class CountRowsOp : public Operator {
 public:
  CountRowsOp(OperatorPtr input, uint64_t* counter)
      : input_(std::move(input)), counter_(counter) {}

  std::vector<TypeId> OutputTypes() const override {
    return input_->OutputTypes();
  }

  Result<std::optional<Batch>> Next() override {
    SDW_ASSIGN_OR_RETURN(std::optional<Batch> batch, input_->Next());
    if (batch.has_value()) *counter_ += batch->num_rows();
    return batch;
  }

 private:
  OperatorPtr input_;
  uint64_t* counter_;
};

// ---------------------------------------------------------------------------
// Filter
// ---------------------------------------------------------------------------

class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr input, ExprPtr predicate)
      : input_(std::move(input)), predicate_(std::move(predicate)) {}

  std::vector<TypeId> OutputTypes() const override {
    return input_->OutputTypes();
  }

  Result<std::optional<Batch>> Next() override {
    while (true) {
      SDW_ASSIGN_OR_RETURN(std::optional<Batch> batch, input_->Next());
      if (!batch.has_value()) return std::optional<Batch>();
      SDW_ASSIGN_OR_RETURN(ColumnVector mask, predicate_->EvalBatch(*batch));
      // Selection-vector filtering: one index list, then lane-wise
      // copies (the compiled engine's tight inner loop).
      std::vector<uint32_t> selected;
      selected.reserve(mask.size());
      const auto& bits = mask.ints();
      if (mask.has_nulls()) {
        for (size_t i = 0; i < mask.size(); ++i) {
          if (!mask.IsNull(i) && bits[i] != 0) {
            selected.push_back(static_cast<uint32_t>(i));
          }
        }
      } else {
        for (size_t i = 0; i < bits.size(); ++i) {
          if (bits[i] != 0) selected.push_back(static_cast<uint32_t>(i));
        }
      }
      if (selected.size() == batch->num_rows()) {
        return batch;  // nothing filtered: pass the batch through
      }
      Batch out = MakeBatch(batch->Types());
      for (size_t c = 0; c < batch->columns.size(); ++c) {
        SDW_RETURN_IF_ERROR(
            out.columns[c].AppendSelected(batch->columns[c], selected));
      }
      if (out.num_rows() > 0) return std::optional<Batch>(std::move(out));
      // All rows filtered: pull the next batch rather than emitting
      // empties.
    }
  }

 private:
  OperatorPtr input_;
  ExprPtr predicate_;
};

// ---------------------------------------------------------------------------
// Project
// ---------------------------------------------------------------------------

class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr input, std::vector<ExprPtr> exprs)
      : input_(std::move(input)), exprs_(std::move(exprs)) {}

  std::vector<TypeId> OutputTypes() const override {
    std::vector<TypeId> types;
    types.reserve(exprs_.size());
    for (const auto& e : exprs_) types.push_back(e->type());
    return types;
  }

  Result<std::optional<Batch>> Next() override {
    SDW_ASSIGN_OR_RETURN(std::optional<Batch> batch, input_->Next());
    if (!batch.has_value()) return std::optional<Batch>();
    Batch out;
    out.columns.reserve(exprs_.size());
    for (const auto& e : exprs_) {
      SDW_ASSIGN_OR_RETURN(ColumnVector col, e->EvalBatch(*batch));
      out.columns.push_back(std::move(col));
    }
    return std::optional<Batch>(std::move(out));
  }

 private:
  OperatorPtr input_;
  std::vector<ExprPtr> exprs_;
};

// ---------------------------------------------------------------------------
// HashJoin
// ---------------------------------------------------------------------------

class HashJoinOp : public Operator {
 public:
  HashJoinOp(OperatorPtr probe, OperatorPtr build, std::vector<int> probe_keys,
             std::vector<int> build_keys)
      : probe_(std::move(probe)),
        build_(std::move(build)),
        probe_keys_(std::move(probe_keys)),
        build_keys_(std::move(build_keys)) {}

  std::vector<TypeId> OutputTypes() const override {
    std::vector<TypeId> types = probe_->OutputTypes();
    for (TypeId t : build_->OutputTypes()) types.push_back(t);
    return types;
  }

  Result<std::optional<Batch>> Next() override {
    if (!built_) {
      SDW_RETURN_IF_ERROR(Build());
      built_ = true;
    }
    while (true) {
      SDW_ASSIGN_OR_RETURN(std::optional<Batch> batch, probe_->Next());
      if (!batch.has_value()) return std::optional<Batch>();
      Batch out = MakeBatch(OutputTypes());
      const size_t n = batch->num_rows();
      const size_t probe_width = batch->num_columns();
      for (size_t i = 0; i < n; ++i) {
        // NULL keys never join.
        bool null_key = false;
        for (int k : probe_keys_) {
          if (batch->columns[k].IsNull(i)) {
            null_key = true;
            break;
          }
        }
        if (null_key) continue;
        std::string key = SerializeKey(*batch, probe_keys_, i);
        auto [lo, hi] = table_.equal_range(key);
        for (auto it = lo; it != hi; ++it) {
          SDW_RETURN_IF_ERROR(AppendRow(*batch, i, &out));
          // Append matching build row into the trailing columns.
          for (size_t c = 0; c < build_data_.num_columns(); ++c) {
            SDW_RETURN_IF_ERROR(out.columns[probe_width + c].AppendRange(
                build_data_.columns[c], it->second, it->second + 1));
          }
        }
      }
      if (out.num_rows() > 0) return std::optional<Batch>(std::move(out));
    }
  }

 private:
  Status Build() {
    SDW_ASSIGN_OR_RETURN(build_data_, Collect(build_.get()));
    const size_t n = build_data_.num_rows();
    table_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      bool null_key = false;
      for (int k : build_keys_) {
        if (build_data_.columns[k].IsNull(i)) {
          null_key = true;
          break;
        }
      }
      if (null_key) continue;
      table_.emplace(SerializeKey(build_data_, build_keys_, i), i);
    }
    return Status::OK();
  }

  OperatorPtr probe_;
  OperatorPtr build_;
  std::vector<int> probe_keys_;
  std::vector<int> build_keys_;
  bool built_ = false;
  Batch build_data_;
  std::unordered_multimap<std::string, size_t> table_;
};

// ---------------------------------------------------------------------------
// HashAggregate
// ---------------------------------------------------------------------------

struct AggState {
  int64_t count = 0;
  int64_t sum_int = 0;
  double sum_double = 0;
  bool has_value = false;
  Datum min;
  Datum max;
  /// Allocated lazily for kApproxDistinct.
  std::unique_ptr<HyperLogLog> hll;

  HyperLogLog* Sketch() {
    if (!hll) hll = std::make_unique<HyperLogLog>();
    return hll.get();
  }
};

class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(OperatorPtr input, std::vector<int> group_by,
                  std::vector<AggSpec> aggs, AggMode mode)
      : input_(std::move(input)),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)),
        mode_(mode),
        input_types_(input_->OutputTypes()) {}

  std::vector<TypeId> OutputTypes() const override {
    std::vector<TypeId> types;
    for (int g : group_by_) types.push_back(input_types_[g]);
    for (size_t a = 0; a < aggs_.size(); ++a) {
      types.push_back(AggOutputType(a));
    }
    return types;
  }

  Result<std::optional<Batch>> Next() override {
    if (done_) return std::optional<Batch>();
    done_ = true;
    SDW_RETURN_IF_ERROR(Accumulate());
    return std::optional<Batch>(Emit());
  }

 private:
  struct Group;

  TypeId AggInputType(size_t a) const {
    // In kFinal mode the agg inputs are the partial-output columns,
    // laid out right after the group columns.
    if (mode_ == AggMode::kFinal) {
      return input_types_[group_by_.size() + a];
    }
    return aggs_[a].column < 0 ? TypeId::kInt64
                               : input_types_[aggs_[a].column];
  }

  TypeId AggOutputType(size_t a) const {
    switch (aggs_[a].fn) {
      case AggFn::kCount:
        return TypeId::kInt64;
      case AggFn::kSum:
        return AggInputType(a) == TypeId::kDouble ? TypeId::kDouble
                                                  : TypeId::kInt64;
      case AggFn::kMin:
      case AggFn::kMax:
        return AggInputType(a);
      case AggFn::kApproxDistinct:
        // Partials ship the serialized sketch; single/final emit the
        // cardinality estimate.
        return mode_ == AggMode::kPartial ? TypeId::kString : TypeId::kInt64;
    }
    return TypeId::kInt64;
  }

  /// True if this batch can go through the type-specialized kernel:
  /// single null-free integer group key and count/sum aggregates only.
  /// This is the "tighter execution" a compiled plan buys (§2.1).
  bool CanFastPath(const Batch& batch) const {
    if (mode_ == AggMode::kFinal) return false;
    if (group_by_.size() != 1) return false;
    const ColumnVector& key = batch.columns[group_by_[0]];
    if (key.type() == TypeId::kString || key.type() == TypeId::kDouble ||
        key.has_nulls()) {
      return false;
    }
    for (const AggSpec& spec : aggs_) {
      if (spec.fn == AggFn::kMin || spec.fn == AggFn::kMax ||
          spec.fn == AggFn::kApproxDistinct) {
        return false;
      }
      if (spec.column >= 0 &&
          batch.columns[spec.column].type() == TypeId::kString) {
        return false;
      }
    }
    return true;
  }

  Status FastAccumulate(const Batch& batch) {
    const auto& keys = batch.columns[group_by_[0]].ints();
    const size_t n = keys.size();
    // Pre-resolve lane pointers per aggregate.
    struct Lane {
      AggFn fn;
      const int64_t* ints = nullptr;
      const double* doubles = nullptr;
      const uint8_t* nulls = nullptr;  // null when the column has no NULLs
    };
    std::vector<Lane> lanes;
    lanes.reserve(aggs_.size());
    for (const AggSpec& spec : aggs_) {
      Lane lane;
      lane.fn = spec.fn;
      if (spec.column >= 0) {
        const ColumnVector& col = batch.columns[spec.column];
        if (col.type() == TypeId::kDouble) {
          lane.doubles = col.doubles().data();
        } else {
          lane.ints = col.ints().data();
        }
        if (col.has_nulls()) lane.nulls = col.nulls().data();
      }
      lanes.push_back(lane);
    }
    for (size_t i = 0; i < n; ++i) {
      const int64_t key = keys[i];
      auto [it, inserted] = fast_groups_.try_emplace(key, nullptr);
      if (inserted) {
        // Materialize the group through the generic path once so the
        // string-keyed map and emit order stay consistent.
        std::string skey = SerializeKey(batch, group_by_, i);
        auto [git, gnew] = groups_.try_emplace(std::move(skey));
        if (gnew) {
          Group& g = git->second;
          g.keys.push_back(batch.columns[group_by_[0]].DatumAt(i));
          g.states.resize(aggs_.size());
          group_order_.push_back(&*git);
        }
        it->second = &git->second;
      }
      Group& g = *it->second;
      for (size_t a = 0; a < lanes.size(); ++a) {
        const Lane& lane = lanes[a];
        AggState& s = g.states[a];
        switch (lane.fn) {
          case AggFn::kCount:
            if (lane.ints == nullptr && lane.doubles == nullptr) {
              ++s.count;  // COUNT(*)
            } else if (lane.nulls == nullptr || lane.nulls[i] == 0) {
              ++s.count;
            }
            break;
          case AggFn::kSum:
            if (lane.nulls != nullptr && lane.nulls[i] != 0) break;
            if (lane.doubles != nullptr) {
              s.sum_double += lane.doubles[i];
            } else {
              s.sum_int += lane.ints[i];
              s.sum_double += static_cast<double>(lane.ints[i]);
            }
            s.has_value = true;
            break;
          case AggFn::kMin:
          case AggFn::kMax:
          case AggFn::kApproxDistinct:
            break;  // excluded by CanFastPath
        }
      }
    }
    return Status::OK();
  }

  Status Accumulate() {
    while (true) {
      SDW_ASSIGN_OR_RETURN(std::optional<Batch> batch, input_->Next());
      if (!batch.has_value()) break;
      if (CanFastPath(*batch)) {
        SDW_RETURN_IF_ERROR(FastAccumulate(*batch));
        continue;
      }
      const size_t n = batch->num_rows();
      for (size_t i = 0; i < n; ++i) {
        std::string key = SerializeKey(*batch, group_by_, i);
        auto it = groups_.find(key);
        if (it == groups_.end()) {
          Group g;
          g.keys.reserve(group_by_.size());
          for (int k : group_by_) {
            g.keys.push_back(batch->columns[k].DatumAt(i));
          }
          g.states.resize(aggs_.size());
          it = groups_.emplace(std::move(key), std::move(g)).first;
          group_order_.push_back(&*it);
        }
        SDW_RETURN_IF_ERROR(Update(&it->second, *batch, i));
      }
    }
    // A global aggregate (no GROUP BY) over zero rows still emits one
    // row of empty aggregates in kSingle/kFinal mode.
    if (group_by_.empty() && groups_.empty()) {
      Group g;
      g.states.resize(aggs_.size());
      auto it = groups_.emplace("", std::move(g)).first;
      group_order_.push_back(&*it);
    }
    return Status::OK();
  }

  Status Update(Group* g, const Batch& batch, size_t row);

  Batch Emit() {
    Batch out = MakeBatch(OutputTypes());
    for (auto* entry : group_order_) {
      Group& g = entry->second;
      for (size_t k = 0; k < group_by_.size(); ++k) {
        SDW_CHECK_OK(out.columns[k].AppendDatum(g.keys[k]));
      }
      for (size_t a = 0; a < aggs_.size(); ++a) {
        ColumnVector& col = out.columns[group_by_.size() + a];
        const AggState& s = g.states[a];
        switch (aggs_[a].fn) {
          case AggFn::kCount:
            col.AppendInt(s.count);
            break;
          case AggFn::kSum:
            if (!s.has_value) {
              col.AppendNull();
            } else if (col.type() == TypeId::kDouble) {
              col.AppendDouble(s.sum_double);
            } else {
              col.AppendInt(s.sum_int);
            }
            break;
          case AggFn::kMin:
            SDW_CHECK_OK(col.AppendDatum(s.has_value ? s.min : Datum::Null()));
            break;
          case AggFn::kMax:
            SDW_CHECK_OK(col.AppendDatum(s.has_value ? s.max : Datum::Null()));
            break;
          case AggFn::kApproxDistinct:
            if (mode_ == AggMode::kPartial) {
              col.AppendString(g.states[a].Sketch()->Serialize());
            } else {
              col.AppendInt(s.hll == nullptr
                                ? 0
                                : static_cast<int64_t>(s.hll->Estimate()));
            }
            break;
        }
      }
    }
    return out;
  }

  struct Group {
    std::vector<Datum> keys;
    std::vector<AggState> states;
  };

  OperatorPtr input_;
  std::vector<int> group_by_;
  std::vector<AggSpec> aggs_;
  AggMode mode_;
  std::vector<TypeId> input_types_;
  bool done_ = false;
  std::unordered_map<std::string, Group> groups_;
  std::vector<std::pair<const std::string, Group>*> group_order_;
  /// Fast-path index: integer group key -> group (pointers are stable
  /// because unordered_map is node-based).
  std::unordered_map<int64_t, Group*> fast_groups_;
};

Status HashAggregateOp::Update(Group* g, const Batch& batch, size_t row) {
  for (size_t a = 0; a < aggs_.size(); ++a) {
    AggState& s = g->states[a];
    const AggSpec& spec = aggs_[a];
    // Input column for this agg.
    int col_idx;
    if (mode_ == AggMode::kFinal) {
      col_idx = static_cast<int>(group_by_.size() + a);
    } else {
      col_idx = spec.column;
    }
    if (spec.fn == AggFn::kCount) {
      if (mode_ == AggMode::kFinal) {
        // Merging partial counts: sum them.
        const ColumnVector& col = batch.columns[col_idx];
        if (!col.IsNull(row)) s.count += col.IntAt(row);
      } else if (col_idx < 0) {
        ++s.count;  // COUNT(*)
      } else {
        if (!batch.columns[col_idx].IsNull(row)) ++s.count;
      }
      continue;
    }
    const ColumnVector& col = batch.columns[col_idx];
    if (col.IsNull(row)) continue;
    if (spec.fn == AggFn::kApproxDistinct) {
      if (mode_ == AggMode::kFinal) {
        // Partials arrive as serialized sketches: merge them.
        SDW_ASSIGN_OR_RETURN(HyperLogLog partial,
                             HyperLogLog::Deserialize(col.StringAt(row)));
        SDW_RETURN_IF_ERROR(s.Sketch()->Merge(partial));
      } else {
        s.Sketch()->Add(col.DatumAt(row).Hash());
      }
      continue;
    }
    switch (spec.fn) {
      case AggFn::kSum:
        if (col.type() == TypeId::kDouble) {
          s.sum_double += col.DoubleAt(row);
        } else {
          s.sum_int += col.IntAt(row);
          s.sum_double += static_cast<double>(col.IntAt(row));
        }
        s.has_value = true;
        break;
      case AggFn::kMin: {
        Datum v = col.DatumAt(row);
        if (!s.has_value || v < s.min) s.min = v;
        if (!s.has_value || s.max < v) s.max = v;
        s.has_value = true;
        break;
      }
      case AggFn::kMax: {
        Datum v = col.DatumAt(row);
        if (!s.has_value || v < s.min) s.min = v;
        if (!s.has_value || s.max < v) s.max = v;
        s.has_value = true;
        break;
      }
      case AggFn::kCount:
      case AggFn::kApproxDistinct:
        break;  // handled above
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Sort
// ---------------------------------------------------------------------------

class SortOp : public Operator {
 public:
  SortOp(OperatorPtr input, std::vector<SortKey> keys)
      : input_(std::move(input)), keys_(std::move(keys)) {}

  std::vector<TypeId> OutputTypes() const override {
    return input_->OutputTypes();
  }

  Result<std::optional<Batch>> Next() override {
    if (done_) return std::optional<Batch>();
    done_ = true;
    SDW_ASSIGN_OR_RETURN(Batch all, Collect(input_.get()));
    const size_t n = all.num_rows();
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      for (const SortKey& key : keys_) {
        const ColumnVector& col = all.columns[key.column];
        int cmp = col.DatumAt(a).Compare(col.DatumAt(b));
        if (cmp != 0) return key.descending ? cmp > 0 : cmp < 0;
      }
      return false;
    });
    Batch out = MakeBatch(all.Types());
    for (size_t i : order) {
      SDW_RETURN_IF_ERROR(AppendRow(all, i, &out));
    }
    return std::optional<Batch>(std::move(out));
  }

 private:
  OperatorPtr input_;
  std::vector<SortKey> keys_;
  bool done_ = false;
};

// ---------------------------------------------------------------------------
// Limit
// ---------------------------------------------------------------------------

class LimitOp : public Operator {
 public:
  LimitOp(OperatorPtr input, uint64_t limit)
      : input_(std::move(input)), remaining_(limit) {}

  std::vector<TypeId> OutputTypes() const override {
    return input_->OutputTypes();
  }

  Result<std::optional<Batch>> Next() override {
    if (remaining_ == 0) return std::optional<Batch>();
    SDW_ASSIGN_OR_RETURN(std::optional<Batch> batch, input_->Next());
    if (!batch.has_value()) return std::optional<Batch>();
    if (batch->num_rows() <= remaining_) {
      remaining_ -= batch->num_rows();
      return batch;
    }
    Batch out = MakeBatch(batch->Types());
    for (size_t i = 0; i < remaining_; ++i) {
      SDW_RETURN_IF_ERROR(AppendRow(*batch, i, &out));
    }
    remaining_ = 0;
    return std::optional<Batch>(std::move(out));
  }

 private:
  OperatorPtr input_;
  uint64_t remaining_;
};

}  // namespace

OperatorPtr MemoryScan(std::vector<TypeId> types, std::vector<Batch> batches) {
  return std::make_unique<MemoryScanOp>(std::move(types), std::move(batches));
}

OperatorPtr ShardScan(storage::ShardRef ref, std::vector<int> columns,
                      std::vector<storage::RangePredicate> predicates,
                      ScanOptions options) {
  return std::make_unique<ShardScanOp>(std::move(ref), std::move(columns),
                                       std::move(predicates), options);
}

OperatorPtr ShardScan(storage::TableShard* shard, std::vector<int> columns,
                      std::vector<storage::RangePredicate> predicates,
                      ScanOptions options) {
  // Non-owning convenience for single-threaded callers (tests, tools):
  // pins whatever the head version is right now.
  storage::ShardRef ref;
  ref.shard = std::shared_ptr<storage::TableShard>(
      shard, [](storage::TableShard*) {});
  ref.version = shard->Snapshot();
  return ShardScan(std::move(ref), std::move(columns), std::move(predicates),
                   options);
}

OperatorPtr Filter(OperatorPtr input, ExprPtr predicate) {
  return std::make_unique<FilterOp>(std::move(input), std::move(predicate));
}

OperatorPtr CountRows(OperatorPtr input, uint64_t* counter) {
  return std::make_unique<CountRowsOp>(std::move(input), counter);
}

OperatorPtr Project(OperatorPtr input, std::vector<ExprPtr> exprs) {
  return std::make_unique<ProjectOp>(std::move(input), std::move(exprs));
}

OperatorPtr HashJoin(OperatorPtr probe, OperatorPtr build,
                     std::vector<int> probe_keys,
                     std::vector<int> build_keys) {
  return std::make_unique<HashJoinOp>(std::move(probe), std::move(build),
                                      std::move(probe_keys),
                                      std::move(build_keys));
}

OperatorPtr HashAggregate(OperatorPtr input, std::vector<int> group_by,
                          std::vector<AggSpec> aggs, AggMode mode) {
  return std::make_unique<HashAggregateOp>(std::move(input),
                                           std::move(group_by),
                                           std::move(aggs), mode);
}

OperatorPtr Sort(OperatorPtr input, std::vector<SortKey> keys) {
  return std::make_unique<SortOp>(std::move(input), std::move(keys));
}

OperatorPtr Limit(OperatorPtr input, uint64_t limit) {
  return std::make_unique<LimitOp>(std::move(input), limit);
}

}  // namespace sdw::exec
