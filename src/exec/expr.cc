#include "exec/expr.h"

#include <utility>

namespace sdw::exec {

namespace {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool ApplyCmp(CmpOp op, int cmp) {
  switch (op) {
    case CmpOp::kEq:
      return cmp == 0;
    case CmpOp::kNe:
      return cmp != 0;
    case CmpOp::kLt:
      return cmp < 0;
    case CmpOp::kLe:
      return cmp <= 0;
    case CmpOp::kGt:
      return cmp > 0;
    case CmpOp::kGe:
      return cmp >= 0;
  }
  return false;
}

class ColExpr : public Expr {
 public:
  ColExpr(int index, TypeId type) : index_(index), type_(type) {}

  TypeId type() const override { return type_; }

  Result<ColumnVector> EvalBatch(const Batch& input) const override {
    if (index_ < 0 ||
        static_cast<size_t>(index_) >= input.columns.size()) {
      return Status::InvalidArgument("column ref out of range");
    }
    const ColumnVector& col = input.columns[index_];
    if (col.type() != type_) {
      return Status::Internal("column ref type mismatch");
    }
    ColumnVector copy(type_);
    copy.Reserve(col.size());
    SDW_RETURN_IF_ERROR(copy.AppendRange(col, 0, col.size()));
    return copy;
  }

  Result<Datum> EvalRow(const Row& row) const override {
    if (index_ < 0 || static_cast<size_t>(index_) >= row.size()) {
      return Status::InvalidArgument("column ref out of range");
    }
    return row[index_];
  }

  std::string ToString() const override {
    return "$" + std::to_string(index_);
  }

  int index() const { return index_; }

 private:
  int index_;
  TypeId type_;
};

class LitExpr : public Expr {
 public:
  explicit LitExpr(Datum value) : value_(std::move(value)) {}

  TypeId type() const override { return value_.type(); }

  Result<ColumnVector> EvalBatch(const Batch& input) const override {
    ColumnVector out(value_.type());
    const size_t n = input.num_rows();
    out.Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      SDW_RETURN_IF_ERROR(out.AppendDatum(value_));
    }
    return out;
  }

  Result<Datum> EvalRow(const Row& row) const override { return value_; }

  std::string ToString() const override { return value_.ToString(); }

  const Datum& value() const { return value_; }

 private:
  Datum value_;
};

class CmpExpr : public Expr {
 public:
  CmpExpr(CmpOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  TypeId type() const override { return TypeId::kBool; }

  Result<ColumnVector> EvalBatch(const Batch& input) const override {
    // Specialized kernel for the dominant predicate shape, column <op>
    // integer literal over a null-free lane: no column copy, no literal
    // materialization — the "compiled" tight loop of §2.1.
    if (const auto* col_ref = dynamic_cast<const ColExpr*>(left_.get())) {
      if (const auto* lit = dynamic_cast<const LitExpr*>(right_.get())) {
        const int idx = col_ref->index();
        if (idx >= 0 && static_cast<size_t>(idx) < input.columns.size()) {
          const ColumnVector& col = input.columns[idx];
          const Datum& rhs = lit->value();
          if (IsIntegerLike(col.type()) && !col.has_nulls() &&
              !rhs.is_null() && IsIntegerLike(rhs.type())) {
            const int64_t pivot = rhs.int_value();
            const auto& lane = col.ints();
            ColumnVector out(TypeId::kBool);
            out.Reserve(lane.size());
            for (int64_t v : lane) {
              int cmp = v < pivot ? -1 : (v > pivot ? 1 : 0);
              out.AppendInt(ApplyCmp(op_, cmp) ? 1 : 0);
            }
            return out;
          }
        }
      }
    }
    SDW_ASSIGN_OR_RETURN(ColumnVector l, left_->EvalBatch(input));
    SDW_ASSIGN_OR_RETURN(ColumnVector r, right_->EvalBatch(input));
    ColumnVector out(TypeId::kBool);
    out.Reserve(l.size());
    // Type-specialized fast paths: the contrast with EvalRow's
    // per-value Datum dispatch is the point of bench A5.
    if (l.type() != TypeId::kString && r.type() != TypeId::kString &&
        l.type() != TypeId::kDouble && r.type() != TypeId::kDouble &&
        !l.has_nulls() && !r.has_nulls()) {
      const auto& lv = l.ints();
      const auto& rv = r.ints();
      for (size_t i = 0; i < lv.size(); ++i) {
        int cmp = lv[i] < rv[i] ? -1 : (lv[i] > rv[i] ? 1 : 0);
        out.AppendInt(ApplyCmp(op_, cmp) ? 1 : 0);
      }
      return out;
    }
    for (size_t i = 0; i < l.size(); ++i) {
      if (l.IsNull(i) || r.IsNull(i)) {
        out.AppendNull();
      } else {
        out.AppendInt(
            ApplyCmp(op_, l.DatumAt(i).Compare(r.DatumAt(i))) ? 1 : 0);
      }
    }
    return out;
  }

  Result<Datum> EvalRow(const Row& row) const override {
    SDW_ASSIGN_OR_RETURN(Datum l, left_->EvalRow(row));
    SDW_ASSIGN_OR_RETURN(Datum r, right_->EvalRow(row));
    if (l.is_null() || r.is_null()) return Datum::Null();
    return Datum::Bool(ApplyCmp(op_, l.Compare(r)));
  }

  std::string ToString() const override {
    return "(" + left_->ToString() + " " + CmpOpName(op_) + " " +
           right_->ToString() + ")";
  }

 private:
  CmpOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

enum class BoolOp { kAnd, kOr };

class BoolExpr : public Expr {
 public:
  BoolExpr(BoolOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  TypeId type() const override { return TypeId::kBool; }

  Result<ColumnVector> EvalBatch(const Batch& input) const override {
    SDW_ASSIGN_OR_RETURN(ColumnVector l, left_->EvalBatch(input));
    SDW_ASSIGN_OR_RETURN(ColumnVector r, right_->EvalBatch(input));
    ColumnVector out(TypeId::kBool);
    out.Reserve(l.size());
    for (size_t i = 0; i < l.size(); ++i) {
      SDW_RETURN_IF_ERROR(out.AppendDatum(Combine(l.DatumAt(i), r.DatumAt(i))));
    }
    return out;
  }

  Result<Datum> EvalRow(const Row& row) const override {
    SDW_ASSIGN_OR_RETURN(Datum l, left_->EvalRow(row));
    SDW_ASSIGN_OR_RETURN(Datum r, right_->EvalRow(row));
    return Combine(l, r);
  }

  std::string ToString() const override {
    return "(" + left_->ToString() +
           (op_ == BoolOp::kAnd ? " AND " : " OR ") + right_->ToString() +
           ")";
  }

 private:
  // SQL three-valued logic.
  Datum Combine(const Datum& l, const Datum& r) const {
    const bool lt = !l.is_null() && l.int_value() != 0;
    const bool rt = !r.is_null() && r.int_value() != 0;
    const bool lf = !l.is_null() && l.int_value() == 0;
    const bool rf = !r.is_null() && r.int_value() == 0;
    if (op_ == BoolOp::kAnd) {
      if (lf || rf) return Datum::Bool(false);
      if (lt && rt) return Datum::Bool(true);
      return Datum::Null();
    }
    if (lt || rt) return Datum::Bool(true);
    if (lf && rf) return Datum::Bool(false);
    return Datum::Null();
  }

  BoolOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprPtr input) : input_(std::move(input)) {}

  TypeId type() const override { return TypeId::kBool; }

  Result<ColumnVector> EvalBatch(const Batch& input) const override {
    SDW_ASSIGN_OR_RETURN(ColumnVector v, input_->EvalBatch(input));
    ColumnVector out(TypeId::kBool);
    out.Reserve(v.size());
    for (size_t i = 0; i < v.size(); ++i) {
      if (v.IsNull(i)) {
        out.AppendNull();
      } else {
        out.AppendInt(v.IntAt(i) == 0 ? 1 : 0);
      }
    }
    return out;
  }

  Result<Datum> EvalRow(const Row& row) const override {
    SDW_ASSIGN_OR_RETURN(Datum v, input_->EvalRow(row));
    if (v.is_null()) return Datum::Null();
    return Datum::Bool(v.int_value() == 0);
  }

  std::string ToString() const override {
    return "NOT " + input_->ToString();
  }

 private:
  ExprPtr input_;
};

class ArithExpr : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {
    const bool any_double = left_->type() == TypeId::kDouble ||
                            right_->type() == TypeId::kDouble;
    type_ = (any_double || op == ArithOp::kDiv) ? TypeId::kDouble
                                                : TypeId::kInt64;
  }

  TypeId type() const override { return type_; }

  Result<ColumnVector> EvalBatch(const Batch& input) const override {
    SDW_ASSIGN_OR_RETURN(ColumnVector l, left_->EvalBatch(input));
    SDW_ASSIGN_OR_RETURN(ColumnVector r, right_->EvalBatch(input));
    if (l.type() == TypeId::kString || r.type() == TypeId::kString) {
      return Status::InvalidArgument("arithmetic on strings");
    }
    ColumnVector out(type_);
    out.Reserve(l.size());
    for (size_t i = 0; i < l.size(); ++i) {
      if (l.IsNull(i) || r.IsNull(i)) {
        out.AppendNull();
        continue;
      }
      if (type_ == TypeId::kDouble) {
        double a = l.type() == TypeId::kDouble ? l.DoubleAt(i)
                                               : static_cast<double>(l.IntAt(i));
        double b = r.type() == TypeId::kDouble ? r.DoubleAt(i)
                                               : static_cast<double>(r.IntAt(i));
        out.AppendDouble(ApplyDouble(a, b));
      } else {
        out.AppendInt(ApplyInt(l.IntAt(i), r.IntAt(i)));
      }
    }
    return out;
  }

  Result<Datum> EvalRow(const Row& row) const override {
    SDW_ASSIGN_OR_RETURN(Datum l, left_->EvalRow(row));
    SDW_ASSIGN_OR_RETURN(Datum r, right_->EvalRow(row));
    if (l.is_null() || r.is_null()) return Datum::Null();
    if (l.type() == TypeId::kString || r.type() == TypeId::kString) {
      return Status::InvalidArgument("arithmetic on strings");
    }
    if (type_ == TypeId::kDouble) {
      return Datum::Double(ApplyDouble(l.AsDouble(), r.AsDouble()));
    }
    return Datum::Int64(ApplyInt(l.int_value(), r.int_value()));
  }

  std::string ToString() const override {
    const char* names = "+-*/";
    return "(" + left_->ToString() + " " +
           std::string(1, names[static_cast<int>(op_)]) + " " +
           right_->ToString() + ")";
  }

 private:
  // Integer arithmetic wraps (two's complement) rather than invoking
  // undefined behaviour on overflow.
  int64_t ApplyInt(int64_t a, int64_t b) const {
    const uint64_t ua = static_cast<uint64_t>(a);
    const uint64_t ub = static_cast<uint64_t>(b);
    switch (op_) {
      case ArithOp::kAdd:
        return static_cast<int64_t>(ua + ub);
      case ArithOp::kSub:
        return static_cast<int64_t>(ua - ub);
      case ArithOp::kMul:
        return static_cast<int64_t>(ua * ub);
      case ArithOp::kDiv:
        return b == 0 ? 0 : a / b;  // unreachable: kDiv types as double
    }
    return 0;
  }
  double ApplyDouble(double a, double b) const {
    switch (op_) {
      case ArithOp::kAdd:
        return a + b;
      case ArithOp::kSub:
        return a - b;
      case ArithOp::kMul:
        return a * b;
      case ArithOp::kDiv:
        return b == 0 ? 0.0 : a / b;
    }
    return 0;
  }

  ArithOp op_;
  ExprPtr left_;
  ExprPtr right_;
  TypeId type_;
};

class IsNullExpr : public Expr {
 public:
  explicit IsNullExpr(ExprPtr input) : input_(std::move(input)) {}

  TypeId type() const override { return TypeId::kBool; }

  Result<ColumnVector> EvalBatch(const Batch& input) const override {
    SDW_ASSIGN_OR_RETURN(ColumnVector v, input_->EvalBatch(input));
    ColumnVector out(TypeId::kBool);
    out.Reserve(v.size());
    for (size_t i = 0; i < v.size(); ++i) {
      out.AppendInt(v.IsNull(i) ? 1 : 0);
    }
    return out;
  }

  Result<Datum> EvalRow(const Row& row) const override {
    SDW_ASSIGN_OR_RETURN(Datum v, input_->EvalRow(row));
    return Datum::Bool(v.is_null());
  }

  std::string ToString() const override {
    return input_->ToString() + " IS NULL";
  }

 private:
  ExprPtr input_;
};

class StartsWithExpr : public Expr {
 public:
  StartsWithExpr(ExprPtr input, std::string prefix)
      : input_(std::move(input)), prefix_(std::move(prefix)) {}

  TypeId type() const override { return TypeId::kBool; }

  Result<ColumnVector> EvalBatch(const Batch& input) const override {
    SDW_ASSIGN_OR_RETURN(ColumnVector v, input_->EvalBatch(input));
    if (v.type() != TypeId::kString) {
      return Status::InvalidArgument("STARTS WITH on non-string");
    }
    ColumnVector out(TypeId::kBool);
    out.Reserve(v.size());
    for (size_t i = 0; i < v.size(); ++i) {
      if (v.IsNull(i)) {
        out.AppendNull();
      } else {
        out.AppendInt(v.StringAt(i).starts_with(prefix_) ? 1 : 0);
      }
    }
    return out;
  }

  Result<Datum> EvalRow(const Row& row) const override {
    SDW_ASSIGN_OR_RETURN(Datum v, input_->EvalRow(row));
    if (v.is_null()) return Datum::Null();
    if (v.type() != TypeId::kString) {
      return Status::InvalidArgument("STARTS WITH on non-string");
    }
    return Datum::Bool(v.string_value().starts_with(prefix_));
  }

  std::string ToString() const override {
    return input_->ToString() + " LIKE '" + prefix_ + "%'";
  }

 private:
  ExprPtr input_;
  std::string prefix_;
};

}  // namespace

ExprPtr Col(int index, TypeId type) {
  return std::make_shared<ColExpr>(index, type);
}
ExprPtr Lit(Datum value) { return std::make_shared<LitExpr>(std::move(value)); }
ExprPtr Cmp(CmpOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<CmpExpr>(op, std::move(left), std::move(right));
}
ExprPtr And(ExprPtr left, ExprPtr right) {
  return std::make_shared<BoolExpr>(BoolOp::kAnd, std::move(left),
                                    std::move(right));
}
ExprPtr Or(ExprPtr left, ExprPtr right) {
  return std::make_shared<BoolExpr>(BoolOp::kOr, std::move(left),
                                    std::move(right));
}
ExprPtr Not(ExprPtr input) { return std::make_shared<NotExpr>(std::move(input)); }
ExprPtr Arith(ArithOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<ArithExpr>(op, std::move(left), std::move(right));
}
ExprPtr IsNull(ExprPtr input) {
  return std::make_shared<IsNullExpr>(std::move(input));
}
ExprPtr StartsWith(ExprPtr input, std::string prefix) {
  return std::make_shared<StartsWithExpr>(std::move(input),
                                          std::move(prefix));
}

}  // namespace sdw::exec
