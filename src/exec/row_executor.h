#ifndef SDW_EXEC_ROW_EXECUTOR_H_
#define SDW_EXEC_ROW_EXECUTOR_H_

#include <memory>
#include <optional>
#include <vector>

#include "exec/expr.h"
#include "exec/operators.h"
#include "storage/table_shard.h"

namespace sdw::exec {

/// Tuple-at-a-time Volcano operator: the "execution in a general-purpose
/// set of executor functions" the paper contrasts with compiled
/// execution (§2.1). Every value passes through virtual dispatch and a
/// Datum box — deliberately, so bench A5 can measure the gap against the
/// vectorized/type-specialized engine, net of the compilation step's
/// fixed overhead.
class RowOperator {
 public:
  virtual ~RowOperator() = default;

  /// Produces the next row, or nullopt at end of stream.
  virtual Result<std::optional<Row>> Next() = 0;
};

using RowOperatorPtr = std::unique_ptr<RowOperator>;

/// Scans a shard row by row (blocks are still decoded in bulk — the
/// interpretation overhead under test is operator/expression dispatch,
/// not storage access).
RowOperatorPtr RowScan(storage::ShardRef ref, std::vector<int> columns);
/// Non-owning form: pins the shard's current head version.
RowOperatorPtr RowScan(storage::TableShard* shard, std::vector<int> columns);

/// Keeps rows where the predicate evaluates to TRUE.
RowOperatorPtr RowFilter(RowOperatorPtr input, ExprPtr predicate);

/// Computes one output value per expression per row.
RowOperatorPtr RowProject(RowOperatorPtr input, std::vector<ExprPtr> exprs);

/// Hash aggregation, datum-at-a-time.
RowOperatorPtr RowAggregate(RowOperatorPtr input, std::vector<int> group_by,
                            std::vector<AggSpec> aggs);

/// Drains a row pipeline into a materialized batch with the given types.
Result<Batch> CollectRows(RowOperator* op, const std::vector<TypeId>& types);

}  // namespace sdw::exec

#endif  // SDW_EXEC_ROW_EXECUTOR_H_
