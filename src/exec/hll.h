#ifndef SDW_EXEC_HLL_H_
#define SDW_EXEC_HLL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace sdw::exec {

/// HyperLogLog cardinality sketch — the engine behind APPROXIMATE
/// COUNT(DISTINCT). The paper calls exactly for this (§4): "we would
/// like to build distributed approximate equivalents for all non-linear
/// exact operations within our engine" — COUNT(DISTINCT) is the
/// canonical non-linear aggregate, and the sketch's register-wise max
/// merge is what makes it distribute: slices build partials, the leader
/// merges, nobody ships row sets.
class HyperLogLog {
 public:
  /// 2^precision registers; precision 12 -> 4096 registers -> ~1.6%
  /// standard error at ~4 KiB per group.
  explicit HyperLogLog(int precision = 12);

  int precision() const { return precision_; }
  size_t num_registers() const { return registers_.size(); }

  /// Folds one hashed value into the sketch.
  void Add(uint64_t hash);

  /// Register-wise max: the union of the two multisets.
  Status Merge(const HyperLogLog& other);

  /// Cardinality estimate with the standard small-range correction.
  uint64_t Estimate() const;

  /// Compact wire form (precision byte + registers).
  std::string Serialize() const;
  static Result<HyperLogLog> Deserialize(const std::string& data);

 private:
  int precision_;
  std::vector<uint8_t> registers_;
};

}  // namespace sdw::exec

#endif  // SDW_EXEC_HLL_H_
