#ifndef SDW_PLAN_FINGERPRINT_H_
#define SDW_PLAN_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "plan/logical.h"

namespace sdw::plan {

/// Canonical text of a logical query, the key domain of the warehouse's
/// compiled-segment and result caches. Two queries get the same text
/// iff they are the same query up to conjunct order: WHERE conjuncts
/// and IN-lists are serialized individually and sorted, every other
/// clause keeps its (semantically meaningful) order. Literals are
/// rendered exactly — doubles with round-trip precision, strings
/// length-prefixed — so nearly-equal literals can never alias to one
/// cache key the way display formatting would let them.
std::string CanonicalText(const LogicalQuery& query);

/// Hash64 of CanonicalText. Callers that key maps by the fingerprint
/// must still compare the canonical text on lookup: a 64-bit hash is
/// for bucketing, not for proving two queries equal.
uint64_t Fingerprint(const LogicalQuery& query);

}  // namespace sdw::plan

#endif  // SDW_PLAN_FINGERPRINT_H_
