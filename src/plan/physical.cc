#include "plan/physical.h"

namespace sdw::plan {

const char* JoinStrategyName(JoinStrategy s) {
  switch (s) {
    case JoinStrategy::kCoLocated:
      return "CO-LOCATED";
    case JoinStrategy::kBroadcastBuild:
      return "BROADCAST";
    case JoinStrategy::kShuffle:
      return "SHUFFLE";
  }
  return "?";
}

std::string PhysicalQuery::ToString() const {
  std::string out = "XN Scan " + scan.table + " (cols";
  for (int c : scan.columns) out += " " + std::to_string(c);
  out += ")";
  if (!scan.predicates.empty()) {
    out += " [" + std::to_string(scan.predicates.size()) + " zone preds]";
  }
  if (scan.filter) out += " filter " + scan.filter->ToString();
  if (join.has_value()) {
    out += "\n  -> " + std::string(JoinStrategyName(join->strategy)) +
           " Hash Join with " + join->build.table;
    if (join->build.filter) {
      out += " (build filter " + join->build.filter->ToString() + ")";
    }
  }
  if (agg.has_value()) {
    out += "\n  -> Partial HashAggregate (" +
           std::to_string(agg->group_by.size()) + " keys, " +
           std::to_string(agg->aggs.size()) + " aggs) per slice";
    out += "\n  -> Final HashAggregate at leader";
  }
  if (!project.empty()) {
    out += "\n  -> Project";
    for (const auto& e : project) out += " " + e->ToString();
  }
  if (!order_by.empty()) {
    out += "\n  -> Sort at leader";
  }
  if (limit.has_value()) {
    out += "\n  -> Limit " + std::to_string(*limit);
  }
  return out;
}

}  // namespace sdw::plan
