#ifndef SDW_PLAN_PLANNER_H_
#define SDW_PLAN_PLANNER_H_

#include "catalog/catalog.h"
#include "common/result.h"
#include "plan/logical.h"
#include "plan/physical.h"

namespace sdw::plan {

/// Planner tunables.
struct PlannerOptions {
  /// Build sides at or below this many rows (by stats) are broadcast
  /// instead of shuffled when they are not co-locatable.
  uint64_t broadcast_row_threshold = 100000;
};

/// Turns a declarative LogicalQuery into a distributed PhysicalQuery:
/// binds names, derives zone-map predicates from WHERE conjuncts,
/// rewrites AVG into SUM/COUNT so partial aggregates merge
/// associatively, and picks the join strategy from distribution keys
/// and table statistics (§2.1).
class Planner {
 public:
  Planner(const Catalog* catalog, PlannerOptions options = {})
      : catalog_(catalog), options_(options) {}

  Result<PhysicalQuery> Plan(const LogicalQuery& query) const;

 private:
  const Catalog* catalog_;
  PlannerOptions options_;
};

}  // namespace sdw::plan

#endif  // SDW_PLAN_PLANNER_H_
