#ifndef SDW_PLAN_PHYSICAL_H_
#define SDW_PLAN_PHYSICAL_H_

#include <optional>
#include <string>
#include <vector>

#include "exec/expr.h"
#include "exec/operators.h"
#include "storage/table_shard.h"

namespace sdw::plan {

/// How the two sides of a distributed join meet on a slice (§2.1: using
/// distribution keys "allows join processing on that key to be
/// co-located on individual slices ... avoiding the redistribution of
/// intermediate results").
enum class JoinStrategy {
  /// Both sides are already on the right slice (matching DISTKEYs, or
  /// the build side is DISTSTYLE ALL). No network.
  kCoLocated,
  /// The build side is collected and copied to every slice.
  kBroadcastBuild,
  /// Both sides are re-hashed on the join key across slices.
  kShuffle,
};

const char* JoinStrategyName(JoinStrategy s);

/// One table scan: projected column indices (into the table schema),
/// zone-map range predicates, and a residual filter over the projected
/// columns.
struct ScanSpec {
  std::string table;
  std::vector<int> columns;
  std::vector<storage::RangePredicate> predicates;
  /// Residual filter evaluated over the projected columns (column refs
  /// index into `columns` positions). Null = none.
  exec::ExprPtr filter;
};

/// Join details. Output layout: probe columns then build columns.
struct JoinSpec {
  ScanSpec build;
  /// Key positions into the probe scan's output / build scan's output.
  std::vector<int> probe_keys;
  std::vector<int> build_keys;
  JoinStrategy strategy = JoinStrategy::kCoLocated;
};

/// Aggregation run as slice-local partials merged by the leader.
struct AggDetails {
  std::vector<int> group_by;  // positions into the pipeline output
  std::vector<exec::AggSpec> aggs;
};

/// A fully-resolved distributed query: per-slice pipeline (scan [+ join]
/// [+ partial agg]) and leader-side finalization (final agg, projection,
/// sort, limit).
struct PhysicalQuery {
  ScanSpec scan;
  std::optional<JoinSpec> join;
  std::optional<AggDetails> agg;
  /// Leader-side projection over the (final-aggregated) pipeline output;
  /// empty = identity.
  std::vector<exec::ExprPtr> project;
  std::vector<exec::SortKey> order_by;
  std::optional<uint64_t> limit;
  /// Names for the result columns.
  std::vector<std::string> output_names;

  /// EXPLAIN-style rendering.
  std::string ToString() const;
};

}  // namespace sdw::plan

#endif  // SDW_PLAN_PHYSICAL_H_
