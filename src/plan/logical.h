#ifndef SDW_PLAN_LOGICAL_H_
#define SDW_PLAN_LOGICAL_H_

#include <optional>
#include <string>
#include <vector>

#include "catalog/types.h"

namespace sdw::plan {

/// A column reference by name, optionally table-qualified ("t.c").
struct ColumnName {
  std::string table;  // empty = unqualified
  std::string column;

  std::string ToString() const {
    return table.empty() ? column : table + "." + column;
  }
};

/// Comparison in a WHERE conjunct: <column> <op> <literal>.
enum class LogicalCmp { kEq, kNe, kLt, kLe, kGt, kGe };

/// One WHERE conjunct. Beyond simple comparisons, three sugar forms are
/// supported (each still zone-map prunable): BETWEEN lo AND hi,
/// IN (v, ...), and the LIKE 'prefix%' fast path.
struct Selection {
  enum class Kind { kCompare, kBetween, kIn, kLikePrefix };

  // The common {column, op, literal} triple initializes a kCompare
  // conjunct by aggregate init; set `kind` for the sugar forms.
  ColumnName column;
  LogicalCmp op = LogicalCmp::kEq;
  Datum literal;                 // kCompare value / kBetween lower bound
  Kind kind = Kind::kCompare;
  Datum literal2;                // kBetween upper bound
  std::vector<Datum> in_list;    // kIn values
  std::string like_prefix;       // kLikePrefix prefix
};

/// SELECT-list item: either a plain column or an aggregate over one.
/// kApproxCountDistinct is APPROXIMATE COUNT(DISTINCT col): a
/// HyperLogLog sketch merged across slices (§4 "approximate functions").
enum class LogicalAggFn {
  kNone,
  kCount,
  kCountStar,
  kSum,
  kMin,
  kMax,
  kAvg,
  kApproxCountDistinct,
};

struct SelectItem {
  LogicalAggFn agg = LogicalAggFn::kNone;
  ColumnName column;  // ignored for kCountStar
  std::string alias;  // output name; defaulted when empty
};

struct OrderItem {
  OrderItem() = default;
  OrderItem(int index, bool desc) : select_index(index), descending(desc) {}

  /// Position into the select list (0-based).
  int select_index = 0;
  bool descending = false;
  /// SELECT * queries have no select list at parse time, so ORDER BY
  /// names can't be resolved to positions yet; the planner resolves
  /// `column` after star expansion when `by_name` is set.
  ColumnName column;
  bool by_name = false;
};

/// A declarative single-block query: SELECT items FROM table
/// [JOIN table2 ON a = b] [WHERE conjuncts] [GROUP BY cols]
/// [ORDER BY ...] [LIMIT n]. The planner turns this into a
/// PhysicalQuery; the SQL front end produces it from text.
struct LogicalQuery {
  std::string from_table;
  /// SELECT *: the planner expands to every column of from_table (in
  /// schema order); `select` is empty when set.
  bool select_star = false;
  std::optional<std::string> join_table;
  ColumnName join_left;   // column on from_table
  ColumnName join_right;  // column on join_table
  std::vector<Selection> where;
  std::vector<SelectItem> select;
  std::vector<ColumnName> group_by;
  std::vector<OrderItem> order_by;
  std::optional<uint64_t> limit;
};

}  // namespace sdw::plan

#endif  // SDW_PLAN_LOGICAL_H_
