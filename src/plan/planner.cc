#include "plan/planner.h"

#include <algorithm>
#include <map>

namespace sdw::plan {

namespace {

/// Tracks which columns of one table the pipeline scans, assigning
/// positions on demand.
class ScanBinder {
 public:
  ScanBinder(std::string table, const TableSchema& schema)
      : table_(std::move(table)), schema_(schema) {}

  const std::string& table() const { return table_; }
  const TableSchema& schema() const { return schema_; }

  /// Returns the scan-output position for the named column, adding it
  /// to the projection if new.
  Result<int> Bind(const std::string& column) {
    SDW_ASSIGN_OR_RETURN(size_t idx, schema_.FindColumn(column));
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i] == static_cast<int>(idx)) return static_cast<int>(i);
    }
    columns_.push_back(static_cast<int>(idx));
    return static_cast<int>(columns_.size() - 1);
  }

  bool Has(const std::string& column) const {
    return schema_.FindColumn(column).ok();
  }

  /// Schema index (not scan position) of an already-bound scan position.
  int SchemaIndex(int scan_pos) const { return columns_[scan_pos]; }

  TypeId TypeAt(int scan_pos) const {
    return schema_.column(columns_[scan_pos]).type;
  }

  const std::vector<int>& columns() const { return columns_; }

 private:
  std::string table_;
  const TableSchema& schema_;
  std::vector<int> columns_;
};

exec::CmpOp ToExecCmp(LogicalCmp op) {
  switch (op) {
    case LogicalCmp::kEq:
      return exec::CmpOp::kEq;
    case LogicalCmp::kNe:
      return exec::CmpOp::kNe;
    case LogicalCmp::kLt:
      return exec::CmpOp::kLt;
    case LogicalCmp::kLe:
      return exec::CmpOp::kLe;
    case LogicalCmp::kGt:
      return exec::CmpOp::kGt;
    case LogicalCmp::kGe:
      return exec::CmpOp::kGe;
  }
  return exec::CmpOp::kEq;
}

/// Conservative zone-map bounds for a conjunct (inclusive both sides);
/// exactness is guaranteed by the residual filter.
bool ZonePredicateFor(LogicalCmp op, const Datum& lit, Datum* lo, Datum* hi) {
  switch (op) {
    case LogicalCmp::kEq:
      *lo = lit;
      *hi = lit;
      return true;
    case LogicalCmp::kLt:
    case LogicalCmp::kLe:
      *lo = Datum::Null();
      *hi = lit;
      return true;
    case LogicalCmp::kGt:
    case LogicalCmp::kGe:
      *lo = lit;
      *hi = Datum::Null();
      return true;
    case LogicalCmp::kNe:
      return false;
  }
  return false;
}

TypeId AggOutputType(const exec::AggSpec& spec, TypeId input_type) {
  switch (spec.fn) {
    case exec::AggFn::kCount:
    case exec::AggFn::kApproxDistinct:  // final output is the estimate
      return TypeId::kInt64;
    case exec::AggFn::kSum:
      return input_type == TypeId::kDouble ? TypeId::kDouble : TypeId::kInt64;
    case exec::AggFn::kMin:
    case exec::AggFn::kMax:
      return input_type;
  }
  return TypeId::kInt64;
}

}  // namespace

Result<PhysicalQuery> Planner::Plan(const LogicalQuery& query) const {
  if (query.select_star) {
    if (query.join_table.has_value()) {
      return Status::NotSupported("SELECT * is not supported with JOIN");
    }
    SDW_ASSIGN_OR_RETURN(TableSchema schema,
                         catalog_->GetTable(query.from_table));
    LogicalQuery expanded = query;
    expanded.select_star = false;
    for (const ColumnDef& col : schema.columns()) {
      SelectItem item;
      item.column.column = col.name;
      expanded.select.push_back(std::move(item));
    }
    // The select list is now the schema in order, so deferred ORDER BY
    // names resolve to schema positions.
    for (OrderItem& order : expanded.order_by) {
      if (!order.by_name) continue;
      SDW_ASSIGN_OR_RETURN(size_t idx,
                           schema.FindColumn(order.column.column));
      order.select_index = static_cast<int>(idx);
      order.by_name = false;
    }
    return Plan(expanded);
  }
  if (query.select.empty()) {
    return Status::InvalidArgument("SELECT list must not be empty");
  }
  for (const OrderItem& order : query.order_by) {
    if (order.by_name) {
      return Status::InvalidArgument("unresolved ORDER BY column '" +
                                     order.column.ToString() + "'");
    }
  }
  SDW_ASSIGN_OR_RETURN(TableSchema probe_schema,
                       catalog_->GetTable(query.from_table));
  ScanBinder probe(query.from_table, probe_schema);

  std::optional<TableSchema> build_schema;
  std::optional<ScanBinder> build;
  if (query.join_table.has_value()) {
    SDW_ASSIGN_OR_RETURN(TableSchema bs, catalog_->GetTable(*query.join_table));
    build_schema = std::move(bs);
    build.emplace(*query.join_table, *build_schema);
  }

  // Resolves a possibly-qualified name to (binder, scan position). The
  // returned pipeline position offsets build columns by the probe width
  // at the end of planning, so we track (is_build, scan_pos) pairs first.
  struct Bound {
    bool is_build = false;
    int scan_pos = 0;
  };
  auto resolve = [&](const ColumnName& name) -> Result<Bound> {
    if (!name.table.empty()) {
      if (name.table == query.from_table) {
        SDW_ASSIGN_OR_RETURN(int pos, probe.Bind(name.column));
        return Bound{false, pos};
      }
      if (build.has_value() && name.table == build->table()) {
        SDW_ASSIGN_OR_RETURN(int pos, build->Bind(name.column));
        return Bound{true, pos};
      }
      return Status::NotFound("unknown table '" + name.table + "'");
    }
    const bool in_probe = probe.Has(name.column);
    const bool in_build = build.has_value() && build->Has(name.column);
    if (in_probe && in_build) {
      return Status::InvalidArgument("ambiguous column '" + name.column + "'");
    }
    if (in_probe) {
      SDW_ASSIGN_OR_RETURN(int pos, probe.Bind(name.column));
      return Bound{false, pos};
    }
    if (in_build) {
      SDW_ASSIGN_OR_RETURN(int pos, build->Bind(name.column));
      return Bound{true, pos};
    }
    return Status::NotFound("unknown column '" + name.column + "'");
  };

  // --- Join keys (bind first so they're early in the projections). ---
  Bound join_left{}, join_right{};
  if (build.has_value()) {
    SDW_ASSIGN_OR_RETURN(join_left, resolve(query.join_left));
    SDW_ASSIGN_OR_RETURN(join_right, resolve(query.join_right));
    if (join_left.is_build == join_right.is_build) {
      return Status::InvalidArgument(
          "join condition must reference both tables");
    }
    if (join_left.is_build) std::swap(join_left, join_right);
  }

  // --- WHERE: bind, split into zone predicates + residual filters. ---
  struct ResidualSource {
    Bound bound;
    Selection selection;
  };
  std::vector<ResidualSource> residuals;
  std::vector<storage::RangePredicate> probe_zone;
  std::vector<storage::RangePredicate> build_zone;
  for (const Selection& sel : query.where) {
    SDW_ASSIGN_OR_RETURN(Bound b, resolve(sel.column));
    residuals.push_back({b, sel});
    // Conservative zone-map bounds per conjunct kind; the residual
    // filter guarantees exactness.
    Datum lo, hi;
    bool has_zone = false;
    switch (sel.kind) {
      case Selection::Kind::kCompare:
        has_zone = ZonePredicateFor(sel.op, sel.literal, &lo, &hi);
        break;
      case Selection::Kind::kBetween:
        lo = sel.literal;
        hi = sel.literal2;
        has_zone = true;
        break;
      case Selection::Kind::kIn: {
        if (sel.in_list.empty()) {
          return Status::InvalidArgument("IN list must not be empty");
        }
        lo = sel.in_list[0];
        hi = sel.in_list[0];
        for (const Datum& v : sel.in_list) {
          if (v.is_null()) continue;
          if (v < lo) lo = v;
          if (hi < v) hi = v;
        }
        has_zone = true;
        break;
      }
      case Selection::Kind::kLikePrefix: {
        if (!sel.like_prefix.empty()) {
          lo = Datum::String(sel.like_prefix);
          // Upper bound: bump the last byte of the prefix; a 0xff tail
          // leaves the range open above (conservative).
          std::string upper = sel.like_prefix;
          if (static_cast<unsigned char>(upper.back()) < 0xff) {
            upper.back() = static_cast<char>(upper.back() + 1);
            hi = Datum::String(upper);
          }
          has_zone = true;
        }
        break;
      }
    }
    if (has_zone) {
      ScanBinder& binder = b.is_build ? *build : probe;
      storage::RangePredicate pred;
      pred.column = binder.SchemaIndex(b.scan_pos);
      pred.lo = lo;
      pred.hi = hi;
      (b.is_build ? build_zone : probe_zone).push_back(pred);
    }
  }

  // --- SELECT / GROUP BY binding. ---
  struct SelectBound {
    LogicalAggFn agg = LogicalAggFn::kNone;
    Bound bound;  // unused for kCountStar
  };
  std::vector<SelectBound> select_bound;
  bool has_agg = !query.group_by.empty();
  for (const SelectItem& item : query.select) {
    SelectBound sb;
    sb.agg = item.agg;
    if (item.agg != LogicalAggFn::kCountStar) {
      SDW_ASSIGN_OR_RETURN(sb.bound, resolve(item.column));
    }
    if (item.agg != LogicalAggFn::kNone) has_agg = true;
    select_bound.push_back(sb);
  }
  std::vector<Bound> group_bound;
  for (const ColumnName& g : query.group_by) {
    SDW_ASSIGN_OR_RETURN(Bound b, resolve(g));
    group_bound.push_back(b);
  }

  // --- Assemble the physical query. ---
  // A pure COUNT(*) binds nothing; scan one column so row counts flow.
  if (probe.columns().empty()) {
    SDW_RETURN_IF_ERROR(probe.Bind(probe_schema.column(0).name).status());
  }
  PhysicalQuery physical;
  physical.scan.table = query.from_table;
  physical.scan.columns = probe.columns();
  physical.scan.predicates = std::move(probe_zone);

  const int probe_width = static_cast<int>(probe.columns().size());
  auto pipeline_pos = [&](const Bound& b) {
    return b.is_build ? probe_width + b.scan_pos : b.scan_pos;
  };
  auto pipeline_type = [&](const Bound& b) {
    return b.is_build ? build->TypeAt(b.scan_pos) : probe.TypeAt(b.scan_pos);
  };

  // Residual filters attach to their side's scan so they run before the
  // join (predicate pushdown); positions index the scan's own output.
  exec::ExprPtr probe_filter;
  exec::ExprPtr build_filter;
  for (const ResidualSource& r : residuals) {
    ScanBinder& binder = r.bound.is_build ? *build : probe;
    exec::ExprPtr col =
        exec::Col(r.bound.scan_pos, binder.TypeAt(r.bound.scan_pos));
    const Selection& sel = r.selection;
    exec::ExprPtr cmp;
    switch (sel.kind) {
      case Selection::Kind::kCompare:
        cmp = exec::Cmp(ToExecCmp(sel.op), col, exec::Lit(sel.literal));
        break;
      case Selection::Kind::kBetween:
        cmp = exec::And(
            exec::Cmp(exec::CmpOp::kGe, col, exec::Lit(sel.literal)),
            exec::Cmp(exec::CmpOp::kLe, col, exec::Lit(sel.literal2)));
        break;
      case Selection::Kind::kIn: {
        for (const Datum& v : sel.in_list) {
          exec::ExprPtr eq = exec::Cmp(exec::CmpOp::kEq, col, exec::Lit(v));
          cmp = cmp ? exec::Or(cmp, eq) : eq;
        }
        break;
      }
      case Selection::Kind::kLikePrefix:
        cmp = exec::StartsWith(col, sel.like_prefix);
        break;
    }
    exec::ExprPtr& target = r.bound.is_build ? build_filter : probe_filter;
    target = target ? exec::And(target, cmp) : cmp;
  }
  physical.scan.filter = probe_filter;

  if (build.has_value()) {
    JoinSpec join;
    join.build.table = build->table();
    join.build.columns = build->columns();
    join.build.predicates = std::move(build_zone);
    join.build.filter = build_filter;
    join.probe_keys = {join_left.scan_pos};
    join.build_keys = {join_right.scan_pos};

    // Strategy from distribution metadata and stats (§2.1 / §3.3).
    const TableSchema& ps = probe_schema;
    const TableSchema& bs = *build_schema;
    const bool build_all = bs.dist_style() == DistStyle::kAll;
    const bool colocated_keys =
        ps.dist_style() == DistStyle::kKey && bs.dist_style() == DistStyle::kKey &&
        ps.dist_key() == probe.SchemaIndex(join_left.scan_pos) &&
        bs.dist_key() == build->SchemaIndex(join_right.scan_pos);
    if (build_all || colocated_keys) {
      join.strategy = JoinStrategy::kCoLocated;
    } else if (catalog_->GetStats(bs.name()).row_count <=
               options_.broadcast_row_threshold) {
      join.strategy = JoinStrategy::kBroadcastBuild;
    } else {
      join.strategy = JoinStrategy::kShuffle;
    }
    physical.join = std::move(join);
  }

  if (has_agg) {
    // Every plain select item must appear in GROUP BY.
    AggDetails agg;
    for (const Bound& b : group_bound) {
      agg.group_by.push_back(pipeline_pos(b));
    }
    // Map: select item -> leader projection over [group..., aggs...].
    struct LeaderSlot {
      bool is_avg = false;
      int primary = 0;    // group slot or agg slot
      int secondary = 0;  // count slot for AVG
      TypeId type = TypeId::kInt64;
    };
    std::vector<LeaderSlot> slots;
    const int ngroups = static_cast<int>(agg.group_by.size());
    for (const SelectBound& sb : select_bound) {
      LeaderSlot slot;
      if (sb.agg == LogicalAggFn::kNone) {
        int pos = pipeline_pos(sb.bound);
        auto it = std::find(agg.group_by.begin(), agg.group_by.end(), pos);
        if (it == agg.group_by.end()) {
          return Status::InvalidArgument(
              "non-aggregated select column must be in GROUP BY");
        }
        slot.primary = static_cast<int>(it - agg.group_by.begin());
        slot.type = pipeline_type(sb.bound);
        slots.push_back(slot);
        continue;
      }
      auto add_agg = [&](exec::AggFn fn, int column, TypeId in_type) {
        agg.aggs.push_back({fn, column});
        return std::make_pair(
            ngroups + static_cast<int>(agg.aggs.size()) - 1,
            AggOutputType(agg.aggs.back(), in_type));
      };
      switch (sb.agg) {
        case LogicalAggFn::kCountStar: {
          auto [pos, type] = add_agg(exec::AggFn::kCount, -1, TypeId::kInt64);
          slot.primary = pos;
          slot.type = type;
          break;
        }
        case LogicalAggFn::kCount: {
          auto [pos, type] = add_agg(exec::AggFn::kCount,
                                     pipeline_pos(sb.bound), TypeId::kInt64);
          slot.primary = pos;
          slot.type = type;
          break;
        }
        case LogicalAggFn::kSum: {
          auto [pos, type] = add_agg(exec::AggFn::kSum, pipeline_pos(sb.bound),
                                     pipeline_type(sb.bound));
          slot.primary = pos;
          slot.type = type;
          break;
        }
        case LogicalAggFn::kMin: {
          auto [pos, type] = add_agg(exec::AggFn::kMin, pipeline_pos(sb.bound),
                                     pipeline_type(sb.bound));
          slot.primary = pos;
          slot.type = type;
          break;
        }
        case LogicalAggFn::kMax: {
          auto [pos, type] = add_agg(exec::AggFn::kMax, pipeline_pos(sb.bound),
                                     pipeline_type(sb.bound));
          slot.primary = pos;
          slot.type = type;
          break;
        }
        case LogicalAggFn::kApproxCountDistinct: {
          auto [pos, type] =
              add_agg(exec::AggFn::kApproxDistinct, pipeline_pos(sb.bound),
                      pipeline_type(sb.bound));
          slot.primary = pos;
          slot.type = type;
          break;
        }
        case LogicalAggFn::kAvg: {
          // AVG(x) -> SUM(x) / COUNT(x): merges associatively across
          // slices, divided at the leader.
          auto [sum_pos, sum_type] = add_agg(
              exec::AggFn::kSum, pipeline_pos(sb.bound), pipeline_type(sb.bound));
          auto [count_pos, count_type] =
              add_agg(exec::AggFn::kCount, pipeline_pos(sb.bound), TypeId::kInt64);
          (void)sum_type;
          (void)count_type;
          slot.is_avg = true;
          slot.primary = sum_pos;
          slot.secondary = count_pos;
          slot.type = TypeId::kDouble;
          break;
        }
        case LogicalAggFn::kNone:
          break;
      }
      slots.push_back(slot);
    }
    // Leader projection expressions over the final-aggregate output.
    // Final agg output types: group columns keep pipeline types; aggs
    // follow AggOutputType.
    std::vector<TypeId> agg_out_types;
    for (const Bound& b : group_bound) agg_out_types.push_back(pipeline_type(b));
    for (const exec::AggSpec& a : agg.aggs) {
      TypeId in_type = TypeId::kInt64;
      if (a.column >= 0) {
        // Recover the input type from the pipeline position.
        if (a.column < probe_width) {
          in_type = probe.TypeAt(a.column);
        } else {
          in_type = build->TypeAt(a.column - probe_width);
        }
      }
      agg_out_types.push_back(AggOutputType(a, in_type));
    }
    for (const LeaderSlot& slot : slots) {
      if (slot.is_avg) {
        physical.project.push_back(exec::Arith(
            exec::ArithOp::kDiv,
            exec::Col(slot.primary, agg_out_types[slot.primary]),
            exec::Col(slot.secondary, agg_out_types[slot.secondary])));
      } else {
        physical.project.push_back(
            exec::Col(slot.primary, agg_out_types[slot.primary]));
      }
    }
    physical.agg = std::move(agg);
  } else {
    // Pure projection query.
    for (const SelectBound& sb : select_bound) {
      physical.project.push_back(
          exec::Col(pipeline_pos(sb.bound), pipeline_type(sb.bound)));
    }
  }

  // Output names.
  for (const SelectItem& item : query.select) {
    if (!item.alias.empty()) {
      physical.output_names.push_back(item.alias);
    } else if (item.agg == LogicalAggFn::kCountStar) {
      physical.output_names.push_back("count");
    } else {
      physical.output_names.push_back(item.column.column);
    }
  }

  // ORDER BY / LIMIT act on the projected output.
  for (const OrderItem& o : query.order_by) {
    if (o.select_index < 0 ||
        static_cast<size_t>(o.select_index) >= query.select.size()) {
      return Status::InvalidArgument("ORDER BY index out of range");
    }
    physical.order_by.push_back({o.select_index, o.descending});
  }
  physical.limit = query.limit;
  return physical;
}

}  // namespace sdw::plan
