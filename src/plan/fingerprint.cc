#include "plan/fingerprint.h"

#include <algorithm>
#include <cstdio>

#include "common/hash.h"

namespace sdw::plan {

namespace {

/// Exact, type-tagged rendering of one literal. Datum::ToString is a
/// display format (fixed double precision) and must not be used for
/// cache keys: 1.00000001 and 1.00000002 would collide.
void AppendDatum(const Datum& d, std::string* out) {
  if (d.is_null()) {
    *out += "n";
    return;
  }
  switch (d.type()) {
    case TypeId::kBool:
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kDate:
      *out += "i" + std::to_string(static_cast<int>(d.type())) + ":" +
              std::to_string(d.int_value());
      return;
    case TypeId::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "d:%.17g", d.double_value());
      *out += buf;
      return;
    }
    case TypeId::kString:
      *out += "s" + std::to_string(d.string_value().size()) + ":" +
              d.string_value();
      return;
  }
}

void AppendColumn(const ColumnName& c, std::string* out) {
  *out += c.table + "." + c.column;
}

std::string ConjunctText(const Selection& s) {
  std::string out;
  out += std::to_string(static_cast<int>(s.kind)) + ":";
  AppendColumn(s.column, &out);
  switch (s.kind) {
    case Selection::Kind::kCompare:
      out += " op" + std::to_string(static_cast<int>(s.op)) + " ";
      AppendDatum(s.literal, &out);
      break;
    case Selection::Kind::kBetween:
      out += " between ";
      AppendDatum(s.literal, &out);
      out += " and ";
      AppendDatum(s.literal2, &out);
      break;
    case Selection::Kind::kIn: {
      // IN (1, 2) and IN (2, 1) are the same predicate.
      std::vector<std::string> values;
      values.reserve(s.in_list.size());
      for (const Datum& d : s.in_list) {
        std::string v;
        AppendDatum(d, &v);
        values.push_back(std::move(v));
      }
      std::sort(values.begin(), values.end());
      out += " in(";
      for (const std::string& v : values) out += v + ",";
      out += ")";
      break;
    }
    case Selection::Kind::kLikePrefix:
      out += " like s" + std::to_string(s.like_prefix.size()) + ":" +
             s.like_prefix;
      break;
  }
  return out;
}

}  // namespace

std::string CanonicalText(const LogicalQuery& query) {
  std::string out = "from=" + query.from_table;
  out += "|star=" + std::to_string(query.select_star ? 1 : 0);
  if (query.join_table.has_value()) {
    out += "|join=" + *query.join_table + " on ";
    AppendColumn(query.join_left, &out);
    out += "=";
    AppendColumn(query.join_right, &out);
  }
  // Conjunct order is semantically irrelevant (they AND together);
  // sorting their serialized forms makes the key order-insensitive.
  std::vector<std::string> conjuncts;
  conjuncts.reserve(query.where.size());
  for (const Selection& s : query.where) conjuncts.push_back(ConjunctText(s));
  std::sort(conjuncts.begin(), conjuncts.end());
  out += "|where=";
  for (const std::string& c : conjuncts) out += "(" + c + ")";
  out += "|select=";
  for (const SelectItem& item : query.select) {
    out += "(" + std::to_string(static_cast<int>(item.agg)) + ":";
    AppendColumn(item.column, &out);
    out += " as s" + std::to_string(item.alias.size()) + ":" + item.alias + ")";
  }
  out += "|group=";
  for (const ColumnName& c : query.group_by) {
    AppendColumn(c, &out);
    out += ",";
  }
  out += "|order=";
  for (const OrderItem& o : query.order_by) {
    if (o.by_name) {
      out += "name:";
      AppendColumn(o.column, &out);
    } else {
      out += "idx:" + std::to_string(o.select_index);
    }
    out += o.descending ? " desc," : " asc,";
  }
  out += "|limit=";
  if (query.limit.has_value()) out += std::to_string(*query.limit);
  return out;
}

uint64_t Fingerprint(const LogicalQuery& query) {
  return Hash64(std::string_view(CanonicalText(query)));
}

}  // namespace sdw::plan
